#include "tact/tact_code.hh"

#include <algorithm>

namespace catchsim
{

TactCode::TactCode(const TactConfig &cfg, PrefetchFn prefetch,
                   MispredictFn would_mispredict)
    : cfg_(cfg), prefetch_(std::move(prefetch)),
      wouldMispredict_(std::move(would_mispredict))
{
}

void
TactCode::onCodeStall(TraceView trace, size_t idx, Cycle now)
{
    ++stalls_;
    Addr stalled_line = lineAddr(trace.at(idx).pc);
    Addr last_line = stalled_line;
    uint32_t issued = 0;
    const size_t end = std::min(trace.count, idx + kCodeRunaheadHorizonOps);
    for (size_t j = idx + 1;
         j < end && issued < cfg_.codeRunaheadLines; ++j) {
        const MicroOp &op = trace.at(j);
        Addr line = lineAddr(op.pc);
        if (line != last_line && line != stalled_line) {
            prefetch_(line, now);
            ++lines_;
            ++issued;
            last_line = line;
        }
        // The CNPIP follows branch predictions; past a branch the
        // predictor gets wrong, the runahead diverges from the real
        // path, so stop there.
        if (op.isBranch() && wouldMispredict_(op))
            break;
    }
}

} // namespace catchsim
