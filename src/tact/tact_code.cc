#include "tact/tact_code.hh"

namespace catchsim
{

TactCode::TactCode(const TactConfig &cfg, PrefetchFn prefetch,
                   MispredictFn would_mispredict)
    : cfg_(cfg), prefetch_(std::move(prefetch)),
      wouldMispredict_(std::move(would_mispredict))
{
}

void
TactCode::onCodeStall(const MicroOp *ops, size_t count, size_t idx,
                      Cycle now)
{
    ++stalls_;
    Addr stalled_line = lineAddr(ops[idx].pc);
    Addr last_line = stalled_line;
    uint32_t issued = 0;
    for (size_t j = idx + 1;
         j < count && issued < cfg_.codeRunaheadLines; ++j) {
        const MicroOp &op = ops[j];
        Addr line = lineAddr(op.pc);
        if (line != last_line && line != stalled_line) {
            prefetch_(line, now);
            ++lines_;
            ++issued;
            last_line = line;
        }
        // The CNPIP follows branch predictions; past a branch the
        // predictor gets wrong, the runahead diverges from the real
        // path, so stop there.
        if (op.isBranch() && wouldMispredict_(op))
            break;
    }
}

} // namespace catchsim
