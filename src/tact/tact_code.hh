/**
 * @file
 * TACT-Code (Section IV-B2): front-end code runahead. When the NIP logic
 * stalls on an L1I miss, a Code-Next-Prefetch-IP (CNPIP) checkpoint runs
 * ahead along the *predicted* path, prefetching upcoming code lines into
 * the L1I. The CNPIP resets on a branch mispredict - equivalently, the
 * runahead is only useful up to the first branch the predictor would get
 * wrong, which is where this model stops it.
 */

#ifndef CATCHSIM_TACT_TACT_CODE_HH_
#define CATCHSIM_TACT_TACT_CODE_HH_

#include <cstddef>
#include <functional>

#include "common/sim_config.hh"
#include "common/types.hh"
#include "trace/micro_op.hh"
#include "trace/trace_view.hh"

namespace catchsim
{

class TactCode
{
  public:
    using PrefetchFn = std::function<void(Addr line_addr, Cycle now)>;
    /** True when the predictor would NOT follow this branch correctly. */
    using MispredictFn = std::function<bool(const MicroOp &)>;

    TactCode(const TactConfig &cfg, PrefetchFn prefetch,
             MispredictFn would_mispredict);

    /**
     * Runahead triggered by an L1I miss while fetching trace.at(idx).
     * Walks the upcoming instruction stream (the predicted path, valid
     * until the first mispredicting branch) and prefetches the next code
     * lines. The walk is bounded by kCodeRunaheadHorizonOps so a
     * streamed trace never needs more than its resident window.
     */
    void onCodeStall(TraceView trace, size_t idx, Cycle now);

    uint64_t stalls() const { return stalls_; }
    uint64_t linesPrefetched() const { return lines_; }

  private:
    TactConfig cfg_;
    PrefetchFn prefetch_;
    MispredictFn wouldMispredict_;
    uint64_t stalls_ = 0;
    uint64_t lines_ = 0;
};

} // namespace catchsim

#endif // CATCHSIM_TACT_TACT_CODE_HH_
