/**
 * @file
 * TACT-Deep-Self (Section IV-B1): deep-distance stride prefetching for
 * critical PCs only. The stride comes from the baseline L1 stride table;
 * this component adds the *distance* decision: it learns a "safe" run
 * length for each PC (how many consecutive instances keep the stride
 * before it breaks, capped at 32, initialised to 4, guarded by a 2-bit
 * confidence) and prefetches at
 *     distance = min(deepMaxDistance, safe_length - current_run)
 * on top of the baseline's distance-1 prefetch.
 */

#ifndef CATCHSIM_TACT_TACT_SELF_HH_
#define CATCHSIM_TACT_TACT_SELF_HH_

#include <functional>
#include <unordered_map>

#include "common/sat_counter.hh"
#include "common/sim_config.hh"
#include "common/state_io.hh"
#include "common/types.hh"

namespace catchsim
{

class TactSelf
{
  public:
    using IssueFn = std::function<void(Addr addr, Cycle now)>;
    /** Queries the baseline stride table: returns true + stride. */
    using StrideFn = std::function<bool(Addr pc, int64_t *stride)>;

    TactSelf(const TactConfig &cfg, StrideFn stride, IssueFn issue);

    /** Called on each dispatch of a critical target load. */
    void onCriticalLoad(Addr pc, Addr addr, Cycle now);

    void dropTarget(Addr pc) { targets_.erase(pc); }

    uint64_t issued() const { return issued_; }

    /** Serializes the learner map (ascending key order) + counter. */
    void saveWarmState(StateSink &sink) const;

    /** Restores a saveWarmState() stream; false on a malformed one. */
    bool loadWarmState(StateSource &src);

  private:
    struct TargetState
    {
        Addr lastAddr = 0;
        bool haveLast = false;
        uint32_t currentRun = 0;  ///< consecutive stride-keeping instances
        uint32_t safeLength = 4;  ///< paper: initialised to four
        SatCounter safeConf{2, 0};
    };

    TactConfig cfg_;
    StrideFn stride_;
    IssueFn issue_;
    std::unordered_map<Addr, TargetState> targets_;
    uint64_t issued_ = 0;
};

} // namespace catchsim

#endif // CATCHSIM_TACT_TACT_SELF_HH_
