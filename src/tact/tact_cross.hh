/**
 * @file
 * TACT-Cross (Section IV-B1): learns a stable address delta between a
 * Trigger-PC and a critical Target-PC within a 4 KB page. Candidates
 * come from the TriggerCache; each candidate gets crossTrainInstances
 * target instances to show a stable delta before the learner moves on,
 * wrapping through the candidate list up to crossCandidateWraps times.
 * Once learned, every dispatch of the trigger prefetches
 * trigger_address + delta into the L1.
 */

#ifndef CATCHSIM_TACT_TACT_CROSS_HH_
#define CATCHSIM_TACT_TACT_CROSS_HH_

#include <functional>
#include <unordered_map>

#include "common/sat_counter.hh"
#include "common/sim_config.hh"
#include "common/types.hh"
#include "tact/trigger_cache.hh"

namespace catchsim
{

/** Per-critical-target cross-association learner. */
class TactCross
{
  public:
    using IssueFn = std::function<void(Addr addr, Cycle now)>;

    TactCross(const TactConfig &cfg, IssueFn issue);

    /** Every demand load passes through (feeds the trigger cache). */
    void onLoad(Addr pc, Addr addr, Cycle now, bool is_critical_target);

    /** Drops learner state for PCs that left the critical table. */
    void dropTarget(Addr pc);

    uint64_t issued() const { return issued_; }

    /** Serializes the trigger cache, learner maps and issue counter
     *  (maps in ascending key order — deterministic bytes). */
    void saveWarmState(StateSink &sink) const;

    /** Restores a saveWarmState() stream; false on a malformed one. */
    bool loadWarmState(StateSource &src);

  private:
    struct TargetState
    {
        Addr triggerPc = 0;
        bool haveTrigger = false;
        uint32_t candidateIdx = 0; ///< position in the candidate list
        uint32_t wraps = 0;
        uint32_t instances = 0;    ///< target instances on this candidate
        int64_t lastDelta = 0;
        SatCounter deltaConf{2, 0};
        bool learned = false;
        int64_t delta = 0;
        bool exhausted = false;    ///< gave up after all wraps
    };

    void train(TargetState &st, Addr target_pc, Addr addr);

    TactConfig cfg_;
    IssueFn issue_;
    TriggerCache triggerCache_;
    std::unordered_map<Addr, TargetState> targets_;
    /** trigger pc -> last dispatched address (for delta computation). */
    std::unordered_map<Addr, Addr> triggerLastAddr_;
    /** trigger pc -> target pcs that fire on it. */
    std::unordered_map<Addr, std::vector<Addr>> firing_;
    uint64_t issued_ = 0;
};

} // namespace catchsim

#endif // CATCHSIM_TACT_TACT_CROSS_HH_
