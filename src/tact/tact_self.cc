#include "tact/tact_self.hh"

#include <algorithm>

#include "common/bitutil.hh"

namespace catchsim
{

TactSelf::TactSelf(const TactConfig &cfg, StrideFn stride, IssueFn issue)
    : cfg_(cfg), stride_(std::move(stride)), issue_(std::move(issue))
{
}

void
TactSelf::onCriticalLoad(Addr pc, Addr addr, Cycle now)
{
    int64_t stride = 0;
    if (!stride_(pc, &stride))
        return;

    TargetState &st = targets_[pc];
    if (st.haveLast) {
        int64_t observed = addrDelta(addr, st.lastAddr);
        if (observed == stride) {
            if (++st.currentRun >= cfg_.safeLengthCap) {
                // Wraparound: a long, healthy run; grow the safe length.
                st.currentRun = 0;
                st.safeLength =
                    std::min(cfg_.safeLengthCap, st.safeLength + 1);
                st.safeConf.increment();
            } else if (st.currentRun >= st.safeLength) {
                st.safeConf.increment();
            }
        } else {
            // The run ended; shrink toward the observed run length.
            if (st.currentRun < st.safeLength) {
                st.safeLength = std::max(1u, st.currentRun);
                st.safeConf.decrement();
            } else {
                st.safeConf.increment();
            }
            st.currentRun = 0;
        }
    }
    st.lastAddr = addr;
    st.haveLast = true;

    if (!st.safeConf.saturated())
        return;
    // Remaining safe headroom bounds how deep we dare prefetch.
    uint32_t headroom = st.safeLength > st.currentRun
                            ? st.safeLength - st.currentRun
                            : 0;
    uint32_t distance = std::min(cfg_.deepMaxDistance, headroom);
    if (distance <= 1)
        return; // distance 1 is already covered by the baseline stride pf
    ++issued_;
    issue_(addrStride(addr, stride, distance), now);
}

} // namespace catchsim
