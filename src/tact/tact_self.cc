#include "tact/tact_self.hh"

#include <algorithm>
#include <vector>

#include "common/bitutil.hh"

namespace catchsim
{

TactSelf::TactSelf(const TactConfig &cfg, StrideFn stride, IssueFn issue)
    : cfg_(cfg), stride_(std::move(stride)), issue_(std::move(issue))
{
}

void
TactSelf::onCriticalLoad(Addr pc, Addr addr, Cycle now)
{
    int64_t stride = 0;
    if (!stride_(pc, &stride))
        return;

    TargetState &st = targets_[pc];
    if (st.haveLast) {
        int64_t observed = addrDelta(addr, st.lastAddr);
        if (observed == stride) {
            if (++st.currentRun >= cfg_.safeLengthCap) {
                // Wraparound: a long, healthy run; grow the safe length.
                st.currentRun = 0;
                st.safeLength =
                    std::min(cfg_.safeLengthCap, st.safeLength + 1);
                st.safeConf.increment();
            } else if (st.currentRun >= st.safeLength) {
                st.safeConf.increment();
            }
        } else {
            // The run ended; shrink toward the observed run length.
            if (st.currentRun < st.safeLength) {
                st.safeLength = std::max(1u, st.currentRun);
                st.safeConf.decrement();
            } else {
                st.safeConf.increment();
            }
            st.currentRun = 0;
        }
    }
    st.lastAddr = addr;
    st.haveLast = true;

    if (!st.safeConf.saturated())
        return;
    // Remaining safe headroom bounds how deep we dare prefetch.
    uint32_t headroom = st.safeLength > st.currentRun
                            ? st.safeLength - st.currentRun
                            : 0;
    uint32_t distance = std::min(cfg_.deepMaxDistance, headroom);
    if (distance <= 1)
        return; // distance 1 is already covered by the baseline stride pf
    ++issued_;
    issue_(addrStride(addr, stride, distance), now);
}

void
TactSelf::saveWarmState(StateSink &sink) const
{
    sink.tag(stateTag("TSLF"));
    std::vector<Addr> keys;
    keys.reserve(targets_.size());
    // catch-analyze: allow(unordered-iter) keys are sorted below
    for (const auto &kv : targets_)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());

    sink.u64(targets_.size());
    for (Addr pc : keys) {
        const TargetState &st = targets_.at(pc);
        sink.u64(pc);
        sink.u64(st.lastAddr);
        sink.boolean(st.haveLast);
        sink.u32(st.currentRun);
        sink.u32(st.safeLength);
        sink.u32(st.safeConf.value());
    }
    sink.u64(issued_);
}

bool
TactSelf::loadWarmState(StateSource &src)
{
    if (!src.expect(stateTag("TSLF")))
        return false;
    targets_.clear();
    uint64_t n = src.u64();
    if (!src.fits(n * 29))
        return false;
    for (uint64_t i = 0; i < n; ++i) {
        Addr pc = src.u64();
        TargetState &st = targets_[pc];
        st.lastAddr = src.u64();
        st.haveLast = src.boolean();
        st.currentRun = src.u32();
        st.safeLength = src.u32();
        st.safeConf.reset(src.u32());
    }
    issued_ = src.u64();
    return src.ok();
}

} // namespace catchsim
