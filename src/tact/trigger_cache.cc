#include "tact/trigger_cache.hh"

#include "common/bitutil.hh"

namespace catchsim
{

TriggerCache::TriggerCache(const TactConfig &cfg)
    : cfg_(cfg), sets_(cfg.triggerCacheSets), ways_(cfg.triggerCacheWays),
      entries_(static_cast<size_t>(sets_) * ways_)
{
}

uint32_t
TriggerCache::setOf(Addr page) const
{
    return static_cast<uint32_t>(mix64(page) & (sets_ - 1));
}

void
TriggerCache::onLoad(Addr pc, Addr addr)
{
    ++clock_;
    Addr page = pageAddr(addr);
    Entry *row = &entries_[static_cast<size_t>(setOf(page)) * ways_];
    Entry *lru = &row[0];
    for (uint32_t w = 0; w < ways_; ++w) {
        Entry &e = row[w];
        if (e.valid && e.page == page) {
            e.lastUse = clock_;
            if (e.numPcs < cfg_.triggerPcsPerPage) {
                for (uint32_t i = 0; i < e.numPcs; ++i)
                    if (e.pcs[i] == pc)
                        return;
                e.pcs[e.numPcs++] = pc;
            }
            return;
        }
        if (!e.valid) {
            lru = &e;
            break;
        }
        if (e.lastUse < lru->lastUse)
            lru = &e;
    }
    *lru = Entry{};
    lru->valid = true;
    lru->page = page;
    lru->pcs[0] = pc;
    lru->numPcs = 1;
    lru->lastUse = clock_;
}

std::vector<Addr>
TriggerCache::candidates(Addr addr) const
{
    Addr page = pageAddr(addr);
    const Entry *row = &entries_[static_cast<size_t>(setOf(page)) * ways_];
    for (uint32_t w = 0; w < ways_; ++w) {
        const Entry &e = row[w];
        if (e.valid && e.page == page)
            return {e.pcs.begin(), e.pcs.begin() + e.numPcs};
    }
    return {};
}

void
TriggerCache::saveWarmState(StateSink &sink) const
{
    sink.tag(stateTag("TRGC"));
    sink.u64(entries_.size());
    for (const Entry &e : entries_) {
        sink.boolean(e.valid);
        sink.u64(e.page);
        for (Addr pc : e.pcs)
            sink.u64(pc);
        sink.u32(e.numPcs);
        sink.u64(e.lastUse);
    }
    sink.u64(clock_);
}

bool
TriggerCache::loadWarmState(StateSource &src)
{
    if (!src.expect(stateTag("TRGC")))
        return false;
    if (src.u64() != entries_.size() || !src.fits(entries_.size() * 53))
        return false;
    for (Entry &e : entries_) {
        e.valid = src.boolean();
        e.page = src.u64();
        for (Addr &pc : e.pcs)
            pc = src.u64();
        e.numPcs = src.u32();
        if (e.numPcs > e.pcs.size())
            return false;
        e.lastUse = src.u64();
    }
    clock_ = src.u64();
    return src.ok();
}

} // namespace catchsim
