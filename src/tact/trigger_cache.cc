#include "tact/trigger_cache.hh"

#include "common/bitutil.hh"

namespace catchsim
{

TriggerCache::TriggerCache(const TactConfig &cfg)
    : cfg_(cfg), sets_(cfg.triggerCacheSets), ways_(cfg.triggerCacheWays),
      entries_(static_cast<size_t>(sets_) * ways_)
{
}

uint32_t
TriggerCache::setOf(Addr page) const
{
    return static_cast<uint32_t>(mix64(page) & (sets_ - 1));
}

void
TriggerCache::onLoad(Addr pc, Addr addr)
{
    ++clock_;
    Addr page = pageAddr(addr);
    Entry *row = &entries_[static_cast<size_t>(setOf(page)) * ways_];
    Entry *lru = &row[0];
    for (uint32_t w = 0; w < ways_; ++w) {
        Entry &e = row[w];
        if (e.valid && e.page == page) {
            e.lastUse = clock_;
            if (e.numPcs < cfg_.triggerPcsPerPage) {
                for (uint32_t i = 0; i < e.numPcs; ++i)
                    if (e.pcs[i] == pc)
                        return;
                e.pcs[e.numPcs++] = pc;
            }
            return;
        }
        if (!e.valid) {
            lru = &e;
            break;
        }
        if (e.lastUse < lru->lastUse)
            lru = &e;
    }
    *lru = Entry{};
    lru->valid = true;
    lru->page = page;
    lru->pcs[0] = pc;
    lru->numPcs = 1;
    lru->lastUse = clock_;
}

std::vector<Addr>
TriggerCache::candidates(Addr addr) const
{
    Addr page = pageAddr(addr);
    const Entry *row = &entries_[static_cast<size_t>(setOf(page)) * ways_];
    for (uint32_t w = 0; w < ways_; ++w) {
        const Entry &e = row[w];
        if (e.valid && e.page == page)
            return {e.pcs.begin(), e.pcs.begin() + e.numPcs};
    }
    return {};
}

} // namespace catchsim
