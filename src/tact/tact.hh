/**
 * @file
 * TACT coordinator: owns the four prefetch components, routes core
 * events to them, and gates the data prefetchers on the critical-load
 * table (only the ~32 currently-critical target PCs train or fire).
 */

#ifndef CATCHSIM_TACT_TACT_HH_
#define CATCHSIM_TACT_TACT_HH_

#include <functional>
#include <memory>

#include "cache/hierarchy.hh"
#include "common/sim_config.hh"
#include "common/types.hh"
#include "mem/functional_memory.hh"
#include "tact/tact_code.hh"
#include "tact/tact_cross.hh"
#include "tact/tact_feeder.hh"
#include "tact/tact_self.hh"
#include "trace/micro_op.hh"
#include "trace/trace_view.hh"

namespace catchsim
{

/** Per-component issue counts (Fig 13's stack). */
struct TactStats
{
    uint64_t crossIssued = 0;
    uint64_t deepIssued = 0;
    uint64_t feederIssued = 0;
    uint64_t feederRunaheads = 0;
    uint64_t codeStalls = 0;
    uint64_t codeLines = 0;
};

class Tact
{
  public:
    using CriticalFn = std::function<bool(Addr pc)>;
    using MispredictFn = TactCode::MispredictFn;

    /**
     * @param mem the trace's functional memory (feeder value source);
     *        may be nullptr when the feeder component is disabled
     */
    Tact(const TactConfig &cfg, CoreId core, CacheHierarchy &hierarchy,
         CriticalFn is_critical, const FunctionalMemory *mem);

    /** A load leaves the OOO scheduler: address is known. */
    void onLoadDispatch(const MicroOp &op, Cycle now);

    /** A load's data arrives (writeback). */
    void onLoadComplete(const MicroOp &op, Cycle data_at);

    /** Program-order retirement (register dataflow tracking). */
    void onRetire(const MicroOp &op);

    /** Front-end stalled on an L1I miss while fetching trace.at(idx). */
    void onCodeStall(TraceView trace, size_t idx, Cycle now,
                     const MispredictFn &would_mispredict);

    TactStats stats() const;

    /**
     * Functional warming: the components keep learning (trigger caches,
     * safe strides, feeder chains) and issueData switches from timed
     * prefetches to state-only placement via warmTactPrefetch, so
     * warmed windows start with both trained tables and TACT's line
     * placements — pollution included — while timing and counters stay
     * detailed-mode effects.
     */
    void setWarming(bool warming) { warming_ = warming; }

    /**
     * Serializes every component's learning state — trigger caches,
     * learner maps, feeder register tracking — plus the issue counters
     * (they accumulate during warming and feed TactStats, so a restored
     * run must report the same numbers a fresh warm would have).
     */
    void saveWarmState(StateSink &sink) const;

    /** Restores a saveWarmState() stream taken from a Tact built with
     *  the same config; false on a malformed stream. */
    bool loadWarmState(StateSource &src);

  private:
    Cycle issueData(Addr addr, Cycle now);

    bool warming_ = false;

    TactConfig cfg_;
    CoreId core_;
    CacheHierarchy &hierarchy_;
    CriticalFn isCritical_;

    std::unique_ptr<TactCross> cross_;
    std::unique_ptr<TactSelf> self_;
    std::unique_ptr<TactFeeder> feeder_;

    uint64_t codeStalls_ = 0;
    uint64_t codeLines_ = 0;
};

} // namespace catchsim

#endif // CATCHSIM_TACT_TACT_HH_
