#include "tact/tact.hh"

namespace catchsim
{

Tact::Tact(const TactConfig &cfg, CoreId core, CacheHierarchy &hierarchy,
           CriticalFn is_critical, const FunctionalMemory *mem)
    : cfg_(cfg), core_(core), hierarchy_(hierarchy),
      isCritical_(std::move(is_critical))
{
    auto issue_void = [this](Addr addr, Cycle now) {
        issueData(addr, now);
    };
    auto stride_fn = [this](Addr pc, int64_t *stride) {
        return hierarchy_.strideTable(core_).stableStride(pc, stride);
    };
    if (cfg.cross)
        cross_ = std::make_unique<TactCross>(cfg, issue_void);
    if (cfg.deepSelf)
        self_ = std::make_unique<TactSelf>(cfg, stride_fn, issue_void);
    if (cfg.feeder) {
        auto issue_timed = [this](Addr addr, Cycle now) {
            return issueData(addr, now);
        };
        auto read_mem = [mem](Addr addr) {
            return mem ? mem->read(addr) : 0;
        };
        auto probe = [this](Addr addr, Cycle now) {
            return hierarchy_.probeDataReady(core_, addr, now);
        };
        // 64 registers safely covers any trace's architectural register
        // namespace (our ISA uses 16).
        feeder_ = std::make_unique<TactFeeder>(cfg, 64, stride_fn,
                                               issue_timed, probe,
                                               read_mem);
    }
}

Cycle
Tact::issueData(Addr addr, Cycle now)
{
    if (warming_) {
        // Learning plus functional placement: the same lines land in
        // the same levels the detailed path would have put them
        // (pollution included) with no timing or counters, and the
        // arrival estimate mirrors the detailed return so the feeder's
        // runahead pacing matches.
        Level from = hierarchy_.warmTactPrefetch(core_, addr, false,
                                                 now);
        return now + hierarchy_.levelLatency(from);
    }
    Level from = hierarchy_.prefetchToL1(core_, addr, now,
                                         CacheHierarchy::PfKind::TactData);
    return now + hierarchy_.levelLatency(from);
}

void
Tact::onLoadDispatch(const MicroOp &op, Cycle now)
{
    bool critical = isCritical_(op.pc);
    if (cross_)
        cross_->onLoad(op.pc, op.memAddr, now, critical);
    if (self_ && critical)
        self_->onCriticalLoad(op.pc, op.memAddr, now);
    if (feeder_ && critical)
        feeder_->onCriticalLoad(op, now);
}

void
Tact::onLoadComplete(const MicroOp &op, Cycle data_at)
{
    if (feeder_)
        feeder_->onLoadComplete(op.pc, op.memAddr, op.value, data_at);
}

void
Tact::onRetire(const MicroOp &op)
{
    if (feeder_)
        feeder_->onRetire(op);
}

void
Tact::onCodeStall(TraceView trace, size_t idx, Cycle now,
                  const MispredictFn &would_mispredict)
{
    if (!cfg_.code)
        return;
    // A fresh walker per stall binds the stall-time mispredict query
    // (predictor state moves between stalls); counts accumulate here.
    TactCode walker(cfg_,
                    [this](Addr line, Cycle when) {
                        hierarchy_.prefetchToL1(
                            core_, line, when,
                            CacheHierarchy::PfKind::TactCode);
                    },
                    would_mispredict);
    walker.onCodeStall(trace, idx, now);
    codeStalls_ += walker.stalls();
    codeLines_ += walker.linesPrefetched();
}

TactStats
Tact::stats() const
{
    TactStats s;
    if (cross_)
        s.crossIssued = cross_->issued();
    if (self_)
        s.deepIssued = self_->issued();
    if (feeder_) {
        s.feederIssued = feeder_->issued();
        s.feederRunaheads = feeder_->feederRunaheads();
    }
    s.codeStalls = codeStalls_;
    s.codeLines = codeLines_;
    return s;
}

void
Tact::saveWarmState(StateSink &sink) const
{
    sink.tag(stateTag("TACT"));
    sink.boolean(cross_ != nullptr);
    if (cross_)
        cross_->saveWarmState(sink);
    sink.boolean(self_ != nullptr);
    if (self_)
        self_->saveWarmState(sink);
    sink.boolean(feeder_ != nullptr);
    if (feeder_)
        feeder_->saveWarmState(sink);
    sink.u64(codeStalls_);
    sink.u64(codeLines_);
}

bool
Tact::loadWarmState(StateSource &src)
{
    if (!src.expect(stateTag("TACT")))
        return false;
    if (src.boolean() != (cross_ != nullptr))
        return false;
    if (cross_ && !cross_->loadWarmState(src))
        return false;
    if (src.boolean() != (self_ != nullptr))
        return false;
    if (self_ && !self_->loadWarmState(src))
        return false;
    if (src.boolean() != (feeder_ != nullptr))
        return false;
    if (feeder_ && !feeder_->loadWarmState(src))
        return false;
    codeStalls_ = src.u64();
    codeLines_ = src.u64();
    return src.ok();
}

} // namespace catchsim
