/**
 * @file
 * TACT-Feeder (Section IV-B1): data-dependence prefetching for critical
 * loads whose *address* is a linear function of another load's *data*.
 *
 * Feeder identification tracks, for every architectural register, the PC
 * of the youngest load that (directly or transitively) produced it; the
 * feeder of a critical target is the youngest load PC among the target's
 * source registers. Once a feeder is confirmed (2-bit confidence), the
 * learner searches for addr = scale * data + base with scale in
 * {1,2,4,8} (shift-only hardware) and 2-bit confidence on the base.
 *
 * Prefetching: the feeder runs ahead on its own baseline stride (up to
 * feederDepth instances); each feeder prefetch, once its data would be
 * available, triggers the dependent target prefetch - the functional
 * memory supplies the value the fill would have returned.
 */

#ifndef CATCHSIM_TACT_TACT_FEEDER_HH_
#define CATCHSIM_TACT_TACT_FEEDER_HH_

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/sat_counter.hh"
#include "common/sim_config.hh"
#include "common/state_io.hh"
#include "common/types.hh"
#include "trace/micro_op.hh"

namespace catchsim
{

class TactFeeder
{
  public:
    /** Issues a prefetch; returns the cycle the data will be available. */
    using IssueFn = std::function<Cycle(Addr addr, Cycle now)>;
    /** Timing-only probe: when would this line's data be available? */
    using ProbeFn = std::function<Cycle(Addr addr, Cycle now)>;
    using StrideFn = std::function<bool(Addr pc, int64_t *stride)>;
    /** Reads the value a fill of @p addr would return. */
    using ReadMemFn = std::function<uint64_t(Addr addr)>;

    TactFeeder(const TactConfig &cfg, uint32_t num_arch_regs,
               StrideFn stride, IssueFn issue, ProbeFn probe,
               ReadMemFn read_mem);

    /** Program-order register-tracking update (every retired op). */
    void onRetire(const MicroOp &op);

    /** Called on each dispatch of a critical target load. */
    void onCriticalLoad(const MicroOp &op, Cycle now);

    /** Called when any load's value becomes available. */
    void onLoadComplete(Addr pc, Addr addr, uint64_t value, Cycle now);

    void dropTarget(Addr pc);

    uint64_t issued() const { return issued_; }
    uint64_t feederRunaheads() const { return runaheads_; }

    /** Serializes register tracking, learner/feeder maps (ascending key
     *  order) and the issue counters. */
    void saveWarmState(StateSink &sink) const;

    /** Restores a saveWarmState() stream; false on a malformed one. */
    bool loadWarmState(StateSource &src);

  private:
    static constexpr int kNumScales = 4;
    static constexpr int64_t kScales[kNumScales] = {1, 2, 4, 8};
    static constexpr uint32_t kTriesPerScale = 8;

    struct TargetState
    {
        // Feeder identification.
        Addr candidateFeeder = 0;
        SatCounter feederConf{2, 0};
        bool feederConfirmed = false;
        // Linear-relation learning.
        int scaleIdx = 0;
        uint32_t triesOnScale = 0;
        uint32_t scaleRounds = 0;
        int64_t lastBase = 0;
        bool haveBase = false;
        SatCounter baseConf{2, 0};
        bool learned = false;
        int64_t scale = 1;
        int64_t base = 0;
        bool exhausted = false;
    };

    struct FeederState
    {
        uint64_t lastValue = 0;
        bool haveValue = false;
        std::vector<Addr> targets;
    };

    void learnRelation(TargetState &st, uint64_t feeder_value,
                       Addr target_addr);

    TactConfig cfg_;
    StrideFn stride_;
    IssueFn issue_;
    ProbeFn probe_;
    ReadMemFn readMem_;

    std::vector<Addr> regLastLoadPc_;
    std::vector<SeqNum> regLastLoadSeq_;
    SeqNum seq_ = 0;

    std::unordered_map<Addr, TargetState> targets_;
    std::unordered_map<Addr, FeederState> feeders_;

    uint64_t issued_ = 0;
    uint64_t runaheads_ = 0;
};

} // namespace catchsim

#endif // CATCHSIM_TACT_TACT_FEEDER_HH_
