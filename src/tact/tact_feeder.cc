#include "tact/tact_feeder.hh"

#include <algorithm>

#include "common/bitutil.hh"

namespace catchsim
{

constexpr int64_t TactFeeder::kScales[];

TactFeeder::TactFeeder(const TactConfig &cfg, uint32_t num_arch_regs,
                       StrideFn stride, IssueFn issue, ProbeFn probe,
                       ReadMemFn read_mem)
    : cfg_(cfg), stride_(std::move(stride)), issue_(std::move(issue)),
      probe_(std::move(probe)), readMem_(std::move(read_mem)),
      regLastLoadPc_(num_arch_regs, 0), regLastLoadSeq_(num_arch_regs, 0)
{
}

void
TactFeeder::onRetire(const MicroOp &op)
{
    ++seq_;
    if (op.dst < 0)
        return;
    if (op.isLoad()) {
        // A load directly stamps its PC into its destination register.
        regLastLoadPc_[op.dst] = op.pc;
        regLastLoadSeq_[op.dst] = seq_;
        return;
    }
    // Non-loads propagate the youngest load PC across their sources.
    Addr youngest_pc = 0;
    SeqNum youngest_seq = 0;
    for (int8_t src : op.src) {
        if (src < 0)
            continue;
        if (regLastLoadSeq_[src] > youngest_seq) {
            youngest_seq = regLastLoadSeq_[src];
            youngest_pc = regLastLoadPc_[src];
        }
    }
    regLastLoadPc_[op.dst] = youngest_pc;
    regLastLoadSeq_[op.dst] = youngest_seq;
}

void
TactFeeder::dropTarget(Addr pc)
{
    auto it = targets_.find(pc);
    if (it == targets_.end())
        return;
    if (it->second.feederConfirmed) {
        auto fit = feeders_.find(it->second.candidateFeeder);
        if (fit != feeders_.end()) {
            auto &v = fit->second.targets;
            v.erase(std::remove(v.begin(), v.end(), pc), v.end());
            if (v.empty())
                feeders_.erase(fit);
        }
    }
    targets_.erase(it);
}

void
TactFeeder::learnRelation(TargetState &st, uint64_t feeder_value,
                          Addr target_addr)
{
    if (st.learned || st.exhausted)
        return;
    int64_t scale = kScales[st.scaleIdx];
    int64_t base = addrDelta(target_addr, addrScaled(scale, feeder_value, 0));
    if (st.haveBase && base == st.lastBase) {
        if (st.baseConf.increment() >= st.baseConf.max()) {
            st.learned = true;
            st.scale = scale;
            st.base = base;
            return;
        }
    } else {
        st.lastBase = base;
        st.haveBase = true;
        st.baseConf.reset();
    }
    if (++st.triesOnScale >= kTriesPerScale) {
        st.triesOnScale = 0;
        st.haveBase = false;
        st.scaleIdx = (st.scaleIdx + 1) % kNumScales;
        if (st.scaleIdx == 0 && ++st.scaleRounds >= 2)
            st.exhausted = true;
    }
}

void
TactFeeder::onCriticalLoad(const MicroOp &op, Cycle now)
{
    (void)now;
    TargetState &st = targets_[op.pc];
    if (st.exhausted)
        return;

    // Identify the feeder: youngest load PC among the source registers.
    Addr feeder_pc = 0;
    SeqNum feeder_seq = 0;
    for (int8_t src : op.src) {
        if (src < 0)
            continue;
        if (regLastLoadSeq_[src] > feeder_seq) {
            feeder_seq = regLastLoadSeq_[src];
            feeder_pc = regLastLoadPc_[src];
        }
    }
    if (feeder_pc == 0)
        return;
    if (feeder_pc == op.pc) {
        // Self-feeding chase (p = *p): no runahead possible; the paper
        // notes these cannot be covered by TACT-Feeder.
        st.exhausted = true;
        return;
    }

    if (!st.feederConfirmed) {
        if (st.candidateFeeder == feeder_pc) {
            if (st.feederConf.increment() >= st.feederConf.max()) {
                st.feederConfirmed = true;
                if (feeders_.size() < 32 ||
                    feeders_.contains(feeder_pc)) {
                    // Feeder table is capped at 32 entries (above).
                    // catch-analyze: allow(step-alloc-transitive)
                    feeders_[feeder_pc].targets.push_back(op.pc);
                } else {
                    st.exhausted = true; // feeder table full
                }
            }
        } else {
            st.candidateFeeder = feeder_pc;
            st.feederConf.reset();
        }
        return;
    }

    // Learn the linear relation from the feeder's latest value.
    auto fit = feeders_.find(st.candidateFeeder);
    if (fit != feeders_.end() && fit->second.haveValue)
        learnRelation(st, fit->second.lastValue, op.memAddr);
}

void
TactFeeder::onLoadComplete(Addr pc, Addr addr, uint64_t value, Cycle now)
{
    auto fit = feeders_.find(pc);
    if (fit == feeders_.end())
        return;
    fit->second.lastValue = value;
    fit->second.haveValue = true;

    // Runahead: prefetch future feeder instances on the feeder's own
    // stride; each chained target prefetch fires when the feeder data
    // would be available.
    int64_t stride = 0;
    if (!stride_(pc, &stride))
        return;
    bool any_learned = false;
    for (Addr t : fit->second.targets) {
        auto tit = targets_.find(t);
        if (tit != targets_.end() && tit->second.learned)
            any_learned = true;
    }
    if (!any_learned)
        return;

    ++runaheads_;
    // Every feeder instance fires, so issuing at the full depth (plus a
    // half-depth warmer for freshly learned targets) covers every future
    // instance in steady state without 16x redundant prefetches.
    const uint32_t depths[2] = {cfg_.feederDepth,
                                std::max(1u, cfg_.feederDepth / 2)};
    for (uint32_t k : depths) {
        Addr f_addr = addrStride(addr, stride, k);
        // Probe, don't move, the feeder line: only the availability time
        // of its data matters, and pulling the feeder's own stream into
        // the L1 would race the baseline prefetchers.
        Cycle data_at = probe_(f_addr, now);
        uint64_t f_value = readMem_(f_addr);
        for (Addr t : fit->second.targets) {
            auto tit = targets_.find(t);
            if (tit == targets_.end() || !tit->second.learned)
                continue;
            const TargetState &st = tit->second;
            Addr t_addr = addrScaled(st.scale, f_value, st.base);
            ++issued_;
            issue_(t_addr, data_at);
        }
        if (depths[0] == depths[1])
            break;
    }
}

namespace
{

template <typename Map>
std::vector<Addr>
feederSortedKeys(const Map &m)
{
    std::vector<Addr> keys;
    keys.reserve(m.size());
    for (const auto &kv : m)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    return keys;
}

} // namespace

void
TactFeeder::saveWarmState(StateSink &sink) const
{
    sink.tag(stateTag("TFDR"));
    sink.u64(regLastLoadPc_.size());
    for (size_t i = 0; i < regLastLoadPc_.size(); ++i) {
        sink.u64(regLastLoadPc_[i]);
        sink.u64(regLastLoadSeq_[i]);
    }
    sink.u64(seq_);

    sink.u64(targets_.size());
    for (Addr pc : feederSortedKeys(targets_)) {
        const TargetState &st = targets_.at(pc);
        sink.u64(pc);
        sink.u64(st.candidateFeeder);
        sink.u32(st.feederConf.value());
        sink.boolean(st.feederConfirmed);
        sink.u32(static_cast<uint32_t>(st.scaleIdx));
        sink.u32(st.triesOnScale);
        sink.u32(st.scaleRounds);
        sink.i64(st.lastBase);
        sink.boolean(st.haveBase);
        sink.u32(st.baseConf.value());
        sink.boolean(st.learned);
        sink.i64(st.scale);
        sink.i64(st.base);
        sink.boolean(st.exhausted);
    }

    sink.u64(feeders_.size());
    for (Addr pc : feederSortedKeys(feeders_)) {
        const FeederState &st = feeders_.at(pc);
        sink.u64(pc);
        sink.u64(st.lastValue);
        sink.boolean(st.haveValue);
        sink.u64(st.targets.size());
        for (Addr t : st.targets)
            sink.u64(t);
    }

    sink.u64(issued_);
    sink.u64(runaheads_);
}

bool
TactFeeder::loadWarmState(StateSource &src)
{
    if (!src.expect(stateTag("TFDR")))
        return false;
    if (src.u64() != regLastLoadPc_.size() ||
        !src.fits(regLastLoadPc_.size() * 16))
        return false;
    for (size_t i = 0; i < regLastLoadPc_.size(); ++i) {
        regLastLoadPc_[i] = src.u64();
        regLastLoadSeq_[i] = src.u64();
    }
    seq_ = src.u64();

    targets_.clear();
    uint64_t n = src.u64();
    if (!src.fits(n * 64))
        return false;
    for (uint64_t i = 0; i < n; ++i) {
        Addr pc = src.u64();
        TargetState &st = targets_[pc];
        st.candidateFeeder = src.u64();
        st.feederConf.reset(src.u32());
        st.feederConfirmed = src.boolean();
        st.scaleIdx = static_cast<int>(src.u32());
        if (st.scaleIdx < 0 || st.scaleIdx >= kNumScales)
            return false;
        st.triesOnScale = src.u32();
        st.scaleRounds = src.u32();
        st.lastBase = src.i64();
        st.haveBase = src.boolean();
        st.baseConf.reset(src.u32());
        st.learned = src.boolean();
        st.scale = src.i64();
        st.base = src.i64();
        st.exhausted = src.boolean();
    }

    feeders_.clear();
    n = src.u64();
    if (!src.fits(n * 25))
        return false;
    for (uint64_t i = 0; i < n; ++i) {
        Addr pc = src.u64();
        FeederState &st = feeders_[pc];
        st.lastValue = src.u64();
        st.haveValue = src.boolean();
        uint64_t count = src.u64();
        if (!src.fits(count * 8))
            return false;
        st.targets.reserve(count);
        for (uint64_t j = 0; j < count; ++j)
            st.targets.push_back(src.u64());
    }

    issued_ = src.u64();
    runaheads_ = src.u64();
    return src.ok();
}

} // namespace catchsim
