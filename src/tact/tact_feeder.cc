#include "tact/tact_feeder.hh"

#include <algorithm>

#include "common/bitutil.hh"

namespace catchsim
{

constexpr int64_t TactFeeder::kScales[];

TactFeeder::TactFeeder(const TactConfig &cfg, uint32_t num_arch_regs,
                       StrideFn stride, IssueFn issue, ProbeFn probe,
                       ReadMemFn read_mem)
    : cfg_(cfg), stride_(std::move(stride)), issue_(std::move(issue)),
      probe_(std::move(probe)), readMem_(std::move(read_mem)),
      regLastLoadPc_(num_arch_regs, 0), regLastLoadSeq_(num_arch_regs, 0)
{
}

void
TactFeeder::onRetire(const MicroOp &op)
{
    ++seq_;
    if (op.dst < 0)
        return;
    if (op.isLoad()) {
        // A load directly stamps its PC into its destination register.
        regLastLoadPc_[op.dst] = op.pc;
        regLastLoadSeq_[op.dst] = seq_;
        return;
    }
    // Non-loads propagate the youngest load PC across their sources.
    Addr youngest_pc = 0;
    SeqNum youngest_seq = 0;
    for (int8_t src : op.src) {
        if (src < 0)
            continue;
        if (regLastLoadSeq_[src] > youngest_seq) {
            youngest_seq = regLastLoadSeq_[src];
            youngest_pc = regLastLoadPc_[src];
        }
    }
    regLastLoadPc_[op.dst] = youngest_pc;
    regLastLoadSeq_[op.dst] = youngest_seq;
}

void
TactFeeder::dropTarget(Addr pc)
{
    auto it = targets_.find(pc);
    if (it == targets_.end())
        return;
    if (it->second.feederConfirmed) {
        auto fit = feeders_.find(it->second.candidateFeeder);
        if (fit != feeders_.end()) {
            auto &v = fit->second.targets;
            v.erase(std::remove(v.begin(), v.end(), pc), v.end());
            if (v.empty())
                feeders_.erase(fit);
        }
    }
    targets_.erase(it);
}

void
TactFeeder::learnRelation(TargetState &st, uint64_t feeder_value,
                          Addr target_addr)
{
    if (st.learned || st.exhausted)
        return;
    int64_t scale = kScales[st.scaleIdx];
    int64_t base = addrDelta(target_addr, addrScaled(scale, feeder_value, 0));
    if (st.haveBase && base == st.lastBase) {
        if (st.baseConf.increment() >= st.baseConf.max()) {
            st.learned = true;
            st.scale = scale;
            st.base = base;
            return;
        }
    } else {
        st.lastBase = base;
        st.haveBase = true;
        st.baseConf.reset();
    }
    if (++st.triesOnScale >= kTriesPerScale) {
        st.triesOnScale = 0;
        st.haveBase = false;
        st.scaleIdx = (st.scaleIdx + 1) % kNumScales;
        if (st.scaleIdx == 0 && ++st.scaleRounds >= 2)
            st.exhausted = true;
    }
}

void
TactFeeder::onCriticalLoad(const MicroOp &op, Cycle now)
{
    (void)now;
    TargetState &st = targets_[op.pc];
    if (st.exhausted)
        return;

    // Identify the feeder: youngest load PC among the source registers.
    Addr feeder_pc = 0;
    SeqNum feeder_seq = 0;
    for (int8_t src : op.src) {
        if (src < 0)
            continue;
        if (regLastLoadSeq_[src] > feeder_seq) {
            feeder_seq = regLastLoadSeq_[src];
            feeder_pc = regLastLoadPc_[src];
        }
    }
    if (feeder_pc == 0)
        return;
    if (feeder_pc == op.pc) {
        // Self-feeding chase (p = *p): no runahead possible; the paper
        // notes these cannot be covered by TACT-Feeder.
        st.exhausted = true;
        return;
    }

    if (!st.feederConfirmed) {
        if (st.candidateFeeder == feeder_pc) {
            if (st.feederConf.increment() >= st.feederConf.max()) {
                st.feederConfirmed = true;
                if (feeders_.size() < 32 ||
                    feeders_.contains(feeder_pc)) {
                    // Feeder table is capped at 32 entries (above).
                    // catch-analyze: allow(step-alloc-transitive)
                    feeders_[feeder_pc].targets.push_back(op.pc);
                } else {
                    st.exhausted = true; // feeder table full
                }
            }
        } else {
            st.candidateFeeder = feeder_pc;
            st.feederConf.reset();
        }
        return;
    }

    // Learn the linear relation from the feeder's latest value.
    auto fit = feeders_.find(st.candidateFeeder);
    if (fit != feeders_.end() && fit->second.haveValue)
        learnRelation(st, fit->second.lastValue, op.memAddr);
}

void
TactFeeder::onLoadComplete(Addr pc, Addr addr, uint64_t value, Cycle now)
{
    auto fit = feeders_.find(pc);
    if (fit == feeders_.end())
        return;
    fit->second.lastValue = value;
    fit->second.haveValue = true;

    // Runahead: prefetch future feeder instances on the feeder's own
    // stride; each chained target prefetch fires when the feeder data
    // would be available.
    int64_t stride = 0;
    if (!stride_(pc, &stride))
        return;
    bool any_learned = false;
    for (Addr t : fit->second.targets) {
        auto tit = targets_.find(t);
        if (tit != targets_.end() && tit->second.learned)
            any_learned = true;
    }
    if (!any_learned)
        return;

    ++runaheads_;
    // Every feeder instance fires, so issuing at the full depth (plus a
    // half-depth warmer for freshly learned targets) covers every future
    // instance in steady state without 16x redundant prefetches.
    const uint32_t depths[2] = {cfg_.feederDepth,
                                std::max(1u, cfg_.feederDepth / 2)};
    for (uint32_t k : depths) {
        Addr f_addr = addrStride(addr, stride, k);
        // Probe, don't move, the feeder line: only the availability time
        // of its data matters, and pulling the feeder's own stream into
        // the L1 would race the baseline prefetchers.
        Cycle data_at = probe_(f_addr, now);
        uint64_t f_value = readMem_(f_addr);
        for (Addr t : fit->second.targets) {
            auto tit = targets_.find(t);
            if (tit == targets_.end() || !tit->second.learned)
                continue;
            const TargetState &st = tit->second;
            Addr t_addr = addrScaled(st.scale, f_value, st.base);
            ++issued_;
            issue_(t_addr, data_at);
        }
        if (depths[0] == depths[1])
            break;
    }
}

} // namespace catchsim
