#include "tact/tact_cross.hh"

#include <algorithm>

#include "common/bitutil.hh"

namespace catchsim
{

TactCross::TactCross(const TactConfig &cfg, IssueFn issue)
    : cfg_(cfg), issue_(std::move(issue)), triggerCache_(cfg)
{
}

void
TactCross::dropTarget(Addr pc)
{
    auto it = targets_.find(pc);
    if (it == targets_.end())
        return;
    if (it->second.haveTrigger) {
        auto fit = firing_.find(it->second.triggerPc);
        if (fit != firing_.end()) {
            auto &v = fit->second;
            v.erase(std::remove(v.begin(), v.end(), pc), v.end());
        }
    }
    targets_.erase(it);
}

void
TactCross::train(TargetState &st, Addr target_pc, Addr addr)
{
    if (st.learned || st.exhausted)
        return;

    if (!st.haveTrigger) {
        auto cands = triggerCache_.candidates(addr);
        if (st.candidateIdx >= cands.size()) {
            st.candidateIdx = 0;
            if (++st.wraps > cfg_.crossCandidateWraps) {
                st.exhausted = true;
                return;
            }
        }
        if (cands.empty())
            return;
        Addr cand = cands[st.candidateIdx];
        if (cand == target_pc) {
            // Self associations belong to TACT-Self; skip.
            ++st.candidateIdx;
            return;
        }
        st.triggerPc = cand;
        st.haveTrigger = true;
        st.instances = 0;
        st.deltaConf.reset();
        // Learning-table churn: one entry per candidate trigger PC,
        // bounded by the static PC set, not per-cycle.
        // catch-analyze: allow(step-alloc-transitive)
        triggerLastAddr_.emplace(cand, 0);
        return;
    }

    auto lit = triggerLastAddr_.find(st.triggerPc);
    if (lit == triggerLastAddr_.end() || lit->second == 0)
        return;

    ++st.instances;
    int64_t delta = addrDelta(addr, lit->second);
    // Cross deltas are expected to stay within a 4 KB page (the paper
    // observes >85% do); larger deltas never train.
    if (delta > -static_cast<int64_t>(kPageBytes) &&
        delta < static_cast<int64_t>(kPageBytes) && delta != 0 &&
        delta == st.lastDelta) {
        if (st.deltaConf.increment() >= st.deltaConf.max()) {
            st.learned = true;
            st.delta = delta;
            // One entry per learned (trigger, target) association;
            // learning stops once confirmed, so growth is bounded.
            // catch-analyze: allow(step-alloc-transitive)
            firing_[st.triggerPc].push_back(target_pc);
            return;
        }
    } else {
        st.lastDelta = delta;
        st.deltaConf.reset();
    }

    if (st.instances >= cfg_.crossTrainInstances) {
        // This candidate failed to show a stable delta; try the next.
        st.haveTrigger = false;
        ++st.candidateIdx;
    }
}

void
TactCross::onLoad(Addr pc, Addr addr, Cycle now, bool is_critical_target)
{
    triggerCache_.onLoad(pc, addr);

    // Trigger side: record the address and fire learned targets.
    auto lit = triggerLastAddr_.find(pc);
    if (lit != triggerLastAddr_.end())
        lit->second = addr;
    auto fit = firing_.find(pc);
    if (fit != firing_.end()) {
        for (Addr target_pc : fit->second) {
            auto tit = targets_.find(target_pc);
            if (tit == targets_.end() || !tit->second.learned)
                continue;
            ++issued_;
            issue_(addrOffset(addr, tit->second.delta), now);
        }
    }

    // Target side: train.
    if (is_critical_target)
        train(targets_[pc], pc, addr);
}

namespace
{

template <typename Map>
std::vector<Addr>
sortedKeys(const Map &m)
{
    std::vector<Addr> keys;
    keys.reserve(m.size());
    for (const auto &kv : m)
        keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    return keys;
}

} // namespace

void
TactCross::saveWarmState(StateSink &sink) const
{
    sink.tag(stateTag("TCRS"));
    triggerCache_.saveWarmState(sink);

    sink.u64(targets_.size());
    for (Addr pc : sortedKeys(targets_)) {
        const TargetState &st = targets_.at(pc);
        sink.u64(pc);
        sink.u64(st.triggerPc);
        sink.boolean(st.haveTrigger);
        sink.u32(st.candidateIdx);
        sink.u32(st.wraps);
        sink.u32(st.instances);
        sink.i64(st.lastDelta);
        sink.u32(st.deltaConf.value());
        sink.boolean(st.learned);
        sink.i64(st.delta);
        sink.boolean(st.exhausted);
    }

    sink.u64(triggerLastAddr_.size());
    for (Addr pc : sortedKeys(triggerLastAddr_)) {
        sink.u64(pc);
        sink.u64(triggerLastAddr_.at(pc));
    }

    sink.u64(firing_.size());
    for (Addr pc : sortedKeys(firing_)) {
        const auto &pcs = firing_.at(pc);
        sink.u64(pc);
        sink.u64(pcs.size());
        for (Addr t : pcs)
            sink.u64(t);
    }

    sink.u64(issued_);
}

bool
TactCross::loadWarmState(StateSource &src)
{
    if (!src.expect(stateTag("TCRS")) ||
        !triggerCache_.loadWarmState(src))
        return false;

    targets_.clear();
    uint64_t n = src.u64();
    if (!src.fits(n * 47))
        return false;
    for (uint64_t i = 0; i < n; ++i) {
        Addr pc = src.u64();
        TargetState &st = targets_[pc];
        st.triggerPc = src.u64();
        st.haveTrigger = src.boolean();
        st.candidateIdx = src.u32();
        st.wraps = src.u32();
        st.instances = src.u32();
        st.lastDelta = src.i64();
        st.deltaConf.reset(src.u32());
        st.learned = src.boolean();
        st.delta = src.i64();
        st.exhausted = src.boolean();
    }

    triggerLastAddr_.clear();
    n = src.u64();
    if (!src.fits(n * 16))
        return false;
    for (uint64_t i = 0; i < n; ++i) {
        Addr pc = src.u64();
        triggerLastAddr_[pc] = src.u64();
    }

    firing_.clear();
    n = src.u64();
    if (!src.fits(n * 16))
        return false;
    for (uint64_t i = 0; i < n; ++i) {
        Addr pc = src.u64();
        uint64_t count = src.u64();
        if (!src.fits(count * 8))
            return false;
        auto &pcs = firing_[pc];
        pcs.reserve(count);
        for (uint64_t j = 0; j < count; ++j)
            pcs.push_back(src.u64());
    }

    issued_ = src.u64();
    return src.ok();
}

} // namespace catchsim
