/**
 * @file
 * TACT Trigger Cache (Section IV-B1): a 64-entry, 8-way set-associative
 * cache indexed by 4 KB page address. Each entry remembers the first
 * four load PCs that touched the page during its residency; critical
 * target PCs look their page up here to obtain cross-trigger candidates.
 */

#ifndef CATCHSIM_TACT_TRIGGER_CACHE_HH_
#define CATCHSIM_TACT_TRIGGER_CACHE_HH_

#include <array>
#include <cstdint>
#include <vector>

#include "common/sim_config.hh"
#include "common/state_io.hh"
#include "common/types.hh"

namespace catchsim
{

class TriggerCache
{
  public:
    explicit TriggerCache(const TactConfig &cfg);

    /** Tracks a demand load touching its 4 KB page. */
    void onLoad(Addr pc, Addr addr);

    /**
     * Returns the first-touch PCs recorded for @p addr's page, oldest
     * first. Empty if the page is not resident.
     */
    std::vector<Addr> candidates(Addr addr) const;

    /** Serializes entries and the recency clock (warmed-state). */
    void saveWarmState(StateSink &sink) const;

    /** Restores a saveWarmState() stream; false on a malformed one. */
    bool loadWarmState(StateSource &src);

  private:
    struct Entry
    {
        bool valid = false;
        Addr page = 0;
        std::array<Addr, 4> pcs{};
        uint32_t numPcs = 0;
        uint64_t lastUse = 0;
    };

    uint32_t setOf(Addr page) const;

    TactConfig cfg_;
    uint32_t sets_;
    uint32_t ways_;
    std::vector<Entry> entries_;
    uint64_t clock_ = 0;
};

} // namespace catchsim

#endif // CATCHSIM_TACT_TRIGGER_CACHE_HH_
