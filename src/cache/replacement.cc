#include "cache/replacement.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "common/rng.hh"

namespace catchsim
{

const char *
replKindName(ReplKind kind)
{
    switch (kind) {
      case ReplKind::Lru: return "lru";
      case ReplKind::Srrip: return "srrip";
      case ReplKind::TreePlru: return "tree-plru";
      case ReplKind::Random: return "random";
    }
    return "?";
}

namespace
{

/** True LRU via a per-line timestamp from a per-cache access counter. */
class LruPolicy : public ReplacementPolicy
{
  public:
    void
    reset(uint32_t sets, uint32_t ways) override
    {
        ways_ = ways;
        stamp_.assign(static_cast<size_t>(sets) * ways, 0);
        clock_ = 0;
    }

    void onHit(uint32_t set, uint32_t way) override { touch(set, way); }
    void onFill(uint32_t set, uint32_t way) override { touch(set, way); }

    uint32_t
    victim(uint32_t set) override
    {
        uint32_t best = 0;
        uint64_t oldest = ~0ULL;
        for (uint32_t w = 0; w < ways_; ++w) {
            uint64_t s = stamp_[static_cast<size_t>(set) * ways_ + w];
            if (s < oldest) {
                oldest = s;
                best = w;
            }
        }
        return best;
    }

    void
    saveWarmState(StateSink &sink) const override
    {
        sink.tag(stateTag("RLRU"));
        sink.u64(clock_);
        sink.u64(stamp_.size());
        for (uint64_t s : stamp_)
            sink.u64(s);
    }

    bool
    loadWarmState(StateSource &src) override
    {
        if (!src.expect(stateTag("RLRU")))
            return false;
        uint64_t clock = src.u64();
        if (src.u64() != stamp_.size() || !src.fits(stamp_.size() * 8))
            return false;
        clock_ = clock;
        for (auto &s : stamp_)
            s = src.u64();
        return src.ok();
    }

  private:
    void
    touch(uint32_t set, uint32_t way)
    {
        stamp_[static_cast<size_t>(set) * ways_ + way] = ++clock_;
    }

    uint32_t ways_ = 0;
    uint64_t clock_ = 0;
    std::vector<uint64_t> stamp_;
};

/** Static re-reference interval prediction with 2-bit RRPVs. */
class SrripPolicy : public ReplacementPolicy
{
  public:
    static constexpr uint8_t kMaxRrpv = 3;

    void
    reset(uint32_t sets, uint32_t ways) override
    {
        ways_ = ways;
        rrpv_.assign(static_cast<size_t>(sets) * ways, kMaxRrpv);
    }

    void
    onHit(uint32_t set, uint32_t way) override
    {
        rrpv_[static_cast<size_t>(set) * ways_ + way] = 0;
    }

    void
    onFill(uint32_t set, uint32_t way) override
    {
        // long re-reference interval on insertion
        rrpv_[static_cast<size_t>(set) * ways_ + way] = kMaxRrpv - 1;
    }

    uint32_t
    victim(uint32_t set) override
    {
        auto *row = &rrpv_[static_cast<size_t>(set) * ways_];
        while (true) {
            for (uint32_t w = 0; w < ways_; ++w)
                if (row[w] == kMaxRrpv)
                    return w;
            for (uint32_t w = 0; w < ways_; ++w)
                ++row[w];
        }
    }

    void
    saveWarmState(StateSink &sink) const override
    {
        sink.tag(stateTag("RRIP"));
        sink.u64(rrpv_.size());
        for (uint8_t v : rrpv_)
            sink.u8(v);
    }

    bool
    loadWarmState(StateSource &src) override
    {
        if (!src.expect(stateTag("RRIP")))
            return false;
        if (src.u64() != rrpv_.size() || !src.fits(rrpv_.size()))
            return false;
        for (auto &v : rrpv_)
            v = src.u8();
        return src.ok();
    }

  private:
    uint32_t ways_ = 0;
    std::vector<uint8_t> rrpv_;
};

/**
 * Tree pseudo-LRU. For non-power-of-two associativities the tree covers
 * the next power of two and out-of-range leaves are skipped by stepping
 * to their neighbour.
 */
class TreePlruPolicy : public ReplacementPolicy
{
  public:
    void
    reset(uint32_t sets, uint32_t ways) override
    {
        ways_ = ways;
        treeWays_ = 1u << ceilLog2(ways);
        bits_.assign(static_cast<size_t>(sets) * treeWays_, 0);
    }

    void onHit(uint32_t set, uint32_t way) override { touch(set, way); }
    void onFill(uint32_t set, uint32_t way) override { touch(set, way); }

    uint32_t
    victim(uint32_t set) override
    {
        auto *tree = &bits_[static_cast<size_t>(set) * treeWays_];
        uint32_t node = 1;
        while (node < treeWays_)
            node = 2 * node + tree[node];
        uint32_t way = node - treeWays_;
        return way < ways_ ? way : ways_ - 1;
    }

    void
    saveWarmState(StateSink &sink) const override
    {
        sink.tag(stateTag("PLRU"));
        sink.u64(bits_.size());
        for (uint8_t b : bits_)
            sink.u8(b);
    }

    bool
    loadWarmState(StateSource &src) override
    {
        if (!src.expect(stateTag("PLRU")))
            return false;
        if (src.u64() != bits_.size() || !src.fits(bits_.size()))
            return false;
        for (auto &b : bits_)
            b = src.u8();
        return src.ok();
    }

  private:
    void
    touch(uint32_t set, uint32_t way)
    {
        auto *tree = &bits_[static_cast<size_t>(set) * treeWays_];
        uint32_t node = treeWays_ + way;
        while (node > 1) {
            uint32_t parent = node / 2;
            tree[parent] = (node == 2 * parent) ? 1 : 0; // point away
            node = parent;
        }
    }

    uint32_t ways_ = 0;
    uint32_t treeWays_ = 0;
    std::vector<uint8_t> bits_;
};

/** Random replacement (seeded, deterministic). */
class RandomPolicy : public ReplacementPolicy
{
  public:
    explicit RandomPolicy(uint64_t seed) : rng_(seed) {}

    void
    reset(uint32_t sets, uint32_t ways) override
    {
        (void)sets;
        ways_ = ways;
    }

    void onHit(uint32_t, uint32_t) override {}
    void onFill(uint32_t, uint32_t) override {}

    uint32_t
    victim(uint32_t set) override
    {
        (void)set;
        return static_cast<uint32_t>(rng_.below(ways_));
    }

    void
    saveWarmState(StateSink &sink) const override
    {
        sink.tag(stateTag("RRND"));
        rng_.saveWarmState(sink);
    }

    bool
    loadWarmState(StateSource &src) override
    {
        return src.expect(stateTag("RRND")) && rng_.loadWarmState(src);
    }

  private:
    Rng rng_;
    uint32_t ways_ = 0;
};

} // namespace

std::unique_ptr<ReplacementPolicy>
makeReplacement(ReplKind kind, uint64_t seed)
{
    switch (kind) {
      case ReplKind::Lru: return std::make_unique<LruPolicy>();
      case ReplKind::Srrip: return std::make_unique<SrripPolicy>();
      case ReplKind::TreePlru: return std::make_unique<TreePlruPolicy>();
      case ReplKind::Random: return std::make_unique<RandomPolicy>(seed);
    }
    CATCHSIM_ASSERT(false, "unreachable replacement kind");
    return nullptr;
}

} // namespace catchsim
