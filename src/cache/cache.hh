/**
 * @file
 * A single set-associative cache array with in-flight fill tracking.
 *
 * Timing note: a line filled at cycle T with source latency L carries
 * readyAt = T + L. A demand access before readyAt pays the remaining
 * time on top of the hit latency - this is how MSHR merging and late
 * prefetches are modelled, and it is what the TACT timeliness stats
 * (Fig 11) measure.
 */

#ifndef CATCHSIM_CACHE_CACHE_HH_
#define CATCHSIM_CACHE_CACHE_HH_

#include <string>
#include <vector>

#include "cache/replacement.hh"
#include "common/sim_config.hh"
#include "common/types.hh"

namespace catchsim
{

/** Who placed a line into a cache. */
enum class FillSource : uint8_t
{
    Demand,
    StridePf,   ///< baseline L1 stride prefetcher
    StreamPf,   ///< baseline L2 multi-stream prefetcher
    TactPf,     ///< any TACT data prefetcher
    TactCodePf, ///< TACT code runahead
    OraclePf,
    Writeback,  ///< victim from an inner level
};

/** One cache line's metadata. */
struct CacheLine
{
    Addr tag = 0;
    bool valid = false;
    bool dirty = false;
    Cycle readyAt = 0;        ///< fill completion time
    FillSource source = FillSource::Demand;
    /**
     * Hierarchy level the fill data came from. While the line is still
     * in flight (readyAt in the future), a demand access is really an
     * L1 miss merging into the outstanding fill's MSHR, so it reports
     * this level as its server.
     */
    Level fillLevel = Level::None;
    bool usedSinceFill = false; ///< for prefetch-accuracy stats
};

/** Counters for hit rates and the power model. */
struct CacheStats
{
    uint64_t demandAccesses = 0;
    uint64_t demandHits = 0;
    uint64_t fills = 0;
    uint64_t evictions = 0;
    uint64_t dirtyEvictions = 0;
    uint64_t invalidations = 0;
    uint64_t uselessPrefetchEvictions = 0;

    // Energy accounting: every lookup is a read of the array; every fill
    // or dirty-bit update is a write.
    uint64_t readOps = 0;
    uint64_t writeOps = 0;

    double
    hitRate() const
    {
        return demandAccesses
                   ? static_cast<double>(demandHits) / demandAccesses
                   : 0.0;
    }
};

/** A set-associative cache array. */
class Cache
{
  public:
    /** Result of inserting a line: the victim, if one was displaced. */
    struct Victim
    {
        bool valid = false;
        Addr addr = 0;
        bool dirty = false;
        FillSource source = FillSource::Demand;
        bool usedSinceFill = false;
    };

    Cache(std::string name, const CacheGeometry &geom, ReplKind repl,
          uint64_t seed);

    /**
     * Looks up the line containing @p addr.
     * @param is_demand updates hit/access stats and recency when true
     * @returns the line if present, nullptr otherwise
     */
    CacheLine *lookup(Addr addr, bool is_demand);

    /**
     * Functional-warming lookup: updates replacement recency exactly
     * like a demand hit, but touches no counters — warming must be
     * invisible in the stats the detailed windows report.
     */
    CacheLine *warmLookup(Addr addr);

    /** Peeks without updating stats or recency (oracle queries). */
    const CacheLine *peek(Addr addr) const;

    /**
     * Inserts the line containing @p addr, evicting if necessary.
     * If the line is already present its metadata is merged instead.
     */
    Victim fill(Addr addr, bool dirty, Cycle ready_at, FillSource source,
                Level fill_level = Level::None);

    /**
     * Functional-warming fill: same placement/merge/eviction decisions
     * as @ref fill (so inclusion invariants keep holding) but the line
     * is ready immediately and no counters move.
     */
    Victim warmFill(Addr addr, bool dirty, FillSource source,
                    Level fill_level = Level::None);

    /** Removes the line if present. @returns true if it was dirty.
     *  @p count=false keeps warming out of the invalidation stats. */
    bool invalidate(Addr addr, bool *was_present = nullptr,
                    bool count = true);

    /** Marks the line dirty (store commit); @returns false on miss. */
    bool setDirty(Addr addr);

    const std::string &name() const { return name_; }
    const CacheGeometry &geometry() const { return geom_; }
    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_ = CacheStats(); }
    uint32_t latency() const { return geom_.latency; }

    /**
     * Serializes the array state — every line's tag/valid/dirty/
     * readyAt/source/fillLevel/usedSinceFill plus the replacement
     * policy state — for warmed-state snapshots. Stats are NOT included
     * (the simulator resets them at the snapshot boundary anyway).
     */
    void saveWarmState(StateSink &sink) const;

    /**
     * Restores a saveWarmState() stream into a cache of the same
     * geometry. @returns false on a malformed or mis-sized stream.
     */
    bool loadWarmState(StateSource &src);

  private:
    uint32_t setIndex(Addr addr) const;
    Victim fillImpl(Addr addr, bool dirty, Cycle ready_at,
                    FillSource source, Level fill_level, bool count);

    std::string name_;
    CacheGeometry geom_;
    uint32_t numSets_;
    std::vector<CacheLine> lines_;
    std::unique_ptr<ReplacementPolicy> repl_;
    CacheStats stats_;
};

} // namespace catchsim

#endif // CATCHSIM_CACHE_CACHE_HH_
