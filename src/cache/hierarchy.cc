#include "cache/hierarchy.hh"

#include "common/logging.hh"

namespace catchsim
{

CacheHierarchy::CacheHierarchy(const SimConfig &cfg)
    : cfg_(cfg), dram_(cfg.dram)
{
    auto valid = cfg_.validate();
    CATCHSIM_ASSERT(valid.ok(), "invalid config reached the hierarchy: ",
                    valid.ok() ? "" : valid.error().message);
    for (CoreId c = 0; c < cfg.numCores; ++c) {
        l1i_.push_back(std::make_unique<Cache>(
            "l1i" + std::to_string(c), cfg.l1i, ReplKind::Lru, cfg.seed));
        l1d_.push_back(std::make_unique<Cache>(
            "l1d" + std::to_string(c), cfg.l1d, ReplKind::Lru, cfg.seed));
        if (cfg.hasL2)
            l2_.push_back(std::make_unique<Cache>(
                "l2." + std::to_string(c), cfg.l2, ReplKind::Lru,
                cfg.seed));
        stride_.emplace_back(256);
        stream_.emplace_back(64, cfg.streamDegree);
    }
    llc_ = std::make_unique<Cache>("llc", cfg.llc, ReplKind::Lru, cfg.seed);
    streamCandidates_.reserve(cfg.streamDegree);
}

void
CacheHierarchy::saveWarmState(StateSink &sink) const
{
    sink.tag(stateTag("HIER"));
    sink.u32(cfg_.numCores);
    sink.boolean(cfg_.hasL2);
    for (CoreId c = 0; c < cfg_.numCores; ++c) {
        l1i_[c]->saveWarmState(sink);
        l1d_[c]->saveWarmState(sink);
        if (cfg_.hasL2)
            l2_[c]->saveWarmState(sink);
        stride_[c].saveWarmState(sink);
        stream_[c].saveWarmState(sink);
    }
    llc_->saveWarmState(sink);
}

bool
CacheHierarchy::loadWarmState(StateSource &src)
{
    if (!src.expect(stateTag("HIER")))
        return false;
    if (src.u32() != cfg_.numCores || src.boolean() != cfg_.hasL2)
        return false;
    for (CoreId c = 0; c < cfg_.numCores; ++c) {
        if (!l1i_[c]->loadWarmState(src) ||
            !l1d_[c]->loadWarmState(src))
            return false;
        if (cfg_.hasL2 && !l2_[c]->loadWarmState(src))
            return false;
        if (!stride_[c].loadWarmState(src) ||
            !stream_[c].loadWarmState(src))
            return false;
    }
    return llc_->loadWarmState(src) && src.ok();
}

void
CacheHierarchy::resetStats()
{
    stats_ = HierarchyStats();
    tactTimeliness_.reset();
    for (CoreId c = 0; c < cfg_.numCores; ++c) {
        l1i_[c]->resetStats();
        l1d_[c]->resetStats();
        if (cfg_.hasL2)
            l2_[c]->resetStats();
    }
    llc_->resetStats();
    dram_.resetStats();
}

// ---------------------------------------------------------------------
// Fill paths
// ---------------------------------------------------------------------

void
CacheHierarchy::fillL1(CoreId core, bool code, Addr addr, bool dirty,
                       Cycle ready_at, FillSource src, Cycle now,
                       Level fill_level, bool warm)
{
    Cache &l1 = code ? *l1i_[core] : *l1d_[core];
    Cache::Victim victim =
        warm ? l1.warmFill(addr, dirty, src, fill_level)
             : l1.fill(addr, dirty, ready_at, src, fill_level);
    if (!victim.valid || !victim.dirty)
        return; // clean L1 victims are dropped (an outer copy exists)
    if (cfg_.hasL2) {
        fillL2(core, victim.addr, true, now, FillSource::Writeback, now,
               warm);
    } else {
        // Two-level: the writeback crosses the interconnect to the LLC.
        if (!warm) {
            // catch-analyze: allow(warming-purity)
            ++stats_.ringTransfers;
        }
        if (CacheLine *line = llc_->lookup(victim.addr, false))
            line->dirty = true;
        else
            fillLlc(victim.addr, true, now, FillSource::Writeback, now,
                    warm);
    }
}

void
CacheHierarchy::fillL2(CoreId core, Addr addr, bool dirty, Cycle ready_at,
                       FillSource src, Cycle now, bool warm)
{
    CATCHSIM_ASSERT(cfg_.hasL2, "fillL2 without an L2");
    // Exclusive LLC: a line entering the L2 must leave the LLC. The
    // demand paths invalidate before calling us; this catches the
    // writeback path, where an L1 victim re-enters an L2 that evicted
    // the line (to the LLC) while the L1 still held it. The incoming
    // data is the newest version, so the LLC copy is simply dropped
    // (its dirty bit merges in case the L2 copy aged dirty-out).
    if (cfg_.inclusion == InclusionPolicy::Exclusive)
        dirty |= llc_->invalidate(addr, nullptr, !warm);
    Cache::Victim victim = warm
                               ? l2_[core]->warmFill(addr, dirty, src)
                               : l2_[core]->fill(addr, dirty, ready_at,
                                                 src);
    if (!victim.valid)
        return;
    switch (cfg_.inclusion) {
      case InclusionPolicy::Exclusive:
        // Every L2 victim's data moves to the LLC (the exclusive-LLC
        // victim traffic the paper's power analysis highlights).
        if (!warm) {
            // catch-analyze: allow(warming-purity)
            ++stats_.ringTransfers;
        }
        fillLlc(victim.addr, victim.dirty, now, FillSource::Writeback,
                now, warm);
        break;
      case InclusionPolicy::Inclusive:
        // The line is guaranteed LLC-resident; only dirty data moves.
        if (victim.dirty) {
            if (!warm) {
                // catch-analyze: allow(warming-purity)
                ++stats_.ringTransfers;
            }
            if (CacheLine *line = llc_->lookup(victim.addr, false))
                line->dirty = true;
            else
                fillLlc(victim.addr, true, now, FillSource::Writeback,
                        now, warm);
        }
        break;
      case InclusionPolicy::Nine:
        if (victim.dirty) {
            if (!warm) {
                // catch-analyze: allow(warming-purity)
                ++stats_.ringTransfers;
            }
            if (CacheLine *line = llc_->lookup(victim.addr, false))
                line->dirty = true;
            else
                fillLlc(victim.addr, true, now, FillSource::Writeback,
                        now, warm);
        }
        break;
    }
}

void
CacheHierarchy::fillLlc(Addr addr, bool dirty, Cycle ready_at,
                        FillSource src, Cycle now, bool warm)
{
    Cache::Victim victim = warm ? llc_->warmFill(addr, dirty, src)
                                : llc_->fill(addr, dirty, ready_at, src);
    if (!victim.valid)
        return;
    bool victim_dirty = victim.dirty;
    if (cfg_.inclusion == InclusionPolicy::Inclusive) {
        // Back-invalidate inner copies across all cores.
        for (CoreId c = 0; c < cfg_.numCores; ++c) {
            l1i_[c]->invalidate(victim.addr, nullptr, !warm);
            victim_dirty |= l1d_[c]->invalidate(victim.addr, nullptr,
                                                !warm);
            if (cfg_.hasL2)
                victim_dirty |= l2_[c]->invalidate(victim.addr, nullptr,
                                                   !warm);
        }
    }
    if (victim_dirty && !warm) {
        // Warming drops dirty victims silently: data correctness lives
        // in the functional memory, and DRAM timing state is rebuilt by
        // the per-window detailed warmup.
        ++stats_.memTransfers;         // catch-analyze: allow(warming-purity)
        dram_.write(victim.addr, now); // catch-analyze: allow(warming-purity)
    }
}

// ---------------------------------------------------------------------
// Demand paths
// ---------------------------------------------------------------------

void
CacheHierarchy::streamObserve(CoreId core, Addr addr, Cycle now)
{
    if (!cfg_.l2StreamPrefetcher)
        return;
    streamCandidates_.clear();
    stream_[core].observe(addr, streamCandidates_);
    for (Addr line : streamCandidates_) {
        ++stats_.streamPfIssued;
        if (cfg_.hasL2) {
            if (l2_[core]->peek(line))
                continue;
            if (const CacheLine *in_llc = llc_->peek(line)) {
                // Pull into the L2 ahead of use.
                ++stats_.ringTransfers;
                bool dirty = in_llc->dirty;
                if (cfg_.inclusion == InclusionPolicy::Exclusive)
                    llc_->invalidate(line);
                fillL2(core, line, dirty, now + latLlc(),
                       FillSource::StreamPf, now);
            } else {
                ++stats_.ringTransfers;
                ++stats_.memTransfers;
                uint64_t mlat = dram_.read(line, now + latLlc());
                // Inclusive LLC: an L2 fill from memory must also fill
                // the LLC or inclusion breaks.
                if (cfg_.inclusion == InclusionPolicy::Inclusive)
                    fillLlc(line, false, now + latLlc() + mlat,
                            FillSource::StreamPf, now);
                fillL2(core, line, false, now + latLlc() + mlat,
                       FillSource::StreamPf, now);
            }
        } else {
            if (llc_->peek(line))
                continue;
            ++stats_.memTransfers;
            uint64_t mlat = dram_.read(line, now + latLlc());
            fillLlc(line, false, now + latLlc() + mlat,
                    FillSource::StreamPf, now);
        }
    }
}

void
CacheHierarchy::warmStreamObserve(CoreId core, Addr addr, Cycle now)
{
    if (!cfg_.l2StreamPrefetcher)
        return;
    streamCandidates_.clear();
    stream_[core].observe(addr, streamCandidates_);
    for (Addr line : streamCandidates_) {
        if (cfg_.hasL2) {
            if (l2_[core]->peek(line))
                continue;
            if (const CacheLine *in_llc = llc_->peek(line)) {
                bool dirty = in_llc->dirty;
                if (cfg_.inclusion == InclusionPolicy::Exclusive)
                    llc_->invalidate(line, nullptr, false);
                fillL2(core, line, dirty, 0, FillSource::StreamPf, now,
                       true);
            } else {
                if (cfg_.inclusion == InclusionPolicy::Inclusive)
                    fillLlc(line, false, 0, FillSource::StreamPf, now,
                            true);
                fillL2(core, line, false, 0, FillSource::StreamPf, now,
                       true);
            }
        } else {
            if (llc_->peek(line))
                continue;
            fillLlc(line, false, 0, FillSource::StreamPf, now, true);
        }
    }
}

void
CacheHierarchy::warmMiss(CoreId core, bool code, Addr addr, Cycle now,
                         bool dirty_fill)
{
    warmStreamObserve(core, addr, now);

    if (cfg_.hasL2) {
        if (CacheLine *line = l2_[core]->warmLookup(addr)) {
            line->usedSinceFill = true;
            if (dirty_fill)
                line->dirty = true;
            fillL1(core, code, addr, dirty_fill, 0, FillSource::Demand,
                   now, Level::L2, true);
            return;
        }
    }

    if (CacheLine *line = llc_->warmLookup(addr)) {
        line->usedSinceFill = true;
        bool dirty = line->dirty || dirty_fill;
        if (cfg_.inclusion == InclusionPolicy::Exclusive) {
            llc_->invalidate(addr, nullptr, false);
            fillL2(core, addr, dirty, 0, FillSource::Demand, now, true);
            fillL1(core, code, addr, dirty_fill, 0, FillSource::Demand,
                   now, Level::LLC, true);
        } else {
            if (cfg_.hasL2)
                fillL2(core, addr, false, 0, FillSource::Demand, now,
                       true);
            fillL1(core, code, addr, dirty_fill, 0, FillSource::Demand,
                   now, Level::LLC, true);
        }
        return;
    }

    // Miss to memory: the line materialises with no DRAM timing.
    switch (cfg_.inclusion) {
      case InclusionPolicy::Exclusive:
        fillL2(core, addr, dirty_fill, 0, FillSource::Demand, now, true);
        break;
      case InclusionPolicy::Inclusive:
        fillLlc(addr, false, 0, FillSource::Demand, now, true);
        if (cfg_.hasL2)
            fillL2(core, addr, dirty_fill, 0, FillSource::Demand, now,
                   true);
        break;
      case InclusionPolicy::Nine:
        fillLlc(addr, false, 0, FillSource::Demand, now, true);
        if (cfg_.hasL2)
            fillL2(core, addr, dirty_fill, 0, FillSource::Demand, now,
                   true);
        break;
    }
    fillL1(core, code, addr, dirty_fill, 0, FillSource::Demand, now,
           Level::Mem, true);
}

MemResult
CacheHierarchy::serviceMiss(CoreId core, bool code, Addr addr, Cycle now,
                            bool dirty_fill, uint64_t *hit_ctr)
{
    streamObserve(core, addr, now);

    if (cfg_.hasL2) {
        if (CacheLine *line = l2_[core]->lookup(addr, true)) {
            line->usedSinceFill = true;
            uint64_t lat = latL2() + remaining(*line, now);
            if (dirty_fill)
                line->dirty = true;
            fillL1(core, code, addr, dirty_fill, now + lat,
                   FillSource::Demand, now, Level::L2);
            ++hit_ctr[static_cast<int>(Level::L2)];
            return {Level::L2, lat, false};
        }
    }

    // Request crosses the interconnect to the LLC.
    ++stats_.ringTransfers;
    if (CacheLine *line = llc_->lookup(addr, true)) {
        line->usedSinceFill = true;
        ++stats_.ringTransfers; // data return
        uint64_t lat = latLlc() + remaining(*line, now);
        bool dirty = line->dirty || dirty_fill;
        if (cfg_.inclusion == InclusionPolicy::Exclusive) {
            llc_->invalidate(addr);
            fillL2(core, addr, dirty, now + lat, FillSource::Demand, now);
            fillL1(core, code, addr, dirty_fill, now + lat,
                   FillSource::Demand, now, Level::LLC);
        } else {
            if (cfg_.hasL2)
                fillL2(core, addr, false, now + lat, FillSource::Demand,
                       now);
            fillL1(core, code, addr, dirty_fill, now + lat,
                   FillSource::Demand, now, Level::LLC);
        }
        ++hit_ctr[static_cast<int>(Level::LLC)];
        return {Level::LLC, lat, false};
    }

    // Miss to memory.
    ++stats_.ringTransfers; // data return from the memory controller
    ++stats_.memTransfers;
    uint64_t mlat = dram_.read(addr, now + latLlc());
    uint64_t lat = latLlc() + mlat;
    switch (cfg_.inclusion) {
      case InclusionPolicy::Exclusive:
        fillL2(core, addr, dirty_fill, now + lat, FillSource::Demand, now);
        break;
      case InclusionPolicy::Inclusive:
        fillLlc(addr, false, now + lat, FillSource::Demand, now);
        if (cfg_.hasL2)
            fillL2(core, addr, dirty_fill, now + lat, FillSource::Demand,
                   now);
        break;
      case InclusionPolicy::Nine:
        fillLlc(addr, false, now + lat, FillSource::Demand, now);
        if (cfg_.hasL2)
            fillL2(core, addr, dirty_fill, now + lat, FillSource::Demand,
                   now);
        break;
    }
    fillL1(core, code, addr, dirty_fill, now + lat, FillSource::Demand,
           now, Level::Mem);
    ++hit_ctr[static_cast<int>(Level::Mem)];
    return {Level::Mem, lat, false};
}

void
CacheHierarchy::noteTactUse(CacheLine &line, Cycle now)
{
    if (line.usedSinceFill || line.source != FillSource::TactPf)
        return;
    ++stats_.tactUsefulHits;
    uint64_t rem = remaining(line, now);
    uint64_t llc = latLlc();
    uint64_t saved_pct =
        rem >= llc ? 0 : ((llc - rem) * 100) / llc;
    tactTimeliness_.add(saved_pct);
}

MemResult
CacheHierarchy::load(CoreId core, Addr pc, Addr addr, Cycle now)
{
    ++stats_.loads;

    // Train the baseline L1 stride prefetcher on every demand load.
    if (cfg_.l1StridePrefetcher) {
        if (auto pf = stride_[core].observe(pc, addr)) {
            ++stats_.stridePfIssued;
            prefetchToL1(core, *pf, now, PfKind::Stride);
        }
    }

    if (CacheLine *line = l1d_[core]->lookup(addr, true)) {
        noteTactUse(*line, now);
        bool tact = line->source == FillSource::TactPf;
        line->usedSinceFill = true;
        uint64_t rem = remaining(*line, now);
        uint64_t lat = latL1() + rem;
        // A hit on a still-in-flight line is really an L1 miss merged
        // into the outstanding fill's MSHR; report the level the fill
        // came from, as the hardware (and the criticality detector)
        // would see it.
        Level served = Level::L1;
        if (rem > 0 && line->fillLevel != Level::None)
            served = line->fillLevel;
        ++stats_.loadHits[static_cast<int>(served)];
        ++stats_.l1HitsBySource[static_cast<int>(line->source)];
        stats_.l1HitWaitBySource[static_cast<int>(line->source)] += rem;

        // Fig 4 oracle: demote L1 hits to L2 latency.
        DemoteMode m = cfg_.oracle.demote;
        if (served == Level::L1 &&
            (m == DemoteMode::L1ToL2All ||
             (m == DemoteMode::L1ToL2NonCrit && !critical(core, pc)))) {
            ++stats_.demotedLoads;
            lat = latL2();
        }
        stats_.totalLoadLatency += lat;
        stats_.totalL1HitLatency += lat;
        return {served, lat, tact};
    }

    // Fig 5 oracle: zero-time critical prefetch of L2/LLC residents.
    if (cfg_.oracle.oraclePrefetch &&
        (cfg_.oracle.oraclePrefetchPcLimit == 0 || critical(core, pc))) {
        if (inL2OrLlc(core, addr)) {
            ++stats_.oracleConverted;
            ++stats_.loadHits[static_cast<int>(Level::L1)];
            fillL1(core, false, addr, false, now, FillSource::OraclePf,
                   now);
            stats_.totalLoadLatency += latL1();
            stats_.totalL1HitLatency += latL1();
            return {Level::L1, latL1(), true};
        }
    }

    MemResult r = serviceMiss(core, false, addr, now, false,
                               stats_.loadHits);

    // Fig 4 oracle: demote L2 / LLC hits one level out.
    DemoteMode m = cfg_.oracle.demote;
    if (r.served == Level::L2 &&
        (m == DemoteMode::L2ToLlcAll ||
         (m == DemoteMode::L2ToLlcNonCrit && !critical(core, pc)))) {
        ++stats_.demotedLoads;
        r.latency = latLlc();
    } else if (r.served == Level::LLC &&
               (m == DemoteMode::LlcToMemAll ||
                (m == DemoteMode::LlcToMemNonCrit &&
                 !critical(core, pc)))) {
        ++stats_.demotedLoads;
        r.latency = latMemEstimate();
    }
    stats_.totalLoadLatency += r.latency;
    return r;
}

void
CacheHierarchy::storeCommit(CoreId core, Addr addr, Cycle now)
{
    ++stats_.storeAccesses;
    if (CacheLine *line = l1d_[core]->lookup(addr, true)) {
        line->dirty = true;
        line->usedSinceFill = true;
        return;
    }
    ++stats_.storeL1Misses;
    // RFO: bring the line in dirty; the pipeline does not wait for it.
    serviceMiss(core, false, addr, now, true, stats_.rfoHits);
}

MemResult
CacheHierarchy::codeFetch(CoreId core, Addr addr, Cycle now)
{
    ++stats_.codeFetches;
    if (cfg_.oracle.oracleCodeInL1) {
        ++stats_.codeHits[static_cast<int>(Level::L1)];
        return {Level::L1, cfg_.l1i.latency, false};
    }
    if (CacheLine *line = l1i_[core]->lookup(addr, true)) {
        line->usedSinceFill = true;
        ++stats_.codeHits[static_cast<int>(Level::L1)];
        return {Level::L1, cfg_.l1i.latency + remaining(*line, now),
                false};
    }
    return serviceMiss(core, true, addr, now, false,
                       stats_.codeHits);
}

Level
CacheHierarchy::prefetchToL1(CoreId core, Addr addr, Cycle now,
                             PfKind kind)
{
    bool code = kind == PfKind::TactCode;
    Cache &l1 = code ? *l1i_[core] : *l1d_[core];
    bool is_tact = kind != PfKind::Stride;
    if (is_tact)
        ++stats_.tactPrefetches;
    if (kind == PfKind::TactCode)
        ++stats_.codePfIssued;

    // L1 prefetch requests train the L2 stream prefetcher like demand
    // misses do. This must happen before the L1-residency drop: when
    // another prefetcher already covered the line into the L1, the
    // stream engine still needs to see the address stream or it starves
    // and stops running ahead.
    if (kind == PfKind::Stride)
        streamObserve(core, addr, now);

    if (l1.peek(addr)) {
        if (is_tact)
            ++stats_.tactPfDropped;
        return Level::None;
    }

    FillSource src = kind == PfKind::Stride ? FillSource::StridePf
                     : code ? FillSource::TactCodePf
                            : FillSource::TactPf;

    if (cfg_.hasL2) {
        if (const CacheLine *line = l2_[core]->peek(addr)) {
            uint64_t lat = latL2() + remaining(*line, now);
            fillL1(core, code, addr, false, now + lat, src, now,
                   Level::L2);
            if (is_tact)
                ++stats_.tactPfFromL2;
            return Level::L2;
        }
    }

    ++stats_.ringTransfers; // request
    if (const CacheLine *line = llc_->peek(addr)) {
        ++stats_.ringTransfers; // data
        uint64_t lat = latLlc() + remaining(*line, now);
        bool dirty = line->dirty;
        if (cfg_.inclusion == InclusionPolicy::Exclusive) {
            llc_->invalidate(addr);
            fillL2(core, addr, dirty, now + lat, src, now);
        } else if (cfg_.hasL2) {
            fillL2(core, addr, false, now + lat, src, now);
        }
        fillL1(core, code, addr, false, now + lat, src, now, Level::LLC);
        if (is_tact)
            ++stats_.tactPfFromLlc;
        return Level::LLC;
    }

    if (code) {
        // Code runahead is strictly inter-cache: front-end prefetches
        // that miss the on-die hierarchy are dropped rather than pulled
        // from DRAM (a wrong-path DRAM fetch would be pure pollution).
        ++stats_.tactPfNotOnDie;
        return Level::None;
    }
    ++stats_.ringTransfers; // data return from memory controller
    ++stats_.memTransfers;
    uint64_t mlat = dram_.read(addr, now + latLlc());
    uint64_t lat = latLlc() + mlat;
    switch (cfg_.inclusion) {
      case InclusionPolicy::Exclusive:
        fillL2(core, addr, false, now + lat, src, now);
        break;
      case InclusionPolicy::Inclusive:
        fillLlc(addr, false, now + lat, src, now);
        if (cfg_.hasL2)
            fillL2(core, addr, false, now + lat, src, now);
        break;
      case InclusionPolicy::Nine:
        fillLlc(addr, false, now + lat, src, now);
        break;
    }
    fillL1(core, code, addr, false, now + lat, src, now, Level::Mem);
    if (is_tact)
        ++stats_.tactPfFromMem;
    return Level::Mem;
}

void
CacheHierarchy::warmAccess(CoreId core, Addr pc, Addr addr, Cycle now,
                           WarmKind kind)
{
    switch (kind) {
      case WarmKind::Load:
        // Train the stride prefetcher exactly like the demand path so
        // warmed cache contents reflect its fills.
        if (cfg_.l1StridePrefetcher) {
            if (auto pf = stride_[core].observe(pc, addr))
                warmPrefetchToL1(core, *pf, now);
        }
        if (CacheLine *line = l1d_[core]->warmLookup(addr)) {
            line->usedSinceFill = true;
            return;
        }
        warmMiss(core, false, addr, now, false);
        return;
      case WarmKind::Store:
        if (CacheLine *line = l1d_[core]->warmLookup(addr)) {
            line->dirty = true;
            line->usedSinceFill = true;
            return;
        }
        // RFO write-allocate, dirty on arrival.
        warmMiss(core, false, addr, now, true);
        return;
      case WarmKind::Code:
        if (CacheLine *line = l1i_[core]->warmLookup(addr)) {
            line->usedSinceFill = true;
            return;
        }
        warmMiss(core, true, addr, now, false);
        return;
    }
}

void
CacheHierarchy::warmPrefetchToL1(CoreId core, Addr addr, Cycle now)
{
    // State-only analogue of prefetchToL1(PfKind::Stride): same stream
    // training and placement decisions, no latency, no counters.
    warmStreamObserve(core, addr, now);
    if (l1d_[core]->peek(addr))
        return;
    FillSource src = FillSource::StridePf;
    if (cfg_.hasL2) {
        if (l2_[core]->peek(addr)) {
            fillL1(core, false, addr, false, 0, src, now, Level::L2,
                   true);
            return;
        }
    }
    if (const CacheLine *line = llc_->peek(addr)) {
        bool dirty = line->dirty;
        if (cfg_.inclusion == InclusionPolicy::Exclusive) {
            llc_->invalidate(addr, nullptr, false);
            fillL2(core, addr, dirty, 0, src, now, true);
        } else if (cfg_.hasL2) {
            fillL2(core, addr, false, 0, src, now, true);
        }
        fillL1(core, false, addr, false, 0, src, now, Level::LLC, true);
        return;
    }
    switch (cfg_.inclusion) {
      case InclusionPolicy::Exclusive:
        fillL2(core, addr, false, 0, src, now, true);
        break;
      case InclusionPolicy::Inclusive:
        fillLlc(addr, false, 0, src, now, true);
        if (cfg_.hasL2)
            fillL2(core, addr, false, 0, src, now, true);
        break;
      case InclusionPolicy::Nine:
        fillLlc(addr, false, 0, src, now, true);
        break;
    }
    fillL1(core, false, addr, false, 0, src, now, Level::Mem, true);
}

Level
CacheHierarchy::warmTactPrefetch(CoreId core, Addr addr, bool code,
                                 Cycle now)
{
    // State-only mirror of prefetchToL1(TactData/TactCode): same
    // placement and inclusion handling, no latency, no counters, and —
    // unlike the stride analogue above — no stream-prefetcher training
    // (the detailed TACT path does not train it either).
    Cache &l1 = code ? *l1i_[core] : *l1d_[core];
    if (l1.peek(addr))
        return Level::None;
    FillSource src = code ? FillSource::TactCodePf : FillSource::TactPf;
    if (cfg_.hasL2) {
        if (l2_[core]->peek(addr)) {
            fillL1(core, code, addr, false, 0, src, now, Level::L2,
                   true);
            return Level::L2;
        }
    }
    if (const CacheLine *line = llc_->peek(addr)) {
        bool dirty = line->dirty;
        if (cfg_.inclusion == InclusionPolicy::Exclusive) {
            llc_->invalidate(addr, nullptr, false);
            fillL2(core, addr, dirty, 0, src, now, true);
        } else if (cfg_.hasL2) {
            fillL2(core, addr, false, 0, src, now, true);
        }
        fillL1(core, code, addr, false, 0, src, now, Level::LLC, true);
        return Level::LLC;
    }
    if (code) {
        // Off-die code runahead is dropped, exactly as in detailed mode.
        return Level::None;
    }
    switch (cfg_.inclusion) {
      case InclusionPolicy::Exclusive:
        fillL2(core, addr, false, 0, src, now, true);
        break;
      case InclusionPolicy::Inclusive:
        fillLlc(addr, false, 0, src, now, true);
        if (cfg_.hasL2)
            fillL2(core, addr, false, 0, src, now, true);
        break;
      case InclusionPolicy::Nine:
        fillLlc(addr, false, 0, src, now, true);
        break;
    }
    fillL1(core, false, addr, false, 0, src, now, Level::Mem, true);
    return Level::Mem;
}

Cycle
CacheHierarchy::probeDataReady(CoreId core, Addr addr, Cycle now) const
{
    bool code = false;
    const Cache &l1 = code ? *l1i_[core] : *l1d_[core];
    if (const CacheLine *line = l1.peek(addr))
        return now + cfg_.l1d.latency + remaining(*line, now);
    if (cfg_.hasL2)
        if (const CacheLine *line = l2_[core]->peek(addr))
            return now + latL2() + remaining(*line, now);
    if (const CacheLine *line = llc_->peek(addr))
        return now + latLlc() + remaining(*line, now);
    return now + levelLatency(Level::Mem);
}

bool
CacheHierarchy::inL2OrLlc(CoreId core, Addr addr) const
{
    if (cfg_.hasL2 && l2_[core]->peek(addr))
        return true;
    return llc_->peek(addr) != nullptr;
}

bool
CacheHierarchy::residentIn(CoreId core, Addr addr, Level level) const
{
    switch (level) {
      case Level::L1:
        return l1d_[core]->peek(addr) != nullptr;
      case Level::L2:
        return cfg_.hasL2 && l2_[core]->peek(addr) != nullptr;
      case Level::LLC:
        return llc_->peek(addr) != nullptr;
      default:
        return false;
    }
}

} // namespace catchsim
