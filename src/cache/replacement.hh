/**
 * @file
 * Replacement policies for the set-associative caches.
 *
 * LRU is the paper's default everywhere; SRRIP, tree-PLRU and random are
 * provided for the ablation benches (the paper cites RRIP-family work as
 * complementary to CATCH).
 */

#ifndef CATCHSIM_CACHE_REPLACEMENT_HH_
#define CATCHSIM_CACHE_REPLACEMENT_HH_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/state_io.hh"

namespace catchsim
{

/** Which replacement policy a cache uses. */
enum class ReplKind : uint8_t
{
    Lru,
    Srrip,
    TreePlru,
    Random,
};

const char *replKindName(ReplKind kind);

/** Per-cache replacement state; one instance per cache. */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Sizes the policy state for a sets x ways cache. */
    virtual void reset(uint32_t sets, uint32_t ways) = 0;

    /** Called on a demand hit at (set, way). */
    virtual void onHit(uint32_t set, uint32_t way) = 0;

    /** Called when a line is filled into (set, way). */
    virtual void onFill(uint32_t set, uint32_t way) = 0;

    /**
     * Picks the victim way in a full set.
     * The cache prefers invalid ways on its own; this is only consulted
     * when every way is valid.
     */
    virtual uint32_t victim(uint32_t set) = 0;

    /**
     * Serializes the full replacement state (recency stamps, RRPVs,
     * tree bits, RNG state) for warmed-state snapshots. The encoding is
     * a pure function of logical state: save -> load -> save is
     * byte-identical.
     */
    virtual void saveWarmState(StateSink &sink) const = 0;

    /**
     * Restores a saveWarmState() stream into a policy already reset()
     * to the same geometry. @returns false (leaving the policy usable
     * but unspecified) on a malformed or mis-sized stream.
     */
    virtual bool loadWarmState(StateSource &src) = 0;
};

/** Creates a policy instance of the given kind. */
std::unique_ptr<ReplacementPolicy> makeReplacement(ReplKind kind,
                                                   uint64_t seed);

} // namespace catchsim

#endif // CATCHSIM_CACHE_REPLACEMENT_HH_
