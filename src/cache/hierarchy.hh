/**
 * @file
 * CacheHierarchy: per-core L1I/L1D (+ optional private L2) in front of a
 * shared LLC and DRAM, under one of three inclusion policies:
 *
 *  - Exclusive (Skylake-server): LLC holds L2 victims only; LLC hits
 *    deallocate and refill the L2; every L2 victim (clean or dirty)
 *    travels to the LLC.
 *  - Inclusive (Skylake-client): LLC supersets the inner levels and
 *    back-invalidates them on eviction.
 *  - Nine (no-L2 two-level configs): non-inclusive, non-exclusive.
 *
 * The hierarchy also hosts the baseline prefetchers (L1 stride, L2
 * multi-stream), the paper's oracle knobs (latency adders, criticality
 * demotion, the Fig-5 oracle prefetch) and the entry points used by the
 * TACT prefetchers. Traffic counters feed the power model.
 */

#ifndef CATCHSIM_CACHE_HIERARCHY_HH_
#define CATCHSIM_CACHE_HIERARCHY_HH_

#include <functional>
#include <memory>
#include <vector>

#include "cache/cache.hh"
#include "common/sim_config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/dram.hh"
#include "prefetch/stream_prefetcher.hh"
#include "prefetch/stride_prefetcher.hh"

namespace catchsim
{

/** Aggregate hierarchy counters. */
struct HierarchyStats
{
    // Demand loads by serving level.
    uint64_t loads = 0;
    uint64_t loadHits[4] = {0, 0, 0, 0}; ///< indexed by Level L1..Mem
    uint64_t totalLoadLatency = 0;       ///< sum of returned latencies
    uint64_t totalL1HitLatency = 0;      ///< latency of L1-served loads
    uint64_t l1HitsBySource[7] = {};     ///< indexed by FillSource
    uint64_t l1HitWaitBySource[7] = {};  ///< in-flight wait per source
    uint64_t storeAccesses = 0;
    uint64_t storeL1Misses = 0;
    uint64_t rfoHits[4] = {0, 0, 0, 0}; ///< store write-allocate fills

    // Code fetches by serving level.
    uint64_t codeFetches = 0;
    uint64_t codeHits[4] = {0, 0, 0, 0};

    // Oracle studies.
    uint64_t demotedLoads = 0;       ///< hits served at the outer latency
    uint64_t oracleConverted = 0;    ///< Fig 5: L1 misses served at L1 lat

    // TACT prefetch accounting (Fig 11).
    uint64_t tactPrefetches = 0;
    uint64_t tactPfFromL2 = 0;
    uint64_t tactPfFromLlc = 0;
    uint64_t tactPfFromMem = 0;
    uint64_t tactPfDropped = 0;      ///< target already in the L1
    uint64_t tactPfNotOnDie = 0;     ///< dropped: line was not in L2/LLC
    uint64_t tactUsefulHits = 0;     ///< demand hits on TACT-filled lines
    uint64_t codePfIssued = 0;

    // Baseline prefetcher activity.
    uint64_t stridePfIssued = 0;
    uint64_t streamPfIssued = 0;

    // Interconnect / memory traffic in 64 B transfers (power model).
    uint64_t ringTransfers = 0;
    uint64_t memTransfers = 0;

    double
    loadHitFraction(Level l) const
    {
        return loads ? static_cast<double>(
                           loadHits[static_cast<int>(l)]) / loads
                     : 0.0;
    }
};

/** One memory-side response to the core. */
struct MemResult
{
    Level served = Level::L1;
    uint64_t latency = 0;
    /**
     * True when an L1 hit was served by a line a TACT prefetch brought
     * in. The criticality detector treats such loads as outer-level hits
     * so PCs keep their critical-table entries while TACT covers them.
     */
    bool tactCovered = false;
};

class CacheHierarchy
{
  public:
    CacheHierarchy(const SimConfig &cfg);

    /** Install the critical-PC predicate (per core) used by oracles. */
    void
    setCriticalQuery(std::function<bool(CoreId, Addr)> fn)
    {
        isCritical_ = std::move(fn);
    }

    /** Demand data load at @p now. */
    MemResult load(CoreId core, Addr pc, Addr addr, Cycle now);

    /** Store commit: write-allocates, marks dirty, never stalls. */
    void storeCommit(CoreId core, Addr addr, Cycle now);

    /** In-order code fetch of the line containing @p addr. */
    MemResult codeFetch(CoreId core, Addr addr, Cycle now);

    /** Access kinds replayed by the functional-warming engine. */
    enum class WarmKind : uint8_t
    {
        Load,
        Store,
        Code,
    };

    /**
     * Functional-warming access: replays the demand paths' placement,
     * replacement, dirty-bit and inclusion decisions — including the
     * stride/stream prefetcher training and fills — with zero timing
     * (lines are immediately ready, DRAM is never consulted) and zero
     * stats. The exclusive/inclusive invariants hold across any mix of
     * warm and detailed traffic because every fill funnels through the
     * same per-level helpers.
     */
    void warmAccess(CoreId core, Addr pc, Addr addr, Cycle now,
                    WarmKind kind);

    /** Prefetch kinds entering via prefetchToL1. */
    enum class PfKind : uint8_t
    {
        Stride,   ///< baseline L1 stride prefetcher
        TactData, ///< TACT cross / deep-self / feeder
        TactCode, ///< TACT code runahead (fills the L1I)
    };

    /**
     * Prefetches the line containing @p addr into the L1 (D or I).
     * @returns the level the line came from; Level::None when the line
     *          was already L1-resident
     */
    Level prefetchToL1(CoreId core, Addr addr, Cycle now, PfKind kind);

    /**
     * Warming analogue of prefetchToL1 for the TACT kinds: identical
     * placement decisions — including DRAM-sourced data fills and the
     * drop of off-die code runahead — with zero timing and zero stats.
     * Warmed windows thus start with TACT's line placements (and its
     * pollution) in the same levels the detailed path would have put
     * them. @returns the level the line was sourced from.
     */
    Level warmTactPrefetch(CoreId core, Addr addr, bool code, Cycle now);

    /** True when the line is resident in the L2 or the LLC (oracle). */
    bool inL2OrLlc(CoreId core, Addr addr) const;

    /**
     * True when @p addr's line is valid at @p level (L1 = the data
     * side). Pure probe: no stats or recency updates. Used by the
     * property tests to check inclusion/exclusion invariants.
     */
    bool residentIn(CoreId core, Addr addr, Level level) const;

    /**
     * Estimated cycle at which the data of @p addr would be available to
     * core @p core if requested at @p now, with NO state change. Used by
     * the TACT feeder for its runahead address generation: the feeder
     * line itself need not move, only its value's timing matters.
     */
    Cycle probeDataReady(CoreId core, Addr addr, Cycle now) const;

    const HierarchyStats &stats() const { return stats_; }
    const CacheStats &l1dStats(CoreId c) const { return l1d_[c]->stats(); }
    const CacheStats &l1iStats(CoreId c) const { return l1i_[c]->stats(); }
    const CacheStats *l2Stats(CoreId c) const
    {
        return hasL2() ? &l2_[c]->stats() : nullptr;
    }
    const CacheStats &llcStats() const { return llc_->stats(); }
    const DramStats &dramStats() const { return dram_.stats(); }

    /** Histogram of "% of LLC latency saved" per useful TACT prefetch. */
    const Histogram &tactTimeliness() const { return tactTimeliness_; }

    void resetStats();

    /**
     * Serializes everything functional warming can touch: every cache
     * array (tags/replacement/dirty bits) plus the per-core stride and
     * stream prefetcher tables. DRAM, stats and the timeliness
     * histogram are NOT included — warming never advances them, and the
     * snapshot boundary sits just before resetStats().
     */
    void saveWarmState(StateSink &sink) const;

    /** Restores a saveWarmState() stream into a hierarchy of the same
     *  shape; false on a malformed or mis-shaped stream. */
    bool loadWarmState(StateSource &src);

    bool hasL2() const { return cfg_.hasL2; }
    uint32_t l1Latency() const { return cfg_.l1d.latency; }

    /** Nominal latency of a level (None maps to L1; Mem is an estimate). */
    uint32_t
    levelLatency(Level l) const
    {
        switch (l) {
          case Level::L2: return cfg_.l2.latency + cfg_.oracle.latAddL2;
          case Level::LLC:
            return cfg_.llc.latency + cfg_.oracle.latAddLlc;
          case Level::Mem:
            return cfg_.llc.latency + cfg_.oracle.latAddLlc + 160;
          default: return cfg_.l1d.latency + cfg_.oracle.latAddL1;
        }
    }

  private:
    /** Effective (oracle-adjusted) per-level latencies. */
    uint32_t latL1() const { return cfg_.l1d.latency + cfg_.oracle.latAddL1; }
    uint32_t latL2() const { return cfg_.l2.latency + cfg_.oracle.latAddL2; }
    uint32_t latLlc() const
    {
        return cfg_.llc.latency + cfg_.oracle.latAddLlc;
    }
    /** Representative memory latency for the LLC->Mem demotion oracle. */
    uint32_t latMemEstimate() const { return latLlc() + 160; }

    /** Remaining in-flight time of @p line at @p now. */
    static uint64_t
    remaining(const CacheLine &line, Cycle now)
    {
        return line.readyAt > now ? line.readyAt - now : 0;
    }

    bool critical(CoreId core, Addr pc) const
    {
        return isCritical_ && isCritical_(core, pc);
    }

    /** Fill helpers; each handles the displaced victim per policy.
     *  @p warm selects the stats-free, zero-latency warming variant. */
    void fillL1(CoreId core, bool code, Addr addr, bool dirty,
                Cycle ready_at, FillSource src, Cycle now,
                Level fill_level = Level::None, bool warm = false);
    void fillL2(CoreId core, Addr addr, bool dirty, Cycle ready_at,
                FillSource src, Cycle now, bool warm = false);
    void fillLlc(Addr addr, bool dirty, Cycle ready_at, FillSource src,
                 Cycle now, bool warm = false);

    /** Services an L1 miss from L2 / LLC / DRAM; fills per policy. */
    MemResult serviceMiss(CoreId core, bool code, Addr addr, Cycle now,
                          bool dirty_fill, uint64_t *hit_ctr);

    /** Warming analogue of serviceMiss: same placement, no timing. */
    void warmMiss(CoreId core, bool code, Addr addr, Cycle now,
                  bool dirty_fill);

    /** Warming analogue of prefetchToL1(PfKind::Stride). */
    void warmPrefetchToL1(CoreId core, Addr addr, Cycle now);

    /** Runs the L2 stream prefetcher on an access that missed the L1. */
    void streamObserve(CoreId core, Addr addr, Cycle now);

    /** Warming analogue of streamObserve: trains + fills, no timing. */
    void warmStreamObserve(CoreId core, Addr addr, Cycle now);

    /** Records Fig-11 timeliness when a TACT line gets its first use. */
    void noteTactUse(CacheLine &line, Cycle now);

    SimConfig cfg_;
    Dram dram_;

    std::vector<std::unique_ptr<Cache>> l1i_;
    std::vector<std::unique_ptr<Cache>> l1d_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::unique_ptr<Cache> llc_;

    std::vector<StridePrefetcher> stride_;
    std::vector<StreamPrefetcher> stream_;
    std::vector<Addr> streamCandidates_; ///< scratch, avoids realloc

    std::function<bool(CoreId, Addr)> isCritical_;

    HierarchyStats stats_;
    Histogram tactTimeliness_{10, 11}; ///< % LLC latency saved buckets

  public:
    /** Exposes the per-core stride table to TACT (deep-self/feeder). */
    const StridePrefetcher &strideTable(CoreId c) const
    {
        return stride_[c];
    }
};

} // namespace catchsim

#endif // CATCHSIM_CACHE_HIERARCHY_HH_
