#include "cache/cache.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace catchsim
{

Cache::Cache(std::string name, const CacheGeometry &geom, ReplKind repl,
             uint64_t seed)
    : name_(std::move(name)), geom_(geom), numSets_(geom.numSets()),
      lines_(static_cast<size_t>(numSets_) * geom.ways),
      repl_(makeReplacement(repl, seed))
{
    CATCHSIM_ASSERT(isPowerOfTwo(numSets_), name_, ": sets not pow2");
    repl_->reset(numSets_, geom_.ways);
}

uint32_t
Cache::setIndex(Addr addr) const
{
    return static_cast<uint32_t>((addr >> kLineShift) & (numSets_ - 1));
}

CacheLine *
Cache::lookup(Addr addr, bool is_demand)
{
    Addr tag = lineAddr(addr);
    uint32_t set = setIndex(addr);
    CacheLine *row = &lines_[static_cast<size_t>(set) * geom_.ways];
    if (is_demand) {
        ++stats_.demandAccesses; // catch-analyze: allow(warming-purity)
        ++stats_.readOps;        // catch-analyze: allow(warming-purity)
    }
    for (uint32_t w = 0; w < geom_.ways; ++w) {
        if (row[w].valid && row[w].tag == tag) {
            if (is_demand) {
                // catch-analyze: allow(warming-purity)
                ++stats_.demandHits;
                repl_->onHit(set, w);
                // usedSinceFill is managed by the hierarchy, which needs
                // to observe the first use of a prefetched line.
            }
            return &row[w];
        }
    }
    return nullptr;
}

CacheLine *
Cache::warmLookup(Addr addr)
{
    Addr tag = lineAddr(addr);
    uint32_t set = setIndex(addr);
    CacheLine *row = &lines_[static_cast<size_t>(set) * geom_.ways];
    for (uint32_t w = 0; w < geom_.ways; ++w) {
        if (row[w].valid && row[w].tag == tag) {
            repl_->onHit(set, w);
            return &row[w];
        }
    }
    return nullptr;
}

const CacheLine *
Cache::peek(Addr addr) const
{
    Addr tag = lineAddr(addr);
    uint32_t set = setIndex(addr);
    const CacheLine *row = &lines_[static_cast<size_t>(set) * geom_.ways];
    for (uint32_t w = 0; w < geom_.ways; ++w)
        if (row[w].valid && row[w].tag == tag)
            return &row[w];
    return nullptr;
}

Cache::Victim
Cache::fill(Addr addr, bool dirty, Cycle ready_at, FillSource source,
            Level fill_level)
{
    return fillImpl(addr, dirty, ready_at, source, fill_level, true);
}

Cache::Victim
Cache::warmFill(Addr addr, bool dirty, FillSource source, Level fill_level)
{
    // ready_at = 0: warmed lines are immediately ready; the per-window
    // detailed warmup re-establishes realistic in-flight timing.
    return fillImpl(addr, dirty, 0, source, fill_level, false);
}

Cache::Victim
Cache::fillImpl(Addr addr, bool dirty, Cycle ready_at, FillSource source,
                Level fill_level, bool count)
{
    Addr tag = lineAddr(addr);
    uint32_t set = setIndex(addr);
    CacheLine *row = &lines_[static_cast<size_t>(set) * geom_.ways];
    if (count)
        ++stats_.writeOps; // catch-analyze: allow(warming-purity)

    // Merge if already present (e.g. a writeback landing on a prefetched
    // copy, or a duplicate fill).
    for (uint32_t w = 0; w < geom_.ways; ++w) {
        if (row[w].valid && row[w].tag == tag) {
            row[w].dirty |= dirty;
            if (ready_at < row[w].readyAt)
                row[w].readyAt = ready_at;
            // A demand or writeback fill landing on a prefetched copy
            // proves the line was wanted: take over its provenance so a
            // later eviction is not misattributed to a useless
            // prefetch (and the evicting level sees the true source).
            bool resident_is_prefetch =
                row[w].source != FillSource::Demand &&
                row[w].source != FillSource::Writeback;
            bool incoming_is_real = source == FillSource::Demand ||
                                    source == FillSource::Writeback;
            if (resident_is_prefetch && incoming_is_real) {
                row[w].source = source;
                row[w].fillLevel = fill_level;
            }
            repl_->onHit(set, w);
            return Victim{};
        }
    }

    uint32_t way = geom_.ways;
    for (uint32_t w = 0; w < geom_.ways; ++w) {
        if (!row[w].valid) {
            way = w;
            break;
        }
    }

    Victim victim;
    if (way == geom_.ways) {
        way = repl_->victim(set);
        CATCHSIM_ASSERT(way < geom_.ways, name_, ": bad victim way");
        CacheLine &v = row[way];
        victim.valid = true;
        victim.addr = v.tag;
        victim.dirty = v.dirty;
        victim.source = v.source;
        victim.usedSinceFill = v.usedSinceFill;
        if (count) {
            ++stats_.evictions; // catch-analyze: allow(warming-purity)
            if (v.dirty) {
                // catch-analyze: allow(warming-purity)
                ++stats_.dirtyEvictions;
            }
            bool was_prefetch = v.source != FillSource::Demand &&
                                v.source != FillSource::Writeback;
            if (was_prefetch && !v.usedSinceFill) {
                // catch-analyze: allow(warming-purity)
                ++stats_.uselessPrefetchEvictions;
            }
        }
    }

    CacheLine &line = row[way];
    line.tag = tag;
    line.valid = true;
    line.dirty = dirty;
    line.readyAt = ready_at;
    line.source = source;
    line.fillLevel = fill_level;
    line.usedSinceFill = false;
    repl_->onFill(set, way);
    if (count)
        ++stats_.fills; // catch-analyze: allow(warming-purity)
    return victim;
}

bool
Cache::invalidate(Addr addr, bool *was_present, bool count)
{
    Addr tag = lineAddr(addr);
    uint32_t set = setIndex(addr);
    CacheLine *row = &lines_[static_cast<size_t>(set) * geom_.ways];
    for (uint32_t w = 0; w < geom_.ways; ++w) {
        if (row[w].valid && row[w].tag == tag) {
            row[w].valid = false;
            if (count) {
                // catch-analyze: allow(warming-purity)
                ++stats_.invalidations;
            }
            if (was_present)
                *was_present = true;
            return row[w].dirty;
        }
    }
    if (was_present)
        *was_present = false;
    return false;
}

void
Cache::saveWarmState(StateSink &sink) const
{
    sink.tag(stateTag("CACH"));
    sink.u64(lines_.size());
    for (const CacheLine &line : lines_) {
        sink.u64(line.tag);
        sink.boolean(line.valid);
        sink.boolean(line.dirty);
        sink.u64(line.readyAt);
        sink.u8(static_cast<uint8_t>(line.source));
        sink.u8(static_cast<uint8_t>(line.fillLevel));
        sink.boolean(line.usedSinceFill);
    }
    repl_->saveWarmState(sink);
}

bool
Cache::loadWarmState(StateSource &src)
{
    if (!src.expect(stateTag("CACH")))
        return false;
    if (src.u64() != lines_.size() || !src.fits(lines_.size() * 21))
        return false;
    for (CacheLine &line : lines_) {
        line.tag = src.u64();
        line.valid = src.boolean();
        line.dirty = src.boolean();
        line.readyAt = src.u64();
        line.source = static_cast<FillSource>(src.u8());
        line.fillLevel = static_cast<Level>(src.u8());
        line.usedSinceFill = src.boolean();
    }
    return src.ok() && repl_->loadWarmState(src);
}

bool
Cache::setDirty(Addr addr)
{
    CacheLine *line = lookup(addr, false);
    if (!line)
        return false;
    line->dirty = true;
    ++stats_.writeOps;
    return true;
}

} // namespace catchsim
