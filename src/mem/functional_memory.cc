#include "mem/functional_memory.hh"

namespace catchsim
{

FunctionalMemory::Page *
FunctionalMemory::pageFor(Addr addr)
{
    Addr page = pageAddr(addr);
    TlbEntry &e = tlb_[tlbIndex(page)];
    if (e.page == page)
        return e.data;
    auto it = pages_.find(page);
    if (it == pages_.end())
        it = pages_.emplace(page, Page()).first;
    e.page = page;
    e.data = &it->second;
    return e.data;
}

const FunctionalMemory::Page *
FunctionalMemory::pageForConst(Addr addr) const
{
    Addr page = pageAddr(addr);
    TlbEntry &e = tlb_[tlbIndex(page)];
    if (e.page == page)
        return e.data;
    auto it = pages_.find(page);
    if (it == pages_.end())
        return nullptr; // missing pages are not cached: they read as 0
    e.page = page;
    e.data = const_cast<Page *>(&it->second);
    return e.data;
}

uint64_t
FunctionalMemory::read(Addr addr) const
{
    const Page *p = pageForConst(addr);
    if (!p)
        return 0; // untouched memory reads as zero
    return p->words[(addr & (kPageBytes - 1)) >> 3];
}

void
FunctionalMemory::write(Addr addr, uint64_t value)
{
    pageFor(addr)->words[(addr & (kPageBytes - 1)) >> 3] = value;
}

} // namespace catchsim
