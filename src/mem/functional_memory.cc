#include "mem/functional_memory.hh"

namespace catchsim
{

FunctionalMemory::Page *
FunctionalMemory::pageFor(Addr addr)
{
    Addr page = pageAddr(addr);
    auto it = pages_.find(page);
    if (it == pages_.end())
        it = pages_.emplace(page, std::make_unique<Page>()).first;
    return it->second.get();
}

const FunctionalMemory::Page *
FunctionalMemory::pageForConst(Addr addr) const
{
    auto it = pages_.find(pageAddr(addr));
    return it == pages_.end() ? nullptr : it->second.get();
}

uint64_t
FunctionalMemory::read(Addr addr) const
{
    const Page *p = pageForConst(addr);
    if (!p)
        return 0; // untouched memory reads as zero
    return p->words[(addr & (kPageBytes - 1)) >> 3];
}

void
FunctionalMemory::write(Addr addr, uint64_t value)
{
    pageFor(addr)->words[(addr & (kPageBytes - 1)) >> 3] = value;
}

} // namespace catchsim
