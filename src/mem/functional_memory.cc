#include "mem/functional_memory.hh"

namespace catchsim
{

FunctionalMemory::Page *
FunctionalMemory::pageFor(Addr addr)
{
    Addr page = pageAddr(addr);
    if (page == lastPageAddr_)
        return lastPage_;
    auto it = pages_.find(page);
    if (it == pages_.end())
        it = pages_.emplace(page, Page()).first;
    lastPageAddr_ = page;
    lastPage_ = &it->second;
    return lastPage_;
}

const FunctionalMemory::Page *
FunctionalMemory::pageForConst(Addr addr) const
{
    Addr page = pageAddr(addr);
    if (page == lastPageAddr_)
        return lastPage_;
    auto it = pages_.find(page);
    if (it == pages_.end())
        return nullptr; // missing pages are not cached: they read as 0
    lastPageAddr_ = page;
    lastPage_ = const_cast<Page *>(&it->second);
    return lastPage_;
}

uint64_t
FunctionalMemory::read(Addr addr) const
{
    const Page *p = pageForConst(addr);
    if (!p)
        return 0; // untouched memory reads as zero
    return p->words[(addr & (kPageBytes - 1)) >> 3];
}

void
FunctionalMemory::write(Addr addr, uint64_t value)
{
    pageFor(addr)->words[(addr & (kPageBytes - 1)) >> 3] = value;
}

} // namespace catchsim
