#include "mem/functional_memory.hh"

#include <algorithm>

namespace catchsim
{

/**
 * Slow write path: resolves (and if necessary clones) the page, then
 * write-validates the translation. A use_count() of 1 means no
 * snapshot or sibling run holds this page, so in-place mutation is
 * safe: the count can only grow through an existing handle, and the
 * only other handle sources (the snapshot store, a published image)
 * copy under their own locks from handles they already own.
 */
FunctionalMemory::Page *
FunctionalMemory::writablePage(Addr page)
{
    auto it = pages_.find(page);
    if (it == pages_.end()) {
        it = pages_.emplace(page, std::make_shared<Page>()).first;
    } else if (it->second.use_count() > 1) {
        // Copy-on-write: the page is shared with a snapshot image;
        // clone it so the snapshot stays bitwise-frozen.
        it->second = std::make_shared<Page>(*it->second);
    }
    TlbEntry &e = tlb_[tlbIndex(page)];
    e.page = page;
    e.wpage = page;
    e.data = it->second.get();
    return e.data;
}

const FunctionalMemory::Page *
FunctionalMemory::pageForConst(Addr addr) const
{
    Addr page = pageAddr(addr);
    TlbEntry &e = tlb_[tlbIndex(page)];
    if (e.page == page)
        return e.data;
    auto it = pages_.find(page);
    if (it == pages_.end())
        return nullptr; // missing pages are not cached: they read as 0
    e.page = page;
    // Read-only refill: the entry may be repurposed from another page,
    // whose write validity must not leak onto this one.
    e.wpage = ~Addr(0);
    e.data = it->second.get();
    return e.data;
}

uint64_t
FunctionalMemory::read(Addr addr) const
{
    const Page *p = pageForConst(addr);
    if (!p)
        return 0; // untouched memory reads as zero
    return p->words[(addr & (kPageBytes - 1)) >> 3];
}

void
FunctionalMemory::write(Addr addr, uint64_t value)
{
    Addr page = pageAddr(addr);
    TlbEntry &e = tlb_[tlbIndex(page)];
    Page *p = e.wpage == page ? e.data : writablePage(page);
    p->words[(addr & (kPageBytes - 1)) >> 3] = value;
}

FunctionalMemory::PageImage
FunctionalMemory::snapshotPages() const
{
    PageImage image;
    image.reserve(pages_.size());
    // catch-analyze: allow(unordered-iter) entries are sorted below
    for (const auto &kv : pages_)
        image.emplace_back(kv.first, kv.second);
    std::sort(image.begin(), image.end(),
              [](const auto &a, const auto &b) { return a.first < b.first; });
    // Every page is now shared with the image: drop write validity so
    // the next write per page funnels through the clone check. Read
    // translations stay cached — sharing moves no page.
    for (auto &e : tlb_)
        e.wpage = ~Addr(0);
    return image;
}

void
FunctionalMemory::restorePages(const PageImage &image)
{
    pages_.clear();
    pages_.reserve(image.size());
    for (const auto &kv : image)
        pages_.emplace(kv.first, kv.second);
    // The old map's pages are gone; every cached translation is stale.
    for (auto &e : tlb_)
        e = TlbEntry();
}

void
FunctionalMemory::savePages(const PageImage &image, StateSink &sink)
{
    sink.tag(stateTag("FMEM"));
    sink.u64(image.size());
    for (const auto &kv : image) {
        sink.u64(kv.first);
        for (uint64_t word : kv.second->words)
            sink.u64(word);
    }
}

bool
FunctionalMemory::loadPages(StateSource &src, PageImage *image)
{
    if (!src.expect(stateTag("FMEM")))
        return false;
    uint64_t n = src.u64();
    if (!src.fits(n * (8 + kWordsPerPage * 8)))
        return false;
    image->clear();
    image->reserve(n);
    Addr prev = 0;
    for (uint64_t i = 0; i < n; ++i) {
        Addr a = src.u64();
        if (i > 0 && a <= prev) {
            src.fail(); // the section contract is strictly ascending
            return false;
        }
        prev = a;
        auto p = std::make_shared<Page>();
        for (auto &word : p->words)
            word = src.u64();
        image->emplace_back(a, std::move(p));
    }
    return src.ok();
}

void
FunctionalMemory::saveWarmState(StateSink &sink) const
{
    savePages(snapshotPages(), sink);
}

bool
FunctionalMemory::loadWarmState(StateSource &src)
{
    PageImage image;
    if (!loadPages(src, &image))
        return false;
    restorePages(image);
    return true;
}

} // namespace catchsim
