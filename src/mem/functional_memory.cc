#include "mem/functional_memory.hh"

#include <algorithm>
#include <vector>

namespace catchsim
{

FunctionalMemory::Page *
FunctionalMemory::pageFor(Addr addr)
{
    Addr page = pageAddr(addr);
    TlbEntry &e = tlb_[tlbIndex(page)];
    if (e.page == page)
        return e.data;
    auto it = pages_.find(page);
    if (it == pages_.end())
        it = pages_.emplace(page, Page()).first;
    e.page = page;
    e.data = &it->second;
    return e.data;
}

const FunctionalMemory::Page *
FunctionalMemory::pageForConst(Addr addr) const
{
    Addr page = pageAddr(addr);
    TlbEntry &e = tlb_[tlbIndex(page)];
    if (e.page == page)
        return e.data;
    auto it = pages_.find(page);
    if (it == pages_.end())
        return nullptr; // missing pages are not cached: they read as 0
    e.page = page;
    e.data = const_cast<Page *>(&it->second);
    return e.data;
}

uint64_t
FunctionalMemory::read(Addr addr) const
{
    const Page *p = pageForConst(addr);
    if (!p)
        return 0; // untouched memory reads as zero
    return p->words[(addr & (kPageBytes - 1)) >> 3];
}

void
FunctionalMemory::write(Addr addr, uint64_t value)
{
    pageFor(addr)->words[(addr & (kPageBytes - 1)) >> 3] = value;
}

void
FunctionalMemory::saveWarmState(StateSink &sink) const
{
    sink.tag(stateTag("FMEM"));
    std::vector<Addr> addrs;
    addrs.reserve(pages_.size());
    // catch-analyze: allow(unordered-iter) keys are sorted below
    for (const auto &kv : pages_)
        addrs.push_back(kv.first);
    std::sort(addrs.begin(), addrs.end());
    sink.u64(addrs.size());
    for (Addr a : addrs) {
        sink.u64(a);
        const Page &p = pages_.at(a);
        for (uint64_t word : p.words)
            sink.u64(word);
    }
}

bool
FunctionalMemory::loadWarmState(StateSource &src)
{
    if (!src.expect(stateTag("FMEM")))
        return false;
    uint64_t n = src.u64();
    if (!src.fits(n * (8 + kWordsPerPage * 8)))
        return false;
    pages_.clear();
    for (auto &e : tlb_)
        e = TlbEntry();
    for (uint64_t i = 0; i < n; ++i) {
        Addr a = src.u64();
        Page &p = pages_[a];
        for (auto &word : p.words)
            word = src.u64();
    }
    return src.ok();
}

} // namespace catchsim
