/**
 * @file
 * Sparse functional memory backing the synthetic workloads.
 *
 * Workload kernels execute real algorithms (linked lists, hash probes,
 * stencils...) against this memory, so load values in the trace are the
 * true contents of the accessed locations. That is what makes
 * TACT-Feeder honest: when a feeder prefetch "returns", the prefetcher
 * reads the same value hardware would have seen on the fill and uses it
 * to compute the dependent (pointer-chased) address.
 */

#ifndef CATCHSIM_MEM_FUNCTIONAL_MEMORY_HH_
#define CATCHSIM_MEM_FUNCTIONAL_MEMORY_HH_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/types.hh"

namespace catchsim
{

/** Page-granular sparse memory of 64-bit words. */
class FunctionalMemory
{
  public:
    FunctionalMemory() = default;

    // Memory images can be large; keep them uncopied.
    FunctionalMemory(const FunctionalMemory &) = delete;
    FunctionalMemory &operator=(const FunctionalMemory &) = delete;
    FunctionalMemory(FunctionalMemory &&) = default;
    FunctionalMemory &operator=(FunctionalMemory &&) = default;

    /** Reads the 64-bit word containing @p addr (8-byte aligned access). */
    uint64_t read(Addr addr) const;

    /** Writes the 64-bit word containing @p addr. */
    void write(Addr addr, uint64_t value);

    /** Number of distinct 4 KB pages touched so far. */
    size_t pagesAllocated() const { return pages_.size(); }

  private:
    static constexpr size_t kWordsPerPage = kPageBytes / sizeof(uint64_t);

    struct Page
    {
        uint64_t words[kWordsPerPage] = {};
    };

    Page *pageFor(Addr addr);
    const Page *pageForConst(Addr addr) const;

    // Pages live by value in the node-based map: unordered_map nodes are
    // address-stable across rehash, so the one-entry cache below (and
    // any pointer held across other accesses) stays valid until the
    // page's key is erased — which never happens.
    std::unordered_map<Addr, Page> pages_;

    // One-entry page cache: workload generation and feeder reads hit
    // the same page in runs, making most lookups a single compare
    // instead of a hash probe.
    mutable Addr lastPageAddr_ = ~Addr(0);
    mutable Page *lastPage_ = nullptr;
};

} // namespace catchsim

#endif // CATCHSIM_MEM_FUNCTIONAL_MEMORY_HH_
