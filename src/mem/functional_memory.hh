/**
 * @file
 * Sparse functional memory backing the synthetic workloads.
 *
 * Workload kernels execute real algorithms (linked lists, hash probes,
 * stencils...) against this memory, so load values in the trace are the
 * true contents of the accessed locations. That is what makes
 * TACT-Feeder honest: when a feeder prefetch "returns", the prefetcher
 * reads the same value hardware would have seen on the fill and uses it
 * to compute the dependent (pointer-chased) address.
 *
 * Pages are refcounted and copy-on-write so warmed-state snapshots are
 * cheap (sim/warm_state.hh): snapshotPages() hands out shared handles
 * to the live pages instead of copying 4 KB each, restorePages() adopts
 * a snapshot's handles instead of rebuilding the map page by page, and
 * the first write to a page that is still shared with a snapshot (or
 * with a sibling restored run) clones just that page. A page whose
 * handle is held by more than one owner is immutable by contract — the
 * write path enforces it — so concurrent runs restored from the same
 * resident snapshot can share physical pages safely.
 */

#ifndef CATCHSIM_MEM_FUNCTIONAL_MEMORY_HH_
#define CATCHSIM_MEM_FUNCTIONAL_MEMORY_HH_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/state_io.hh"
#include "common/types.hh"

namespace catchsim
{

/** Page-granular sparse memory of 64-bit words. */
class FunctionalMemory
{
  public:
    static constexpr size_t kWordsPerPage = kPageBytes / sizeof(uint64_t);

    /** One 4 KB page; trivially copyable (raw disk records memcpy it). */
    struct Page
    {
        uint64_t words[kWordsPerPage] = {};
    };

    /**
     * Shared page handle. A handle with use_count() > 1 points at an
     * immutable page (snapshots and sibling runs may read it
     * concurrently); the owning memory clones before its first write.
     */
    using PagePtr = std::shared_ptr<Page>;

    /** A memory image: (page address, handle) in ascending address
     *  order, sharing pages with whichever memory produced it. */
    using PageImage = std::vector<std::pair<Addr, PagePtr>>;

    FunctionalMemory() = default;

    // Memory images can be large; keep them uncopied.
    FunctionalMemory(const FunctionalMemory &) = delete;
    FunctionalMemory &operator=(const FunctionalMemory &) = delete;
    FunctionalMemory(FunctionalMemory &&) = default;
    FunctionalMemory &operator=(FunctionalMemory &&) = default;

    /** Reads the 64-bit word containing @p addr (8-byte aligned access). */
    uint64_t read(Addr addr) const;

    /** Writes the 64-bit word containing @p addr. */
    void write(Addr addr, uint64_t value);

    /** Number of distinct 4 KB pages touched so far. */
    size_t pagesAllocated() const { return pages_.size(); }

    /**
     * Captures the current contents as a shared image, O(pages) handle
     * copies — no page data moves. Every live page becomes shared with
     * the image, so the next write to each one takes the clone path;
     * reads keep their cached translations.
     */
    PageImage snapshotPages() const;

    /**
     * Replaces the entire contents with @p image, adopting its handles
     * in place (the object's address — the feeder's value source — is
     * preserved; the translation cache restarts cold). The image's
     * pages stay shared: a later write here clones, never mutates them.
     */
    void restorePages(const PageImage &image);

    /** Serializes @p image (ascending page address, full 4 KB content)
     *  in the StateSink encoding — the FMEM snapshot section. */
    static void savePages(const PageImage &image, StateSink &sink);

    /** Parses an FMEM section into freshly allocated shared pages.
     *  @returns false on a malformed stream. */
    static bool loadPages(StateSource &src, PageImage *image);

    /** snapshotPages() + savePages(): the whole-memory FMEM section. */
    void saveWarmState(StateSink &sink) const;

    /** loadPages() + restorePages(): restores a saveWarmState() stream.
     *  @returns false on a malformed stream. */
    bool loadWarmState(StateSource &src);

  private:
    Page *writablePage(Addr page);
    const Page *pageForConst(Addr addr) const;

    // Handles live by value in the map; the pages themselves are heap
    // allocations that never move, so the translation cache below (and
    // any pointer held across other accesses) stays valid until the
    // page is cloned or the map is replaced — both of which invalidate
    // the affected cache entries explicitly.
    std::unordered_map<Addr, PagePtr> pages_;

    // Direct-mapped page-translation cache: sequential generation hits
    // one entry repeatedly, and pointer-chasing kernels (whose working
    // set spans thousands of pages — mcf ~8.7k, hpc.stream ~17k) land
    // on a cached translation instead of a hash probe. `page` tags a
    // read-valid translation; `wpage` additionally tags it write-valid
    // (the page is exclusively owned). Snapshotting clears only the
    // write tags — reads stay cached across a snapshot, and the first
    // write per page funnels through writablePage() to clone. 16384
    // entries x 24 B = 384 KB, host-L2/L3-resident and large enough to
    // hold every suite workload's full page set.
    static constexpr size_t kTlbEntries = 16384;
    struct TlbEntry
    {
        Addr page = ~Addr(0);  ///< read-valid tag
        Addr wpage = ~Addr(0); ///< write-valid tag (subset of page)
        Page *data = nullptr;
    };
    mutable TlbEntry tlb_[kTlbEntries];

    static size_t
    tlbIndex(Addr page)
    {
        return static_cast<size_t>(page / kPageBytes) &
               (kTlbEntries - 1);
    }
};

} // namespace catchsim

#endif // CATCHSIM_MEM_FUNCTIONAL_MEMORY_HH_
