/**
 * @file
 * Sparse functional memory backing the synthetic workloads.
 *
 * Workload kernels execute real algorithms (linked lists, hash probes,
 * stencils...) against this memory, so load values in the trace are the
 * true contents of the accessed locations. That is what makes
 * TACT-Feeder honest: when a feeder prefetch "returns", the prefetcher
 * reads the same value hardware would have seen on the fill and uses it
 * to compute the dependent (pointer-chased) address.
 */

#ifndef CATCHSIM_MEM_FUNCTIONAL_MEMORY_HH_
#define CATCHSIM_MEM_FUNCTIONAL_MEMORY_HH_

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/state_io.hh"
#include "common/types.hh"

namespace catchsim
{

/** Page-granular sparse memory of 64-bit words. */
class FunctionalMemory
{
  public:
    FunctionalMemory() = default;

    // Memory images can be large; keep them uncopied.
    FunctionalMemory(const FunctionalMemory &) = delete;
    FunctionalMemory &operator=(const FunctionalMemory &) = delete;
    FunctionalMemory(FunctionalMemory &&) = default;
    FunctionalMemory &operator=(FunctionalMemory &&) = default;

    /** Reads the 64-bit word containing @p addr (8-byte aligned access). */
    uint64_t read(Addr addr) const;

    /** Writes the 64-bit word containing @p addr. */
    void write(Addr addr, uint64_t value);

    /** Number of distinct 4 KB pages touched so far. */
    size_t pagesAllocated() const { return pages_.size(); }

    /**
     * Serializes every allocated page (ascending page address, full
     * 4 KB content) for warmed-state snapshots. The translation cache
     * is host-only acceleration and is not serialized.
     */
    void saveWarmState(StateSink &sink) const;

    /**
     * Replaces the entire contents with a saveWarmState() stream, in
     * place (the object's address — the feeder's value source — is
     * preserved; the translation cache restarts cold). @returns false
     * on a malformed stream.
     */
    bool loadWarmState(StateSource &src);

  private:
    static constexpr size_t kWordsPerPage = kPageBytes / sizeof(uint64_t);

    struct Page
    {
        uint64_t words[kWordsPerPage] = {};
    };

    Page *pageFor(Addr addr);
    const Page *pageForConst(Addr addr) const;

    // Pages live by value in the node-based map: unordered_map nodes are
    // address-stable across rehash, so the translation cache below (and
    // any pointer held across other accesses) stays valid until the
    // page's key is erased — which never happens.
    std::unordered_map<Addr, Page> pages_;

    // Direct-mapped page-translation cache: sequential generation hits
    // one entry repeatedly, and pointer-chasing kernels (whose working
    // set spans thousands of pages — mcf ~8.7k, hpc.stream ~17k) land
    // on a cached translation instead of a hash probe. 16384 entries
    // x 16 B = 256 KB, host-L2-resident and large enough to hold every
    // suite workload's full page set.
    static constexpr size_t kTlbEntries = 16384;
    struct TlbEntry
    {
        Addr page = ~Addr(0);
        Page *data = nullptr;
    };
    mutable TlbEntry tlb_[kTlbEntries];

    static size_t
    tlbIndex(Addr page)
    {
        return static_cast<size_t>(page / kPageBytes) &
               (kTlbEntries - 1);
    }
};

} // namespace catchsim

#endif // CATCHSIM_MEM_FUNCTIONAL_MEMORY_HH_
