#include "sim/parallel_runner.hh"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <set>
#include <thread>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"

namespace catchsim
{

unsigned
suiteJobs()
{
    if (const char *env = envRaw("CATCH_JOBS")) {
        long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<unsigned>(v);
        warn("CATCH_JOBS='", env, "' is not a positive integer; ",
             "falling back to hardware concurrency");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

double
workloadCostEstimate(const std::string &name)
{
    // Trace setup cost scales with the kernel's memory footprint and
    // simulation cost with its miss rate; both correlate with category.
    // Server OLTP/Java kernels build tens-of-MB working sets, HPC and
    // FSPEC stream through multi-MB arrays, ISPEC/client stay small.
    auto wl = makeWorkload(name);
    double base;
    switch (wl->category()) {
      case Category::Server: base = 8.0; break;
      case Category::Hpc:    base = 3.0; break;
      case Category::Fspec:  base = 2.0; break;
      case Category::Client: base = 1.5; break;
      default:               base = 1.0; break;
    }
    return base;
}

void
runTasksLongestFirst(std::vector<std::function<void()>> tasks,
                     const std::vector<double> &cost, unsigned jobs)
{
    CATCHSIM_ASSERT(cost.size() == tasks.size(),
                    "cost/task vector size mismatch");
    if (jobs <= 1 || tasks.size() <= 1) {
        for (auto &t : tasks)
            t();
        return;
    }
    std::vector<size_t> order(tasks.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&cost](size_t a, size_t b) {
                         return cost[a] > cost[b];
                     });
    std::vector<std::function<void()>> sorted;
    sorted.reserve(tasks.size());
    for (size_t i : order)
        sorted.push_back(std::move(tasks[i]));
    ThreadPool pool(std::min<size_t>(jobs, sorted.size()));
    pool.runAll(std::move(sorted));
}

std::vector<SimResult>
runWorkloadsParallel(const SimConfig &cfg,
                     const std::vector<std::string> &names,
                     uint64_t instrs, uint64_t warmup, unsigned jobs,
                     const std::function<void(const SimResult &)> &progress)
{
    std::vector<SimResult> results(names.size());
    std::vector<std::function<void()>> tasks;
    std::vector<double> cost;
    tasks.reserve(names.size());
    cost.reserve(names.size());
    for (size_t i = 0; i < names.size(); ++i) {
        tasks.push_back([&, i] {
            // Fully private run: own workload (re-seeded from its suite
            // entry), own Simulator, own results slot.
            results[i] = runWorkload(cfg, names[i], instrs, warmup);
            if (progress)
                progress(results[i]);
        });
        cost.push_back(workloadCostEstimate(names[i]));
    }
    runTasksLongestFirst(std::move(tasks), cost, jobs);
    return results;
}

std::map<std::string, double>
soloIpcsParallel(const SimConfig &cfg, const std::vector<MpMix> &mixes,
                 uint64_t instrs, uint64_t warmup, unsigned jobs)
{
    std::set<std::string> distinct;
    for (const auto &mix : mixes)
        for (const auto &w : mix.workloads)
            distinct.insert(w);
    std::vector<std::string> names(distinct.begin(), distinct.end());
    auto results =
        runWorkloadsParallel(cfg, names, instrs, warmup, jobs);
    std::map<std::string, double> solo;
    for (size_t i = 0; i < names.size(); ++i)
        solo[names[i]] = results[i].ipc;
    return solo;
}

std::vector<MpResult>
runMixesParallel(const SimConfig &cfg, const std::vector<MpMix> &mixes,
                 uint64_t instrs, uint64_t warmup,
                 const std::map<std::string, double> &solo, unsigned jobs)
{
    std::vector<MpResult> results(mixes.size());
    std::vector<std::function<void()>> tasks;
    std::vector<double> cost;
    tasks.reserve(mixes.size());
    cost.reserve(mixes.size());
    for (size_t i = 0; i < mixes.size(); ++i) {
        std::array<double, 4> alone{};
        double mix_cost = 0;
        for (int c = 0; c < 4; ++c) {
            auto it = solo.find(mixes[i].workloads[c]);
            CATCHSIM_ASSERT(it != solo.end(), "missing solo IPC for ",
                            mixes[i].workloads[c]);
            alone[c] = it->second;
            mix_cost += workloadCostEstimate(mixes[i].workloads[c]);
        }
        tasks.push_back([&, i, alone] {
            MpSimulator sim(cfg);
            results[i] = sim.run(mixes[i], instrs, warmup, alone);
        });
        cost.push_back(mix_cost);
    }
    runTasksLongestFirst(std::move(tasks), cost, jobs);
    return results;
}

} // namespace catchsim
