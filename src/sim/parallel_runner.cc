#include "sim/parallel_runner.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <set>
#include <thread>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "sim/journal.hh"
#include "sim/result_store.hh"
#include "sim/worker_proto.hh"

namespace catchsim
{

unsigned
suiteJobs()
{
    if (const char *env = envRaw("CATCH_JOBS")) {
        long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<unsigned>(v);
        warn("CATCH_JOBS='", env, "' is not a positive integer; ",
             "falling back to hardware concurrency");
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

const char *
runStatusName(RunStatus s)
{
    switch (s) {
      case RunStatus::Ok: return "ok";
      case RunStatus::Retried: return "retried";
      case RunStatus::Failed: return "failed";
      case RunStatus::TimedOut: return "timed-out";
      case RunStatus::Crashed: return "crashed";
    }
    return "?";
}

std::optional<RunStatus>
runStatusFromName(const std::string &name)
{
    for (RunStatus s : {RunStatus::Ok, RunStatus::Retried,
                        RunStatus::Failed, RunStatus::TimedOut,
                        RunStatus::Crashed})
        if (name == runStatusName(s))
            return s;
    return std::nullopt;
}

CampaignSummary
summarizeOutcomes(const std::vector<RunOutcome> &outcomes)
{
    CampaignSummary sum;
    for (const auto &o : outcomes) {
        switch (o.status) {
          case RunStatus::Ok: ++sum.ok; break;
          case RunStatus::Retried: ++sum.retried; break;
          case RunStatus::Failed: ++sum.failed; break;
          case RunStatus::TimedOut: ++sum.timedOut; break;
          case RunStatus::Crashed: ++sum.crashed; break;
        }
        if (o.resumed)
            ++sum.resumed;
        if (o.fromStore)
            ++sum.storeHits;
        if (o.storeMiss)
            ++sum.storeMisses;
    }
    return sum;
}

IsolationOptions
IsolationOptions::fromEnvironment()
{
    IsolationOptions o;
    o.budget = RunBudget::fromEnvironment();
    o.maxAttempts = static_cast<unsigned>(
        std::max<uint64_t>(1, envU64("CATCH_MAX_ATTEMPTS", 3)));
    o.backoffMs =
        static_cast<unsigned>(envU64("CATCH_BACKOFF_MS", 100));
    o.profile = envU64("CATCH_PROFILE", 0) != 0;
    o.heartbeatMs = static_cast<unsigned>(
        std::max<uint64_t>(1, envU64("CATCH_HEARTBEAT_MS", 1000)));
    o.heartbeatTimeoutMs = static_cast<unsigned>(
        std::max<uint64_t>(1, envU64("CATCH_HEARTBEAT_TIMEOUT_MS",
                                     30000)));
    o.workerBin = envString("CATCH_WORKER_BIN");
    return o;
}

double
workloadCostEstimate(const std::string &name)
{
    // Trace setup cost scales with the kernel's memory footprint and
    // simulation cost with its miss rate; both correlate with category.
    // Server OLTP/Java kernels build tens-of-MB working sets, HPC and
    // FSPEC stream through multi-MB arrays, ISPEC/client stay small.
    auto wl = findWorkload(name);
    if (!wl.ok())
        return 1.0; // unknown names fail fast in their own slot
    switch (wl.value()->category()) {
      case Category::Server: return 8.0;
      case Category::Hpc: return 3.0;
      case Category::Fspec: return 2.0;
      case Category::Client: return 1.5;
      default: return 1.0;
    }
}

void
runTasksLongestFirst(std::vector<std::function<void()>> tasks,
                     const std::vector<double> &cost, unsigned jobs,
                     ChunkStore *store)
{
    CATCHSIM_ASSERT(cost.size() == tasks.size(),
                    "cost/task vector size mismatch");
    if (jobs <= 1 || tasks.size() <= 1) {
        for (auto &t : tasks)
            t();
        return;
    }
    std::vector<size_t> order(tasks.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&cost](size_t a, size_t b) {
                         return cost[a] > cost[b];
                     });
    std::vector<std::function<void()>> sorted;
    sorted.reserve(tasks.size());
    for (size_t i : order)
        sorted.push_back(std::move(tasks[i]));
    ThreadPool pool(std::min<size_t>(jobs, sorted.size()));
    // Declared after the pool so it detaches the producer BEFORE the
    // pool destructor drains in-flight tasks: nothing can chain a new
    // producer task onto a dying pool.
    ProducerPoolGuard producer(store, &pool);
    pool.runAll(std::move(sorted));
}

RunOutcome
executeContainedRun(const SimConfig &cfg, const std::string &name,
                    uint64_t instrs, uint64_t warmup,
                    const IsolationOptions &opts, ChunkStore *store,
                    WarmStateStore *warm_store)
{
    RunOutcome out;
    out.workload = name;
    out.config = cfg.name;
    const FaultPlan &plan =
        opts.plan ? *opts.plan : FaultPlan::global();

    unsigned attempt = 1;
    for (;;) {
        try {
            RunProfile prof;
            auto r = runWorkloadGuarded(cfg, name, instrs, warmup,
                                        opts.budget, plan, attempt,
                                        opts.profile ? &prof : nullptr,
                                        store, warm_store);
            if (r.ok()) {
                out.result = std::move(r).value();
                out.status =
                    attempt > 1 ? RunStatus::Retried : RunStatus::Ok;
                out.attempts = attempt;
                if (opts.profile)
                    out.profile = prof;
                return out;
            }
            SimError err = r.error();
            if (err.transient() && attempt < opts.maxAttempts) {
                if (opts.backoffMs) {
                    // Pacing only: the delay is a pure function of the
                    // attempt index and no clock value is ever read or
                    // recorded, so results stay bitwise-deterministic.
                    std::this_thread::sleep_for(std::chrono::milliseconds(
                        uint64_t(opts.backoffMs) * attempt));
                }
                ++attempt;
                continue;
            }
            out.status = err.category == ErrorCategory::BudgetExceeded
                             ? RunStatus::TimedOut
                             : RunStatus::Failed;
            out.attempts = attempt;
            out.failure = RunFailure{std::move(err), attempt};
            return out;
        } catch (const std::exception &e) {
            out.status = RunStatus::Failed;
            out.attempts = attempt;
            out.failure =
                RunFailure{simError(ErrorCategory::Internal,
                                    "worker exception: ", e.what()),
                           attempt};
            return out;
        } catch (...) {
            out.status = RunStatus::Failed;
            out.attempts = attempt;
            out.failure =
                RunFailure{simError(ErrorCategory::Internal,
                                    "unknown worker exception"),
                           attempt};
            return out;
        }
    }
}

std::vector<RunOutcome>
runWorkloadsIsolated(const SimConfig &cfg,
                     const std::vector<std::string> &names,
                     uint64_t instrs, uint64_t warmup, unsigned jobs,
                     const IsolationOptions &opts,
                     const std::function<void(const RunOutcome &)>
                         &progress)
{
    std::vector<RunOutcome> outcomes(names.size());
    std::vector<std::function<void()>> tasks;
    std::vector<double> cost;
    tasks.reserve(names.size());
    cost.reserve(names.size());
    // Resolve the store once on the calling thread: ChunkStore::global()
    // reads the environment on first use, which must not happen
    // concurrently from workers (env.hh startup contract).
    ChunkStore *store = opts.store ? *opts.store : ChunkStore::global();
    WarmStateStore *warm_store =
        opts.warmStore ? *opts.warmStore : WarmStateStore::global();
    // The result-store key depends only on the run's identity, so the
    // config digest is shared by every slot of the campaign.
    uint64_t cfg_digest =
        opts.resultStore ? configDigest(cfg) : 0;
    for (size_t i = 0; i < names.size(); ++i) {
        // Journal replay happens here on the calling thread, before any
        // worker starts: resumed runs never occupy a worker slot. The
        // result store is consulted second, under the same rule.
        if (opts.journal) {
            RunStatus st = RunStatus::Ok;
            if (const SimResult *done = opts.journal->find(
                    cfg.name, names[i], instrs, warmup, &st)) {
                outcomes[i].workload = names[i];
                outcomes[i].config = cfg.name;
                outcomes[i].status = st;
                outcomes[i].resumed = true;
                outcomes[i].result = *done;
                if (progress)
                    progress(outcomes[i]);
                continue;
            }
        }
        std::optional<RunKey> key;
        if (opts.resultStore) {
            if (auto wl = findWorkload(names[i]); wl.ok())
                key = RunKey{names[i], wl.value()->seed(), cfg_digest,
                             instrs, warmup};
            // Unknown names get no key: they fail fast in their slot
            // and nothing cacheable ever comes of them.
            if (key) {
                if (auto hit = opts.resultStore->find(*key)) {
                    outcomes[i] = std::move(*hit);
                    outcomes[i].config = cfg.name;
                    if (progress)
                        progress(outcomes[i]);
                    continue;
                }
            }
        }
        tasks.push_back([&, i, key, store, warm_store] {
            // Fully private run: own workload (re-seeded from its suite
            // entry), own Simulator, own outcome slot. The stores (when
            // present) are shared deliberately — chunks and snapshots
            // are immutable and content-addressed, so sharing cannot
            // couple runs.
            outcomes[i] = executeContainedRun(cfg, names[i], instrs,
                                              warmup, opts, store,
                                              warm_store);
            if (opts.resultStore) {
                outcomes[i].storeMiss = true;
                if (key && outcomes[i].ok())
                    opts.resultStore->put(*key, outcomes[i]);
            }
            if (opts.journal)
                opts.journal->append(outcomes[i], instrs, warmup);
            if (progress)
                progress(outcomes[i]);
        });
        cost.push_back(workloadCostEstimate(names[i]));
    }
    runTasksLongestFirst(std::move(tasks), cost, jobs, store);
    return outcomes;
}

std::vector<SimResult>
runWorkloadsParallel(const SimConfig &cfg,
                     const std::vector<std::string> &names,
                     uint64_t instrs, uint64_t warmup, unsigned jobs,
                     const std::function<void(const SimResult &)> &progress)
{
    std::function<void(const RunOutcome &)> cb;
    if (progress)
        cb = [&progress](const RunOutcome &o) { progress(o.result); };
    auto outcomes = runWorkloadsIsolated(cfg, names, instrs, warmup,
                                         jobs, IsolationOptions{}, cb);
    std::vector<SimResult> results(outcomes.size());
    for (size_t i = 0; i < outcomes.size(); ++i) {
        if (outcomes[i].ok()) {
            results[i] = std::move(outcomes[i].result);
        } else {
            warn("run '", names[i], "' on '", cfg.name, "' ",
                 runStatusName(outcomes[i].status), " (",
                 errorCategoryName(outcomes[i].failure->error.category),
                 "): ", outcomes[i].failure->error.message);
            results[i].workload = names[i];
            results[i].config = cfg.name;
        }
    }
    return results;
}

std::map<std::string, double>
soloIpcsParallel(const SimConfig &cfg, const std::vector<MpMix> &mixes,
                 uint64_t instrs, uint64_t warmup, unsigned jobs)
{
    std::set<std::string> distinct;
    for (const auto &mix : mixes)
        for (const auto &w : mix.workloads)
            distinct.insert(w);
    std::vector<std::string> names(distinct.begin(), distinct.end());
    // Solo baselines feed weighted-speedup against detailed MP runs, so
    // they must run detailed themselves even under a sampled config.
    SimConfig solo_cfg = cfg;
    solo_cfg.sampling = SamplingConfig();
    auto results =
        runWorkloadsParallel(solo_cfg, names, instrs, warmup, jobs);
    std::map<std::string, double> solo;
    for (size_t i = 0; i < names.size(); ++i)
        solo[names[i]] = results[i].ipc;
    return solo;
}

std::vector<MpResult>
runMixesParallel(const SimConfig &cfg, const std::vector<MpMix> &mixes,
                 uint64_t instrs, uint64_t warmup,
                 const std::map<std::string, double> &solo, unsigned jobs)
{
    std::vector<MpResult> results(mixes.size());
    std::vector<std::function<void()>> tasks;
    std::vector<double> cost;
    tasks.reserve(mixes.size());
    cost.reserve(mixes.size());
    for (size_t i = 0; i < mixes.size(); ++i) {
        std::array<double, 4> alone{};
        double mix_cost = 0;
        for (int c = 0; c < 4; ++c) {
            auto it = solo.find(mixes[i].workloads[c]);
            CATCHSIM_ASSERT(it != solo.end(), "missing solo IPC for ",
                            mixes[i].workloads[c]);
            alone[c] = it->second;
            mix_cost += workloadCostEstimate(mixes[i].workloads[c]);
        }
        tasks.push_back([&, i, alone] {
            MpSimulator sim(cfg);
            results[i] = sim.run(mixes[i], instrs, warmup, alone);
        });
        cost.push_back(mix_cost);
    }
    runTasksLongestFirst(std::move(tasks), cost, jobs);
    return results;
}

} // namespace catchsim
