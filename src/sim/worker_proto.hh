/**
 * @file
 * Wire protocol between the campaign supervisor and its worker
 * processes (process-isolated execution, sim/supervisor.hh).
 *
 * Framing: every message is a 4-byte little-endian u32 payload length
 * followed by that many bytes of JSON. Three message types flow worker
 * -> supervisor on the worker's stdout:
 *
 *   {"type":"heartbeat"}                 liveness; feeds the wall-clock
 *                                        watchdog, carries no data
 *   {"type":"result", ...}               the run's RunOutcome: status,
 *                                        attempts, then "result" (ok) or
 *                                        "error" {category, message},
 *                                        plus optional "hostPerf"
 *
 * and exactly one message flows supervisor -> worker on the worker's
 * stdin: the request, carrying the workload name, instruction counts,
 * the full SimConfig (configToJson) and the containment knobs the
 * worker needs (budget, attempt limits, heartbeat period). The worker
 * inherits the supervisor's environment, so env-driven state
 * (CATCH_FAULT_INJECT, the trace chunk store, sampling knobs) needs no
 * explicit plumbing.
 *
 * The supervisor parses worker bytes with FrameDecoder, which treats
 * every malformation — garbage length prefix, oversized frame,
 * truncation, stray bytes — as a typed protocol error, never UB: a
 * worker that dies mid-frame or prints garbage to stdout becomes a
 * Crashed RunFailure in its own slot.
 *
 * SimConfig round-trips through configToJson/configFromJson with exact
 * u64s and %.17g doubles (common/json.hh), so a worker simulates
 * byte-for-byte the config the supervisor holds — the foundation of the
 * cross-mode bitwise-identity guarantee. configDigest() hashes that
 * canonical serialisation; the incremental result store
 * (sim/result_store.hh) keys on it.
 */

#ifndef CATCHSIM_SIM_WORKER_PROTO_HH_
#define CATCHSIM_SIM_WORKER_PROTO_HH_

#include <string>

#include "common/error.hh"
#include "common/json.hh"
#include "common/sim_config.hh"
#include "sim/parallel_runner.hh"

namespace catchsim
{

/** Frames above this are protocol corruption, not data (64 MB). */
constexpr uint32_t kMaxFrameBytes = 64u << 20;

/**
 * Writes one length-prefixed frame to @p fd, restarting on EINTR.
 * A closed peer (EPIPE) or short write is an io-transient error.
 */
Expected<void> writeFrame(int fd, const std::string &payload);

/**
 * Blocking read of one complete frame from @p fd (the worker reading
 * its request). EOF before a full frame or an oversized length prefix
 * is a crashed-category error.
 */
Expected<std::string> readFrame(int fd);

/**
 * Incremental frame reassembly for the supervisor's poll loop: feed()
 * whatever read() returned, then drain complete frames with next().
 * Any malformation latches error() and next() returns -1 forever.
 */
class FrameDecoder
{
  public:
    /** Appends @p n raw bytes from the pipe. */
    void feed(const char *data, size_t n);

    /**
     * Extracts the next complete frame into @p out.
     * @return 1 frame ready, 0 need more bytes, -1 protocol error.
     */
    int next(std::string *out);

    const std::string &error() const { return error_; }

  private:
    std::string buf_;
    std::string error_;
};

/** One run request, as decoded by the worker. */
struct WorkerRequest
{
    SimConfig cfg;
    std::string workload;
    uint64_t instrs = 0;
    uint64_t warmup = 0;
    /** 1-based process attempt (restart index): drives the attempt
     *  number process-level fault clauses count (':xN'). */
    unsigned attemptBase = 1;
    /** Containment knobs the worker applies in-process; journal/store
     *  members are meaningless across the process boundary and stay
     *  unset. heartbeatMs sets the worker's heartbeat period. */
    IsolationOptions opts;
};

/** Serialises one request frame payload (supervisor side). */
std::string buildWorkerRequest(const SimConfig &cfg,
                               const std::string &workload,
                               uint64_t instrs, uint64_t warmup,
                               unsigned attemptBase,
                               const IsolationOptions &opts);

/** Parses a request payload; config error on any malformation. */
Expected<WorkerRequest> parseWorkerRequest(const std::string &json);

/** Serialises a finished outcome as a result frame payload. */
std::string buildWorkerResult(const RunOutcome &out);

/**
 * Parses a result payload back into a RunOutcome (workload/config are
 * carried in the payload). Crashed-category error on malformation —
 * a worker that garbles its result is indistinguishable from one that
 * crashed writing it.
 */
Expected<RunOutcome> parseWorkerResult(const std::string &json);

/** True iff @p json is a heartbeat frame payload. */
bool isHeartbeatFrame(const std::string &json);

/** A heartbeat frame payload. */
std::string heartbeatPayload();

/**
 * Canonical JSON serialisation of every SimConfig knob (fixed field
 * order, exact integers, %.17g doubles). Two configs serialise
 * identically iff they simulate identically.
 */
std::string configToJson(const SimConfig &cfg);

/** Parses configToJson output; config error on bad shape or an
 *  out-of-range enum value. */
Expected<SimConfig> configFromJson(const JsonValue &v);

/**
 * FNV-1a of configToJson(cfg) with the name field blanked: the config
 * component of a result-store key. Any knob change — geometry, policy,
 * sampling schedule — moves the digest and invalidates cached cells;
 * renaming a config does not, because the name never enters the
 * simulation.
 */
uint64_t configDigest(const SimConfig &cfg);

/**
 * Entry point of the hidden --worker mode: reads one request frame
 * from stdin, heartbeats on stdout while executing the run via
 * executeContainedRun (the same unit of work the in-process executor
 * uses), writes one result frame, exits. Never touches journals or
 * result stores — persistence is the supervisor's job, so a SIGKILLed
 * worker cannot leave half-written campaign state behind.
 */
int workerMain();

} // namespace catchsim

#endif // CATCHSIM_SIM_WORKER_PROTO_HH_
