#include "sim/fast_forward.hh"

#include <utility>

namespace catchsim
{

FastForward::FastForward(CoreId core, CacheHierarchy &hierarchy,
                         BranchPredictor &predictor, Tact *tact)
    : core_(core), hierarchy_(hierarchy), predictor_(predictor),
      tact_(tact)
{
}

void
FastForward::bind(const Trace &trace)
{
    trace_ = makeView(trace.ops);
    stream_ = nullptr;
    refillAt_ = ~size_t(0);
    lastCodeLine_ = ~0ULL;
    lastData0_ = lastData1_ = ~0ULL;
    dirty0_ = dirty1_ = false;
}

void
FastForward::bind(TraceStream &stream)
{
    trace_ = stream.view();
    stream_ = &stream;
    refillAt_ = stream.refillAt();
    lastCodeLine_ = ~0ULL;
    lastData0_ = lastData1_ = ~0ULL;
    dirty0_ = dirty1_ = false;
}

size_t
FastForward::warm(size_t pos, uint64_t count, Cycle now)
{
    size_t end = trace_.count - pos < count ? trace_.count
                                            : pos + static_cast<size_t>(count);
    if (tact_)
        tact_->setWarming(true);
    while (pos < end) {
        if (pos >= refillAt_) {
            stream_->ensure(pos);
            refillAt_ = stream_->refillAt();
        }
        const MicroOp &op = trace_.at(pos);

        // Code side, line-granular like Frontend::fetchCycle.
        Addr line = lineAddr(op.pc);
        if (line != lastCodeLine_) {
            hierarchy_.warmAccess(core_, op.pc, op.pc, now,
                                  CacheHierarchy::WarmKind::Code);
            lastCodeLine_ = line;
        }

        switch (op.cls) {
          case OpClass::Load: {
            Addr dline = lineAddr(op.memAddr);
            if (dline == lastData0_) {
                // MRU re-touch: LRU order cannot change, skip the walk.
            } else if (dline == lastData1_ &&
                       (((dline ^ lastData0_) >> kLineShift) & 15) != 0) {
                std::swap(lastData0_, lastData1_);
                std::swap(dirty0_, dirty1_);
            } else {
                hierarchy_.warmAccess(core_, op.pc, op.memAddr, now,
                                      CacheHierarchy::WarmKind::Load);
                lastData1_ = lastData0_;
                dirty1_ = dirty0_;
                lastData0_ = dline;
                dirty0_ = false;
            }
            if (tact_) {
                // Dispatch and completion collapse to the same instant:
                // warming has no timing, only the learning matters.
                tact_->onLoadDispatch(op, now);
                tact_->onLoadComplete(op, now);
            }
            break;
          }
          case OpClass::Store: {
            Addr dline = lineAddr(op.memAddr);
            if (dline == lastData0_ && dirty0_) {
                // already dirty and MRU: nothing left to record
            } else if (dline == lastData1_ && dirty1_ &&
                       (((dline ^ lastData0_) >> kLineShift) & 15) != 0) {
                std::swap(lastData0_, lastData1_);
                std::swap(dirty0_, dirty1_);
            } else {
                hierarchy_.warmAccess(core_, op.pc, op.memAddr, now,
                                      CacheHierarchy::WarmKind::Store);
                if (dline != lastData0_) {
                    lastData1_ = lastData0_;
                    dirty1_ = dirty0_;
                    lastData0_ = dline;
                }
                dirty0_ = true;
            }
            break;
          }
          case OpClass::Branch:
            predictor_.warmTrain(op);
            break;
          default:
            break;
        }

        if (tact_)
            tact_->onRetire(op);
        ++pos;
    }
    if (tact_)
        tact_->setWarming(false);
    return pos;
}

void
FastForward::saveWarmState(StateSink &sink) const
{
    sink.tag(stateTag("FFWD"));
    sink.u64(lastCodeLine_);
    sink.u64(lastData0_);
    sink.u64(lastData1_);
    sink.boolean(dirty0_);
    sink.boolean(dirty1_);
}

bool
FastForward::loadWarmState(StateSource &src)
{
    if (!src.expect(stateTag("FFWD")))
        return false;
    lastCodeLine_ = src.u64();
    lastData0_ = src.u64();
    lastData1_ = src.u64();
    dirty0_ = src.boolean();
    dirty1_ = src.boolean();
    return src.ok();
}

} // namespace catchsim
