#include "sim/mp_simulator.hh"

#include <memory>
#include <vector>

#include "cache/hierarchy.hh"
#include "common/logging.hh"
#include "core/ooo_core.hh"
#include "criticality/ddg.hh"
#include "criticality/heuristic_detector.hh"
#include "tact/tact.hh"
#include "trace/trace_stream.hh"

namespace catchsim
{

MpSimulator::MpSimulator(const SimConfig &cfg) : cfg_(cfg)
{
    cfg_.numCores = 4;
    // MP mixes always run detailed: the shared-LLC interference being
    // measured is exactly what functional warming abstracts away.
    cfg_.sampling = SamplingConfig();
    auto valid = cfg_.validate();
    CATCHSIM_ASSERT(valid.ok(), "invalid MP config: ",
                    valid.ok() ? "" : valid.error().message);
}

MpResult
MpSimulator::run(const MpMix &mix, uint64_t instrs_per_core,
                 uint64_t warmup, const std::array<double, 4> &ipc_alone)
{
    const uint64_t total = instrs_per_core + warmup;

    // One stream per core: O(chunk) resident trace per core instead of
    // four fully materialized traces.
    std::vector<std::unique_ptr<Workload>> workloads;
    std::vector<std::unique_ptr<TraceStream>> streams;
    workloads.reserve(mix.workloads.size());
    streams.reserve(mix.workloads.size());
    for (const auto &name : mix.workloads) {
        workloads.push_back(makeWorkload(name));
        streams.push_back(std::make_unique<TraceStream>(
            *workloads.back(), total, TraceStream::kDefaultChunkOps,
            std::function<double()>(), ChunkStore::global()));
    }

    CacheHierarchy hierarchy(cfg_);

    std::vector<std::unique_ptr<CriticalityDetector>> detectors(4);
    std::vector<std::unique_ptr<Tact>> tacts(4);
    if (cfg_.criticality.enabled) {
        for (CoreId c = 0; c < 4; ++c) {
            if (cfg_.criticality.kind == DetectorKind::Heuristic)
                detectors[c] =
                    std::make_unique<HeuristicCriticalityDetector>(
                        cfg_.criticality);
            else
                detectors[c] = std::make_unique<DdgCriticalityDetector>(
                    cfg_.criticality, cfg_.robSize, cfg_.renameLat,
                    cfg_.redirectLat, cfg_.width);
        }
        hierarchy.setCriticalQuery([&detectors](CoreId c, Addr pc) {
            return detectors[c]->isCritical(pc);
        });
        if (cfg_.tact.any()) {
            for (CoreId c = 0; c < 4; ++c) {
                CriticalityDetector *det = detectors[c].get();
                tacts[c] = std::make_unique<Tact>(
                    cfg_.tact, c, hierarchy,
                    [det](Addr pc) { return det->isCritical(pc); },
                    streams[c]->mem().get());
            }
        }
    }

    std::vector<std::unique_ptr<OooCore>> cores;
    for (CoreId c = 0; c < 4; ++c) {
        cores.push_back(std::make_unique<OooCore>(
            cfg_, c, hierarchy, detectors[c].get(), tacts[c].get()));
        cores[c]->bind(*streams[c]);
    }

    // Interleaved stepping ordered by local core time keeps the shared
    // LLC/DRAM access stream coherent across cores.
    bool warm_reset_done = false;
    while (true) {
        OooCore *next = nullptr;
        for (auto &core : cores)
            if (!core->done() && (!next || core->now() < next->now()))
                next = core.get();
        if (!next)
            break;
        next->step();

        if (!warm_reset_done) {
            bool all_warm = true;
            for (auto &core : cores)
                all_warm &= core->instrsDone() >= warmup;
            if (all_warm) {
                warm_reset_done = true;
                hierarchy.resetStats();
                for (auto &core : cores)
                    core->markMeasurementStart();
            }
        }
    }

    MpResult r;
    r.mix = mix.name;
    r.config = cfg_.name;
    r.weightedSpeedup = 0;
    for (CoreId c = 0; c < 4; ++c) {
        r.ipc[c] = cores[c]->stats().ipc();
        r.ipcAlone[c] = ipc_alone[c];
        if (ipc_alone[c] > 0)
            r.weightedSpeedup += r.ipc[c] / ipc_alone[c];
    }
    return r;
}

} // namespace catchsim
