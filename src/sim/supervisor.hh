/**
 * @file
 * Process-isolated campaign execution: one worker process per run.
 *
 * runWorkloadsSupervised() is the process-level sibling of
 * runWorkloadsIsolated(): same outcome-per-slot contract, same journal
 * and result-store semantics, but every run executes in its own
 * fork/exec'd worker process (the hidden --worker mode of the catch
 * binary, sim/worker_proto.hh). A crash in any run — SIGSEGV inside
 * the simulator, an abort, the OOM killer — ends that worker process
 * and becomes a typed Crashed RunFailure in its slot; the campaign and
 * its journal survive.
 *
 * Supervision state machine, per slot:
 *
 *   spawn -> streaming (heartbeats/result) -> EOF -> classify
 *     classify ok        -> commit result (Retried if restarts happened)
 *     classify crashed   -> restart with backoff while attempts remain,
 *     classify exec-fail    else commit a Crashed failure
 *     watchdog expired   -> SIGKILL -> commit heartbeat-timeout
 *                           (never restarted: hangs are not transient)
 *
 * The watchdog here is WALL-CLOCK: a worker whose heartbeat goes
 * silent for CATCH_HEARTBEAT_TIMEOUT_MS is SIGKILLed. It complements —
 * not replaces — the simulated-cycle watchdog (sim/run_guard.hh),
 * which still runs inside the worker and reports budget-exceeded as a
 * typed in-band failure. The wall-clock layer catches what the
 * simulated-cycle layer cannot: a worker stuck before or outside the
 * simulation loop, or one that is dead without an exit status yet.
 *
 * Determinism: successful slots are bitwise-identical to an in-process
 * campaign at any worker count. The request carries the exact
 * SimConfig (configToJson round-trips bitwise) and workers run
 * executeContainedRun — the identical unit of work — so only the
 * transport differs. No wall-clock value enters any result; the clock
 * only decides when to kill an already-hung worker.
 */

#ifndef CATCHSIM_SIM_SUPERVISOR_HH_
#define CATCHSIM_SIM_SUPERVISOR_HH_

#include <functional>
#include <string>
#include <vector>

#include "sim/parallel_runner.hh"

namespace catchsim
{

/**
 * Runs @p names[i] -> outcomes[i] with each run in its own worker
 * process; at most @p jobs workers are alive at once. Journal replay
 * and result-store lookups happen on the calling thread before any
 * worker spawns, exactly as in runWorkloadsIsolated. opts.workerBin
 * selects the worker executable (default /proc/self/exe, which must
 * understand --worker); opts.heartbeatMs / opts.heartbeatTimeoutMs
 * configure the wall-clock watchdog. @p progress runs on the calling
 * thread as slots finish.
 */
std::vector<RunOutcome>
runWorkloadsSupervised(const SimConfig &cfg,
                       const std::vector<std::string> &names,
                       uint64_t instrs, uint64_t warmup, unsigned jobs,
                       const IsolationOptions &opts = {},
                       const std::function<void(const RunOutcome &)>
                           &progress = nullptr);

} // namespace catchsim

#endif // CATCHSIM_SIM_SUPERVISOR_HH_
