/**
 * @file
 * WarmStateStore: content-addressed warmed-state snapshots.
 *
 * Sampled campaigns spend most of their host time in functional warming
 * (sim/fast_forward.hh). That work is a pure function of the warming
 * identity — (kernel, seed, boundary, trace shape, warming-visible
 * config) — so repeat sweeps that vary only timing knobs re-derive the
 * exact same warmed state over and over. The store memoizes it at two
 * kinds of boundary:
 *
 *   - the global-warmup boundary (windowIndex 0): the state immediately
 *     before resetStats(). Keyed by warmConfigDigest() only, so a pure
 *     timing resweep shares the snapshot — warming stamps fills with
 *     readyAt 0 and never advances the clock, so timing knobs cannot
 *     reach it;
 *   - every sampling-window boundary (windowIndex >= 1): the state at
 *     the end of each inter-window warming gap, where most warming time
 *     goes at the default 20000/2000/2000 schedule. State there depends
 *     on the detailed windows executed before it, so these keys carry
 *     the FULL config digest (timing included; worker_proto.hh
 *     configDigest) plus sampleScheduleDigest() — only a run that
 *     executes bitwise the same detailed prefix may restore one.
 *
 * Snapshots are split into a byte blob (every non-memory component) and
 * a copy-on-write functional-memory page image: the store and restored
 * runs share refcounted immutable page handles, so a restore adopts
 * pointers instead of copying the page map, and a run's first write to
 * a shared page clones just that page (mem/functional_memory.hh).
 *
 * Keying is honest by construction:
 *   - the key carries the trace identity (kernel, seed, totalOps,
 *     chunkOps) and the snapshot position (boundaryOps, windowIndex).
 *     totalOps is in the key because the stream clamps its final chunk
 *     against it, so the generation frontier near the trace end
 *     depends on it;
 *   - warmConfigDigest() hashes every SimConfig knob that can reach
 *     warmed state and deliberately excludes pure timing knobs;
 *     tools/ci/catch_analyze.py (warm-digest scope) statically checks
 *     the exclusion list against the warming call graph, and knows
 *     sampleScheduleDigest() covers the schedule knobs for the
 *     window-boundary keys;
 *   - kWarmStateFormatVersion is part of every record; bump it whenever
 *     any component's saveWarmState encoding changes and stale disk
 *     snapshots turn into clean misses instead of misparses.
 *
 * Tiering and integrity mirror trace/chunk_store.hh: a mutex-guarded
 * in-memory LRU over immutable shared snapshots, an optional disk tier
 * with checksummed records written via unique-temp + rename, first-
 * writer-wins put(), and a corrupt record (truncation, bit flip,
 * version skew, key mismatch) is warned about, deleted and reported as
 * a miss — the caller re-warms; results are never wrong, only slower.
 */

#ifndef CATCHSIM_SIM_WARM_STATE_HH_
#define CATCHSIM_SIM_WARM_STATE_HH_

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/error.hh"
#include "common/fault_inject.hh"
#include "common/sim_config.hh"
#include "mem/functional_memory.hh"

namespace catchsim
{

/** Bump whenever any component's saveWarmState encoding changes. */
constexpr uint32_t kWarmStateFormatVersion = 2;

/**
 * Identity of one warmed-state snapshot. Two runs with equal keys are
 * guaranteed (by construction of the digests and the trace determinism
 * contract) to derive bitwise-identical warmed state.
 */
struct WarmStateKey
{
    std::string kernel;        ///< workload name
    uint64_t seed = 0;         ///< workload seed
    uint64_t boundaryOps = 0;  ///< trace position of the snapshot
    uint64_t totalOps = 0;     ///< stream total (final-chunk clamp)
    uint64_t chunkOps = 0;     ///< stream chunk size (ring layout)
    uint64_t configDigest = 0; ///< warmConfigDigest(cfg) at windowIndex
                               ///< 0; full configDigest(cfg) otherwise
    uint64_t windowIndex = 0;  ///< 0 = global-warmup boundary;
                               ///< p >= 1 = the gap before period p
    uint64_t scheduleDigest = 0; ///< sampleScheduleDigest(); 0 at the
                                 ///< schedule-independent global boundary

    bool
    operator==(const WarmStateKey &o) const
    {
        return kernel == o.kernel && seed == o.seed &&
               boundaryOps == o.boundaryOps && totalOps == o.totalOps &&
               chunkOps == o.chunkOps && configDigest == o.configDigest &&
               windowIndex == o.windowIndex &&
               scheduleDigest == o.scheduleDigest;
    }
};

/**
 * FNV-1a digest of every SimConfig knob that can influence warmed
 * state. Pure timing knobs are excluded on purpose — see the file
 * comment for the argument and the static check that guards it.
 */
uint64_t warmConfigDigest(const SimConfig &cfg);

/**
 * FNV-1a digest of the sampling schedule (mode, interval, window,
 * warmup). Window-boundary snapshots (windowIndex >= 1) carry it: the
 * state at a window boundary depends on where every earlier detailed
 * window fell, which is exactly what the schedule decides. The global
 * boundary (windowIndex 0) predates the first window and stays
 * schedule-independent, so those keys use 0 instead.
 */
uint64_t sampleScheduleDigest(const SamplingConfig &sc);

/**
 * One warmed-state snapshot: the serialized non-memory components plus
 * a copy-on-write functional-memory image whose page handles are
 * shared between the store, the publishing run and every restored run.
 */
struct WarmSnapshot
{
    std::string bytes;                 ///< every non-memory component
    FunctionalMemory::PageImage pages; ///< COW-shared memory image

    /** Logical size of this snapshot on its own: blob bytes plus the
     *  full page data. Profile counters report it symmetrically for
     *  hits and misses. The store's memory budget does NOT sum these —
     *  it charges page data shared between resident snapshots once
     *  (see WarmStateStore::Config::memBudgetBytes). */
    size_t
    residentBytes() const
    {
        return bytes.size() +
               pages.size() * (sizeof(Addr) + sizeof(FunctionalMemory::Page));
    }
};

/**
 * Two-tier (memory LRU + optional disk) store of warmed-state
 * snapshots. Thread-safe; snapshots are immutable once published.
 */
class WarmStateStore
{
  public:
    using SnapshotPtr = std::shared_ptr<const WarmSnapshot>;

    struct Config
    {
        /** In-memory budget over the store's PHYSICAL residency: blob
         *  bytes per snapshot, plus each distinct copy-on-write page
         *  counted once however many resident snapshots share it. The
         *  window-boundary snapshots of one run share nearly their
         *  whole image (only pages written between boundaries diverge),
         *  so a whole sweep's snapshots typically cost one workload
         *  footprint plus deltas. */
        size_t memBudgetBytes = size_t(128) << 20;

        /** Disk tier directory; empty disables the disk tier. */
        std::string diskDir;

        /** Consult/publish at sampling-window boundaries too (phase 2),
         *  not just the global-warmup boundary. Off reproduces the
         *  phase-1 store for A/B measurement (docs/PERFORMANCE.md). */
        bool perWindow = true;

        /**
         * Window-boundary eligibility gate, part 1: memoize window
         * boundaries only when the schedule's inter-window slack
         * (interval - warmup - window instrs) is at least this many
         * instructions. A window restore costs roughly one component-
         * blob parse plus an O(pages) map rebuild — a few ms — while
         * the warming it replaces scales with the gap, so short-slack
         * schedules (the 20k-instr default: slack 16k) lose by
         * restoring and long-warming schedules win. 0 = no floor.
         * The gate never changes results — restored and re-warmed
         * state are bitwise identical — only where time goes.
         */
        uint64_t minWindowGapInstrs = 50000;

        /**
         * Window-boundary eligibility gate, part 2: stop memoizing
         * window boundaries once the run's resident page count at the
         * gap start exceeds this. The map rebuild in restorePages()
         * and the snapshot sort are O(pages); page-heavy streaming
         * workloads (hpc.stream: ~17k pages) also warm fastest per
         * instruction (the repeat filter skips most of a sequential
         * walk), so for them re-warming beats restoring at any
         * realistic gap. Evaluated at the pre-gap position, which both
         * the publishing and the consulting run reach with bitwise-
         * identical state — the gate decision is deterministic and
         * consistent across reps, processes and job counts. 0 = no cap.
         */
        uint64_t maxWindowPages = 12288;

        /** Fault-injection plan (targets "warm-state-store" for every
         *  disk read and "warm-state-window" for window-boundary reads
         *  only, kind state-corrupt); null disables injection. */
        const FaultPlan *plan = nullptr;
    };

    struct Stats
    {
        uint64_t hits = 0;      ///< find() served (memory or disk)
        uint64_t misses = 0;    ///< find() empty-handed — caller warms
        uint64_t diskHits = 0;  ///< subset of hits read from disk
        uint64_t evictions = 0; ///< memory-tier LRU evictions
        uint64_t corrupt = 0;   ///< disk records dropped as corrupt
        uint64_t puts = 0;      ///< new snapshots published
        uint64_t windowHits = 0;   ///< subset of hits with windowIndex>0
        uint64_t windowMisses = 0; ///< subset of misses, likewise
    };

    WarmStateStore();
    explicit WarmStateStore(Config cfg);
    ~WarmStateStore();

    WarmStateStore(const WarmStateStore &) = delete;
    WarmStateStore &operator=(const WarmStateStore &) = delete;

    /**
     * Looks @p key up in memory, then on disk. A corrupt disk record is
     * deleted and counted, and the call reports a miss. @returns null
     * on a miss — the caller warms functionally and put()s the result.
     */
    SnapshotPtr find(const WarmStateKey &key);

    /**
     * Publishes @p snap under @p key and writes it to the disk tier.
     * First writer wins: every writer of a given key derived identical
     * state, so a racing publication keeps the resident copy.
     */
    SnapshotPtr put(const WarmStateKey &key, WarmSnapshot snap);

    /** Publishes a pages-free snapshot (unit tests, tooling). */
    SnapshotPtr
    put(const WarmStateKey &key, std::string bytes)
    {
        return put(key, WarmSnapshot{std::move(bytes), {}});
    }

    /**
     * Drops @p key from both tiers. The simulator calls this when a
     * restored snapshot fails component-level validation (a format bug
     * the checksum cannot catch): the retry re-warms and republishes.
     */
    void remove(const WarmStateKey &key);

    Stats stats() const;
    size_t residentBytes() const;

    /** Whether window-boundary snapshots participate (Config). */
    bool perWindow() const { return cfg_.perWindow; }

    /** Slack floor for window-boundary memoization (Config). */
    uint64_t minWindowGap() const { return cfg_.minWindowGapInstrs; }

    /** Page-count cap for window-boundary memoization (Config). */
    uint64_t maxWindowPages() const { return cfg_.maxWindowPages; }

    /**
     * Reads and fully validates @p key's disk record: size bound,
     * whole-record checksum, magic, version, key echo, payload-length
     * consistency, page-section shape — in that order, so a bad byte is
     * never trusted. Exposed for the disk-tier taxonomy tests; find()
     * is the production path.
     */
    Expected<SnapshotPtr> loadDiskChecked(const WarmStateKey &key);

    /** The record path @p key maps to (test + tooling visibility). */
    std::string diskPath(const WarmStateKey &key) const;

    /** Effective disk dir; empty when disabled (also after a failed
     *  create — the store degrades to the memory tier). */
    const std::string &diskDir() const { return cfg_.diskDir; }

    /**
     * The process-wide store, or null when disabled. Enabled by
     * CATCH_WARM_STATE=1 (memory tier) or a non-empty
     * CATCH_WARM_STATE_CACHE directory (memory + disk tier);
     * CATCH_WARM_STATE_MB overrides the memory budget (default 128),
     * CATCH_WARM_STATE_WINDOWS=0 disables the window-boundary
     * snapshots (phase-1 behavior), and CATCH_WARM_STATE_MIN_GAP /
     * CATCH_WARM_STATE_MAX_PAGES override the two eligibility gates
     * (Config::minWindowGapInstrs / maxWindowPages; 0 = ungated).
     * First call reads the environment (env.hh contract).
     */
    static WarmStateStore *global();

  private:
    struct Entry
    {
        std::string mapKey;
        SnapshotPtr snap;
    };

    static std::string mapKey(const WarmStateKey &key);
    Expected<void> writeDisk(const WarmStateKey &key,
                             const WarmSnapshot &snap);
    void evictOverBudgetLocked();
    /** Budget accounting for inserting/erasing one entry: blob bytes
     *  always, page data only on the first/last reference store-wide
     *  (sharing-aware — see Config::memBudgetBytes). */
    void chargeLocked(const WarmSnapshot &snap);
    void releaseLocked(const WarmSnapshot &snap);

    Config cfg_;

    mutable std::mutex mu_;
    std::list<Entry> lru_; ///< front = most recent
    std::unordered_map<std::string, std::list<Entry>::iterator> map_;
    /** Store-wide reference counts of resident COW pages, by identity. */
    std::unordered_map<const FunctionalMemory::Page *, uint64_t> pageRefs_;
    size_t residentBytes_ = 0;
    Stats stats_;
    std::atomic<uint64_t> tmpSerial_{0};
};

} // namespace catchsim

#endif // CATCHSIM_SIM_WARM_STATE_HH_
