/**
 * @file
 * WarmStateStore: content-addressed warmed-state snapshots.
 *
 * Sampled campaigns spend most of their host time in functional warming
 * (sim/fast_forward.hh). That work is a pure function of the warming
 * identity — (kernel, seed, boundary, trace shape, warming-visible
 * config) — so repeat sweeps that vary only timing knobs re-derive the
 * exact same warmed state over and over. The store memoizes it: the
 * simulator serializes every warming-visible component at the global-
 * warmup boundary (immediately before resetStats()) into one blob, and
 * later runs with the same identity restore the blob and jump the trace
 * cursor past the warmed prefix instead of re-executing it.
 *
 * Keying is honest by construction:
 *   - the key carries the trace identity (kernel, seed, totalOps,
 *     chunkOps) and the snapshot position (boundaryOps). totalOps is in
 *     the key because the stream clamps its final chunk against it, so
 *     the generation frontier near the trace end depends on it;
 *   - warmConfigDigest() hashes every SimConfig knob that can reach
 *     warmed state — geometry, inclusion, prefetcher and TACT/
 *     criticality knobs, seeds — and deliberately excludes pure timing
 *     knobs (latencies, latency adders, demotion, DRAM, core width/ROB/
 *     ports, sampling schedule): warming stamps fills with readyAt 0 and
 *     never advances the clock, so those resweeps are exactly the repeat
 *     traffic the store exists to accelerate. tools/ci/catch_analyze.py
 *     (warm-digest scope) statically checks the exclusion list against
 *     the warming call graph;
 *   - kWarmStateFormatVersion is part of every record; bump it whenever
 *     any component's saveWarmState encoding changes and stale disk
 *     snapshots turn into clean misses instead of misparses.
 *
 * Tiering and integrity mirror trace/chunk_store.hh: a mutex-guarded
 * in-memory LRU over immutable shared blobs, an optional disk tier with
 * checksummed records written via unique-temp + rename, first-writer-
 * wins put(), and a corrupt record (truncation, bit flip, version skew,
 * key mismatch) is warned about, deleted and reported as a miss — the
 * caller re-warms; results are never wrong, only slower.
 */

#ifndef CATCHSIM_SIM_WARM_STATE_HH_
#define CATCHSIM_SIM_WARM_STATE_HH_

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/error.hh"
#include "common/fault_inject.hh"
#include "common/sim_config.hh"

namespace catchsim
{

/** Bump whenever any component's saveWarmState encoding changes. */
constexpr uint32_t kWarmStateFormatVersion = 1;

/**
 * Identity of one warmed-state snapshot. Two runs with equal keys are
 * guaranteed (by construction of warmConfigDigest and the trace
 * determinism contract) to derive bitwise-identical warmed state.
 */
struct WarmStateKey
{
    std::string kernel;        ///< workload name
    uint64_t seed = 0;         ///< workload seed
    uint64_t boundaryOps = 0;  ///< trace position of the snapshot
    uint64_t totalOps = 0;     ///< stream total (final-chunk clamp)
    uint64_t chunkOps = 0;     ///< stream chunk size (ring layout)
    uint64_t configDigest = 0; ///< warmConfigDigest(cfg)

    bool
    operator==(const WarmStateKey &o) const
    {
        return kernel == o.kernel && seed == o.seed &&
               boundaryOps == o.boundaryOps && totalOps == o.totalOps &&
               chunkOps == o.chunkOps && configDigest == o.configDigest;
    }
};

/**
 * FNV-1a digest of every SimConfig knob that can influence warmed
 * state. Pure timing knobs are excluded on purpose — see the file
 * comment for the argument and the static check that guards it.
 */
uint64_t warmConfigDigest(const SimConfig &cfg);

/**
 * Two-tier (memory LRU + optional disk) store of warmed-state blobs.
 * Thread-safe; blobs are immutable once published.
 */
class WarmStateStore
{
  public:
    using BlobPtr = std::shared_ptr<const std::string>;

    struct Config
    {
        /** In-memory budget; snapshots are page-map heavy (~100s of KB
         *  to a few MB each), so the default holds a whole suite. */
        size_t memBudgetBytes = size_t(128) << 20;

        /** Disk tier directory; empty disables the disk tier. */
        std::string diskDir;

        /** Fault-injection plan (target "warm-state-store", kind
         *  state-corrupt); null disables injection. */
        const FaultPlan *plan = nullptr;
    };

    struct Stats
    {
        uint64_t hits = 0;      ///< find() served (memory or disk)
        uint64_t misses = 0;    ///< find() empty-handed — caller warms
        uint64_t diskHits = 0;  ///< subset of hits read from disk
        uint64_t evictions = 0; ///< memory-tier LRU evictions
        uint64_t corrupt = 0;   ///< disk records dropped as corrupt
        uint64_t puts = 0;      ///< new blobs published
    };

    WarmStateStore();
    explicit WarmStateStore(Config cfg);
    ~WarmStateStore();

    WarmStateStore(const WarmStateStore &) = delete;
    WarmStateStore &operator=(const WarmStateStore &) = delete;

    /**
     * Looks @p key up in memory, then on disk. A corrupt disk record is
     * deleted and counted, and the call reports a miss. @returns null
     * on a miss — the caller warms functionally and put()s the result.
     */
    BlobPtr find(const WarmStateKey &key);

    /**
     * Publishes @p blob under @p key and writes it to the disk tier.
     * First writer wins: every writer of a given key derived identical
     * bytes, so a racing publication keeps the resident copy.
     */
    BlobPtr put(const WarmStateKey &key, std::string blob);

    /**
     * Drops @p key from both tiers. The simulator calls this when a
     * restored blob fails component-level validation (a format bug the
     * checksum cannot catch): the retry re-warms and republishes.
     */
    void remove(const WarmStateKey &key);

    Stats stats() const;
    size_t residentBytes() const;

    /**
     * Reads and fully validates @p key's disk record: size bound,
     * whole-record checksum, magic, version, key echo, payload-length
     * consistency — in that order, so a bad byte is never trusted.
     * Exposed for the disk-tier taxonomy tests; find() is the
     * production path.
     */
    Expected<BlobPtr> loadDiskChecked(const WarmStateKey &key);

    /** The record path @p key maps to (test + tooling visibility). */
    std::string diskPath(const WarmStateKey &key) const;

    /** Effective disk dir; empty when disabled (also after a failed
     *  create — the store degrades to the memory tier). */
    const std::string &diskDir() const { return cfg_.diskDir; }

    /**
     * The process-wide store, or null when disabled. Enabled by
     * CATCH_WARM_STATE=1 (memory tier) or a non-empty
     * CATCH_WARM_STATE_CACHE directory (memory + disk tier);
     * CATCH_WARM_STATE_MB overrides the memory budget (default 128).
     * First call reads the environment (env.hh contract).
     */
    static WarmStateStore *global();

  private:
    struct Entry
    {
        std::string mapKey;
        BlobPtr blob;
        size_t bytes = 0;
    };

    static std::string mapKey(const WarmStateKey &key);
    Expected<void> writeDisk(const WarmStateKey &key,
                             const std::string &blob);
    void evictOverBudgetLocked();

    Config cfg_;

    mutable std::mutex mu_;
    std::list<Entry> lru_; ///< front = most recent
    std::unordered_map<std::string, std::list<Entry>::iterator> map_;
    size_t residentBytes_ = 0;
    Stats stats_;
    std::atomic<uint64_t> tmpSerial_{0};
};

} // namespace catchsim

#endif // CATCHSIM_SIM_WARM_STATE_HH_
