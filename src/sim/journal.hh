/**
 * @file
 * Journaled checkpoint/resume for suite campaigns.
 *
 * A campaign run with --journal <dir> (CATCH_JOURNAL) appends one JSON
 * line per finished run to <dir>/journal.jsonl as workers complete.
 * Re-running the same campaign against the same directory replays the
 * journaled successful results without re-executing them — only failed,
 * timed-out and never-started runs execute again. Failure records are
 * journaled too (for post-mortems) but never satisfy a resume lookup.
 *
 * Records are keyed on (config, workload, instrs, warmup); the replayed
 * SimResult round-trips bitwise (see common/json.hh), so a resumed
 * campaign's outputs are identical to an uninterrupted one. A half-
 * written last line — the normal residue of a killed process — fails to
 * parse and is skipped with a warning, never corrupting the resume.
 */

#ifndef CATCHSIM_SIM_JOURNAL_HH_
#define CATCHSIM_SIM_JOURNAL_HH_

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.hh"
#include "sim/parallel_runner.hh"

namespace catchsim
{

class SuiteJournal
{
  public:
    ~SuiteJournal();
    SuiteJournal(const SuiteJournal &) = delete;
    SuiteJournal &operator=(const SuiteJournal &) = delete;

    /**
     * Creates @p dir if needed, loads any resumable records from
     * <dir>/journal.jsonl, and opens it for appending. An unwritable
     * directory is a config SimError.
     */
    static Expected<std::unique_ptr<SuiteJournal>>
    open(const std::string &dir);

    const std::string &path() const { return path_; }

    /** Successful records loaded at open (candidates for replay). */
    size_t resumableCount() const { return entries_.size(); }

    /**
     * The journaled successful result of an identical earlier run, or
     * nullptr. Called during campaign planning (single-threaded); the
     * loaded set is immutable after open(). @p status (optional)
     * receives the journaled Ok/Retried status.
     */
    const SimResult *find(const std::string &config,
                          const std::string &workload, uint64_t instrs,
                          uint64_t warmup,
                          RunStatus *status = nullptr) const;

    /**
     * Appends one finished outcome as a single flushed JSON line.
     * Thread-safe; journal write errors warn but never fail the run
     * they record.
     */
    void append(const RunOutcome &out, uint64_t instrs, uint64_t warmup);

  private:
    SuiteJournal() = default;

    struct Entry
    {
        std::string config;
        std::string workload;
        uint64_t instrs = 0;
        uint64_t warmup = 0;
        RunStatus status = RunStatus::Ok;
        SimResult result;
    };

    /** Parses one journal line; nullopt (with a warning) on defects. */
    static std::optional<Entry> parseRecord(const std::string &line,
                                            const std::string &path,
                                            size_t lineno);

    std::string path_;
    std::FILE *file_ = nullptr;
    std::mutex mu_; ///< serialises appends; entries_ is open()-frozen
    std::vector<Entry> entries_;
};

} // namespace catchsim

#endif // CATCHSIM_SIM_JOURNAL_HH_
