#include "sim/experiment.hh"

#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"
#include "common/stats.hh"
#include "trace/suite.hh"

namespace catchsim
{

ExperimentEnv
ExperimentEnv::fromEnvironment()
{
    ExperimentEnv env;
    const char *full = std::getenv("CATCH_FULL");
    env.names = (full && full[0] == '1') ? stSuiteNames() : stQuickNames();
    const char *instr = std::getenv("CATCH_INSTR");
    env.instrs = instr ? std::strtoull(instr, nullptr, 10) : 300000;
    const char *warm = std::getenv("CATCH_WARMUP");
    env.warmup = warm ? std::strtoull(warm, nullptr, 10) : 100000;
    return env;
}

std::vector<SimResult>
runSuite(const SimConfig &cfg, const ExperimentEnv &env)
{
    std::vector<SimResult> results;
    std::fprintf(stderr, "[%s] ", cfg.name.c_str());
    for (const auto &name : env.names) {
        results.push_back(runWorkload(cfg, name, env.instrs, env.warmup));
        std::fprintf(stderr, ".");
        std::fflush(stderr);
    }
    std::fprintf(stderr, "\n");
    return results;
}

std::vector<std::pair<std::string, double>>
categoryGeomeans(const std::vector<SimResult> &base,
                 const std::vector<SimResult> &test)
{
    CATCHSIM_ASSERT(base.size() == test.size(),
                    "mismatched suites in categoryGeomeans");
    std::map<Category, std::vector<double>> buckets;
    std::vector<double> all;
    for (size_t i = 0; i < base.size(); ++i) {
        CATCHSIM_ASSERT(base[i].workload == test[i].workload,
                        "suite ordering mismatch");
        double speedup = test[i].ipc / base[i].ipc;
        buckets[base[i].category].push_back(speedup);
        all.push_back(speedup);
    }
    std::vector<std::pair<std::string, double>> out;
    const Category order[] = {Category::Client, Category::Fspec,
                              Category::Hpc, Category::Ispec,
                              Category::Server};
    for (Category c : order)
        if (buckets.count(c))
            out.emplace_back(categoryName(c), geomean(buckets[c]));
    out.emplace_back("GeoMean", geomean(all));
    return out;
}

double
overallGeomean(const std::vector<SimResult> &base,
               const std::vector<SimResult> &test)
{
    auto rows = categoryGeomeans(base, test);
    return rows.back().second;
}

} // namespace catchsim
