#include "sim/experiment.hh"

#include <cctype>
#include <cstdio>
#include <map>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/stats.hh"
#include "sim/journal.hh"
#include "sim/parallel_runner.hh"
#include "sim/result_store.hh"
#include "sim/supervisor.hh"
#include "trace/suite.hh"

namespace catchsim
{

ExperimentEnv
ExperimentEnv::fromEnvironment()
{
    ExperimentEnv env;
    env.names = envFlag("CATCH_FULL") ? stSuiteNames() : stQuickNames();
    env.instrs = envU64("CATCH_INSTR", 300000);
    env.warmup = envU64("CATCH_WARMUP", 100000);
    env.jobs = suiteJobs();
    env.jsonDir = envString("CATCH_JSON");
    env.journalDir = envString("CATCH_JOURNAL");
    env.resultStoreDir = envString("CATCH_RESULT_STORE");
    env.isolate = envFlag("CATCH_ISOLATE");
    env.isolation = IsolationOptions::fromEnvironment();
    return env;
}

namespace
{

/**
 * <jsonDir>/<config-name>.json, with filesystem-hostile characters
 * flattened and a numeric suffix when a bench reuses a config name.
 * Bench mains are single-threaded, so a plain static map suffices.
 */
std::string
jsonExportPath(const std::string &dir, const std::string &cfg_name)
{
    std::string stem;
    for (char c : cfg_name)
        stem += (isalnum(static_cast<unsigned char>(c)) || c == '-' ||
                 c == '.' || c == '_')
                    ? c
                    : '_';
    static std::map<std::string, int> uses;
    int n = ++uses[stem];
    if (n > 1)
        stem += "-" + std::to_string(n);
    return dir + "/" + stem + ".json";
}

} // namespace

std::vector<RunOutcome>
runSuiteIsolated(const SimConfig &cfg, const ExperimentEnv &env)
{
    IsolationOptions opts = env.isolation;
    std::unique_ptr<SuiteJournal> journal;
    if (!env.journalDir.empty()) {
        auto j = SuiteJournal::open(env.journalDir);
        if (j.ok()) {
            journal = std::move(j).value();
            opts.journal = journal.get();
        } else {
            warn("journal disabled: ", j.error().message);
        }
    }
    std::unique_ptr<ResultStore> store;
    if (!env.resultStoreDir.empty()) {
        auto s = ResultStore::open(env.resultStoreDir);
        if (s.ok()) {
            store = std::move(s).value();
            opts.resultStore = store.get();
        } else {
            warn("result store disabled: ", s.error().message);
        }
    }

    std::fprintf(stderr, "[%s] ", cfg.name.c_str());
    auto progress = [](const RunOutcome &o) {
        char mark = '.';
        if (o.resumed)
            mark = 's';
        else if (o.fromStore)
            mark = 'h';
        else if (o.status == RunStatus::Retried)
            mark = 'r';
        else if (o.status == RunStatus::Failed)
            mark = 'F';
        else if (o.status == RunStatus::TimedOut)
            mark = 'T';
        else if (o.status == RunStatus::Crashed)
            mark = 'C';
        std::fprintf(stderr, "%c", mark);
        std::fflush(stderr);
    };
    auto outcomes =
        env.isolate
            ? runWorkloadsSupervised(cfg, env.names, env.instrs,
                                     env.warmup, env.jobs, opts,
                                     progress)
            : runWorkloadsIsolated(cfg, env.names, env.instrs,
                                   env.warmup, env.jobs, opts,
                                   progress);
    std::fprintf(stderr, "\n");

    CampaignSummary sum = summarizeOutcomes(outcomes);
    if (!sum.allOk() || sum.retried || sum.resumed || sum.storeHits)
        inform("campaign '", cfg.name, "': ", sum.ok, " ok, ",
               sum.retried, " retried, ", sum.failed, " failed, ",
               sum.timedOut, " timed out, ", sum.crashed, " crashed, ",
               sum.resumed, " resumed, ", sum.storeHits,
               " store hit(s), ", sum.storeMisses, " store miss(es)");
    for (const auto &o : outcomes)
        if (!o.ok())
            warn("run '", o.workload, "' on '", o.config, "' ",
                 runStatusName(o.status), " after ", o.attempts,
                 " attempt(s) (",
                 errorCategoryName(o.failure->error.category), "): ",
                 o.failure->error.message);

    if (!env.jsonDir.empty()) {
        std::string path = jsonExportPath(env.jsonDir, cfg.name);
        auto written = writeSuiteJson(path, cfg, env, outcomes);
        if (!written.ok())
            warn("failed to write suite JSON to ", path, ": ",
                 written.error().message);
    }
    return outcomes;
}

std::vector<SimResult>
runSuite(const SimConfig &cfg, const ExperimentEnv &env)
{
    auto outcomes = runSuiteIsolated(cfg, env);
    std::vector<SimResult> results(outcomes.size());
    for (size_t i = 0; i < outcomes.size(); ++i) {
        if (outcomes[i].ok()) {
            results[i] = std::move(outcomes[i].result);
        } else {
            // runSuiteIsolated already warned with the full error.
            results[i].workload = outcomes[i].workload;
            results[i].config = outcomes[i].config;
        }
    }
    return results;
}

std::vector<std::pair<std::string, double>>
categoryGeomeans(const std::vector<SimResult> &base,
                 const std::vector<SimResult> &test)
{
    CATCHSIM_ASSERT(base.size() == test.size(),
                    "mismatched suites in categoryGeomeans");
    std::map<Category, std::vector<double>> buckets;
    std::vector<double> all;
    for (size_t i = 0; i < base.size(); ++i) {
        CATCHSIM_ASSERT(base[i].workload == test[i].workload,
                        "suite ordering mismatch");
        double speedup = test[i].ipc / base[i].ipc;
        buckets[base[i].category].push_back(speedup);
        all.push_back(speedup);
    }
    std::vector<std::pair<std::string, double>> out;
    const Category order[] = {Category::Client, Category::Fspec,
                              Category::Hpc, Category::Ispec,
                              Category::Server};
    for (Category c : order)
        if (buckets.contains(c))
            out.emplace_back(categoryName(c), geomean(buckets[c]));
    out.emplace_back("GeoMean", geomean(all));
    return out;
}

double
overallGeomean(const std::vector<SimResult> &base,
               const std::vector<SimResult> &test)
{
    auto rows = categoryGeomeans(base, test);
    return rows.back().second;
}

} // namespace catchsim
