#include "sim/result_store.hh"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/json.hh"
#include "common/logging.hh"
#include "trace/trace_io.hh"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

namespace catchsim
{

namespace
{

void
hashU64(uint64_t v, uint64_t &h)
{
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<unsigned char>(v >> (8 * i));
    h = fnv1a(bytes, sizeof(bytes), h);
}

std::string
hex16(uint64_t v)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
    return buf;
}

} // namespace

uint64_t
RunKey::hash() const
{
    uint64_t h = fnv1a(workload.data(), workload.size());
    hashU64(workloadSeed, h);
    hashU64(configDigest, h);
    hashU64(instrs, h);
    hashU64(warmup, h);
    hashU64(kTraceFormatVersion, h);
    return h;
}

ResultStore::~ResultStore()
{
    if (lockFd_ >= 0)
        ::close(lockFd_); // releases the flock
}

Expected<std::unique_ptr<ResultStore>>
ResultStore::open(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        return simError(ErrorCategory::Config, "cannot create result-"
                        "store directory '", dir, "': ", ec.message());

    // make_unique cannot reach the private ctor.
    std::unique_ptr<ResultStore> s(new ResultStore); // catch-lint: allow(raw-new-delete)
    s->dir_ = dir;

    std::string lock_path = dir + "/lock";
    s->lockFd_ = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC,
                        0644);
    if (s->lockFd_ < 0)
        return simError(ErrorCategory::Config, "cannot open result-"
                        "store lock '", lock_path, "' (errno ", errno,
                        ")");
    if (::flock(s->lockFd_, LOCK_EX | LOCK_NB) != 0)
        return simError(ErrorCategory::Config, "result store '", dir,
                        "' is locked by another campaign");
    return s;
}

std::string
ResultStore::pathFor(const RunKey &key) const
{
    return dir_ + "/" + hex16(key.hash()) + ".json";
}

std::optional<RunOutcome>
ResultStore::find(const RunKey &key)
{
    const std::string path = pathFor(key);
    auto miss = [&](const char *why) -> std::optional<RunOutcome> {
        if (why) {
            warn("result store '", path, "': ", why,
                 "; deleting the record");
            std::remove(path.c_str());
        }
        std::lock_guard<std::mutex> guard(mu_);
        ++misses_;
        return std::nullopt;
    };

    std::ifstream in(path);
    if (!in.is_open())
        return miss(nullptr); // plain absence: the common cold miss
    std::string record, checksum;
    if (!std::getline(in, record) || !std::getline(in, checksum))
        return miss("truncated record");
    if (checksum != hex16(fnv1a(record.data(), record.size())))
        return miss("checksum mismatch (torn write or bit flip?)");

    auto parsed = parseJson(record);
    if (!parsed.ok())
        return miss("unparsable record");
    const JsonValue &v = parsed.value();
    const JsonValue *workload = v.member("workload");
    const JsonValue *seed = v.member("workload_seed");
    const JsonValue *digest = v.member("config_digest");
    const JsonValue *instrs = v.member("instrs");
    const JsonValue *warmup = v.member("warmup");
    const JsonValue *status = v.member("status");
    const JsonValue *attempts = v.member("attempts");
    const JsonValue *result = v.member("result");
    if (!workload || !seed || !digest || !instrs || !warmup ||
        !status || !attempts || !result)
        return miss("record with missing keys");
    // Hash-collision / stale-rename guard: the record must describe
    // exactly the key that was asked for.
    if (workload->asString() != key.workload ||
        seed->asU64() != key.workloadSeed ||
        digest->asU64() != key.configDigest ||
        instrs->asU64() != key.instrs || warmup->asU64() != key.warmup)
        return miss("record for a different key (hash collision?)");
    auto st = runStatusFromName(status->asString());
    if (!st || (*st != RunStatus::Ok && *st != RunStatus::Retried))
        return miss("record with a non-success status");
    auto sim = SimResult::fromJson(*result);
    if (!sim.ok())
        return miss("record with a corrupt result payload");

    RunOutcome out;
    out.workload = key.workload;
    out.status = *st;
    out.attempts = static_cast<unsigned>(
        std::max<uint64_t>(1, attempts->asU64()));
    out.fromStore = true;
    out.result = std::move(sim).value();
    std::lock_guard<std::mutex> guard(mu_);
    ++hits_;
    return out;
}

void
ResultStore::put(const RunKey &key, const RunOutcome &out)
{
    CATCHSIM_ASSERT(out.ok(), "only successful outcomes are stored");
    JsonWriter w;
    w.open();
    w.field("workload", key.workload);
    w.field("workload_seed", key.workloadSeed);
    w.field("config_digest", key.configDigest);
    w.field("instrs", key.instrs);
    w.field("warmup", key.warmup);
    w.field("status", std::string(runStatusName(out.status)));
    w.field("attempts", uint64_t(out.attempts));
    w.rawField("result", out.result.toJson());
    w.close();

    const std::string &record = w.str();
    std::string body = record + "\n" +
                       hex16(fnv1a(record.data(), record.size())) + "\n";

    uint64_t serial;
    {
        std::lock_guard<std::mutex> guard(mu_);
        serial = ++tmpSerial_;
    }
    const std::string path = pathFor(key);
    // Unique tmp per write: concurrent puts (pool threads in-process,
    // or a supervisor racing nobody but itself across campaigns) never
    // scribble on each other; rename() is the atomic commit.
    const std::string tmp =
        path + ".tmp." + std::to_string(serial) + "." +
        std::to_string(static_cast<uint64_t>(::getpid()));
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f) {
        warn("result store: cannot open '", tmp, "' for writing; "
             "record for '", key.workload, "' not persisted");
        return;
    }
    size_t n = std::fwrite(body.data(), 1, body.size(), f);
    bool bad = n != body.size() || std::ferror(f) != 0;
    if (std::fclose(f) != 0)
        bad = true;
    if (bad || std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        warn("result store: failed writing '", path, "'; record for '",
             key.workload, "' not persisted");
    }
}

uint64_t
ResultStore::hits() const
{
    std::lock_guard<std::mutex> guard(mu_);
    return hits_;
}

uint64_t
ResultStore::misses() const
{
    std::lock_guard<std::mutex> guard(mu_);
    return misses_;
}

} // namespace catchsim
