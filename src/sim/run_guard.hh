/**
 * @file
 * Watchdog budgets for individual simulation runs.
 *
 * A hung run (a core that steps forever without retiring, a kernel
 * whose trace livelocks) must degrade a campaign, not park it. Every
 * guarded run carries a RunBudget; the Watchdog converts overruns into
 * budget-exceeded SimErrors that the isolation layer records as
 * timed-out RunFailures. Both limits are expressed in *simulated*
 * cycles, so tripping (or not) is bitwise-deterministic — the same run
 * times out identically on any machine at any job count, and no
 * wall-clock value ever enters a result.
 *
 * Environment knobs (read via the env.hh gateway at startup):
 *   CATCH_MAX_CYCLES    simulated-cycle ceiling per run (0 = unlimited;
 *                       default 0)
 *   CATCH_STALL_WINDOW  max simulated cycles without a retired
 *                       instruction before a run counts as hung
 *                       (0 = off; default 20000000)
 */

#ifndef CATCHSIM_SIM_RUN_GUARD_HH_
#define CATCHSIM_SIM_RUN_GUARD_HH_

#include <cstdint>
#include <optional>

#include "common/env.hh"
#include "common/error.hh"

namespace catchsim
{

/** Per-run simulated-time limits; zero disables a limit. */
struct RunBudget
{
    static constexpr uint64_t kDefaultStallWindow = 20'000'000;

    /** Total simulated-cycle ceiling; 0 = unlimited. */
    uint64_t maxCycles = 0;
    /** Cycles without a retired instruction before tripping; 0 = off. */
    uint64_t stallWindowCycles = kDefaultStallWindow;

    bool limited() const { return maxCycles || stallWindowCycles; }

    /** No limits at all (the legacy unguarded behaviour). */
    static RunBudget
    unlimited()
    {
        return RunBudget{0, 0};
    }

    static RunBudget
    fromEnvironment()
    {
        RunBudget b;
        b.maxCycles = envU64("CATCH_MAX_CYCLES", 0);
        b.stallWindowCycles =
            envU64("CATCH_STALL_WINDOW", kDefaultStallWindow);
        return b;
    }
};

/**
 * Tracks one run against its budget. poll() is called from the
 * simulation loop with the current simulated cycle and retired
 * instruction count; it returns a budget-exceeded SimError exactly
 * when a limit is crossed. Pure bookkeeping: polling never perturbs
 * simulation state, so guarded and unguarded runs produce bitwise-
 * identical results.
 */
class Watchdog
{
  public:
    explicit Watchdog(const RunBudget &budget) : budget_(budget) {}

    std::optional<SimError>
    poll(uint64_t cycle, uint64_t instrs)
    {
        if (instrs != lastInstrs_) {
            lastInstrs_ = instrs;
            lastProgressCycle_ = cycle;
        }
        if (budget_.maxCycles && cycle > budget_.maxCycles) {
            return simError(ErrorCategory::BudgetExceeded,
                            "run exceeded its simulated-cycle ceiling (",
                            cycle, " > ", budget_.maxCycles, " cycles)");
        }
        if (budget_.stallWindowCycles &&
            cycle - lastProgressCycle_ > budget_.stallWindowCycles) {
            return simError(ErrorCategory::BudgetExceeded,
                            "no instruction retired for ",
                            cycle - lastProgressCycle_,
                            " simulated cycles (stall window ",
                            budget_.stallWindowCycles, ")");
        }
        return std::nullopt;
    }

  private:
    RunBudget budget_;
    uint64_t lastInstrs_ = 0;
    uint64_t lastProgressCycle_ = 0;
};

} // namespace catchsim

#endif // CATCHSIM_SIM_RUN_GUARD_HH_
