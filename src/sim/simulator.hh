/**
 * @file
 * Single-thread simulator: wires a workload trace, one OooCore, the
 * cache hierarchy, the criticality detector and TACT together, runs a
 * warmup window, and collects every statistic the benches report.
 */

#ifndef CATCHSIM_SIM_SIMULATOR_HH_
#define CATCHSIM_SIM_SIMULATOR_HH_

#include <memory>
#include <string>

#include "cache/hierarchy.hh"
#include "common/sim_config.hh"
#include "core/ooo_core.hh"
#include "criticality/ddg.hh"
#include "power/power_model.hh"
#include "tact/tact.hh"
#include "trace/workload.hh"

namespace catchsim
{

/** Everything a bench might want from one run. */
struct SimResult
{
    std::string workload;
    std::string config;
    Category category = Category::Ispec;

    CoreStats core;
    double ipc = 0;

    HierarchyStats hier;
    CacheStats l1d;
    CacheStats l1i;
    CacheStats l2;
    bool hasL2 = false;
    CacheStats llc;
    DramStats dram;
    FrontendStats frontend;

    DdgStats ddg;
    CriticalTableStats criticalTable;
    uint32_t activeCriticalPcs = 0;
    TactStats tact;

    /** Fig 11: fraction of useful TACT prefetches saving >= 80% of the
     *  LLC latency, and the fraction saving >= 10%. */
    double timelinessAtLeast80 = 0;
    double timelinessAtLeast10 = 0;
    /** Fig 11: fraction of TACT prefetches served by the LLC. */
    double tactFromLlcFraction = 0;

    EnergyBreakdown energy;

    /** Machine-readable form of every counter above (one JSON object). */
    std::string toJson() const;
};

/** Runs one workload on one machine configuration. */
class Simulator
{
  public:
    explicit Simulator(const SimConfig &cfg);

    /**
     * @param instrs measured instructions
     * @param warmup instructions run before stats reset
     */
    SimResult run(Workload &workload, uint64_t instrs, uint64_t warmup);

  private:
    SimConfig cfg_;
};

/** Convenience: build + run in one call. */
SimResult runWorkload(const SimConfig &cfg, const std::string &name,
                      uint64_t instrs, uint64_t warmup);

} // namespace catchsim

#endif // CATCHSIM_SIM_SIMULATOR_HH_
