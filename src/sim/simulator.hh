/**
 * @file
 * Single-thread simulator: wires a workload trace, one OooCore, the
 * cache hierarchy, the criticality detector and TACT together, runs a
 * warmup window, and collects every statistic the benches report.
 */

#ifndef CATCHSIM_SIM_SIMULATOR_HH_
#define CATCHSIM_SIM_SIMULATOR_HH_

#include <memory>
#include <string>

#include "cache/hierarchy.hh"
#include "common/error.hh"
#include "common/fault_inject.hh"
#include "common/sim_config.hh"
#include "core/ooo_core.hh"
#include "criticality/ddg.hh"
#include "power/power_model.hh"
#include "sim/run_guard.hh"
#include "sim/warm_state.hh"
#include "tact/tact.hh"
#include "trace/chunk_store.hh"
#include "trace/workload.hh"

namespace catchsim
{

class JsonValue;

/**
 * Per-window aggregation of a sampled run (SampleMode::Sampled). The
 * variance/min/max over window IPCs quantify how much confidence the
 * sample schedule earned — a high variance says the workload's phases
 * need a shorter interval (more windows) before the mean is trustworthy.
 */
struct SampleStats
{
    uint64_t windows = 0;      ///< measured detailed windows recorded
    uint64_t warmedInstrs = 0; ///< instrs processed by functional warming
    double ipcMean = 0;        ///< arithmetic mean of per-window IPCs
                               ///< (SimResult::ipc uses the unbiased
                               ///< ratio estimator instead)
    double ipcVariance = 0;    ///< population variance over window IPCs
    double ipcMin = 0;
    double ipcMax = 0;
};

/** Everything a bench might want from one run. */
struct SimResult
{
    std::string workload;
    std::string config;
    Category category = Category::Ispec;

    CoreStats core;
    double ipc = 0;

    HierarchyStats hier;
    CacheStats l1d;
    CacheStats l1i;
    CacheStats l2;
    bool hasL2 = false;
    CacheStats llc;
    DramStats dram;
    FrontendStats frontend;

    DdgStats ddg;
    CriticalTableStats criticalTable;
    uint32_t activeCriticalPcs = 0;
    TactStats tact;

    /** Fig 11: fraction of useful TACT prefetches saving >= 80% of the
     *  LLC latency, and the fraction saving >= 10%. */
    double timelinessAtLeast80 = 0;
    double timelinessAtLeast10 = 0;
    /** Fig 11: fraction of TACT prefetches served by the LLC. */
    double tactFromLlcFraction = 0;

    EnergyBreakdown energy;

    /** Set iff the run used SampleMode::Sampled; detailed-mode results
     *  carry neither the flag nor a "sampling" JSON object, keeping
     *  their export byte-identical to pre-sampling trees. */
    bool sampled = false;
    SampleStats sample;

    /** Machine-readable form of every counter above (one JSON object). */
    std::string toJson() const;

    /**
     * Parses a toJson() document back into a SimResult. Counters round
     * trip bitwise (exact u64, %.17g doubles), so a journal-replayed
     * result compares identical to the original. Malformed or
     * wrong-shape input returns a trace-corrupt SimError.
     */
    static Expected<SimResult> fromJson(const std::string &json);
    static Expected<SimResult> fromJson(const JsonValue &v);
};

/**
 * How the simulator obtains its instruction trace.
 *
 * Streamed is the default: the workload generates chunk-sized batches
 * just ahead of the core (O(chunk) memory). Materialized generates the
 * whole trace up front (O(instrs) memory) and exists as the oracle the
 * determinism tests compare against — both modes produce bitwise
 * identical SimResults.
 */
enum class TraceMode : uint8_t
{
    Streamed,
    Materialized,
};

/**
 * Host-side phase timings and memory footprint for one run. Pure
 * host-profiling output (--profile, the perf bench): wall-clock values
 * never feed back into SimResult, which stays deterministic.
 *
 * In streamed mode trace generation is interleaved with simulation, so
 * traceGenSec overlaps warmupSec/measuredSec instead of preceding them;
 * in materialized mode the phases are disjoint.
 */
struct RunProfile
{
    double traceGenSec = 0;
    double warmupSec = 0;
    double measuredSec = 0;
    uint64_t peakRssBytes = 0;
    /** Chunk refills served by / missed in the chunk store for THIS
     *  run (zero when no store is attached). Per-run, never cumulative
     *  across a campaign, so store hit-rate is attributable per cell. */
    uint64_t storeHitChunks = 0;
    uint64_t storeMissChunks = 0;
    /** Warmed-state snapshot traffic for THIS run (zero when no
     *  warm-state store is attached or the run is ineligible — not
     *  sampled, not stream+chunk-store backed, or zero warmup). A hit
     *  skipped the global functional warmup; a miss warmed and
     *  published. Bytes counts the resident size (blob + page image)
     *  restored or published. */
    uint64_t warmStateHits = 0;
    uint64_t warmStateMisses = 0;
    uint64_t warmStateBytes = 0;
    /** Same attribution for the window-boundary (inter-sample) keys —
     *  the phase-2 consults, separate from the global-warmup counters
     *  above so a campaign's hit-rate report can tell the two regimes
     *  apart. Zero when the store's per-window mode is off. */
    uint64_t warmStateWindowHits = 0;
    uint64_t warmStateWindowMisses = 0;
    uint64_t warmStateWindowBytes = 0;
};

/** Runs one workload on one machine configuration. */
class Simulator
{
  public:
    /**
     * @param store memoized chunk store feeding streamed-mode refills;
     *        defaults to the process-wide store (null unless enabled
     *        via CATCH_TRACE_STORE / CATCH_TRACE_CACHE). Results are
     *        bitwise-identical with or without one.
     * @param warm_store memoized warmed-state snapshots: sampled runs
     *        with a chunk store restore the global-warmup state — and,
     *        in the store's per-window mode, every inter-sample warming
     *        gap — instead of re-deriving them functionally. Defaults
     *        to the process-wide store (null unless enabled via
     *        CATCH_WARM_STATE / CATCH_WARM_STATE_CACHE). Results are
     *        bitwise-identical with or without one.
     */
    explicit Simulator(const SimConfig &cfg,
                       TraceMode mode = TraceMode::Streamed,
                       ChunkStore *store = ChunkStore::global(),
                       WarmStateStore *warm_store = WarmStateStore::global());

    /**
     * @param instrs measured instructions
     * @param warmup instructions run before stats reset
     */
    SimResult run(Workload &workload, uint64_t instrs, uint64_t warmup);

    /**
     * Like run(), but polices @p budget with a Watchdog: a run that
     * overruns its cycle ceiling or stalls past the no-retire window
     * returns budget-exceeded instead of spinning forever. Successful
     * guarded runs are bitwise-identical to unguarded ones (the
     * watchdog only observes).
     * @param profile when non-null, filled with host phase timings and
     *        peak RSS; the simulated result is unaffected.
     */
    Expected<SimResult> runGuarded(Workload &workload, uint64_t instrs,
                                   uint64_t warmup,
                                   const RunBudget &budget,
                                   RunProfile *profile = nullptr);

  private:
    SimConfig cfg_;
    TraceMode mode_;
    ChunkStore *store_;
    WarmStateStore *warmStore_;
};

/** Convenience: build + run in one call. */
SimResult runWorkload(const SimConfig &cfg, const std::string &name,
                      uint64_t instrs, uint64_t warmup);

/**
 * Fault-contained single run: validates the config, resolves @p name
 * recoverably, applies any faults @p plan injects for (@p name,
 * @p attempt) — trace corruption, transient IO errors, an injected
 * hang driven through the real watchdog — and polices @p budget.
 * Worker exceptions (including injected ones) are NOT caught here;
 * the per-slot isolation in runWorkloadsIsolated converts them into
 * internal RunFailures.
 */
Expected<SimResult> runWorkloadGuarded(const SimConfig &cfg,
                                       const std::string &name,
                                       uint64_t instrs, uint64_t warmup,
                                       const RunBudget &budget,
                                       const FaultPlan &plan,
                                       unsigned attempt = 1,
                                       RunProfile *profile = nullptr,
                                       ChunkStore *store =
                                           ChunkStore::global(),
                                       WarmStateStore *warm_store =
                                           WarmStateStore::global());

} // namespace catchsim

#endif // CATCHSIM_SIM_SIMULATOR_HH_
