#include "sim/journal.hh"

#include <filesystem>
#include <fstream>

#include "common/json.hh"
#include "common/logging.hh"

#include <sys/file.h>

namespace catchsim
{

SuiteJournal::~SuiteJournal()
{
    if (file_)
        std::fclose(file_);
}

Expected<std::unique_ptr<SuiteJournal>>
SuiteJournal::open(const std::string &dir)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        return simError(ErrorCategory::Config, "cannot create journal "
                        "directory '", dir, "': ", ec.message());
    }

    // make_unique cannot reach the private ctor.
    std::unique_ptr<SuiteJournal> j(new SuiteJournal); // catch-lint: allow(raw-new-delete)
    j->path_ = dir + "/journal.jsonl";

    // Load whatever a previous campaign left behind. A truncated last
    // line (killed process) fails to parse and is skipped.
    std::ifstream in(j->path_);
    if (in.is_open()) {
        std::string line;
        size_t lineno = 0;
        while (std::getline(in, line)) {
            ++lineno;
            if (line.empty())
                continue;
            if (auto e = parseRecord(line, j->path_, lineno))
                j->entries_.push_back(std::move(*e));
        }
    }

    j->file_ = std::fopen(j->path_.c_str(), "a");
    if (!j->file_) {
        return simError(ErrorCategory::Config, "cannot open journal '",
                        j->path_, "' for appending");
    }
    // Two campaigns appending to one journal would interleave records
    // and corrupt each other's resume sets; fail the second fast. The
    // lock lives for the FILE's lifetime (fclose releases it).
    if (::flock(fileno(j->file_), LOCK_EX | LOCK_NB) != 0) {
        return simError(ErrorCategory::Config, "journal '", j->path_,
                        "' is locked by another campaign");
    }
    if (!j->entries_.empty())
        inform("journal '", j->path_, "': ", j->entries_.size(),
               " finished run(s) available for resume");
    return j;
}

std::optional<SuiteJournal::Entry>
SuiteJournal::parseRecord(const std::string &line,
                          const std::string &path, size_t lineno)
{
    auto parsed = parseJson(line);
    if (!parsed.ok()) {
        warn("journal '", path, "' line ", lineno,
             ": skipping unparsable record (",
             parsed.error().message, ")");
        return std::nullopt;
    }
    const JsonValue &v = parsed.value();
    const JsonValue *config = v.member("config");
    const JsonValue *workload = v.member("workload");
    const JsonValue *instrs = v.member("instrs");
    const JsonValue *warmup = v.member("warmup");
    const JsonValue *status = v.member("status");
    if (!config || !workload || !instrs || !warmup || !status) {
        warn("journal '", path, "' line ", lineno,
             ": skipping record with missing keys");
        return std::nullopt;
    }
    auto st = runStatusFromName(status->asString());
    if (!st) {
        warn("journal '", path, "' line ", lineno,
             ": skipping record with unknown status '",
             status->asString(), "'");
        return std::nullopt;
    }
    // Failure records document history; only successes are resumable.
    if (*st != RunStatus::Ok && *st != RunStatus::Retried)
        return std::nullopt;
    const JsonValue *result = v.member("result");
    if (!result) {
        warn("journal '", path, "' line ", lineno,
             ": skipping success record without a result");
        return std::nullopt;
    }
    auto sim = SimResult::fromJson(*result);
    if (!sim.ok()) {
        warn("journal '", path, "' line ", lineno,
             ": skipping record with bad result (",
             sim.error().message, ")");
        return std::nullopt;
    }
    SuiteJournal::Entry e;
    e.config = config->asString();
    e.workload = workload->asString();
    e.instrs = instrs->asU64();
    e.warmup = warmup->asU64();
    e.status = *st;
    e.result = std::move(sim).value();
    return e;
}

const SimResult *
SuiteJournal::find(const std::string &config, const std::string &workload,
                   uint64_t instrs, uint64_t warmup,
                   RunStatus *status) const
{
    // Scan back-to-front so the newest record of a rerun wins.
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
        if (it->config == config && it->workload == workload &&
            it->instrs == instrs && it->warmup == warmup) {
            if (status)
                *status = it->status;
            return &it->result;
        }
    }
    return nullptr;
}

void
SuiteJournal::append(const RunOutcome &out, uint64_t instrs,
                     uint64_t warmup)
{
    JsonWriter w;
    w.open();
    w.field("config", out.config);
    w.field("workload", out.workload);
    w.field("instrs", instrs);
    w.field("warmup", warmup);
    w.field("status", std::string(runStatusName(out.status)));
    w.field("attempts", uint64_t(out.attempts));
    if (out.ok()) {
        w.rawField("result", out.result.toJson());
    } else {
        w.object("error");
        w.field("category",
                std::string(errorCategoryName(out.failure->error.category)));
        w.field("message", out.failure->error.message);
        w.close();
    }
    w.close();

    std::lock_guard<std::mutex> lock(mu_);
    if (std::fprintf(file_, "%s\n", w.str().c_str()) < 0 ||
        std::fflush(file_) != 0) {
        warn("journal '", path_, "': write failed; record for '",
             out.workload, "' lost");
    }
}

} // namespace catchsim
