/**
 * @file
 * Parallel suite execution with determinism guarantees.
 *
 * Every (SimConfig, workload) simulation is independent: each run owns
 * its Simulator, its trace (generated from the workload's own seed) and
 * a pre-assigned slot in the results vector, so the output is
 * bitwise-identical and order-stable for any job count. Workloads are
 * dispatched longest-estimated-first (LPT) to minimise makespan.
 *
 * The job count comes from CATCH_JOBS (default: hardware concurrency;
 * 1 restores the exact serial behaviour).
 */

#ifndef CATCHSIM_SIM_PARALLEL_RUNNER_HH_
#define CATCHSIM_SIM_PARALLEL_RUNNER_HH_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/mp_simulator.hh"
#include "sim/simulator.hh"
#include "trace/suite.hh"

namespace catchsim
{

/** CATCH_JOBS env knob; default hardware concurrency, minimum 1. */
unsigned suiteJobs();

/**
 * Relative wall-clock cost estimate for one workload run, used to order
 * dispatch longest-first. Server/HPC kernels carry large footprints
 * (trace setup + DRAM-heavy simulation) and dominate the makespan.
 */
double workloadCostEstimate(const std::string &name);

/**
 * Runs @p tasks on @p jobs threads, dispatching in descending @p cost
 * order. Each task must write only to its own pre-assigned output.
 * @p jobs <= 1 runs serially, in index order, on the calling thread.
 */
void runTasksLongestFirst(std::vector<std::function<void()>> tasks,
                          const std::vector<double> &cost, unsigned jobs);

/**
 * Parallel equivalent of the serial workload loop: results[i] is the
 * run of @p names[i], independent of @p jobs. @p progress (optional) is
 * invoked on the calling thread's behalf from workers as runs finish;
 * it must be thread-safe (the suite runners pass a stderr dot printer).
 */
std::vector<SimResult>
runWorkloadsParallel(const SimConfig &cfg,
                     const std::vector<std::string> &names,
                     uint64_t instrs, uint64_t warmup, unsigned jobs,
                     const std::function<void(const SimResult &)>
                         &progress = nullptr);

/**
 * Solo IPCs of every distinct workload appearing in @p mixes on
 * @p cfg, computed in parallel. The map replaces the serial memoised
 * SoloCache the MP benches used.
 */
std::map<std::string, double>
soloIpcsParallel(const SimConfig &cfg, const std::vector<MpMix> &mixes,
                 uint64_t instrs, uint64_t warmup, unsigned jobs);

/**
 * Runs every mix on @p cfg in parallel; results[i] corresponds to
 * mixes[i] regardless of job count. @p solo must cover every workload
 * named by @p mixes (see soloIpcsParallel).
 */
std::vector<MpResult>
runMixesParallel(const SimConfig &cfg, const std::vector<MpMix> &mixes,
                 uint64_t instrs, uint64_t warmup,
                 const std::map<std::string, double> &solo, unsigned jobs);

} // namespace catchsim

#endif // CATCHSIM_SIM_PARALLEL_RUNNER_HH_
