/**
 * @file
 * Parallel suite execution with determinism and fault-containment
 * guarantees.
 *
 * Every (SimConfig, workload) simulation is independent: each run owns
 * its Simulator, its trace (generated from the workload's own seed) and
 * a pre-assigned slot in the results vector, so the output is
 * bitwise-identical and order-stable for any job count. Workloads are
 * dispatched longest-estimated-first (LPT) to minimise makespan.
 *
 * runWorkloadsIsolated() adds per-run fault containment on top: a run
 * that fails — thrown exception, corrupt trace, config error, watchdog
 * trip — records a structured RunFailure in its own slot instead of
 * taking the campaign down, transient IO errors retry with a bounded
 * deterministic attempt count, and a SuiteJournal (when attached)
 * resumes finished runs from a previous campaign. Slots of successful
 * runs stay bitwise-identical to a fault-free campaign at any job
 * count.
 *
 * The job count comes from CATCH_JOBS (default: hardware concurrency;
 * 1 restores the exact serial behaviour).
 */

#ifndef CATCHSIM_SIM_PARALLEL_RUNNER_HH_
#define CATCHSIM_SIM_PARALLEL_RUNNER_HH_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hh"
#include "sim/mp_simulator.hh"
#include "sim/run_guard.hh"
#include "sim/simulator.hh"
#include "trace/suite.hh"

namespace catchsim
{

class SuiteJournal;
class ResultStore;

/** CATCH_JOBS env knob; default hardware concurrency, minimum 1. */
unsigned suiteJobs();

/** How one isolated run ended. */
enum class RunStatus : uint8_t
{
    Ok,       ///< succeeded on the first attempt
    Retried,  ///< succeeded after >= 1 transient-error retry
    Failed,   ///< exhausted retries or hit a non-transient error
    TimedOut, ///< watchdog budget exceeded (hang contained)
    Crashed,  ///< worker process died / hung / failed to exec
              ///< (process-isolated mode only; see sim/supervisor.hh)
};

const char *runStatusName(RunStatus s);
std::optional<RunStatus> runStatusFromName(const std::string &name);

/** Structured record of a run that did not produce a result. */
struct RunFailure
{
    SimError error;
    unsigned attempts = 1; ///< attempts consumed, including the last
};

/** One slot of an isolated campaign: a result or a contained failure. */
struct RunOutcome
{
    std::string workload;
    std::string config;
    RunStatus status = RunStatus::Ok;
    unsigned attempts = 1;
    bool resumed = false; ///< replayed from a journal, not re-executed
    /// Served from the content-hashed result store, not re-executed
    /// (sim/result_store.hh). Mutually exclusive with resumed: the
    /// journal is consulted first.
    bool fromStore = false;
    /// Executed while a result store was attached (i.e. the store was
    /// consulted and missed); feeds CampaignSummary::storeMisses.
    bool storeMiss = false;
    SimResult result;     ///< valid iff ok()
    std::optional<RunFailure> failure; ///< set iff !ok()
    /// Host phase timings + peak RSS; set iff ok() and profiling was
    /// requested (IsolationOptions::profile). Never journaled: wall
    /// clock is not reproducible, so resumed runs carry no profile.
    std::optional<RunProfile> profile;

    bool
    ok() const
    {
        return status == RunStatus::Ok || status == RunStatus::Retried;
    }
};

/** Campaign-level tallies for the summary line and the JSON export. */
struct CampaignSummary
{
    uint64_t ok = 0;
    uint64_t retried = 0;
    uint64_t failed = 0;
    uint64_t timedOut = 0;
    uint64_t crashed = 0; ///< worker processes lost (isolated mode)
    uint64_t resumed = 0; ///< subset of ok/retried replayed from journal
    uint64_t storeHits = 0;   ///< slots served from the result store
    uint64_t storeMisses = 0; ///< slots executed past a store lookup

    uint64_t
    total() const
    {
        return ok + retried + failed + timedOut + crashed;
    }

    bool
    allOk() const
    {
        return failed == 0 && timedOut == 0 && crashed == 0;
    }
};

CampaignSummary summarizeOutcomes(const std::vector<RunOutcome> &outcomes);

/**
 * Containment knobs for runWorkloadsIsolated.
 *
 * Environment knobs (fromEnvironment, read at startup via env.hh):
 *   CATCH_MAX_ATTEMPTS  attempts per run incl. retries (default 3)
 *   CATCH_BACKOFF_MS    base retry backoff; attempt n sleeps
 *                       n * CATCH_BACKOFF_MS ms (default 100). Purely
 *                       a pacing aid: no wall-clock value enters any
 *                       result, and the attempt count alone decides
 *                       retry behaviour.
 *   CATCH_PROFILE       non-zero: collect host phase timings + peak
 *                       RSS per run (RunOutcome::profile, the JSON
 *                       export's hostPerf object)
 *   CATCH_MAX_CYCLES / CATCH_STALL_WINDOW  see RunBudget.
 *
 * Process-isolation knobs (consumed by sim/supervisor.hh):
 *   CATCH_HEARTBEAT_MS          worker heartbeat period (default 1000)
 *   CATCH_HEARTBEAT_TIMEOUT_MS  wall-clock silence before the
 *                               supervisor SIGKILLs a worker
 *                               (default 30000)
 *   CATCH_WORKER_BIN            worker executable; default
 *                               /proc/self/exe (the current binary
 *                               must then understand --worker)
 */
struct IsolationOptions
{
    RunBudget budget;         ///< default: stall-window guard only
    unsigned maxAttempts = 3; ///< total attempts for transient errors
    unsigned backoffMs = 0;   ///< base sleep between retries (ms)
    bool profile = false;     ///< collect RunProfile per successful run
    SuiteJournal *journal = nullptr; ///< optional resume/checkpoint
    /// Injection plan override; null = FaultPlan::global(). Lets tests
    /// drive the harness in-process without touching the environment.
    const FaultPlan *plan = nullptr;
    /// Chunk-store override: unset = ChunkStore::global(); an explicit
    /// value (possibly nullptr, i.e. store disabled) wins. Lets tests
    /// permute store states in-process without touching the
    /// environment. Resolved once on the calling thread.
    std::optional<ChunkStore *> store;
    /// Warmed-state store override with the same semantics: unset =
    /// WarmStateStore::global(), an explicit value (possibly nullptr)
    /// wins. Resolved once on the calling thread.
    std::optional<WarmStateStore *> warmStore;
    /// Content-hashed result store (sim/result_store.hh); null
    /// disables it. Consulted after the journal during campaign
    /// planning; successful fresh executions are persisted back.
    ResultStore *resultStore = nullptr;

    // Process-isolated execution (sim/supervisor.hh) only:
    unsigned heartbeatMs = 1000;        ///< worker heartbeat period
    unsigned heartbeatTimeoutMs = 30000; ///< supervisor kill threshold
    std::string workerBin; ///< worker executable; empty = /proc/self/exe

    static IsolationOptions fromEnvironment();
};

/**
 * Fault-contained parallel equivalent of the serial workload loop:
 * outcomes[i] describes the run of @p names[i], independent of
 * @p jobs. Worker exceptions, trace corruption, config errors and
 * watchdog trips are recorded as structured failures in their own
 * slots; transient IO errors retry up to opts.maxAttempts times.
 * When opts.journal is set, runs it already holds are replayed
 * without re-execution and fresh outcomes are appended to it.
 * @p progress (optional) is invoked from workers as runs finish; it
 * must be thread-safe.
 */
std::vector<RunOutcome>
runWorkloadsIsolated(const SimConfig &cfg,
                     const std::vector<std::string> &names,
                     uint64_t instrs, uint64_t warmup, unsigned jobs,
                     const IsolationOptions &opts = {},
                     const std::function<void(const RunOutcome &)>
                         &progress = nullptr);

/**
 * One fault-contained run: retries transient errors with a bounded
 * attempt count and converts exceptions and watchdog trips into
 * structured failures in the returned outcome. This is the unit of
 * work both executors share: runWorkloadsIsolated calls it on pool
 * threads, and the --worker process (sim/worker_proto.hh) calls it as
 * its whole job — which is what keeps in-process and process-isolated
 * campaigns bitwise-identical. Consults only opts.budget/maxAttempts/
 * backoffMs/profile/plan; journal and stores are the caller's concern.
 */
RunOutcome executeContainedRun(const SimConfig &cfg,
                               const std::string &name, uint64_t instrs,
                               uint64_t warmup,
                               const IsolationOptions &opts,
                               ChunkStore *store,
                               WarmStateStore *warm_store =
                                   WarmStateStore::global());

/**
 * Relative wall-clock cost estimate for one workload run, used to order
 * dispatch longest-first. Server/HPC kernels carry large footprints
 * (trace setup + DRAM-heavy simulation) and dominate the makespan.
 * Unknown names cost 1.0 (they fail fast in their own slot).
 */
double workloadCostEstimate(const std::string &name);

/**
 * Runs @p tasks on @p jobs threads, dispatching in descending @p cost
 * order. Each task must write only to its own pre-assigned output.
 * @p jobs <= 1 runs serially, in index order, on the calling thread.
 * While the pool exists its idle capacity is offered to @p store's
 * background chunk producer (no-op when @p store is null or serial).
 */
void runTasksLongestFirst(std::vector<std::function<void()>> tasks,
                          const std::vector<double> &cost, unsigned jobs,
                          ChunkStore *store = ChunkStore::global());

/**
 * Legacy results-only wrapper over runWorkloadsIsolated: results[i] is
 * the run of @p names[i], independent of @p jobs. Failed runs warn and
 * leave a default-initialised SimResult (workload/config set) in their
 * slot; callers that need structured failures use the isolated API.
 */
std::vector<SimResult>
runWorkloadsParallel(const SimConfig &cfg,
                     const std::vector<std::string> &names,
                     uint64_t instrs, uint64_t warmup, unsigned jobs,
                     const std::function<void(const SimResult &)>
                         &progress = nullptr);

/**
 * Solo IPCs of every distinct workload appearing in @p mixes on
 * @p cfg, computed in parallel. The map replaces the serial memoised
 * SoloCache the MP benches used.
 */
std::map<std::string, double>
soloIpcsParallel(const SimConfig &cfg, const std::vector<MpMix> &mixes,
                 uint64_t instrs, uint64_t warmup, unsigned jobs);

/**
 * Runs every mix on @p cfg in parallel; results[i] corresponds to
 * mixes[i] regardless of job count. @p solo must cover every workload
 * named by @p mixes (see soloIpcsParallel).
 */
std::vector<MpResult>
runMixesParallel(const SimConfig &cfg, const std::vector<MpMix> &mixes,
                 uint64_t instrs, uint64_t warmup,
                 const std::map<std::string, double> &solo, unsigned jobs);

} // namespace catchsim

#endif // CATCHSIM_SIM_PARALLEL_RUNNER_HH_
