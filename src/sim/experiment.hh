/**
 * @file
 * Experiment harness shared by the bench binaries: suite runners,
 * per-category geomean speedups, and environment-variable knobs.
 *
 * Environment knobs:
 *   CATCH_FULL=1     run the full 70-workload suite (default: quick list)
 *   CATCH_INSTR=N    measured instructions per run (default 300000)
 *   CATCH_WARMUP=N   warmup instructions per run (default 100000)
 *   CATCH_JOBS=N     parallel simulation jobs (default: hardware
 *                    concurrency; 1 restores the serial path). Results
 *                    are bitwise-identical for any job count.
 *   CATCH_JSON=DIR   also write one machine-readable JSON file per
 *                    runSuite() call into DIR (see writeSuiteJson)
 *   CATCH_JOURNAL=DIR  checkpoint finished runs to DIR/journal.jsonl
 *                    and resume them on restart (see sim/journal.hh)
 *   CATCH_ISOLATE=1  run each simulation in its own worker process
 *                    under the wall-clock supervisor (sim/supervisor.hh)
 *   CATCH_RESULT_STORE=DIR  content-hashed incremental result store:
 *                    unchanged (config, workload, length) cells are
 *                    served from DIR instead of re-executing
 *                    (sim/result_store.hh)
 *   CATCH_TRACE_STORE=1 / CATCH_TRACE_CACHE=DIR / CATCH_TRACE_STORE_MB
 *                    memoized trace-chunk store: in-memory (and, with
 *                    DIR, on-disk) reuse of generated trace chunks
 *                    across runs (trace/chunk_store.hh)
 *   CATCH_WARM_STATE=1 / CATCH_WARM_STATE_CACHE=DIR /
 *   CATCH_WARM_STATE_MB  warmed-state snapshot store: sampled runs
 *                    with a chunk store restore the functional-warming
 *                    state at the global-warmup boundary instead of
 *                    re-deriving it; repeat sweeps that vary only
 *                    timing knobs share snapshots (sim/warm_state.hh)
 *   CATCH_MAX_ATTEMPTS / CATCH_BACKOFF_MS / CATCH_MAX_CYCLES /
 *   CATCH_STALL_WINDOW  fault-containment knobs (see IsolationOptions
 *                    and RunBudget)
 *   CATCH_HEARTBEAT_MS / CATCH_HEARTBEAT_TIMEOUT_MS / CATCH_WORKER_BIN
 *                    process-isolation knobs (see IsolationOptions)
 */

#ifndef CATCHSIM_SIM_EXPERIMENT_HH_
#define CATCHSIM_SIM_EXPERIMENT_HH_

#include <map>
#include <string>
#include <vector>

#include "sim/parallel_runner.hh"
#include "sim/simulator.hh"
#include "trace/workload.hh"

namespace catchsim
{

/** Suite selection + run lengths from the environment. */
struct ExperimentEnv
{
    std::vector<std::string> names;
    uint64_t instrs;
    uint64_t warmup;
    /** Simulation jobs; CATCH_JOBS (default: hardware concurrency). */
    unsigned jobs = 1;
    /** Directory for per-suite JSON exports; empty disables them. */
    std::string jsonDir;
    /** Directory for the resume journal; empty disables it. */
    std::string journalDir;
    /** Directory for the content-hashed result store; empty disables
     *  it (CATCH_RESULT_STORE). */
    std::string resultStoreDir;
    /** Process-isolated execution via sim/supervisor.hh
     *  (CATCH_ISOLATE). */
    bool isolate = false;
    /** Fault-containment knobs (watchdog budget, retries, backoff). */
    IsolationOptions isolation;

    static ExperimentEnv fromEnvironment();
};

/**
 * Fault-contained suite run on env.jobs threads: outcomes[i] belongs to
 * env.names[i] and is bitwise-identical regardless of the job count;
 * failed runs occupy their own slots as structured failures instead of
 * aborting the campaign. Prints one progress mark per run ('.' ok,
 * 'r' retried, 'F' failed, 'T' timed out, 'C' crashed, 's' resumed
 * from journal, 'h' served from the result store), a campaign summary
 * when anything was abnormal, and one warning per failure. When
 * env.journalDir is set, finished runs checkpoint to the journal and a
 * restarted campaign re-executes only unfinished ones. When
 * env.resultStoreDir is set, cells whose content key is already stored
 * replay from the store and fresh successes persist back to it. When
 * env.isolate is set, runs execute in per-run worker processes under
 * the wall-clock supervisor instead of pool threads.
 * When env.jsonDir is set, writes <jsonDir>/<config-name>.json with
 * per-run status and the campaign summary (a "-2", "-3", ... suffix
 * disambiguates repeated config names within one process).
 */
std::vector<RunOutcome> runSuiteIsolated(const SimConfig &cfg,
                                         const ExperimentEnv &env);

/**
 * Results-only wrapper over runSuiteIsolated for benches that tabulate
 * SimResults directly: failed runs leave a default-initialised
 * SimResult (workload/config set) in their slot after warning.
 */
std::vector<SimResult> runSuite(const SimConfig &cfg,
                                const ExperimentEnv &env);

/**
 * Writes a suite's results as one JSON document (atomically, via a
 * .tmp rename); the error names the path and cause.
 */
Expected<void> writeSuiteJson(const std::string &path,
                              const SimConfig &cfg,
                              const ExperimentEnv &env,
                              const std::vector<SimResult> &results);

/**
 * Outcome-aware export: each entry carries status/attempts/resumed and
 * either the full result or the structured error, preceded by a
 * campaign summary object.
 */
Expected<void> writeSuiteJson(const std::string &path,
                              const SimConfig &cfg,
                              const ExperimentEnv &env,
                              const std::vector<RunOutcome> &outcomes);

/**
 * Per-workload speedups of @p test over @p base (paired by index) and
 * their geometric means: per category plus an overall "GeoMean" entry.
 * Categories appear in the paper's order.
 */
std::vector<std::pair<std::string, double>>
categoryGeomeans(const std::vector<SimResult> &base,
                 const std::vector<SimResult> &test);

/** Overall geomean speedup of @p test over @p base. */
double overallGeomean(const std::vector<SimResult> &base,
                      const std::vector<SimResult> &test);

/** Sums a counter over a suite's results. */
template <typename Fn>
double
sumOver(const std::vector<SimResult> &rs, Fn fn)
{
    double total = 0;
    for (const auto &r : rs)
        total += static_cast<double>(fn(r));
    return total;
}

} // namespace catchsim

#endif // CATCHSIM_SIM_EXPERIMENT_HH_
