/**
 * @file
 * Experiment harness shared by the bench binaries: suite runners,
 * per-category geomean speedups, and environment-variable knobs.
 *
 * Environment knobs:
 *   CATCH_FULL=1     run the full 70-workload suite (default: quick list)
 *   CATCH_INSTR=N    measured instructions per run (default 300000)
 *   CATCH_WARMUP=N   warmup instructions per run (default 100000)
 *   CATCH_JOBS=N     parallel simulation jobs (default: hardware
 *                    concurrency; 1 restores the serial path). Results
 *                    are bitwise-identical for any job count.
 *   CATCH_JSON=DIR   also write one machine-readable JSON file per
 *                    runSuite() call into DIR (see writeSuiteJson)
 */

#ifndef CATCHSIM_SIM_EXPERIMENT_HH_
#define CATCHSIM_SIM_EXPERIMENT_HH_

#include <map>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "trace/workload.hh"

namespace catchsim
{

/** Suite selection + run lengths from the environment. */
struct ExperimentEnv
{
    std::vector<std::string> names;
    uint64_t instrs;
    uint64_t warmup;
    /** Simulation jobs; CATCH_JOBS (default: hardware concurrency). */
    unsigned jobs = 1;
    /** Directory for per-suite JSON exports; empty disables them. */
    std::string jsonDir;

    static ExperimentEnv fromEnvironment();
};

/**
 * Runs one config across the suite on env.jobs threads; prints one
 * progress dot per run. results[i] belongs to env.names[i] and is
 * bitwise-identical regardless of the job count. When env.jsonDir is
 * set, also writes <jsonDir>/<config-name>.json (a "-2", "-3", ...
 * suffix disambiguates repeated config names within one process).
 */
std::vector<SimResult> runSuite(const SimConfig &cfg,
                                const ExperimentEnv &env);

/** Writes a suite's results as one JSON document; false on I/O error. */
bool writeSuiteJson(const std::string &path, const SimConfig &cfg,
                    const ExperimentEnv &env,
                    const std::vector<SimResult> &results);

/**
 * Per-workload speedups of @p test over @p base (paired by index) and
 * their geometric means: per category plus an overall "GeoMean" entry.
 * Categories appear in the paper's order.
 */
std::vector<std::pair<std::string, double>>
categoryGeomeans(const std::vector<SimResult> &base,
                 const std::vector<SimResult> &test);

/** Overall geomean speedup of @p test over @p base. */
double overallGeomean(const std::vector<SimResult> &base,
                      const std::vector<SimResult> &test);

/** Sums a counter over a suite's results. */
template <typename Fn>
double
sumOver(const std::vector<SimResult> &rs, Fn fn)
{
    double total = 0;
    for (const auto &r : rs)
        total += static_cast<double>(fn(r));
    return total;
}

} // namespace catchsim

#endif // CATCHSIM_SIM_EXPERIMENT_HH_
