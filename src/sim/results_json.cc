/**
 * @file
 * JSON export of suite results: SimResult::toJson()/fromJson() plus the
 * suite-level writers the bench binaries and the CLI use to emit
 * machine-readable per-workload stats next to their stdout tables
 * (CATCH_JSON env knob).
 *
 * toJson() covers every counter SimResult carries and fromJson() parses
 * it back bitwise-exactly (exact u64, %.17g doubles); the suite journal
 * rests on this round trip. Suite documents are written atomically:
 * the full document goes to <path>.tmp, which is renamed over <path>
 * only after a verified complete write — a crashed export never leaves
 * a half-written file behind.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/fault_inject.hh"
#include "common/json.hh"
#include "sim/experiment.hh"
#include "sim/parallel_runner.hh"
#include "sim/simulator.hh"

namespace catchsim
{

namespace
{

void
cacheJson(JsonWriter &w, const char *name, const CacheStats &s)
{
    w.object(name);
    w.field("accesses", s.demandAccesses);
    w.field("hits", s.demandHits);
    w.field("hit_rate", s.hitRate());
    w.field("fills", s.fills);
    w.field("evictions", s.evictions);
    w.field("dirty_evictions", s.dirtyEvictions);
    w.field("invalidations", s.invalidations);
    w.field("useless_prefetch_evictions", s.uselessPrefetchEvictions);
    w.field("read_ops", s.readOps);
    w.field("write_ops", s.writeOps);
    w.close();
}

/**
 * Checked member access over one parsed JSON object: the first missing
 * or wrong-kind field records a trace-corrupt SimError and every later
 * read becomes a no-op, so parse functions read straight-line.
 */
class ObjectReader
{
  public:
    ObjectReader(const JsonValue *obj, std::optional<SimError> &err)
        : obj_(obj), err_(err)
    {
    }

    ObjectReader
    child(const char *name) const
    {
        return ObjectReader(fetch(name, JsonValue::Kind::Object), err_);
    }

    bool has(const char *name) const
    {
        return obj_ && obj_->member(name) != nullptr;
    }

    void
    u64(const char *name, uint64_t &dst) const
    {
        if (const JsonValue *m = fetch(name, JsonValue::Kind::Number))
            dst = m->asU64();
    }

    void
    u32(const char *name, uint32_t &dst) const
    {
        if (const JsonValue *m = fetch(name, JsonValue::Kind::Number))
            dst = m->asU32();
    }

    void
    f64(const char *name, double &dst) const
    {
        if (const JsonValue *m = fetch(name, JsonValue::Kind::Number))
            dst = m->asDouble();
    }

    void
    str(const char *name, std::string &dst) const
    {
        if (const JsonValue *m = fetch(name, JsonValue::Kind::String))
            dst = m->asString();
    }

    void
    u64Array(const char *name, uint64_t *dst, size_t n) const
    {
        const JsonValue *m = fetch(name, JsonValue::Kind::Array);
        if (!m)
            return;
        if (m->size() != n) {
            err_ = simError(ErrorCategory::TraceCorrupt, "field '", name,
                            "' has ", m->size(), " elements, expected ",
                            n);
            return;
        }
        for (size_t i = 0; i < n; ++i) {
            const JsonValue *e = m->at(i);
            if (!e || e->kind() != JsonValue::Kind::Number) {
                err_ = simError(ErrorCategory::TraceCorrupt, "field '",
                                name, "' element ", i,
                                " is not a number");
                return;
            }
            dst[i] = e->asU64();
        }
    }

  private:
    const JsonValue *
    fetch(const char *name, JsonValue::Kind kind) const
    {
        if (err_ || !obj_)
            return nullptr;
        const JsonValue *m = obj_->member(name);
        if (!m || m->kind() != kind) {
            err_ = simError(ErrorCategory::TraceCorrupt,
                            m ? "wrong-kind" : "missing", " field '",
                            name, "' in SimResult JSON");
            return nullptr;
        }
        return m;
    }

    const JsonValue *obj_;
    std::optional<SimError> &err_;
};

void
cacheFromJson(const ObjectReader &r, CacheStats &s)
{
    r.u64("accesses", s.demandAccesses);
    r.u64("hits", s.demandHits);
    r.u64("fills", s.fills);
    r.u64("evictions", s.evictions);
    r.u64("dirty_evictions", s.dirtyEvictions);
    r.u64("invalidations", s.invalidations);
    r.u64("useless_prefetch_evictions", s.uselessPrefetchEvictions);
    r.u64("read_ops", s.readOps);
    r.u64("write_ops", s.writeOps);
}

} // namespace

std::string
SimResult::toJson() const
{
    JsonWriter w;
    w.open();
    w.field("workload", workload);
    w.field("config", config);
    w.field("category", std::string(categoryName(category)));
    w.field("ipc", ipc);

    w.object("core");
    w.field("instrs", core.instrs);
    w.field("cycles", core.cycles);
    w.field("loads", core.loads);
    w.field("stores", core.stores);
    w.field("forwarded_loads", core.forwardedLoads);
    w.field("branches", core.branch.branches);
    w.field("branch_mispredicts", core.branch.mispredicts);
    w.field("branch_direction_wrong", core.branch.directionWrong);
    w.field("branch_target_wrong", core.branch.targetWrong);
    w.close();

    w.object("hierarchy");
    w.field("loads", hier.loads);
    w.field("load_hits_l1", hier.loadHits[0]);
    w.field("load_hits_l2", hier.loadHits[1]);
    w.field("load_hits_llc", hier.loadHits[2]);
    w.field("load_hits_mem", hier.loadHits[3]);
    w.field("total_load_latency", hier.totalLoadLatency);
    w.field("total_l1_hit_latency", hier.totalL1HitLatency);
    w.fieldArray("l1_hits_by_source", hier.l1HitsBySource, 7);
    w.fieldArray("l1_hit_wait_by_source", hier.l1HitWaitBySource, 7);
    w.field("store_accesses", hier.storeAccesses);
    w.field("store_l1_misses", hier.storeL1Misses);
    w.fieldArray("rfo_hits", hier.rfoHits, 4);
    w.field("code_fetches", hier.codeFetches);
    w.fieldArray("code_hits", hier.codeHits, 4);
    w.field("demoted_loads", hier.demotedLoads);
    w.field("oracle_converted", hier.oracleConverted);
    w.field("ring_transfers", hier.ringTransfers);
    w.field("mem_transfers", hier.memTransfers);
    w.field("stride_pf_issued", hier.stridePfIssued);
    w.field("stream_pf_issued", hier.streamPfIssued);
    w.field("code_pf_issued", hier.codePfIssued);
    w.close();

    cacheJson(w, "l1d", l1d);
    cacheJson(w, "l1i", l1i);
    if (hasL2)
        cacheJson(w, "l2", l2);
    cacheJson(w, "llc", llc);

    w.object("dram");
    w.field("reads", dram.reads);
    w.field("writes", dram.writes);
    w.field("activates", dram.activates);
    w.field("row_hits", dram.rowHits);
    w.field("row_misses", dram.rowMisses);
    w.field("write_drains", dram.writeDrains);
    w.field("refresh_stalls", dram.refreshStalls);
    w.field("total_read_latency", dram.totalReadLatency);
    w.field("total_bank_wait", dram.totalBankWait);
    w.field("total_bus_wait", dram.totalBusWait);
    w.field("avg_read_latency", dram.avgReadLatency());
    w.close();

    w.object("frontend");
    w.field("line_fetches", frontend.lineFetches);
    w.field("code_stall_cycles", frontend.codeStallCycles);
    w.field("redirects", frontend.redirects);
    w.close();

    w.object("criticality");
    w.field("ddg_retired", ddg.retired);
    w.field("ddg_walks", ddg.walks);
    w.field("critical_loads_found", ddg.criticalLoadsFound);
    w.field("ddg_recorded", ddg.recorded);
    w.field("ddg_overflows", ddg.overflows);
    w.field("table_recordings", criticalTable.recordings);
    w.field("table_insertions", criticalTable.insertions);
    w.field("table_evictions", criticalTable.evictions);
    w.field("table_confidence_resets", criticalTable.confidenceResets);
    w.field("table_queries", criticalTable.queries);
    w.field("table_query_hits", criticalTable.queryHits);
    w.field("active_critical_pcs", uint64_t(activeCriticalPcs));
    w.close();

    w.object("tact");
    w.field("prefetches", hier.tactPrefetches);
    w.field("cross_issued", tact.crossIssued);
    w.field("deep_issued", tact.deepIssued);
    w.field("feeder_issued", tact.feederIssued);
    w.field("feeder_runaheads", tact.feederRunaheads);
    w.field("code_stalls", tact.codeStalls);
    w.field("code_lines", tact.codeLines);
    w.field("useful_hits", hier.tactUsefulHits);
    w.field("pf_from_l2", hier.tactPfFromL2);
    w.field("pf_from_llc", hier.tactPfFromLlc);
    w.field("pf_from_mem", hier.tactPfFromMem);
    w.field("pf_dropped", hier.tactPfDropped);
    w.field("pf_not_on_die", hier.tactPfNotOnDie);
    w.field("from_llc_fraction", tactFromLlcFraction);
    w.field("timeliness_ge80", timelinessAtLeast80);
    w.field("timeliness_ge10", timelinessAtLeast10);
    w.close();

    w.object("energy_mj");
    w.field("core_dynamic", energy.coreDynamic);
    w.field("cache_dynamic", energy.cacheDynamic);
    w.field("interconnect", energy.interconnect);
    w.field("dram_dynamic", energy.dramDynamic);
    w.field("static_leakage", energy.staticLeakage);
    w.field("total", energy.total());
    w.close();

    // Emitted only by sampled runs (like "l2" above): detailed-mode
    // documents stay byte-identical to pre-sampling exports, which the
    // golden-hash tests pin.
    if (sampled) {
        w.object("sampling");
        w.field("windows", sample.windows);
        w.field("warmed_instrs", sample.warmedInstrs);
        w.field("ipc_mean", sample.ipcMean);
        w.field("ipc_variance", sample.ipcVariance);
        w.field("ipc_min", sample.ipcMin);
        w.field("ipc_max", sample.ipcMax);
        w.close();
    }

    w.close();
    return w.str();
}

Expected<SimResult>
SimResult::fromJson(const JsonValue &v)
{
    if (!v.isObject())
        return simError(ErrorCategory::TraceCorrupt,
                        "SimResult JSON is not an object");
    std::optional<SimError> err;
    ObjectReader r(&v, err);
    SimResult s;

    r.str("workload", s.workload);
    r.str("config", s.config);
    std::string cat;
    r.str("category", cat);
    if (!err) {
        bool found = false;
        for (Category c : {Category::Client, Category::Fspec,
                           Category::Hpc, Category::Ispec,
                           Category::Server}) {
            if (cat == categoryName(c)) {
                s.category = c;
                found = true;
                break;
            }
        }
        if (!found)
            err = simError(ErrorCategory::TraceCorrupt,
                           "unknown category '", cat, "'");
    }
    r.f64("ipc", s.ipc);

    ObjectReader core = r.child("core");
    core.u64("instrs", s.core.instrs);
    core.u64("cycles", s.core.cycles);
    core.u64("loads", s.core.loads);
    core.u64("stores", s.core.stores);
    core.u64("forwarded_loads", s.core.forwardedLoads);
    core.u64("branches", s.core.branch.branches);
    core.u64("branch_mispredicts", s.core.branch.mispredicts);
    core.u64("branch_direction_wrong", s.core.branch.directionWrong);
    core.u64("branch_target_wrong", s.core.branch.targetWrong);

    ObjectReader h = r.child("hierarchy");
    h.u64("loads", s.hier.loads);
    h.u64("load_hits_l1", s.hier.loadHits[0]);
    h.u64("load_hits_l2", s.hier.loadHits[1]);
    h.u64("load_hits_llc", s.hier.loadHits[2]);
    h.u64("load_hits_mem", s.hier.loadHits[3]);
    h.u64("total_load_latency", s.hier.totalLoadLatency);
    h.u64("total_l1_hit_latency", s.hier.totalL1HitLatency);
    h.u64Array("l1_hits_by_source", s.hier.l1HitsBySource, 7);
    h.u64Array("l1_hit_wait_by_source", s.hier.l1HitWaitBySource, 7);
    h.u64("store_accesses", s.hier.storeAccesses);
    h.u64("store_l1_misses", s.hier.storeL1Misses);
    h.u64Array("rfo_hits", s.hier.rfoHits, 4);
    h.u64("code_fetches", s.hier.codeFetches);
    h.u64Array("code_hits", s.hier.codeHits, 4);
    h.u64("demoted_loads", s.hier.demotedLoads);
    h.u64("oracle_converted", s.hier.oracleConverted);
    h.u64("ring_transfers", s.hier.ringTransfers);
    h.u64("mem_transfers", s.hier.memTransfers);
    h.u64("stride_pf_issued", s.hier.stridePfIssued);
    h.u64("stream_pf_issued", s.hier.streamPfIssued);
    h.u64("code_pf_issued", s.hier.codePfIssued);

    cacheFromJson(r.child("l1d"), s.l1d);
    cacheFromJson(r.child("l1i"), s.l1i);
    s.hasL2 = r.has("l2");
    if (s.hasL2)
        cacheFromJson(r.child("l2"), s.l2);
    cacheFromJson(r.child("llc"), s.llc);

    ObjectReader dram = r.child("dram");
    dram.u64("reads", s.dram.reads);
    dram.u64("writes", s.dram.writes);
    dram.u64("activates", s.dram.activates);
    dram.u64("row_hits", s.dram.rowHits);
    dram.u64("row_misses", s.dram.rowMisses);
    dram.u64("write_drains", s.dram.writeDrains);
    dram.u64("refresh_stalls", s.dram.refreshStalls);
    dram.u64("total_read_latency", s.dram.totalReadLatency);
    dram.u64("total_bank_wait", s.dram.totalBankWait);
    dram.u64("total_bus_wait", s.dram.totalBusWait);

    ObjectReader fe = r.child("frontend");
    fe.u64("line_fetches", s.frontend.lineFetches);
    fe.u64("code_stall_cycles", s.frontend.codeStallCycles);
    fe.u64("redirects", s.frontend.redirects);

    ObjectReader crit = r.child("criticality");
    crit.u64("ddg_retired", s.ddg.retired);
    crit.u64("ddg_walks", s.ddg.walks);
    crit.u64("critical_loads_found", s.ddg.criticalLoadsFound);
    crit.u64("ddg_recorded", s.ddg.recorded);
    crit.u64("ddg_overflows", s.ddg.overflows);
    crit.u64("table_recordings", s.criticalTable.recordings);
    crit.u64("table_insertions", s.criticalTable.insertions);
    crit.u64("table_evictions", s.criticalTable.evictions);
    crit.u64("table_confidence_resets", s.criticalTable.confidenceResets);
    crit.u64("table_queries", s.criticalTable.queries);
    crit.u64("table_query_hits", s.criticalTable.queryHits);
    crit.u32("active_critical_pcs", s.activeCriticalPcs);

    ObjectReader tact = r.child("tact");
    tact.u64("prefetches", s.hier.tactPrefetches);
    tact.u64("cross_issued", s.tact.crossIssued);
    tact.u64("deep_issued", s.tact.deepIssued);
    tact.u64("feeder_issued", s.tact.feederIssued);
    tact.u64("feeder_runaheads", s.tact.feederRunaheads);
    tact.u64("code_stalls", s.tact.codeStalls);
    tact.u64("code_lines", s.tact.codeLines);
    tact.u64("useful_hits", s.hier.tactUsefulHits);
    tact.u64("pf_from_l2", s.hier.tactPfFromL2);
    tact.u64("pf_from_llc", s.hier.tactPfFromLlc);
    tact.u64("pf_from_mem", s.hier.tactPfFromMem);
    tact.u64("pf_dropped", s.hier.tactPfDropped);
    tact.u64("pf_not_on_die", s.hier.tactPfNotOnDie);
    tact.f64("from_llc_fraction", s.tactFromLlcFraction);
    tact.f64("timeliness_ge80", s.timelinessAtLeast80);
    tact.f64("timeliness_ge10", s.timelinessAtLeast10);

    ObjectReader energy = r.child("energy_mj");
    energy.f64("core_dynamic", s.energy.coreDynamic);
    energy.f64("cache_dynamic", s.energy.cacheDynamic);
    energy.f64("interconnect", s.energy.interconnect);
    energy.f64("dram_dynamic", s.energy.dramDynamic);
    energy.f64("static_leakage", s.energy.staticLeakage);

    s.sampled = r.has("sampling");
    if (s.sampled) {
        ObjectReader sm = r.child("sampling");
        sm.u64("windows", s.sample.windows);
        sm.u64("warmed_instrs", s.sample.warmedInstrs);
        sm.f64("ipc_mean", s.sample.ipcMean);
        sm.f64("ipc_variance", s.sample.ipcVariance);
        sm.f64("ipc_min", s.sample.ipcMin);
        sm.f64("ipc_max", s.sample.ipcMax);
    }

    if (err)
        return *err;
    return s;
}

Expected<SimResult>
SimResult::fromJson(const std::string &json)
{
    auto v = parseJson(json);
    if (!v.ok())
        return v.error();
    return fromJson(v.value());
}

namespace
{

/**
 * Atomic document write: full body to <path>.tmp, verified, renamed
 * over <path>. The reserved fault-injection target "json-export" makes
 * the transient-IO path testable.
 */
Expected<void>
writeDocument(const std::string &path, const std::string &body)
{
    const FaultPlan &plan = FaultPlan::global();
    if (plan.shouldInject(FaultKind::IoTransient, "json-export"))
        return simError(ErrorCategory::IoTransient,
                        "injected transient IO failure writing '", path,
                        "'");
    std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f)
        return simError(ErrorCategory::Config, "cannot open '", tmp,
                        "' for writing");
    size_t n = std::fwrite(body.data(), 1, body.size(), f);
    bool bad = n != body.size() || std::ferror(f) != 0;
    if (std::fclose(f) != 0)
        bad = true;
    if (bad) {
        std::remove(tmp.c_str());
        return simError(ErrorCategory::IoTransient,
                        "short or failed write to '", tmp, "' (", n,
                        " of ", body.size(), " bytes)");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return simError(ErrorCategory::IoTransient, "cannot rename '",
                        tmp, "' to '", path, "'");
    }
    return {};
}

std::string
suiteHeader(const SimConfig &cfg, const ExperimentEnv &env)
{
    JsonWriter w;
    w.open();
    w.field("config", cfg.name);
    w.field("instrs", env.instrs);
    w.field("warmup", env.warmup);
    w.key("results");
    return w.str();
}

} // namespace

Expected<void>
writeSuiteJson(const std::string &path, const SimConfig &cfg,
               const ExperimentEnv &env,
               const std::vector<SimResult> &results)
{
    std::string body = suiteHeader(cfg, env);
    body += "[\n";
    for (size_t i = 0; i < results.size(); ++i) {
        body += results[i].toJson();
        if (i + 1 < results.size())
            body += ',';
        body += '\n';
    }
    body += "]}\n";
    return writeDocument(path, body);
}

Expected<void>
writeSuiteJson(const std::string &path, const SimConfig &cfg,
               const ExperimentEnv &env,
               const std::vector<RunOutcome> &outcomes)
{
    CampaignSummary sum = summarizeOutcomes(outcomes);
    JsonWriter head;
    head.open();
    head.field("config", cfg.name);
    head.field("instrs", env.instrs);
    head.field("warmup", env.warmup);
    head.object("summary");
    head.field("total", sum.total());
    head.field("ok", sum.ok);
    head.field("retried", sum.retried);
    head.field("failed", sum.failed);
    head.field("timed_out", sum.timedOut);
    head.field("crashed", sum.crashed);
    head.field("resumed", sum.resumed);
    head.field("store_hits", sum.storeHits);
    head.field("store_misses", sum.storeMisses);
    head.close();
    head.key("results");

    std::string body = head.str();
    body += "[\n";
    for (size_t i = 0; i < outcomes.size(); ++i) {
        const RunOutcome &o = outcomes[i];
        JsonWriter w;
        w.open();
        w.field("workload", o.workload);
        w.field("status", std::string(runStatusName(o.status)));
        w.field("attempts", uint64_t(o.attempts));
        w.field("resumed", o.resumed);
        w.field("from_store", o.fromStore);
        if (o.ok()) {
            // Host-side profiling rides beside the simulated result: it
            // is wall-clock data and deliberately NOT part of
            // SimResult's deterministic payload (or the journal).
            if (o.profile) {
                w.object("hostPerf");
                w.field("trace_gen_sec", o.profile->traceGenSec);
                w.field("warmup_sec", o.profile->warmupSec);
                w.field("measured_sec", o.profile->measuredSec);
                w.field("peak_rss_bytes", o.profile->peakRssBytes);
                // Per-run (never campaign-cumulative) chunk-store
                // counters: hit-rate stays attributable to this cell.
                w.field("store_hit_chunks", o.profile->storeHitChunks);
                w.field("store_miss_chunks", o.profile->storeMissChunks);
                // Warmed-state snapshot traffic, same per-run scoping.
                w.field("warm_state_hits", o.profile->warmStateHits);
                w.field("warm_state_misses", o.profile->warmStateMisses);
                w.field("warm_state_bytes", o.profile->warmStateBytes);
                // Window-boundary (inter-sample) snapshot traffic,
                // split from the global-warmup counters above.
                w.field("warm_state_window_hits",
                        o.profile->warmStateWindowHits);
                w.field("warm_state_window_misses",
                        o.profile->warmStateWindowMisses);
                w.field("warm_state_window_bytes",
                        o.profile->warmStateWindowBytes);
                w.close();
            }
            w.rawField("result", o.result.toJson());
        } else {
            w.object("error");
            w.field("category", std::string(errorCategoryName(
                                    o.failure->error.category)));
            w.field("message", o.failure->error.message);
            w.close();
        }
        w.close();
        body += w.str();
        if (i + 1 < outcomes.size())
            body += ',';
        body += '\n';
    }
    body += "]}\n";
    return writeDocument(path, body);
}

} // namespace catchsim
