/**
 * @file
 * JSON export of suite results: SimResult::toJson() plus the suite-level
 * writer the bench binaries use to emit machine-readable per-workload
 * stats next to their stdout tables (CATCH_JSON env knob).
 */

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/simulator.hh"

namespace catchsim
{

namespace
{

/**
 * Tiny append-only JSON builder. Field order is fixed by call order so
 * exports diff cleanly run-to-run; doubles use %.17g (round-trippable).
 */
class JsonWriter
{
  public:
    void
    open()
    {
        out_ += '{';
        first_ = true;
    }

    void
    close()
    {
        out_ += '}';
        first_ = false;
    }

    void
    key(const char *name)
    {
        if (!first_)
            out_ += ',';
        first_ = false;
        out_ += '"';
        out_ += name;
        out_ += "\":";
    }

    void
    field(const char *name, uint64_t v)
    {
        key(name);
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
        out_ += buf;
    }

    void
    field(const char *name, double v)
    {
        key(name);
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        out_ += buf;
    }

    void
    field(const char *name, const std::string &v)
    {
        key(name);
        out_ += '"';
        for (char c : v) {
            if (c == '"' || c == '\\')
                out_ += '\\';
            out_ += c;
        }
        out_ += '"';
    }

    void
    object(const char *name)
    {
        key(name);
        open();
    }

    const std::string &str() const { return out_; }

  private:
    std::string out_;
    bool first_ = true;
};

void
cacheJson(JsonWriter &w, const char *name, const CacheStats &s)
{
    w.object(name);
    w.field("accesses", s.demandAccesses);
    w.field("hits", s.demandHits);
    w.field("hit_rate", s.hitRate());
    w.field("fills", s.fills);
    w.field("evictions", s.evictions);
    w.field("dirty_evictions", s.dirtyEvictions);
    w.field("invalidations", s.invalidations);
    w.field("read_ops", s.readOps);
    w.field("write_ops", s.writeOps);
    w.close();
}

} // namespace

std::string
SimResult::toJson() const
{
    JsonWriter w;
    w.open();
    w.field("workload", workload);
    w.field("config", config);
    w.field("category", std::string(categoryName(category)));
    w.field("ipc", ipc);

    w.object("core");
    w.field("instrs", core.instrs);
    w.field("cycles", core.cycles);
    w.field("loads", core.loads);
    w.field("stores", core.stores);
    w.field("forwarded_loads", core.forwardedLoads);
    w.field("branches", core.branch.branches);
    w.field("branch_mispredicts", core.branch.mispredicts);
    w.close();

    w.object("hierarchy");
    w.field("loads", hier.loads);
    w.field("load_hits_l1", hier.loadHits[0]);
    w.field("load_hits_l2", hier.loadHits[1]);
    w.field("load_hits_llc", hier.loadHits[2]);
    w.field("load_hits_mem", hier.loadHits[3]);
    w.field("total_load_latency", hier.totalLoadLatency);
    w.field("store_accesses", hier.storeAccesses);
    w.field("store_l1_misses", hier.storeL1Misses);
    w.field("code_fetches", hier.codeFetches);
    w.field("ring_transfers", hier.ringTransfers);
    w.field("mem_transfers", hier.memTransfers);
    w.field("stride_pf_issued", hier.stridePfIssued);
    w.field("stream_pf_issued", hier.streamPfIssued);
    w.close();

    cacheJson(w, "l1d", l1d);
    cacheJson(w, "l1i", l1i);
    if (hasL2)
        cacheJson(w, "l2", l2);
    cacheJson(w, "llc", llc);

    w.object("dram");
    w.field("reads", dram.reads);
    w.field("writes", dram.writes);
    w.field("activates", dram.activates);
    w.field("row_hits", dram.rowHits);
    w.field("row_misses", dram.rowMisses);
    w.field("avg_read_latency", dram.avgReadLatency());
    w.close();

    w.object("frontend");
    w.field("line_fetches", frontend.lineFetches);
    w.field("code_stall_cycles", frontend.codeStallCycles);
    w.field("redirects", frontend.redirects);
    w.close();

    w.object("criticality");
    w.field("ddg_walks", ddg.walks);
    w.field("critical_loads_found", ddg.criticalLoadsFound);
    w.field("table_recordings", criticalTable.recordings);
    w.field("table_evictions", criticalTable.evictions);
    w.field("active_critical_pcs", uint64_t(activeCriticalPcs));
    w.close();

    w.object("tact");
    w.field("prefetches", hier.tactPrefetches);
    w.field("cross_issued", tact.crossIssued);
    w.field("deep_issued", tact.deepIssued);
    w.field("feeder_issued", tact.feederIssued);
    w.field("code_lines", tact.codeLines);
    w.field("useful_hits", hier.tactUsefulHits);
    w.field("from_llc_fraction", tactFromLlcFraction);
    w.field("timeliness_ge80", timelinessAtLeast80);
    w.field("timeliness_ge10", timelinessAtLeast10);
    w.close();

    w.object("energy_mj");
    w.field("core_dynamic", energy.coreDynamic);
    w.field("cache_dynamic", energy.cacheDynamic);
    w.field("interconnect", energy.interconnect);
    w.field("dram_dynamic", energy.dramDynamic);
    w.field("static_leakage", energy.staticLeakage);
    w.field("total", energy.total());
    w.close();

    w.close();
    return w.str();
}

bool
writeSuiteJson(const std::string &path, const SimConfig &cfg,
               const ExperimentEnv &env,
               const std::vector<SimResult> &results)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f,
                 "{\"config\":\"%s\",\"instrs\":%" PRIu64
                 ",\"warmup\":%" PRIu64 ",\"results\":[\n",
                 cfg.name.c_str(), env.instrs, env.warmup);
    for (size_t i = 0; i < results.size(); ++i)
        std::fprintf(f, "%s%s\n", results[i].toJson().c_str(),
                     i + 1 < results.size() ? "," : "");
    std::fprintf(f, "]}\n");
    std::fclose(f);
    return true;
}

} // namespace catchsim
