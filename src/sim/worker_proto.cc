#include "sim/worker_proto.hh"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>

#include "common/fault_inject.hh"
#include "sim/simulator.hh"
#include "trace/trace_io.hh"

#include <unistd.h>

namespace catchsim
{

namespace
{

uint32_t
decodeLen(const char *p)
{
    return uint32_t(uint8_t(p[0])) | uint32_t(uint8_t(p[1])) << 8 |
           uint32_t(uint8_t(p[2])) << 16 | uint32_t(uint8_t(p[3])) << 24;
}

void
encodeLen(uint32_t len, char *p)
{
    p[0] = char(len & 0xff);
    p[1] = char((len >> 8) & 0xff);
    p[2] = char((len >> 16) & 0xff);
    p[3] = char((len >> 24) & 0xff);
}

/**
 * Checked member access over one parsed JSON object (the request/
 * result parsers): the first missing or wrong-kind field records a
 * SimError of the parser's category and every later read no-ops, so
 * the parse functions read straight-line.
 */
class Reader
{
  public:
    Reader(const JsonValue *obj, std::optional<SimError> &err,
           ErrorCategory cat)
        : obj_(obj), err_(err), cat_(cat)
    {
    }

    Reader
    child(const char *name) const
    {
        return Reader(fetch(name, JsonValue::Kind::Object), err_, cat_);
    }

    bool has(const char *name) const
    {
        return obj_ && obj_->member(name) != nullptr;
    }

    void
    u64(const char *name, uint64_t &dst) const
    {
        if (const JsonValue *m = fetch(name, JsonValue::Kind::Number))
            dst = m->asU64();
    }

    void
    u32(const char *name, uint32_t &dst) const
    {
        if (const JsonValue *m = fetch(name, JsonValue::Kind::Number))
            dst = m->asU32();
    }

    void
    f64(const char *name, double &dst) const
    {
        if (const JsonValue *m = fetch(name, JsonValue::Kind::Number))
            dst = m->asDouble();
    }

    void
    str(const char *name, std::string &dst) const
    {
        if (const JsonValue *m = fetch(name, JsonValue::Kind::String))
            dst = m->asString();
    }

    void
    boolean(const char *name, bool &dst) const
    {
        if (const JsonValue *m = fetch(name, JsonValue::Kind::Bool))
            dst = m->asBool();
    }

    /** Enum stored as an integer; values past @p max are corruption. */
    template <typename E>
    void
    enumeration(const char *name, E &dst, uint64_t max) const
    {
        const JsonValue *m = fetch(name, JsonValue::Kind::Number);
        if (!m)
            return;
        if (m->asU64() > max) {
            err_ = simError(cat_, "field '", name, "' value ",
                            m->asU64(), " exceeds enum range ", max);
            return;
        }
        dst = static_cast<E>(m->asU64());
    }

    const JsonValue *
    raw(const char *name, JsonValue::Kind kind) const
    {
        return fetch(name, kind);
    }

  private:
    const JsonValue *
    fetch(const char *name, JsonValue::Kind kind) const
    {
        if (err_ || !obj_)
            return nullptr;
        const JsonValue *m = obj_->member(name);
        if (!m || m->kind() != kind) {
            err_ = simError(cat_, m ? "wrong-kind" : "missing",
                            " field '", name, "' in protocol JSON");
            return nullptr;
        }
        return m;
    }

    const JsonValue *obj_;
    std::optional<SimError> &err_;
    ErrorCategory cat_;
};

void
geometryJson(JsonWriter &w, const char *name, const CacheGeometry &g)
{
    w.object(name);
    w.field("size_bytes", g.sizeBytes);
    w.field("ways", uint64_t(g.ways));
    w.field("latency", uint64_t(g.latency));
    w.close();
}

void
geometryFromJson(const Reader &r, CacheGeometry &g)
{
    r.u64("size_bytes", g.sizeBytes);
    r.u32("ways", g.ways);
    r.u32("latency", g.latency);
}

} // namespace

Expected<void>
writeFrame(int fd, const std::string &payload)
{
    if (payload.size() > kMaxFrameBytes)
        return simError(ErrorCategory::Internal, "frame payload of ",
                        payload.size(), " bytes exceeds the ",
                        uint64_t(kMaxFrameBytes), "-byte cap");
    std::string msg(4, '\0');
    encodeLen(static_cast<uint32_t>(payload.size()), msg.data());
    msg += payload;
    size_t off = 0;
    while (off < msg.size()) {
        ssize_t n = ::write(fd, msg.data() + off, msg.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return simError(ErrorCategory::IoTransient,
                            "frame write failed (errno ", errno, ")");
        }
        off += static_cast<size_t>(n);
    }
    return {};
}

Expected<std::string>
readFrame(int fd)
{
    auto read_exact = [fd](char *p, size_t n) -> Expected<void> {
        size_t off = 0;
        while (off < n) {
            ssize_t got = ::read(fd, p + off, n - off);
            if (got < 0) {
                if (errno == EINTR)
                    continue;
                return simError(ErrorCategory::Crashed,
                                "frame read failed (errno ", errno, ")");
            }
            if (got == 0)
                return simError(ErrorCategory::Crashed,
                                "pipe closed mid-frame (", off, " of ",
                                n, " bytes)");
            off += static_cast<size_t>(got);
        }
        return {};
    };

    char hdr[4];
    if (auto e = read_exact(hdr, 4); !e.ok())
        return e.error();
    uint32_t len = decodeLen(hdr);
    if (len > kMaxFrameBytes)
        return simError(ErrorCategory::Crashed, "frame length ", len,
                        " exceeds the ", uint64_t(kMaxFrameBytes),
                        "-byte cap (corrupt prefix)");
    std::string payload(len, '\0');
    if (len) {
        if (auto e = read_exact(payload.data(), len); !e.ok())
            return e.error();
    }
    return payload;
}

void
FrameDecoder::feed(const char *data, size_t n)
{
    if (!error_.empty())
        return;
    buf_.append(data, n);
}

int
FrameDecoder::next(std::string *out)
{
    if (!error_.empty())
        return -1;
    if (buf_.size() < 4)
        return 0;
    uint32_t len = decodeLen(buf_.data());
    if (len > kMaxFrameBytes) {
        error_ = "frame length " + std::to_string(len) +
                 " exceeds the 64 MB cap (corrupt prefix)";
        return -1;
    }
    if (buf_.size() < size_t(4) + len)
        return 0;
    out->assign(buf_, 4, len);
    buf_.erase(0, size_t(4) + len);
    return 1;
}

std::string
configToJson(const SimConfig &cfg)
{
    JsonWriter w;
    w.open();
    w.field("name", cfg.name);

    w.object("core");
    w.field("width", uint64_t(cfg.width));
    w.field("rob_size", uint64_t(cfg.robSize));
    w.field("rename_lat", uint64_t(cfg.renameLat));
    w.field("redirect_lat", uint64_t(cfg.redirectLat));
    w.field("num_arch_regs", uint64_t(cfg.numArchRegs));
    w.field("store_queue_size", uint64_t(cfg.storeQueueSize));
    w.field("fwd_latency", uint64_t(cfg.fwdLatency));
    w.field("alu_ports", uint64_t(cfg.aluPorts));
    w.field("load_ports", uint64_t(cfg.loadPorts));
    w.field("store_ports", uint64_t(cfg.storePorts));
    w.field("fp_ports", uint64_t(cfg.fpPorts));
    w.close();

    w.field("has_l2", cfg.hasL2);
    w.field("inclusion", uint64_t(cfg.inclusion));
    geometryJson(w, "l1i", cfg.l1i);
    geometryJson(w, "l1d", cfg.l1d);
    geometryJson(w, "l2", cfg.l2);
    geometryJson(w, "llc", cfg.llc);
    w.field("l1_stride_prefetcher", cfg.l1StridePrefetcher);
    w.field("l2_stream_prefetcher", cfg.l2StreamPrefetcher);
    w.field("stream_degree", uint64_t(cfg.streamDegree));

    w.object("dram");
    w.field("channels", uint64_t(cfg.dram.channels));
    w.field("ranks_per_channel", uint64_t(cfg.dram.ranksPerChannel));
    w.field("banks_per_rank", uint64_t(cfg.dram.banksPerRank));
    w.field("row_bytes", uint64_t(cfg.dram.rowBytes));
    w.field("t_cas", uint64_t(cfg.dram.tCas));
    w.field("t_rcd", uint64_t(cfg.dram.tRcd));
    w.field("t_rp", uint64_t(cfg.dram.tRp));
    w.field("t_ras", uint64_t(cfg.dram.tRas));
    w.field("burst_cycles", uint64_t(cfg.dram.burstCycles));
    w.field("controller_lat", uint64_t(cfg.dram.controllerLat));
    w.field("write_queue_depth", uint64_t(cfg.dram.writeQueueDepth));
    w.field("write_drain_watermark",
            uint64_t(cfg.dram.writeDrainWatermark));
    w.field("write_drain_batch", uint64_t(cfg.dram.writeDrainBatch));
    w.field("t_refi", uint64_t(cfg.dram.tRefi));
    w.field("t_rfc", uint64_t(cfg.dram.tRfc));
    w.close();

    w.object("criticality");
    w.field("enabled", cfg.criticality.enabled);
    w.field("kind", uint64_t(cfg.criticality.kind));
    w.field("table_entries", uint64_t(cfg.criticality.tableEntries));
    w.field("table_ways", uint64_t(cfg.criticality.tableWays));
    w.field("confidence_bits", uint64_t(cfg.criticality.confidenceBits));
    w.field("conf_reset_interval", cfg.criticality.confResetInterval);
    w.field("graph_factor", cfg.criticality.graphFactor);
    w.field("walk_factor", cfg.criticality.walkFactor);
    w.field("latency_quant_shift",
            uint64_t(cfg.criticality.latencyQuantShift));
    w.field("hashed_pc_bits", uint64_t(cfg.criticality.hashedPcBits));
    w.close();

    w.object("tact");
    w.field("cross", cfg.tact.cross);
    w.field("deep_self", cfg.tact.deepSelf);
    w.field("feeder", cfg.tact.feeder);
    w.field("code", cfg.tact.code);
    w.field("trigger_cache_sets", uint64_t(cfg.tact.triggerCacheSets));
    w.field("trigger_cache_ways", uint64_t(cfg.tact.triggerCacheWays));
    w.field("trigger_pcs_per_page",
            uint64_t(cfg.tact.triggerPcsPerPage));
    w.field("cross_train_instances",
            uint64_t(cfg.tact.crossTrainInstances));
    w.field("cross_candidate_wraps",
            uint64_t(cfg.tact.crossCandidateWraps));
    w.field("deep_max_distance", uint64_t(cfg.tact.deepMaxDistance));
    w.field("safe_length_cap", uint64_t(cfg.tact.safeLengthCap));
    w.field("feeder_depth", uint64_t(cfg.tact.feederDepth));
    w.field("code_runahead_lines",
            uint64_t(cfg.tact.codeRunaheadLines));
    w.close();

    w.object("oracle");
    w.field("lat_add_l1", uint64_t(cfg.oracle.latAddL1));
    w.field("lat_add_l2", uint64_t(cfg.oracle.latAddL2));
    w.field("lat_add_llc", uint64_t(cfg.oracle.latAddLlc));
    w.field("demote", uint64_t(cfg.oracle.demote));
    w.field("oracle_prefetch", cfg.oracle.oraclePrefetch);
    w.field("oracle_prefetch_pc_limit",
            uint64_t(cfg.oracle.oraclePrefetchPcLimit));
    w.field("oracle_code_in_l1", cfg.oracle.oracleCodeInL1);
    w.close();

    w.object("sampling");
    w.field("mode", uint64_t(cfg.sampling.mode));
    w.field("interval_instrs", cfg.sampling.intervalInstrs);
    w.field("window_instrs", cfg.sampling.windowInstrs);
    w.field("warmup_instrs", cfg.sampling.warmupInstrs);
    w.close();

    w.field("num_cores", uint64_t(cfg.numCores));
    w.field("seed", cfg.seed);
    w.close();
    return w.str();
}

Expected<SimConfig>
configFromJson(const JsonValue &v)
{
    if (!v.isObject())
        return simError(ErrorCategory::Config,
                        "SimConfig JSON is not an object");
    std::optional<SimError> err;
    Reader r(&v, err, ErrorCategory::Config);
    SimConfig cfg;

    r.str("name", cfg.name);

    Reader core = r.child("core");
    core.u32("width", cfg.width);
    core.u32("rob_size", cfg.robSize);
    core.u32("rename_lat", cfg.renameLat);
    core.u32("redirect_lat", cfg.redirectLat);
    core.u32("num_arch_regs", cfg.numArchRegs);
    core.u32("store_queue_size", cfg.storeQueueSize);
    core.u32("fwd_latency", cfg.fwdLatency);
    core.u32("alu_ports", cfg.aluPorts);
    core.u32("load_ports", cfg.loadPorts);
    core.u32("store_ports", cfg.storePorts);
    core.u32("fp_ports", cfg.fpPorts);

    r.boolean("has_l2", cfg.hasL2);
    r.enumeration("inclusion", cfg.inclusion,
                  uint64_t(InclusionPolicy::Nine));
    geometryFromJson(r.child("l1i"), cfg.l1i);
    geometryFromJson(r.child("l1d"), cfg.l1d);
    geometryFromJson(r.child("l2"), cfg.l2);
    geometryFromJson(r.child("llc"), cfg.llc);
    r.boolean("l1_stride_prefetcher", cfg.l1StridePrefetcher);
    r.boolean("l2_stream_prefetcher", cfg.l2StreamPrefetcher);
    r.u32("stream_degree", cfg.streamDegree);

    Reader dram = r.child("dram");
    dram.u32("channels", cfg.dram.channels);
    dram.u32("ranks_per_channel", cfg.dram.ranksPerChannel);
    dram.u32("banks_per_rank", cfg.dram.banksPerRank);
    dram.u32("row_bytes", cfg.dram.rowBytes);
    dram.u32("t_cas", cfg.dram.tCas);
    dram.u32("t_rcd", cfg.dram.tRcd);
    dram.u32("t_rp", cfg.dram.tRp);
    dram.u32("t_ras", cfg.dram.tRas);
    dram.u32("burst_cycles", cfg.dram.burstCycles);
    dram.u32("controller_lat", cfg.dram.controllerLat);
    dram.u32("write_queue_depth", cfg.dram.writeQueueDepth);
    dram.u32("write_drain_watermark", cfg.dram.writeDrainWatermark);
    dram.u32("write_drain_batch", cfg.dram.writeDrainBatch);
    dram.u32("t_refi", cfg.dram.tRefi);
    dram.u32("t_rfc", cfg.dram.tRfc);

    Reader crit = r.child("criticality");
    crit.boolean("enabled", cfg.criticality.enabled);
    crit.enumeration("kind", cfg.criticality.kind,
                     uint64_t(DetectorKind::Heuristic));
    crit.u32("table_entries", cfg.criticality.tableEntries);
    crit.u32("table_ways", cfg.criticality.tableWays);
    crit.u32("confidence_bits", cfg.criticality.confidenceBits);
    crit.u64("conf_reset_interval", cfg.criticality.confResetInterval);
    crit.f64("graph_factor", cfg.criticality.graphFactor);
    crit.f64("walk_factor", cfg.criticality.walkFactor);
    crit.u32("latency_quant_shift", cfg.criticality.latencyQuantShift);
    crit.u32("hashed_pc_bits", cfg.criticality.hashedPcBits);

    Reader tact = r.child("tact");
    tact.boolean("cross", cfg.tact.cross);
    tact.boolean("deep_self", cfg.tact.deepSelf);
    tact.boolean("feeder", cfg.tact.feeder);
    tact.boolean("code", cfg.tact.code);
    tact.u32("trigger_cache_sets", cfg.tact.triggerCacheSets);
    tact.u32("trigger_cache_ways", cfg.tact.triggerCacheWays);
    tact.u32("trigger_pcs_per_page", cfg.tact.triggerPcsPerPage);
    tact.u32("cross_train_instances", cfg.tact.crossTrainInstances);
    tact.u32("cross_candidate_wraps", cfg.tact.crossCandidateWraps);
    tact.u32("deep_max_distance", cfg.tact.deepMaxDistance);
    tact.u32("safe_length_cap", cfg.tact.safeLengthCap);
    tact.u32("feeder_depth", cfg.tact.feederDepth);
    tact.u32("code_runahead_lines", cfg.tact.codeRunaheadLines);

    Reader oracle = r.child("oracle");
    oracle.u32("lat_add_l1", cfg.oracle.latAddL1);
    oracle.u32("lat_add_l2", cfg.oracle.latAddL2);
    oracle.u32("lat_add_llc", cfg.oracle.latAddLlc);
    oracle.enumeration("demote", cfg.oracle.demote,
                       uint64_t(DemoteMode::LlcToMemNonCrit));
    oracle.boolean("oracle_prefetch", cfg.oracle.oraclePrefetch);
    oracle.u32("oracle_prefetch_pc_limit",
               cfg.oracle.oraclePrefetchPcLimit);
    oracle.boolean("oracle_code_in_l1", cfg.oracle.oracleCodeInL1);

    Reader sampling = r.child("sampling");
    sampling.enumeration("mode", cfg.sampling.mode,
                         uint64_t(SampleMode::Sampled));
    sampling.u64("interval_instrs", cfg.sampling.intervalInstrs);
    sampling.u64("window_instrs", cfg.sampling.windowInstrs);
    sampling.u64("warmup_instrs", cfg.sampling.warmupInstrs);

    r.u32("num_cores", cfg.numCores);
    r.u64("seed", cfg.seed);

    if (err)
        return *err;
    return cfg;
}

uint64_t
configDigest(const SimConfig &cfg)
{
    // The name is a label, not content: a renamed config simulates
    // identically, so its store cells stay valid (sim/result_store.hh).
    SimConfig canon = cfg;
    canon.name.clear();
    std::string json = configToJson(canon);
    return fnv1a(json.data(), json.size());
}

std::string
buildWorkerRequest(const SimConfig &cfg, const std::string &workload,
                   uint64_t instrs, uint64_t warmup,
                   unsigned attemptBase, const IsolationOptions &opts)
{
    JsonWriter w;
    w.open();
    w.field("type", std::string("request"));
    w.field("workload", workload);
    w.field("instrs", instrs);
    w.field("warmup", warmup);
    w.field("attempt_base", uint64_t(attemptBase));
    w.field("max_attempts", uint64_t(opts.maxAttempts));
    w.field("backoff_ms", uint64_t(opts.backoffMs));
    w.field("profile", opts.profile);
    w.field("max_cycles", opts.budget.maxCycles);
    w.field("stall_window", opts.budget.stallWindowCycles);
    w.field("heartbeat_ms", uint64_t(opts.heartbeatMs));
    w.rawField("config", configToJson(cfg));
    w.close();
    return w.str();
}

Expected<WorkerRequest>
parseWorkerRequest(const std::string &json)
{
    auto parsed = parseJson(json);
    if (!parsed.ok())
        return simError(ErrorCategory::Config,
                        "bad worker request: ", parsed.error().message);
    const JsonValue &v = parsed.value();
    std::optional<SimError> err;
    Reader r(&v, err, ErrorCategory::Config);

    std::string type;
    r.str("type", type);
    if (!err && type != "request")
        return simError(ErrorCategory::Config,
                        "worker request has type '", type, "'");

    WorkerRequest req;
    r.str("workload", req.workload);
    r.u64("instrs", req.instrs);
    r.u64("warmup", req.warmup);
    uint64_t attempt_base = 1, max_attempts = 1, backoff = 0;
    uint64_t heartbeat = 1000;
    r.u64("attempt_base", attempt_base);
    r.u64("max_attempts", max_attempts);
    r.u64("backoff_ms", backoff);
    r.boolean("profile", req.opts.profile);
    r.u64("max_cycles", req.opts.budget.maxCycles);
    r.u64("stall_window", req.opts.budget.stallWindowCycles);
    r.u64("heartbeat_ms", heartbeat);
    const JsonValue *cfg_obj = r.raw("config", JsonValue::Kind::Object);
    if (err)
        return *err;
    req.attemptBase = static_cast<unsigned>(std::max<uint64_t>(
        1, attempt_base));
    req.opts.maxAttempts = static_cast<unsigned>(std::max<uint64_t>(
        1, max_attempts));
    req.opts.backoffMs = static_cast<unsigned>(backoff);
    req.opts.heartbeatMs = static_cast<unsigned>(std::max<uint64_t>(
        1, heartbeat));
    auto cfg = configFromJson(*cfg_obj);
    if (!cfg.ok())
        return cfg.error();
    req.cfg = std::move(cfg).value();
    return req;
}

std::string
buildWorkerResult(const RunOutcome &out)
{
    JsonWriter w;
    w.open();
    w.field("type", std::string("result"));
    w.field("workload", out.workload);
    w.field("config", out.config);
    w.field("status", std::string(runStatusName(out.status)));
    w.field("attempts", uint64_t(out.attempts));
    if (out.ok()) {
        w.rawField("result", out.result.toJson());
        if (out.profile) {
            w.object("hostPerf");
            w.field("trace_gen_sec", out.profile->traceGenSec);
            w.field("warmup_sec", out.profile->warmupSec);
            w.field("measured_sec", out.profile->measuredSec);
            w.field("peak_rss_bytes", out.profile->peakRssBytes);
            w.field("store_hit_chunks", out.profile->storeHitChunks);
            w.field("store_miss_chunks", out.profile->storeMissChunks);
            w.field("warm_state_hits", out.profile->warmStateHits);
            w.field("warm_state_misses", out.profile->warmStateMisses);
            w.field("warm_state_bytes", out.profile->warmStateBytes);
            w.field("warm_state_window_hits",
                    out.profile->warmStateWindowHits);
            w.field("warm_state_window_misses",
                    out.profile->warmStateWindowMisses);
            w.field("warm_state_window_bytes",
                    out.profile->warmStateWindowBytes);
            w.close();
        }
    } else {
        w.object("error");
        w.field("category", std::string(errorCategoryName(
                                out.failure->error.category)));
        w.field("message", out.failure->error.message);
        w.close();
    }
    w.close();
    return w.str();
}

Expected<RunOutcome>
parseWorkerResult(const std::string &json)
{
    auto parsed = parseJson(json);
    if (!parsed.ok())
        return simError(ErrorCategory::Crashed,
                        "bad worker result: ", parsed.error().message);
    const JsonValue &v = parsed.value();
    std::optional<SimError> err;
    Reader r(&v, err, ErrorCategory::Crashed);

    std::string type, status;
    r.str("type", type);
    if (!err && type != "result")
        return simError(ErrorCategory::Crashed,
                        "worker sent a '", type,
                        "' frame where a result was expected");
    RunOutcome out;
    r.str("workload", out.workload);
    r.str("config", out.config);
    r.str("status", status);
    uint64_t attempts = 1;
    r.u64("attempts", attempts);
    if (err)
        return *err;
    out.attempts = static_cast<unsigned>(std::max<uint64_t>(1, attempts));
    auto st = runStatusFromName(status);
    if (!st)
        return simError(ErrorCategory::Crashed,
                        "worker result has unknown status '", status,
                        "'");
    out.status = *st;
    if (out.ok()) {
        const JsonValue *res = r.raw("result", JsonValue::Kind::Object);
        if (err)
            return *err;
        auto sim = SimResult::fromJson(*res);
        if (!sim.ok())
            return simError(ErrorCategory::Crashed,
                            "worker result payload corrupt: ",
                            sim.error().message);
        out.result = std::move(sim).value();
        if (r.has("hostPerf")) {
            Reader hp = r.child("hostPerf");
            RunProfile prof;
            hp.f64("trace_gen_sec", prof.traceGenSec);
            hp.f64("warmup_sec", prof.warmupSec);
            hp.f64("measured_sec", prof.measuredSec);
            hp.u64("peak_rss_bytes", prof.peakRssBytes);
            hp.u64("store_hit_chunks", prof.storeHitChunks);
            hp.u64("store_miss_chunks", prof.storeMissChunks);
            hp.u64("warm_state_hits", prof.warmStateHits);
            hp.u64("warm_state_misses", prof.warmStateMisses);
            hp.u64("warm_state_bytes", prof.warmStateBytes);
            hp.u64("warm_state_window_hits", prof.warmStateWindowHits);
            hp.u64("warm_state_window_misses",
                   prof.warmStateWindowMisses);
            hp.u64("warm_state_window_bytes", prof.warmStateWindowBytes);
            if (err)
                return *err;
            out.profile = prof;
        }
    } else {
        Reader e = r.child("error");
        std::string category, message;
        e.str("category", category);
        e.str("message", message);
        if (err)
            return *err;
        auto cat = errorCategoryFromName(category);
        if (!cat)
            return simError(ErrorCategory::Crashed,
                            "worker failure has unknown category '",
                            category, "'");
        out.failure = RunFailure{SimError{*cat, message}, out.attempts};
    }
    return out;
}

bool
isHeartbeatFrame(const std::string &json)
{
    auto parsed = parseJson(json);
    if (!parsed.ok() || !parsed.value().isObject())
        return false;
    const JsonValue *type = parsed.value().member("type");
    return type && type->kind() == JsonValue::Kind::String &&
           type->asString() == "heartbeat";
}

std::string
heartbeatPayload()
{
    JsonWriter w;
    w.open();
    w.field("type", std::string("heartbeat"));
    w.close();
    return w.str();
}

int
workerMain()
{
    // A dead supervisor must surface as a write error, not SIGPIPE
    // death: the run result is already lost either way, but an orderly
    // exit keeps worker diagnostics meaningful.
    signal(SIGPIPE, SIG_IGN);

    auto fail = [](SimError err) {
        RunOutcome out;
        out.status = RunStatus::Failed;
        out.failure = RunFailure{std::move(err), 1};
        // Best effort: if stdout is also broken there is nobody to
        // tell, and the supervisor classifies the silent death.
        (void)writeFrame(STDOUT_FILENO, buildWorkerResult(out));
        return 1;
    };

    auto raw = readFrame(STDIN_FILENO);
    if (!raw.ok())
        return fail(simError(ErrorCategory::Internal,
                             "worker could not read its request: ",
                             raw.error().message));
    auto req = parseWorkerRequest(raw.value());
    if (!req.ok())
        return fail(simError(ErrorCategory::Internal,
                             "worker rejected its request: ",
                             req.error().message));
    WorkerRequest r = std::move(req).value();

    // Process-level fault injection, counted by process attempt: a
    // ':xN' clause crashes the first N spawns and lets restart N+1
    // through. The plan arrives via the inherited environment.
    const FaultPlan &plan = FaultPlan::global();
    if (plan.shouldInject(FaultKind::CrashAbort, r.workload,
                          r.attemptBase))
        std::abort(); // catch-lint: allow(fatal-boundary) injected crash
    if (plan.shouldInject(FaultKind::CrashSegv, r.workload,
                          r.attemptBase))
        raise(SIGSEGV);
    if (plan.shouldInject(FaultKind::Oom, r.workload, r.attemptBase))
        raise(SIGKILL); // the OOM killer's signal, without the memory
    const bool stalled = plan.shouldInject(FaultKind::HeartbeatStall,
                                           r.workload, r.attemptBase);
    if (stalled) {
        // Silent forever: no heartbeat thread, no result. Only the
        // supervisor's wall-clock watchdog can end this process.
        for (;;)
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    // The heartbeat thread owns stdout until the run finishes; the
    // result frame is written only after join(), so frames never
    // interleave. The first beat goes out immediately, telling the
    // supervisor the exec succeeded.
    std::atomic<bool> done{false};
    std::thread heartbeat([&done, period = r.opts.heartbeatMs] {
        const std::string beat = heartbeatPayload();
        while (!done.load(std::memory_order_relaxed)) {
            if (!writeFrame(STDOUT_FILENO, beat).ok())
                return; // supervisor gone; SIGKILL will follow
            unsigned slept = 0;
            while (slept < period &&
                   !done.load(std::memory_order_relaxed)) {
                unsigned slice = std::min(50u, period - slept);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(slice));
                slept += slice;
            }
        }
    });

    RunOutcome out = executeContainedRun(r.cfg, r.workload, r.instrs,
                                         r.warmup, r.opts,
                                         ChunkStore::global(),
                                         WarmStateStore::global());
    done.store(true, std::memory_order_relaxed);
    heartbeat.join();

    return writeFrame(STDOUT_FILENO, buildWorkerResult(out)).ok() ? 0
                                                                  : 1;
}

} // namespace catchsim
