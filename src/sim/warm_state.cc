#include "sim/warm_state.hh"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>
#include <vector>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/state_io.hh"
#include "trace/trace_io.hh"

namespace catchsim
{

namespace
{

// Snapshot-record magic, distinct from trace files ("CTSIM\0") and
// chunk records ("CTCHK\0") so a misplaced file of any kind is rejected
// by the first six bytes.
constexpr char kWarmStateMagic[6] = {'C', 'W', 'A', 'R', 'M', '\0'};

// Fixed prefix of a snapshot record before the kernel-name bytes:
// magic, u32 version, u64 seed, u64 boundary, u64 total, u64 chunk,
// u64 digest, u64 window index, u64 schedule digest, u32 name len.
constexpr uint64_t kWarmHeaderBytes =
    sizeof(kWarmStateMagic) + 4 + 8 + 8 + 8 + 8 + 8 + 8 + 8 + 4;

// After the name: u64 payload length, payload, u64 FNV-1a checksum.
// The payload itself is [u64 blob len][blob bytes][u64 page count]
// [(u64 page addr, 4096-byte raw page) x count], pages in strictly
// ascending address order. Raw pages keep the record memcpy-parseable:
// a restore allocates shared handles straight off the mapped buffer
// with no per-word decode.
constexpr uint64_t kWarmTrailerBytes = 8 + 8;

// Per-page cost inside the payload: address + raw page data.
constexpr uint64_t kPageRecordBytes =
    8 + sizeof(FunctionalMemory::Page);

void
putBytes(std::vector<uint8_t> &out, size_t at, const void *src, size_t n)
{
    std::memcpy(out.data() + at, src, n);
}

struct FileCloser
{
    void operator()(std::FILE *f) const { std::fclose(f); }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

std::string
hex16(uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

// --- warming-visible config digest -------------------------------------

/**
 * The digest serializes, in a fixed order, exactly the knobs warming
 * can observe. Everything else — cache latencies, oracle latency
 * adders and demotion, DRAM timing, core width/ROB/ports, the sampling
 * schedule — is warming-invisible by construction (warm fills stamp
 * readyAt 0 and the clock never advances during warming) and is
 * deliberately left out so timing resweeps share snapshots. The
 * catch_analyze warm-digest scope checks that exclusion list against
 * the warming call graph; extend this function whenever a new knob
 * becomes reachable from warmAccess/warmTrain/TACT-learning code.
 *
 * Only the global-warmup snapshot (windowIndex 0) uses this digest.
 * Window-boundary snapshots carry the FULL config digest instead
 * (worker_proto.hh configDigest): their state embeds detailed-window
 * execution, which every timing knob reaches.
 */
uint64_t
warmConfigDigest(const SimConfig &cfg)
{
    StateSink s;
    // Layout salt: bumping the format version re-keys digests too.
    s.u32(kWarmStateFormatVersion);

    // Hierarchy shape: geometry (not latency) decides tag/replacement
    // state; inclusion decides the eviction/back-invalidate flow.
    s.boolean(cfg.hasL2);
    s.u8(static_cast<uint8_t>(cfg.inclusion));
    s.u32(cfg.numCores);
    for (const CacheGeometry *g : {&cfg.l1i, &cfg.l1d, &cfg.l2, &cfg.llc}) {
        s.u64(g->sizeBytes);
        s.u32(g->ways);
    }
    // Replacement RNG seeding (hierarchy construction).
    s.u64(cfg.seed);

    // Baseline prefetchers train during warming.
    s.boolean(cfg.l1StridePrefetcher);
    s.boolean(cfg.l2StreamPrefetcher);
    s.u32(cfg.streamDegree);

    // Criticality detection: conservative full inclusion — the table
    // shapes what TACT treats as critical while learning.
    s.boolean(cfg.criticality.enabled);
    s.u8(static_cast<uint8_t>(cfg.criticality.kind));
    s.u32(cfg.criticality.tableEntries);
    s.u32(cfg.criticality.tableWays);
    s.u32(cfg.criticality.confidenceBits);
    s.u64(cfg.criticality.confResetInterval);
    s.u64(static_cast<uint64_t>(cfg.criticality.graphFactor * 1024));
    s.u64(static_cast<uint64_t>(cfg.criticality.walkFactor * 1024));
    s.u32(cfg.criticality.latencyQuantShift);
    s.u32(cfg.criticality.hashedPcBits);

    // TACT learners run (learning-only) during warming.
    s.boolean(cfg.tact.cross);
    s.boolean(cfg.tact.deepSelf);
    s.boolean(cfg.tact.feeder);
    s.boolean(cfg.tact.code);
    s.u32(cfg.tact.triggerCacheSets);
    s.u32(cfg.tact.triggerCacheWays);
    s.u32(cfg.tact.triggerPcsPerPage);
    s.u32(cfg.tact.crossTrainInstances);
    s.u32(cfg.tact.crossCandidateWraps);
    s.u32(cfg.tact.deepMaxDistance);
    s.u32(cfg.tact.safeLengthCap);
    s.u32(cfg.tact.feederDepth);
    s.u32(cfg.tact.codeRunaheadLines);

    // Oracle knobs that inject or suppress warm fills (the latency
    // adders and demotion modes are timing-only and excluded).
    s.boolean(cfg.oracle.oraclePrefetch);
    s.u32(cfg.oracle.oraclePrefetchPcLimit);
    s.boolean(cfg.oracle.oracleCodeInL1);

    return fnv1a(s.bytes().data(), s.size());
}

/**
 * Everything the window-boundary placement depends on: the mode plus
 * the three schedule knobs. The per-period warming split (Weyl-
 * staggered pre/post) is a pure function of these and the period
 * index, so two runs with equal schedule digests place every detailed
 * window — and therefore every window-boundary snapshot — at the same
 * instruction positions.
 */
uint64_t
sampleScheduleDigest(const SamplingConfig &sc)
{
    StateSink s;
    // Layout salt: bumping the format version re-keys digests too.
    s.u32(kWarmStateFormatVersion);
    s.u8(static_cast<uint8_t>(sc.mode));
    s.u64(sc.intervalInstrs);
    s.u64(sc.windowInstrs);
    s.u64(sc.warmupInstrs);
    return fnv1a(s.bytes().data(), s.size());
}

// --- WarmStateStore -----------------------------------------------------

WarmStateStore::WarmStateStore() : WarmStateStore(Config()) {}

WarmStateStore::~WarmStateStore() = default;

WarmStateStore::WarmStateStore(Config cfg)
    : cfg_(std::move(cfg))
{
    if (!cfg_.diskDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(cfg_.diskDir, ec);
        if (ec) {
            warn("warm-state store: cannot create cache dir '",
                 cfg_.diskDir, "': ", ec.message(),
                 " — disk tier disabled");
            cfg_.diskDir.clear();
        }
    }
}

std::string
WarmStateStore::mapKey(const WarmStateKey &key)
{
    return key.kernel + '|' + std::to_string(key.seed) + '|' +
           std::to_string(key.boundaryOps) + '|' +
           std::to_string(key.totalOps) + '|' +
           std::to_string(key.chunkOps) + '|' +
           std::to_string(key.configDigest) + '|' +
           std::to_string(key.windowIndex) + '|' +
           std::to_string(key.scheduleDigest);
}

std::string
WarmStateStore::diskPath(const WarmStateKey &key) const
{
    return cfg_.diskDir + '/' + key.kernel + "-s" +
           std::to_string(key.seed) + "-b" +
           std::to_string(key.boundaryOps) + "-t" +
           std::to_string(key.totalOps) + "-c" +
           std::to_string(key.chunkOps) + "-d" + hex16(key.configDigest) +
           "-w" + std::to_string(key.windowIndex) + "-g" +
           hex16(key.scheduleDigest) + "-v" +
           std::to_string(kWarmStateFormatVersion) + ".cws";
}

WarmStateStore::SnapshotPtr
WarmStateStore::find(const WarmStateKey &key)
{
    const std::string mk = mapKey(key);
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = map_.find(mk);
        if (it != map_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            ++stats_.hits;
            if (key.windowIndex > 0)
                ++stats_.windowHits;
            return it->second->snap;
        }
    }
    if (!cfg_.diskDir.empty()) {
        auto loaded = loadDiskChecked(key);
        if (loaded.ok()) {
            SnapshotPtr snap = std::move(loaded).value();
            std::lock_guard<std::mutex> lock(mu_);
            auto it = map_.find(mk);
            if (it != map_.end()) {
                // A writer published while we read the file; serve the
                // resident copy (the bytes are identical either way).
                lru_.splice(lru_.begin(), lru_, it->second);
                snap = it->second->snap;
            } else {
                lru_.push_front(Entry{mk, snap}); // catch-lint: allow(step-alloc) once per restored snapshot, not per cycle
                map_[mk] = lru_.begin();
                chargeLocked(*snap);
                evictOverBudgetLocked();
            }
            ++stats_.hits;
            ++stats_.diskHits;
            if (key.windowIndex > 0)
                ++stats_.windowHits;
            return snap;
        }
        const SimError &e = loaded.error();
        if (e.category == ErrorCategory::TraceCorrupt) {
            // Contain, don't crash: drop the bad record so the slot is
            // republished from a fresh warm, and report a miss — the
            // caller re-warms deterministically.
            warn(e.message, " — dropping the snapshot and re-warming");
            std::remove(diskPath(key).c_str());
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.corrupt;
        }
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    if (key.windowIndex > 0)
        ++stats_.windowMisses;
    return nullptr;
}

WarmStateStore::SnapshotPtr
WarmStateStore::put(const WarmStateKey &key, WarmSnapshot snap)
{
    const std::string mk = mapKey(key);
    SnapshotPtr s;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = map_.find(mk);
        if (it != map_.end()) {
            // First writer wins; every writer holds identical bytes.
            lru_.splice(lru_.begin(), lru_, it->second);
            return it->second->snap;
        }
        s = std::make_shared<const WarmSnapshot>(std::move(snap)); // catch-lint: allow(step-alloc) once per published snapshot, not per cycle
        lru_.push_front(Entry{mk, s}); // catch-lint: allow(step-alloc) once per published snapshot, not per cycle
        map_[mk] = lru_.begin();
        chargeLocked(*s);
        ++stats_.puts;
        evictOverBudgetLocked();
    }
    if (!cfg_.diskDir.empty()) {
        auto w = writeDisk(key, *s);
        if (!w.ok())
            warn(w.error().message,
                 " — disk tier skipped for this snapshot");
    }
    return s;
}

void
WarmStateStore::remove(const WarmStateKey &key)
{
    const std::string mk = mapKey(key);
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = map_.find(mk);
        if (it != map_.end()) {
            releaseLocked(*it->second->snap);
            lru_.erase(it->second);
            map_.erase(it);
        }
    }
    if (!cfg_.diskDir.empty())
        std::remove(diskPath(key).c_str());
}

void
WarmStateStore::evictOverBudgetLocked()
{
    // Never evict below one resident snapshot: the entry just inserted
    // must survive long enough to be returned to its requester.
    while (residentBytes_ > cfg_.memBudgetBytes && lru_.size() > 1) {
        const Entry &victim = lru_.back();
        releaseLocked(*victim.snap);
        map_.erase(victim.mapKey);
        lru_.pop_back();
        ++stats_.evictions;
    }
}

void
WarmStateStore::chargeLocked(const WarmSnapshot &snap)
{
    residentBytes_ += snap.bytes.size() + snap.pages.size() * sizeof(Addr);
    for (const auto &kv : snap.pages)
        if (++pageRefs_[kv.second.get()] == 1)
            residentBytes_ += sizeof(FunctionalMemory::Page);
}

void
WarmStateStore::releaseLocked(const WarmSnapshot &snap)
{
    residentBytes_ -= snap.bytes.size() + snap.pages.size() * sizeof(Addr);
    for (const auto &kv : snap.pages) {
        auto it = pageRefs_.find(kv.second.get());
        CATCHSIM_ASSERT(it != pageRefs_.end(),
                        "releasing a page the store never charged");
        if (--it->second == 0) {
            pageRefs_.erase(it);
            residentBytes_ -= sizeof(FunctionalMemory::Page);
        }
    }
}

Expected<void>
WarmStateStore::writeDisk(const WarmStateKey &key, const WarmSnapshot &snap)
{
    const std::string path = diskPath(key);
    {
        // Already persisted (by an earlier run or another worker racing
        // on the same identity): the bytes are canonical, keep them.
        FilePtr probe(std::fopen(path.c_str(), "rb"));
        if (probe)
            return {};
    }
    const uint64_t payload_len = 8 + snap.bytes.size() + 8 +
                                 snap.pages.size() * kPageRecordBytes;
    const uint64_t total = kWarmHeaderBytes + key.kernel.size() +
                           kWarmTrailerBytes + payload_len;
    std::vector<uint8_t> out(total);
    size_t at = 0;
    putBytes(out, at, kWarmStateMagic, sizeof(kWarmStateMagic));
    at += sizeof(kWarmStateMagic);
    const uint32_t version = kWarmStateFormatVersion;
    putBytes(out, at, &version, 4);
    at += 4;
    putBytes(out, at, &key.seed, 8);
    at += 8;
    putBytes(out, at, &key.boundaryOps, 8);
    at += 8;
    putBytes(out, at, &key.totalOps, 8);
    at += 8;
    putBytes(out, at, &key.chunkOps, 8);
    at += 8;
    putBytes(out, at, &key.configDigest, 8);
    at += 8;
    putBytes(out, at, &key.windowIndex, 8);
    at += 8;
    putBytes(out, at, &key.scheduleDigest, 8);
    at += 8;
    const uint32_t name_len = static_cast<uint32_t>(key.kernel.size());
    putBytes(out, at, &name_len, 4);
    at += 4;
    putBytes(out, at, key.kernel.data(), key.kernel.size());
    at += key.kernel.size();
    putBytes(out, at, &payload_len, 8);
    at += 8;
    const uint64_t blob_len = snap.bytes.size();
    putBytes(out, at, &blob_len, 8);
    at += 8;
    putBytes(out, at, snap.bytes.data(), snap.bytes.size());
    at += snap.bytes.size();
    const uint64_t page_count = snap.pages.size();
    putBytes(out, at, &page_count, 8);
    at += 8;
    for (const auto &kv : snap.pages) {
        putBytes(out, at, &kv.first, 8);
        at += 8;
        putBytes(out, at, kv.second->words, sizeof(FunctionalMemory::Page));
        at += sizeof(FunctionalMemory::Page);
    }
    const uint64_t sum = fnv1a(out.data(), at);
    putBytes(out, at, &sum, 8);
    at += 8;
    CATCHSIM_ASSERT(at == total, "snapshot record layout mismatch");

    // Write to a unique temp name, then rename: readers only ever see
    // complete, checksummed records, even across concurrent writers.
    const std::string tmp =
        path + ".tmp" +
        std::to_string(tmpSerial_.fetch_add(1, std::memory_order_relaxed));
    FilePtr f(std::fopen(tmp.c_str(), "wb"));
    if (!f)
        return simError(ErrorCategory::IoTransient,
                        "warm-state store: cannot open '", tmp,
                        "' for writing");
    if (std::fwrite(out.data(), 1, out.size(), f.get()) != out.size() ||
        std::fflush(f.get()) != 0) {
        f.reset();
        std::remove(tmp.c_str());
        return simError(ErrorCategory::IoTransient,
                        "warm-state store: write to '", tmp, "' failed");
    }
    f.reset();
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return simError(ErrorCategory::IoTransient,
                        "warm-state store: cannot rename '", tmp,
                        "' to '", path, "'");
    }
    return {};
}

Expected<WarmStateStore::SnapshotPtr>
WarmStateStore::loadDiskChecked(const WarmStateKey &key)
{
    const std::string path = diskPath(key);
    auto corrupt = [&path](auto &&...what) {
        return simError(ErrorCategory::TraceCorrupt, "snapshot file '",
                        path, "': ", what...);
    };
    // Deterministic fault injection: the reserved "warm-state-store"
    // target corrupts every disk read, and "warm-state-window" only the
    // window-boundary (mid-campaign) ones, so CI can drive both
    // containment paths (drop + re-warm) without real bit flips.
    if (cfg_.plan &&
        cfg_.plan->shouldInject(FaultKind::StateCorrupt,
                                "warm-state-store"))
        return corrupt("injected warm-state corruption");
    if (key.windowIndex > 0 && cfg_.plan &&
        cfg_.plan->shouldInject(FaultKind::StateCorrupt,
                                "warm-state-window"))
        return corrupt("injected window-boundary corruption");

    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return simError(ErrorCategory::Config, "no snapshot file '",
                        path, "'");
    // The payload length is variable (the page map grows with the
    // workload), so only a lower bound is known before the header is
    // read; the checksum still covers every byte before anything in
    // the record is trusted.
    const uint64_t least = kWarmHeaderBytes + key.kernel.size() +
                           kWarmTrailerBytes + 8 + 8;
    if (std::fseek(f.get(), 0, SEEK_END) != 0)
        return simError(ErrorCategory::IoTransient, "cannot seek in '",
                        path, "'");
    const long told = std::ftell(f.get());
    if (told < 0)
        return simError(ErrorCategory::IoTransient, "cannot size '",
                        path, "'");
    if (static_cast<uint64_t>(told) < least)
        return corrupt(told, " bytes on disk, expected at least ", least,
                       " (truncated or foreign record)");
    std::rewind(f.get());
    std::vector<uint8_t> buf(static_cast<uint64_t>(told));
    if (std::fread(buf.data(), 1, buf.size(), f.get()) != buf.size())
        return corrupt("short read of ", buf.size(), " bytes");

    uint64_t sum = 0;
    std::memcpy(&sum, buf.data() + buf.size() - 8, 8);
    if (fnv1a(buf.data(), buf.size() - 8) != sum)
        return corrupt("FNV-1a checksum mismatch (bit flip?)");

    size_t at = 0;
    if (std::memcmp(buf.data(), kWarmStateMagic,
                    sizeof(kWarmStateMagic)) != 0)
        return corrupt("bad magic");
    at += sizeof(kWarmStateMagic);
    uint32_t version = 0;
    std::memcpy(&version, buf.data() + at, 4);
    at += 4;
    if (version != kWarmStateFormatVersion)
        return corrupt("unsupported version ", version, ", expected ",
                       kWarmStateFormatVersion);
    uint64_t seed = 0;
    std::memcpy(&seed, buf.data() + at, 8);
    at += 8;
    uint64_t boundary = 0;
    std::memcpy(&boundary, buf.data() + at, 8);
    at += 8;
    uint64_t total_ops = 0;
    std::memcpy(&total_ops, buf.data() + at, 8);
    at += 8;
    uint64_t chunk_ops = 0;
    std::memcpy(&chunk_ops, buf.data() + at, 8);
    at += 8;
    uint64_t digest = 0;
    std::memcpy(&digest, buf.data() + at, 8);
    at += 8;
    uint64_t window_index = 0;
    std::memcpy(&window_index, buf.data() + at, 8);
    at += 8;
    uint64_t schedule_digest = 0;
    std::memcpy(&schedule_digest, buf.data() + at, 8);
    at += 8;
    uint32_t name_len = 0;
    std::memcpy(&name_len, buf.data() + at, 4);
    at += 4;
    if (seed != key.seed || boundary != key.boundaryOps ||
        total_ops != key.totalOps || chunk_ops != key.chunkOps ||
        digest != key.configDigest || window_index != key.windowIndex ||
        schedule_digest != key.scheduleDigest ||
        name_len != key.kernel.size() ||
        std::memcmp(buf.data() + at, key.kernel.data(), name_len) != 0)
        return corrupt("header does not match the requested key");
    at += name_len;
    uint64_t payload_len = 0;
    std::memcpy(&payload_len, buf.data() + at, 8);
    at += 8;
    if (payload_len != buf.size() - at - 8)
        return corrupt("payload length ", payload_len,
                       " disagrees with the record size");
    const size_t payload_end = at + payload_len;

    uint64_t blob_len = 0;
    std::memcpy(&blob_len, buf.data() + at, 8);
    at += 8;
    if (blob_len > payload_end - at - 8)
        return corrupt("component blob length ", blob_len,
                       " overruns the payload");
    auto snap = std::make_shared<WarmSnapshot>(); // catch-lint: allow(step-alloc) once per restored snapshot, not per cycle
    snap->bytes.assign( // catch-lint: allow(step-alloc) once per restored snapshot
        reinterpret_cast<const char *>(buf.data()) + at, blob_len);
    at += blob_len;
    uint64_t page_count = 0;
    std::memcpy(&page_count, buf.data() + at, 8);
    at += 8;
    if (payload_end - at != page_count * kPageRecordBytes)
        return corrupt("page section of ", payload_end - at,
                       " bytes disagrees with page count ", page_count);
    snap->pages.reserve(page_count); // catch-lint: allow(step-alloc) sized once per restored snapshot
    Addr prev = 0;
    for (uint64_t i = 0; i < page_count; ++i) {
        Addr a = 0;
        std::memcpy(&a, buf.data() + at, 8);
        at += 8;
        if (i > 0 && a <= prev)
            return corrupt("page addresses are not strictly ascending");
        prev = a;
        auto p = std::make_shared<FunctionalMemory::Page>(); // catch-lint: allow(step-alloc) once per restored page, off the per-cycle path
        std::memcpy(p->words, buf.data() + at,
                    sizeof(FunctionalMemory::Page));
        at += sizeof(FunctionalMemory::Page);
        snap->pages.emplace_back(a, std::move(p)); // catch-lint: allow(step-alloc) fills the reservation above
    }

    return SnapshotPtr(std::move(snap));
}

WarmStateStore::Stats
WarmStateStore::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

size_t
WarmStateStore::residentBytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return residentBytes_;
}

// --- process-wide store ------------------------------------------------

WarmStateStore *
WarmStateStore::global()
{
    // Leaked singleton (never destructed), mirroring ChunkStore: the
    // store may still serve snapshots while static destructors run.
    static WarmStateStore *const store = []() -> WarmStateStore * {
        const std::string dir = envString("CATCH_WARM_STATE_CACHE");
        if (!envFlag("CATCH_WARM_STATE") && dir.empty())
            return nullptr;
        Config cfg;
        cfg.memBudgetBytes = envU64("CATCH_WARM_STATE_MB", 128) << 20;
        cfg.diskDir = dir;
        cfg.perWindow = envU64("CATCH_WARM_STATE_WINDOWS", 1) != 0;
        cfg.minWindowGapInstrs =
            envU64("CATCH_WARM_STATE_MIN_GAP", cfg.minWindowGapInstrs);
        cfg.maxWindowPages =
            envU64("CATCH_WARM_STATE_MAX_PAGES", cfg.maxWindowPages);
        cfg.plan = &FaultPlan::global();
        return new WarmStateStore(std::move(cfg)); // catch-lint: allow(raw-new-delete) intentionally leaked process singleton
    }();
    return store;
}

} // namespace catchsim
