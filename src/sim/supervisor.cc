#include "sim/supervisor.hh"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <numeric>
#include <optional>
#include <thread>

#include "common/fault_inject.hh"
#include "common/host_clock.hh"
#include "common/logging.hh"
#include "sim/journal.hh"
#include "sim/result_store.hh"
#include "sim/worker_proto.hh"
#include "trace/suite.hh"

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

namespace catchsim
{

namespace
{

/** Exit code reserved for "exec itself failed" in the child. */
constexpr int kExecFailExit = 127;

/**
 * Ignores SIGPIPE for the supervisor's lifetime and restores the old
 * disposition on exit: a worker that dies before reading its request
 * must surface as a write error / EOF classification, not kill the
 * campaign. Scoped save/restore — no global signal state leaks out.
 */
class SigpipeGuard
{
  public:
    SigpipeGuard()
    {
        struct sigaction ignore = {};
        ignore.sa_handler = SIG_IGN;
        sigaction(SIGPIPE, &ignore, &saved_);
    }

    ~SigpipeGuard() { sigaction(SIGPIPE, &saved_, nullptr); }

    SigpipeGuard(const SigpipeGuard &) = delete;
    SigpipeGuard &operator=(const SigpipeGuard &) = delete;

  private:
    struct sigaction saved_ = {};
};

/** One live worker process and its stream-reassembly state. */
struct WorkerProc
{
    pid_t pid = -1;
    int outFd = -1; ///< read end of the worker's stdout
    size_t runIndex = 0;
    unsigned processAttempt = 1;
    double deadline = 0; ///< hostSeconds() past which the worker hangs
    bool killedForTimeout = false;
    bool gotResult = false;
    std::string protocolError; ///< non-empty: stream was corrupt
    RunOutcome result;         ///< valid iff gotResult
    FrameDecoder decoder;
};

/**
 * fork/execs one worker and sends it its request. The worker inherits
 * the environment (fault plan, chunk-store knobs) and the supervisor's
 * stderr; its stdin/stdout carry the frame protocol. Returns a config
 * error only for supervisor-side infrastructure failures (pipe/fork);
 * a binary that cannot exec is reported by the child via exit 127 and
 * classified at EOF like every other death.
 */
Expected<WorkerProc>
spawnWorker(const std::string &bin, const SimConfig &cfg,
            const std::string &name, uint64_t instrs, uint64_t warmup,
            unsigned attempt, const IsolationOptions &opts,
            const FaultPlan &plan)
{
    std::string exec_path = bin;
    // exec-fail injection happens supervisor-side: the child execs a
    // path that cannot exist, producing the real exit-127 signature.
    if (plan.shouldInject(FaultKind::ExecFail, name, attempt))
        exec_path = "/nonexistent/catchsim-exec-fail-injection";

    int in_pipe[2];  // supervisor -> worker stdin
    int out_pipe[2]; // worker stdout -> supervisor
    if (pipe2(in_pipe, O_CLOEXEC) != 0)
        return simError(ErrorCategory::ExecFail,
                        "cannot create worker stdin pipe (errno ",
                        errno, ")");
    if (pipe2(out_pipe, O_CLOEXEC) != 0) {
        ::close(in_pipe[0]);
        ::close(in_pipe[1]);
        return simError(ErrorCategory::ExecFail,
                        "cannot create worker stdout pipe (errno ",
                        errno, ")");
    }

    pid_t pid = ::fork();
    if (pid < 0) {
        ::close(in_pipe[0]);
        ::close(in_pipe[1]);
        ::close(out_pipe[0]);
        ::close(out_pipe[1]);
        return simError(ErrorCategory::ExecFail,
                        "cannot fork worker (errno ", errno, ")");
    }
    if (pid == 0) {
        // Child. dup2 clears O_CLOEXEC on the standard fds; every
        // other pipe end closes itself across the exec.
        if (::dup2(in_pipe[0], STDIN_FILENO) < 0 ||
            ::dup2(out_pipe[1], STDOUT_FILENO) < 0)
            ::_exit(kExecFailExit);
        char arg_worker[] = "--worker";
        char *argv[] = {const_cast<char *>(exec_path.c_str()),
                        arg_worker, nullptr};
        ::execv(exec_path.c_str(), argv);
        ::_exit(kExecFailExit);
    }

    ::close(in_pipe[0]);
    ::close(out_pipe[1]);

    // The request is tiny (well under PIPE_BUF), so this cannot block
    // indefinitely; if the child is already dead the write fails with
    // EPIPE (ignored — classification happens at EOF).
    (void)writeFrame(in_pipe[1],
                     buildWorkerRequest(cfg, name, instrs, warmup,
                                        attempt, opts));
    ::close(in_pipe[1]);
    ::fcntl(out_pipe[0], F_SETFL, O_NONBLOCK);

    WorkerProc w;
    w.pid = pid;
    w.outFd = out_pipe[0];
    w.processAttempt = attempt;
    w.deadline = hostSeconds() + opts.heartbeatTimeoutMs / 1000.0;
    return w;
}

} // namespace

std::vector<RunOutcome>
runWorkloadsSupervised(const SimConfig &cfg,
                       const std::vector<std::string> &names,
                       uint64_t instrs, uint64_t warmup, unsigned jobs,
                       const IsolationOptions &opts,
                       const std::function<void(const RunOutcome &)>
                           &progress)
{
    std::vector<RunOutcome> outcomes(names.size());
    const FaultPlan &plan =
        opts.plan ? *opts.plan : FaultPlan::global();
    const std::string bin =
        opts.workerBin.empty() ? "/proc/self/exe" : opts.workerBin;
    const double timeout_sec = opts.heartbeatTimeoutMs / 1000.0;
    SigpipeGuard sigpipe;

    // --- planning pre-pass, on the calling thread -------------------
    // Identical semantics to runWorkloadsIsolated: journal first, then
    // the content-hashed store; only the remainder spawns workers.
    uint64_t cfg_digest = opts.resultStore ? configDigest(cfg) : 0;
    std::vector<std::optional<RunKey>> keys(names.size());
    std::vector<size_t> pending;
    for (size_t i = 0; i < names.size(); ++i) {
        if (opts.journal) {
            RunStatus st = RunStatus::Ok;
            if (const SimResult *done = opts.journal->find(
                    cfg.name, names[i], instrs, warmup, &st)) {
                outcomes[i].workload = names[i];
                outcomes[i].config = cfg.name;
                outcomes[i].status = st;
                outcomes[i].resumed = true;
                outcomes[i].result = *done;
                if (progress)
                    progress(outcomes[i]);
                continue;
            }
        }
        if (opts.resultStore) {
            if (auto wl = findWorkload(names[i]); wl.ok())
                keys[i] = RunKey{names[i], wl.value()->seed(),
                                 cfg_digest, instrs, warmup};
            if (keys[i]) {
                if (auto hit = opts.resultStore->find(*keys[i])) {
                    outcomes[i] = std::move(*hit);
                    outcomes[i].config = cfg.name;
                    if (progress)
                        progress(outcomes[i]);
                    continue;
                }
            }
        }
        pending.push_back(i);
    }
    // LPT dispatch, like the thread-pool executor: longest-estimated
    // runs spawn first. pop_back() takes work, so sort ascending.
    std::stable_sort(pending.begin(), pending.end(),
                     [&names](size_t a, size_t b) {
                         return workloadCostEstimate(names[a]) <
                                workloadCostEstimate(names[b]);
                     });

    auto commit = [&](size_t idx, RunOutcome &&out) {
        out.workload = names[idx];
        out.config = cfg.name;
        if (opts.resultStore) {
            out.storeMiss = true;
            if (keys[idx] && out.ok())
                opts.resultStore->put(*keys[idx], out);
        }
        if (opts.journal)
            opts.journal->append(out, instrs, warmup);
        outcomes[idx] = std::move(out);
        if (progress)
            progress(outcomes[idx]);
    };

    std::vector<WorkerProc> active;
    const size_t slots = std::max(1u, jobs);

    // Spawns names[idx] (attempt @p attempt), absorbing supervisor-side
    // infrastructure failures into the same bounded-restart policy the
    // EOF classifier applies.
    auto launch = [&](size_t idx, unsigned attempt) {
        for (;;) {
            auto w = spawnWorker(bin, cfg, names[idx], instrs, warmup,
                                 attempt, opts, plan);
            if (w.ok()) {
                w.value().runIndex = idx;
                active.push_back(std::move(w).value());
                return;
            }
            warn("worker spawn for '", names[idx], "' failed: ",
                 w.error().message);
            if (attempt < opts.maxAttempts) {
                if (opts.backoffMs)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(
                            uint64_t(opts.backoffMs) * attempt));
                ++attempt;
                continue;
            }
            RunOutcome out;
            out.status = RunStatus::Crashed;
            out.attempts = attempt;
            out.failure = RunFailure{w.error(), attempt};
            commit(idx, std::move(out));
            return;
        }
    };

    // Restart-or-commit for a worker that died without a usable
    // result. Crashes and exec failures may be transient (a bad page,
    // a racing binary update) and restart with backoff; heartbeat
    // timeouts never do — a hang that consumed the whole wall-clock
    // budget once will consume it again.
    auto failOrRetry = [&](size_t idx, unsigned attempt,
                           SimError err) {
        warn("worker for '", names[idx], "' (attempt ", attempt, "): ",
             err.message);
        bool retryable = err.category == ErrorCategory::Crashed ||
                         err.category == ErrorCategory::ExecFail;
        if (retryable && attempt < opts.maxAttempts) {
            if (opts.backoffMs)
                std::this_thread::sleep_for(std::chrono::milliseconds(
                    uint64_t(opts.backoffMs) * attempt));
            launch(idx, attempt + 1);
            return;
        }
        RunOutcome out;
        out.status = RunStatus::Crashed;
        out.attempts = attempt;
        out.failure = RunFailure{std::move(err), attempt};
        commit(idx, std::move(out));
    };

    // --- poll event loop --------------------------------------------
    while (!pending.empty() || !active.empty()) {
        while (active.size() < slots && !pending.empty()) {
            size_t idx = pending.back();
            pending.pop_back();
            launch(idx, 1);
        }
        if (active.empty())
            continue; // every launch may have committed a failure

        std::vector<pollfd> fds(active.size());
        double next_deadline = active[0].deadline;
        for (size_t i = 0; i < active.size(); ++i) {
            fds[i] = pollfd{active[i].outFd, POLLIN, 0};
            next_deadline = std::min(next_deadline, active[i].deadline);
        }
        double wait_sec = next_deadline - hostSeconds();
        int timeout_ms = static_cast<int>(
            std::clamp(wait_sec * 1000.0, 10.0, 1000.0));
        ::poll(fds.data(), fds.size(), timeout_ms);

        const double now = hostSeconds();
        std::vector<char> finished(active.size(), 0);
        for (size_t i = 0; i < active.size(); ++i) {
            WorkerProc &w = active[i];
            if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
                char buf[4096];
                for (;;) {
                    ssize_t n = ::read(w.outFd, buf, sizeof(buf));
                    if (n > 0) {
                        // Any bytes count as liveness; corrupt bytes
                        // are caught by the decoder below.
                        w.deadline = now + timeout_sec;
                        w.decoder.feed(buf, size_t(n));
                        continue;
                    }
                    if (n < 0 && errno == EINTR)
                        continue;
                    if (n < 0 &&
                        (errno == EAGAIN || errno == EWOULDBLOCK))
                        break;
                    finished[i] = 1; // EOF or unreadable pipe
                    break;
                }
                if (w.protocolError.empty()) {
                    std::string frame;
                    int rc;
                    while ((rc = w.decoder.next(&frame)) == 1) {
                        if (isHeartbeatFrame(frame))
                            continue;
                        auto res = parseWorkerResult(frame);
                        if (res.ok()) {
                            w.gotResult = true;
                            w.result = std::move(res).value();
                        } else {
                            w.protocolError = res.error().message;
                            ::kill(w.pid, SIGKILL);
                            break;
                        }
                    }
                    if (rc == -1 && w.protocolError.empty()) {
                        w.protocolError = w.decoder.error();
                        ::kill(w.pid, SIGKILL);
                    }
                }
            }
            if (!finished[i] && !w.killedForTimeout &&
                now > w.deadline) {
                // Watchdog: silence past the budget. SIGKILL; the EOF
                // this forces classifies the slot as heartbeat-timeout.
                w.killedForTimeout = true;
                ::kill(w.pid, SIGKILL);
            }
        }

        // Reap finished workers (reverse order keeps indices stable),
        // then classify outside the scan so launch() may grow active.
        std::vector<WorkerProc> done;
        for (size_t i = active.size(); i-- > 0;) {
            if (!finished[i])
                continue;
            done.push_back(std::move(active[i]));
            active.erase(active.begin() +
                         static_cast<ptrdiff_t>(i));
        }
        for (WorkerProc &w : done) {
            int wstatus = 0;
            ::waitpid(w.pid, &wstatus, 0);
            ::close(w.outFd);
            const size_t idx = w.runIndex;
            const unsigned attempt = w.processAttempt;
            if (w.killedForTimeout) {
                RunOutcome out;
                out.status = RunStatus::Crashed;
                out.attempts = attempt;
                out.failure = RunFailure{
                    simError(ErrorCategory::HeartbeatTimeout,
                             "worker heartbeat silent for more than ",
                             opts.heartbeatTimeoutMs, " ms; killed"),
                    attempt};
                commit(idx, std::move(out));
            } else if (!w.protocolError.empty()) {
                failOrRetry(idx, attempt,
                            simError(ErrorCategory::Crashed,
                                     "worker protocol error: ",
                                     w.protocolError));
            } else if (w.gotResult) {
                RunOutcome out = std::move(w.result);
                if (attempt > 1 && out.ok()) {
                    // Restarts promote Ok to Retried so campaign
                    // summaries reflect the recovery; the SimResult
                    // payload itself is untouched (bitwise identity).
                    out.status = RunStatus::Retried;
                    out.attempts = attempt;
                }
                commit(idx, std::move(out));
            } else if (WIFSIGNALED(wstatus)) {
                failOrRetry(idx, attempt,
                            simError(ErrorCategory::Crashed,
                                     "worker killed by signal ",
                                     WTERMSIG(wstatus)));
            } else {
                int code =
                    WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
                if (code == kExecFailExit) {
                    failOrRetry(idx, attempt,
                                simError(ErrorCategory::ExecFail,
                                         "worker binary could not be "
                                         "executed (exit 127 without "
                                         "output)"));
                } else if (code == 0) {
                    failOrRetry(idx, attempt,
                                simError(ErrorCategory::Crashed,
                                         "worker closed its pipe "
                                         "without a result"));
                } else {
                    failOrRetry(idx, attempt,
                                simError(ErrorCategory::Crashed,
                                         "worker exited with code ",
                                         code,
                                         " before sending a result"));
                }
            }
        }
    }
    return outcomes;
}

} // namespace catchsim
