/**
 * @file
 * FastForward: the functional-warming engine of sampled simulation.
 *
 * Consumes the same TraceView the detailed core does, but updates
 * *state only*: cache tags/replacement/dirty bits through the
 * hierarchy's warmAccess (which reuses the real fill/eviction/inclusion
 * logic), branch-predictor tables through warmTrain, and the TACT
 * learning structures through the regular event hooks with the
 * coordinator in warming mode (learning without prefetch issue). There
 * is no ROB, no issue calendars and no DRAM timing, so a warm step is
 * an order of magnitude cheaper than a detailed one — the speed lever
 * behind SampleMode::Sampled.
 *
 * The engine never touches any stats: counters the detailed windows
 * report stay exactly as the windows left them.
 */

#ifndef CATCHSIM_SIM_FAST_FORWARD_HH_
#define CATCHSIM_SIM_FAST_FORWARD_HH_

#include "cache/hierarchy.hh"
#include "common/types.hh"
#include "core/branch_predictor.hh"
#include "tact/tact.hh"
#include "trace/trace_stream.hh"
#include "trace/trace_view.hh"
#include "trace/workload.hh"

namespace catchsim
{

class FastForward
{
  public:
    /** @param tact may be nullptr (baseline configs) */
    FastForward(CoreId core, CacheHierarchy &hierarchy,
                BranchPredictor &predictor, Tact *tact);

    /** Attaches a fully materialized trace. */
    void bind(const Trace &trace);

    /** Attaches a streaming trace (shared with the detailed core). */
    void bind(TraceStream &stream);

    /**
     * Warms the ops in [pos, pos + count), clamped to the trace end,
     * with the hierarchy clock pinned at @p now (warming consumes no
     * simulated time). @returns the first unwarmed position, which the
     * caller hands back to the core via OooCore::skipTo.
     *
     * Warming is associative over contiguous ranges: warm(p, a) then
     * warm(p + a, b) derives bitwise the state of warm(p, a + b),
     * because all warmed state (including the repeat filter) persists
     * across calls and the pinned clock removes any time dependence.
     * The simulator leans on both properties — it merges each period's
     * trailing slack with the next period's leading offset into one
     * contiguous gap, which is exactly the unit the warm-state store
     * memoizes at window-boundary keys (sim/warm_state.hh), and the
     * clamp makes a trailing gap at the trace end a no-op rather than
     * an error.
     */
    size_t warm(size_t pos, uint64_t count, Cycle now);

    /**
     * Serializes the repeat-filter state (last code line, the two-entry
     * data filter and its dirty bits). The filter gates stride-
     * prefetcher training, so a restored run must resume with exactly
     * the filter a fresh warm would have left behind.
     */
    void saveWarmState(StateSink &sink) const;

    /** Restores a saveWarmState() stream; false on a malformed one. */
    bool loadWarmState(StateSource &src);

  private:
    CoreId core_;
    CacheHierarchy &hierarchy_;
    BranchPredictor &predictor_;
    Tact *tact_;

    TraceView trace_;
    TraceStream *stream_ = nullptr;
    size_t refillAt_ = ~size_t(0);
    Addr lastCodeLine_ = ~0ULL;

    /**
     * Two-entry repeat filter over data lines. A re-touch of the line
     * the previous data access just left MRU cannot change LRU order,
     * so the hierarchy walk is skipped; the second entry is honoured
     * only when it provably maps to a different L1 set (conservative
     * mod-16 proxy, exact for any L1 with >= 16 sets). dirty0_/dirty1_
     * track whether the filtered line is known dirty — a repeat store
     * on a clean line still takes the full path to set the dirty bit.
     *
     * Two documented approximations ride on the filter: the stride
     * prefetcher does not observe the skipped repeats (detailed mode
     * trains on every load), and a filtered line back-invalidated by an
     * inclusive-LLC eviction between touches is not re-filled. Both are
     * bounded by the sampling accuracy gate in tests/sampling_test.cc.
     */
    Addr lastData0_ = ~0ULL;
    Addr lastData1_ = ~0ULL;
    bool dirty0_ = false;
    bool dirty1_ = false;
};

} // namespace catchsim

#endif // CATCHSIM_SIM_FAST_FORWARD_HH_
