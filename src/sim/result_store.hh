/**
 * @file
 * Incremental, content-hashed store of finished run results.
 *
 * A campaign with a result store attached (--result-store DIR /
 * CATCH_RESULT_STORE) persists every successful run keyed by what
 * actually determines its output: the workload's name and seed, the
 * digest of the full SimConfig serialisation (worker_proto.hh
 * configDigest), the instruction counts and the trace-format version.
 * Re-running after a one-knob config change re-executes only the cells
 * the knob invalidates — every unchanged cell is served from the store
 * byte-identically (SimResult round-trips bitwise, common/json.hh).
 *
 * Difference from the SuiteJournal: the journal records one campaign's
 * progress under its config *name* and replays it on resume; the store
 * is cross-campaign and keyed on config *content*, so it survives
 * renames and sweeps. The executor consults the journal first, then
 * the store (sim/parallel_runner.cc).
 *
 * Disk discipline follows trace/chunk_store.cc: one file per key
 * (<fnv1a-hex16>.json) holding a single JSON line plus a trailing
 * FNV-1a checksum line, written to a unique tmp name and renamed into
 * place — a killed campaign never leaves a torn record. Corrupt or
 * key-mismatched files are deleted and count as misses. The directory
 * is guarded by a flock'd lock file: a second campaign pointed at the
 * same store fails fast with a config error instead of interleaving.
 */

#ifndef CATCHSIM_SIM_RESULT_STORE_HH_
#define CATCHSIM_SIM_RESULT_STORE_HH_

#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "common/error.hh"
#include "sim/parallel_runner.hh"

namespace catchsim
{

/** Everything that determines one run's bitwise output. */
struct RunKey
{
    std::string workload;
    uint64_t workloadSeed = 0;
    uint64_t configDigest = 0; ///< worker_proto.hh configDigest()
    uint64_t instrs = 0;
    uint64_t warmup = 0;

    /**
     * FNV-1a over every field plus kTraceFormatVersion: a trace-format
     * bump invalidates the whole store, exactly like the chunk store.
     */
    uint64_t hash() const;
};

class ResultStore
{
  public:
    ~ResultStore();
    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /**
     * Creates @p dir if needed and takes the exclusive campaign lock
     * (flock on <dir>/lock, non-blocking). A held lock or an
     * unwritable directory is a config SimError.
     */
    static Expected<std::unique_ptr<ResultStore>>
    open(const std::string &dir);

    const std::string &dir() const { return dir_; }

    /**
     * The stored outcome for @p key, or nullopt. A hit arrives with
     * fromStore set and the journaled Ok/Retried status; the caller
     * fills the campaign-local config name. Corrupt, truncated or
     * key-mismatched records warn, are deleted, and miss. Thread-safe.
     */
    std::optional<RunOutcome> find(const RunKey &key);

    /**
     * Persists a successful outcome (asserts out.ok()): tmp + rename,
     * checksummed. Write errors warn but never fail the run they
     * record. Thread-safe.
     */
    void put(const RunKey &key, const RunOutcome &out);

    uint64_t hits() const;
    uint64_t misses() const;

  private:
    ResultStore() = default;

    std::string pathFor(const RunKey &key) const;

    std::string dir_;
    int lockFd_ = -1;
    mutable std::mutex mu_; ///< counters + tmp-name serial
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t tmpSerial_ = 0;
};

} // namespace catchsim

#endif // CATCHSIM_SIM_RESULT_STORE_HH_
