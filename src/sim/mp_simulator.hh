/**
 * @file
 * Four-way multi-programmed simulator (Section VI-C): each core runs its
 * own trace over private L1s (+L2) with a shared LLC and DRAM. Cores
 * advance in interleaved steps ordered by their local clocks so shared
 * structures see a coherent access order. The metric is weighted
 * speedup: sum over cores of IPC_mp / IPC_alone, with IPC_alone measured
 * on the same machine configuration.
 */

#ifndef CATCHSIM_SIM_MP_SIMULATOR_HH_
#define CATCHSIM_SIM_MP_SIMULATOR_HH_

#include <array>
#include <string>

#include "common/sim_config.hh"
#include "trace/suite.hh"

namespace catchsim
{

struct MpResult
{
    std::string mix;
    std::string config;
    std::array<double, 4> ipc{};      ///< per-core MP IPC
    std::array<double, 4> ipcAlone{}; ///< same-config solo IPC
    double weightedSpeedup = 0;
};

class MpSimulator
{
  public:
    explicit MpSimulator(const SimConfig &cfg);

    /**
     * Runs a 4-way mix.
     * @param ipc_alone solo IPCs of the four workloads on this config
     *        (callers memoise these across mixes)
     */
    MpResult run(const MpMix &mix, uint64_t instrs_per_core,
                 uint64_t warmup, const std::array<double, 4> &ipc_alone);

  private:
    SimConfig cfg_;
};

} // namespace catchsim

#endif // CATCHSIM_SIM_MP_SIMULATOR_HH_
