#include "sim/simulator.hh"

#include <optional>
#include <stdexcept>

#include "common/host_clock.hh"
#include "common/logging.hh"
#include "common/state_io.hh"
#include "criticality/heuristic_detector.hh"
#include "sim/fast_forward.hh"
#include "sim/worker_proto.hh"
#include "trace/suite.hh"
#include "trace/trace_stream.hh"

namespace catchsim
{

namespace
{

/**
 * One warmed-state snapshot: the boundary trace position followed by
 * every warming-visible component in a fixed order. save and load walk
 * the same sequence, so the round-trip contract lives in this one
 * place; DRAM and the resettable stats are deliberately absent
 * (untouched / reset at the boundary — see the WarmStateStore file
 * comment). The critical table IS included: its entries are still
 * untrained at the global boundary, but warm fills query it through
 * the hierarchy's criticality callback and its cumulative query
 * counters are never reset, so skipping the warmup must restore them
 * too. The functional-memory image travels beside the blob as
 * copy-on-write shared pages (WarmSnapshot); taking it marks every
 * live page shared, so the run's own later writes clone instead of
 * mutating the published snapshot.
 */
WarmSnapshot
makeWarmSnapshot(uint64_t boundary_pos, const TraceStream &stream,
                 const CacheHierarchy &hierarchy,
                 const BranchPredictor &predictor,
                 const CriticalityDetector *detector, const Tact *tact,
                 const FastForward &ff)
{
    StateSink sink;
    sink.tag(stateTag("WSNP"));
    sink.u64(boundary_pos);
    stream.saveWarmState(sink);
    hierarchy.saveWarmState(sink);
    predictor.saveWarmState(sink);
    sink.boolean(detector != nullptr);
    if (detector)
        detector->table().saveWarmState(sink);
    sink.boolean(tact != nullptr);
    if (tact)
        tact->saveWarmState(sink);
    ff.saveWarmState(sink);
    return WarmSnapshot{sink.take(), stream.mem()->snapshotPages()};
}

bool
loadWarmSnapshot(const WarmSnapshot &snap, uint64_t *boundary_pos,
                 TraceStream &stream, CacheHierarchy &hierarchy,
                 BranchPredictor &predictor, CriticalityDetector *detector,
                 Tact *tact, FastForward &ff)
{
    StateSource src(snap.bytes);
    if (!src.expect(stateTag("WSNP")))
        return false;
    *boundary_pos = src.u64();
    if (!stream.loadWarmState(src, snap.pages))
        return false;
    if (!hierarchy.loadWarmState(src))
        return false;
    if (!predictor.loadWarmState(src))
        return false;
    if (src.boolean() != (detector != nullptr))
        return false;
    if (detector && !detector->table().loadWarmState(src))
        return false;
    if (src.boolean() != (tact != nullptr))
        return false;
    if (tact && !tact->loadWarmState(src))
        return false;
    if (!ff.loadWarmState(src))
        return false;
    // Trailing bytes mean the writer serialized more than this reader
    // parses — a format drift this checksum cannot catch.
    return src.exhausted();
}

} // namespace

Simulator::Simulator(const SimConfig &cfg, TraceMode mode,
                     ChunkStore *store, WarmStateStore *warm_store)
    : cfg_(cfg), mode_(mode), store_(store), warmStore_(warm_store)
{
    auto valid = cfg_.validate();
    CATCHSIM_ASSERT(valid.ok(), "invalid config reached the Simulator: ",
                    valid.ok() ? "" : valid.error().message);
}

SimResult
Simulator::run(Workload &workload, uint64_t instrs, uint64_t warmup)
{
    auto r = runGuarded(workload, instrs, warmup, RunBudget::unlimited());
    // Unlimited budget: the watchdog can never trip.
    CATCHSIM_ASSERT(r.ok(), "unguarded run failed: ",
                    r.ok() ? "" : r.error().message);
    return std::move(r).value();
}

Expected<SimResult>
Simulator::runGuarded(Workload &workload, uint64_t instrs, uint64_t warmup,
                      const RunBudget &budget, RunProfile *profile)
{
    SimConfig cfg = cfg_;
    cfg.numCores = 1;

    // Trace source: streamed (default) or fully materialized. Both
    // drive the core through the same TraceView; the streamed path
    // additionally passes a host clock down iff profiling, so refill
    // time can be attributed to trace generation.
    const bool prof = profile != nullptr;
    double phase_start = prof ? hostSeconds() : 0;
    std::optional<Trace> trace;
    std::optional<TraceStream> stream;
    const FunctionalMemory *mem = nullptr;
    if (mode_ == TraceMode::Materialized) {
        trace.emplace(workload.generate(instrs + warmup));
        mem = trace->mem.get();
        if (prof) {
            profile->traceGenSec = hostSeconds() - phase_start;
            phase_start = hostSeconds();
        }
    } else {
        stream.emplace(workload, instrs + warmup,
                       TraceStream::kDefaultChunkOps,
                       prof ? std::function<double()>(hostSeconds)
                            : std::function<double()>(),
                       store_);
        mem = stream->mem().get();
    }
    CacheHierarchy hierarchy(cfg);

    std::unique_ptr<CriticalityDetector> detector;
    DdgCriticalityDetector *ddg = nullptr;
    bool need_detector =
        cfg.criticality.enabled ||
        cfg.oracle.demote == DemoteMode::L1ToL2NonCrit ||
        cfg.oracle.demote == DemoteMode::L2ToLlcNonCrit ||
        cfg.oracle.demote == DemoteMode::LlcToMemNonCrit ||
        (cfg.oracle.oraclePrefetch && cfg.oracle.oraclePrefetchPcLimit);
    if (need_detector) {
        CriticalityConfig ccfg = cfg.criticality;
        if (cfg.oracle.oraclePrefetch && cfg.oracle.oraclePrefetchPcLimit)
            ccfg.tableEntries = cfg.oracle.oraclePrefetchPcLimit;
        if (ccfg.kind == DetectorKind::Heuristic) {
            detector =
                std::make_unique<HeuristicCriticalityDetector>(ccfg);
        } else {
            auto d = std::make_unique<DdgCriticalityDetector>(
                ccfg, cfg.robSize, cfg.renameLat, cfg.redirectLat,
                cfg.width);
            ddg = d.get();
            detector = std::move(d);
        }
        hierarchy.setCriticalQuery([&detector](CoreId, Addr pc) {
            return detector->isCritical(pc);
        });
    }

    std::unique_ptr<Tact> tact;
    if (cfg.tact.any()) {
        CATCHSIM_ASSERT(detector != nullptr, "TACT requires the detector");
        tact = std::make_unique<Tact>(
            cfg.tact, 0, hierarchy,
            [&detector](Addr pc) { return detector->isCritical(pc); },
            mem);
    }

    OooCore core(cfg, 0, hierarchy, detector.get(), tact.get());
    if (stream)
        core.bind(*stream);
    else
        core.bind(*trace);

    // The watchdog observes simulated time only. Every step retires an
    // instruction, so the no-retire stall window can never trip in this
    // loop; only the cycle ceiling matters, and checking it every 64
    // steps keeps the poll off the hot path while still bounding the
    // overrun to a handful of instructions (deterministically so).
    Watchdog wd(budget);
    const SamplingConfig &sc = cfg.sampling;
    SampleStats sample;
    CoreStats sampled_core;
    FrontendStats sampled_frontend;
    double ipc_sum = 0, ipc_sq_sum = 0;
    uint64_t measured_start_cycle = 0;

    if (!sc.sampled()) {
        if (budget.limited()) {
            while (core.instrsDone() < warmup && core.step()) {
                if ((core.instrsDone() & 63) == 0)
                    if (auto err = wd.poll(core.now(), core.instrsDone()))
                        return *err;
            }
        } else {
            while (core.instrsDone() < warmup && core.step()) {
            }
        }
        hierarchy.resetStats();
        core.markMeasurementStart();
        measured_start_cycle = core.now();
        if (prof) {
            profile->warmupSec = hostSeconds() - phase_start;
            phase_start = hostSeconds();
        }
        if (budget.limited()) {
            while (core.step()) {
                if ((core.instrsDone() & 63) == 0)
                    if (auto err = wd.poll(core.now(), core.instrsDone()))
                        return *err;
            }
        } else {
            while (core.step()) {
            }
        }
    } else {
        // Sampled mode: functional warming interleaved with detailed
        // windows. The schedule is a pure function of the instruction
        // counter (never wall clock), so results are bitwise-identical
        // at any job count. Warming does not advance core time and the
        // watchdog sees instruction progress, so one poll per phase
        // bounds a cycle-ceiling overrun by a window's worth of steps.
        FastForward ff(0, hierarchy, core.frontend().predictor(),
                       tact.get());
        if (stream)
            ff.bind(*stream);
        else
            ff.bind(*trace);

        auto accumulate = [](CoreStats &acc, const CoreStats &w) {
            acc.instrs += w.instrs;
            acc.cycles += w.cycles;
            acc.loads += w.loads;
            acc.stores += w.stores;
            acc.forwardedLoads += w.forwardedLoads;
            acc.branch.branches += w.branch.branches;
            acc.branch.mispredicts += w.branch.mispredicts;
            acc.branch.directionWrong += w.branch.directionWrong;
            acc.branch.targetWrong += w.branch.targetWrong;
        };

        // Warming is memoized through the warm-state store when one is
        // attached: the warmed state at a boundary is a pure function
        // of the consulted key, so a hit restores it and jumps the
        // cursor instead of re-deriving it. Eligibility requires the
        // chunk store (the stream restore re-fetches its ring window
        // through it) and a nonzero warmup (nothing to memoize
        // otherwise); window-boundary keys additionally require the
        // store's per-window mode (off reproduces phase 1) and a
        // schedule whose inter-window slack amortizes the restore — a
        // window restore costs a near-constant blob parse + O(pages)
        // map adoption, so short-slack schedules re-warm faster than
        // they restore (Config::minWindowGapInstrs). The gate moves
        // only time, never results: restored and re-warmed state are
        // bitwise identical by the store's contract.
        const uint64_t slack =
            sc.intervalInstrs - sc.warmupInstrs - sc.windowInstrs;
        const bool window_eligible = warmStore_ && stream &&
                                     stream->storeBacked() && warmup > 0 &&
                                     warmStore_->perWindow() &&
                                     slack >= warmStore_->minWindowGap();
        const bool warm_eligible = warmStore_ && stream &&
                                   stream->storeBacked() && warmup > 0;
        // The state at a window boundary embeds the detailed windows
        // executed before it, which every timing knob reaches — so
        // window keys carry the FULL config digest plus the schedule
        // digest, unlike the timing-blind global key.
        const uint64_t full_digest =
            window_eligible ? configDigest(cfg) : 0;
        const uint64_t sched_digest =
            window_eligible ? sampleScheduleDigest(sc) : 0;
        auto window_key = [&](uint64_t boundary,
                              uint64_t window_index) {
            return WarmStateKey{workload.name(), workload.seed(),
                                boundary,       instrs + warmup,
                                stream->chunkOps(), full_digest,
                                window_index,   sched_digest};
        };
        // Restore a found snapshot; on component-level rejection drop
        // the record and fail transient — the retry re-warms cleanly.
        auto restore = [&](const WarmStateKey &key,
                           const WarmStateStore::SnapshotPtr &snap)
            -> Expected<uint64_t> {
            uint64_t boundary_pos = 0;
            if (loadWarmSnapshot(*snap, &boundary_pos, *stream,
                                 hierarchy, core.frontend().predictor(),
                                 detector.get(), tact.get(), ff) &&
                boundary_pos <= stream->size()) {
                core.skipTo(boundary_pos);
                return boundary_pos;
            }
            // The record passed its checksum but a component rejected
            // it: a format drift this build cannot parse.
            warmStore_->remove(key);
            return simError(ErrorCategory::IoTransient,
                            "warm-state snapshot for '", workload.name(),
                            "' failed component restore — dropped; "
                            "retry re-warms");
        };

        // Global warmup: consulted under the warm-only digest at
        // windowIndex 0 so pure timing resweeps share it.
        WarmStateKey wkey;
        if (warm_eligible)
            wkey = WarmStateKey{workload.name(), workload.seed(), warmup,
                                instrs + warmup, stream->chunkOps(),
                                warmConfigDigest(cfg)};
        bool restored = false;
        if (warm_eligible) {
            if (WarmStateStore::SnapshotPtr snap =
                    warmStore_->find(wkey)) {
                auto pos = restore(wkey, snap);
                if (!pos.ok())
                    return pos.error();
                sample.warmedInstrs += pos.value();
                restored = true;
                if (prof) {
                    ++profile->warmStateHits;
                    profile->warmStateBytes += snap->residentBytes();
                }
            }
        }
        size_t before = 0;
        if (!restored) {
            before = core.tracePos();
            core.skipTo(ff.warm(before, warmup, core.now()));
            sample.warmedInstrs += core.tracePos() - before;
            if (warm_eligible) {
                WarmSnapshot snap = makeWarmSnapshot(
                    core.tracePos(), *stream, hierarchy,
                    core.frontend().predictor(), detector.get(),
                    tact.get(), ff);
                if (prof) {
                    ++profile->warmStateMisses;
                    profile->warmStateBytes += snap.residentBytes();
                }
                warmStore_->put(wkey, std::move(snap));
            }
        }
        if (budget.limited())
            if (auto err = wd.poll(core.now(), core.instrsDone()))
                return *err;
        hierarchy.resetStats();
        if (prof) {
            profile->warmupSec = hostSeconds() - phase_start;
            phase_start = hostSeconds();
        }

        // Where in each period the detailed (warmup + window) segment
        // sits. A fixed offset aliases with any program periodicity
        // near the interval length, so the segment is staggered by a
        // Weyl sequence on the period index — deterministic, therefore
        // still bitwise-identical at any job count.
        //
        // The warming between consecutive detailed segments — the
        // previous period's trailing slack plus this period's leading
        // offset — runs as ONE contiguous gap. Warming is associative
        // over contiguous ranges (the filter state persists inside ff
        // and core time never advances during warming), so the merged
        // gap derives bitwise the state the split phases did; it is
        // also exactly the unit the warm-state store memoizes at
        // window-boundary keys, where most warming time goes at the
        // default schedule. A sweep with a warm store fast-forwards
        // snapshot to snapshot and executes only detailed segments.
        uint64_t pending_post = 0;
        uint64_t period = 0;
        while (!core.done()) {
            // Functional warming up to this period's detailed segment
            // (period 0's gap is empty: pre(0) = 0 by construction).
            const uint64_t pre =
                slack ? (period * 2654435761ULL) % (slack + 1) : 0;
            const uint64_t gap = pending_post + pre;
            pending_post = slack - pre;
            if (gap) {
                before = core.tracePos();
                // The gap's landing position is where ff.warm would
                // stop: the snapshot boundary consulted below.
                const uint64_t target =
                    std::min<uint64_t>(before + gap, stream->size());
                // Second eligibility gate, evaluated at the pre-gap
                // position (which publisher and consumer reach with
                // bitwise-identical state, so the decision is the same
                // on both sides): once the page map outgrows the cap,
                // the O(pages) adoption in restorePages() dominates
                // the restore and re-warming is cheaper — page-heavy
                // streaming workloads also warm fastest per
                // instruction, compounding the loss.
                const uint64_t page_cap = window_eligible
                                              ? warmStore_->maxWindowPages()
                                              : 0;
                const bool window_gated =
                    window_eligible &&
                    (page_cap == 0 ||
                     stream->mem()->pagesAllocated() <= page_cap);
                bool gap_restored = false;
                if (window_gated && target > before) {
                    const WarmStateKey gkey = window_key(target, period);
                    if (WarmStateStore::SnapshotPtr snap =
                            warmStore_->find(gkey)) {
                        auto pos = restore(gkey, snap);
                        if (!pos.ok())
                            return pos.error();
                        gap_restored = true;
                        if (prof) {
                            ++profile->warmStateWindowHits;
                            profile->warmStateWindowBytes +=
                                snap->residentBytes();
                        }
                    }
                }
                if (!gap_restored) {
                    core.skipTo(ff.warm(before, gap, core.now()));
                    if (window_gated && target > before) {
                        WarmSnapshot snap = makeWarmSnapshot(
                            core.tracePos(), *stream, hierarchy,
                            core.frontend().predictor(), detector.get(),
                            tact.get(), ff);
                        if (prof) {
                            ++profile->warmStateWindowMisses;
                            profile->warmStateWindowBytes +=
                                snap.residentBytes();
                        }
                        warmStore_->put(window_key(core.tracePos(),
                                                   period),
                                        std::move(snap));
                    }
                }
                sample.warmedInstrs += core.tracePos() - before;
                if (budget.limited())
                    if (auto err =
                            wd.poll(core.now(), core.instrsDone()))
                        return *err;
            }
            if (core.done())
                break;

            // Detailed-but-unmeasured warmup: re-establishes pipeline,
            // MSHR and DRAM timing state after the zero-time warming.
            uint64_t t = core.instrsDone() + sc.warmupInstrs;
            while (core.instrsDone() < t && core.step()) {
            }
            if (budget.limited())
                if (auto err = wd.poll(core.now(), core.instrsDone()))
                    return *err;
            if (core.done())
                break;

            core.markMeasurementStart();
            uint64_t w = core.instrsDone() + sc.windowInstrs;
            while (core.instrsDone() < w && core.step()) {
            }
            if (budget.limited())
                if (auto err = wd.poll(core.now(), core.instrsDone()))
                    return *err;
            CoreStats ws = core.stats();
            if (ws.instrs == 0)
                break;
            double ipc_w =
                ws.cycles ? static_cast<double>(ws.instrs) / ws.cycles
                          : 0.0;
            if (sample.windows == 0 || ipc_w < sample.ipcMin)
                sample.ipcMin = ipc_w;
            if (sample.windows == 0 || ipc_w > sample.ipcMax)
                sample.ipcMax = ipc_w;
            ++sample.windows;
            ipc_sum += ipc_w;
            ipc_sq_sum += ipc_w * ipc_w;
            accumulate(sampled_core, ws);
            const FrontendStats &fs = core.frontend().stats();
            sampled_frontend.lineFetches += fs.lineFetches;
            sampled_frontend.codeStallCycles += fs.codeStallCycles;
            sampled_frontend.redirects += fs.redirects;

            // The period's trailing slack is deferred into the next
            // iteration's gap. A run that ends here leaves it unwarmed
            // — exactly what the split loop did, whose trailing warm
            // clamped to the trace end and added nothing.
            ++period;
        }
    }
    if (prof) {
        profile->measuredSec = hostSeconds() - phase_start;
        if (stream) {
            profile->traceGenSec = stream->genSeconds();
            profile->storeHitChunks = stream->storeHits();
            profile->storeMissChunks = stream->storeMisses();
        }
        profile->peakRssBytes = peakRssBytes();
    }

    SimResult r;
    r.workload = workload.name();
    r.config = cfg.name;
    r.category = workload.category();
    if (sc.sampled()) {
        // Aggregate of the measured windows. The headline IPC is the
        // ratio estimator (summed window instrs over summed window
        // cycles) — the arithmetic mean of per-window IPCs is biased
        // high whenever windows vary (it is bounded below by the
        // harmonic mean, which is what aggregate IPC actually is). The
        // per-window mean/variance stay in SampleStats as confidence
        // diagnostics.
        r.core = sampled_core;
        r.ipc = r.core.ipc();
        if (sample.windows) {
            sample.ipcMean = ipc_sum / sample.windows;
            double var = ipc_sq_sum / sample.windows -
                         sample.ipcMean * sample.ipcMean;
            sample.ipcVariance = var > 0 ? var : 0.0;
        }
        r.sampled = true;
        r.sample = sample;
    } else {
        r.core = core.stats();
        r.ipc = r.core.ipc();
    }
    r.hier = hierarchy.stats();
    r.l1d = hierarchy.l1dStats(0);
    r.l1i = hierarchy.l1iStats(0);
    r.hasL2 = hierarchy.hasL2();
    if (r.hasL2)
        r.l2 = *hierarchy.l2Stats(0);
    r.llc = hierarchy.llcStats();
    r.dram = hierarchy.dramStats();
    r.frontend = sc.sampled() ? sampled_frontend : core.frontend().stats();
    if (detector) {
        if (ddg)
            r.ddg = ddg->stats();
        r.criticalTable = detector->table().stats();
        r.activeCriticalPcs = detector->table().activeCount();
    }
    if (tact)
        r.tact = tact->stats();

    const Histogram &tl = hierarchy.tactTimeliness();
    r.timelinessAtLeast80 = tl.fractionAtLeast(80);
    r.timelinessAtLeast10 = tl.fractionAtLeast(10);
    uint64_t pf_located = r.hier.tactPfFromL2 + r.hier.tactPfFromLlc +
                          r.hier.tactPfFromMem;
    r.tactFromLlcFraction =
        pf_located ? static_cast<double>(r.hier.tactPfFromLlc) / pf_located
                   : 0.0;

    uint64_t l1_ops = r.l1d.readOps + r.l1d.writeOps + r.l1i.readOps +
                      r.l1i.writeOps;
    uint64_t l2_ops = r.hasL2 ? r.l2.readOps + r.l2.writeOps : 0;
    uint64_t llc_ops = r.llc.readOps + r.llc.writeOps;
    // Sampled runs leak the per-window warmup cycles into core.now();
    // the summed window cycles are the honest measured-time base.
    uint64_t cycles = sc.sampled() ? r.core.cycles
                                   : core.now() - measured_start_cycle;
    r.energy = computeEnergy(EnergyParams{}, cfg, r.core.instrs, cycles,
                             l1_ops, l2_ops, llc_ops,
                             r.hier.ringTransfers, r.dram);
    return r;
}

SimResult
runWorkload(const SimConfig &cfg, const std::string &name, uint64_t instrs,
            uint64_t warmup)
{
    auto wl = makeWorkload(name);
    Simulator sim(cfg);
    return sim.run(*wl, instrs, warmup);
}

Expected<SimResult>
runWorkloadGuarded(const SimConfig &cfg, const std::string &name,
                   uint64_t instrs, uint64_t warmup,
                   const RunBudget &budget, const FaultPlan &plan,
                   unsigned attempt, RunProfile *profile,
                   ChunkStore *store, WarmStateStore *warm_store)
{
    if (plan.enabled()) {
        if (plan.shouldInject(FaultKind::TraceCorrupt, name, attempt))
            return simError(ErrorCategory::TraceCorrupt,
                            "injected trace corruption in '", name, "'");
        if (plan.shouldInject(FaultKind::IoTransient, name, attempt))
            return simError(ErrorCategory::IoTransient,
                            "injected transient IO failure in '", name,
                            "' (attempt ", attempt, ")");
        if (plan.shouldInject(FaultKind::WorkerThrow, name, attempt))
            throw std::runtime_error("injected worker exception in '" +
                                     name + "'");
        if (plan.shouldInject(FaultKind::Hang, name, attempt)) {
            if (!budget.limited())
                return simError(ErrorCategory::BudgetExceeded,
                                "injected hang in '", name,
                                "' (no budget configured; failing "
                                "immediately)");
            // Drive the real watchdog with no-progress polls so the
            // containment path under test is the production one.
            Watchdog wd(budget);
            for (uint64_t cycle = 0;; cycle += 4096)
                if (auto err = wd.poll(cycle, 0))
                    return *err;
        }
    }

    if (auto valid = cfg.validate(); !valid.ok())
        return valid.error();
    auto wl = findWorkload(name);
    if (!wl.ok())
        return wl.error();
    Simulator sim(cfg, TraceMode::Streamed, store, warm_store);
    return sim.runGuarded(*wl.value(), instrs, warmup, budget, profile);
}

} // namespace catchsim
