/**
 * @file
 * The named machine configurations of the paper's evaluation:
 *
 *   baselineSkx        1 MB L2 + 5.5 MB exclusive LLC (Section V)
 *   noL2(kb)           L2 removed, LLC grown to kb KB (Figs 1/10)
 *   baselineClient     256 KB L2 + 8 MB inclusive LLC (Fig 17)
 *   withCatch(cfg)     criticality detection + all TACT components
 */

#ifndef CATCHSIM_SIM_CONFIGS_HH_
#define CATCHSIM_SIM_CONFIGS_HH_

#include "common/sim_config.hh"

namespace catchsim
{

/** Skylake-server-like baseline: 1 MB L2, 5.5 MB shared exclusive LLC. */
SimConfig baselineSkx();

/** Skylake-client-like baseline: 256 KB L2, 8 MB shared inclusive LLC. */
SimConfig baselineClient();

/** Removes the L2 from @p base and sets the LLC to @p llc_kb KB. */
SimConfig noL2(const SimConfig &base, uint64_t llc_kb);

/** Adds CATCH (criticality detection + all TACT prefetchers). */
SimConfig withCatch(SimConfig base);

} // namespace catchsim

#endif // CATCHSIM_SIM_CONFIGS_HH_
