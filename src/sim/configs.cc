#include "sim/configs.hh"

namespace catchsim
{

SimConfig
baselineSkx()
{
    SimConfig cfg;
    cfg.name = "skx-1MBL2-5.5MBexclLLC";
    return cfg;
}

SimConfig
baselineClient()
{
    SimConfig cfg;
    cfg.name = "client-256KBL2-8MBinclLLC";
    cfg.inclusion = InclusionPolicy::Inclusive;
    cfg.l2 = CacheGeometry{256 * 1024, 8, 12};
    cfg.llc = CacheGeometry{8 * 1024 * 1024, 16, 40};
    return cfg;
}

SimConfig
noL2(const SimConfig &base, uint64_t llc_kb)
{
    SimConfig cfg = base;
    cfg.removeL2(llc_kb * 1024);
    cfg.name = "noL2-" + std::to_string(llc_kb / 1024) + "." +
               std::to_string((llc_kb % 1024) * 10 / 1024) + "MBLLC";
    return cfg;
}

SimConfig
withCatch(SimConfig base)
{
    base.enableCatch();
    base.name += "+CATCH";
    return base;
}

} // namespace catchsim
