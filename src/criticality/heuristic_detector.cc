#include "criticality/heuristic_detector.hh"

namespace catchsim
{

HeuristicCriticalityDetector::HeuristicCriticalityDetector(
    const CriticalityConfig &cfg, uint32_t num_arch_regs_upper,
    uint32_t rob_stall_threshold)
    : table_(cfg), recent_(1024), robStallThreshold_(rob_stall_threshold)
{
    (void)num_arch_regs_upper;
}

void
HeuristicCriticalityDetector::onRetire(const RetireInfo &ri)
{
    ++stats_.retired;
    ++retiredTotal_;
    table_.tick(retiredTotal_);

    // Propagate "the most recent outer-level load feeding this value"
    // through the dependence graph, like the feeder's register tracking
    // but keyed by seqnum.
    Recent &self = slot(ri.seq);
    self.seq = ri.seq;
    self.loadPc = 0;
    self.recordable = false;

    bool is_outer_load =
        ri.cls == OpClass::Load &&
        (ri.servedBy == Level::L2 || ri.servedBy == Level::LLC ||
         ri.tactCovered);
    if (is_outer_load) {
        self.loadPc = ri.pc;
        self.recordable = true;
    } else {
        for (SeqNum src : ri.srcSeq) {
            if (src == 0)
                continue;
            const Recent &p = slot(src);
            if (p.seq == src && p.recordable) {
                self.loadPc = p.loadPc;
                self.recordable = true;
                break;
            }
        }
    }

    // Heuristic 1: a mispredicting branch flags the outer-level load it
    // depends on.
    if (ri.mispredictedBranch && ri.cls == OpClass::Branch &&
        self.recordable) {
        ++stats_.flaggedFeedsMispredict;
        table_.record(self.loadPc);
    }

    // Heuristic 2: an outer-level load whose completion gated its own
    // retirement slot (it reached the ROB head unfinished).
    if (is_outer_load &&
        ri.retireCycle >= ri.execDone &&
        ri.retireCycle - ri.execDone <= 1 &&
        ri.execDone - ri.execStart >= robStallThreshold_) {
        ++stats_.flaggedRobStall;
        table_.record(ri.pc);
    }
}

} // namespace catchsim
