#include "criticality/critical_table.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace catchsim
{

CriticalTable::CriticalTable(const CriticalityConfig &cfg)
    : cfg_(cfg), numSets_(cfg.tableEntries / cfg.tableWays),
      confMax_((1u << cfg.confidenceBits) - 1),
      entries_(cfg.tableEntries)
{
    CATCHSIM_ASSERT(cfg.tableEntries % cfg.tableWays == 0,
                    "table entries must divide into ways");
    CATCHSIM_ASSERT(isPowerOfTwo(numSets_), "table sets must be pow2");
}

uint32_t
CriticalTable::setOf(Addr pc) const
{
    return static_cast<uint32_t>(mix64(pc) & (numSets_ - 1));
}

void
CriticalTable::record(Addr pc)
{
    ++stats_.recordings;
    ++clock_;
    Entry *row = &entries_[static_cast<size_t>(setOf(pc)) * cfg_.tableWays];
    Entry *lru = &row[0];
    for (uint32_t w = 0; w < cfg_.tableWays; ++w) {
        Entry &e = row[w];
        if (e.valid && e.pc == pc) {
            if (e.confidence < confMax_)
                ++e.confidence;
            e.lastUse = clock_;
            return;
        }
        if (!e.valid) {
            lru = &e;
            break;
        }
        if (e.lastUse < lru->lastUse)
            lru = &e;
    }
    if (lru->valid)
        ++stats_.evictions;
    ++stats_.insertions;
    lru->valid = true;
    lru->pc = pc;
    lru->confidence = 1;
    lru->lastUse = clock_;
}

bool
CriticalTable::isCritical(Addr pc) const
{
    ++stats_.queries;
    const Entry *row =
        &entries_[static_cast<size_t>(setOf(pc)) * cfg_.tableWays];
    for (uint32_t w = 0; w < cfg_.tableWays; ++w) {
        if (row[w].valid && row[w].pc == pc &&
            row[w].confidence >= confMax_) {
            ++stats_.queryHits;
            return true;
        }
    }
    return false;
}

void
CriticalTable::tick(uint64_t retired_instrs)
{
    if (retired_instrs - lastReset_ < cfg_.confResetInterval)
        return;
    lastReset_ = retired_instrs;
    ++stats_.confidenceResets;
    // PCs that never reached saturation forget their progress and must
    // re-learn (Section IV-A).
    for (auto &e : entries_)
        if (e.valid && e.confidence < confMax_)
            e.confidence = 0;
}

void
CriticalTable::saveWarmState(StateSink &sink) const
{
    sink.tag(stateTag("CRIT"));
    sink.u64(entries_.size());
    for (const Entry &e : entries_) {
        sink.boolean(e.valid);
        sink.u64(e.pc);
        sink.u32(e.confidence);
        sink.u64(e.lastUse);
    }
    sink.u64(clock_);
    sink.u64(lastReset_);
    sink.u64(stats_.recordings);
    sink.u64(stats_.insertions);
    sink.u64(stats_.evictions);
    sink.u64(stats_.confidenceResets);
    sink.u64(stats_.queries);
    sink.u64(stats_.queryHits);
}

bool
CriticalTable::loadWarmState(StateSource &src)
{
    if (!src.expect(stateTag("CRIT")))
        return false;
    if (src.u64() != entries_.size() ||
        !src.fits(entries_.size() * 21))
        return false;
    for (Entry &e : entries_) {
        e.valid = src.boolean();
        e.pc = src.u64();
        e.confidence = src.u32();
        e.lastUse = src.u64();
    }
    clock_ = src.u64();
    lastReset_ = src.u64();
    stats_.recordings = src.u64();
    stats_.insertions = src.u64();
    stats_.evictions = src.u64();
    stats_.confidenceResets = src.u64();
    stats_.queries = src.u64();
    stats_.queryHits = src.u64();
    return src.ok();
}

uint32_t
CriticalTable::activeCount() const
{
    uint32_t n = 0;
    for (const auto &e : entries_)
        if (e.valid && e.confidence >= confMax_)
            ++n;
    return n;
}

} // namespace catchsim
