#include "criticality/critical_table.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace catchsim
{

CriticalTable::CriticalTable(const CriticalityConfig &cfg)
    : cfg_(cfg), numSets_(cfg.tableEntries / cfg.tableWays),
      confMax_((1u << cfg.confidenceBits) - 1),
      entries_(cfg.tableEntries)
{
    CATCHSIM_ASSERT(cfg.tableEntries % cfg.tableWays == 0,
                    "table entries must divide into ways");
    CATCHSIM_ASSERT(isPowerOfTwo(numSets_), "table sets must be pow2");
}

uint32_t
CriticalTable::setOf(Addr pc) const
{
    return static_cast<uint32_t>(mix64(pc) & (numSets_ - 1));
}

void
CriticalTable::record(Addr pc)
{
    ++stats_.recordings;
    ++clock_;
    Entry *row = &entries_[static_cast<size_t>(setOf(pc)) * cfg_.tableWays];
    Entry *lru = &row[0];
    for (uint32_t w = 0; w < cfg_.tableWays; ++w) {
        Entry &e = row[w];
        if (e.valid && e.pc == pc) {
            if (e.confidence < confMax_)
                ++e.confidence;
            e.lastUse = clock_;
            return;
        }
        if (!e.valid) {
            lru = &e;
            break;
        }
        if (e.lastUse < lru->lastUse)
            lru = &e;
    }
    if (lru->valid)
        ++stats_.evictions;
    ++stats_.insertions;
    lru->valid = true;
    lru->pc = pc;
    lru->confidence = 1;
    lru->lastUse = clock_;
}

bool
CriticalTable::isCritical(Addr pc) const
{
    ++stats_.queries;
    const Entry *row =
        &entries_[static_cast<size_t>(setOf(pc)) * cfg_.tableWays];
    for (uint32_t w = 0; w < cfg_.tableWays; ++w) {
        if (row[w].valid && row[w].pc == pc &&
            row[w].confidence >= confMax_) {
            ++stats_.queryHits;
            return true;
        }
    }
    return false;
}

void
CriticalTable::tick(uint64_t retired_instrs)
{
    if (retired_instrs - lastReset_ < cfg_.confResetInterval)
        return;
    lastReset_ = retired_instrs;
    ++stats_.confidenceResets;
    // PCs that never reached saturation forget their progress and must
    // re-learn (Section IV-A).
    for (auto &e : entries_)
        if (e.valid && e.confidence < confMax_)
            e.confidence = 0;
}

uint32_t
CriticalTable::activeCount() const
{
    uint32_t n = 0;
    for (const auto &e : entries_)
        if (e.valid && e.confidence >= confMax_)
            ++n;
    return n;
}

} // namespace catchsim
