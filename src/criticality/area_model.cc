#include "criticality/area_model.hh"

namespace catchsim
{

uint32_t
ddgBitsPerRow(const CriticalityConfig &cfg)
{
    (void)cfg;
    // Table I: D-D / C-C / D-E / C-D edges are implicit (0 bits).
    const uint32_t ec_bits = 5;            // quantised execution latency
    const uint32_t ee_bits = 9 * 3 + 9;    // 3 sources + 1 memory dep
    const uint32_t ed_bits = 1;            // bad-speculation flag
    return ec_bits + ee_bits + ed_bits;
}

std::vector<AreaItem>
ddgAreaBudget(const CriticalityConfig &cfg, uint32_t rob_size)
{
    const double rows = cfg.graphFactor * rob_size;
    std::vector<AreaItem> items;
    items.push_back({"graph rows (E-C 5b, E-E 36b, E-D 1b)",
                     rows * ddgBitsPerRow(cfg) / 8.0});
    items.push_back({"hashed PC per row (10b)",
                     rows * cfg.hashedPcBits / 8.0});
    // Working registers of the incremental algorithm: per-row node cost
    // and prev-load pointer (folded into the row storage estimate in the
    // paper; we list it at zero to match Table I's bottom line).
    items.push_back({"critical-load table (32 x ~5B)",
                     cfg.tableEntries * 5.0});
    return items;
}

std::vector<AreaItem>
tactAreaBudget(const TactConfig &cfg, uint32_t critical_pcs,
               uint32_t arch_regs)
{
    std::vector<AreaItem> items;
    // Fig 9's per-structure budgets.
    items.push_back({"critical target PC table",
                     critical_pcs * 20.0}); // 640 B at 32 PCs
    items.push_back({"feeder PC table (deep-self state)",
                     critical_pcs * 2.0}); // 64 B
    items.push_back({"feeder register tracking (3B/arch reg)",
                     arch_regs * 3.0}); // 48 B
    items.push_back({"trigger cache (8x8, 6B/entry)",
                     static_cast<double>(cfg.triggerCacheSets) *
                         cfg.triggerCacheWays * 6.0}); // 384 B
    items.push_back({"cross PC candidates", critical_pcs * 2.0}); // 64 B
    items.push_back({"code next-prefetch IP", 8.0});
    return items;
}

double
areaTotalBytes(const std::vector<AreaItem> &items)
{
    double total = 0;
    for (const auto &i : items)
        total += i.bytes;
    return total;
}

} // namespace catchsim
