/**
 * @file
 * Area accounting for the criticality hardware (the paper's Table I) and
 * the TACT structures (Fig 9). These reproduce the paper's arithmetic:
 * the DDG costs about 3 KB and all TACT structures about 1.2 KB.
 */

#ifndef CATCHSIM_CRITICALITY_AREA_MODEL_HH_
#define CATCHSIM_CRITICALITY_AREA_MODEL_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_config.hh"

namespace catchsim
{

/** One line item of an area budget. */
struct AreaItem
{
    std::string name;
    double bytes;
};

/** Bits stored per DDG row (E-C latency, E-E deps, E-D flag). */
uint32_t ddgBitsPerRow(const CriticalityConfig &cfg);

/**
 * Table I: storage for buffering the DDG, including the hashed-PC side
 * array, for a @p rob_size-entry machine buffered at graphFactor x ROB.
 */
std::vector<AreaItem> ddgAreaBudget(const CriticalityConfig &cfg,
                                    uint32_t rob_size);

/** Fig 9: storage of every TACT structure. */
std::vector<AreaItem> tactAreaBudget(const TactConfig &cfg,
                                     uint32_t critical_pcs,
                                     uint32_t arch_regs);

/** Sum of an area budget in bytes. */
double areaTotalBytes(const std::vector<AreaItem> &items);

} // namespace catchsim

#endif // CATCHSIM_CRITICALITY_AREA_MODEL_HH_
