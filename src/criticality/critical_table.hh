/**
 * @file
 * The critical-load table (Section IV-A, "Recording the Critical
 * Instructions"): a 32-entry, 8-way set-associative, LRU-managed table of
 * load PCs found on the critical path that hit in the L2 or LLC. Each
 * entry carries a 2-bit saturating confidence counter; a PC is reported
 * critical only while its confidence is saturated. Every 100 K retired
 * instructions, entries that have not reached saturation are reset and
 * must re-learn.
 */

#ifndef CATCHSIM_CRITICALITY_CRITICAL_TABLE_HH_
#define CATCHSIM_CRITICALITY_CRITICAL_TABLE_HH_

#include <cstdint>
#include <vector>

#include "common/sim_config.hh"
#include "common/state_io.hh"
#include "common/types.hh"

namespace catchsim
{

/** Statistics exported by the table. */
struct CriticalTableStats
{
    uint64_t recordings = 0;   ///< critical-path loads reported to us
    uint64_t insertions = 0;   ///< new PCs allocated
    uint64_t evictions = 0;    ///< LRU replacements (table pressure)
    uint64_t confidenceResets = 0;
    uint64_t queries = 0;
    uint64_t queryHits = 0;    ///< queries answered "critical"
};

class CriticalTable
{
  public:
    explicit CriticalTable(const CriticalityConfig &cfg);

    /** Reports one critical-path load PC (from a graph walk). */
    void record(Addr pc);

    /** True when @p pc is currently marked critical (saturated entry). */
    bool isCritical(Addr pc) const;

    /**
     * Advances the retired-instruction clock; performs the periodic
     * confidence reset when the interval elapses.
     */
    void tick(uint64_t retired_instrs);

    /** Number of currently saturated (actively critical) PCs. */
    uint32_t activeCount() const;

    const CriticalTableStats &stats() const { return stats_; }

    /**
     * Serializes entries, the LRU clock and the stats counters for
     * warmed-state snapshots. Unlike the other warmed components the
     * stats ARE part of the payload: warm fills query the table through
     * the hierarchy's criticality callback, and the query counters are
     * never reset at the warmup boundary — a restored run must report
     * the same cumulative counts a freshly warmed one would.
     */
    void saveWarmState(StateSink &sink) const;

    /** Restores a saveWarmState() stream into a table of the same
     *  geometry; false on a malformed or mis-sized stream. */
    bool loadWarmState(StateSource &src);

  private:
    struct Entry
    {
        bool valid = false;
        Addr pc = 0;
        uint32_t confidence = 0;
        uint64_t lastUse = 0;
    };

    uint32_t setOf(Addr pc) const;

    CriticalityConfig cfg_;
    uint32_t numSets_;
    uint32_t confMax_;
    std::vector<Entry> entries_;
    uint64_t clock_ = 0;
    uint64_t lastReset_ = 0;
    mutable CriticalTableStats stats_;
};

} // namespace catchsim

#endif // CATCHSIM_CRITICALITY_CRITICAL_TABLE_HH_
