/**
 * @file
 * Heuristics-based criticality detection, after Tune et al. [2] and
 * Subramaniam et al. [6] - the approach the paper's Section IV-A argues
 * *against*: "while using heuristics to identify critical load PCs may
 * be simple to implement, they often flag many more PCs than are truly
 * critical."
 *
 * The detector marks a load PC when retirement-visible signals suggest
 * criticality:
 *   - a branch that later mispredicts is (transitively) data-dependent
 *    on the load ("feeds-mispredict"), or
 *   - the load reached the head of the ROB before completing
 *     ("oldest-uncompleted", approximated as retire-stall > threshold).
 *
 * It feeds the same CriticalTable as the DDG detector so the two can be
 * swapped under TACT and compared (bench_ablation_detectors).
 */

#ifndef CATCHSIM_CRITICALITY_HEURISTIC_DETECTOR_HH_
#define CATCHSIM_CRITICALITY_HEURISTIC_DETECTOR_HH_

#include <vector>

#include "criticality/critical_table.hh"
#include "criticality/ddg.hh"

namespace catchsim
{

/** Detector statistics. */
struct HeuristicStats
{
    uint64_t retired = 0;
    uint64_t flaggedFeedsMispredict = 0;
    uint64_t flaggedRobStall = 0;
};

class HeuristicCriticalityDetector : public CriticalityDetector
{
  public:
    /**
     * @param rob_stall_threshold cycles an instruction may sit completed
     *        behind the retirement point before its load is flagged
     */
    HeuristicCriticalityDetector(const CriticalityConfig &cfg,
                                 uint32_t num_arch_regs_upper = 64,
                                 uint32_t rob_stall_threshold = 12);

    /** Consumes the same retirement records as the DDG detector. */
    void onRetire(const RetireInfo &ri) override;

    CriticalTable &table() override { return table_; }
    const CriticalTable &table() const override { return table_; }
    const HeuristicStats &stats() const { return stats_; }

  private:
    /** Ring of recent load PCs by producing seqnum (dependence walk). */
    struct Recent
    {
        SeqNum seq = 0;
        Addr loadPc = 0;  ///< 0 if the producer chain has no L2/LLC load
        bool recordable = false;
    };

    Recent &slot(SeqNum seq) { return recent_[seq % recent_.size()]; }

    CriticalTable table_;
    std::vector<Recent> recent_;
    uint32_t robStallThreshold_;
    uint64_t retiredTotal_ = 0;
    HeuristicStats stats_;
};

} // namespace catchsim

#endif // CATCHSIM_CRITICALITY_HEURISTIC_DETECTOR_HH_
