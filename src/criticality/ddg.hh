/**
 * @file
 * Hardware criticality detection via a buffered data-dependency graph
 * (Section IV-A), after Fields et al. [1].
 *
 * Each retired instruction contributes three nodes (D = allocation,
 * E = execution dispatch, C = writeback). Edges:
 *   D-D in-order allocation          (implicit; observed alloc gap)
 *   C-D ROB-depth back-pressure      (implicit)
 *   D-E rename latency               (implicit)
 *   E-E data/memory dependences      (stored: up to 3 srcs + 1 mem dep)
 *   E-C execution latency            (stored: 5-bit, quantised by 8)
 *   E-D branch mispredict redirect   (stored: 1 bit)
 *
 * Node costs are computed *incrementally on insertion*: each node takes
 * the max over its incoming edges of (source node cost + edge weight),
 * so finding the critical path never needs a depth-first search. Each
 * node also propagates a "previous critical-path load" pointer, so the
 * walk at the end of a buffered window is just a pointer chase that
 * enumerates the load instructions on the critical path. Loads that hit
 * in the L2 or LLC (or were covered by a TACT prefetch) are recorded in
 * the CriticalTable.
 */

#ifndef CATCHSIM_CRITICALITY_DDG_HH_
#define CATCHSIM_CRITICALITY_DDG_HH_

#include <cstdint>
#include <vector>

#include "common/sim_config.hh"
#include "common/types.hh"
#include "criticality/critical_table.hh"
#include "trace/micro_op.hh"

namespace catchsim
{

/** Retirement-visible record of one instruction, fed to the detector. */
struct RetireInfo
{
    Addr pc = 0;
    SeqNum seq = 0;
    OpClass cls = OpClass::Nop;
    bool mispredictedBranch = false;
    Level servedBy = Level::None; ///< loads: level that serviced it
    bool tactCovered = false;     ///< L1 hit on a TACT-prefetched line
    Cycle allocCycle = 0;
    Cycle execStart = 0;
    Cycle execDone = 0;
    Cycle retireCycle = 0;
    SeqNum srcSeq[kMaxSrcs] = {0, 0, 0}; ///< producer seqnums (0 = none)
    SeqNum memDepSeq = 0; ///< forwarding store's seqnum (0 = none)
};

/** Common interface of the criticality detectors (DDG and heuristic). */
class CriticalityDetector
{
  public:
    virtual ~CriticalityDetector() = default;

    /** Buffers/observes one retired instruction. */
    virtual void onRetire(const RetireInfo &ri) = 0;

    /** The critical-load table the detector feeds. */
    virtual CriticalTable &table() = 0;
    virtual const CriticalTable &table() const = 0;

    bool isCritical(Addr pc) const { return table().isCritical(pc); }
};

/** Detector statistics. */
struct DdgStats
{
    uint64_t retired = 0;
    uint64_t walks = 0;
    uint64_t criticalLoadsFound = 0; ///< loads seen on critical paths
    uint64_t recorded = 0;           ///< of those, L2/LLC hits recorded
    uint64_t overflows = 0;
};

class DdgCriticalityDetector : public CriticalityDetector
{
  public:
    DdgCriticalityDetector(const CriticalityConfig &cfg, uint32_t rob_size,
                           uint32_t rename_lat, uint32_t redirect_lat,
                           uint32_t width = 4);

    /** Buffers one retired instruction; may trigger a walk. */
    void onRetire(const RetireInfo &ri) override;

    /** The critical-load table fed by the walks. */
    CriticalTable &table() override { return table_; }
    const CriticalTable &table() const override { return table_; }

    const DdgStats &stats() const { return stats_; }

    /** Rows buffered before each walk (2x ROB by default). */
    uint32_t walkRows() const { return walkRows_; }

  private:
    struct Row
    {
        Addr pc = 0;
        bool isLoad = false;
        bool recordable = false; ///< load that hit L2/LLC or TACT line
        uint32_t quantLat = 0;   ///< 5-bit execution latency, lat >> 3
        uint64_t dCost = 0, eCost = 0, cCost = 0;
        int32_t pLoadD = -1, pLoadE = -1, pLoadC = -1;
    };

    /** Stored (quantised) execution latency of row @p r, in cycles. */
    uint64_t
    storedLat(const Row &r) const
    {
        return static_cast<uint64_t>(r.quantLat) << cfg_.latencyQuantShift;
    }

    void walk();

    CriticalityConfig cfg_;
    uint32_t robSize_;
    uint32_t renameLat_;
    uint32_t redirectLat_;
    uint32_t width_;
    uint32_t walkRows_;
    uint32_t quantMax_;

    std::vector<Row> rows_;
    uint32_t count_ = 0;     ///< rows buffered in the current window
    SeqNum baseSeq_ = 0;     ///< seq of rows_[0]
    Cycle prevAlloc_ = 0;
    int32_t lastMispredictRow_ = -1;
    uint64_t retiredTotal_ = 0;

    CriticalTable table_;
    DdgStats stats_;
};

} // namespace catchsim

#endif // CATCHSIM_CRITICALITY_DDG_HH_
