#include "criticality/ddg.hh"

#include <algorithm>

#include "common/logging.hh"

namespace catchsim
{

DdgCriticalityDetector::DdgCriticalityDetector(
    const CriticalityConfig &cfg, uint32_t rob_size, uint32_t rename_lat,
    uint32_t redirect_lat, uint32_t width)
    : cfg_(cfg), robSize_(rob_size), renameLat_(rename_lat),
      redirectLat_(redirect_lat), width_(width),
      walkRows_(static_cast<uint32_t>(cfg.walkFactor * rob_size)),
      quantMax_(31), // 5-bit saturating latency storage
      rows_(walkRows_), table_(cfg)
{
}

void
DdgCriticalityDetector::onRetire(const RetireInfo &ri)
{
    ++stats_.retired;
    ++retiredTotal_;
    table_.tick(retiredTotal_);

    if (count_ == 0) {
        baseSeq_ = ri.seq;
        prevAlloc_ = ri.allocCycle;
        lastMispredictRow_ = -1;
    }

    uint32_t idx = count_;
    Row &row = rows_[idx];
    row = Row{};
    row.pc = ri.pc;
    row.isLoad = ri.cls == OpClass::Load;
    row.recordable = row.isLoad &&
                     (ri.servedBy == Level::L2 ||
                      ri.servedBy == Level::LLC || ri.tactCovered);
    uint64_t exec_lat =
        ri.execDone > ri.execStart ? ri.execDone - ri.execStart : 0;
    row.quantLat = static_cast<uint32_t>(
        std::min<uint64_t>(exec_lat >> cfg_.latencyQuantShift, quantMax_));

    // ---- D node: in-order allocation ----
    if (idx > 0) {
        const Row &prev = rows_[idx - 1];
        // The D-D edge carries only the dispatch-width cost (one cycle
        // per `width` instructions). Allocation *stalls* are explained
        // by the C-D (ROB depth) and E-D (mispredict) edges, so the
        // longest path runs through the dependences that caused them -
        // encoding observed alloc gaps here would make the D chain the
        // trivial critical path and hide every load.
        uint64_t gap = (idx % width_ == 0) ? 1 : 0;
        row.dCost = prev.dCost + gap;
        row.pLoadD = prev.pLoadD;
        // C-D edge: ROB back-pressure from the instruction robSize_ ago.
        if (idx >= robSize_) {
            const Row &depth = rows_[idx - robSize_];
            if (depth.cCost > row.dCost) {
                row.dCost = depth.cCost;
                row.pLoadD = depth.pLoadC;
            }
        }
        // E-D edge: fetch redirect after a mispredicted branch.
        if (lastMispredictRow_ >= 0) {
            const Row &br = rows_[lastMispredictRow_];
            uint64_t cand = br.eCost + storedLat(br) + redirectLat_;
            if (cand > row.dCost) {
                row.dCost = cand;
                row.pLoadD = br.pLoadE;
            }
        }
    }
    prevAlloc_ = ri.allocCycle;

    // ---- E node: rename edge + data/memory dependences ----
    row.eCost = row.dCost + renameLat_;
    row.pLoadE = row.pLoadD;
    auto consider_dep = [&](SeqNum producer) {
        if (producer == 0 || producer < baseSeq_)
            return; // producer not buffered (or none)
        uint64_t off = producer - baseSeq_;
        if (off >= idx)
            return;
        const Row &p = rows_[off];
        uint64_t cand = p.eCost + storedLat(p);
        if (cand > row.eCost) {
            row.eCost = cand;
            row.pLoadE =
                p.isLoad ? static_cast<int32_t>(off) : p.pLoadE;
        }
    };
    for (SeqNum src : ri.srcSeq)
        consider_dep(src);
    consider_dep(ri.memDepSeq);

    // ---- C node: writeback, in-order commit ----
    row.cCost = row.eCost + storedLat(row);
    row.pLoadC = row.isLoad ? static_cast<int32_t>(idx) : row.pLoadE;
    if (idx > 0) {
        const Row &prev = rows_[idx - 1];
        if (prev.cCost > row.cCost) {
            row.cCost = prev.cCost;
            row.pLoadC = prev.pLoadC;
        }
    }

    if (ri.mispredictedBranch)
        lastMispredictRow_ = static_cast<int32_t>(idx);

    ++count_;
    if (count_ >= walkRows_)
        walk();
}

void
DdgCriticalityDetector::walk()
{
    ++stats_.walks;
    // The critical path ends at the C node of the last buffered
    // instruction; pLoadC points at the most recent load on it.
    int32_t cur = rows_[count_ - 1].pLoadC;
    while (cur >= 0) {
        const Row &load = rows_[cur];
        ++stats_.criticalLoadsFound;
        if (load.recordable) {
            ++stats_.recorded;
            table_.record(load.pc);
        }
        cur = load.pLoadE;
    }
    // Flush the window (the hardware resets the graph's read pointer).
    count_ = 0;
}

} // namespace catchsim
