/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * Every stochastic choice in the simulator and the synthetic workloads
 * draws from a seeded Rng so runs are bit-for-bit reproducible.
 */

#ifndef CATCHSIM_COMMON_RNG_HH_
#define CATCHSIM_COMMON_RNG_HH_

#include <cstdint>

#include "common/bitutil.hh"
#include "common/state_io.hh"

namespace catchsim
{

/** Small, fast, seedable PRNG with helpers for bounded draws. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 1)
    {
        // splitmix64 seeding per the xoshiro authors' recommendation
        uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            word = mix64(x);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform draw in [0, bound); bound must be non-zero. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform draw in [lo, hi] inclusive. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw: true with probability @p percent / 100. */
    bool
    percent(uint32_t percent)
    {
        return below(100) < percent;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Serializes the generator state (warmed-state snapshots). */
    void
    saveWarmState(StateSink &sink) const
    {
        sink.tag(stateTag("RNG "));
        for (uint64_t word : state_)
            sink.u64(word);
    }

    /** Restores a saveWarmState() stream; false on a malformed one. */
    bool
    loadWarmState(StateSource &src)
    {
        if (!src.expect(stateTag("RNG ")) || !src.fits(4 * 8))
            return false;
        for (auto &word : state_)
            word = src.u64();
        return src.ok();
    }

  private:
    static constexpr uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace catchsim

#endif // CATCHSIM_COMMON_RNG_HH_
