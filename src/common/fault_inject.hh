/**
 * @file
 * Deterministic fault-injection harness (CATCH_FAULT_INJECT).
 *
 * Every containment path in the suite executor — trace corruption,
 * transient IO failure, a worker throwing, a hung run — can be forced
 * on demand so tests and CI exercise them without real faults. The
 * plan is a pure function of the spec string: the same spec injects
 * the same faults into the same runs at any job count, which is what
 * lets CI assert that unaffected slots stay bitwise identical.
 *
 * Spec grammar (parsed by FaultPlan::parse):
 *
 *   spec    := clause ( ';' clause )*
 *   clause  := kind ':' target [ ':x' count ]
 *   kind    := 'trace-corrupt' | 'state-corrupt' | 'io-transient'
 *            | 'exception' | 'hang' | 'crash-abort' | 'crash-segv'
 *            | 'oom' | 'exec-fail' | 'heartbeat-stall'
 *   target  := '*'                  every run
 *            | <name>               one run/operation by name
 *            | '%' pct '@' seed     pct% of names, chosen by a seeded
 *                                   per-name draw (common/rng.hh)
 *   count   := number of leading attempts that fail
 *              (default: 1 for io-transient — the retry succeeds —
 *               and unlimited for the other kinds)
 *
 * Examples:
 *   io-transient:mcf            mcf fails once, recovers on retry
 *   io-transient:mcf:x9         mcf exhausts every retry and fails
 *   trace-corrupt:tpcc;hang:milc  two persistent faults
 *   exception:%10@42            ~10% of runs throw (seed 42)
 *   crash-segv:%25@7            ~25% of isolated workers die by SIGSEGV
 *   crash-abort:mcf:x1          mcf's first worker process aborts; the
 *                               supervisor's restart succeeds
 *
 * The five process-level kinds (crash-abort, crash-segv, oom,
 * exec-fail, heartbeat-stall) act only in process-isolated mode
 * (sim/supervisor.hh): the first four take effect inside or while
 * spawning the worker process, heartbeat-stall silences the worker's
 * heartbeat so the wall-clock watchdog fires. For ':xN' counting their
 * attempt number is the process attempt (restart index), so a bounded
 * clause crashes the first N spawns and lets the restart succeed.
 *
 * Non-workload injection points use reserved names, e.g. the suite
 * JSON exporter asks for "json-export", the chunk store's disk reads
 * ask for "chunk-store" (kind trace-corrupt), and the warmed-state
 * store's disk reads ask for "warm-state-store" (kind state-corrupt)
 * plus "warm-state-window" for window-boundary (windowIndex >= 1)
 * records only — corrupting a snapshot mid-campaign while the
 * global-warmup restore still succeeds.
 */

#ifndef CATCHSIM_COMMON_FAULT_INJECT_HH_
#define CATCHSIM_COMMON_FAULT_INJECT_HH_

#include <string>
#include <vector>

#include "common/error.hh"

namespace catchsim
{

enum class FaultKind : uint8_t
{
    TraceCorrupt,
    StateCorrupt, ///< warmed-state snapshot reads fail their checks
    IoTransient,
    WorkerThrow,
    Hang,
    CrashAbort,     ///< worker process calls abort() (SIGABRT death)
    CrashSegv,      ///< worker process raises SIGSEGV
    Oom,            ///< worker process raises SIGKILL (OOM-killer stand-in)
    ExecFail,       ///< supervisor spawn execs an unrunnable binary
    HeartbeatStall, ///< worker stops heartbeating and never finishes
};

/** Spec keyword of a kind ("trace-corrupt", "io-transient", ...). */
const char *faultKindName(FaultKind k);

/** One parsed clause of the spec. */
struct FaultClause
{
    FaultKind kind = FaultKind::IoTransient;
    std::string target;   ///< named target; empty for '*' / percent
    bool every = false;   ///< target '*'
    bool percent = false; ///< target '%pct@seed'
    uint32_t pct = 0;
    uint64_t seed = 0;
    uint64_t failCount = 0; ///< attempts that fail; 0 = unlimited
};

/** A parsed, immutable injection plan; all queries are pure. */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /** Parses @p spec; config error on any malformed clause. */
    static Expected<FaultPlan> parse(const std::string &spec);

    /**
     * The process-wide plan from CATCH_FAULT_INJECT (empty plan when
     * unset). First call reads the environment: call once from startup
     * code per the env.hh contract; later calls return the cached plan
     * and are thread-safe.
     */
    static const FaultPlan &global();

    bool enabled() const { return !clauses_.empty(); }
    const std::vector<FaultClause> &clauses() const { return clauses_; }

    /**
     * Should @p kind be injected into @p name's @p attempt (1-based)?
     * Deterministic: depends only on the plan, the name and the
     * attempt number, never on scheduling or wall-clock.
     */
    bool shouldInject(FaultKind kind, const std::string &name,
                      unsigned attempt = 1) const;

  private:
    std::vector<FaultClause> clauses_;
};

} // namespace catchsim

#endif // CATCHSIM_COMMON_FAULT_INJECT_HH_
