#include "common/sim_config.hh"

#include "common/bitutil.hh"
#include "common/env.hh"

namespace catchsim
{

SamplingConfig
SamplingConfig::fromEnvironment()
{
    SamplingConfig sc;
    if (envFlag("CATCH_SAMPLE"))
        sc.mode = SampleMode::Sampled;
    sc.intervalInstrs = envU64("CATCH_SAMPLE_INTERVAL", sc.intervalInstrs);
    sc.windowInstrs = envU64("CATCH_SAMPLE_WINDOW", sc.windowInstrs);
    sc.warmupInstrs = envU64("CATCH_SAMPLE_WARMUP", sc.warmupInstrs);
    return sc;
}

void
SimConfig::enableCatch()
{
    criticality.enabled = true;
    tact.cross = true;
    tact.deepSelf = true;
    tact.feeder = true;
    tact.code = true;
}

void
SimConfig::removeL2(uint64_t llc_bytes)
{
    hasL2 = false;
    inclusion = InclusionPolicy::Nine;
    llc.sizeBytes = llc_bytes;
    // keep the LLC geometry buildable: ways must divide size into
    // power-of-two sets
    while (llc.numSets() == 0 || !isPowerOfTwo(llc.numSets()))
        ++llc.ways;
}

namespace
{

Expected<void>
checkGeometry(const char *name, const CacheGeometry &g)
{
    if (g.sizeBytes % (kLineBytes * g.ways) != 0)
        return simError(ErrorCategory::Config, name,
                        ": size not divisible into ways*lines");
    if (!isPowerOfTwo(g.numSets()))
        return simError(ErrorCategory::Config, name,
                        ": number of sets (", g.numSets(),
                        ") must be a power of two");
    if (g.latency == 0)
        return simError(ErrorCategory::Config, name, ": zero latency");
    return {};
}

} // namespace

Expected<void>
SimConfig::validate() const
{
    if (width == 0 || robSize < 2 * width)
        return simError(ErrorCategory::Config,
                        "core width/ROB configuration is degenerate");
    if (numArchRegs < 4 || numArchRegs > 64)
        return simError(ErrorCategory::Config,
                        "numArchRegs out of supported range");
    if (auto e = checkGeometry("l1i", l1i); !e.ok())
        return e;
    if (auto e = checkGeometry("l1d", l1d); !e.ok())
        return e;
    if (hasL2)
        if (auto e = checkGeometry("l2", l2); !e.ok())
            return e;
    if (auto e = checkGeometry("llc", llc); !e.ok())
        return e;
    if (!hasL2 && inclusion == InclusionPolicy::Exclusive)
        return simError(ErrorCategory::Config,
                        "exclusive LLC requires an L2 to be exclusive of");
    if (numCores == 0 || numCores > 16)
        return simError(ErrorCategory::Config,
                        "numCores out of supported range");
    if (criticality.graphFactor < criticality.walkFactor)
        return simError(ErrorCategory::Config,
                        "DDG buffer must be at least as deep as the walk");
    if (tact.any() && !criticality.enabled)
        return simError(ErrorCategory::Config,
                        "TACT prefetchers require criticality detection");
    if (!isPowerOfTwo(dram.channels) || !isPowerOfTwo(dram.banksPerRank))
        return simError(ErrorCategory::Config,
                        "DRAM channels/banks must be powers of two");
    if (sampling.sampled()) {
        if (sampling.windowInstrs == 0)
            return simError(ErrorCategory::Config,
                            "sampled mode needs a non-zero detailed window");
        if (sampling.warmupInstrs + sampling.windowInstrs >
            sampling.intervalInstrs)
            return simError(ErrorCategory::Config,
                            "sample warmup+window must fit in the interval");
        if (numCores > 1)
            return simError(ErrorCategory::Config,
                            "sampled mode is single-core only; MP mixes "
                            "run detailed");
    }
    return {};
}

} // namespace catchsim
