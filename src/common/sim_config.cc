#include "common/sim_config.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace catchsim
{

void
SimConfig::enableCatch()
{
    criticality.enabled = true;
    tact.cross = true;
    tact.deepSelf = true;
    tact.feeder = true;
    tact.code = true;
}

void
SimConfig::removeL2(uint64_t llc_bytes)
{
    hasL2 = false;
    inclusion = InclusionPolicy::Nine;
    llc.sizeBytes = llc_bytes;
    // keep the LLC geometry buildable: ways must divide size into
    // power-of-two sets
    while (llc.numSets() == 0 || !isPowerOfTwo(llc.numSets()))
        ++llc.ways;
}

namespace
{

void
checkGeometry(const char *name, const CacheGeometry &g)
{
    if (g.sizeBytes % (kLineBytes * g.ways) != 0)
        CATCHSIM_FATAL(name, ": size not divisible into ways*lines");
    if (!isPowerOfTwo(g.numSets()))
        CATCHSIM_FATAL(name, ": number of sets (", g.numSets(),
                       ") must be a power of two");
    if (g.latency == 0)
        CATCHSIM_FATAL(name, ": zero latency");
}

} // namespace

void
SimConfig::validate() const
{
    if (width == 0 || robSize < 2 * width)
        CATCHSIM_FATAL("core width/ROB configuration is degenerate");
    if (numArchRegs < 4 || numArchRegs > 64)
        CATCHSIM_FATAL("numArchRegs out of supported range");
    checkGeometry("l1i", l1i);
    checkGeometry("l1d", l1d);
    if (hasL2)
        checkGeometry("l2", l2);
    checkGeometry("llc", llc);
    if (!hasL2 && inclusion == InclusionPolicy::Exclusive)
        CATCHSIM_FATAL("exclusive LLC requires an L2 to be exclusive of");
    if (numCores == 0 || numCores > 16)
        CATCHSIM_FATAL("numCores out of supported range");
    if (criticality.graphFactor < criticality.walkFactor)
        CATCHSIM_FATAL("DDG buffer must be at least as deep as the walk");
    if (tact.any() && !criticality.enabled)
        CATCHSIM_FATAL("TACT prefetchers require criticality detection");
    if (!isPowerOfTwo(dram.channels) || !isPowerOfTwo(dram.banksPerRank))
        CATCHSIM_FATAL("DRAM channels/banks must be powers of two");
}

} // namespace catchsim
