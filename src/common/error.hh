/**
 * @file
 * Typed error taxonomy for recoverable failures.
 *
 * Library code never terminates the process on a recoverable error:
 * it returns a SimError wrapped in Expected<T> and lets the caller —
 * ultimately the per-run isolation layer in sim/parallel_runner or the
 * CLI boundary — decide whether one bad run degrades a campaign or
 * stops it. fatal()/panic() remain only at the CLI boundary and inside
 * CATCHSIM_ASSERT (invariant checks for genuine simulator bugs); the
 * catch_lint `fatal-boundary` rule enforces the split.
 *
 * Categories mirror how the suite executor reacts:
 *   config          caller mistake (unknown workload, bad geometry);
 *                   never retried, surfaced once with exit code 2
 *   trace-corrupt   a trace file failed validation; not retried
 *   io-transient    an IO operation that may succeed on retry; retried
 *                   with bounded attempt-count-based backoff
 *   budget-exceeded a run overran its watchdog budget (hang/livelock);
 *                   reported as timed-out, not retried
 *   internal        an unexpected exception escaped a worker; a bug,
 *                   contained to the failing run's slot
 *
 * Process-isolated execution (sim/supervisor.hh) adds three categories
 * that can only happen when a run lives in its own worker process:
 *   crashed           the worker process died (signal, nonzero exit,
 *                     protocol corruption) before delivering a result;
 *                     restarted up to CATCH_MAX_ATTEMPTS times
 *   heartbeat-timeout the worker stopped heartbeating past the
 *                     wall-clock watchdog; SIGKILLed, not restarted
 *                     (hangs are not transient)
 *   exec-fail         the worker binary could not be executed at all;
 *                     restarted (spawn failures may be transient)
 */

#ifndef CATCHSIM_COMMON_ERROR_HH_
#define CATCHSIM_COMMON_ERROR_HH_

#include <optional>
#include <string>
#include <utility>
#include <variant>

#include "common/logging.hh"

namespace catchsim
{

enum class ErrorCategory : uint8_t
{
    Config,
    TraceCorrupt,
    IoTransient,
    BudgetExceeded,
    Internal,
    Crashed,
    HeartbeatTimeout,
    ExecFail,
};

/** Stable wire name of a category ("config", "trace-corrupt", ...). */
constexpr const char *
errorCategoryName(ErrorCategory c)
{
    switch (c) {
      case ErrorCategory::Config:         return "config";
      case ErrorCategory::TraceCorrupt:   return "trace-corrupt";
      case ErrorCategory::IoTransient:    return "io-transient";
      case ErrorCategory::BudgetExceeded: return "budget-exceeded";
      case ErrorCategory::Internal:       return "internal";
      case ErrorCategory::Crashed:        return "crashed";
      case ErrorCategory::HeartbeatTimeout: return "heartbeat-timeout";
      case ErrorCategory::ExecFail:       return "exec-fail";
    }
    return "internal";
}

/** Parses a wire name back into a category (journal replay). */
inline std::optional<ErrorCategory>
errorCategoryFromName(const std::string &name)
{
    for (ErrorCategory c :
         {ErrorCategory::Config, ErrorCategory::TraceCorrupt,
          ErrorCategory::IoTransient, ErrorCategory::BudgetExceeded,
          ErrorCategory::Internal, ErrorCategory::Crashed,
          ErrorCategory::HeartbeatTimeout, ErrorCategory::ExecFail})
        if (name == errorCategoryName(c))
            return c;
    return std::nullopt;
}

/** A recoverable failure: category for policy, message for humans. */
struct SimError
{
    ErrorCategory category = ErrorCategory::Internal;
    std::string message;

    /** True when the isolation layer may retry the operation. */
    bool transient() const { return category == ErrorCategory::IoTransient; }
};

/** Builds a SimError with a concatenated message, printf-free. */
template <typename... Args>
SimError
simError(ErrorCategory category, Args &&...args)
{
    return SimError{category,
                    detail::concat(std::forward<Args>(args)...)};
}

/**
 * A value or a SimError; the library's return type for anything that
 * can fail recoverably. Implicitly constructible from both sides so
 * `return simError(...)` and `return value` read naturally.
 */
template <typename T>
class [[nodiscard]] Expected
{
  public:
    Expected(T value) : v_(std::move(value)) {} // NOLINT(*-explicit-*)
    Expected(SimError error) : v_(std::move(error)) {} // NOLINT(*-explicit-*)

    bool ok() const { return std::holds_alternative<T>(v_); }
    explicit operator bool() const { return ok(); }

    T &
    value() &
    {
        CATCHSIM_ASSERT(ok(), "value() on error Expected: ",
                        std::get<SimError>(v_).message);
        return std::get<T>(v_);
    }

    const T &
    value() const &
    {
        CATCHSIM_ASSERT(ok(), "value() on error Expected: ",
                        std::get<SimError>(v_).message);
        return std::get<T>(v_);
    }

    T &&
    value() &&
    {
        CATCHSIM_ASSERT(ok(), "value() on error Expected: ",
                        std::get<SimError>(v_).message);
        return std::get<T>(std::move(v_));
    }

    const SimError &
    error() const
    {
        CATCHSIM_ASSERT(!ok(), "error() on ok Expected");
        return std::get<SimError>(v_);
    }

  private:
    std::variant<T, SimError> v_;
};

/** Expected<void>: success, or a SimError. */
template <>
class [[nodiscard]] Expected<void>
{
  public:
    Expected() = default;
    Expected(SimError error) : err_(std::move(error)) {} // NOLINT(*-explicit-*)

    bool ok() const { return !err_.has_value(); }
    explicit operator bool() const { return ok(); }

    const SimError &
    error() const
    {
        CATCHSIM_ASSERT(!ok(), "error() on ok Expected");
        return *err_;
    }

  private:
    std::optional<SimError> err_;
};

} // namespace catchsim

#endif // CATCHSIM_COMMON_ERROR_HH_
