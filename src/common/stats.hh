/**
 * @file
 * Lightweight statistics helpers: histograms for latency distributions and
 * a fixed-width table printer used by the benchmark harnesses to emit the
 * paper's tables.
 */

#ifndef CATCHSIM_COMMON_STATS_HH_
#define CATCHSIM_COMMON_STATS_HH_

#include <cstdint>
#include <string>
#include <vector>

namespace catchsim
{

/**
 * Bucketed histogram with power-of-two-ish linear buckets. Used for, e.g.,
 * the distribution of LLC latency saved by TACT prefetches (Fig 11).
 */
class Histogram
{
  public:
    /**
     * @param bucket_width width of each linear bucket
     * @param num_buckets number of buckets; values beyond the last bucket
     *        are clamped into it
     */
    Histogram(uint64_t bucket_width, size_t num_buckets);

    void add(uint64_t value, uint64_t count = 1);

    uint64_t samples() const { return samples_; }
    uint64_t total() const { return total_; }
    double mean() const;

    /** Fraction of samples with value >= threshold, in [0,1]. */
    double fractionAtLeast(uint64_t threshold) const;

    /** Fraction of samples with value < threshold, in [0,1]. */
    double fractionBelow(uint64_t threshold) const;

    void reset();

  private:
    uint64_t bucketWidth_;
    std::vector<uint64_t> buckets_;
    uint64_t samples_ = 0;
    uint64_t total_ = 0;
};

/**
 * Accumulates rows of strings and prints them with aligned columns.
 * Every bench binary uses this so the regenerated figures/tables share a
 * consistent, diffable layout.
 */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> header);

    void addRow(std::vector<std::string> row);

    /** Renders the table (with a separator under the header) to stdout. */
    void print() const;

  private:
    std::vector<std::vector<std::string>> rows_;
};

/** Formats a fraction as a signed percentage string, e.g. "-7.79%". */
std::string formatPercent(double fraction, int decimals = 2);

/** Formats a double with fixed decimals. */
std::string formatDouble(double v, int decimals = 3);

/** Geometric mean of a vector of ratios (must all be positive). */
double geomean(const std::vector<double> &ratios);

} // namespace catchsim

#endif // CATCHSIM_COMMON_STATS_HH_
