/**
 * @file
 * Saturating counter, the workhorse of confidence tracking in the paper's
 * hardware structures (critical-load table, TACT learners, predictors).
 */

#ifndef CATCHSIM_COMMON_SAT_COUNTER_HH_
#define CATCHSIM_COMMON_SAT_COUNTER_HH_

#include <cstdint>

namespace catchsim
{

/** An n-bit saturating up/down counter. */
class SatCounter
{
  public:
    /** @param bits counter width; @param initial starting value. */
    explicit SatCounter(uint32_t bits = 2, uint32_t initial = 0)
        : max_((1u << bits) - 1), value_(initial > max_ ? max_ : initial)
    {
    }

    /** Increment, saturating at the maximum. Returns the new value. */
    uint32_t
    increment()
    {
        if (value_ < max_)
            ++value_;
        return value_;
    }

    /** Decrement, saturating at zero. Returns the new value. */
    uint32_t
    decrement()
    {
        if (value_ > 0)
            --value_;
        return value_;
    }

    /** True when the counter has reached its maximum value. */
    bool saturated() const { return value_ == max_; }

    /** True when the counter is in the upper half of its range. */
    bool predictTaken() const { return value_ > max_ / 2; }

    uint32_t value() const { return value_; }
    uint32_t max() const { return max_; }

    void reset(uint32_t v = 0) { value_ = v > max_ ? max_ : v; }

  private:
    uint32_t max_;
    uint32_t value_;
};

} // namespace catchsim

#endif // CATCHSIM_COMMON_SAT_COUNTER_HH_
