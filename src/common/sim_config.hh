/**
 * @file
 * SimConfig: every knob of the simulated machine in one value type.
 *
 * Defaults model the paper's primary baseline: a Skylake-server-like core
 * (4-wide, 224-entry ROB, 3.2 GHz) with 32 KB L1I/L1D (5 cycles), 1 MB
 * private L2 (15-cycle round trip), a 5.5 MB shared exclusive LLC
 * (40-cycle round trip) and DDR4-2400 x 2 channels.
 */

#ifndef CATCHSIM_COMMON_SIM_CONFIG_HH_
#define CATCHSIM_COMMON_SIM_CONFIG_HH_

#include <cstdint>
#include <string>

#include "common/error.hh"
#include "common/types.hh"

namespace catchsim
{

/** Geometry and latency of one cache level. */
struct CacheGeometry
{
    uint64_t sizeBytes = 0;
    uint32_t ways = 8;
    uint32_t latency = 5; ///< round-trip load-to-use latency in core cycles

    uint32_t numSets() const { return sizeBytes / (kLineBytes * ways); }
};

/** How the LLC relates to the inner levels. */
enum class InclusionPolicy : uint8_t
{
    Exclusive, ///< LLC holds only lines evicted from L2 (SKX server style)
    Inclusive, ///< LLC back-invalidates inner copies on eviction (client)
    Nine,      ///< non-inclusive non-exclusive (used for the no-L2 configs)
};

/** Oracle knob: demote hits at one level to the next level's latency. */
enum class DemoteMode : uint8_t
{
    None,
    L1ToL2All,      ///< every L1 hit is served at L2 latency (Fig 4)
    L1ToL2NonCrit,  ///< only non-critical L1 hits are demoted
    L2ToLlcAll,
    L2ToLlcNonCrit,
    LlcToMemAll,
    LlcToMemNonCrit,
};

/** DDR4 channel/rank/bank organisation and timing (in core cycles). */
struct DramConfig
{
    uint32_t channels = 2;
    uint32_t ranksPerChannel = 2;
    uint32_t banksPerRank = 8;
    uint32_t rowBytes = 2048;

    // DDR4-2400 15-15-15-39 converted to 3.2 GHz core cycles
    // (1 DRAM clock = 0.833 ns = 2.67 core cycles).
    uint32_t tCas = 40;
    uint32_t tRcd = 40;
    uint32_t tRp = 40;
    uint32_t tRas = 104;
    uint32_t burstCycles = 11;  ///< BL8 data transfer occupancy per access
    uint32_t controllerLat = 30; ///< queuing + controller + PHY overhead

    uint32_t writeQueueDepth = 32;
    uint32_t writeDrainWatermark = 24; ///< start a drain batch at this level
    uint32_t writeDrainBatch = 16;     ///< writes drained per batch

    // Refresh: all banks of a rank are blocked for tRfc every tRefi
    // (7.8 us / ~350 ns at 3.2 GHz core cycles).
    uint32_t tRefi = 24960;
    uint32_t tRfc = 1120;
};

/** Which criticality detector drives the critical-load table. */
enum class DetectorKind : uint8_t
{
    Ddg,       ///< the paper's buffered data-dependency graph
    Heuristic, ///< Tune/Subramaniam-style heuristics (for comparison)
};

/** Criticality-detection hardware parameters (Section IV-A of the paper). */
struct CriticalityConfig
{
    bool enabled = false;
    DetectorKind kind = DetectorKind::Ddg;
    uint32_t tableEntries = 32;   ///< critical-load-table capacity
    uint32_t tableWays = 8;       ///< 8-way set associative, LRU
    uint32_t confidenceBits = 2;
    uint64_t confResetInterval = 100000; ///< retired instrs between resets
    double graphFactor = 2.5;     ///< buffered rows as a multiple of ROB
    double walkFactor = 2.0;      ///< rows walked as a multiple of ROB
    uint32_t latencyQuantShift = 3; ///< E-C weights stored as latency >> 3
    uint32_t hashedPcBits = 10;   ///< lossy PC storage inside the graph
};

/** TACT prefetcher parameters (Section IV-B). */
struct TactConfig
{
    bool cross = false;
    bool deepSelf = false;
    bool feeder = false;
    bool code = false;

    uint32_t triggerCacheSets = 8;
    uint32_t triggerCacheWays = 8;
    uint32_t triggerPcsPerPage = 4;
    uint32_t crossTrainInstances = 16; ///< instances per trigger candidate
    uint32_t crossCandidateWraps = 4;

    uint32_t deepMaxDistance = 16;
    uint32_t safeLengthCap = 32;

    /**
     * How far ahead (in feeder instances) the feeder runahead rides the
     * feeder's stride, per Fig 7's "SELF deep address prefetch of feeder
     * F". The chained target prefetch needs to out-run the feeder+LLC
     * serial latency, so this matches the deep-self distance rather than
     * the 4-instance learning window.
     */
    uint32_t feederDepth = 16;

    uint32_t codeRunaheadLines = 8; ///< max code lines prefetched per stall

    bool anyData() const { return cross || deepSelf || feeder; }
    bool any() const { return anyData() || code; }
};

/** Detailed cycle-accurate stepping vs SMARTS-style sampling. */
enum class SampleMode : uint8_t
{
    Detailed, ///< every instruction through the OoO core (paper figures)
    Sampled,  ///< functional warming + periodic detailed windows
};

/**
 * Sampled-simulation schedule. Each period of @ref intervalInstrs
 * instructions is split into functional warming (state updates only:
 * cache tags, replacement, branch predictor, TACT learning), then
 * @ref warmupInstrs detailed-but-unmeasured instructions to refill the
 * pipeline/timing state, then a measured detailed window of
 * @ref windowInstrs instructions. The schedule is driven purely by the
 * instruction counter, so it is bitwise-reproducible at any job count.
 */
struct SamplingConfig
{
    SampleMode mode = SampleMode::Detailed;
    // Defaults validated against full detailed runs: at >= ~1 M instrs
    // per workload the sampled IPC of every suite kernel lands within
    // ~3% of detailed under both hierarchy shapes. Shorter runs need
    // denser sampling (smaller interval) to get enough windows — see
    // docs/PERFORMANCE.md "Sampled simulation".
    uint64_t intervalInstrs = 20000; ///< period length (warm+warmup+window)
    uint64_t windowInstrs = 2000;    ///< measured detailed instrs per period
    uint64_t warmupInstrs = 2000;    ///< detailed-unmeasured instrs per period

    bool sampled() const { return mode == SampleMode::Sampled; }

    /** Env-gated defaults: CATCH_SAMPLE (flag), CATCH_SAMPLE_INTERVAL,
     *  CATCH_SAMPLE_WINDOW, CATCH_SAMPLE_WARMUP. */
    static SamplingConfig fromEnvironment();
};

/** Oracle-study knobs (Figs 3, 4 and 5). */
struct OracleConfig
{
    // Fig 3 / Fig 15: fixed latency adders per level.
    uint32_t latAddL1 = 0;
    uint32_t latAddL2 = 0;
    uint32_t latAddLlc = 0;

    // Fig 4: demotion studies.
    DemoteMode demote = DemoteMode::None;

    // Fig 5: zero-time critical prefetch of L2/LLC hits into L1.
    bool oraclePrefetch = false;
    uint32_t oraclePrefetchPcLimit = 0; ///< 0 means "all PCs" variant
    bool oracleCodeInL1 = false; ///< Fig 5 assumes all code hits the L1I
};

/** Top-level machine configuration. */
struct SimConfig
{
    std::string name = "baseline-skx";

    // --- core ---
    uint32_t width = 4;        ///< alloc/retire width per cycle
    uint32_t robSize = 224;
    uint32_t renameLat = 2;    ///< D-to-E edge weight
    uint32_t redirectLat = 14; ///< branch mispredict fetch redirect
    uint32_t numArchRegs = 16;
    uint32_t storeQueueSize = 56;
    uint32_t fwdLatency = 5;   ///< store-to-load forwarding latency
    uint32_t aluPorts = 3;
    uint32_t loadPorts = 2;
    uint32_t storePorts = 1;
    uint32_t fpPorts = 2;

    // --- cache hierarchy ---
    bool hasL2 = true;
    InclusionPolicy inclusion = InclusionPolicy::Exclusive;
    CacheGeometry l1i{32 * 1024, 8, 5};
    CacheGeometry l1d{32 * 1024, 8, 5};
    CacheGeometry l2{1024 * 1024, 16, 15};
    CacheGeometry llc{5632 * 1024, 11, 40}; ///< 5.5 MB shared

    // --- baseline prefetchers ---
    bool l1StridePrefetcher = true;
    bool l2StreamPrefetcher = true;
    uint32_t streamDegree = 8; ///< lines prefetched ahead per stream

    DramConfig dram;
    CriticalityConfig criticality;
    TactConfig tact;
    OracleConfig oracle;
    SamplingConfig sampling;

    uint32_t numCores = 1;
    uint64_t seed = 1;

    /** Convenience: full CATCH = criticality detection + all four TACTs. */
    void enableCatch();

    /** Removes the L2 and sets @p llc_bytes as the (NINE) LLC capacity. */
    void removeL2(uint64_t llc_bytes);

    /** Validates invariants; a config SimError describes the first
     *  violation. Library code never terminates on a bad config. */
    Expected<void> validate() const;
};

} // namespace catchsim

#endif // CATCHSIM_COMMON_SIM_CONFIG_HH_
