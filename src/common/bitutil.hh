/**
 * @file
 * Small bit-manipulation helpers shared by caches, predictors and tables.
 */

#ifndef CATCHSIM_COMMON_BITUTIL_HH_
#define CATCHSIM_COMMON_BITUTIL_HH_

#include <cstdint>

namespace catchsim
{

/**
 * Wrapping address subtraction interpreted as signed — the 64-bit
 * subtractor a stride detector would be in hardware. Computing this as
 * int64 subtraction is UB on pointer-valued garbage (UBSan-caught);
 * unsigned wraparound plus the C++20 modular narrowing is the defined
 * spelling of the same two's-complement result.
 */
constexpr int64_t
addrDelta(uint64_t a, uint64_t b)
{
    return static_cast<int64_t>(a - b);
}

/** Wrapping add of a signed offset to an address (hardware adder). */
constexpr uint64_t
addrOffset(uint64_t base, int64_t delta)
{
    return base + static_cast<uint64_t>(delta);
}

/** Wrapping base + stride*count (a runahead prefetcher's AGU). */
constexpr uint64_t
addrStride(uint64_t base, int64_t stride, uint64_t count)
{
    return base + static_cast<uint64_t>(stride) * count;
}

/** Wrapping scale*value+base address computation (shift-and-add AGU). */
constexpr uint64_t
addrScaled(int64_t scale, uint64_t value, int64_t base)
{
    return static_cast<uint64_t>(scale) * value +
           static_cast<uint64_t>(base);
}

/** True iff @p v is a power of two (0 is not). */
constexpr bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(v); v must be non-zero. */
constexpr uint32_t
floorLog2(uint64_t v)
{
    uint32_t r = 0;
    while (v >>= 1)
        ++r;
    return r;
}

/** Ceiling of log2(v); v must be non-zero. */
constexpr uint32_t
ceilLog2(uint64_t v)
{
    return isPowerOfTwo(v) ? floorLog2(v) : floorLog2(v) + 1;
}

/**
 * Mixes the bits of a 64-bit value (splitmix64 finalizer). Used to hash
 * PCs and addresses into table indices without pathological aliasing.
 */
constexpr uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * Hardware-style folded hash of a PC down to @p bits bits. The paper's DDG
 * stores 10-bit hashed PC addresses; this models that lossy compression.
 */
constexpr uint64_t
hashPc(uint64_t pc, uint32_t bits)
{
    uint64_t h = pc >> 2; // instructions are 4-byte aligned in our traces
    uint64_t folded = 0;
    while (h) {
        folded ^= h & ((1ULL << bits) - 1);
        h >>= bits;
    }
    return folded;
}

} // namespace catchsim

#endif // CATCHSIM_COMMON_BITUTIL_HH_
