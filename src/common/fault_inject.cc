#include "common/fault_inject.hh"

#include <cstdlib>

#include "common/env.hh"
#include "common/rng.hh"

namespace catchsim
{

namespace
{

/** FNV-1a: a platform-stable name hash (std::hash is not portable). */
uint64_t
fnv1a(const std::string &s)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

Expected<FaultKind>
parseKind(const std::string &word)
{
    for (FaultKind k :
         {FaultKind::TraceCorrupt, FaultKind::StateCorrupt,
          FaultKind::IoTransient, FaultKind::WorkerThrow, FaultKind::Hang,
          FaultKind::CrashAbort, FaultKind::CrashSegv, FaultKind::Oom,
          FaultKind::ExecFail, FaultKind::HeartbeatStall})
        if (word == faultKindName(k))
            return k;
    return simError(ErrorCategory::Config, "CATCH_FAULT_INJECT: unknown "
                    "fault kind '", word, "' (expected trace-corrupt, "
                    "state-corrupt, io-transient, exception, hang, "
                    "crash-abort, crash-segv, oom, exec-fail or "
                    "heartbeat-stall)");
}

/** Strict non-negative integer parse; nullopt on garbage. */
bool
parseU64(const std::string &s, uint64_t *out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    *out = std::strtoull(s.c_str(), &end, 10);
    return end && *end == '\0';
}

Expected<FaultClause>
parseClause(const std::string &text)
{
    FaultClause clause;
    size_t colon = text.find(':');
    if (colon == std::string::npos)
        return simError(ErrorCategory::Config, "CATCH_FAULT_INJECT: "
                        "clause '", text, "' has no ':' (want "
                        "kind:target[:xN])");
    auto kind = parseKind(text.substr(0, colon));
    if (!kind.ok())
        return kind.error();
    clause.kind = kind.value();

    std::string rest = text.substr(colon + 1);
    // Optional ':xN' attempt count suffix.
    size_t xpos = rest.rfind(":x");
    if (xpos != std::string::npos) {
        if (!parseU64(rest.substr(xpos + 2), &clause.failCount) ||
            clause.failCount == 0)
            return simError(ErrorCategory::Config, "CATCH_FAULT_INJECT: "
                            "bad attempt count in '", text, "'");
        rest = rest.substr(0, xpos);
    } else if (clause.kind == FaultKind::IoTransient) {
        clause.failCount = 1; // transient by default: retry succeeds
    }

    if (rest.empty())
        return simError(ErrorCategory::Config, "CATCH_FAULT_INJECT: "
                        "empty target in '", text, "'");
    if (rest == "*") {
        clause.every = true;
    } else if (rest[0] == '%') {
        size_t at = rest.find('@');
        uint64_t pct = 0;
        if (at == std::string::npos ||
            !parseU64(rest.substr(1, at - 1), &pct) || pct > 100 ||
            !parseU64(rest.substr(at + 1), &clause.seed))
            return simError(ErrorCategory::Config, "CATCH_FAULT_INJECT: "
                            "bad percent target in '", text,
                            "' (want %<pct>@<seed>)");
        clause.percent = true;
        clause.pct = static_cast<uint32_t>(pct);
    } else {
        clause.target = rest;
    }
    return clause;
}

} // namespace

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::TraceCorrupt: return "trace-corrupt";
      case FaultKind::StateCorrupt: return "state-corrupt";
      case FaultKind::IoTransient:  return "io-transient";
      case FaultKind::WorkerThrow:  return "exception";
      case FaultKind::Hang:         return "hang";
      case FaultKind::CrashAbort:   return "crash-abort";
      case FaultKind::CrashSegv:    return "crash-segv";
      case FaultKind::Oom:          return "oom";
      case FaultKind::ExecFail:     return "exec-fail";
      case FaultKind::HeartbeatStall: return "heartbeat-stall";
    }
    return "?";
}

Expected<FaultPlan>
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t semi = spec.find(';', pos);
        if (semi == std::string::npos)
            semi = spec.size();
        std::string clause_text = spec.substr(pos, semi - pos);
        if (!clause_text.empty()) {
            auto clause = parseClause(clause_text);
            if (!clause.ok())
                return clause.error();
            plan.clauses_.push_back(std::move(clause).value());
        }
        pos = semi + 1;
    }
    return plan;
}

const FaultPlan &
FaultPlan::global()
{
    // Magic-static: built once, thread-safe after construction. The
    // env read happens on the first call, which the experiment/CLI
    // startup paths trigger before any worker threads exist.
    static const FaultPlan plan = [] {
        std::string spec = envString("CATCH_FAULT_INJECT");
        if (spec.empty())
            return FaultPlan();
        auto parsed = parse(spec);
        if (!parsed.ok()) {
            warn("ignoring CATCH_FAULT_INJECT: ",
                 parsed.error().message);
            return FaultPlan();
        }
        inform("fault injection active: ", spec);
        return std::move(parsed).value();
    }();
    return plan;
}

bool
FaultPlan::shouldInject(FaultKind kind, const std::string &name,
                        unsigned attempt) const
{
    for (const auto &clause : clauses_) {
        if (clause.kind != kind)
            continue;
        bool selected;
        if (clause.every) {
            selected = true;
        } else if (clause.percent) {
            // One seeded draw per name: stable across attempts, job
            // counts and machines.
            Rng rng(clause.seed ^ fnv1a(name));
            selected = rng.percent(clause.pct);
        } else {
            selected = clause.target == name;
        }
        if (!selected)
            continue;
        if (clause.failCount == 0 || attempt <= clause.failCount)
            return true;
    }
    return false;
}

} // namespace catchsim
