/**
 * @file
 * StateSink / StateSource: the byte-serialization primitives behind the
 * warmed-state snapshots (sim/warm_state.hh).
 *
 * Encoding contract:
 *   - fixed-width little-endian integers, no padding, no alignment —
 *     the byte stream is identical on every host;
 *   - containers serialize as a u64 count followed by the elements, and
 *     unordered containers are emitted in ascending key order, so
 *     save() is a pure function of logical state (save -> load -> save
 *     round-trips byte-identically, which is what the per-component
 *     identity tests pin);
 *   - every component prefixes its section with a u32 tag
 *     (StateSource::expect) so a mis-ordered or mis-versioned stream
 *     fails loudly at the first section boundary instead of silently
 *     misparsing.
 *
 * Reads past the end of a source never throw or read out of bounds:
 * they return 0 and latch a failure flag the caller checks once per
 * section (ok()). Snapshot records are checksummed end-to-end before a
 * component ever sees them, so a latched failure indicates a format bug
 * rather than disk corruption — loaders treat it as "snapshot unusable"
 * and fall back to re-warming.
 */

#ifndef CATCHSIM_COMMON_STATE_IO_HH_
#define CATCHSIM_COMMON_STATE_IO_HH_

#include <cstdint>
#include <cstring>
#include <string>

namespace catchsim
{

/** Append-only byte buffer with fixed-width little-endian writers. */
class StateSink
{
  public:
    void
    u8(uint8_t v)
    {
        buf_.push_back(static_cast<char>(v));
    }

    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    i64(int64_t v)
    {
        u64(static_cast<uint64_t>(v));
    }

    void
    boolean(bool v)
    {
        u8(v ? 1 : 0);
    }

    /** Section tag (see StateSource::expect). */
    void
    tag(uint32_t v)
    {
        u32(v);
    }

    const std::string &bytes() const { return buf_; }
    std::string take() { return std::move(buf_); }
    size_t size() const { return buf_.size(); }

  private:
    std::string buf_;
};

/** Checked reader over a StateSink-produced byte stream. */
class StateSource
{
  public:
    explicit StateSource(const std::string &bytes)
        : data_(bytes.data()), size_(bytes.size())
    {
    }

    StateSource(const char *data, size_t size) : data_(data), size_(size)
    {
    }

    uint8_t
    u8()
    {
        if (!fits(1))
            return 0;
        return static_cast<uint8_t>(data_[pos_++]);
    }

    uint32_t
    u32()
    {
        if (!fits(4))
            return 0;
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(
                     static_cast<uint8_t>(data_[pos_ + i]))
                 << (8 * i);
        pos_ += 4;
        return v;
    }

    uint64_t
    u64()
    {
        if (!fits(8))
            return 0;
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(
                     static_cast<uint8_t>(data_[pos_ + i]))
                 << (8 * i);
        pos_ += 8;
        return v;
    }

    int64_t
    i64()
    {
        return static_cast<int64_t>(u64());
    }

    bool
    boolean()
    {
        return u8() != 0;
    }

    /** Reads a u32 section tag; a mismatch latches failure. */
    bool
    expect(uint32_t tag)
    {
        if (u32() != tag)
            failed_ = true;
        return !failed_;
    }

    /** True while no read over-ran the stream or missed a tag. */
    bool ok() const { return !failed_; }

    /** Latches failure explicitly (loader-side validation). */
    void fail() { failed_ = true; }

    /** Remaining unread bytes. */
    size_t remaining() const { return size_ - pos_; }

    /** True when every byte was consumed and nothing failed. */
    bool exhausted() const { return ok() && pos_ == size_; }

    /** True when @p n more bytes can be read. */
    bool
    fits(size_t n)
    {
        if (failed_ || size_ - pos_ < n) {
            failed_ = true;
            return false;
        }
        return true;
    }

  private:
    const char *data_;
    size_t size_;
    size_t pos_ = 0;
    bool failed_ = false;
};

/** Four-character section tags, e.g. kStateTag("RNG "). */
constexpr uint32_t
stateTag(const char (&s)[5])
{
    return static_cast<uint32_t>(static_cast<uint8_t>(s[0])) |
           static_cast<uint32_t>(static_cast<uint8_t>(s[1])) << 8 |
           static_cast<uint32_t>(static_cast<uint8_t>(s[2])) << 16 |
           static_cast<uint32_t>(static_cast<uint8_t>(s[3])) << 24;
}

} // namespace catchsim

#endif // CATCHSIM_COMMON_STATE_IO_HH_
