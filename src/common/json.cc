#include "common/json.hh"

#include <cctype>
#include <cstdlib>

namespace catchsim
{

const JsonValue *
JsonValue::member(const std::string &name) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[key, value] : members_)
        if (key == name)
            return &value;
    return nullptr;
}

const JsonValue *
JsonValue::at(size_t i) const
{
    if (kind_ != Kind::Array || i >= items_.size())
        return nullptr;
    return &items_[i];
}

/** Recursive-descent parser over the writer's output subset. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    Expected<JsonValue>
    parse()
    {
        JsonValue v;
        if (auto err = parseValue(v); !err.ok())
            return err.error();
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters");
        return v;
    }

  private:
    SimError
    fail(const char *what) const
    {
        return simError(ErrorCategory::TraceCorrupt, "JSON parse error at ",
                        pos_, ": ", what);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    Expected<void>
    parseValue(JsonValue &out)
    {
        if (depth_ > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"')
            return parseString(out);
        if (c == 't' || c == 'f')
            return parseBool(out);
        if (c == 'n')
            return parseNull(out);
        return parseNumber(out);
    }

    Expected<void>
    parseObject(JsonValue &out)
    {
        ++pos_; // '{'
        ++depth_;
        out.kind_ = JsonValue::Kind::Object;
        skipWs();
        if (consume('}')) {
            --depth_;
            return {};
        }
        for (;;) {
            skipWs();
            JsonValue key;
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected member name");
            if (auto err = parseString(key); !err.ok())
                return err;
            if (!consume(':'))
                return fail("expected ':' after member name");
            JsonValue value;
            if (auto err = parseValue(value); !err.ok())
                return err;
            out.members_.emplace_back(std::move(key.str_),
                                      std::move(value));
            if (consume(','))
                continue;
            if (consume('}'))
                break;
            return fail("expected ',' or '}' in object");
        }
        --depth_;
        return {};
    }

    Expected<void>
    parseArray(JsonValue &out)
    {
        ++pos_; // '['
        ++depth_;
        out.kind_ = JsonValue::Kind::Array;
        skipWs();
        if (consume(']')) {
            --depth_;
            return {};
        }
        for (;;) {
            JsonValue item;
            if (auto err = parseValue(item); !err.ok())
                return err;
            out.items_.push_back(std::move(item));
            if (consume(','))
                continue;
            if (consume(']'))
                break;
            return fail("expected ',' or ']' in array");
        }
        --depth_;
        return {};
    }

    Expected<void>
    parseString(JsonValue &out)
    {
        ++pos_; // opening quote
        out.kind_ = JsonValue::Kind::String;
        std::string s;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"') {
                out.str_ = std::move(s);
                return {};
            }
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return fail("unterminated escape");
                char e = text_[pos_++];
                switch (e) {
                  case '"':  s += '"'; break;
                  case '\\': s += '\\'; break;
                  case '/':  s += '/'; break;
                  case 'n':  s += '\n'; break;
                  case 't':  s += '\t'; break;
                  case 'r':  s += '\r'; break;
                  default:
                    return fail("unsupported escape");
                }
                continue;
            }
            s += c;
        }
        return fail("unterminated string");
    }

    Expected<void>
    parseBool(JsonValue &out)
    {
        out.kind_ = JsonValue::Kind::Bool;
        if (text_.compare(pos_, 4, "true") == 0) {
            out.b_ = true;
            pos_ += 4;
            return {};
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            out.b_ = false;
            pos_ += 5;
            return {};
        }
        return fail("bad literal");
    }

    Expected<void>
    parseNull(JsonValue &out)
    {
        if (text_.compare(pos_, 4, "null") != 0)
            return fail("bad literal");
        out.kind_ = JsonValue::Kind::Null;
        pos_ += 4;
        return {};
    }

    Expected<void>
    parseNumber(JsonValue &out)
    {
        size_t start = pos_;
        bool integral = true;
        if (pos_ < text_.size() && text_[pos_] == '-') {
            integral = false;
            ++pos_;
        }
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start)
            return fail("expected a value");
        std::string token = text_.substr(start, pos_ - start);
        out.kind_ = JsonValue::Kind::Number;
        char *end = nullptr;
        if (integral) {
            out.isInt_ = true;
            out.u64_ = std::strtoull(token.c_str(), &end, 10);
        } else {
            out.d_ = std::strtod(token.c_str(), &end);
        }
        if (!end || *end != '\0')
            return fail("malformed number");
        return {};
    }

    static constexpr int kMaxDepth = 64;

    const std::string &text_;
    size_t pos_ = 0;
    int depth_ = 0;
};

Expected<JsonValue>
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

} // namespace catchsim
