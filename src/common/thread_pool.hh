/**
 * @file
 * Minimal work-stealing thread pool for embarrassingly parallel batch
 * jobs (the suite runners). Each worker owns a deque: it pops work from
 * the front of its own deque and, when empty, steals from the back of a
 * sibling's. Batches are distributed round-robin so a longest-first
 * submission order spreads the heavy tasks across workers; stealing
 * rebalances whatever the estimate got wrong.
 *
 * Determinism contract: the pool guarantees nothing about execution
 * order, so tasks must be independent (no shared mutable state) and
 * write to pre-assigned output slots. All suite-level determinism in
 * catchsim rests on that discipline, not on scheduling.
 */

#ifndef CATCHSIM_COMMON_THREAD_POOL_HH_
#define CATCHSIM_COMMON_THREAD_POOL_HH_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace catchsim
{

class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /** @param workers thread count; 0 or 1 runs every batch inline. */
    explicit ThreadPool(unsigned workers)
        : queues_(workers > 1 ? workers : 0)
    {
        for (size_t w = 0; w < queues_.size(); ++w)
            threads_.emplace_back([this, w] { workerLoop(w); });
    }

    ~ThreadPool()
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            shutdown_ = true;
        }
        wake_.notify_all();
        for (auto &t : threads_)
            t.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned workers() const
    {
        return queues_.empty() ? 1u
                               : static_cast<unsigned>(queues_.size());
    }

    /**
     * Runs every task and blocks until all have finished. Tasks are
     * dealt round-robin in submission order, so submitting longest
     * first approximates LPT scheduling. Serial pools (<= 1 worker)
     * run the tasks inline, in order, on the calling thread.
     */
    void
    runAll(std::vector<Task> tasks)
    {
        if (queues_.empty()) {
            for (auto &t : tasks)
                t();
            return;
        }
        {
            std::unique_lock<std::mutex> lock(mutex_);
            pending_ += tasks.size();
            for (size_t i = 0; i < tasks.size(); ++i)
                queues_[i % queues_.size()].push_back(
                    QueuedTask{std::move(tasks[i]), false});
        }
        wake_.notify_all();
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [this] { return pending_ == 0; });
    }

    /**
     * Offers a fire-and-forget task to IDLE capacity only: accepted
     * when fewer tasks (batch or detached) are outstanding than there
     * are workers, i.e. taking it cannot delay batch work. Detached
     * tasks never block runAll's completion and are drained (run, not
     * dropped) before the destructor returns. Serial pools refuse —
     * there is no spare thread to hand off to. Returns acceptance.
     */
    bool
    trySubmitDetached(Task task)
    {
        if (queues_.empty())
            return false;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (shutdown_ || pending_ + detached_ >= queues_.size())
                return false;
            ++detached_;
            queues_[detachedNext_++ % queues_.size()].push_back(
                QueuedTask{std::move(task), true});
        }
        wake_.notify_one();
        return true;
    }

  private:
    /** A queued closure; detached ones don't count toward runAll. */
    struct QueuedTask
    {
        Task fn;
        bool detached = false;
    };

    void
    workerLoop(size_t self)
    {
        for (;;) {
            QueuedTask task;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                wake_.wait(lock, [this, self] {
                    return shutdown_ || findWork(self);
                });
                if (shutdown_ && !findWork(self))
                    return;
                task = takeWork(self);
            }
            task.fn();
            std::unique_lock<std::mutex> lock(mutex_);
            if (task.detached) {
                --detached_;
            } else if (--pending_ == 0) {
                done_.notify_all();
            }
        }
    }

    /** Under mutex_: true when own or stealable work exists. */
    bool
    findWork(size_t self) const
    {
        if (!queues_[self].empty())
            return true;
        for (const auto &q : queues_)
            if (!q.empty())
                return true;
        return false;
    }

    /** Under mutex_: own front first, else steal a sibling's back. */
    QueuedTask
    takeWork(size_t self)
    {
        if (!queues_[self].empty()) {
            QueuedTask t = std::move(queues_[self].front());
            queues_[self].pop_front();
            return t;
        }
        for (size_t i = 1; i < queues_.size(); ++i) {
            auto &q = queues_[(self + i) % queues_.size()];
            if (!q.empty()) {
                QueuedTask t = std::move(q.back());
                q.pop_back();
                return t;
            }
        }
        return {};
    }

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    std::vector<std::deque<QueuedTask>> queues_;
    std::vector<std::thread> threads_;
    size_t pending_ = 0;
    size_t detached_ = 0;
    size_t detachedNext_ = 0;
    bool shutdown_ = false;
};

} // namespace catchsim

#endif // CATCHSIM_COMMON_THREAD_POOL_HH_
