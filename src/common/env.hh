/**
 * @file
 * The single audited gateway for process-environment configuration
 * (CATCH_* knobs). Direct std::getenv calls are banned elsewhere in the
 * tree (enforced by tools/lint/catch_lint.py): the environment is not a
 * synchronised resource, so every read must funnel through here, where
 * the single-threaded-startup contract is stated once and checked by
 * review instead of being re-derived at each call site.
 *
 * Contract: call these helpers only before the first ThreadPool is
 * constructed (bench/CLI mains and ExperimentEnv::fromEnvironment all
 * read their knobs up front). setenv after threads exist is undefined
 * behaviour regardless of these helpers.
 */

#ifndef CATCHSIM_COMMON_ENV_HH_
#define CATCHSIM_COMMON_ENV_HH_

#include <cstdint>
#include <cstdlib>
#include <string>

namespace catchsim
{

/** Raw lookup; prefer the typed helpers below. Empty-unset aware. */
inline const char *
envRaw(const char *name)
{
    // Single-threaded-startup contract documented above.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    return std::getenv(name);
}

/** String knob, or @p fallback when unset. */
inline std::string
envString(const char *name, const std::string &fallback = "")
{
    const char *v = envRaw(name);
    return v ? std::string(v) : fallback;
}

/** Unsigned integer knob, or @p fallback when unset/unparsable. */
inline uint64_t
envU64(const char *name, uint64_t fallback)
{
    const char *v = envRaw(name);
    if (!v || !v[0])
        return fallback;
    char *end = nullptr;
    uint64_t parsed = std::strtoull(v, &end, 10);
    return (end && *end == '\0') ? parsed : fallback;
}

/** Boolean knob: set-and-first-char-'1' is true (repo convention). */
inline bool
envFlag(const char *name)
{
    const char *v = envRaw(name);
    return v && v[0] == '1';
}

} // namespace catchsim

#endif // CATCHSIM_COMMON_ENV_HH_
