/**
 * @file
 * Minimal JSON support shared by the results exporter and the suite
 * journal: an append-only writer with deterministic field order, and a
 * small recursive-descent reader for the subset the writer emits
 * (objects, arrays, strings, numbers, booleans, null).
 *
 * Round-trip contract: u64 counters are written as decimal integers and
 * parsed back exactly; doubles are written with %.17g, which is enough
 * digits to reproduce the bit pattern on read-back. The journal's
 * skip-finished-runs logic rests on this.
 */

#ifndef CATCHSIM_COMMON_JSON_HH_
#define CATCHSIM_COMMON_JSON_HH_

#include <cinttypes>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hh"

namespace catchsim
{

/**
 * Tiny append-only JSON builder. Field order is fixed by call order so
 * exports diff cleanly run-to-run; doubles use %.17g (round-trippable).
 */
class JsonWriter
{
  public:
    void
    open()
    {
        out_ += '{';
        first_ = true;
    }

    void
    close()
    {
        out_ += '}';
        first_ = false;
    }

    void
    key(const char *name)
    {
        if (!first_)
            out_ += ',';
        first_ = false;
        out_ += '"';
        out_ += name;
        out_ += "\":";
    }

    void
    field(const char *name, uint64_t v)
    {
        key(name);
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
        out_ += buf;
    }

    void
    field(const char *name, double v)
    {
        key(name);
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        out_ += buf;
    }

    void
    field(const char *name, const std::string &v)
    {
        key(name);
        out_ += '"';
        for (char c : v) {
            if (c == '"' || c == '\\')
                out_ += '\\';
            out_ += c;
        }
        out_ += '"';
    }

    void
    field(const char *name, bool v)
    {
        key(name);
        out_ += v ? "true" : "false";
    }

    /** Fixed-size counter array, e.g. per-level hit counts. */
    void
    fieldArray(const char *name, const uint64_t *v, size_t n)
    {
        key(name);
        out_ += '[';
        for (size_t i = 0; i < n; ++i) {
            if (i)
                out_ += ',';
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%" PRIu64, v[i]);
            out_ += buf;
        }
        out_ += ']';
    }

    void
    object(const char *name)
    {
        key(name);
        open();
    }

    /** Splices an already-serialised JSON document as a member. */
    void
    rawField(const char *name, const std::string &json)
    {
        key(name);
        out_ += json;
    }

    const std::string &str() const { return out_; }

  private:
    std::string out_;
    bool first_ = true;
};

/**
 * Parsed JSON value. Integer-looking tokens (no '.', 'e' or sign) are
 * kept as exact u64 alongside the double view, so counters survive the
 * round trip bit-for-bit even above 2^53.
 */
class JsonValue
{
  public:
    enum class Kind : uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind() const { return kind_; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }

    bool asBool() const { return b_; }
    uint64_t asU64() const { return u64_; }
    uint32_t asU32() const { return static_cast<uint32_t>(u64_); }
    double asDouble() const { return isInt_ ? static_cast<double>(u64_) : d_; }
    const std::string &asString() const { return str_; }

    /** Object member by name; nullptr when absent or not an object. */
    const JsonValue *member(const std::string &name) const;
    /** Array element by index; nullptr when out of range / not array. */
    const JsonValue *at(size_t i) const;
    size_t size() const { return items_.size(); }

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool b_ = false;
    bool isInt_ = false;
    uint64_t u64_ = 0;
    double d_ = 0;
    std::string str_;
    std::vector<std::pair<std::string, JsonValue>> members_; // objects
    std::vector<JsonValue> items_;                           // arrays
};

/**
 * Parses one complete JSON document. Trailing garbage, truncation and
 * malformed syntax all return a trace-corrupt SimError naming the
 * offset, never UB — the journal loader depends on half-written last
 * records being rejected cleanly.
 */
Expected<JsonValue> parseJson(const std::string &text);

} // namespace catchsim

#endif // CATCHSIM_COMMON_JSON_HH_
