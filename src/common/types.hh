/**
 * @file
 * Fundamental scalar types used throughout the simulator.
 */

#ifndef CATCHSIM_COMMON_TYPES_HH_
#define CATCHSIM_COMMON_TYPES_HH_

#include <cstdint>

namespace catchsim
{

/** Byte address in the simulated physical address space. */
using Addr = uint64_t;

/** Absolute time in core clock cycles since the start of simulation. */
using Cycle = uint64_t;

/** Monotonically increasing per-core instruction sequence number. */
using SeqNum = uint64_t;

/** Identifier of a simulated core (0-based). */
using CoreId = uint32_t;

/** Cache line size used by every cache level, in bytes. */
constexpr uint32_t kLineBytes = 64;

/** log2 of the cache line size. */
constexpr uint32_t kLineShift = 6;

/** Size of a 4 KB page, used by the TACT trigger cache and prefetchers. */
constexpr Addr kPageBytes = 4096;

/** Returns the cache-line-aligned address containing @p addr. */
constexpr Addr
lineAddr(Addr addr)
{
    return addr & ~static_cast<Addr>(kLineBytes - 1);
}

/** Returns the 4 KB-page-aligned address containing @p addr. */
constexpr Addr
pageAddr(Addr addr)
{
    return addr & ~static_cast<Addr>(kPageBytes - 1);
}

/** Cache hierarchy levels, outermost last. */
enum class Level : uint8_t
{
    L1 = 0,   ///< both L1I and L1D have the same latency class
    L2 = 1,
    LLC = 2,
    Mem = 3,
    None = 4, ///< e.g. store-forwarded loads never touch the hierarchy
};

/** Human-readable name for a hierarchy level. */
constexpr const char *
levelName(Level l)
{
    switch (l) {
      case Level::L1: return "L1";
      case Level::L2: return "L2";
      case Level::LLC: return "LLC";
      case Level::Mem: return "Mem";
      default: return "None";
    }
}

} // namespace catchsim

#endif // CATCHSIM_COMMON_TYPES_HH_
