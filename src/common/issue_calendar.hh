/**
 * @file
 * IssueCalendar: execution-port bandwidth as a per-cycle issue budget.
 *
 * A naive "next-free time per port" model breaks out-of-order schedules:
 * an op that becomes ready far in the future (e.g. dependent on a memory
 * load) would reserve a port *from its start time* and make the port
 * look busy for every intervening cycle, stalling younger ops that are
 * ready now. Real schedulers issue oldest-ready-first; a port idle
 * before a future issue is usable. The calendar therefore counts issues
 * per cycle in a sliding window and schedules each op at the first cycle
 * >= its ready time with spare slots.
 */

#ifndef CATCHSIM_COMMON_ISSUE_CALENDAR_HH_
#define CATCHSIM_COMMON_ISSUE_CALENDAR_HH_

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace catchsim
{

class IssueCalendar
{
  public:
    /**
     * @param ports issue slots available per cycle
     * @param window how far ahead of the newest scheduled cycle an op
     *        can land; far beyond any realistic wakeup spread
     */
    explicit IssueCalendar(uint32_t ports, uint32_t window = 16384)
        : ports_(ports), counts_(window, 0)
    {
    }

    /**
     * Schedules one issue at the first cycle >= @p desired with a spare
     * slot, occupying @p slots issue slots (an unpipelined op models its
     * occupancy by consuming several).
     */
    Cycle
    schedule(Cycle desired, uint32_t slots = 1)
    {
        const size_t w = counts_.size();
        // Slide the window forward; slots entering it start empty.
        if (desired > maxSeen_) {
            uint64_t advance = desired - maxSeen_;
            if (advance >= w) {
                std::fill(counts_.begin(), counts_.end(), 0);
            } else {
                for (uint64_t i = 1; i <= advance; ++i)
                    counts_[(maxSeen_ + i) % w] = 0;
            }
            maxSeen_ = desired;
        }
        // Requests below the window floor are clamped (they would have
        // been scheduled long ago; rare and harmless).
        Cycle floor = maxSeen_ >= w ? maxSeen_ - w + 1 : 0;
        Cycle c = desired < floor ? floor : desired;
        uint32_t remaining = slots;
        Cycle start = c;
        while (true) {
            if (c > maxSeen_) {
                uint64_t advance = c - maxSeen_;
                for (uint64_t i = 1; i <= advance; ++i)
                    counts_[(maxSeen_ + i) % w] = 0;
                maxSeen_ = c;
            }
            uint32_t free_here = ports_ > counts_[c % w]
                                     ? ports_ - counts_[c % w]
                                     : 0;
            if (free_here == 0) {
                if (remaining == slots)
                    start = c + 1; // haven't started issuing yet
                ++c;
                continue;
            }
            uint32_t take = free_here < remaining ? free_here : remaining;
            counts_[c % w] += take;
            remaining -= take;
            if (remaining == 0)
                return start;
            ++c;
        }
    }

  private:
    uint32_t ports_;
    std::vector<uint8_t> counts_;
    Cycle maxSeen_ = 0;
};

} // namespace catchsim

#endif // CATCHSIM_COMMON_ISSUE_CALENDAR_HH_
