/**
 * @file
 * IssueCalendar: execution-port bandwidth as a per-cycle issue budget.
 *
 * A naive "next-free time per port" model breaks out-of-order schedules:
 * an op that becomes ready far in the future (e.g. dependent on a memory
 * load) would reserve a port *from its start time* and make the port
 * look busy for every intervening cycle, stalling younger ops that are
 * ready now. Real schedulers issue oldest-ready-first; a port idle
 * before a future issue is usable. The calendar therefore counts issues
 * per cycle in a sliding window and schedules each op at the first cycle
 * >= its ready time with spare slots.
 */

#ifndef CATCHSIM_COMMON_ISSUE_CALENDAR_HH_
#define CATCHSIM_COMMON_ISSUE_CALENDAR_HH_

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace catchsim
{

class IssueCalendar
{
  public:
    /**
     * @param ports issue slots available per cycle (must fit the packed
     *        8-bit per-cycle count)
     * @param window how far ahead of the newest scheduled cycle an op
     *        can land; far beyond any realistic wakeup spread
     */
    explicit IssueCalendar(uint32_t ports, uint32_t window = 16384)
        : ports_(ports), slots_(window, 0)
    {
    }

    /**
     * Schedules one issue at the first cycle >= @p desired with a spare
     * slot, occupying @p slots issue slots (an unpipelined op models its
     * occupancy by consuming several).
     *
     * Each ring slot packs (cycle << 8 | count): a slot only counts for
     * cycle c if its stored cycle matches, so sliding the window forward
     * needs no eager zeroing — the DRAM banks jump thousands of cycles
     * between commands, and clearing every intervening slot used to
     * dominate whole-simulator runtime. Return values are identical to
     * the eager-zeroing implementation for every call sequence.
     */
    Cycle
    schedule(Cycle desired, uint32_t slots = 1)
    {
        const size_t w = slots_.size();
        if (desired > maxSeen_)
            maxSeen_ = desired;
        // Requests below the window floor are clamped (they would have
        // been scheduled long ago; rare and harmless).
        Cycle floor = maxSeen_ >= w ? maxSeen_ - w + 1 : 0;
        Cycle c = desired < floor ? floor : desired;
        uint32_t remaining = slots;
        Cycle start = c;
        while (true) {
            if (c > maxSeen_)
                maxSeen_ = c;
            uint64_t &slot = slots_[c % w];
            uint32_t used = (slot >> 8) == c
                                ? static_cast<uint32_t>(slot & 0xff)
                                : 0;
            uint32_t free_here = ports_ > used ? ports_ - used : 0;
            if (free_here == 0) {
                if (remaining == slots)
                    start = c + 1; // haven't started issuing yet
                ++c;
                continue;
            }
            uint32_t take = free_here < remaining ? free_here : remaining;
            slot = (c << 8) | (used + take);
            remaining -= take;
            if (remaining == 0)
                return start;
            ++c;
        }
    }

  private:
    uint32_t ports_;
    /// Ring of (cycle << 8 | issue count); a slot is implicitly empty
    /// when its stored cycle is not the one being probed.
    std::vector<uint64_t> slots_;
    Cycle maxSeen_ = 0;
};

} // namespace catchsim

#endif // CATCHSIM_COMMON_ISSUE_CALENDAR_HH_
