#include "common/stats.hh"

#include <cmath>
#include <cstdio>

#include "common/logging.hh"

namespace catchsim
{

Histogram::Histogram(uint64_t bucket_width, size_t num_buckets)
    : bucketWidth_(bucket_width), buckets_(num_buckets, 0)
{
    CATCHSIM_ASSERT(bucket_width > 0 && num_buckets > 0,
                    "degenerate histogram");
}

void
Histogram::add(uint64_t value, uint64_t count)
{
    size_t idx = value / bucketWidth_;
    if (idx >= buckets_.size())
        idx = buckets_.size() - 1;
    buckets_[idx] += count;
    samples_ += count;
    total_ += value * count;
}

double
Histogram::mean() const
{
    return samples_ ? static_cast<double>(total_) / samples_ : 0.0;
}

double
Histogram::fractionAtLeast(uint64_t threshold) const
{
    if (!samples_)
        return 0.0;
    uint64_t above = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
        // a bucket counts as >= threshold if its lower bound is
        uint64_t lower = i * bucketWidth_;
        if (lower >= threshold)
            above += buckets_[i];
    }
    return static_cast<double>(above) / samples_;
}

double
Histogram::fractionBelow(uint64_t threshold) const
{
    return samples_ ? 1.0 - fractionAtLeast(threshold) : 0.0;
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b = 0;
    samples_ = 0;
    total_ = 0;
}

TablePrinter::TablePrinter(std::vector<std::string> header)
{
    rows_.push_back(std::move(header));
}

void
TablePrinter::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

void
TablePrinter::print() const
{
    std::vector<size_t> widths;
    for (const auto &row : rows_) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    for (size_t r = 0; r < rows_.size(); ++r) {
        std::string line;
        for (size_t c = 0; c < rows_[r].size(); ++c) {
            std::string cell = rows_[r][c];
            cell.resize(widths[c], ' ');
            line += cell;
            if (c + 1 < rows_[r].size())
                line += "  ";
        }
        std::printf("%s\n", line.c_str());
        if (r == 0) {
            std::string sep;
            for (size_t c = 0; c < widths.size(); ++c) {
                sep += std::string(widths[c], '-');
                if (c + 1 < widths.size())
                    sep += "  ";
            }
            std::printf("%s\n", sep.c_str());
        }
    }
}

std::string
formatPercent(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%+.*f%%", decimals, fraction * 100.0);
    return buf;
}

std::string
formatDouble(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

double
geomean(const std::vector<double> &ratios)
{
    CATCHSIM_ASSERT(!ratios.empty(), "geomean of empty set");
    double log_sum = 0.0;
    for (double r : ratios) {
        CATCHSIM_ASSERT(r > 0.0, "geomean needs positive ratios, got ", r);
        log_sum += std::log(r);
    }
    return std::exp(log_sum / static_cast<double>(ratios.size()));
}

} // namespace catchsim
