/**
 * @file
 * gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * panic() is for internal simulator bugs (aborts); fatal() is for user
 * configuration errors (clean exit); warn()/inform() never stop the run.
 */

#ifndef CATCHSIM_COMMON_LOGGING_HH_
#define CATCHSIM_COMMON_LOGGING_HH_

#include <sstream>
#include <string>

namespace catchsim
{

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Concatenates a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Abort the simulation due to an internal inconsistency (a simulator bug). */
template <typename... Args>
[[noreturn]] void
panicAt(const char *file, int line, Args &&...args)
{
    detail::panicImpl(file, line, detail::concat(std::forward<Args>(args)...));
}

/** Terminate the simulation due to a user error (bad configuration etc.). */
template <typename... Args>
[[noreturn]] void
fatalAt(const char *file, int line, Args &&...args)
{
    detail::fatalImpl(file, line, detail::concat(std::forward<Args>(args)...));
}

/** Print a warning about questionable but survivable behaviour. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Print an informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace catchsim

#define CATCHSIM_PANIC(...) ::catchsim::panicAt(__FILE__, __LINE__, __VA_ARGS__)
#define CATCHSIM_FATAL(...) ::catchsim::fatalAt(__FILE__, __LINE__, __VA_ARGS__)

/** Invariant check that survives NDEBUG builds; panics with a message. */
#define CATCHSIM_ASSERT(cond, ...)                                           \
    do {                                                                      \
        if (!(cond)) {                                                        \
            CATCHSIM_PANIC("assertion failed: " #cond " ", __VA_ARGS__);      \
        }                                                                     \
    } while (0)

#endif // CATCHSIM_COMMON_LOGGING_HH_
