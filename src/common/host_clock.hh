/**
 * @file
 * Host-side wall-clock and resource probes, for profiling the simulator
 * itself (--profile, the perf bench). These values describe the HOST
 * run, never the simulated machine: nothing simulated may depend on
 * them, which is why this is the one file waived from the determinism
 * lint's clock ban.
 */

#ifndef CATCHSIM_COMMON_HOST_CLOCK_HH_
#define CATCHSIM_COMMON_HOST_CLOCK_HH_

#include <cstdint>
#include <ctime>

#include <sys/resource.h>

namespace catchsim
{

/** Monotonic host seconds (arbitrary epoch; use differences only). */
inline double
hostSeconds()
{
    timespec ts = {};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

/** Peak resident set size of this process so far, in bytes. */
inline uint64_t
peakRssBytes()
{
    rusage ru = {};
    getrusage(RUSAGE_SELF, &ru);
    // Linux reports ru_maxrss in kilobytes.
    return static_cast<uint64_t>(ru.ru_maxrss) * 1024;
}

} // namespace catchsim

#endif // CATCHSIM_COMMON_HOST_CLOCK_HH_
