/**
 * @file
 * Baseline aggressive multi-stream prefetcher at the L2 (Srinath et al.
 * HPCA '07 / Dahlgren & Stenstrom style): detects per-4KB-page
 * unit-stride line streams in either direction and prefetches a
 * configurable degree of lines ahead into the L2. This is the
 * "traditional prefetcher targeting LLC misses" the paper keeps enabled
 * under every configuration.
 */

#ifndef CATCHSIM_PREFETCH_STREAM_PREFETCHER_HH_
#define CATCHSIM_PREFETCH_STREAM_PREFETCHER_HH_

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace catchsim
{

/** Per-page stream detection with direction training. */
class StreamPrefetcher
{
  public:
    /**
     * @param entries number of concurrently tracked pages
     * @param degree lines prefetched ahead of a confirmed stream
     */
    StreamPrefetcher(uint32_t entries, uint32_t degree);

    /**
     * Trains on an access reaching the L2 and appends the lines to
     * prefetch (if any) to @p out.
     */
    void observe(Addr addr, std::vector<Addr> &out);

    uint64_t issued() const { return issued_; }

  private:
    struct Entry
    {
        bool valid = false;
        Addr page = 0;
        int32_t lastLine = 0;   ///< line offset within page, 0..63
        int32_t direction = 0;  ///< -1 / +1 once trained
        uint32_t confirms = 0;  ///< monotone accesses seen
        int64_t lastUse = 0;
    };

    Entry *find(Addr page);
    Entry *allocate(Addr page);

    std::vector<Entry> table_;
    uint32_t degree_;
    int64_t clock_ = 0;
    uint64_t issued_ = 0;
};

} // namespace catchsim

#endif // CATCHSIM_PREFETCH_STREAM_PREFETCHER_HH_
