/**
 * @file
 * Baseline aggressive multi-stream prefetcher at the L2 (Srinath et al.
 * HPCA '07 / Dahlgren & Stenstrom style): detects per-4KB-page
 * unit-stride line streams in either direction and prefetches a
 * configurable degree of lines ahead into the L2. This is the
 * "traditional prefetcher targeting LLC misses" the paper keeps enabled
 * under every configuration.
 */

#ifndef CATCHSIM_PREFETCH_STREAM_PREFETCHER_HH_
#define CATCHSIM_PREFETCH_STREAM_PREFETCHER_HH_

#include <cstdint>
#include <vector>

#include "common/state_io.hh"
#include "common/types.hh"

namespace catchsim
{

/** Per-page stream detection with direction training. */
class StreamPrefetcher
{
  public:
    /**
     * @param entries number of concurrently tracked pages
     * @param degree lines prefetched ahead of a confirmed stream
     */
    StreamPrefetcher(uint32_t entries, uint32_t degree);

    /**
     * Trains on an access reaching the L2 and appends the lines to
     * prefetch (if any) to @p out.
     */
    void observe(Addr addr, std::vector<Addr> &out);

    uint64_t issued() const { return issued_; }

    /** Serializes tags, training state, the recency list and the issue
     *  counter (warming trains all of them). */
    void saveWarmState(StateSink &sink) const;

    /** Restores a saveWarmState() stream; false on a malformed one. */
    bool loadWarmState(StateSource &src);

  private:
    // Tags live in their own contiguous array so the match scan and the
    // LRU-victim scan compile to straight-line vector code: observe()
    // runs on every access reaching the L2, and on irregular workloads
    // (where nearly every access misses the table) the two scans were
    // the hottest loop in functional warming. kNoPage doubles as the
    // invalid tag — real pages are page-aligned, so ~0 can never match
    // — which keeps the scans free of per-entry valid tests.
    static constexpr Addr kNoPage = ~Addr(0);

    struct Train
    {
        int32_t lastLine = 0;   ///< line offset within page, 0..63
        int32_t direction = 0;  ///< -1 / +1 once trained
        uint32_t confirms = 0;  ///< monotone accesses seen
    };

    /** @returns entry index for @p page, or entries() on a miss. */
    uint32_t find(Addr page) const;

    /** First never-used slot, else the least-recently-used one. */
    uint32_t allocate();

    /** Unlinks entry @p i and relinks it at the MRU head. */
    void touch(uint32_t i);

    std::vector<Addr> streamPages_;
    std::vector<Train> train_;
    // Recency is an intrusive doubly-linked list instead of timestamps:
    // every observe touches exactly one entry, so list order is exactly
    // last-touch order and the LRU victim is the tail — no scan.
    std::vector<uint32_t> prev_;
    std::vector<uint32_t> next_;
    uint32_t head_ = kNil;
    uint32_t tail_ = kNil;
    uint32_t filled_ = 0;
    uint32_t degree_;
    uint64_t issued_ = 0;

    static constexpr uint32_t kNil = ~0u;
};

} // namespace catchsim

#endif // CATCHSIM_PREFETCH_STREAM_PREFETCHER_HH_
