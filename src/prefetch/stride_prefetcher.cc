#include "prefetch/stride_prefetcher.hh"

#include "common/bitutil.hh"

namespace catchsim
{

StridePrefetcher::StridePrefetcher(uint32_t entries) : table_(entries) {}

uint32_t
StridePrefetcher::indexOf(Addr pc) const
{
    return static_cast<uint32_t>(mix64(pc) % table_.size());
}

std::optional<Addr>
StridePrefetcher::observe(Addr pc, Addr addr)
{
    Entry &e = table_[indexOf(pc)];
    if (!e.valid || e.pc != pc) {
        e = Entry{};
        e.pc = pc;
        e.valid = true;
        e.lastAddr = addr;
        return std::nullopt;
    }

    int64_t stride = addrDelta(addr, e.lastAddr);
    e.lastAddr = addr;
    if (stride == 0)
        return std::nullopt;
    if (stride == e.stride) {
        e.conf.increment();
    } else {
        if (e.conf.decrement() == 0)
            e.stride = stride;
        return std::nullopt;
    }
    if (!e.conf.saturated())
        return std::nullopt;
    ++issued_;
    return addrOffset(addr, e.stride);
}

bool
StridePrefetcher::stableStride(Addr pc, int64_t *stride_out) const
{
    const Entry &e = table_[indexOf(pc)];
    if (!e.valid || e.pc != pc || !e.conf.saturated() || e.stride == 0)
        return false;
    *stride_out = e.stride;
    return true;
}

void
StridePrefetcher::saveWarmState(StateSink &sink) const
{
    sink.tag(stateTag("STRD"));
    sink.u64(table_.size());
    for (const Entry &e : table_) {
        sink.u64(e.pc);
        sink.boolean(e.valid);
        sink.u64(e.lastAddr);
        sink.i64(e.stride);
        sink.u32(e.conf.value());
    }
    sink.u64(issued_);
}

bool
StridePrefetcher::loadWarmState(StateSource &src)
{
    if (!src.expect(stateTag("STRD")))
        return false;
    if (src.u64() != table_.size() || !src.fits(table_.size() * 29))
        return false;
    for (Entry &e : table_) {
        e.pc = src.u64();
        e.valid = src.boolean();
        e.lastAddr = src.u64();
        e.stride = src.i64();
        e.conf.reset(src.u32());
    }
    issued_ = src.u64();
    return src.ok();
}

} // namespace catchsim
