#include "prefetch/stride_prefetcher.hh"

#include "common/bitutil.hh"

namespace catchsim
{

StridePrefetcher::StridePrefetcher(uint32_t entries) : table_(entries) {}

uint32_t
StridePrefetcher::indexOf(Addr pc) const
{
    return static_cast<uint32_t>(mix64(pc) % table_.size());
}

std::optional<Addr>
StridePrefetcher::observe(Addr pc, Addr addr)
{
    Entry &e = table_[indexOf(pc)];
    if (!e.valid || e.pc != pc) {
        e = Entry{};
        e.pc = pc;
        e.valid = true;
        e.lastAddr = addr;
        return std::nullopt;
    }

    int64_t stride = addrDelta(addr, e.lastAddr);
    e.lastAddr = addr;
    if (stride == 0)
        return std::nullopt;
    if (stride == e.stride) {
        e.conf.increment();
    } else {
        if (e.conf.decrement() == 0)
            e.stride = stride;
        return std::nullopt;
    }
    if (!e.conf.saturated())
        return std::nullopt;
    ++issued_;
    return addrOffset(addr, e.stride);
}

bool
StridePrefetcher::stableStride(Addr pc, int64_t *stride_out) const
{
    const Entry &e = table_[indexOf(pc)];
    if (!e.valid || e.pc != pc || !e.conf.saturated() || e.stride == 0)
        return false;
    *stride_out = e.stride;
    return true;
}

} // namespace catchsim
