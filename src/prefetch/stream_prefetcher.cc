#include "prefetch/stream_prefetcher.hh"

namespace catchsim
{

StreamPrefetcher::StreamPrefetcher(uint32_t entries, uint32_t degree)
    : streamPages_(entries, kNoPage), train_(entries), prev_(entries, kNil),
      next_(entries, kNil), degree_(degree)
{
}

uint32_t
StreamPrefetcher::find(Addr page) const
{
    uint32_t n = static_cast<uint32_t>(streamPages_.size());
    for (uint32_t i = 0; i < n; ++i)
        if (streamPages_[i] == page)
            return i;
    return n;
}

uint32_t
StreamPrefetcher::allocate()
{
    // Slots fill in index order and are never invalidated, so "first
    // never-used slot" is just the fill count; afterwards the victim is
    // the recency-list tail, matching the minimum-timestamp scan this
    // replaced (timestamps were unique, so order was total).
    if (filled_ < streamPages_.size()) {
        uint32_t i = filled_++;
        prev_[i] = kNil;
        next_[i] = head_;
        if (head_ != kNil)
            prev_[head_] = i;
        head_ = i;
        if (tail_ == kNil)
            tail_ = i;
        return i;
    }
    uint32_t i = tail_;
    touch(i);
    return i;
}

void
StreamPrefetcher::touch(uint32_t i)
{
    if (head_ == i)
        return;
    // Unlink (i is not the head, so prev_[i] is valid).
    next_[prev_[i]] = next_[i];
    if (next_[i] != kNil)
        prev_[next_[i]] = prev_[i];
    else
        tail_ = prev_[i];
    // Relink at the head.
    prev_[i] = kNil;
    next_[i] = head_;
    prev_[head_] = i;
    head_ = i;
}

void
StreamPrefetcher::observe(Addr addr, std::vector<Addr> &out)
{
    Addr page = pageAddr(addr);
    int32_t line = static_cast<int32_t>((addr - page) >> kLineShift);
    uint32_t i = find(page);
    if (i == streamPages_.size()) {
        i = allocate();
        streamPages_[i] = page;
        train_[i] = Train{line, 0, 0};
        return;
    }
    touch(i);
    Train &t = train_[i];
    int32_t delta = line - t.lastLine;
    if (delta == 0)
        return;
    int32_t dir = delta > 0 ? 1 : -1;
    if (t.direction == dir) {
        if (t.confirms < 16)
            ++t.confirms;
    } else {
        t.direction = dir;
        t.confirms = 1;
    }
    t.lastLine = line;
    if (t.confirms < 2)
        return;

    // Confirmed stream: prefetch degree_ lines ahead within the page.
    for (uint32_t k = 1; k <= degree_; ++k) {
        int32_t target = line + dir * static_cast<int32_t>(k);
        if (target < 0 || target > 63)
            break;
        // Bounded by degree_; the caller's scratch vector is reserved
        // once at construction and keeps its capacity across calls.
        // catch-analyze: allow(step-alloc-transitive)
        out.push_back(page + static_cast<Addr>(target) * kLineBytes);
        ++issued_;
    }
}

void
StreamPrefetcher::saveWarmState(StateSink &sink) const
{
    sink.tag(stateTag("STRM"));
    sink.u64(streamPages_.size());
    for (Addr p : streamPages_)
        sink.u64(p);
    for (const Train &t : train_) {
        sink.u32(static_cast<uint32_t>(t.lastLine));
        sink.u32(static_cast<uint32_t>(t.direction));
        sink.u32(t.confirms);
    }
    for (uint32_t p : prev_)
        sink.u32(p);
    for (uint32_t n : next_)
        sink.u32(n);
    sink.u32(head_);
    sink.u32(tail_);
    sink.u32(filled_);
    sink.u64(issued_);
}

bool
StreamPrefetcher::loadWarmState(StateSource &src)
{
    if (!src.expect(stateTag("STRM")))
        return false;
    if (src.u64() != streamPages_.size() || !src.fits(streamPages_.size() * 28))
        return false;
    for (Addr &p : streamPages_)
        p = src.u64();
    for (Train &t : train_) {
        t.lastLine = static_cast<int32_t>(src.u32());
        t.direction = static_cast<int32_t>(src.u32());
        t.confirms = src.u32();
    }
    for (uint32_t &p : prev_)
        p = src.u32();
    for (uint32_t &n : next_)
        n = src.u32();
    head_ = src.u32();
    tail_ = src.u32();
    filled_ = src.u32();
    issued_ = src.u64();
    return src.ok();
}

} // namespace catchsim
