#include "prefetch/stream_prefetcher.hh"

namespace catchsim
{

StreamPrefetcher::StreamPrefetcher(uint32_t entries, uint32_t degree)
    : pages_(entries, kNoPage), train_(entries), prev_(entries, kNil),
      next_(entries, kNil), degree_(degree)
{
}

uint32_t
StreamPrefetcher::find(Addr page) const
{
    uint32_t n = static_cast<uint32_t>(pages_.size());
    for (uint32_t i = 0; i < n; ++i)
        if (pages_[i] == page)
            return i;
    return n;
}

uint32_t
StreamPrefetcher::allocate()
{
    // Slots fill in index order and are never invalidated, so "first
    // never-used slot" is just the fill count; afterwards the victim is
    // the recency-list tail, matching the minimum-timestamp scan this
    // replaced (timestamps were unique, so order was total).
    if (filled_ < pages_.size()) {
        uint32_t i = filled_++;
        prev_[i] = kNil;
        next_[i] = head_;
        if (head_ != kNil)
            prev_[head_] = i;
        head_ = i;
        if (tail_ == kNil)
            tail_ = i;
        return i;
    }
    uint32_t i = tail_;
    touch(i);
    return i;
}

void
StreamPrefetcher::touch(uint32_t i)
{
    if (head_ == i)
        return;
    // Unlink (i is not the head, so prev_[i] is valid).
    next_[prev_[i]] = next_[i];
    if (next_[i] != kNil)
        prev_[next_[i]] = prev_[i];
    else
        tail_ = prev_[i];
    // Relink at the head.
    prev_[i] = kNil;
    next_[i] = head_;
    prev_[head_] = i;
    head_ = i;
}

void
StreamPrefetcher::observe(Addr addr, std::vector<Addr> &out)
{
    Addr page = pageAddr(addr);
    int32_t line = static_cast<int32_t>((addr - page) >> kLineShift);
    uint32_t i = find(page);
    if (i == pages_.size()) {
        i = allocate();
        pages_[i] = page;
        train_[i] = Train{line, 0, 0};
        return;
    }
    touch(i);
    Train &t = train_[i];
    int32_t delta = line - t.lastLine;
    if (delta == 0)
        return;
    int32_t dir = delta > 0 ? 1 : -1;
    if (t.direction == dir) {
        if (t.confirms < 16)
            ++t.confirms;
    } else {
        t.direction = dir;
        t.confirms = 1;
    }
    t.lastLine = line;
    if (t.confirms < 2)
        return;

    // Confirmed stream: prefetch degree_ lines ahead within the page.
    for (uint32_t k = 1; k <= degree_; ++k) {
        int32_t target = line + dir * static_cast<int32_t>(k);
        if (target < 0 || target > 63)
            break;
        // Bounded by degree_; the caller's scratch vector is reserved
        // once at construction and keeps its capacity across calls.
        // catch-analyze: allow(step-alloc-transitive)
        out.push_back(page + static_cast<Addr>(target) * kLineBytes);
        ++issued_;
    }
}

} // namespace catchsim
