#include "prefetch/stream_prefetcher.hh"

namespace catchsim
{

StreamPrefetcher::StreamPrefetcher(uint32_t entries, uint32_t degree)
    : table_(entries), degree_(degree)
{
}

StreamPrefetcher::Entry *
StreamPrefetcher::find(Addr page)
{
    for (auto &e : table_)
        if (e.valid && e.page == page)
            return &e;
    return nullptr;
}

StreamPrefetcher::Entry *
StreamPrefetcher::allocate(Addr page)
{
    Entry *lru = &table_[0];
    for (auto &e : table_) {
        if (!e.valid)
            return &e;
        if (e.lastUse < lru->lastUse)
            lru = &e;
    }
    *lru = Entry{};
    (void)page;
    return lru;
}

void
StreamPrefetcher::observe(Addr addr, std::vector<Addr> &out)
{
    ++clock_;
    Addr page = pageAddr(addr);
    int32_t line = static_cast<int32_t>((addr - page) >> kLineShift);
    Entry *e = find(page);
    if (!e) {
        e = allocate(page);
        e->valid = true;
        e->page = page;
        e->lastLine = line;
        e->direction = 0;
        e->confirms = 0;
        e->lastUse = clock_;
        return;
    }
    e->lastUse = clock_;
    int32_t delta = line - e->lastLine;
    if (delta == 0)
        return;
    int32_t dir = delta > 0 ? 1 : -1;
    if (e->direction == dir) {
        if (e->confirms < 16)
            ++e->confirms;
    } else {
        e->direction = dir;
        e->confirms = 1;
    }
    e->lastLine = line;
    if (e->confirms < 2)
        return;

    // Confirmed stream: prefetch degree_ lines ahead within the page.
    for (uint32_t k = 1; k <= degree_; ++k) {
        int32_t target = line + dir * static_cast<int32_t>(k);
        if (target < 0 || target > 63)
            break;
        out.push_back(page + static_cast<Addr>(target) * kLineBytes);
        ++issued_;
    }
}

} // namespace catchsim
