/**
 * @file
 * Baseline L1 PC-based stride prefetcher (Fu et al., MICRO '92 style),
 * prefetch distance 1 - exactly the baseline the paper assumes the L1
 * already has. TACT-Deep-Self extends this idea to deep distances for
 * critical PCs only.
 */

#ifndef CATCHSIM_PREFETCH_STRIDE_PREFETCHER_HH_
#define CATCHSIM_PREFETCH_STRIDE_PREFETCHER_HH_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/sat_counter.hh"
#include "common/state_io.hh"
#include "common/types.hh"

namespace catchsim
{

/** Per-load-PC stride detection with 2-bit confidence. */
class StridePrefetcher
{
  public:
    explicit StridePrefetcher(uint32_t entries = 256);

    /**
     * Trains on a demand load and, when the PC has a confident stride,
     * returns the distance-1 prefetch address.
     */
    std::optional<Addr> observe(Addr pc, Addr addr);

    /**
     * Exposes the learned stride for a PC (used by TACT-Deep-Self and
     * TACT-Feeder, which run ahead on the *baseline* stride table).
     * @returns true and fills @p stride_out when confident
     */
    bool stableStride(Addr pc, int64_t *stride_out) const;

    uint64_t issued() const { return issued_; }

    /** Serializes the table and issue counter (warming trains both). */
    void saveWarmState(StateSink &sink) const;

    /** Restores a saveWarmState() stream; false on a malformed one. */
    bool loadWarmState(StateSource &src);

  private:
    struct Entry
    {
        Addr pc = 0;
        bool valid = false;
        Addr lastAddr = 0;
        int64_t stride = 0;
        SatCounter conf{2, 0};
    };

    uint32_t indexOf(Addr pc) const;

    std::vector<Entry> table_;
    uint64_t issued_ = 0;
};

} // namespace catchsim

#endif // CATCHSIM_PREFETCH_STRIDE_PREFETCHER_HH_
