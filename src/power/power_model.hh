/**
 * @file
 * Energy and area models standing in for CACTI 6.0 (cache energy/area),
 * Orion 2.0 (ring interconnect energy) and the Micron DRAM power
 * calculator, as used by the paper's Section VI-E. Constants are
 * calibrated to those tools' published outputs for the relevant size
 * range; only *relative* energy across cache configurations matters for
 * reproducing Figs 10/16.
 */

#ifndef CATCHSIM_POWER_POWER_MODEL_HH_
#define CATCHSIM_POWER_POWER_MODEL_HH_

#include <cstdint>

#include "cache/cache.hh"
#include "cache/hierarchy.hh"
#include "common/sim_config.hh"
#include "dram/dram.hh"

namespace catchsim
{

/** Energy totals for one measured window, in millijoules. */
struct EnergyBreakdown
{
    double coreDynamic = 0;
    double cacheDynamic = 0;
    double interconnect = 0;
    double dramDynamic = 0;
    double staticLeakage = 0;

    double
    total() const
    {
        return coreDynamic + cacheDynamic + interconnect + dramDynamic +
               staticLeakage;
    }
};

/** Tunable energy constants (defaults: 14 nm-class estimates). */
struct EnergyParams
{
    double corePerInstrNj = 0.45;   ///< core dynamic energy / instruction
    double coreStaticWatt = 0.9;    ///< per-core background power

    // Per-access cache energies; CACTI-style sqrt(capacity) scaling is
    // applied around these reference points.
    double l1AccessNj = 0.05;       ///< 32 KB reference
    double l2AccessNj = 0.28;       ///< 1 MB reference
    double llcAccessNj = 0.60;      ///< 5.5 MB reference
    double cacheLeakWattPerMb = 0.07;

    // Ring interconnect (Orion-style): energy per 64 B transfer,
    // including average hop count.
    double ringTransferNj = 0.60;

    // DRAM (Micron-style).
    double dramActivateNj = 2.2;
    double dramAccessNj = 6.0;      ///< read or write burst incl. I/O
    double dramStaticWattPerChannel = 0.65;

    double coreFreqGhz = 3.2;
};

/** Per-access energy of a cache of @p geom, scaled from the reference. */
double cacheAccessEnergyNj(const EnergyParams &p, const CacheGeometry &geom,
                           Level level);

/**
 * Computes the energy of one measured window.
 *
 * @param instrs retired instructions in the window (all cores)
 * @param cycles window length in core cycles
 */
EnergyBreakdown computeEnergy(const EnergyParams &p, const SimConfig &cfg,
                              uint64_t instrs, uint64_t cycles,
                              uint64_t l1_ops, uint64_t l2_ops,
                              uint64_t llc_ops, uint64_t ring_transfers,
                              const DramStats &dram);

/** Die-area model (mm^2) used for the iso-area configurations. */
struct AreaParams
{
    double coreLogicMm2 = 5.4;  ///< core + L1s, per core
    double l2Mm2PerMb = 1.35;
    double llcMm2PerMb = 1.20;
};

/** Total tile area for @p cores cores under @p cfg. */
double chipAreaMm2(const AreaParams &p, const SimConfig &cfg,
                   uint32_t cores);

/** Cache-only area (L2 + LLC) - the basis of the paper's ~30% claim. */
double cacheAreaMm2(const AreaParams &p, const SimConfig &cfg,
                    uint32_t cores);

} // namespace catchsim

#endif // CATCHSIM_POWER_POWER_MODEL_HH_
