#include "power/power_model.hh"

#include <cmath>

namespace catchsim
{

double
cacheAccessEnergyNj(const EnergyParams &p, const CacheGeometry &geom,
                    Level level)
{
    // CACTI-style: dynamic access energy grows roughly with the square
    // root of capacity (bitline/wordline lengths).
    double mb = static_cast<double>(geom.sizeBytes) / (1024.0 * 1024.0);
    switch (level) {
      case Level::L1:
        return p.l1AccessNj * std::sqrt(mb / (32.0 / 1024.0));
      case Level::L2:
        return p.l2AccessNj * std::sqrt(mb / 1.0);
      default:
        return p.llcAccessNj * std::sqrt(mb / 5.5);
    }
}

EnergyBreakdown
computeEnergy(const EnergyParams &p, const SimConfig &cfg, uint64_t instrs,
              uint64_t cycles, uint64_t l1_ops, uint64_t l2_ops,
              uint64_t llc_ops, uint64_t ring_transfers,
              const DramStats &dram)
{
    EnergyBreakdown e;
    const double nj_to_mj = 1e-6;
    double seconds = static_cast<double>(cycles) / (p.coreFreqGhz * 1e9);

    e.coreDynamic = instrs * p.corePerInstrNj * nj_to_mj;

    double l1_nj = cacheAccessEnergyNj(p, cfg.l1d, Level::L1);
    double l2_nj =
        cfg.hasL2 ? cacheAccessEnergyNj(p, cfg.l2, Level::L2) : 0.0;
    double llc_nj = cacheAccessEnergyNj(p, cfg.llc, Level::LLC);
    e.cacheDynamic = (l1_ops * l1_nj + l2_ops * l2_nj + llc_ops * llc_nj) *
                     nj_to_mj;

    e.interconnect = ring_transfers * p.ringTransferNj * nj_to_mj;

    e.dramDynamic = (dram.activates * p.dramActivateNj +
                     (dram.reads + dram.writes) * p.dramAccessNj) *
                    nj_to_mj;

    double cache_mb =
        (static_cast<double>(cfg.l1i.sizeBytes + cfg.l1d.sizeBytes) *
             cfg.numCores +
         (cfg.hasL2 ? static_cast<double>(cfg.l2.sizeBytes) * cfg.numCores
                    : 0.0) +
         static_cast<double>(cfg.llc.sizeBytes)) /
        (1024.0 * 1024.0);
    double static_watt = p.coreStaticWatt * cfg.numCores +
                         p.cacheLeakWattPerMb * cache_mb +
                         p.dramStaticWattPerChannel * cfg.dram.channels;
    e.staticLeakage = static_watt * seconds * 1e3; // W * s -> mJ

    return e;
}

double
chipAreaMm2(const AreaParams &p, const SimConfig &cfg, uint32_t cores)
{
    double mb_l2 =
        cfg.hasL2
            ? static_cast<double>(cfg.l2.sizeBytes) / (1024.0 * 1024.0)
            : 0.0;
    double mb_llc =
        static_cast<double>(cfg.llc.sizeBytes) / (1024.0 * 1024.0);
    return p.coreLogicMm2 * cores + p.l2Mm2PerMb * mb_l2 * cores +
           p.llcMm2PerMb * mb_llc;
}

double
cacheAreaMm2(const AreaParams &p, const SimConfig &cfg, uint32_t cores)
{
    double mb_l2 =
        cfg.hasL2
            ? static_cast<double>(cfg.l2.sizeBytes) / (1024.0 * 1024.0)
            : 0.0;
    double mb_llc =
        static_cast<double>(cfg.llc.sizeBytes) / (1024.0 * 1024.0);
    return p.l2Mm2PerMb * mb_l2 * cores + p.llcMm2PerMb * mb_llc;
}

} // namespace catchsim
