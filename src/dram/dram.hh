/**
 * @file
 * DDR4 main-memory model.
 *
 * Models channels, ranks, banks and open rows with the paper's
 * DDR4-2400 15-15-15-39 timing (expressed in 3.2 GHz core cycles),
 * per-channel data-bus occupancy, and batched write draining ("writes
 * are scheduled in batches to reduce channel turn-arounds", Section V).
 * Also counts activates/reads/writes/row-hits for the DRAM power model.
 */

#ifndef CATCHSIM_DRAM_DRAM_HH_
#define CATCHSIM_DRAM_DRAM_HH_

#include <cstdint>
#include <vector>

#include "common/sim_config.hh"
#include "common/types.hh"
#include "common/issue_calendar.hh"

namespace catchsim
{

/** Counters consumed by the power model and the bench harnesses. */
struct DramStats
{
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t activates = 0;
    uint64_t rowHits = 0;
    uint64_t rowMisses = 0;
    uint64_t writeDrains = 0;
    uint64_t refreshStalls = 0; ///< accesses delayed by a refresh window
    uint64_t totalReadLatency = 0;
    uint64_t totalBankWait = 0; ///< cycles reads waited for their bank
    uint64_t totalBusWait = 0;  ///< cycles bursts waited for the channel

    double
    avgReadLatency() const
    {
        return reads ? static_cast<double>(totalReadLatency) / reads : 0.0;
    }

    double
    rowHitRate() const
    {
        uint64_t t = rowHits + rowMisses;
        return t ? static_cast<double>(rowHits) / t : 0.0;
    }
};

/** Timing-and-state DDR4 model; one instance is shared by all cores. */
class Dram
{
  public:
    explicit Dram(const DramConfig &cfg);

    /**
     * Performs a read of the line containing @p addr issued at @p now.
     * @returns the access latency in core cycles (controller + queue +
     *          bank timing + burst)
     */
    uint64_t read(Addr addr, Cycle now);

    /**
     * Enqueues a write of the line containing @p addr. Writes complete
     * asynchronously; they consume bank/bus time when the write queue
     * drains, delaying later reads.
     */
    void write(Addr addr, Cycle now);

    const DramStats &stats() const { return stats_; }
    void resetStats() { stats_ = DramStats(); }

    uint32_t numBanks() const { return static_cast<uint32_t>(banks_.size()); }

  private:
    struct Bank
    {
        Addr openRow = kNoRow;
        Cycle activatedAt = 0;  ///< for tRAS accounting
        static constexpr Addr kNoRow = ~0ULL;
    };

    struct Channel
    {
        std::vector<Addr> writeQueue;
    };

    /** Index of the bank servicing @p addr (channel/rank/bank decode). */
    uint32_t bankIndex(Addr addr) const;
    uint32_t rankIndex(Addr addr) const;

    /** Earliest issue time respecting the rank's refresh blackouts. */
    Cycle afterRefresh(uint32_t rank, Cycle now);
    uint32_t channelIndex(Addr addr) const;
    Addr rowOf(Addr addr) const;

    /** Issues one access to the bank state machine; returns finish time. */
    Cycle access(Addr addr, Cycle now);

    /** Drains a batch of writes if the queue hit the watermark. */
    void maybeDrainWrites(uint32_t channel, Cycle now, bool force);

    DramConfig cfg_;
    std::vector<Bank> banks_;
    std::vector<IssueCalendar> bankCal_; ///< bank command occupancy
    std::vector<Channel> channels_;
    std::vector<IssueCalendar> busCal_;  ///< channel data-bus occupancy
    std::vector<Cycle> rankRefreshAt_;   ///< next refresh start per rank
    DramStats stats_;
};

} // namespace catchsim

#endif // CATCHSIM_DRAM_DRAM_HH_
