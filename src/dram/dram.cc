#include "dram/dram.hh"

#include <algorithm>

namespace catchsim
{

Dram::Dram(const DramConfig &cfg) : cfg_(cfg)
{
    uint32_t nbanks = cfg.channels * cfg.ranksPerChannel * cfg.banksPerRank;
    banks_.resize(nbanks);
    for (uint32_t b = 0; b < nbanks; ++b)
        bankCal_.emplace_back(1u);
    for (uint32_t c = 0; c < cfg.channels; ++c) {
        busCal_.emplace_back(1u);
        channels_.push_back(Channel{});
        channels_.back().writeQueue.reserve(cfg.writeQueueDepth);
    }
    // Stagger per-rank refresh phases as controllers do.
    uint32_t ranks = cfg.channels * cfg.ranksPerChannel;
    for (uint32_t r = 0; r < ranks; ++r)
        rankRefreshAt_.push_back(cfg.tRefi * (r + 1) / (ranks + 1));
}

uint32_t
Dram::rankIndex(Addr addr) const
{
    return bankIndex(addr) / cfg_.banksPerRank;
}

Cycle
Dram::afterRefresh(uint32_t rank, Cycle now)
{
    // Advance the rank's refresh schedule up to `now`; an access landing
    // inside the blackout waits for its end.
    Cycle &next = rankRefreshAt_[rank];
    while (next + cfg_.tRfc <= now)
        next += cfg_.tRefi;
    if (now >= next) {
        ++stats_.refreshStalls;
        return next + cfg_.tRfc;
    }
    return now;
}

uint32_t
Dram::channelIndex(Addr addr) const
{
    // Channel interleaving at line granularity spreads streams.
    return (addr >> kLineShift) & (cfg_.channels - 1);
}

uint32_t
Dram::bankIndex(Addr addr) const
{
    uint32_t banks_per_channel = cfg_.ranksPerChannel * cfg_.banksPerRank;
    // Bank bits above the row-offset bits so a stream stays in one row.
    uint64_t bank_in_ch =
        (addr / (cfg_.rowBytes * cfg_.channels)) % banks_per_channel;
    return channelIndex(addr) * banks_per_channel +
           static_cast<uint32_t>(bank_in_ch);
}

Addr
Dram::rowOf(Addr addr) const
{
    return addr / (cfg_.rowBytes * cfg_.channels *
                   cfg_.ranksPerChannel * cfg_.banksPerRank);
}

Cycle
Dram::access(Addr addr, Cycle now)
{
    now = afterRefresh(rankIndex(addr), now);
    uint32_t b = bankIndex(addr);
    Bank &bank = banks_[b];
    Addr row = rowOf(addr);

    // tCCD-style spacing for open-row column commands; precharge +
    // activate occupancy for row misses.
    Cycle data_at;
    if (bank.openRow == row) {
        ++stats_.rowHits;
        Cycle issue = bankCal_[b].schedule(now, cfg_.burstCycles);
        stats_.totalBankWait += issue - now;
        data_at = issue + cfg_.tCas;
    } else {
        ++stats_.rowMisses;
        ++stats_.activates;
        // Precharge cannot begin before tRAS from the prior activate.
        Cycle earliest = now;
        if (bank.openRow != Bank::kNoRow &&
            bank.activatedAt + cfg_.tRas > earliest)
            earliest = bank.activatedAt + cfg_.tRas;
        Cycle issue = bankCal_[b].schedule(earliest,
                                           cfg_.tRp + cfg_.tRcd);
        stats_.totalBankWait += issue - now;
        Cycle activated = issue + cfg_.tRp;
        if (activated > bank.activatedAt)
            bank.activatedAt = activated;
        data_at = activated + cfg_.tRcd + cfg_.tCas;
        bank.openRow = row;
    }

    // The data burst occupies the channel bus.
    uint32_t ch = channelIndex(addr);
    Cycle burst = busCal_[ch].schedule(data_at, cfg_.burstCycles);
    stats_.totalBusWait += burst - data_at;
    return burst + cfg_.burstCycles;
}

uint64_t
Dram::read(Addr addr, Cycle now)
{
    uint32_t ch = channelIndex(addr);
    maybeDrainWrites(ch, now, false);
    Cycle done = access(addr, now + cfg_.controllerLat);
    uint64_t lat = done - now;
    ++stats_.reads;
    stats_.totalReadLatency += lat;
    return lat;
}

void
Dram::write(Addr addr, Cycle now)
{
    uint32_t ch = channelIndex(addr);
    ++stats_.writes;
    // Bounded by writeQueueDepth; capacity is reserved at construction.
    // catch-analyze: allow(step-alloc-transitive)
    channels_[ch].writeQueue.push_back(addr);
    maybeDrainWrites(ch, now, channels_[ch].writeQueue.size() >=
                                  cfg_.writeQueueDepth);
}

void
Dram::maybeDrainWrites(uint32_t channel, Cycle now, bool force)
{
    Channel &ch = channels_[channel];
    if (!force && ch.writeQueue.size() < cfg_.writeDrainWatermark)
        return;
    ++stats_.writeDrains;
    uint32_t n = std::min<uint32_t>(cfg_.writeDrainBatch,
                                    static_cast<uint32_t>(
                                        ch.writeQueue.size()));
    for (uint32_t i = 0; i < n; ++i)
        access(ch.writeQueue[i], now);
    ch.writeQueue.erase(ch.writeQueue.begin(), ch.writeQueue.begin() + n);
}

} // namespace catchsim
