/**
 * @file
 * Out-of-order core timing model.
 *
 * A forward, per-instruction evaluation of the Fields et al. dependence
 * graph under real machine constraints: 4-wide in-order allocation into
 * a 224-entry ROB, register dataflow through a scoreboard, memory
 * dependences through a store queue with forwarding, execution-port
 * contention, cache/memory latencies from the hierarchy, branch
 * mispredict redirects, in-order 4-wide retirement, and a decoupled
 * front end that stalls on L1I misses. Each instruction receives its
 * D (alloc), E (dispatch/writeback) and C (retire) event times, which
 * also feed the criticality-detection hardware.
 */

#ifndef CATCHSIM_CORE_OOO_CORE_HH_
#define CATCHSIM_CORE_OOO_CORE_HH_

#include <vector>

#include "cache/hierarchy.hh"
#include "common/sim_config.hh"
#include "common/types.hh"
#include "core/frontend.hh"
#include "common/issue_calendar.hh"
#include "criticality/ddg.hh"
#include "tact/tact.hh"
#include "trace/trace_view.hh"
#include "trace/workload.hh"

namespace catchsim
{

class TraceStream;

/** Per-core run statistics. */
struct CoreStats
{
    uint64_t instrs = 0;
    uint64_t cycles = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t forwardedLoads = 0;
    BranchStats branch;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instrs) / cycles : 0.0;
    }
};

class OooCore
{
  public:
    /**
     * @param detector criticality hardware, may be nullptr
     * @param tact TACT prefetchers, may be nullptr
     */
    OooCore(const SimConfig &cfg, CoreId core, CacheHierarchy &hierarchy,
            CriticalityDetector *detector, Tact *tact);

    /** Attaches a fully materialized trace; resets the trace cursor. */
    void bind(const Trace &trace);

    /**
     * Attaches a streaming trace; resets the trace cursor. The stream
     * must outlive the core binding and is advanced by step() as the
     * cursor approaches the edge of the resident window.
     */
    void bind(TraceStream &stream);

    /** Processes one instruction; false when the trace is exhausted. */
    bool step();

    /** Restarts the trace from the beginning, keeping warm structures
     *  (used by the MP simulator when a short trace wraps around). */
    void rewind();

    bool done() const { return pos_ >= trace_.count; }

    /** Current trace cursor (shared with the functional-warming engine). */
    size_t tracePos() const { return pos_; }

    /**
     * Adopts a cursor the functional-warming engine advanced: the
     * instructions in [tracePos(), pos) were processed state-only, so
     * they count as done but core time does not move. Stale pipeline
     * timing is re-established by the per-window detailed warmup.
     */
    void skipTo(size_t pos);

    /** The core's notion of time: the last retirement. */
    Cycle now() const { return lastRetireCycle_; }

    /** Instructions processed so far (monotonic across rewinds). */
    uint64_t instrsDone() const { return instrsDone_; }

    /** Snapshot used for warmup-boundary accounting. */
    void markMeasurementStart();

    CoreStats stats() const;

    Frontend &frontend() { return frontend_; }

  private:
    Cycle allocSlot(Cycle lower_bound);
    Cycle retireSlot(Cycle lower_bound);
    IssueCalendar &portsFor(OpClass cls);

    SimConfig cfg_;
    CoreId core_;
    CacheHierarchy &hierarchy_;
    CriticalityDetector *detector_;
    Tact *tact_;
    Frontend frontend_;

    TraceView trace_;
    TraceStream *stream_ = nullptr;
    /** Cached stream_->refillAt(); ~0 for materialized traces, so the
     *  hot path is one predictable compare. */
    size_t streamRefillAt_ = ~size_t(0);
    size_t pos_ = 0;
    SeqNum seq_ = 0;
    uint64_t instrsDone_ = 0;

    // Register scoreboard.
    std::vector<Cycle> regReady_;
    std::vector<SeqNum> regProducer_;

    // ROB occupancy: retire time of each of the last robSize instrs.
    std::vector<Cycle> robRetire_;

    // Allocation / retirement pacing.
    Cycle curAllocCycle_ = 0;
    uint32_t allocsInCycle_ = 0;
    Cycle lastRetireCycle_ = 0;
    uint32_t retiresInCycle_ = 0;

    // Execution-port bandwidth per class.
    IssueCalendar aluPorts_;
    IssueCalendar loadPorts_;
    IssueCalendar storePorts_;
    IssueCalendar fpPorts_;

    // Store queue for forwarding: most recent stores by 8-byte word.
    // storeNum is the 1-based global store count at insertion; an entry
    // forwards only while it is among the last storeQueueSize stores
    // (storeNum + SQ > storeCount_), which is exactly when its ring slot
    // in storeQueue_ has not yet been overwritten.
    struct StoreEntry
    {
        Addr word = 0;
        Cycle ready = 0;
        SeqNum seq = 0;
        uint64_t storeNum = 0;
    };
    std::vector<StoreEntry> storeQueue_;
    size_t storeHead_ = 0;
    uint64_t storeCount_ = 0;

    // Word-indexed forwarding map over the store queue: open-addressing
    // table holding, per 8-byte word, the youngest store to that word.
    // Replaces the O(SQ) per-load ring scan with an O(1) probe; stale
    // (aged-out) entries are filtered by the storeNum liveness check and
    // purged wholesale by a rebuild from the ring every SQ stores.
    std::vector<StoreEntry> fwdTable_;
    size_t fwdMask_ = 0;
    uint32_t fwdShift_ = 0;

    const StoreEntry *findForward(Addr word) const;
    void insertForward(const StoreEntry &se);
    void rebuildForwardTable();

    // Counters.
    uint64_t loads_ = 0;
    uint64_t stores_ = 0;
    uint64_t forwardedLoads_ = 0;

    // Measurement window.
    uint64_t measStartInstrs_ = 0;
    Cycle measStartCycle_ = 0;
    uint64_t measStartLoads_ = 0;
    uint64_t measStartStores_ = 0;
    uint64_t measStartFwd_ = 0;
};

} // namespace catchsim

#endif // CATCHSIM_CORE_OOO_CORE_HH_
