#include "core/branch_predictor.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace catchsim
{

BranchPredictor::BranchPredictor(uint32_t history_bits,
                                 uint32_t btb_entries)
    : counters_(1u << history_bits, 1),
      bimodal_(1u << history_bits, 1), chooser_(1u << history_bits, 1),
      btb_(btb_entries), historyMask_((1u << history_bits) - 1)
{
    CATCHSIM_ASSERT(isPowerOfTwo(btb_entries), "BTB entries must be pow2");
}

uint32_t
BranchPredictor::gshareIndex(Addr pc) const
{
    return static_cast<uint32_t>(((pc >> 2) ^ history_) & historyMask_);
}

uint32_t
BranchPredictor::bimodalIndex(Addr pc) const
{
    return static_cast<uint32_t>(mix64(pc) & historyMask_);
}

uint32_t
BranchPredictor::btbIndex(Addr pc) const
{
    // Hashed index: straight low-order bits alias badly for page-aligned
    // code blocks (every block's branches would share a handful of
    // slots).
    return static_cast<uint32_t>(mix64(pc) & (btb_.size() - 1));
}

bool
BranchPredictor::predictDirection(Addr pc) const
{
    bool use_gshare = chooser_[bimodalIndex(pc)] >= 2;
    return use_gshare ? counters_[gshareIndex(pc)] >= 2
                      : bimodal_[bimodalIndex(pc)] >= 2;
}

bool
BranchPredictor::wouldMispredict(const MicroOp &op) const
{
    bool pred_taken = predictDirection(op.pc);
    if (pred_taken != op.taken)
        return true;
    if (op.taken) {
        const BtbEntry &e = btb_[btbIndex(op.pc)];
        if (!e.valid || e.pc != op.pc || e.target != op.target)
            return true;
    }
    return false;
}

BranchPredictor::Outcome
BranchPredictor::train(const MicroOp &op)
{
    uint32_t idx = gshareIndex(op.pc);
    uint32_t bidx = bimodalIndex(op.pc);
    bool gshare_taken = counters_[idx] >= 2;
    bool bimodal_taken = bimodal_[bidx] >= 2;
    bool pred_taken = predictDirection(op.pc);
    bool dir_wrong = pred_taken != op.taken;

    bool target_wrong = false;
    if (op.taken) {
        BtbEntry &e = btb_[btbIndex(op.pc)];
        if (!e.valid || e.pc != op.pc || e.target != op.target)
            target_wrong = true;
        e.valid = true;
        e.pc = op.pc;
        e.target = op.target;
    }

    // Train both direction components, the chooser, and the history.
    if (op.taken) {
        if (counters_[idx] < 3)
            ++counters_[idx];
        if (bimodal_[bidx] < 3)
            ++bimodal_[bidx];
    } else {
        if (counters_[idx] > 0)
            --counters_[idx];
        if (bimodal_[bidx] > 0)
            --bimodal_[bidx];
    }
    if (gshare_taken != bimodal_taken) {
        bool gshare_right = gshare_taken == op.taken;
        if (gshare_right && chooser_[bidx] < 3)
            ++chooser_[bidx];
        else if (!gshare_right && chooser_[bidx] > 0)
            --chooser_[bidx];
    }
    history_ = ((history_ << 1) | (op.taken ? 1 : 0)) & historyMask_;

    return Outcome{dir_wrong, op.taken && target_wrong};
}

bool
BranchPredictor::predictAndTrain(const MicroOp &op)
{
    Outcome o = train(op);
    ++stats_.branches;
    if (o.mispredict())
        ++stats_.mispredicts;
    if (o.dirWrong)
        ++stats_.directionWrong;
    if (o.targetWrong)
        ++stats_.targetWrong;
    return o.mispredict();
}

void
BranchPredictor::saveWarmState(StateSink &sink) const
{
    sink.tag(stateTag("BPRD"));
    sink.u64(counters_.size());
    for (uint8_t c : counters_)
        sink.u8(c);
    for (uint8_t c : bimodal_)
        sink.u8(c);
    for (uint8_t c : chooser_)
        sink.u8(c);
    sink.u64(btb_.size());
    for (const BtbEntry &e : btb_) {
        sink.u64(e.pc);
        sink.u64(e.target);
        sink.boolean(e.valid);
    }
    sink.u64(history_);
}

bool
BranchPredictor::loadWarmState(StateSource &src)
{
    if (!src.expect(stateTag("BPRD")))
        return false;
    if (src.u64() != counters_.size() ||
        !src.fits(3 * counters_.size()))
        return false;
    for (auto &c : counters_)
        c = src.u8();
    for (auto &c : bimodal_)
        c = src.u8();
    for (auto &c : chooser_)
        c = src.u8();
    if (src.u64() != btb_.size() || !src.fits(btb_.size() * 17))
        return false;
    for (auto &e : btb_) {
        e.pc = src.u64();
        e.target = src.u64();
        e.valid = src.boolean();
    }
    history_ = src.u64();
    return src.ok();
}

} // namespace catchsim
