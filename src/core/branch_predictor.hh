/**
 * @file
 * Branch direction + target prediction: a tournament of gshare (2-bit
 * counters over a global-history-XOR-PC index) and a per-PC bimodal
 * table, selected by a per-PC chooser - biased-but-random branches need
 * the bimodal side, patterned ones the gshare side. A direct-mapped BTB
 * provides taken targets; a branch mispredicts when the direction is
 * wrong or when it is taken and the BTB has no (or the wrong) target -
 * which is how the varying-target indirect jumps of the
 * interpreter-style workloads pay their redirect penalty.
 */

#ifndef CATCHSIM_CORE_BRANCH_PREDICTOR_HH_
#define CATCHSIM_CORE_BRANCH_PREDICTOR_HH_

#include <cstdint>
#include <vector>

#include "common/state_io.hh"
#include "common/types.hh"
#include "trace/micro_op.hh"

namespace catchsim
{

struct BranchStats
{
    uint64_t branches = 0;
    uint64_t mispredicts = 0;
    uint64_t directionWrong = 0;
    uint64_t targetWrong = 0;

    double
    mispredictRate() const
    {
        return branches ? static_cast<double>(mispredicts) / branches
                        : 0.0;
    }
};

class BranchPredictor
{
  public:
    explicit BranchPredictor(uint32_t history_bits = 14,
                             uint32_t btb_entries = 4096);

    /** Predicts, trains, and returns true on a mispredict. */
    bool predictAndTrain(const MicroOp &op);

    /**
     * Functional-warming entry: identical BTB/counter/chooser/history
     * state updates to @ref predictAndTrain but no stats — warmed
     * branches must be invisible in the measured windows.
     */
    void warmTrain(const MicroOp &op) { train(op); }

    /** Read-only query with current state (TACT-Code runahead). */
    bool wouldMispredict(const MicroOp &op) const;

    const BranchStats &stats() const { return stats_; }
    void resetStats() { stats_ = BranchStats(); }

    /** Serializes counters/chooser/BTB/history (not stats) for
     *  warmed-state snapshots. */
    void saveWarmState(StateSink &sink) const;

    /** Restores a saveWarmState() stream into a predictor of the same
     *  geometry; false on a malformed or mis-sized stream. */
    bool loadWarmState(StateSource &src);

  private:
    struct BtbEntry
    {
        Addr pc = 0;
        Addr target = 0;
        bool valid = false;
    };

    /** What a prediction got wrong (before training moved the state). */
    struct Outcome
    {
        bool dirWrong = false;
        bool targetWrong = false;
        bool mispredict() const { return dirWrong || targetWrong; }
    };

    /** The shared predict+train core; updates state, never stats. */
    Outcome train(const MicroOp &op);

    uint32_t gshareIndex(Addr pc) const;
    uint32_t bimodalIndex(Addr pc) const;
    uint32_t btbIndex(Addr pc) const;
    bool predictDirection(Addr pc) const;

    std::vector<uint8_t> counters_; ///< gshare 2-bit saturating
    std::vector<uint8_t> bimodal_;  ///< per-PC 2-bit saturating
    std::vector<uint8_t> chooser_;  ///< per-PC: >=2 selects gshare
    std::vector<BtbEntry> btb_;
    uint64_t history_ = 0;
    uint32_t historyMask_;
    BranchStats stats_;
};

} // namespace catchsim

#endif // CATCHSIM_CORE_BRANCH_PREDICTOR_HH_
