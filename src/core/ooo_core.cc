#include "core/ooo_core.hh"

#include <algorithm>

#include "common/logging.hh"
#include "trace/trace_stream.hh"

namespace catchsim
{

OooCore::OooCore(const SimConfig &cfg, CoreId core,
                 CacheHierarchy &hierarchy,
                 CriticalityDetector *detector, Tact *tact)
    : cfg_(cfg), core_(core), hierarchy_(hierarchy), detector_(detector),
      tact_(tact), frontend_(cfg, core, hierarchy, tact),
      regReady_(cfg.numArchRegs, 0), regProducer_(cfg.numArchRegs, 0),
      robRetire_(cfg.robSize, 0), aluPorts_(cfg.aluPorts),
      loadPorts_(cfg.loadPorts), storePorts_(cfg.storePorts),
      fpPorts_(cfg.fpPorts), storeQueue_(cfg.storeQueueSize)
{
    // Forwarding table sized at 8x the store queue: at most 2xSQ slots
    // are ever occupied between rebuilds, so probe chains stay short.
    size_t cap = 1;
    uint32_t log2cap = 0;
    while (cap < 8 * cfg.storeQueueSize) {
        cap <<= 1;
        ++log2cap;
    }
    fwdTable_.resize(cap);
    fwdMask_ = cap - 1;
    fwdShift_ = 64 - log2cap;
}

void
OooCore::bind(const Trace &trace)
{
    trace_ = makeView(trace.ops);
    stream_ = nullptr;
    streamRefillAt_ = ~size_t(0);
    pos_ = 0;
    frontend_.bindTrace(trace_);
}

void
OooCore::bind(TraceStream &stream)
{
    CATCHSIM_ASSERT(stream.chunkOps() >= kCodeRunaheadHorizonOps,
                    "stream chunk too small for the code-runahead walk");
    trace_ = stream.view();
    stream_ = &stream;
    streamRefillAt_ = stream.refillAt();
    pos_ = 0;
    frontend_.bindTrace(trace_);
}

void
OooCore::rewind()
{
    CATCHSIM_ASSERT(trace_.bound(), "rewind without a bound trace");
    pos_ = 0;
    if (stream_) {
        stream_->rewind();
        streamRefillAt_ = stream_->refillAt();
    }
    // Keep all timing state: the machine simply re-executes the loop.
    frontend_.bindTrace(trace_);
}

void
OooCore::skipTo(size_t pos)
{
    CATCHSIM_ASSERT(pos >= pos_ && pos <= trace_.count,
                    "skipTo outside the remaining trace");
    uint64_t skipped = pos - pos_;
    pos_ = pos;
    seq_ += skipped;
    instrsDone_ += skipped;
    if (stream_)
        streamRefillAt_ = stream_->refillAt();
}

Cycle
OooCore::allocSlot(Cycle lower_bound)
{
    if (lower_bound > curAllocCycle_) {
        curAllocCycle_ = lower_bound;
        allocsInCycle_ = 1;
    } else if (++allocsInCycle_ > cfg_.width) {
        ++curAllocCycle_;
        allocsInCycle_ = 1;
    }
    return curAllocCycle_;
}

Cycle
OooCore::retireSlot(Cycle lower_bound)
{
    if (lower_bound > lastRetireCycle_) {
        lastRetireCycle_ = lower_bound;
        retiresInCycle_ = 1;
    } else if (++retiresInCycle_ > cfg_.width) {
        ++lastRetireCycle_;
        retiresInCycle_ = 1;
    }
    return lastRetireCycle_;
}

IssueCalendar &
OooCore::portsFor(OpClass cls)
{
    switch (cls) {
      case OpClass::Load: return loadPorts_;
      case OpClass::Store: return storePorts_;
      case OpClass::FpAdd:
      case OpClass::FpMul:
      case OpClass::FpDiv: return fpPorts_;
      default: return aluPorts_;
    }
}

const OooCore::StoreEntry *
OooCore::findForward(Addr word) const
{
    // At most one entry per word exists in any probe chain (inserts
    // overwrite on word match), so the first match decides.
    size_t i = (word * 0x9E3779B97F4A7C15ULL) >> fwdShift_;
    for (;; i = (i + 1) & fwdMask_) {
        const StoreEntry &e = fwdTable_[i];
        if (e.storeNum == 0)
            return nullptr;
        if (e.word == word) {
            bool live = e.storeNum + storeQueue_.size() > storeCount_;
            return live ? &e : nullptr;
        }
    }
}

void
OooCore::insertForward(const StoreEntry &se)
{
    size_t i = (se.word * 0x9E3779B97F4A7C15ULL) >> fwdShift_;
    for (;; i = (i + 1) & fwdMask_) {
        StoreEntry &e = fwdTable_[i];
        if (e.storeNum == 0) {
            e = se;
            return;
        }
        if (e.word == se.word) {
            // Youngest store to a word wins, exactly as the ring scan's
            // max-seq tie-break did.
            if (se.storeNum > e.storeNum)
                e = se;
            return;
        }
    }
}

void
OooCore::rebuildForwardTable()
{
    // Drop aged-out entries so the table never fills up: everything
    // still forwardable is, by definition, in the store-queue ring.
    std::fill(fwdTable_.begin(), fwdTable_.end(), StoreEntry());
    for (const auto &se : storeQueue_)
        if (se.storeNum != 0)
            insertForward(se);
}

bool
OooCore::step()
{
    if (done())
        return false;
    if (pos_ >= streamRefillAt_) {
        stream_->ensure(pos_);
        streamRefillAt_ = stream_->refillAt();
    }
    const MicroOp &op = trace_.at(pos_);
    ++seq_;

    // ---- Front end (D-node inputs) ----
    Cycle fetch = frontend_.fetchCycle(pos_, op);
    Cycle rob_ready = robRetire_[pos_ % cfg_.robSize];
    Cycle alloc = allocSlot(std::max(fetch, rob_ready));

    // ---- Source operands (E-E edges) ----
    Cycle src_ready = 0;
    SeqNum src_seq[kMaxSrcs] = {0, 0, 0};
    for (uint32_t i = 0; i < kMaxSrcs; ++i) {
        int8_t s = op.src[i];
        if (s < 0)
            continue;
        src_ready = std::max(src_ready, regReady_[s]);
        src_seq[i] = regProducer_[s];
    }
    Cycle min_dispatch =
        std::max(alloc + cfg_.renameLat, src_ready);

    // ---- Execute ----
    Cycle exec_start = 0;
    Cycle exec_done = 0;
    Level served = Level::None;
    bool tact_covered = false;
    bool mispredicted = false;
    SeqNum mem_dep = 0;

    switch (op.cls) {
      case OpClass::Load: {
        ++loads_;
        exec_start = loadPorts_.schedule(min_dispatch);
        // Store-to-load forwarding: youngest older store to the word.
        const StoreEntry *fwd = findForward(op.memAddr >> 3);
        if (fwd) {
            ++forwardedLoads_;
            mem_dep = fwd->seq;
            exec_done = std::max(exec_start, fwd->ready) + cfg_.fwdLatency;
        } else {
            MemResult r = hierarchy_.load(core_, op.pc, op.memAddr,
                                          exec_start);
            served = r.served;
            tact_covered = r.tactCovered;
            exec_done = exec_start + r.latency;
        }
        if (tact_) {
            tact_->onLoadDispatch(op, exec_start);
            tact_->onLoadComplete(op, exec_done);
        }
        break;
      }
      case OpClass::Store: {
        ++stores_;
        exec_start = storePorts_.schedule(min_dispatch);
        exec_done = exec_start + 1;
        StoreEntry &slot = storeQueue_[storeHead_];
        storeHead_ = (storeHead_ + 1) % storeQueue_.size();
        slot.word = op.memAddr >> 3;
        slot.ready = exec_done;
        slot.seq = seq_;
        slot.storeNum = ++storeCount_;
        insertForward(slot);
        if (storeCount_ % storeQueue_.size() == 0)
            rebuildForwardTable();
        break;
      }
      case OpClass::Branch: {
        exec_start = aluPorts_.schedule(min_dispatch);
        exec_done = exec_start + opLatency(op.cls);
        mispredicted = frontend_.predictor().predictAndTrain(op);
        if (mispredicted)
            frontend_.redirect(exec_done + cfg_.redirectLat);
        break;
      }
      default: {
        uint32_t busy =
            (op.cls == OpClass::Div || op.cls == OpClass::FpDiv) ? 8 : 1;
        exec_start = portsFor(op.cls).schedule(min_dispatch, busy);
        exec_done = exec_start + opLatency(op.cls);
        break;
      }
    }

    // ---- Writeback / scoreboard ----
    if (op.dst >= 0) {
        regReady_[op.dst] = exec_done;
        regProducer_[op.dst] = seq_;
    }

    // ---- Retire (C node) ----
    Cycle retire = retireSlot(exec_done + 1);
    robRetire_[pos_ % cfg_.robSize] = retire;

    if (op.isStore())
        hierarchy_.storeCommit(core_, op.memAddr, retire);

    if (detector_) {
        RetireInfo ri;
        ri.pc = op.pc;
        ri.seq = seq_;
        ri.cls = op.cls;
        ri.mispredictedBranch = mispredicted;
        ri.servedBy = served;
        ri.tactCovered = tact_covered;
        ri.allocCycle = alloc;
        ri.execStart = exec_start;
        ri.execDone = exec_done;
        ri.retireCycle = retire;
        for (uint32_t i = 0; i < kMaxSrcs; ++i)
            ri.srcSeq[i] = src_seq[i];
        ri.memDepSeq = mem_dep;
        detector_->onRetire(ri);
    }
    if (tact_)
        tact_->onRetire(op);

    ++pos_;
    ++instrsDone_;
    return true;
}

void
OooCore::markMeasurementStart()
{
    measStartInstrs_ = instrsDone_;
    measStartCycle_ = lastRetireCycle_;
    measStartLoads_ = loads_;
    measStartStores_ = stores_;
    measStartFwd_ = forwardedLoads_;
    frontend_.resetStats();
}

CoreStats
OooCore::stats() const
{
    CoreStats s;
    s.instrs = instrsDone_ - measStartInstrs_;
    s.cycles = lastRetireCycle_ - measStartCycle_;
    s.loads = loads_ - measStartLoads_;
    s.stores = stores_ - measStartStores_;
    s.forwardedLoads = forwardedLoads_ - measStartFwd_;
    s.branch = frontend_.predictor().stats();
    return s;
}

} // namespace catchsim
