#include "core/ooo_core.hh"

#include <algorithm>

#include "common/logging.hh"

namespace catchsim
{

OooCore::OooCore(const SimConfig &cfg, CoreId core,
                 CacheHierarchy &hierarchy,
                 CriticalityDetector *detector, Tact *tact)
    : cfg_(cfg), core_(core), hierarchy_(hierarchy), detector_(detector),
      tact_(tact), frontend_(cfg, core, hierarchy, tact),
      regReady_(cfg.numArchRegs, 0), regProducer_(cfg.numArchRegs, 0),
      robRetire_(cfg.robSize, 0), aluPorts_(cfg.aluPorts),
      loadPorts_(cfg.loadPorts), storePorts_(cfg.storePorts),
      fpPorts_(cfg.fpPorts), storeQueue_(cfg.storeQueueSize)
{
}

void
OooCore::bind(const Trace &trace)
{
    trace_ = &trace;
    pos_ = 0;
    frontend_.bindTrace(trace.ops.data(), trace.ops.size());
}

void
OooCore::rewind()
{
    CATCHSIM_ASSERT(trace_, "rewind without a bound trace");
    pos_ = 0;
    // Keep all timing state: the machine simply re-executes the loop.
    frontend_.bindTrace(trace_->ops.data(), trace_->ops.size());
}

Cycle
OooCore::allocSlot(Cycle lower_bound)
{
    if (lower_bound > curAllocCycle_) {
        curAllocCycle_ = lower_bound;
        allocsInCycle_ = 1;
    } else if (++allocsInCycle_ > cfg_.width) {
        ++curAllocCycle_;
        allocsInCycle_ = 1;
    }
    return curAllocCycle_;
}

Cycle
OooCore::retireSlot(Cycle lower_bound)
{
    if (lower_bound > lastRetireCycle_) {
        lastRetireCycle_ = lower_bound;
        retiresInCycle_ = 1;
    } else if (++retiresInCycle_ > cfg_.width) {
        ++lastRetireCycle_;
        retiresInCycle_ = 1;
    }
    return lastRetireCycle_;
}

IssueCalendar &
OooCore::portsFor(OpClass cls)
{
    switch (cls) {
      case OpClass::Load: return loadPorts_;
      case OpClass::Store: return storePorts_;
      case OpClass::FpAdd:
      case OpClass::FpMul:
      case OpClass::FpDiv: return fpPorts_;
      default: return aluPorts_;
    }
}

bool
OooCore::step()
{
    if (done())
        return false;
    const MicroOp &op = trace_->ops[pos_];
    ++seq_;

    // ---- Front end (D-node inputs) ----
    Cycle fetch = frontend_.fetchCycle(pos_, op);
    Cycle rob_ready = robRetire_[pos_ % cfg_.robSize];
    Cycle alloc = allocSlot(std::max(fetch, rob_ready));

    // ---- Source operands (E-E edges) ----
    Cycle src_ready = 0;
    SeqNum src_seq[kMaxSrcs] = {0, 0, 0};
    for (uint32_t i = 0; i < kMaxSrcs; ++i) {
        int8_t s = op.src[i];
        if (s < 0)
            continue;
        src_ready = std::max(src_ready, regReady_[s]);
        src_seq[i] = regProducer_[s];
    }
    Cycle min_dispatch =
        std::max(alloc + cfg_.renameLat, src_ready);

    // ---- Execute ----
    Cycle exec_start = 0;
    Cycle exec_done = 0;
    Level served = Level::None;
    bool tact_covered = false;
    bool mispredicted = false;
    SeqNum mem_dep = 0;

    switch (op.cls) {
      case OpClass::Load: {
        ++loads_;
        exec_start = loadPorts_.schedule(min_dispatch);
        // Store-to-load forwarding: youngest older store to the word.
        const StoreEntry *fwd = nullptr;
        Addr word = op.memAddr >> 3;
        for (const auto &se : storeQueue_)
            if (se.seq != 0 && se.word == word &&
                (!fwd || se.seq > fwd->seq))
                fwd = &se;
        if (fwd) {
            ++forwardedLoads_;
            mem_dep = fwd->seq;
            exec_done = std::max(exec_start, fwd->ready) + cfg_.fwdLatency;
        } else {
            MemResult r = hierarchy_.load(core_, op.pc, op.memAddr,
                                          exec_start);
            served = r.served;
            tact_covered = r.tactCovered;
            exec_done = exec_start + r.latency;
        }
        if (tact_) {
            tact_->onLoadDispatch(op, exec_start);
            tact_->onLoadComplete(op, exec_done);
        }
        break;
      }
      case OpClass::Store: {
        ++stores_;
        exec_start = storePorts_.schedule(min_dispatch);
        exec_done = exec_start + 1;
        StoreEntry &slot = storeQueue_[storeHead_];
        storeHead_ = (storeHead_ + 1) % storeQueue_.size();
        slot.word = op.memAddr >> 3;
        slot.ready = exec_done;
        slot.seq = seq_;
        break;
      }
      case OpClass::Branch: {
        exec_start = aluPorts_.schedule(min_dispatch);
        exec_done = exec_start + opLatency(op.cls);
        mispredicted = frontend_.predictor().predictAndTrain(op);
        if (mispredicted)
            frontend_.redirect(exec_done + cfg_.redirectLat);
        break;
      }
      default: {
        uint32_t busy =
            (op.cls == OpClass::Div || op.cls == OpClass::FpDiv) ? 8 : 1;
        exec_start = portsFor(op.cls).schedule(min_dispatch, busy);
        exec_done = exec_start + opLatency(op.cls);
        break;
      }
    }

    // ---- Writeback / scoreboard ----
    if (op.dst >= 0) {
        regReady_[op.dst] = exec_done;
        regProducer_[op.dst] = seq_;
    }

    // ---- Retire (C node) ----
    Cycle retire = retireSlot(exec_done + 1);
    robRetire_[pos_ % cfg_.robSize] = retire;

    if (op.isStore())
        hierarchy_.storeCommit(core_, op.memAddr, retire);

    if (detector_) {
        RetireInfo ri;
        ri.pc = op.pc;
        ri.seq = seq_;
        ri.cls = op.cls;
        ri.mispredictedBranch = mispredicted;
        ri.servedBy = served;
        ri.tactCovered = tact_covered;
        ri.allocCycle = alloc;
        ri.execStart = exec_start;
        ri.execDone = exec_done;
        ri.retireCycle = retire;
        for (uint32_t i = 0; i < kMaxSrcs; ++i)
            ri.srcSeq[i] = src_seq[i];
        ri.memDepSeq = mem_dep;
        detector_->onRetire(ri);
    }
    if (tact_)
        tact_->onRetire(op);

    ++pos_;
    ++instrsDone_;
    return true;
}

void
OooCore::markMeasurementStart()
{
    measStartInstrs_ = instrsDone_;
    measStartCycle_ = lastRetireCycle_;
    measStartLoads_ = loads_;
    measStartStores_ = stores_;
    measStartFwd_ = forwardedLoads_;
    frontend_.resetStats();
}

CoreStats
OooCore::stats() const
{
    CoreStats s;
    s.instrs = instrsDone_ - measStartInstrs_;
    s.cycles = lastRetireCycle_ - measStartCycle_;
    s.loads = loads_ - measStartLoads_;
    s.stores = stores_ - measStartStores_;
    s.forwardedLoads = forwardedLoads_ - measStartFwd_;
    s.branch = frontend_.predictor().stats();
    return s;
}

} // namespace catchsim
