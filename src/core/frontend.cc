#include "core/frontend.hh"

namespace catchsim
{

Frontend::Frontend(const SimConfig &cfg, CoreId core,
                   CacheHierarchy &hierarchy, Tact *tact)
    : cfg_(cfg), core_(core), hierarchy_(hierarchy), tact_(tact)
{
}

void
Frontend::bindTrace(TraceView trace)
{
    trace_ = trace;
    curCycle_ = 0;
    fetchedThisCycle_ = 0;
    lastLine_ = ~0ULL;
    redirectAt_ = 0;
}

void
Frontend::resetStats()
{
    stats_ = FrontendStats();
    predictor_.resetStats();
}

Cycle
Frontend::fetchCycle(size_t idx, const MicroOp &op)
{
    Cycle t = curCycle_;
    if (redirectAt_ > t) {
        t = redirectAt_;
        fetchedThisCycle_ = 0;
    }

    Addr line = lineAddr(op.pc);
    if (line != lastLine_) {
        ++stats_.lineFetches;
        MemResult r = hierarchy_.codeFetch(core_, line, t);
        lastLine_ = line;
        uint32_t l1_lat = cfg_.l1i.latency;
        if (r.latency > l1_lat) {
            // The NIP stalls for the portion of the miss the pipeline
            // depth cannot hide; the CNPIP runs ahead meanwhile.
            uint64_t stall = r.latency - l1_lat;
            if (tact_ && trace_.bound()) {
                auto would_mispredict = [this](const MicroOp &b) {
                    return predictor_.wouldMispredict(b);
                };
                tact_->onCodeStall(trace_, idx, t, would_mispredict);
            }
            t += stall;
            stats_.codeStallCycles += stall;
            fetchedThisCycle_ = 0;
        }
    }

    if (t > curCycle_) {
        curCycle_ = t;
        fetchedThisCycle_ = 1;
    } else if (++fetchedThisCycle_ > cfg_.width) {
        ++curCycle_;
        fetchedThisCycle_ = 1;
    }
    return curCycle_;
}

void
Frontend::redirect(Cycle resume)
{
    ++stats_.redirects;
    if (resume > redirectAt_)
        redirectAt_ = resume;
    // The pipeline restarts fetch at the correct path; the current line
    // must be re-fetched (it usually still hits the L1I).
    lastLine_ = ~0ULL;
}

} // namespace catchsim
