/**
 * @file
 * In-order front end: next-instruction-pointer (NIP) pacing, L1I line
 * fetches, branch-mispredict redirects and the TACT-Code runahead hook.
 *
 * The front end runs ahead of allocation (decoupled fetch); it stalls
 * only on L1I misses and on redirects. During an L1I-miss stall the
 * TACT-Code CNPIP walks the predicted path and prefetches upcoming code
 * lines (Section IV-B2).
 */

#ifndef CATCHSIM_CORE_FRONTEND_HH_
#define CATCHSIM_CORE_FRONTEND_HH_

#include <cstddef>

#include "cache/hierarchy.hh"
#include "common/sim_config.hh"
#include "common/types.hh"
#include "core/branch_predictor.hh"
#include "tact/tact.hh"
#include "trace/micro_op.hh"
#include "trace/trace_view.hh"

namespace catchsim
{

struct FrontendStats
{
    uint64_t lineFetches = 0;
    uint64_t codeStallCycles = 0;
    uint64_t redirects = 0;
};

class Frontend
{
  public:
    Frontend(const SimConfig &cfg, CoreId core, CacheHierarchy &hierarchy,
             Tact *tact);

    /** Gives the runahead walker visibility into the upcoming stream. */
    void bindTrace(TraceView trace);

    /**
     * Returns the cycle at which ops[idx] is available for allocation;
     * must be called once per instruction, in program order.
     */
    Cycle fetchCycle(size_t idx, const MicroOp &op);

    /** Mispredicted branch resolved; fetch resumes at @p resume. */
    void redirect(Cycle resume);

    BranchPredictor &predictor() { return predictor_; }
    const BranchPredictor &predictor() const { return predictor_; }
    const FrontendStats &stats() const { return stats_; }
    void resetStats();

  private:
    SimConfig cfg_;
    CoreId core_;
    CacheHierarchy &hierarchy_;
    Tact *tact_;
    BranchPredictor predictor_;

    TraceView trace_;

    Cycle curCycle_ = 0;
    uint32_t fetchedThisCycle_ = 0;
    Addr lastLine_ = ~0ULL;
    Cycle redirectAt_ = 0;

    FrontendStats stats_;
};

} // namespace catchsim

#endif // CATCHSIM_CORE_FRONTEND_HH_
