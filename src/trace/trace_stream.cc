#include "trace/trace_stream.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace catchsim
{

TraceStream::TraceStream(Workload &wl, size_t total_ops, size_t chunk_ops,
                         std::function<double()> gen_clock,
                         ChunkStore *store)
    : wl_(&wl), total_(total_ops), chunk_(chunk_ops),
      mem_(std::make_shared<FunctionalMemory>()),
      genClock_(std::move(gen_clock)), store_(store)
{
    CATCHSIM_ASSERT(chunk_ > 0 && (chunk_ & (chunk_ - 1)) == 0,
                    "TraceStream chunk size must be a power of two");
    ring_.resize(2 * chunk_);
    mask_ = ring_.size() - 1;
    start();
}

void
TraceStream::start()
{
    const double t0 = genClock_ ? genClock_() : 0;
    genEnd_ = 0;
    refillAt_ = ~size_t(0);
    pending_.clear();
    // Reset the functional memory in place: its address is part of the
    // public contract (mem() stays valid across rewind()).
    *mem_ = FunctionalMemory();
    rng_.emplace(wl_->seed());
    if (store_) {
        // Store mode: setup still builds the pointer structures the
        // feeder chases in the consumer-visible memory, but the kernel
        // itself runs inside gen_ (or inside whoever generated the
        // stored chunk) against a private memory; mem_ is then kept
        // canonical by replaying each served chunk's Store ops.
        // Dropping the engine here is what makes rewind() (and a first
        // miss after it) deterministic: the next miss restarts the
        // kernel from chunk 0 with a re-seeded RNG.
        gen_.discard();
        em_.reset();
        wl_->setup(*mem_, *rng_);
    } else {
        em_.emplace(*mem_, pending_, total_, /*reserve_hint=*/2 * chunk_);
        wl_->setup(*mem_, *rng_);
    }
    if (genClock_)
        genSeconds_ += genClock_() - t0;
    // Prime both halves of the ring so the consumer starts with a full
    // chunk of lookahead: ensure(0) refills until refillAt_ moves past
    // position 0, i.e. two chunks (or the whole trace) are resident.
    if (total_ > 0) {
        refillAt_ = 0;
        ensure(0);
    }
}

void
TraceStream::rewind()
{
    start();
}

ChunkKey
TraceStream::keyFor(uint64_t index) const
{
    return ChunkKey{wl_->name(), wl_->seed(),
                    static_cast<uint32_t>(chunk_), index};
}

void
TraceStream::generateChunkFromStore()
{
    const double t0 = genClock_ ? genClock_() : 0;
    const size_t want = std::min(chunk_, total_ - genEnd_);
    const uint64_t idx = genEnd_ / chunk_;
    ChunkStore::ChunkPtr c = store_->find(keyFor(idx));
    if (c) {
        ++storeHitChunks_;
    } else {
        // Regenerate from wherever the engine stands. A fresh (or
        // rewound) engine replays from chunk 0; intermediate chunks
        // are republished so evicted entries repopulate. put() dedups
        // against concurrent producers, and every generator emits
        // identical bytes, so the served chunk is canonical either way.
        ++storeMissChunks_;
        while (gen_.nextIndex() <= idx) {
            const uint64_t at = gen_.nextIndex();
            c = store_->put(keyFor(at),
                            gen_.next(*wl_, static_cast<uint32_t>(chunk_)));
        }
    }
    CATCHSIM_ASSERT(c && c->size() == chunk_,
                    "chunk store served a malformed chunk");
    for (size_t i = 0; i < want; ++i) {
        const MicroOp &op = (*c)[i];
        ring_[(genEnd_ + i) & mask_] = op;
        // Replay the chunk's stores so the consumer-visible memory
        // tracks generation progress exactly as the in-place emitter
        // would have left it (all run()-time writes flow through
        // Emitter::store and are Store-class ops in the trace).
        if (op.isStore())
            mem_->write(op.memAddr, op.value);
    }
    genEnd_ += want;
    refillAt_ = genEnd_ >= total_ ? ~size_t(0) : genEnd_ - chunk_;
    const uint64_t nchunks = (total_ + chunk_ - 1) / chunk_;
    if (idx + 1 < nchunks)
        store_->kickProducer(keyFor(idx + 1), nchunks);
    if (genClock_)
        genSeconds_ += genClock_() - t0;
}

ChunkStore::ChunkPtr
TraceStream::fetchChunkNoReplay(uint64_t index)
{
    ChunkStore::ChunkPtr c = store_->find(keyFor(index));
    if (c) {
        ++storeHitChunks_;
        return c;
    }
    ++storeMissChunks_;
    while (gen_.nextIndex() <= index) {
        const uint64_t at = gen_.nextIndex();
        c = store_->put(keyFor(at),
                        gen_.next(*wl_, static_cast<uint32_t>(chunk_)));
    }
    return c;
}

void
TraceStream::saveWarmState(StateSink &sink) const
{
    CATCHSIM_ASSERT(store_ != nullptr,
                    "warmed-state snapshots require a chunk store");
    sink.tag(stateTag("TSTR"));
    sink.u64(total_);
    sink.u64(chunk_);
    sink.u64(genEnd_);
}

bool
TraceStream::loadWarmState(StateSource &src,
                           const FunctionalMemory::PageImage &pages)
{
    if (!store_ || !src.expect(stateTag("TSTR")))
        return false;
    if (src.u64() != total_ || src.u64() != chunk_)
        return false;
    const uint64_t gen_end = src.u64();
    if (gen_end > total_ || gen_end < std::min(total_, 2 * chunk_))
        return false;
    if (!src.ok())
        return false;
    mem_->restorePages(pages);

    // The ring content is a pure function of the generated-op frontier
    // (chunks are canonical), so a restore whose frontier matches the
    // live one — common at window boundaries once the trace is fully
    // generated — keeps the resident window as-is.
    if (gen_end != genEnd_) {
        // Re-materialize the ring window [gen_end - 2*chunk, gen_end):
        // the consumer's position is always inside it (one refill of
        // slack). Stores are NOT replayed — the restored memory image
        // already reflects every store before the frontier.
        const double t0 = genClock_ ? genClock_() : 0;
        const size_t begin =
            gen_end > 2 * chunk_ ? gen_end - 2 * chunk_ : 0;
        const uint64_t first_idx = begin / chunk_;
        const uint64_t last_idx = (gen_end - 1) / chunk_;
        for (uint64_t idx = first_idx; idx <= last_idx; ++idx) {
            ChunkStore::ChunkPtr c = fetchChunkNoReplay(idx);
            if (!c || c->size() != chunk_)
                return false;
            const size_t lo =
                std::max(begin, static_cast<size_t>(idx) * chunk_);
            const size_t hi = std::min(static_cast<size_t>(gen_end),
                                       (static_cast<size_t>(idx) + 1) *
                                           chunk_);
            for (size_t i = lo; i < hi; ++i)
                ring_[i & mask_] =
                    (*c)[i - static_cast<size_t>(idx) * chunk_];
        }
        if (genClock_)
            genSeconds_ += genClock_() - t0;
    }

    genEnd_ = gen_end;
    refillAt_ = genEnd_ >= total_ ? ~size_t(0) : genEnd_ - chunk_;
    return true;
}

void
TraceStream::generateChunk()
{
    if (store_) {
        generateChunkFromStore();
        return;
    }
    const double t0 = genClock_ ? genClock_() : 0;
    const size_t want = std::min(chunk_, total_ - genEnd_);
    while (pending_.size() < want && !em_->done()) {
        const size_t before = em_->emitted();
        wl_->run(*em_, *rng_);
        CATCHSIM_ASSERT(em_->emitted() > before,
                        "workload kernel made no forward progress");
    }
    CATCHSIM_ASSERT(pending_.size() >= want,
                    "kernel finished before the requested op budget");
    // genEnd_ is chunk-aligned until the final partial chunk, so the
    // destination range never wraps mid-copy; masked stores keep the
    // code uniform anyway.
    for (size_t i = 0; i < want; ++i)
        ring_[(genEnd_ + i) & mask_] = pending_[i];
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<ptrdiff_t>(want));
    genEnd_ += want;
    // Keep one full chunk of lookahead ahead of the consumer: the next
    // refill triggers when the consumer enters the last resident chunk.
    refillAt_ = genEnd_ >= total_ ? ~size_t(0) : genEnd_ - chunk_;
    if (genClock_)
        genSeconds_ += genClock_() - t0;
}

} // namespace catchsim
