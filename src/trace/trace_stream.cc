#include "trace/trace_stream.hh"

#include <algorithm>

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace catchsim
{

TraceStream::TraceStream(Workload &wl, size_t total_ops, size_t chunk_ops,
                         std::function<double()> gen_clock)
    : wl_(&wl), total_(total_ops), chunk_(chunk_ops),
      mem_(std::make_shared<FunctionalMemory>()),
      genClock_(std::move(gen_clock))
{
    CATCHSIM_ASSERT(chunk_ > 0 && (chunk_ & (chunk_ - 1)) == 0,
                    "TraceStream chunk size must be a power of two");
    ring_.resize(2 * chunk_);
    mask_ = ring_.size() - 1;
    start();
}

void
TraceStream::start()
{
    const double t0 = genClock_ ? genClock_() : 0;
    genEnd_ = 0;
    refillAt_ = ~size_t(0);
    pending_.clear();
    // Reset the functional memory in place: its address is part of the
    // public contract (mem() stays valid across rewind()).
    *mem_ = FunctionalMemory();
    rng_.emplace(wl_->seed());
    em_.emplace(*mem_, pending_, total_, /*reserve_hint=*/2 * chunk_);
    wl_->setup(*mem_, *rng_);
    if (genClock_)
        genSeconds_ += genClock_() - t0;
    // Prime both halves of the ring so the consumer starts with a full
    // chunk of lookahead: ensure(0) refills until refillAt_ moves past
    // position 0, i.e. two chunks (or the whole trace) are resident.
    if (total_ > 0) {
        refillAt_ = 0;
        ensure(0);
    }
}

void
TraceStream::rewind()
{
    start();
}

void
TraceStream::generateChunk()
{
    const double t0 = genClock_ ? genClock_() : 0;
    const size_t want = std::min(chunk_, total_ - genEnd_);
    while (pending_.size() < want && !em_->done()) {
        const size_t before = em_->emitted();
        wl_->run(*em_, *rng_);
        CATCHSIM_ASSERT(em_->emitted() > before,
                        "workload kernel made no forward progress");
    }
    CATCHSIM_ASSERT(pending_.size() >= want,
                    "kernel finished before the requested op budget");
    // genEnd_ is chunk-aligned until the final partial chunk, so the
    // destination range never wraps mid-copy; masked stores keep the
    // code uniform anyway.
    for (size_t i = 0; i < want; ++i)
        ring_[(genEnd_ + i) & mask_] = pending_[i];
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<ptrdiff_t>(want));
    genEnd_ += want;
    // Keep one full chunk of lookahead ahead of the consumer: the next
    // refill triggers when the consumer enters the last resident chunk.
    refillAt_ = genEnd_ >= total_ ? ~size_t(0) : genEnd_ - chunk_;
    if (genClock_)
        genSeconds_ += genClock_() - t0;
}

} // namespace catchsim
