/**
 * @file
 * Emitter: the interface workload kernels use to produce traces.
 *
 * Kernels execute their algorithm functionally (reads/writes go to a
 * FunctionalMemory) while the emitter records a dynamic instruction
 * stream with stable PCs, realistic register dataflow and real data
 * values. Stable PCs matter: every PC-indexed structure in the paper
 * (stride prefetcher, critical-load table, TACT learners) depends on the
 * same static load reappearing across loop iterations, so kernels reset
 * the PC to the loop head on every iteration via setPc()/loopHead().
 */

#ifndef CATCHSIM_TRACE_EMITTER_HH_
#define CATCHSIM_TRACE_EMITTER_HH_

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "common/types.hh"
#include "mem/functional_memory.hh"
#include "trace/micro_op.hh"

namespace catchsim
{

/**
 * Records MicroOps into a trace until a target length is reached.
 *
 * The sink vector is append-only from the emitter's point of view, but
 * a streaming consumer (TraceStream) may drain already-emitted ops out
 * of it between kernel run() calls: progress accounting (done(),
 * remaining(), emitted()) is therefore kept in the emitter itself
 * rather than derived from the sink's size.
 */
class Emitter
{
  public:
    /**
     * @param mem functional memory the kernel computes against
     * @param out destination buffer (appended to; may be drained by the
     *        owner between kernel run() calls)
     * @param limit number of micro-ops to record
     * @param reserve_hint capacity to reserve in @p out up front; the
     *        default reserves the full limit (the materialized path),
     *        streaming callers pass their chunk size instead
     */
    Emitter(FunctionalMemory &mem, std::vector<MicroOp> &out, size_t limit,
            size_t reserve_hint = ~size_t(0));

    /** True once the requested number of ops has been emitted. */
    bool done() const { return emitted_ >= limit_; }

    /** Remaining op budget. */
    size_t remaining() const
    {
        return done() ? 0 : limit_ - emitted_;
    }

    FunctionalMemory &mem() { return mem_; }

    /** Moves the PC to @p pc without emitting anything (a label). */
    void setPc(Addr pc) { pc_ = pc; }

    Addr pc() const { return pc_; }

    /** Emits an arithmetic op writing @p dst from @p srcs. */
    void alu(int dst, std::initializer_list<int> srcs,
             OpClass cls = OpClass::Alu);

    /**
     * Emits a load of the 64-bit word at @p addr into @p dst.
     * @param srcs the registers that functionally produced the address
     * @returns the loaded value (from functional memory)
     */
    uint64_t load(int dst, std::initializer_list<int> srcs, Addr addr);

    /** Emits a store of @p value to @p addr; srcs = address + data regs. */
    void store(std::initializer_list<int> srcs, Addr addr, uint64_t value);

    /**
     * Emits a conditional branch. When taken the PC moves to @p target,
     * otherwise it falls through to pc+4.
     * @param srcs registers the branch condition depends on
     */
    void branch(bool taken, Addr target,
                std::initializer_list<int> srcs = {});

    /** Emits an unconditional jump to @p target (always predictable). */
    void jump(Addr target);

    /** Emits @p n independent single-cycle filler ops. */
    void nops(int n);

    /** Total ops emitted so far (monotonic; survives sink drains). */
    size_t emitted() const { return emitted_; }

  private:
    void push(MicroOp op);

    FunctionalMemory &mem_;
    std::vector<MicroOp> &out_;
    size_t limit_;
    size_t emitted_ = 0;
    Addr pc_ = 0x400000;
};

} // namespace catchsim

#endif // CATCHSIM_TRACE_EMITTER_HH_
