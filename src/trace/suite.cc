#include "trace/suite.hh"

#include <functional>
#include <map>

#include "common/logging.hh"
#include "trace/kernels/kernels.hh"

namespace catchsim
{

namespace
{

using Factory = std::function<std::unique_ptr<Workload>()>;

template <typename T, typename... Args>
Factory
make(Args... args)
{
    return [=]() { return std::make_unique<T>(args...); };
}

constexpr size_t kKiB = 1024;
constexpr size_t kMiB = 1024 * 1024;

/**
 * The ST suite. Footprints are chosen relative to the baseline hierarchy
 * (32 KB L1, 1 MB L2, 5.5 MB LLC) to land each workload's hot set where
 * its SPEC counterpart's lives. Category geomeans are reported the way
 * the paper reports them.
 */
const std::map<std::string, Factory> &
registry()
{
    static const std::map<std::string, Factory> table = {
        // ------------------------- ISPEC -------------------------
        {"perlbench",
         make<InterpreterLike>("perlbench", 11, 48u, 65536u, 512 * kKiB)},
        {"bzip2", make<CompressLike>("bzip2", 12, 4 * kMiB)},
        {"gcc", make<MixedIntLike>("gcc", 13, 1 * kMiB, 10u)},
        {"mcf", make<McfLike>("mcf", 14, 1u << 20, 1u << 15)},
        {"gobmk", make<BranchyLike>("gobmk", 15, 1 * kMiB, 30u)},
        {"hmmer",
         make<DpTableLike>("hmmer", 16, 2048u, 384 * kKiB, 65536u)},
        {"sjeng", make<BranchyLike>("sjeng", 17, 512 * kKiB, 22u)},
        {"libquantum",
         make<CyclicScanLike>("libquantum", Category::Ispec, 18,
                              7680 * kKiB)},
        {"h264ref",
         make<Window2dLike>("h264ref", Category::Ispec, 19, 720u, 480u,
                            3u)},
        {"omnetpp", make<EventQueueLike>("omnetpp", 20, 8192u, 3u)},
        {"astar", make<GridNeighborLike>("astar", 21, 512u * 1024u, 256u)},
        {"xalancbmk",
         make<TreeWalkLike>("xalancbmk", Category::Ispec, 22, 1u << 17,
                            2u)},

        // ------------------------- FSPEC -------------------------
        {"bwaves",
         make<StreamTriadLike>("bwaves", Category::Fspec, 31, 3u << 20,
                               2u)},
        {"gamess",
         make<ButterflyLike>("gamess", Category::Fspec, 32, 1u << 18)},
        {"milc",
         make<ReductionChainLike>("milc", Category::Fspec, 33, 2u << 20,
                                  512 * kKiB)},
        {"zeusmp",
         make<StencilLike>("zeusmp", Category::Fspec, 34, 2048u, 1024u)},
        {"soplex",
         make<SparseMatVecLike>("soplex", 35, 8192u, 8u, 1u << 20)},
        {"povray",
         make<ManyPcLike>("povray", Category::Fspec, 36, 96u,
                          256 * kKiB)},
        {"calculix",
         make<ButterflyLike>("calculix", Category::Fspec, 37, 1u << 19)},
        {"gemsfdtd",
         make<GatherLike>("gemsfdtd", Category::Fspec, 38, 2u << 20,
                          4u << 20)},
        {"tonto",
         make<BlockedGemmLike>("tonto", Category::Fspec, 39, 96u)},
        {"lbm",
         make<StreamTriadLike>("lbm", Category::Fspec, 40, 6u << 20, 1u)},
        {"wrf", make<StencilLike>("wrf", Category::Fspec, 41, 4096u,
                                  512u)},
        {"sphinx3",
         make<ReductionChainLike>("sphinx3", Category::Fspec, 42,
                                  1u << 20, 256 * kKiB)},
        {"gromacs",
         make<ChaseLocalLike>("gromacs", Category::Fspec, 43, 384 * kKiB,
                              2u)},
        {"cactusADM",
         make<StencilLike>("cactusADM", Category::Fspec, 44, 8192u,
                           256u)},
        {"leslie3d",
         make<StencilLike>("leslie3d", Category::Fspec, 45, 1024u,
                           2048u)},
        {"namd",
         make<ChaseLocalLike>("namd", Category::Fspec, 46, 512 * kKiB,
                              4u)},
        {"dealII",
         make<TreeWalkLike>("dealII", Category::Fspec, 47, 1u << 16, 4u)},

        // -------------------------- HPC --------------------------
        {"blackscholes",
         make<ManyPcLike>("blackscholes", Category::Hpc, 51, 20u,
                          24 * kKiB)},
        {"bioinformatics",
         make<HashProbeLike>("bioinformatics", Category::Hpc, 52,
                             1u << 20, 1u << 16)},
        {"hplinpack",
         make<BlockedGemmLike>("hplinpack", Category::Hpc, 53, 64u)},
        {"hpc.stencil3d",
         make<StencilLike>("hpc.stencil3d", Category::Hpc, 54, 2048u,
                           2048u)},
        {"hpc.fft", make<ButterflyLike>("hpc.fft", Category::Hpc, 55,
                                        1u << 20)},
        {"hpc.stream",
         make<StreamTriadLike>("hpc.stream", Category::Hpc, 56, 8u << 20,
                               0u)},
        {"hpc.spmv",
         make<SparseMatVecLike>("hpc.spmv", 57, 16384u, 12u, 2u << 20)},
        {"hpc.gather",
         make<GatherLike>("hpc.gather", Category::Hpc, 58, 4u << 20,
                          8u << 20)},

        // ------------------------- SERVER ------------------------
        {"tpcc",
         make<OltpLike>("tpcc", 61, 128u, 36u, 64 * kMiB, 4u)},
        {"tpce",
         make<OltpLike>("tpce", 62, 144u, 40u, 128 * kMiB, 4u)},
        {"oracle",
         make<OltpLike>("oracle", 63, 112u, 32u, 96 * kMiB, 3u)},
        {"specjbb", make<JavaServerLike>("specjbb", 64, 24 * kMiB, 104u)},
        {"specjenterprise",
         make<JavaServerLike>("specjenterprise", 65, 48 * kMiB, 120u)},
        {"hadoop", make<MapReduceLike>("hadoop", 66, 1u << 20, 1u << 18)},
        {"specpower",
         make<OltpLike>("specpower", 67, 96u, 28u, 16 * kMiB, 3u)},

        // ------------------------- CLIENT ------------------------
        {"sysmark-excel",
         make<FormulaDagLike>("sysmark-excel", 71, 1u << 19)},
        {"facedetection",
         make<Window2dLike>("facedetection", Category::Client, 72, 4096u,
                            256u, 4u)},
        {"h264enc",
         make<Window2dLike>("h264enc", Category::Client, 73, 3072u, 320u,
                            4u)},
        {"browser", make<DomWalkLike>("browser", 74, 1u << 16, 96u)},
    };
    return table;
}

/**
 * Seeded variants that widen the base list to the paper's 70 ST traces.
 * Each variant re-parameterises a base kernel (different seed and a
 * shifted footprint), standing in for a different input set of the same
 * application, like SPEC's multiple ref inputs.
 */
struct Variant
{
    const char *name;
    Factory factory;
};

const std::vector<Variant> &
variants()
{
    static const std::vector<Variant> list = {
        {"perlbench-2",
         make<InterpreterLike>("perlbench-2", 111, 64u, 32768u,
                               1 * kMiB)},
        {"bzip2-2", make<CompressLike>("bzip2-2", 112, 8 * kMiB)},
        {"gcc-2", make<MixedIntLike>("gcc-2", 113, 2 * kMiB, 16u)},
        {"mcf-2", make<McfLike>("mcf-2", 114, 1u << 19, 1u << 14)},
        {"gobmk-2", make<BranchyLike>("gobmk-2", 115, 2 * kMiB, 35u)},
        {"hmmer-2",
         make<DpTableLike>("hmmer-2", 116, 1024u, 512 * kKiB, 32768u)},
        {"h264ref-2",
         make<Window2dLike>("h264ref-2", Category::Ispec, 119, 1280u,
                            256u, 3u)},
        {"omnetpp-2", make<EventQueueLike>("omnetpp-2", 120, 16384u, 2u)},
        {"astar-2",
         make<GridNeighborLike>("astar-2", 121, 1024u * 1024u, 384u)},
        {"xalancbmk-2",
         make<TreeWalkLike>("xalancbmk-2", Category::Ispec, 122, 1u << 16,
                            3u)},
        {"bwaves-2",
         make<StreamTriadLike>("bwaves-2", Category::Fspec, 131, 2u << 20,
                               3u)},
        {"milc-2",
         make<ReductionChainLike>("milc-2", Category::Fspec, 133,
                                  3u << 20, 768 * kKiB)},
        {"soplex-2",
         make<SparseMatVecLike>("soplex-2", 135, 4096u, 16u, 512u * 1024u)},
        {"povray-2",
         make<ManyPcLike>("povray-2", Category::Fspec, 136, 72u,
                          768 * kKiB)},
        {"gemsfdtd-2",
         make<GatherLike>("gemsfdtd-2", Category::Fspec, 138, 1u << 20,
                          2u << 20)},
        {"sphinx3-2",
         make<ReductionChainLike>("sphinx3-2", Category::Fspec, 142,
                                  1u << 19, 384 * kKiB)},
        {"namd-2",
         make<ChaseLocalLike>("namd-2", Category::Fspec, 146, 768 * kKiB,
                              3u)},
        {"hplinpack-2",
         make<BlockedGemmLike>("hplinpack-2", Category::Hpc, 153, 80u)},
        {"hpc.spmv-2",
         make<SparseMatVecLike>("hpc.spmv-2", 157, 32768u, 6u, 4u << 20)},
        {"tpcc-2",
         make<OltpLike>("tpcc-2", 161, 152u, 44u, 192 * kMiB, 4u)},
        {"specjbb-2",
         make<JavaServerLike>("specjbb-2", 164, 96 * kMiB, 136u)},
        {"sysmark-excel-2",
         make<FormulaDagLike>("sysmark-excel-2", 171, 1u << 20)},
    };
    return list;
}

} // namespace

std::vector<std::string>
stSuiteNames()
{
    std::vector<std::string> names;
    for (const auto &[name, factory] : registry())
        names.push_back(name);
    for (const auto &v : variants())
        names.push_back(v.name);
    return names;
}

std::vector<std::string>
stQuickNames()
{
    return {"mcf", "hmmer", "omnetpp", "libquantum", "milc", "soplex",
            "namd", "povray", "hplinpack", "tpcc", "specjbb",
            "sysmark-excel", "facedetection", "gobmk"};
}

Expected<std::unique_ptr<Workload>>
findWorkload(const std::string &name)
{
    auto it = registry().find(name);
    if (it != registry().end())
        return it->second();
    for (const auto &v : variants())
        if (name == v.name)
            return v.factory();
    // List every valid name so a CLI typo is a one-round-trip fix.
    std::string known;
    for (const auto &n : stSuiteNames()) {
        if (!known.empty())
            known += ", ";
        known += n;
    }
    return simError(ErrorCategory::Config, "unknown workload '", name,
                    "'; valid names: ", known);
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    auto wl = findWorkload(name);
    CATCHSIM_ASSERT(wl.ok(), "unknown workload '", name,
                    "' (use findWorkload to handle this recoverably)");
    return std::move(wl).value();
}

std::vector<MpMix>
mpMixes()
{
    std::vector<MpMix> mixes;
    // 30 RATE-4 mixes: four copies of the same application.
    const std::vector<std::string> rate = {
        "perlbench", "bzip2", "gcc", "mcf", "gobmk", "hmmer", "sjeng",
        "libquantum", "h264ref", "omnetpp", "astar", "xalancbmk",
        "bwaves", "milc", "zeusmp", "soplex", "povray", "gemsfdtd",
        "lbm", "sphinx3", "namd", "leslie3d", "hplinpack", "hpc.spmv",
        "tpcc", "tpce", "specjbb", "hadoop", "sysmark-excel", "browser",
    };
    for (const auto &w : rate)
        mixes.push_back({"rate4." + w, {w, w, w, w}});
    // 30 random mixes drawn deterministically from the ST suite.
    auto names = stSuiteNames();
    Rng rng(2018);
    for (int m = 0; m < 30; ++m) {
        MpMix mix;
        mix.name = "mix" + std::to_string(m);
        for (auto &slot : mix.workloads)
            slot = names[rng.below(names.size())];
        mixes.push_back(mix);
    }
    return mixes;
}

} // namespace catchsim
