/**
 * @file
 * Workload and trace abstractions.
 *
 * A Workload is a seeded generator of instruction traces. The synthetic
 * kernels in trace/kernels stand in for the paper's SPEC CPU 2006 / HPC /
 * server / client applications; each is engineered to reproduce the
 * cache-hierarchy behaviour the paper reports for its category (see
 * DESIGN.md section 2 for the substitution argument).
 */

#ifndef CATCHSIM_TRACE_WORKLOAD_HH_
#define CATCHSIM_TRACE_WORKLOAD_HH_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "mem/functional_memory.hh"
#include "trace/emitter.hh"
#include "trace/micro_op.hh"

namespace catchsim
{

/** Workload categories used for per-category reporting, as in the paper. */
enum class Category : uint8_t
{
    Client,
    Fspec,
    Hpc,
    Ispec,
    Server,
};

const char *categoryName(Category c);

/** A generated trace plus the functional memory it computed against. */
struct Trace
{
    std::vector<MicroOp> ops;
    /**
     * Final memory image. TACT-Feeder reads prefetched lines from here to
     * obtain the value a hardware fill would return (kernels write their
     * pointer structures during setup and do not re-link them afterwards,
     * so the image is stable for the addresses feeder chases).
     */
    std::shared_ptr<FunctionalMemory> mem;
};

/** Base class for all workloads. */
class Workload
{
  public:
    Workload(std::string name, Category category, uint64_t seed)
        : name_(std::move(name)), category_(category), seed_(seed)
    {
    }

    virtual ~Workload() = default;

    const std::string &name() const { return name_; }
    Category category() const { return category_; }
    uint64_t seed() const { return seed_; }

    /** Generates a trace of exactly @p n micro-ops. */
    Trace
    generate(size_t n)
    {
        Trace trace;
        trace.mem = std::make_shared<FunctionalMemory>();
        Emitter em(*trace.mem, trace.ops, n);
        Rng rng(seed_);
        setup(*trace.mem, rng);
        while (!em.done())
            run(em, rng);
        return trace;
    }

  protected:
    /** Builds the workload's data structures in functional memory. Also
     *  resets any generation cursors so a workload object can generate
     *  (or stream) the same trace repeatedly. */
    virtual void setup(FunctionalMemory &mem, Rng &rng) = 0;

    /**
     * Emits one outer chunk of the algorithm; called repeatedly until the
     * op budget is exhausted. Implementations must make forward progress
     * (emit at least one op) per call.
     */
    virtual void run(Emitter &em, Rng &rng) = 0;

  private:
    /** Drives setup()/run() incrementally instead of via generate(). */
    friend class TraceStream;
    /** Same incremental drive, for the memoized chunk pipeline. */
    friend class ChunkGenerator;

    std::string name_;
    Category category_;
    uint64_t seed_;
};

/** Convenient architectural register names for kernel code. */
enum Reg : int
{
    r0 = 0, r1, r2, r3, r4, r5, r6, r7,
    r8, r9, r10, r11, r12, r13, r14, r15,
};

/** Base of the code segment used by kernels. */
constexpr Addr kCodeBase = 0x00400000;

/** Base of the data segment used by kernels. */
constexpr Addr kHeapBase = 0x10000000;

/**
 * Address of code block @p i. Blocks are 0x440 bytes apart: enough for
 * every kernel's intra-block offsets, packed like compiler-laid-out
 * functions, and 17 lines is coprime with any power-of-two set count so
 * consecutive blocks cover all L1I sets (page-aligned blocks would
 * alias a handful of sets and melt the instruction cache).
 */
constexpr Addr
codeBlock(unsigned i)
{
    return kCodeBase + static_cast<Addr>(i) * 0x440;
}

} // namespace catchsim

#endif // CATCHSIM_TRACE_WORKLOAD_HH_
