/**
 * @file
 * MicroOp: one dynamic instruction of a workload trace.
 *
 * The trace is the interface between the synthetic workload kernels and
 * the timing model. It carries everything the paper's hardware can see:
 * the PC, the operation class, architectural register sources/destination,
 * the memory address and (for loads) the value the access returns.
 */

#ifndef CATCHSIM_TRACE_MICRO_OP_HH_
#define CATCHSIM_TRACE_MICRO_OP_HH_

#include <cstdint>

#include "common/types.hh"

namespace catchsim
{

/** Functional-unit class of an instruction. */
enum class OpClass : uint8_t
{
    Alu,    ///< single-cycle integer op
    Mul,    ///< integer multiply (3 cycles)
    Div,    ///< integer divide (20 cycles, unpipelined-ish)
    FpAdd,  ///< FP add/sub (4 cycles)
    FpMul,  ///< FP multiply / FMA (4 cycles)
    FpDiv,  ///< FP divide / sqrt (15 cycles)
    Load,
    Store,
    Branch, ///< conditional or unconditional control transfer
    Nop,
};

/** Fixed execution latency of non-memory op classes, in core cycles. */
constexpr uint32_t
opLatency(OpClass cls)
{
    switch (cls) {
      case OpClass::Alu: return 1;
      case OpClass::Mul: return 3;
      case OpClass::Div: return 20;
      case OpClass::FpAdd: return 4;
      case OpClass::FpMul: return 4;
      case OpClass::FpDiv: return 15;
      case OpClass::Branch: return 1;
      case OpClass::Store: return 1; ///< address/data ready to commit
      default: return 1;
    }
}

/** True for classes that execute on the FP pipes. */
constexpr bool
isFpClass(OpClass cls)
{
    return cls == OpClass::FpAdd || cls == OpClass::FpMul ||
           cls == OpClass::FpDiv;
}

/** Maximum number of register sources an instruction can name. */
constexpr uint32_t kMaxSrcs = 3;

/**
 * One dynamic instruction. Instructions are 4 bytes long in our ISA.
 *
 * The layout is packed to 32 bytes (half a cache line) because the
 * simulator streams billions of these through the core model: memAddr
 * and target share storage — an op is a memory access or a control
 * transfer, never both — and the byte-wide fields are grouped so the
 * struct carries no internal padding beyond the 2-byte tail.
 */
struct MicroOp
{
    Addr pc = 0;
    union
    {
        Addr memAddr = 0; ///< loads and stores
        Addr target;      ///< branches: actual taken target
    };
    uint64_t value = 0;                ///< load result / store data
    OpClass cls = OpClass::Nop;
    int8_t dst = -1;                   ///< destination arch reg or -1
    int8_t src[kMaxSrcs] = {-1, -1, -1};
    bool taken = false;                ///< branches: actual direction

    bool isLoad() const { return cls == OpClass::Load; }
    bool isStore() const { return cls == OpClass::Store; }
    bool isBranch() const { return cls == OpClass::Branch; }

    /** Address of the next dynamic instruction. */
    Addr
    nextPc() const
    {
        return (isBranch() && taken) ? target : pc + 4;
    }
};

static_assert(sizeof(MicroOp) <= 32,
              "MicroOp must stay within half a cache line; the hot "
              "simulation loop streams these by the billions");

} // namespace catchsim

#endif // CATCHSIM_TRACE_MICRO_OP_HH_
