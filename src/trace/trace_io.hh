/**
 * @file
 * Binary trace serialisation: save a generated Trace (instruction stream
 * plus the functional-memory pages the feeder reads) to disk and load it
 * back. Lets users capture a workload once and replay it across many
 * configuration sweeps, or ship traces between machines.
 *
 * Format (little-endian, version 1):
 *   magic "CTSIM\0", u32 version,
 *   u64 op count, then per op: pc, memAddr, value, target (u64 each),
 *     cls, dst, src[3], taken (u8 each),
 *   u64 page count, then per page: u64 base address + 4096 raw bytes.
 */

#ifndef CATCHSIM_TRACE_TRACE_IO_HH_
#define CATCHSIM_TRACE_TRACE_IO_HH_

#include <string>

#include "trace/workload.hh"

namespace catchsim
{

/** Writes @p trace to @p path. @returns false on I/O failure. */
bool saveTrace(const Trace &trace, const std::string &path);

/**
 * Reads a trace from @p path.
 * @returns an empty trace (no ops, null memory) on failure
 */
Trace loadTrace(const std::string &path);

} // namespace catchsim

#endif // CATCHSIM_TRACE_TRACE_IO_HH_
