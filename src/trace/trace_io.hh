/**
 * @file
 * Binary trace serialisation: save a generated Trace (instruction stream
 * plus the functional-memory pages the feeder reads) to disk and load it
 * back. Lets users capture a workload once and replay it across many
 * configuration sweeps, or ship traces between machines.
 *
 * Format (little-endian, version 2):
 *   magic "CTSIM\0", u32 version,
 *   u64 op count, then per 30-byte op: pc, memAddr-or-target, value
 *     (u64 each; memAddr and target share storage in MicroOp),
 *     cls, dst, src[3], taken (u8 each),
 *   u64 page count, then per page: u64 base address + 4096 raw bytes.
 * Version 1 files (38-byte ops with separate memAddr and target words)
 * are rejected as unsupported.
 *
 * Loading validates everything a hostile or bit-flipped file could get
 * wrong — magic, version, counts bounded by the file's real size, op
 * classes and register indices in range, page alignment, trailing
 * garbage — and reports defects as trace-corrupt SimErrors, never UB.
 */

#ifndef CATCHSIM_TRACE_TRACE_IO_HH_
#define CATCHSIM_TRACE_TRACE_IO_HH_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/error.hh"
#include "trace/workload.hh"

namespace catchsim
{

/** On-disk trace format version; shared by full-trace files and the
 *  chunk store's per-chunk records (trace/chunk_store.hh). */
constexpr uint32_t kTraceFormatVersion = 2;

/** Packed size of one version-2 op record: pc, memAddr-or-target,
 *  value (u64 each), then cls, dst, src[3], taken (one byte each). */
constexpr size_t kTraceOpRecordBytes = 3 * 8 + 6 * 1;

/** Packs @p op into exactly kTraceOpRecordBytes at @p out. */
void encodeOpRecord(const MicroOp &op, uint8_t *out);

/**
 * Unpacks one op record from @p in (kTraceOpRecordBytes long) into
 * @p op. Returns nullptr on success or a static defect description
 * ("invalid class ...", "out-of-range register ...") when a field is
 * outside the format's validity limits; @p op is unspecified then.
 */
const char *decodeOpRecord(const uint8_t *in, MicroOp *op);

/** Incremental 64-bit FNV-1a over @p n bytes; chain via @p h. */
inline uint64_t
fnv1a(const void *data, size_t n, uint64_t h = 1469598103934665603ULL)
{
    const auto *p = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ULL;
    }
    return h;
}

/** Writes @p trace to @p path; the error names the path and cause. */
Expected<void> saveTraceChecked(const Trace &trace,
                                const std::string &path);

/** Legacy wrapper: warns and returns false on failure. */
bool saveTrace(const Trace &trace, const std::string &path);

/**
 * Reads and fully validates a trace. An unopenable path is a config
 * error; any content defect (bad magic/version, counts exceeding the
 * file size, truncation, out-of-range op class or register index,
 * misaligned page base, trailing bytes) is trace-corrupt with a
 * message naming the offending record.
 */
Expected<Trace> loadTraceChecked(const std::string &path);

/**
 * Legacy wrapper over loadTraceChecked.
 * @returns an empty trace (no ops, null memory) after warning on any
 * failure
 */
Trace loadTrace(const std::string &path);

} // namespace catchsim

#endif // CATCHSIM_TRACE_TRACE_IO_HH_
