/**
 * @file
 * TraceStream: chunked, double-buffered trace generation.
 *
 * The materialize-everything model (Workload::generate) allocates the
 * whole op vector up front — ~32 bytes per instruction, gigabytes for
 * long campaigns — and then streams it through the core exactly once.
 * TraceStream replaces that with a ring of two chunk-sized buffers the
 * kernel fills just ahead of the consumer: memory drops from O(instrs)
 * to O(chunk) and the resident window stays cache-hot.
 *
 * Contract with the consumer (OooCore/Frontend):
 *   - positions are consumed in nondecreasing order; before touching
 *     position p the consumer calls ensure(p) (a single compare against
 *     refillAt() on the hot path);
 *   - after ensure(p), every index in [p, min(size, p + chunkOps()))
 *     is resident, which is what bounds the TACT-Code runahead walk
 *     (kCodeRunaheadHorizonOps <= chunk);
 *   - generation is a pure function of the workload's seed: the op
 *     sequence is bitwise-identical to Workload::generate(size), and
 *     rewind() re-seeds the kernel RNG and replays it instead of
 *     re-reading a stored vector.
 *
 * The functional memory evolves exactly as under generate(): kernels
 * run in emission order, at most ~2 chunks ahead of consumption. The
 * TACT-Feeder value source (Trace::mem's "stable for the addresses
 * feeder chases" argument) is unchanged — pointer structures are
 * written during setup, which completes before the first op is served.
 */

#ifndef CATCHSIM_TRACE_TRACE_STREAM_HH_
#define CATCHSIM_TRACE_TRACE_STREAM_HH_

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hh"
#include "trace/chunk_store.hh"
#include "trace/trace_view.hh"
#include "trace/workload.hh"

namespace catchsim
{

class TraceStream
{
  public:
    /** Default chunk: 64K ops (2 MB resident) — LLC-sized, and twice
     *  the code-runahead horizon the consumer may scan past a stall. */
    static constexpr size_t kDefaultChunkOps = 65536;

    /**
     * Starts streaming @p total_ops ops of @p wl. The workload object
     * must outlive the stream and is exclusively owned by it while
     * streaming (its generation cursors are reset via setup()).
     * @param chunk_ops refill granularity; must be a power of two.
     *        Consumers that read ahead (the core's runahead walker)
     *        additionally require chunk_ops >= kCodeRunaheadHorizonOps.
     * @param gen_clock optional host-seconds source; when set, time
     *        spent generating (setup + every refill) accrues into
     *        genSeconds() for host-side profiling. Never affects the
     *        generated ops.
     * @param store optional memoized chunk store: refills become store
     *        lookups (kernel runs only on a miss, and misses publish
     *        the generated chunk for every later consumer). The served
     *        ops are bitwise-identical to the storeless path; null
     *        keeps the legacy generate-in-place behaviour exactly.
     */
    TraceStream(Workload &wl, size_t total_ops,
                size_t chunk_ops = kDefaultChunkOps,
                std::function<double()> gen_clock = {},
                ChunkStore *store = nullptr);

    /** Total ops this stream will serve. */
    size_t size() const { return total_; }

    size_t chunkOps() const { return chunk_; }

    /** Masked view over the ring; valid for the life of the stream. */
    TraceView
    view() const
    {
        return TraceView{ring_.data(), mask_, total_};
    }

    /**
     * First position that requires a refill before being read; ~0 once
     * the stream is fully generated. The consumer's hot path is
     * `if (pos >= refillAt()) ensure(pos)`.
     */
    size_t refillAt() const { return refillAt_; }

    /** Materializes the window covering @p pos (and the lookahead). */
    void
    ensure(size_t pos)
    {
        while (pos >= refillAt_)
            generateChunk();
    }

    /**
     * Restarts the stream from op 0 by re-seeding the kernel RNG and
     * regenerating — the streamed equivalent of re-reading a stored
     * vector. The functional memory is reset in place, so pointers to
     * it (TACT-Feeder's value source) remain valid.
     */
    void rewind();

    /**
     * The functional memory the kernel computes against. Stable across
     * rewind(); evolves with generation progress exactly as it does
     * under Workload::generate.
     */
    const std::shared_ptr<FunctionalMemory> &mem() const { return mem_; }

    /** Host seconds spent generating; 0 unless a gen_clock was given.
     *  With a store this covers the whole refill path (lookups and
     *  regeneration), so hit-rate shows up as the ratio of this number
     *  across cold and warm runs. */
    double genSeconds() const { return genSeconds_; }

    /** Chunk refills served from the store (0 without a store). */
    uint64_t storeHits() const { return storeHitChunks_; }

    /** Chunk refills that ran the kernel (with a store: misses). */
    uint64_t storeMisses() const { return storeMissChunks_; }

    /** True when refills go through a chunk store — the only mode the
     *  warmed-state snapshots support (see saveWarmState). */
    bool storeBacked() const { return store_ != nullptr; }

    /**
     * Serializes the stream's consumer-visible state: the generated-op
     * frontier (total, chunk, genEnd). The functional-memory image
     * travels separately as a copy-on-write page image — see
     * WarmSnapshot — so restores share pages instead of reparsing
     * them. Store-backed streams only: the legacy in-place generator
     * cannot jump its kernel cursors, so snapshots are gated on the
     * chunk store being enabled.
     */
    void saveWarmState(StateSink &sink) const;

    /**
     * Restores a saveWarmState() stream taken at the same (workload,
     * total, chunk) identity: adopts @p pages into the functional
     * memory in place (the mem() address — TACT-Feeder's value source —
     * is preserved, and the snapshot's pages stay frozen: the memory
     * clones on first write), then re-fetches the ring chunks covering
     * the restored frontier from the chunk store (regenerating on a
     * store miss) WITHOUT replaying their stores — the restored memory
     * already reflects every store before the frontier. When the live
     * frontier already equals the snapshot's, the ring is bitwise
     * up-to-date (its content is a pure function of the frontier) and
     * the re-fetch is skipped. @returns false on a malformed stream or
     * when the stream is not store-backed.
     */
    bool loadWarmState(StateSource &src,
                       const FunctionalMemory::PageImage &pages);

  private:
    /** find-or-regenerate without the mem_ store replay (restore path). */
    ChunkStore::ChunkPtr fetchChunkNoReplay(uint64_t index);

    void start();
    void generateChunk();
    void generateChunkFromStore();
    ChunkKey keyFor(uint64_t index) const;

    Workload *wl_;
    size_t total_;
    size_t chunk_;
    size_t mask_;
    std::vector<MicroOp> ring_;

    std::shared_ptr<FunctionalMemory> mem_;
    std::optional<Rng> rng_;
    std::optional<Emitter> em_;

    /** Ops emitted by the kernel but not yet copied into the ring
     *  (kernels overshoot chunk boundaries by one outer loop). */
    std::vector<MicroOp> pending_;

    size_t genEnd_ = 0;            ///< ops generated into the ring
    size_t refillAt_ = ~size_t(0); ///< see refillAt()

    std::function<double()> genClock_;
    double genSeconds_ = 0;

    /** Memoized-pipeline state; unused (and gen_ never started) when
     *  store_ is null. The consumer-visible mem_ stays canonical by
     *  replaying the Store-class ops of every served chunk; gen_ runs
     *  the kernel against its own private memory on misses. */
    ChunkStore *store_ = nullptr;
    ChunkGenerator gen_;
    uint64_t storeHitChunks_ = 0;
    uint64_t storeMissChunks_ = 0;
};

static_assert(kCodeRunaheadHorizonOps <= TraceStream::kDefaultChunkOps / 2,
              "the runahead horizon must fit inside the guaranteed "
              "stream lookahead of one chunk");

} // namespace catchsim

#endif // CATCHSIM_TRACE_TRACE_STREAM_HH_
