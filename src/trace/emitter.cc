#include "trace/emitter.hh"

#include <algorithm>

#include "common/logging.hh"

namespace catchsim
{

Emitter::Emitter(FunctionalMemory &mem, std::vector<MicroOp> &out,
                 size_t limit, size_t reserve_hint)
    : mem_(mem), out_(out), limit_(limit), emitted_(out.size())
{
    out_.reserve(std::min(limit, reserve_hint));
}

void
Emitter::push(MicroOp op)
{
    if (done()) {
        // Kernels keep computing past the budget until their outer loop
        // notices; silently drop the surplus ops.
        return;
    }
    out_.push_back(op);
    ++emitted_;
}

void
Emitter::alu(int dst, std::initializer_list<int> srcs, OpClass cls)
{
    MicroOp op;
    op.pc = pc_;
    op.cls = cls;
    op.dst = static_cast<int8_t>(dst);
    int i = 0;
    for (int s : srcs) {
        CATCHSIM_ASSERT(i < static_cast<int>(kMaxSrcs), "too many sources");
        op.src[i++] = static_cast<int8_t>(s);
    }
    push(op);
    pc_ += 4;
}

uint64_t
Emitter::load(int dst, std::initializer_list<int> srcs, Addr addr)
{
    uint64_t value = mem_.read(addr);
    MicroOp op;
    op.pc = pc_;
    op.cls = OpClass::Load;
    op.dst = static_cast<int8_t>(dst);
    int i = 0;
    for (int s : srcs) {
        CATCHSIM_ASSERT(i < static_cast<int>(kMaxSrcs), "too many sources");
        op.src[i++] = static_cast<int8_t>(s);
    }
    op.memAddr = addr;
    op.value = value;
    push(op);
    pc_ += 4;
    return value;
}

void
Emitter::store(std::initializer_list<int> srcs, Addr addr, uint64_t value)
{
    mem_.write(addr, value);
    MicroOp op;
    op.pc = pc_;
    op.cls = OpClass::Store;
    int i = 0;
    for (int s : srcs) {
        CATCHSIM_ASSERT(i < static_cast<int>(kMaxSrcs), "too many sources");
        op.src[i++] = static_cast<int8_t>(s);
    }
    op.memAddr = addr;
    op.value = value;
    push(op);
    pc_ += 4;
}

void
Emitter::branch(bool taken, Addr target, std::initializer_list<int> srcs)
{
    MicroOp op;
    op.pc = pc_;
    op.cls = OpClass::Branch;
    int i = 0;
    for (int s : srcs) {
        CATCHSIM_ASSERT(i < static_cast<int>(kMaxSrcs), "too many sources");
        op.src[i++] = static_cast<int8_t>(s);
    }
    op.taken = taken;
    op.target = target;
    push(op);
    pc_ = taken ? target : pc_ + 4;
}

void
Emitter::jump(Addr target)
{
    branch(true, target);
}

void
Emitter::nops(int n)
{
    for (int i = 0; i < n; ++i)
        alu(-1, {});
}

} // namespace catchsim
