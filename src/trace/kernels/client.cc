/**
 * @file
 * Interactive-application kernels: FormulaDagLike, DomWalkLike.
 */

#include "trace/kernels/kernels.hh"

namespace catchsim
{

namespace
{

constexpr Addr kCells = 0x10000000;
constexpr Addr kRefs = 0x30000000;
constexpr Addr kStyles = 0x50000000;

} // namespace

// ---------------------------------------------------------------------
// FormulaDagLike
// ---------------------------------------------------------------------

FormulaDagLike::FormulaDagLike(std::string name, uint64_t seed,
                               size_t cells)
    : Workload(std::move(name), Category::Client, seed), cells_(cells)
{
}

void
FormulaDagLike::setup(FunctionalMemory &mem, Rng &rng)
{
    pos_ = 0;
    // Each cell's formula references two operand cells via a reference
    // table; references are byte offsets (feeder scale 1). Most
    // references are near the cell (spreadsheet locality), some are far.
    for (size_t i = 0; i < cells_; ++i) {
        size_t near = (i + 1 + rng.below(64)) % cells_;
        size_t far = rng.below(cells_);
        mem.write(kRefs + i * 16, near * 8);
        mem.write(kRefs + i * 16 + 8, far * 8);
        mem.write(kCells + i * 8, rng.below(1 << 12));
    }
}

void
FormulaDagLike::run(Emitter &em, Rng &rng)
{
    (void)rng;
    const Addr body = codeBlock(0);
    for (size_t n = 0; n < 2048 && !em.done(); ++n, ++pos_) {
        size_t i = pos_ % cells_;
        em.setPc(body);
        em.alu(r0, {r0});
        uint64_t off_a = em.load(r1, {r0}, kRefs + i * 16);   // operand refs
        uint64_t off_b = em.load(r2, {r0}, kRefs + i * 16 + 8);
        uint64_t a = em.load(r3, {r1}, kCells + off_a);       // operand A
        uint64_t b = em.load(r4, {r2}, kCells + off_b);       // operand B
        em.alu(r5, {r3, r4}, OpClass::FpMul);                 // evaluate
        em.alu(r5, {r5, r3}, OpClass::FpAdd);
        em.store({r0, r5}, kCells + i * 8, a + b);            // result
        em.branch(true, body, {r0});
    }
}

// ---------------------------------------------------------------------
// DomWalkLike
// ---------------------------------------------------------------------

DomWalkLike::DomWalkLike(std::string name, uint64_t seed, size_t nodes,
                         uint32_t code_blocks)
    : Workload(std::move(name), Category::Client, seed), nodes_(nodes),
      codeBlocks_(code_blocks)
{
}

void
DomWalkLike::setup(FunctionalMemory &mem, Rng &rng)
{
    // DOM-ish nodes: 64 B with first-child / next-sibling pointers and a
    // style-class id. The style table is small and hot.
    for (size_t i = 0; i < nodes_; ++i) {
        Addr a = kCells + i * 64;
        mem.write(a, kCells + rng.below(nodes_) * 64);      // child
        mem.write(a + 8, kCells + rng.below(nodes_) * 64);  // sibling
        mem.write(a + 16, rng.below(512) * 8);              // style offset
    }
    for (size_t i = 0; i < 512; ++i)
        mem.write(kStyles + i * 8, rng.next() & 0xffff);
}

void
DomWalkLike::run(Emitter &em, Rng &rng)
{
    const Addr walk = codeBlock(0);
    for (size_t n = 0; n < 512 && !em.done(); ++n) {
        // Layout pass over a small subtree.
        Addr node = kCells + rng.below(nodes_) * 64;
        em.setPc(walk);
        em.alu(r0, {r0});
        uint64_t cur = node;
        for (uint32_t d = 0; d < 6; ++d) {
            em.setPc(walk + 0x40);
            uint64_t style = em.load(r2, {r1}, cur + 16);   // style offset
            em.load(r3, {r2}, kStyles + style);             // style entry
            em.alu(r4, {r4, r3});
            bool child = rng.percent(60);
            em.branch(child, walk + 0x140, {r3});
            cur = em.load(r1, {r1}, child ? cur : cur + 8); // descend
        }
        // Script callback across the code footprint.
        em.setPc(codeBlock(1 + rng.below(codeBlocks_)));
        em.nops(8);
        em.alu(r5, {r5, r4});
        em.branch(rng.percent(80), em.pc() + 0x40, {r5});
        em.nops(6);
        em.branch(true, walk, {r5});
    }
}

} // namespace catchsim
