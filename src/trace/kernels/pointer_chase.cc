/**
 * @file
 * Irregular, dependent-load kernels: McfLike, EventQueueLike,
 * TreeWalkLike, HashProbeLike, ChaseLocalLike.
 */

#include "trace/kernels/kernels.hh"

#include <utility>
#include <vector>

#include "common/bitutil.hh"

namespace catchsim
{

namespace
{

// Disjoint data regions so kernels' structures never alias.
constexpr Addr kRegionA = 0x10000000; // primary arrays
constexpr Addr kRegionB = 0x30000000; // secondary arrays / node arenas
constexpr Addr kRegionC = 0x50000000; // tertiary tables

} // namespace

// ---------------------------------------------------------------------
// McfLike
// ---------------------------------------------------------------------

McfLike::McfLike(std::string name, uint64_t seed, size_t num_arcs,
                 size_t num_nodes)
    : Workload(std::move(name), Category::Ispec, seed),
      numArcs_(num_arcs), numNodes_(num_nodes)
{
}

void
McfLike::setup(FunctionalMemory &mem, Rng &rng)
{
    pos_ = 0;
    // Arc array: 32 B records whose first word points at a random node.
    // Node records are 64 B (one cache line); each node also points at
    // its head node (the second chase hop).
    for (size_t i = 0; i < numArcs_; ++i) {
        Addr node = kRegionB + rng.below(numNodes_) * 64;
        mem.write(kRegionA + i * 32, node);
        mem.write(kRegionA + i * 32 + 8, rng.below(1000)); // arc cost
    }
    for (size_t i = 0; i < numNodes_; ++i) {
        mem.write(kRegionB + i * 64,
                  kRegionB + rng.below(numNodes_) * 64); // head pointer
        mem.write(kRegionB + i * 64 + 16, rng.below(1 << 20)); // potential
    }
}

void
McfLike::run(Emitter &em, Rng &rng)
{
    (void)rng;
    const Addr body = codeBlock(0);
    for (size_t n = 0; n < 4096 && !em.done(); ++n, ++pos_) {
        Addr arc = kRegionA + (pos_ % numArcs_) * 32;
        em.setPc(body);
        em.alu(r0, {r0});                             // i++
        uint64_t node = em.load(r1, {r0}, arc);       // arc->tail (trigger)
        uint64_t cost = em.load(r4, {r0}, arc + 8);   // arc->cost
        uint64_t pot = em.load(r2, {r1}, node + 16);  // tail->potential
        uint64_t head = em.load(r7, {r1}, node);      // tail->head (hop 2)
        uint64_t hpot = em.load(r8, {r7}, head + 16); // head->potential
        // Negative-reduced-cost test: depends on both potentials and is
        // taken unpredictably for a quarter of the arcs, exposing the
        // node loads' latency after mispredicts (mcf's signature). The
        // head hop is a depth-2 chase: its feeder (the tail load) has no
        // address stride, so TACT cannot run ahead of it.
        em.branch(((pot ^ cost ^ hpot) & 3) == 0, body + 0x80, {r2, r8});
        em.alu(r3, {r3, r2});                         // dependent reduce
        em.alu(r5, {r4, r8});
        em.alu(r6, {r5, r3});
        em.branch(true, body, {r0});
    }
}

// ---------------------------------------------------------------------
// EventQueueLike
// ---------------------------------------------------------------------

EventQueueLike::EventQueueLike(std::string name, uint64_t seed,
                               size_t num_buckets, size_t nodes_per_bucket)
    : Workload(std::move(name), Category::Ispec, seed),
      numBuckets_(num_buckets), nodesPerBucket_(nodes_per_bucket)
{
}

void
EventQueueLike::setup(FunctionalMemory &mem, Rng &rng)
{
    pos_ = 0;
    // Bucket heads in region A; 64 B nodes in region B, randomly placed
    // so each bucket's list hops across the arena.
    const size_t arena = numBuckets_ * nodesPerBucket_;
    for (size_t b = 0; b < numBuckets_; ++b) {
        Addr prev = 0;
        for (size_t k = 0; k < nodesPerBucket_; ++k) {
            Addr node = kRegionB + rng.below(arena) * 64;
            if (k == 0)
                mem.write(kRegionA + b * 8, node);
            else
                mem.write(prev, node); // prev->next
            mem.write(node + 8, rng.below(1 << 16)); // timestamp
            prev = node;
        }
        mem.write(prev, 0); // list terminator
    }
}

void
EventQueueLike::run(Emitter &em, Rng &rng)
{
    const Addr body = codeBlock(0);
    const Addr chase = codeBlock(1);
    // Calendar queues advance through their buckets in time order: the
    // bucket scan is sequential (so the head-pointer loads are
    // runahead-coverable), while the per-bucket list walk remains a
    // pure chase.
    for (size_t n = 0; n < 1024 && !em.done(); ++n, ++pos_) {
        size_t bucket = pos_ % numBuckets_;
        em.setPc(body);
        em.alu(r0, {r0});                        // bucket cursor++
        Addr head = kRegionA + bucket * 8;
        uint64_t node = em.load(r1, {r0}, head); // bucket head
        // Walk a data-dependent number of nodes (average ~half the list).
        size_t hops = 1 + rng.below(nodesPerBucket_);
        for (size_t h = 0; h < hops && node != 0; ++h) {
            em.setPc(chase);
            em.load(r2, {r1}, node + 8);         // node->time
            em.alu(r3, {r3, r2});
            uint64_t next = em.load(r1, {r1}, node); // node->next (chase)
            bool cont = (h + 1 < hops) && next != 0;
            em.branch(cont, chase, {r1, r2});
            node = next;
        }
        em.setPc(body + 0x100);
        em.store({r1, r3}, kRegionC + bucket * 8, bucket); // schedule note
        em.branch(true, body, {r0});
    }
}

// ---------------------------------------------------------------------
// TreeWalkLike
// ---------------------------------------------------------------------

TreeWalkLike::TreeWalkLike(std::string name, Category cat, uint64_t seed,
                           size_t num_nodes, uint32_t compute_per_level)
    : Workload(std::move(name), cat, seed), numNodes_(num_nodes),
      computePerLevel_(compute_per_level)
{
    depth_ = floorLog2(num_nodes);
}

void
TreeWalkLike::setup(FunctionalMemory &mem, Rng &rng)
{
    // Implicit complete binary tree over randomly placed 32 B nodes.
    // Node i's children are 2i+1 / 2i+2; placement is a random shuffle so
    // descents have no spatial locality.
    std::vector<Addr> slots(numNodes_);
    for (size_t i = 0; i < numNodes_; ++i)
        slots[i] = kRegionB + i * 32;
    for (size_t i = numNodes_ - 1; i > 0; --i)
        std::swap(slots[i], slots[rng.below(i + 1)]);
    for (size_t i = 0; i < numNodes_; ++i) {
        Addr a = slots[i];
        size_t l = 2 * i + 1, r = 2 * i + 2;
        mem.write(a, l < numNodes_ ? slots[l] : slots[0]);
        mem.write(a + 8, r < numNodes_ ? slots[r] : slots[0]);
        mem.write(a + 16, rng.next() & 0xffff); // key
    }
    mem.write(kRegionA, slots[0]); // root pointer
}

void
TreeWalkLike::run(Emitter &em, Rng &rng)
{
    const Addr body = codeBlock(0);
    const Addr level = codeBlock(1);
    for (size_t n = 0; n < 512 && !em.done(); ++n) {
        em.setPc(body);
        uint64_t node = em.load(r1, {r0}, kRegionA); // root
        for (uint32_t d = 0; d < depth_; ++d) {
            em.setPc(level);
            em.load(r2, {r1}, node + 16);            // key
            bool go_left = rng.percent(50);          // data-dependent
            em.branch(go_left, level + 0x40, {r2, r3});
            for (uint32_t c = 0; c < computePerLevel_; ++c)
                em.alu(r4, {r4, r2});
            uint64_t next = em.load(r1, {r1},
                                    go_left ? node : node + 8); // child
            node = next;
        }
        em.setPc(body + 0x200);
        em.alu(r5, {r5, r2});
        em.branch(true, body, {r5});
    }
}

// ---------------------------------------------------------------------
// HashProbeLike
// ---------------------------------------------------------------------

HashProbeLike::HashProbeLike(std::string name, Category cat, uint64_t seed,
                             size_t num_keys, size_t num_buckets)
    : Workload(std::move(name), cat, seed), numKeys_(num_keys),
      numBuckets_(num_buckets)
{
}

void
HashProbeLike::setup(FunctionalMemory &mem, Rng &rng)
{
    pos_ = 0;
    // Keys are pre-hashed bucket indices (so the bucket address is a
    // linear function of the key load's data: feeder-learnable).
    for (size_t i = 0; i < numKeys_; ++i)
        mem.write(kRegionA + i * 8, rng.below(numBuckets_));
    // Each bucket holds a pointer to a 64 B entry in region C.
    for (size_t b = 0; b < numBuckets_; ++b) {
        Addr entry = kRegionC + rng.below(numBuckets_) * 64;
        mem.write(kRegionB + b * 8, entry);
        mem.write(entry + 8, rng.below(1 << 18)); // entry payload
    }
}

void
HashProbeLike::run(Emitter &em, Rng &rng)
{
    (void)rng;
    const Addr body = codeBlock(0);
    for (size_t n = 0; n < 4096 && !em.done(); ++n, ++pos_) {
        Addr key_addr = kRegionA + (pos_ % numKeys_) * 8;
        em.setPc(body);
        em.alu(r0, {r0});                               // i++
        uint64_t idx = em.load(r1, {r0}, key_addr);     // key (trigger)
        uint64_t entry = em.load(r2, {r1},
                                 kRegionB + idx * 8);   // bucket[key]
        uint64_t v = em.load(r3, {r2}, entry + 8);      // entry payload
        em.alu(r4, {r4, r3});                           // dependent reduce
        em.alu(r5, {r4, r1});
        em.branch(true, body, {r0});
        (void)v;
    }
}

// ---------------------------------------------------------------------
// ChaseLocalLike
// ---------------------------------------------------------------------

ChaseLocalLike::ChaseLocalLike(std::string name, Category cat,
                               uint64_t seed, size_t footprint_bytes,
                               uint32_t compute_per_hop)
    : Workload(std::move(name), cat, seed),
      footprintBytes_(footprint_bytes), computePerHop_(compute_per_hop)
{
}

namespace
{

/** Writes a Sattolo-cycle pointer ring of one slot per line. */
void
buildRing(FunctionalMemory &mem, Rng &rng, Addr base, size_t bytes)
{
    const size_t lines = bytes / kLineBytes;
    std::vector<uint32_t> perm(lines);
    for (size_t i = 0; i < lines; ++i)
        perm[i] = static_cast<uint32_t>(i);
    for (size_t i = lines - 1; i > 0; --i)
        std::swap(perm[i], perm[rng.below(i)]);
    for (size_t i = 0; i < lines; ++i)
        mem.write(base + i * kLineBytes, base + perm[i] * kLineBytes);
}

} // namespace

void
ChaseLocalLike::setup(FunctionalMemory &mem, Rng &rng)
{
    // Two pointer rings with no exploitable stride or data association:
    // a hot ring that fits the L1 (the neighbour lists namd/gromacs
    // iterate repeatedly) and a cold ring sized by the footprint (the
    // periodic far-field updates that live in the L2).
    buildRing(mem, rng, kRegionA, 16 * 1024);
    buildRing(mem, rng, kRegionB, footprintBytes_);
    cur_ = kRegionA;
    curFar_ = kRegionB;
}

void
ChaseLocalLike::run(Emitter &em, Rng &rng)
{
    (void)rng;
    const Addr body = codeBlock(0);
    // The hot ring chases every iteration (L1-resident); every
    // fourteenth hop also follows the cold ring, whose L2 residency is
    // what the no-L2 configurations lose. Neither ring has a stride or
    // data association TACT could learn.
    for (size_t n = 0; n < 4096 && !em.done(); ++n) {
        em.setPc(body);
        uint64_t next = em.load(r1, {r1}, cur_); // hot chase
        em.alu(r0, {r0});
        em.load(r3, {r0}, kRegionC + (n % 4096) * 8); // dense positions
        em.alu(r5, {r3, r1}, OpClass::FpMul);
        // Independent per-hop force computation (fresh destinations each
        // iteration: the chase is the only loop-carried chain).
        for (uint32_t c = 0; c < computePerHop_; ++c)
            em.alu(c % 2 ? r6 : r2, {r1, r3}, OpClass::FpMul);
        if (n % 14 == 13) {
            // Far-field lookup: the slot is derived from the current
            // neighbour (the hot value just loaded), so it cannot issue
            // until the hot hop completes, and the mixing makes the
            // address unlearnable for TACT. Its result feeds the next
            // hot hop: the cold ring's L2 latency sits on the chain.
            const size_t far_lines = footprintBytes_ / kLineBytes;
            Addr far_addr =
                kRegionB + (mix64(next) % far_lines) * kLineBytes;
            em.load(r9, {r1}, far_addr);
            em.alu(r2, {r2, r9});
            em.alu(r1, {r1, r9});
        }
        em.store({r0, r5}, kRegionC + 0x200000 + (n % 4096) * 8, next);
        em.branch(true, body, {r2});
        cur_ = next;
    }
}

} // namespace catchsim
