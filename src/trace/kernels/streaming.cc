/**
 * @file
 * Regular / bandwidth-style kernels: StreamTriadLike, StencilLike,
 * SparseMatVecLike, ReductionChainLike, GatherLike.
 */

#include "trace/kernels/kernels.hh"

namespace catchsim
{

namespace
{

constexpr Addr kArrA = 0x10000000;
constexpr Addr kArrB = 0x30000000;
constexpr Addr kArrC = 0x50000000;
constexpr Addr kArrD = 0x70000000;

} // namespace

// ---------------------------------------------------------------------
// StreamTriadLike
// ---------------------------------------------------------------------

StreamTriadLike::StreamTriadLike(std::string name, Category cat,
                                 uint64_t seed, size_t elems,
                                 uint32_t compute_per_elem)
    : Workload(std::move(name), cat, seed), elems_(elems),
      computePerElem_(compute_per_elem)
{
}

void
StreamTriadLike::setup(FunctionalMemory &mem, Rng &rng)
{
    pos_ = 0;
    // Streams read mostly-zero pages; only seed a sparse sample so setup
    // stays fast for multi-hundred-MB arrays.
    for (size_t i = 0; i < elems_; i += 512)
        mem.write(kArrB + i * 8, rng.next() & 0xffff);
}

void
StreamTriadLike::run(Emitter &em, Rng &rng)
{
    (void)rng;
    const Addr body = codeBlock(0);
    for (size_t n = 0; n < 8192 && !em.done(); ++n, ++pos_) {
        size_t i = pos_ % elems_;
        em.setPc(body);
        em.alu(r0, {r0});                       // i++
        uint64_t b = em.load(r1, {r0}, kArrB + i * 8);
        uint64_t c = em.load(r2, {r0}, kArrC + i * 8);
        em.alu(r3, {r1, r2}, OpClass::FpMul);   // b*s
        em.alu(r3, {r3, r2}, OpClass::FpAdd);   // +c
        for (uint32_t k = 0; k < computePerElem_; ++k)
            em.alu(r4, {r3, r1}, OpClass::FpMul); // independent extra work
        em.store({r0, r3}, kArrA + i * 8, b + c);
        em.branch(true, body, {r0});
    }
}

// ---------------------------------------------------------------------
// CyclicScanLike
// ---------------------------------------------------------------------

CyclicScanLike::CyclicScanLike(std::string name, Category cat,
                               uint64_t seed, size_t footprint_bytes)
    : Workload(std::move(name), cat, seed),
      footprintBytes_(footprint_bytes)
{
}

void
CyclicScanLike::setup(FunctionalMemory &mem, Rng &rng)
{
    line_ = 0;
    for (size_t i = 0; i < footprintBytes_; i += 4096)
        mem.write(kArrA + i, rng.next() & 0xffff);
}

void
CyclicScanLike::run(Emitter &em, Rng &rng)
{
    (void)rng;
    const Addr body = codeBlock(0);
    const size_t lines = footprintBytes_ / kLineBytes;
    for (size_t n = 0; n < 16384 && !em.done(); ++n, ++line_) {
        em.setPc(body);
        em.alu(r0, {r0});
        em.load(r1, {r0}, kArrA + (line_ % lines) * kLineBytes);
        em.alu(r2, {r2, r1}, OpClass::FpAdd);
        em.branch(true, body, {r0});
    }
}

// ---------------------------------------------------------------------
// StencilLike
// ---------------------------------------------------------------------

StencilLike::StencilLike(std::string name, Category cat, uint64_t seed,
                         size_t row_elems, size_t rows)
    : Workload(std::move(name), cat, seed), rowElems_(row_elems),
      rows_(rows)
{
}

void
StencilLike::setup(FunctionalMemory &mem, Rng &rng)
{
    row_ = 1;
    for (size_t i = 0; i < rowElems_ * 2; i += 64)
        mem.write(kArrA + i * 8, rng.next() & 0xffff);
}

void
StencilLike::run(Emitter &em, Rng &rng)
{
    (void)rng;
    const Addr body = codeBlock(0);
    const size_t row_bytes = rowElems_ * 8;
    // 5-point stencil: out[r][c] from in[r-1][c], in[r][c-1..c+1],
    // in[r+1][c]. The +/- one-row loads are constant deltas from the
    // centre load: classic TACT-Cross triggers.
    for (size_t n = 0; n < 4096 && !em.done(); ++n) {
        size_t r = row_ % (rows_ - 2) + 1;
        for (size_t c = 1; c + 1 < rowElems_ && !em.done(); ++c) {
            Addr centre = kArrA + r * row_bytes + c * 8;
            em.setPc(body);
            em.alu(r0, {r0});
            uint64_t v0 = em.load(r1, {r0}, centre);
            uint64_t v1 = em.load(r2, {r0}, centre - 8);
            uint64_t v2 = em.load(r3, {r0}, centre + 8);
            uint64_t v3 = em.load(r4, {r0}, centre - row_bytes);
            uint64_t v4 = em.load(r5, {r0}, centre + row_bytes);
            em.alu(r6, {r1, r2}, OpClass::FpAdd);
            em.alu(r6, {r6, r3}, OpClass::FpAdd);
            em.alu(r6, {r6, r4}, OpClass::FpAdd);
            em.alu(r6, {r6, r5}, OpClass::FpAdd);
            em.store({r0, r6}, kArrB + r * row_bytes + c * 8,
                     v0 + v1 + v2 + v3 + v4);
            em.branch(true, body, {r0});
        }
        ++row_;
    }
}

// ---------------------------------------------------------------------
// SparseMatVecLike
// ---------------------------------------------------------------------

SparseMatVecLike::SparseMatVecLike(std::string name, uint64_t seed,
                                   size_t rows, size_t nnz_per_row,
                                   size_t x_elems)
    : Workload(std::move(name), Category::Fspec, seed), rows_(rows),
      nnzPerRow_(nnz_per_row), xElems_(x_elems)
{
}

void
SparseMatVecLike::setup(FunctionalMemory &mem, Rng &rng)
{
    row_ = 0;
    // col_idx[j] in region B holds *scaled byte offsets* into x (region C)
    // so the gather address is x_base + data: feeder scale 1.
    const size_t nnz = rows_ * nnzPerRow_;
    for (size_t j = 0; j < nnz; ++j) {
        mem.write(kArrB + j * 8, rng.below(xElems_) * 8);
        mem.write(kArrD + j * 8, rng.next() & 0xffff); // values
    }
    for (size_t i = 0; i < xElems_; i += 8)
        mem.write(kArrC + i * 8, rng.next() & 0xffff);
}

void
SparseMatVecLike::run(Emitter &em, Rng &rng)
{
    (void)rng;
    const Addr body = codeBlock(0);
    const Addr inner = codeBlock(1);
    for (size_t n = 0; n < 512 && !em.done(); ++n) {
        size_t r = row_ % rows_;
        em.setPc(body);
        em.alu(r0, {r0});
        em.alu(r7, {r7});                 // y accumulator reset
        for (size_t k = 0; k < nnzPerRow_; ++k) {
            size_t j = r * nnzPerRow_ + k;
            em.setPc(inner);
            em.alu(r0, {r0});
            uint64_t off = em.load(r1, {r0}, kArrB + j * 8); // col (trigger)
            uint64_t xv = em.load(r2, {r1}, kArrC + off);    // x[col]
            em.load(r3, {r0}, kArrD + j * 8);                // a[j]
            em.alu(r4, {r2, r3}, OpClass::FpMul);
            em.alu(r7, {r7, r4}, OpClass::FpAdd);            // y += a*x
            em.branch(k + 1 < nnzPerRow_, inner, {r0});
            (void)xv;
        }
        em.setPc(body + 0x200);
        em.store({r0, r7}, kArrA + r * 8, r);
        em.branch(true, body, {r0});
        ++row_;
    }
}

// ---------------------------------------------------------------------
// ReductionChainLike
// ---------------------------------------------------------------------

ReductionChainLike::ReductionChainLike(std::string name, Category cat,
                                       uint64_t seed, size_t stream_elems,
                                       size_t table_bytes)
    : Workload(std::move(name), cat, seed), streamElems_(stream_elems),
      tableBytes_(table_bytes)
{
}

void
ReductionChainLike::setup(FunctionalMemory &mem, Rng &rng)
{
    pos_ = 0;
    // Streamed phase indices select coefficients from an L2-resident
    // table; index data is a scaled byte offset (feeder scale 1).
    for (size_t i = 0; i < streamElems_; ++i)
        mem.write(kArrA + i * 8, rng.below(tableBytes_ / 8) * 8);
    for (size_t i = 0; i < tableBytes_ / 8; ++i)
        mem.write(kArrC + i * 8, rng.next() & 0xffff);
}

void
ReductionChainLike::run(Emitter &em, Rng &rng)
{
    (void)rng;
    const Addr body = codeBlock(0);
    for (size_t n = 0; n < 8192 && !em.done(); ++n, ++pos_) {
        size_t i = pos_ % streamElems_;
        em.setPc(body);
        em.alu(r0, {r0});
        uint64_t off = em.load(r1, {r0}, kArrA + i * 8); // phase (trigger)
        em.load(r2, {r1}, kArrC + off);                  // coeff[phase]
        em.alu(r3, {r3, r2}, OpClass::FpMul);            // serial FP chain
        em.alu(r3, {r3, r1}, OpClass::FpAdd);
        em.branch(true, body, {r0});
    }
}

// ---------------------------------------------------------------------
// GatherLike
// ---------------------------------------------------------------------

GatherLike::GatherLike(std::string name, Category cat, uint64_t seed,
                       size_t num_indices, size_t data_elems)
    : Workload(std::move(name), cat, seed), numIndices_(num_indices),
      dataElems_(data_elems)
{
}

void
GatherLike::setup(FunctionalMemory &mem, Rng &rng)
{
    pos_ = 0;
    for (size_t i = 0; i < numIndices_; ++i)
        mem.write(kArrA + i * 8, rng.below(dataElems_) * 8);
    for (size_t i = 0; i < dataElems_; i += 64)
        mem.write(kArrB + i * 8, rng.next() & 0xffff);
}

void
GatherLike::run(Emitter &em, Rng &rng)
{
    (void)rng;
    const Addr body = codeBlock(0);
    for (size_t n = 0; n < 8192 && !em.done(); ++n, ++pos_) {
        size_t i = pos_ % numIndices_;
        em.setPc(body);
        em.alu(r0, {r0});
        uint64_t off = em.load(r1, {r0}, kArrA + i * 8); // index (trigger)
        uint64_t v = em.load(r2, {r1}, kArrB + off);     // gather
        em.alu(r3, {r3, r2}, OpClass::FpAdd);
        em.store({r0, r2}, kArrC + i * 8, v);
        em.branch(true, body, {r0});
    }
}

} // namespace catchsim
