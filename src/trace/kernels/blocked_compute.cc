/**
 * @file
 * Compute-heavy kernels with cache-resident tiles: BlockedGemmLike,
 * DpTableLike, ManyPcLike, ButterflyLike, Window2dLike.
 */

#include "trace/kernels/kernels.hh"

namespace catchsim
{

namespace
{

constexpr Addr kMatA = 0x10000000;
constexpr Addr kMatB = 0x30000000;
constexpr Addr kMatC = 0x50000000;
constexpr Addr kTables = 0x70000000;

} // namespace

// ---------------------------------------------------------------------
// BlockedGemmLike
// ---------------------------------------------------------------------

BlockedGemmLike::BlockedGemmLike(std::string name, Category cat,
                                 uint64_t seed, size_t block_elems)
    : Workload(std::move(name), cat, seed), blockElems_(block_elems)
{
}

void
BlockedGemmLike::setup(FunctionalMemory &mem, Rng &rng)
{
    iter_ = 0;
    for (size_t i = 0; i < blockElems_ * blockElems_; ++i) {
        mem.write(kMatA + i * 8, rng.next() & 0xff);
        mem.write(kMatB + i * 8, rng.next() & 0xff);
    }
}

void
BlockedGemmLike::run(Emitter &em, Rng &rng)
{
    (void)rng;
    const Addr body = codeBlock(0);
    const size_t nb = blockElems_;
    // One (i,j) dot product per outer chunk; unrolled by 4 with
    // independent partial sums: high ILP, L1-resident tiles.
    size_t i = iter_ % nb;
    size_t j = (iter_ / nb) % nb;
    ++iter_;
    em.setPc(body);
    em.alu(r4, {});
    em.alu(r5, {});
    for (size_t k = 0; k + 4 <= nb && !em.done(); k += 4) {
        em.setPc(body + 0x40);
        em.alu(r0, {r0});
        em.load(r1, {r0}, kMatA + (i * nb + k) * 8);
        em.load(r2, {r0}, kMatB + (k * nb + j) * 8);
        em.alu(r4, {r4, r1, r2}, OpClass::FpMul);
        em.load(r1, {r0}, kMatA + (i * nb + k + 1) * 8);
        em.load(r2, {r0}, kMatB + ((k + 1) * nb + j) * 8);
        em.alu(r5, {r5, r1, r2}, OpClass::FpMul);
        em.load(r1, {r0}, kMatA + (i * nb + k + 2) * 8);
        em.load(r2, {r0}, kMatB + ((k + 2) * nb + j) * 8);
        em.alu(r6, {r6, r1, r2}, OpClass::FpMul);
        em.load(r1, {r0}, kMatA + (i * nb + k + 3) * 8);
        em.load(r2, {r0}, kMatB + ((k + 3) * nb + j) * 8);
        em.alu(r7, {r7, r1, r2}, OpClass::FpMul);
        em.branch(k + 8 <= nb, body + 0x40, {r0});
    }
    em.setPc(body + 0x200);
    em.alu(r4, {r4, r5}, OpClass::FpAdd);
    em.alu(r4, {r4, r6}, OpClass::FpAdd);
    em.alu(r4, {r4, r7}, OpClass::FpAdd);
    em.store({r4}, kMatC + (i * nb + j) * 8, i + j);
}

// ---------------------------------------------------------------------
// DpTableLike
// ---------------------------------------------------------------------

DpTableLike::DpTableLike(std::string name, uint64_t seed, size_t row_elems,
                         size_t table_bytes, size_t seq_len)
    : Workload(std::move(name), Category::Ispec, seed),
      rowElems_(row_elems), tableBytes_(table_bytes), seqLen_(seq_len)
{
}

void
DpTableLike::setup(FunctionalMemory &mem, Rng &rng)
{
    seqPos_ = 0;
    // Sequence symbols are pre-scaled byte offsets into the score tables
    // (feeder scale 1). Three score tables (match/insert/delete) split
    // the table footprint; they are L2-resident in the baseline.
    const size_t table_words = tableBytes_ / (3 * 8);
    for (size_t i = 0; i < seqLen_; ++i)
        mem.write(kMatB + i * 8, rng.below(table_words) * 8);
    for (size_t t = 0; t < 3; ++t)
        for (size_t i = 0; i < table_words; ++i)
            mem.write(kTables + t * table_words * 8 + i * 8,
                      rng.next() & 0xfff);
}

void
DpTableLike::run(Emitter &em, Rng &rng)
{
    (void)rng;
    const Addr body = codeBlock(0);
    const size_t table_words = tableBytes_ / (3 * 8);
    const Addr match = kTables;
    const Addr insert = kTables + table_words * 8;
    const Addr del = kTables + 2 * table_words * 8;
    // One DP anti-diagonal sweep per chunk; prev/cur rows are small and
    // strided (L1/deep-self), score lookups are data-indexed (feeder).
    for (size_t c = 0; c < rowElems_ && !em.done(); ++c, ++seqPos_) {
        size_t i = seqPos_ % seqLen_;
        em.setPc(body);
        em.alu(r0, {r0});
        uint64_t sym = em.load(r1, {r0}, kMatB + i * 8);   // seq (trigger)
        em.load(r2, {r1}, match + sym);                    // match score
        em.load(r3, {r1}, insert + sym);                   // insert score
        em.load(r4, {r1}, del + sym);                      // delete score
        em.load(r5, {r0}, kMatA + (c % rowElems_) * 8);    // prev row
        em.load(r6, {r0}, kMatA + ((c + 1) % rowElems_) * 8);
        // Loop-carried Viterbi max chain: each cell depends on the
        // previous cell's best score, so the score-table loads sit on
        // the critical path (hmmer's signature behaviour in the paper).
        em.alu(r7, {r7, r2});                              // best+match
        em.alu(r8, {r7, r3});                              // +insert
        em.alu(r7, {r8, r5});                              // max(prev row)
        em.alu(r7, {r7, r4});                              // +delete
        em.alu(r7, {r7, r6});
        // The best-path update branches on the loaded scores; it is
        // data-dependent and poorly predictable, exposing the score
        // lookups' latency (this is what makes hmmer lose heavily
        // without an L2 in the paper).
        em.branch(((sym >> 3) & 3) == 0, body + 0x100, {r2, r7});
        em.store({r0, r7}, kMatC + (c % rowElems_) * 8, sym);
        em.branch(true, body, {r0});
    }
}

// ---------------------------------------------------------------------
// ManyPcLike
// ---------------------------------------------------------------------

ManyPcLike::ManyPcLike(std::string name, Category cat, uint64_t seed,
                       uint32_t num_pcs, size_t table_bytes)
    : Workload(std::move(name), cat, seed), numPcs_(num_pcs),
      tableBytes_(table_bytes)
{
}

void
ManyPcLike::setup(FunctionalMemory &mem, Rng &rng)
{
    iter_ = 0;
    for (size_t i = 0; i < tableBytes_ / 8; ++i)
        mem.write(kTables + i * 8, rng.next() & 0xffff);
}

void
ManyPcLike::run(Emitter &em, Rng &rng)
{
    const Addr body = codeBlock(0);
    // Each iteration shades one ray against an object record: a header
    // load (the cross TRIGGER) followed by numPcs_ distinct static field
    // loads at stable sub-page offsets from the record base, spread
    // through a long compute body. Shade-test branches expose the field
    // loads' latency; TACT-Cross can cover them - but with numPcs_
    // beyond the 32-entry critical table, only a fraction win slots
    // (the paper's povray limit).
    const size_t records = tableBytes_ / kPageBytes;
    Addr rec = kTables + rng.below(records) * kPageBytes;
    em.setPc(body);
    em.alu(r0, {r0});
    uint64_t hdr = em.load(r1, {r0}, rec); // record header (trigger)
    em.alu(r2, {r2, r1});
    for (uint32_t p = 0; p < numPcs_ && !em.done(); ++p) {
        uint64_t v = em.load(r4, {r0}, rec + 8 + p * 40); // object field
        em.alu(r2, {r2, r4});
        em.alu(r3, {r2}, OpClass::FpMul);
        em.alu(r5, {r3, r4}, OpClass::FpAdd);
        if (p % 8 == 7)
            em.branch((v ^ hdr) % 8 == 0, em.pc() + 0x40,
                      {r4, r2}); // shade test
    }
    ++iter_;
    em.branch(true, body, {r2});
}

// ---------------------------------------------------------------------
// ButterflyLike
// ---------------------------------------------------------------------

ButterflyLike::ButterflyLike(std::string name, Category cat, uint64_t seed,
                             size_t elems)
    : Workload(std::move(name), cat, seed), elems_(elems)
{
}

void
ButterflyLike::setup(FunctionalMemory &mem, Rng &rng)
{
    stage_ = 0;
    for (size_t i = 0; i < elems_; ++i)
        mem.write(kMatA + i * 8, rng.next() & 0xffff);
}

void
ButterflyLike::run(Emitter &em, Rng &rng)
{
    (void)rng;
    const Addr body = codeBlock(0);
    // One butterfly stage per chunk: pairs (i, i+span) with power-of-two
    // span; strided with two streams per stage.
    size_t num_stages = 1;
    while ((elems_ >> num_stages) > 1)
        ++num_stages;
    size_t span = 1ULL << (stage_ % num_stages);
    ++stage_;
    for (size_t i = 0; i + span < elems_ && !em.done(); i += 2 * span) {
        em.setPc(body);
        em.alu(r0, {r0});
        em.load(r1, {r0}, kMatA + i * 8);
        em.load(r2, {r0}, kMatA + (i + span) * 8);
        em.alu(r3, {r1, r2}, OpClass::FpAdd);
        em.alu(r4, {r1, r2}, OpClass::FpMul);
        em.store({r0, r3}, kMatA + i * 8, i);
        em.store({r0, r4}, kMatA + (i + span) * 8, i + span);
        em.branch(true, body, {r0});
    }
}

// ---------------------------------------------------------------------
// Window2dLike
// ---------------------------------------------------------------------

Window2dLike::Window2dLike(std::string name, Category cat, uint64_t seed,
                           size_t width, size_t height, uint32_t window)
    : Workload(std::move(name), cat, seed), width_(width), height_(height),
      window_(window)
{
}

void
Window2dLike::setup(FunctionalMemory &mem, Rng &rng)
{
    row_ = 0;
    col_ = 0;
    for (size_t i = 0; i < width_ * height_; i += 16)
        mem.write(kMatA + i * 8, rng.next() & 0xff);
}

void
Window2dLike::run(Emitter &em, Rng &rng)
{
    (void)rng;
    const Addr body = codeBlock(0);
    // SAD over a window_ x window_ patch at a sliding anchor; the window
    // loads are fixed deltas from the anchor (cross associations) and the
    // patch has dense reuse.
    for (size_t n = 0; n < 256 && !em.done(); ++n) {
        Addr anchor = kMatA + (row_ * width_ + col_) * 8;
        em.setPc(body);
        em.alu(r0, {r0});
        em.load(r1, {r0}, anchor);
        uint64_t sad = 0;
        for (uint32_t dy = 0; dy < window_; ++dy) {
            for (uint32_t dx = 0; dx < window_; ++dx) {
                sad += em.load(r2, {r0}, anchor + (dy * width_ + dx) * 8);
                em.load(r3, {r0}, kMatB + (dy * window_ + dx) * 8);
                em.alu(r4, {r2, r3});
                em.alu(r5, {r5, r4});
            }
        }
        // Early-exit threshold test on the accumulated SAD: data
        // dependent, taken for a minority of candidate positions.
        em.branch((sad & 15) == 0, body + 0x200, {r5});
        em.branch(true, body, {r0});
        col_ += 2;
        if (col_ + window_ >= width_) {
            col_ = 0;
            row_ = (row_ + 1) % (height_ - window_ - 1);
        }
    }
}

} // namespace catchsim
