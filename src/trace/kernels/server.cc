/**
 * @file
 * Transaction-style, large-code kernels: OltpLike, JavaServerLike,
 * MapReduceLike.
 */

#include "trace/kernels/kernels.hh"

#include "common/bitutil.hh"

namespace catchsim
{

namespace
{

constexpr Addr kPool = 0x100000000; // buffer pool / heap
constexpr Addr kMeta = 0x10000000;  // index roots, dispatch tables
constexpr Addr kLog = 0x50000000;   // append-only log / output

} // namespace

// ---------------------------------------------------------------------
// OltpLike
// ---------------------------------------------------------------------

OltpLike::OltpLike(std::string name, uint64_t seed, uint32_t code_blocks,
                   uint32_t blocks_per_txn, size_t pool_bytes,
                   uint32_t btree_levels)
    : Workload(std::move(name), Category::Server, seed),
      codeBlocks_(code_blocks), blocksPerTxn_(blocks_per_txn),
      poolBytes_(pool_bytes), btreeLevels_(btree_levels)
{
}

void
OltpLike::setup(FunctionalMemory &mem, Rng &rng)
{
    // B-tree: each level is a region of 512 B "pages"; a node stores a
    // child pointer per 64 B slot. Leaves point into the buffer pool.
    const size_t pool_lines = poolBytes_ / kLineBytes;
    size_t level_nodes = 1;
    Addr level_base = kMeta;
    for (uint32_t l = 0; l < btreeLevels_; ++l) {
        size_t next_nodes = level_nodes * 8;
        Addr next_base = level_base + level_nodes * 512;
        for (size_t n = 0; n < level_nodes * 8; ++n) {
            Addr slot = level_base + n * 64;
            if (l + 1 == btreeLevels_)
                mem.write(slot, kPool + rng.below(pool_lines) * kLineBytes);
            else
                mem.write(slot, next_base + (n % next_nodes) * 512);
        }
        level_base = next_base;
        level_nodes = next_nodes;
    }
    for (size_t i = 0; i < pool_lines; i += 8)
        mem.write(kPool + i * kLineBytes, rng.next());
}

void
OltpLike::run(Emitter &em, Rng &rng)
{
    // One transaction: a walk through code blocks. Most calls land in
    // the transaction type's hot block set (L1I-resident); a steady
    // minority land in a 4x larger cold region - the flat instruction
    // miss tail that the L2 absorbs in the baseline and that TACT-Code
    // runahead covers without it.
    uint32_t txn_type = rng.below(4);
    uint32_t start = txn_type * (codeBlocks_ / 4);
    for (uint32_t b = 0; b < blocksPerTxn_ && !em.done(); ++b) {
        uint32_t blk = rng.percent(91)
                           ? start + (b % (codeBlocks_ / 4))
                           : codeBlocks_ + 8 + rng.below(codeBlocks_ * 4);
        em.setPc(codeBlock(blk));
        // ~24 instructions of "business logic" per block: three lines of
        // sequential code, so TACT-Code runahead can cover the misses.
        em.alu(r2, {r2, r1});
        em.nops(5);
        em.alu(r3, {r3, r2});
        em.nops(6);
        em.alu(r4, {r4, r3});
        em.nops(5);
        em.branch(rng.percent(90), codeBlock(blk) + 0x80, {r2});
        em.nops(4);
        em.alu(r5, {r5, r4});
    }
    if (em.done())
        return;
    // Index probe: pointer chase down the tree (critical, hard for TACT).
    const Addr probe = codeBlock(codeBlocks_ + 1);
    em.setPc(probe);
    em.alu(r0, {r0, r5});
    em.alu(r0, {r0}, OpClass::Mul);
    Addr slot = kMeta + rng.below(8) * 64;
    uint64_t node = em.load(r1, {r0}, slot);
    for (uint32_t l = 1; l < btreeLevels_; ++l) {
        em.alu(r2, {r1, r0});
        node = em.load(r1, {r1}, node + rng.below(8) * 64);
    }
    // Row access: read four sequential lines of the row (streamable).
    const Addr rowc = codeBlock(codeBlocks_ + 2);
    em.setPc(rowc);
    for (uint32_t i = 0; i < 4; ++i) {
        em.load(r3, {r1}, node + i * kLineBytes);
        em.alu(r4, {r4, r3});
        em.store({r1, r3}, kLog + (i % 64) * kLineBytes, node);
    }
    em.branch(true, codeBlock(0), {r4});
}

// ---------------------------------------------------------------------
// JavaServerLike
// ---------------------------------------------------------------------

JavaServerLike::JavaServerLike(std::string name, uint64_t seed,
                               size_t heap_bytes, uint32_t code_blocks)
    : Workload(std::move(name), Category::Server, seed),
      heapBytes_(heap_bytes), codeBlocks_(code_blocks)
{
}

void
JavaServerLike::setup(FunctionalMemory &mem, Rng &rng)
{
    // Object graph: 64 B objects; each holds two references.
    const size_t objs = heapBytes_ / 64;
    for (size_t i = 0; i < objs; ++i) {
        mem.write(kPool + i * 64, kPool + rng.below(objs) * 64);
        mem.write(kPool + i * 64 + 8, kPool + rng.below(objs) * 64);
        mem.write(kPool + i * 64 + 16, rng.below(1 << 16));
    }
    allocPtr_ = kLog;
}

void
JavaServerLike::run(Emitter &em, Rng &rng)
{
    const size_t objs = heapBytes_ / 64;
    for (size_t n = 0; n < 256 && !em.done(); ++n) {
        // Method-call chain: calls are correlated (a request handler
        // walks a contiguous run of methods), so the footprint cycles
        // rather than being touched at random.
        uint32_t base = rng.below(codeBlocks_);
        if (rng.percent(15))
            base = codeBlocks_ + 8 + rng.below(codeBlocks_ * 4);
        for (uint32_t c = 0; c < 6 && !em.done(); ++c) {
            em.setPc(codeBlock(base + c));
            em.nops(6);
            em.alu(r2, {r2, r1});
            em.nops(5);
            em.branch(rng.percent(88), em.pc() + 0x40, {r2});
            em.nops(4);
        }
        // Object-graph update: two reference hops and a field write.
        const Addr touch = codeBlock(codeBlocks_ + 1);
        em.setPc(touch);
        Addr obj = kPool + rng.below(objs) * 64;
        em.alu(r0, {r0});
        uint64_t ref = em.load(r1, {r0}, obj);
        uint64_t ref2 = em.load(r2, {r1}, ref + 8);
        em.load(r3, {r2}, ref2 + 16);
        em.alu(r4, {r4, r3});
        em.store({r2, r4}, ref2 + 24, n);
        // Allocation: bump-pointer streaming writes (young gen).
        const Addr alloc = codeBlock(codeBlocks_ + 2);
        em.setPc(alloc);
        for (uint32_t w = 0; w < 4; ++w)
            em.store({r0}, allocPtr_ + w * 8, n);
        allocPtr_ += 64;
        if (allocPtr_ >= kLog + 8 * 1024 * 1024)
            allocPtr_ = kLog;
        em.branch(true, alloc, {r0});
    }
}

// ---------------------------------------------------------------------
// MapReduceLike
// ---------------------------------------------------------------------

MapReduceLike::MapReduceLike(std::string name, uint64_t seed,
                             size_t records, size_t groups)
    : Workload(std::move(name), Category::Server, seed), records_(records),
      groups_(groups)
{
}

void
MapReduceLike::setup(FunctionalMemory &mem, Rng &rng)
{
    pos_ = 0;
    // Records carry a pre-scaled group offset (feeder scale 1).
    for (size_t i = 0; i < records_; ++i)
        mem.write(kMeta + i * 16, rng.below(groups_) * 8);
}

void
MapReduceLike::run(Emitter &em, Rng &rng)
{
    (void)rng;
    const Addr body = codeBlock(0);
    for (size_t n = 0; n < 4096 && !em.done(); ++n, ++pos_) {
        size_t i = pos_ % records_;
        em.setPc(body);
        em.alu(r0, {r0});
        uint64_t g = em.load(r1, {r0}, kMeta + i * 16);     // record key
        em.load(r2, {r0}, kMeta + i * 16 + 8);              // record value
        uint64_t agg = em.load(r3, {r1}, kLog + g);         // group slot
        em.alu(r4, {r3, r2});
        em.store({r1, r4}, kLog + g, agg + 1);              // aggregate
        em.branch(true, body, {r0});
    }
}

} // namespace catchsim
