/**
 * @file
 * Control-flow-dominated kernels: BranchyLike, InterpreterLike,
 * CompressLike, MixedIntLike, GridNeighborLike.
 */

#include "trace/kernels/kernels.hh"

#include "common/bitutil.hh"

namespace catchsim
{

namespace
{

constexpr Addr kData = 0x10000000;
constexpr Addr kSide = 0x30000000;


} // namespace

// ---------------------------------------------------------------------
// BranchyLike
// ---------------------------------------------------------------------

BranchyLike::BranchyLike(std::string name, uint64_t seed,
                         size_t board_bytes, uint32_t mispredict_percent)
    : Workload(std::move(name), Category::Ispec, seed),
      boardBytes_(board_bytes), mispredictPercent_(mispredict_percent)
{
}

void
BranchyLike::setup(FunctionalMemory &mem, Rng &rng)
{
    for (size_t i = 0; i < boardBytes_ / 8; ++i)
        mem.write(kData + i * 8, rng.next() & 0xff);
}

void
BranchyLike::run(Emitter &em, Rng &rng)
{
    const Addr body = codeBlock(0);
    const size_t words = boardBytes_ / 8;
    for (size_t n = 0; n < 2048 && !em.done(); ++n) {
        // Evaluate a line of the board: the origin load plus three
        // neighbours in the same cache line (board rows are contiguous).
        Addr cell = kData + rng.below(words / 8) * 64;
        em.setPc(body);
        em.alu(r0, {r0, r6});
        em.alu(r0, {r0}, OpClass::Mul);      // position hash
        em.load(r1, {r0}, cell);             // origin (cross trigger)
        em.load(r4, {r0}, cell + 8);         // neighbours: address comes
        em.load(r5, {r0}, cell + 16);        // from the position, not the
        em.load(r6, {r0}, cell + 24);        // loaded value

        em.alu(r7, {r4, r5});
        em.alu(r7, {r7, r6});
        // A data-dependent branch with tunable predictability; the board
        // loads feed it, so they sit on the mispredict critical path.
        bool t = rng.percent(50);
        bool hard = rng.percent(mispredictPercent_ * 2);
        if (!hard)
            t = true; // easy branches are strongly biased
        em.branch(t, body + 0x80, {r1, r7});
        em.alu(r2, {r2, r1});
        em.alu(r3, {r3, r7});
        em.store({r0, r3}, cell, n);
        em.branch(true, body, {r0});
    }
}

// ---------------------------------------------------------------------
// InterpreterLike
// ---------------------------------------------------------------------

InterpreterLike::InterpreterLike(std::string name, uint64_t seed,
                                 uint32_t num_handlers, size_t bytecode_len,
                                 size_t hash_bytes)
    : Workload(std::move(name), Category::Ispec, seed),
      numHandlers_(num_handlers), bytecodeLen_(bytecode_len),
      hashBytes_(hash_bytes)
{
}

void
InterpreterLike::setup(FunctionalMemory &mem, Rng &rng)
{
    pos_ = 0;
    for (size_t i = 0; i < bytecodeLen_; ++i)
        mem.write(kData + i * 8, rng.below(numHandlers_));
    for (size_t i = 0; i < hashBytes_ / 8; ++i)
        mem.write(kSide + i * 8, rng.next() & 0xffff);
}

void
InterpreterLike::run(Emitter &em, Rng &rng)
{
    const Addr dispatch = codeBlock(0);
    const size_t hash_words = hashBytes_ / 8;
    for (size_t n = 0; n < 1024 && !em.done(); ++n, ++pos_) {
        size_t i = pos_ % bytecodeLen_;
        em.setPc(dispatch);
        em.alu(r0, {r0});
        uint64_t opcode = em.load(r1, {r0}, kData + i * 8); // fetch opcode
        // Indirect dispatch: jump to the handler block. Each handler is
        // its own code region, so a large interpreter thrashes the L1I.
        em.branch(true, codeBlock(1 + opcode), {r1});
        // Handler body: a dozen ops plus an occasional hash lookup.
        em.alu(r2, {r2, r1});
        em.alu(r3, {r3, r2});
        em.alu(r4, {r3}, OpClass::Mul);
        em.nops(4);
        if (opcode % 4 == 0) {
            Addr h = kSide + rng.below(hash_words) * 8;
            em.load(r5, {r4}, h);
            em.alu(r6, {r6, r5});
        }
        em.nops(4);
        em.branch(true, dispatch, {r2}); // back to dispatch
    }
}

// ---------------------------------------------------------------------
// CompressLike
// ---------------------------------------------------------------------

CompressLike::CompressLike(std::string name, uint64_t seed,
                           size_t input_bytes)
    : Workload(std::move(name), Category::Ispec, seed),
      inputBytes_(input_bytes)
{
}

void
CompressLike::setup(FunctionalMemory &mem, Rng &rng)
{
    pos_ = 0;
    // Skewed symbol distribution so run-detection branches are mostly
    // predictable, with occasional surprises.
    for (size_t i = 0; i < inputBytes_ / 8; ++i)
        mem.write(kData + i * 8, rng.percent(70) ? 7 : rng.below(256));
}

void
CompressLike::run(Emitter &em, Rng &rng)
{
    (void)rng;
    const Addr body = codeBlock(0);
    for (size_t n = 0; n < 4096 && !em.done(); ++n, ++pos_) {
        size_t i = pos_ % (inputBytes_ / 8);
        em.setPc(body);
        em.alu(r0, {r0});
        uint64_t sym = em.load(r1, {r0}, kData + i * 8);  // input stream
        em.load(r2, {r1}, kSide + (sym & 0xff) * 8);      // freq[sym]
        em.alu(r3, {r3, r2});                             // dependent state
        em.alu(r3, {r3, r1});
        em.store({r1, r3}, kSide + (sym & 0xff) * 8, sym);
        em.branch(sym == 7, body + 0x60, {r1});           // run detection
        em.alu(r4, {r4, r3});
        em.branch(true, body, {r0});
    }
}

// ---------------------------------------------------------------------
// MixedIntLike
// ---------------------------------------------------------------------

MixedIntLike::MixedIntLike(std::string name, uint64_t seed,
                           size_t sym_bytes, uint32_t code_blocks)
    : Workload(std::move(name), Category::Ispec, seed),
      symBytes_(sym_bytes), codeBlocks_(code_blocks)
{
}

void
MixedIntLike::setup(FunctionalMemory &mem, Rng &rng)
{
    const size_t words = symBytes_ / 8;
    for (size_t i = 0; i < words; ++i)
        mem.write(kSide + i * 8, kSide + rng.below(words) * 8);
}

void
MixedIntLike::run(Emitter &em, Rng &rng)
{
    const size_t words = symBytes_ / 8;
    for (size_t n = 0; n < 512 && !em.done(); ++n) {
        // Phase 1: visit a few code blocks (moderate code footprint).
        uint32_t blk = rng.below(codeBlocks_);
        em.setPc(codeBlock(blk));
        em.nops(6);
        em.alu(r2, {r2, r1});
        // Phase 2: short pointer hop in the symbol table.
        Addr sym = kSide + rng.below(words) * 8;
        uint64_t p = em.load(r1, {r1}, sym);
        em.load(r3, {r1}, p);
        em.alu(r4, {r4, r3});
        // Phase 3: a couple of semi-predictable branches.
        em.branch(rng.percent(85), codeBlock(blk) + 0x80, {r3});
        em.alu(r5, {r5, r4});
        em.branch(rng.percent(15), codeBlock(blk) + 0x100, {r4});
        em.nops(3);
    }
}

// ---------------------------------------------------------------------
// GridNeighborLike
// ---------------------------------------------------------------------

GridNeighborLike::GridNeighborLike(std::string name, uint64_t seed,
                                   size_t grid_elems, size_t grid_width)
    : Workload(std::move(name), Category::Ispec, seed),
      gridElems_(grid_elems), gridWidth_(grid_width)
{
}

void
GridNeighborLike::setup(FunctionalMemory &mem, Rng &rng)
{
    for (size_t i = 0; i < gridElems_; i += 4)
        mem.write(kData + i * 8, rng.next() & 0xff);
    cur_ = gridWidth_ + 1;
}

void
GridNeighborLike::run(Emitter &em, Rng &rng)
{
    const Addr body = codeBlock(0);
    const size_t interior = gridElems_ - 2 * gridWidth_ - 2;
    for (size_t n = 0; n < 2048 && !em.done(); ++n) {
        Addr centre = kData + cur_ * 8;
        em.setPc(body);
        em.alu(r0, {r0});
        // Centre plus 4-neighbourhood: fixed deltas (cross-learnable).
        uint64_t c = em.load(r1, {r0}, centre);
        em.load(r2, {r0}, centre - 8);
        em.load(r3, {r0}, centre + 8);
        em.load(r4, {r0}, centre - gridWidth_ * 8);
        em.load(r5, {r0}, centre + gridWidth_ * 8);
        em.alu(r6, {r2, r3});
        em.alu(r6, {r6, r4});
        em.alu(r6, {r6, r5});
        // Direction choice depends on loaded cost: mispredicting branch.
        em.branch((c ^ n) & 1, body + 0x100, {r1, r6});
        em.alu(r7, {r7, r6});
        em.branch(true, body, {r0});
        // Mostly local movement with occasional long jumps.
        if (rng.percent(90))
            cur_ += (rng.percent(50) ? 1 : gridWidth_);
        else
            cur_ = gridWidth_ + 1 + rng.below(interior);
        if (cur_ + gridWidth_ + 1 >= gridElems_)
            cur_ = gridWidth_ + 1;
    }
}

} // namespace catchsim
