/**
 * @file
 * Synthetic workload kernels.
 *
 * Each kernel stands in for a class of applications from the paper's
 * 70-workload study list (SPEC CPU 2006 INT/FP, HPC, server, client) and
 * is engineered to reproduce that class's published interaction with the
 * cache hierarchy: where its working set lives, whether its critical loads
 * are strided / cross-correlated / pointer-chased / unprefetchable, its
 * branch behaviour, and its code footprint. See DESIGN.md section 2.
 *
 * Naming convention: FooLike means "behaves like the paper's foo", not
 * "is foo".
 */

#ifndef CATCHSIM_TRACE_KERNELS_KERNELS_HH_
#define CATCHSIM_TRACE_KERNELS_KERNELS_HH_

#include "trace/workload.hh"

namespace catchsim
{

// ---------------------------------------------------------------------
// pointer_chase.cc - irregular, dependent-load kernels
// ---------------------------------------------------------------------

/**
 * mcf-like: streams an arc array (strided trigger loads), dereferences a
 * per-arc node pointer (feeder target) and takes a second chase hop to
 * the node's head node. An unpredictable negative-reduced-cost branch
 * exposes the node loads. TACT-Feeder runs ahead on the arc stream and
 * chases the first hop; the depth-2 head hop has no strided feeder and
 * stays uncovered.
 */
class McfLike : public Workload
{
  public:
    McfLike(std::string name, uint64_t seed, size_t num_arcs,
            size_t num_nodes);

  protected:
    void setup(FunctionalMemory &mem, Rng &rng) override;
    void run(Emitter &em, Rng &rng) override;

  private:
    size_t numArcs_;
    size_t numNodes_;
    size_t pos_ = 0;
};

/**
 * omnetpp-like event queue: advances sequentially through the calendar
 * buckets (time order) and walks each bucket's short intrusive list with
 * a data-dependent hop count. The node arena is L2/LLC-resident; the
 * list walk is a chase the prefetchers cannot cover.
 */
class EventQueueLike : public Workload
{
  public:
    EventQueueLike(std::string name, uint64_t seed, size_t num_buckets,
                   size_t nodes_per_bucket);

  protected:
    void setup(FunctionalMemory &mem, Rng &rng) override;
    void run(Emitter &em, Rng &rng) override;

  private:
    size_t numBuckets_;
    size_t nodesPerBucket_;
    size_t pos_ = 0;
};

/**
 * xalancbmk/astar-like tree search: random descents through a binary tree
 * with data-dependent direction branches. Criticality comes from the
 * child-pointer chase; mispredicts come from the comparisons.
 */
class TreeWalkLike : public Workload
{
  public:
    TreeWalkLike(std::string name, Category cat, uint64_t seed,
                 size_t num_nodes, uint32_t compute_per_level);

  protected:
    void setup(FunctionalMemory &mem, Rng &rng) override;
    void run(Emitter &em, Rng &rng) override;

  private:
    size_t numNodes_;
    uint32_t computePerLevel_;
    uint32_t depth_ = 0;
};

/**
 * Hash-join-like probe: streams a key array (trigger), hashes, loads the
 * bucket head (indexed) and dereferences the entry (feeder chase).
 */
class HashProbeLike : public Workload
{
  public:
    HashProbeLike(std::string name, Category cat, uint64_t seed,
                  size_t num_keys, size_t num_buckets);

  protected:
    void setup(FunctionalMemory &mem, Rng &rng) override;
    void run(Emitter &em, Rng &rng) override;

  private:
    size_t numKeys_;
    size_t numBuckets_;
    size_t pos_ = 0;
};

/**
 * namd/gromacs-like: a hot L1-resident pointer ring (the neighbour lists)
 * with a periodic far-field lookup whose slot is a mixed hash of the
 * current neighbour - serial, L2-resident, and with no address or data
 * association TACT can exploit, so (as in the paper) CATCH cannot
 * recover the no-L2 loss here.
 */
class ChaseLocalLike : public Workload
{
  public:
    ChaseLocalLike(std::string name, Category cat, uint64_t seed,
                   size_t footprint_bytes, uint32_t compute_per_hop);

  protected:
    void setup(FunctionalMemory &mem, Rng &rng) override;
    void run(Emitter &em, Rng &rng) override;

  private:
    size_t footprintBytes_;
    uint32_t computePerHop_;
    Addr cur_ = 0;
    Addr curFar_ = 0;
};

// ---------------------------------------------------------------------
// streaming.cc - regular, bandwidth-style kernels
// ---------------------------------------------------------------------

/**
 * lbm/libquantum-like stream triad over arrays far larger than the LLC.
 * Independent iterations: plenty of MLP, little criticality, stream
 * prefetcher territory.
 */
class StreamTriadLike : public Workload
{
  public:
    StreamTriadLike(std::string name, Category cat, uint64_t seed,
                    size_t elems, uint32_t compute_per_elem);

  protected:
    void setup(FunctionalMemory &mem, Rng &rng) override;
    void run(Emitter &em, Rng &rng) override;

  private:
    size_t elems_;
    uint32_t computePerElem_;
    size_t pos_ = 0;
};

/**
 * libquantum-like cyclic scan: sparse sequential sweeps (one load per
 * cache line) over an array, repeated end-to-end. The classic LRU
 * capacity cliff: an LLC smaller than the array misses every line of
 * every pass, a larger one hits every line after the first pass - this
 * is the workload class that separates the 6.5 MB and 9.5 MB no-L2
 * configurations.
 */
class CyclicScanLike : public Workload
{
  public:
    CyclicScanLike(std::string name, Category cat, uint64_t seed,
                   size_t footprint_bytes);

  protected:
    void setup(FunctionalMemory &mem, Rng &rng) override;
    void run(Emitter &em, Rng &rng) override;

  private:
    size_t footprintBytes_;
    size_t line_ = 0;
};

/**
 * leslie3d/zeusmp-like 5-point stencil over a plane sized for L2
 * residency of the neighbouring rows. Strided critical loads that
 * TACT-Deep-Self can cover.
 */
class StencilLike : public Workload
{
  public:
    StencilLike(std::string name, Category cat, uint64_t seed,
                size_t row_elems, size_t rows);

  protected:
    void setup(FunctionalMemory &mem, Rng &rng) override;
    void run(Emitter &em, Rng &rng) override;

  private:
    size_t rowElems_;
    size_t rows_;
    size_t row_ = 1;
};

/**
 * soplex-like CSR sparse matrix-vector product: strided row pointers,
 * streamed column indices/values, and a gather into the x vector whose
 * address is the column index load's data (feeder).
 */
class SparseMatVecLike : public Workload
{
  public:
    SparseMatVecLike(std::string name, uint64_t seed, size_t rows,
                     size_t nnz_per_row, size_t x_elems);

  protected:
    void setup(FunctionalMemory &mem, Rng &rng) override;
    void run(Emitter &em, Rng &rng) override;

  private:
    size_t rows_;
    size_t nnzPerRow_;
    size_t xElems_;
    size_t row_ = 0;
};

/**
 * milc-like: dependent FP accumulation over streamed data plus lookups
 * into an L2-resident coefficient table; the serial FP chain makes the
 * table lookups critical.
 */
class ReductionChainLike : public Workload
{
  public:
    ReductionChainLike(std::string name, Category cat, uint64_t seed,
                       size_t stream_elems, size_t table_bytes);

  protected:
    void setup(FunctionalMemory &mem, Rng &rng) override;
    void run(Emitter &em, Rng &rng) override;

  private:
    size_t streamElems_;
    size_t tableBytes_;
    size_t pos_ = 0;
};

/**
 * GemsFDTD-like gather: a streamed index array drives loads from a data
 * array larger than the LLC (index data -> gather address: feeder).
 */
class GatherLike : public Workload
{
  public:
    GatherLike(std::string name, Category cat, uint64_t seed,
               size_t num_indices, size_t data_elems);

  protected:
    void setup(FunctionalMemory &mem, Rng &rng) override;
    void run(Emitter &em, Rng &rng) override;

  private:
    size_t numIndices_;
    size_t dataElems_;
    size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// blocked_compute.cc - compute-heavy kernels with cache-resident tiles
// ---------------------------------------------------------------------

/**
 * hplinpack-like blocked matrix multiply: L1-resident tiles, FMA chains,
 * high IPC, very low sensitivity to the outer hierarchy.
 */
class BlockedGemmLike : public Workload
{
  public:
    BlockedGemmLike(std::string name, Category cat, uint64_t seed,
                    size_t block_elems);

  protected:
    void setup(FunctionalMemory &mem, Rng &rng) override;
    void run(Emitter &em, Rng &rng) override;

  private:
    size_t blockElems_;
    size_t iter_ = 0;
};

/**
 * hmmer-like dynamic-programming inner loop: strided DP rows (L1) plus
 * score-table lookups indexed by streamed sequence bytes. The score
 * tables are L2-resident, so this kernel is the paper's poster child for
 * losing big without an L2 - and for recovery via TACT (feeder covers the
 * table lookups, deep-self the rows).
 */
class DpTableLike : public Workload
{
  public:
    DpTableLike(std::string name, uint64_t seed, size_t row_elems,
                size_t table_bytes, size_t seq_len);

  protected:
    void setup(FunctionalMemory &mem, Rng &rng) override;
    void run(Emitter &em, Rng &rng) override;

  private:
    size_t rowElems_;
    size_t tableBytes_;
    size_t seqLen_;
    size_t seqPos_ = 0;
};

/**
 * povray-like ray shading: a record-header load (cross trigger) followed
 * by many distinct static field loads at stable sub-page offsets, spread
 * through a long compute body with shade-test branches. With more target
 * PCs than the 32-entry critical table holds, coverage is partial -
 * the paper's critical-table-thrashing limit case. With few PCs and an
 * L1-resident table it doubles as the compute-bound blackscholes.
 */
class ManyPcLike : public Workload
{
  public:
    ManyPcLike(std::string name, Category cat, uint64_t seed,
               uint32_t num_pcs, size_t table_bytes);

  protected:
    void setup(FunctionalMemory &mem, Rng &rng) override;
    void run(Emitter &em, Rng &rng) override;

  private:
    uint32_t numPcs_;
    size_t tableBytes_;
    uint64_t iter_ = 0;
};

/**
 * calculix/fft-like butterfly passes: power-of-two strided accesses over
 * a mid-sized working set with arithmetic between stages.
 */
class ButterflyLike : public Workload
{
  public:
    ButterflyLike(std::string name, Category cat, uint64_t seed,
                  size_t elems);

  protected:
    void setup(FunctionalMemory &mem, Rng &rng) override;
    void run(Emitter &em, Rng &rng) override;

  private:
    size_t elems_;
    size_t stage_ = 0;
};

/**
 * h264/facedet-like 2D sliding window: dense reuse within a window plus
 * constant-delta neighbour loads (TACT-Cross territory).
 */
class Window2dLike : public Workload
{
  public:
    Window2dLike(std::string name, Category cat, uint64_t seed,
                 size_t width, size_t height, uint32_t window);

  protected:
    void setup(FunctionalMemory &mem, Rng &rng) override;
    void run(Emitter &em, Rng &rng) override;

  private:
    size_t width_;
    size_t height_;
    uint32_t window_;
    size_t row_ = 0;
    size_t col_ = 0;
};

// ---------------------------------------------------------------------
// branchy.cc - control-flow-dominated kernels
// ---------------------------------------------------------------------

/**
 * gobmk/sjeng-like: line-local board scans (origin + three same-line
 * neighbours) feeding data-dependent branches with tunable
 * predictability. Mispredicts bound performance; the board loads behind
 * them are critical but their random origins defeat every prefetcher.
 */
class BranchyLike : public Workload
{
  public:
    BranchyLike(std::string name, uint64_t seed, size_t board_bytes,
                uint32_t mispredict_percent);

  protected:
    void setup(FunctionalMemory &mem, Rng &rng) override;
    void run(Emitter &em, Rng &rng) override;

  private:
    size_t boardBytes_;
    uint32_t mispredictPercent_;
};

/**
 * perlbench-like bytecode interpreter: opcode fetch (stream), dispatch to
 * one of many handler blocks (code footprint beyond the L1I), hash-table
 * side lookups.
 */
class InterpreterLike : public Workload
{
  public:
    InterpreterLike(std::string name, uint64_t seed, uint32_t num_handlers,
                    size_t bytecode_len, size_t hash_bytes);

  protected:
    void setup(FunctionalMemory &mem, Rng &rng) override;
    void run(Emitter &em, Rng &rng) override;

  private:
    uint32_t numHandlers_;
    size_t bytecodeLen_;
    size_t hashBytes_;
    size_t pos_ = 0;
};

/**
 * bzip2-like: sequential byte processing with a dependent state machine
 * and a histogram; mostly predictable branches, L2-resident tables.
 */
class CompressLike : public Workload
{
  public:
    CompressLike(std::string name, uint64_t seed, size_t input_bytes);

  protected:
    void setup(FunctionalMemory &mem, Rng &rng) override;
    void run(Emitter &em, Rng &rng) override;

  private:
    size_t inputBytes_;
    size_t pos_ = 0;
};

/**
 * gcc-like mixed kernel: small tree walks, a symbol hash, branchy control
 * and a moderate code footprint.
 */
class MixedIntLike : public Workload
{
  public:
    MixedIntLike(std::string name, uint64_t seed, size_t sym_bytes,
                 uint32_t code_blocks);

  protected:
    void setup(FunctionalMemory &mem, Rng &rng) override;
    void run(Emitter &em, Rng &rng) override;

  private:
    size_t symBytes_;
    uint32_t codeBlocks_;
};

/**
 * astar-like grid search: a random focus cell plus fixed-delta neighbour
 * loads (cross associations) and data-dependent direction branches.
 */
class GridNeighborLike : public Workload
{
  public:
    GridNeighborLike(std::string name, uint64_t seed, size_t grid_elems,
                     size_t grid_width);

  protected:
    void setup(FunctionalMemory &mem, Rng &rng) override;
    void run(Emitter &em, Rng &rng) override;

  private:
    size_t gridElems_;
    size_t gridWidth_;
    Addr cur_ = 0;
};

// ---------------------------------------------------------------------
// server.cc - large-code, transaction-style kernels
// ---------------------------------------------------------------------

/**
 * tpcc/tpce/oracle-like OLTP transaction loop: every transaction executes
 * a long sequence of distinct code blocks (code footprint far beyond the
 * L1I), probes a B-tree over a large buffer pool and copies a row. The
 * code misses make these kernels the primary TACT-Code beneficiaries.
 */
class OltpLike : public Workload
{
  public:
    OltpLike(std::string name, uint64_t seed, uint32_t code_blocks,
             uint32_t blocks_per_txn, size_t pool_bytes,
             uint32_t btree_levels);

  protected:
    void setup(FunctionalMemory &mem, Rng &rng) override;
    void run(Emitter &em, Rng &rng) override;

  private:
    uint32_t codeBlocks_;
    uint32_t blocksPerTxn_;
    size_t poolBytes_;
    uint32_t btreeLevels_;
};

/**
 * specjbb-like: object-graph updates (short chases) + allocation
 * streaming + a substantial code footprint.
 */
class JavaServerLike : public Workload
{
  public:
    JavaServerLike(std::string name, uint64_t seed, size_t heap_bytes,
                   uint32_t code_blocks);

  protected:
    void setup(FunctionalMemory &mem, Rng &rng) override;
    void run(Emitter &em, Rng &rng) override;

  private:
    size_t heapBytes_;
    uint32_t codeBlocks_;
    Addr allocPtr_ = 0;
};

/**
 * hadoop-like: streaming record scan with hash-grouped aggregation.
 */
class MapReduceLike : public Workload
{
  public:
    MapReduceLike(std::string name, uint64_t seed, size_t records,
                  size_t groups);

  protected:
    void setup(FunctionalMemory &mem, Rng &rng) override;
    void run(Emitter &em, Rng &rng) override;

  private:
    size_t records_;
    size_t groups_;
    size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// client.cc - interactive-application kernels
// ---------------------------------------------------------------------

/**
 * excel-like formula evaluation: cells reference operand cells through a
 * pointer table (feeder) mixed with strided range scans.
 */
class FormulaDagLike : public Workload
{
  public:
    FormulaDagLike(std::string name, uint64_t seed, size_t cells);

  protected:
    void setup(FunctionalMemory &mem, Rng &rng) override;
    void run(Emitter &em, Rng &rng) override;

  private:
    size_t cells_;
    size_t pos_ = 0;
};

/**
 * browser-like: DOM-ish tree walk, style hash lookups and a moderate
 * code footprint.
 */
class DomWalkLike : public Workload
{
  public:
    DomWalkLike(std::string name, uint64_t seed, size_t nodes,
                uint32_t code_blocks);

  protected:
    void setup(FunctionalMemory &mem, Rng &rng) override;
    void run(Emitter &em, Rng &rng) override;

  private:
    size_t nodes_;
    uint32_t codeBlocks_;
};

} // namespace catchsim

#endif // CATCHSIM_TRACE_KERNELS_KERNELS_HH_
