#include "trace/trace_io.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "common/logging.hh"

namespace catchsim
{

namespace
{

constexpr char kMagic[6] = {'C', 'T', 'S', 'I', 'M', '\0'};
constexpr uint32_t kVersion = kTraceFormatVersion;

// Fixed record sizes the bounds checks are computed from.
constexpr uint64_t kHeaderBytes = sizeof(kMagic) + 4 + 8;
constexpr uint64_t kOpBytes = kTraceOpRecordBytes;
constexpr uint64_t kPageRecordBytes = 8 + kPageBytes;

// Format-level validity limits: OpClass tops out at Nop, and no
// supported configuration has more than 64 architectural registers
// (SimConfig::validate), so larger indices can only be corruption.
constexpr uint8_t kMaxOpClass = static_cast<uint8_t>(OpClass::Nop);
constexpr int8_t kMaxRegIndex = 63;

struct FileCloser
{
    void operator()(std::FILE *f) const { std::fclose(f); }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool
put(std::FILE *f, T v)
{
    return std::fwrite(&v, sizeof(v), 1, f) == 1;
}

template <typename T>
bool
get(std::FILE *f, T *v)
{
    return std::fread(v, sizeof(*v), 1, f) == 1;
}

bool
regIndexOk(int8_t r)
{
    return r >= -1 && r <= kMaxRegIndex;
}

} // namespace

void
encodeOpRecord(const MicroOp &op, uint8_t *out)
{
    std::memcpy(out, &op.pc, 8);
    std::memcpy(out + 8, &op.memAddr, 8);
    std::memcpy(out + 16, &op.value, 8);
    out[24] = static_cast<uint8_t>(op.cls);
    out[25] = static_cast<uint8_t>(op.dst);
    out[26] = static_cast<uint8_t>(op.src[0]);
    out[27] = static_cast<uint8_t>(op.src[1]);
    out[28] = static_cast<uint8_t>(op.src[2]);
    out[29] = op.taken ? 1 : 0;
}

const char *
decodeOpRecord(const uint8_t *in, MicroOp *op)
{
    std::memcpy(&op->pc, in, 8);
    std::memcpy(&op->memAddr, in + 8, 8);
    std::memcpy(&op->value, in + 16, 8);
    const uint8_t cls = in[24];
    op->dst = static_cast<int8_t>(in[25]);
    op->src[0] = static_cast<int8_t>(in[26]);
    op->src[1] = static_cast<int8_t>(in[27]);
    op->src[2] = static_cast<int8_t>(in[28]);
    if (cls > kMaxOpClass)
        return "invalid class byte";
    if (!regIndexOk(op->dst) || !regIndexOk(op->src[0]) ||
        !regIndexOk(op->src[1]) || !regIndexOk(op->src[2]))
        return "out-of-range register index";
    op->cls = static_cast<OpClass>(cls);
    op->taken = in[29] != 0;
    return nullptr;
}

Expected<void>
saveTraceChecked(const Trace &trace, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return simError(ErrorCategory::Config, "cannot open '", path,
                        "' for writing");
    auto io_error = [&path]() {
        return simError(ErrorCategory::IoTransient, "write to '", path,
                        "' failed");
    };
    if (std::fwrite(kMagic, sizeof(kMagic), 1, f.get()) != 1 ||
        !put(f.get(), kVersion) ||
        !put(f.get(), static_cast<uint64_t>(trace.ops.size())))
        return io_error();
    uint8_t rec[kTraceOpRecordBytes];
    for (const MicroOp &op : trace.ops) {
        encodeOpRecord(op, rec);
        if (std::fwrite(rec, sizeof(rec), 1, f.get()) != 1)
            return io_error();
    }
    // Serialise the pages the trace actually references: the addresses
    // of every load/store, which is all the feeder will ever read.
    std::vector<Addr> pages;
    {
        // Collect distinct pages (small sets; a sort+unique suffices).
        pages.reserve(trace.ops.size());
        for (const MicroOp &op : trace.ops)
            if (op.isLoad() || op.isStore())
                pages.push_back(pageAddr(op.memAddr));
        std::sort(pages.begin(), pages.end());
        pages.erase(std::unique(pages.begin(), pages.end()),
                    pages.end());
    }
    if (!put(f.get(), static_cast<uint64_t>(pages.size())))
        return io_error();
    for (Addr page : pages) {
        if (!put(f.get(), page))
            return io_error();
        for (Addr a = page; a < page + kPageBytes; a += 8)
            if (!put(f.get(), trace.mem->read(a)))
                return io_error();
    }
    if (std::fflush(f.get()) != 0)
        return io_error();
    return {};
}

bool
saveTrace(const Trace &trace, const std::string &path)
{
    auto r = saveTraceChecked(trace, path);
    if (!r.ok())
        warn(r.error().message);
    return r.ok();
}

Expected<Trace>
loadTraceChecked(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return simError(ErrorCategory::Config, "cannot open trace file '",
                        path, "'");

    // The file's true size bounds every count field before anything is
    // allocated or trusted: a bit-flipped count can neither reserve
    // gigabytes nor walk past the end of the data.
    if (std::fseek(f.get(), 0, SEEK_END) != 0)
        return simError(ErrorCategory::IoTransient, "cannot seek in '",
                        path, "'");
    long told = std::ftell(f.get());
    if (told < 0)
        return simError(ErrorCategory::IoTransient, "cannot size '",
                        path, "'");
    uint64_t file_size = static_cast<uint64_t>(told);
    std::rewind(f.get());

    auto corrupt = [&path](auto &&...what) {
        return simError(ErrorCategory::TraceCorrupt, "trace file '",
                        path, "': ", what...);
    };

    if (file_size < kHeaderBytes)
        return corrupt("only ", file_size, " bytes, smaller than the ",
                       kHeaderBytes, "-byte header");
    char magic[6];
    uint32_t version = 0;
    uint64_t count = 0;
    if (std::fread(magic, sizeof(magic), 1, f.get()) != 1 ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return corrupt("bad header (magic mismatch)");
    if (!get(f.get(), &version) || version != kVersion)
        return corrupt("bad header (unsupported version ", version,
                       ", expected ", kVersion, ")");
    if (!get(f.get(), &count))
        return corrupt("bad header (missing op count)");
    uint64_t body = file_size - kHeaderBytes;
    if (count > body / kOpBytes)
        return corrupt("op count ", count, " needs ", count, " * ",
                       kOpBytes, " bytes but only ", body, " remain");

    Trace trace;
    trace.ops.reserve(count);
    uint8_t rec[kTraceOpRecordBytes];
    for (uint64_t i = 0; i < count; ++i) {
        if (std::fread(rec, sizeof(rec), 1, f.get()) != 1)
            return corrupt("truncated at op ", i, " of ", count);
        MicroOp op;
        if (const char *defect = decodeOpRecord(rec, &op))
            return corrupt("op ", i, ": ", defect);
        trace.ops.push_back(op);
    }

    uint64_t pages = 0;
    if (!get(f.get(), &pages))
        return corrupt("truncated before the page count");
    uint64_t page_body = file_size - kHeaderBytes - count * kOpBytes - 8;
    if (pages > page_body / kPageRecordBytes)
        return corrupt("page count ", pages, " needs ", pages, " * ",
                       kPageRecordBytes, " bytes but only ", page_body,
                       " remain");
    trace.mem = std::make_shared<FunctionalMemory>();
    for (uint64_t p = 0; p < pages; ++p) {
        Addr base = 0;
        if (!get(f.get(), &base))
            return corrupt("truncated at page ", p, " of ", pages);
        if (base != pageAddr(base))
            return corrupt("page ", p, " base ", base,
                           " is not page-aligned");
        for (Addr a = base; a < base + kPageBytes; a += 8) {
            uint64_t word = 0;
            if (!get(f.get(), &word))
                return corrupt("truncated inside page ", p, " of ",
                               pages);
            if (word)
                trace.mem->write(a, word);
        }
    }

    uint64_t expected =
        kHeaderBytes + count * kOpBytes + 8 + pages * kPageRecordBytes;
    if (file_size != expected)
        return corrupt(file_size - expected,
                       " trailing byte(s) after the last page");
    return trace;
}

Trace
loadTrace(const std::string &path)
{
    auto r = loadTraceChecked(path);
    if (r.ok())
        return std::move(r).value();
    warn(r.error().message);
    return Trace{};
}

} // namespace catchsim
