#include "trace/trace_io.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "common/logging.hh"

namespace catchsim
{

namespace
{

constexpr char kMagic[6] = {'C', 'T', 'S', 'I', 'M', '\0'};
constexpr uint32_t kVersion = 1;

struct FileCloser
{
    void operator()(std::FILE *f) const { std::fclose(f); }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool
put(std::FILE *f, T v)
{
    return std::fwrite(&v, sizeof(v), 1, f) == 1;
}

template <typename T>
bool
get(std::FILE *f, T *v)
{
    return std::fread(v, sizeof(*v), 1, f) == 1;
}

} // namespace

bool
saveTrace(const Trace &trace, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        return false;
    if (std::fwrite(kMagic, sizeof(kMagic), 1, f.get()) != 1 ||
        !put(f.get(), kVersion) ||
        !put(f.get(), static_cast<uint64_t>(trace.ops.size())))
        return false;
    for (const MicroOp &op : trace.ops) {
        if (!put(f.get(), op.pc) || !put(f.get(), op.memAddr) ||
            !put(f.get(), op.value) || !put(f.get(), op.target) ||
            !put(f.get(), static_cast<uint8_t>(op.cls)) ||
            !put(f.get(), static_cast<int8_t>(op.dst)) ||
            !put(f.get(), op.src[0]) || !put(f.get(), op.src[1]) ||
            !put(f.get(), op.src[2]) ||
            !put(f.get(), static_cast<uint8_t>(op.taken)))
            return false;
    }
    // Serialise the pages the trace actually references: the addresses
    // of every load/store, which is all the feeder will ever read.
    std::vector<Addr> pages;
    {
        // Collect distinct pages (small sets; a sort+unique suffices).
        pages.reserve(trace.ops.size());
        for (const MicroOp &op : trace.ops)
            if (op.isLoad() || op.isStore())
                pages.push_back(pageAddr(op.memAddr));
        std::sort(pages.begin(), pages.end());
        pages.erase(std::unique(pages.begin(), pages.end()),
                    pages.end());
    }
    if (!put(f.get(), static_cast<uint64_t>(pages.size())))
        return false;
    for (Addr page : pages) {
        if (!put(f.get(), page))
            return false;
        for (Addr a = page; a < page + kPageBytes; a += 8)
            if (!put(f.get(), trace.mem->read(a)))
                return false;
    }
    return true;
}

Trace
loadTrace(const std::string &path)
{
    Trace trace;
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return trace;
    char magic[6];
    uint32_t version = 0;
    uint64_t count = 0;
    if (std::fread(magic, sizeof(magic), 1, f.get()) != 1 ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0 ||
        !get(f.get(), &version) || version != kVersion ||
        !get(f.get(), &count)) {
        warn("trace file '", path, "' has a bad header");
        return trace;
    }
    trace.ops.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
        MicroOp op;
        uint8_t cls = 0, taken = 0;
        if (!get(f.get(), &op.pc) || !get(f.get(), &op.memAddr) ||
            !get(f.get(), &op.value) || !get(f.get(), &op.target) ||
            !get(f.get(), &cls) || !get(f.get(), &op.dst) ||
            !get(f.get(), &op.src[0]) || !get(f.get(), &op.src[1]) ||
            !get(f.get(), &op.src[2]) || !get(f.get(), &taken)) {
            warn("trace file '", path, "' truncated at op ", i);
            trace.ops.clear();
            return trace;
        }
        op.cls = static_cast<OpClass>(cls);
        op.taken = taken != 0;
        trace.ops.push_back(op);
    }
    uint64_t pages = 0;
    if (!get(f.get(), &pages)) {
        trace.ops.clear();
        return trace;
    }
    trace.mem = std::make_shared<FunctionalMemory>();
    for (uint64_t p = 0; p < pages; ++p) {
        Addr base = 0;
        if (!get(f.get(), &base)) {
            trace.ops.clear();
            trace.mem.reset();
            return trace;
        }
        for (Addr a = base; a < base + kPageBytes; a += 8) {
            uint64_t word = 0;
            if (!get(f.get(), &word)) {
                trace.ops.clear();
                trace.mem.reset();
                return trace;
            }
            if (word)
                trace.mem->write(a, word);
        }
    }
    return trace;
}

} // namespace catchsim
