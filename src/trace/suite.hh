/**
 * @file
 * The workload suites: a 70-entry single-thread list spanning the paper's
 * five categories (client, FSPEC, HPC, ISPEC, server) and 60 four-way
 * multi-programmed mixes (30 RATE-4 style, 30 random), mirroring the
 * paper's evaluation methodology (Section V).
 */

#ifndef CATCHSIM_TRACE_SUITE_HH_
#define CATCHSIM_TRACE_SUITE_HH_

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hh"
#include "trace/workload.hh"

namespace catchsim
{

/** Names of all single-thread workloads, grouped by category. */
std::vector<std::string> stSuiteNames();

/** Subset of stSuiteNames() used by quick smoke runs. */
std::vector<std::string> stQuickNames();

/**
 * Instantiates a workload by suite name. Unknown names return a config
 * SimError that lists every valid name; the CLI surfaces it once with
 * exit code 2, the suite executor records it as a per-run failure.
 */
Expected<std::unique_ptr<Workload>> findWorkload(const std::string &name);

/**
 * Instantiates a workload known to exist (tests, benches, internal
 * callers); asserts on unknown names. Anything handling user input
 * must use findWorkload instead.
 */
std::unique_ptr<Workload> makeWorkload(const std::string &name);

/** A four-way multi-programmed mix. */
struct MpMix
{
    std::string name;
    std::array<std::string, 4> workloads;
};

/** The 60 four-way MP mixes (30 RATE-4, 30 random). */
std::vector<MpMix> mpMixes();

} // namespace catchsim

#endif // CATCHSIM_TRACE_SUITE_HH_
