#include "trace/chunk_store.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/env.hh"
#include "common/fault_inject.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "trace/suite.hh"
#include "trace/trace_io.hh"

namespace catchsim
{

namespace
{

// Chunk-record magic, distinct from full-trace files ("CTSIM\0") so a
// misplaced file of either kind is rejected by the first six bytes.
constexpr char kChunkMagic[6] = {'C', 'T', 'C', 'H', 'K', '\0'};

// Fixed prefix of a chunk record before the kernel-name bytes:
// magic, u32 version, u64 seed, u64 index, u32 chunkOps, u32 name len.
constexpr uint64_t kChunkHeaderBytes = sizeof(kChunkMagic) + 4 + 8 + 8 + 4 + 4;

/** Exact byte size of @p key's disk record (header + ops + checksum). */
uint64_t
chunkRecordBytes(const ChunkKey &key)
{
    return kChunkHeaderBytes + key.kernel.size() +
           uint64_t(key.chunkOps) * kTraceOpRecordBytes + 8;
}

void
putBytes(std::vector<uint8_t> &out, size_t at, const void *src, size_t n)
{
    std::memcpy(out.data() + at, src, n);
}

struct FileCloser
{
    void operator()(std::FILE *f) const { std::fclose(f); }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

// --- ChunkGenerator ----------------------------------------------------

void
ChunkGenerator::reset(Workload &wl, uint32_t chunk_ops)
{
    mem_ = std::make_unique<FunctionalMemory>();
    rng_.emplace(wl.seed());
    buf_.clear();
    // Unbounded op budget: kernels only ever observe done(), which
    // stays false, so the emitted stream is the canonical prefix
    // function of (kernel, seed) regardless of any consumer's total.
    em_.emplace(*mem_, buf_, /*limit=*/~size_t(0),
                /*reserve_hint=*/2 * size_t(chunk_ops));
    wl.setup(*mem_, *rng_);
    nextIdx_ = 0;
    started_ = true;
}

void
ChunkGenerator::discard()
{
    em_.reset();
    rng_.reset();
    mem_.reset();
    buf_.clear();
    buf_.shrink_to_fit();
    started_ = false;
    // The next chunk produced is chunk 0 again; callers that read
    // nextIndex() before calling next() must see that, not the index
    // the discarded engine had reached.
    nextIdx_ = 0;
}

std::vector<MicroOp>
ChunkGenerator::next(Workload &wl, uint32_t chunk_ops)
{
    if (!started_)
        reset(wl, chunk_ops);
    const size_t want = chunk_ops;
    while (buf_.size() < want) {
        const size_t before = em_->emitted();
        wl.run(*em_, *rng_);
        CATCHSIM_ASSERT(em_->emitted() > before,
                        "workload kernel made no forward progress");
    }
    std::vector<MicroOp> out(buf_.begin(),
                             buf_.begin() + static_cast<ptrdiff_t>(want));
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(want));
    ++nextIdx_;
    return out;
}

// --- ChunkStore: producer state ----------------------------------------

/**
 * Per-(kernel, seed, chunkOps) background generation state. The
 * atomics publish consumer progress without locks; the engine itself
 * (workload instance + ChunkGenerator) is serialised by engineMu —
 * generation is sequential by nature, so one producer task at a time
 * advances it (`active` elects that task).
 */
struct ChunkStore::Producer
{
    std::string kernel;
    uint64_t seed = 0;
    uint32_t chunkOps = 0;
    std::atomic<uint64_t> consumerIndex{0}; ///< furthest consumer chunk
    std::atomic<uint64_t> maxChunks{0};     ///< furthest consumer's end
    std::atomic<bool> active{false};        ///< a task owns the engine
    std::mutex engineMu;
    bool broken = false; ///< kernel not instantiable; stay off
    std::unique_ptr<Workload> wl;
    ChunkGenerator gen;
};

// --- ChunkStore --------------------------------------------------------

ChunkStore::ChunkStore() : ChunkStore(Config()) {}

// Callers must detach any producer pool first (ProducerPoolGuard does);
// no task can then hold a reference into producers_.
ChunkStore::~ChunkStore() = default;

ChunkStore::ChunkStore(Config cfg)
    : cfg_(std::move(cfg))
{
    if (!cfg_.diskDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(cfg_.diskDir, ec);
        if (ec) {
            warn("chunk store: cannot create cache dir '", cfg_.diskDir,
                 "': ", ec.message(), " — disk tier disabled");
            cfg_.diskDir.clear();
        }
    }
}

std::string
ChunkStore::mapKey(const ChunkKey &key)
{
    return key.kernel + '|' + std::to_string(key.seed) + '|' +
           std::to_string(key.chunkOps) + '|' + std::to_string(key.index);
}

std::string
ChunkStore::diskPath(const ChunkKey &key) const
{
    return cfg_.diskDir + '/' + key.kernel + "-s" +
           std::to_string(key.seed) + "-c" + std::to_string(key.chunkOps) +
           "-v" + std::to_string(kTraceFormatVersion) + "-i" +
           std::to_string(key.index) + ".ctc";
}

ChunkStore::ChunkPtr
ChunkStore::find(const ChunkKey &key)
{
    const std::string mk = mapKey(key);
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = map_.find(mk);
        if (it != map_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second);
            ++stats_.hits;
            return it->second->chunk;
        }
    }
    if (!cfg_.diskDir.empty()) {
        auto loaded = loadDiskChecked(key);
        if (loaded.ok()) {
            ChunkPtr c = std::move(loaded).value();
            std::lock_guard<std::mutex> lock(mu_);
            auto it = map_.find(mk);
            if (it != map_.end()) {
                // A writer published while we read the file; serve the
                // resident copy (the bytes are identical either way).
                lru_.splice(lru_.begin(), lru_, it->second);
            } else {
                const size_t bytes = c->size() * sizeof(MicroOp);
                lru_.push_front(Entry{mk, c, bytes}); // catch-lint: allow(step-alloc) once per 64K-op chunk, not per cycle
                map_[mk] = lru_.begin();
                residentBytes_ += bytes;
                evictOverBudgetLocked();
            }
            ++stats_.hits;
            ++stats_.diskHits;
            return c;
        }
        const SimError &e = loaded.error();
        if (e.category == ErrorCategory::TraceCorrupt) {
            // Contain, don't crash: drop the bad record so the slot is
            // rewritten from regenerated (canonical) bytes, and report
            // a miss — the caller regenerates deterministically.
            warn(e.message, " — dropping the record and regenerating");
            std::remove(diskPath(key).c_str());
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.corrupt;
        }
    }
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    return nullptr;
}

ChunkStore::ChunkPtr
ChunkStore::put(const ChunkKey &key, Chunk chunk)
{
    CATCHSIM_ASSERT(chunk.size() == key.chunkOps,
                    "chunk store only holds full chunks: got ",
                    chunk.size(), " ops for a ", key.chunkOps,
                    "-op key");
    const std::string mk = mapKey(key);
    ChunkPtr c;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = map_.find(mk);
        if (it != map_.end()) {
            // First writer wins; every writer holds identical bytes.
            lru_.splice(lru_.begin(), lru_, it->second);
            return it->second->chunk;
        }
        c = std::make_shared<const Chunk>(std::move(chunk)); // catch-lint: allow(step-alloc) once per 64K-op chunk, not per cycle
        const size_t bytes = c->size() * sizeof(MicroOp);
        lru_.push_front(Entry{mk, c, bytes}); // catch-lint: allow(step-alloc) once per 64K-op chunk, not per cycle
        map_[mk] = lru_.begin();
        residentBytes_ += bytes;
        ++stats_.puts;
        evictOverBudgetLocked();
    }
    if (!cfg_.diskDir.empty()) {
        auto w = writeDisk(key, *c);
        if (!w.ok())
            warn(w.error().message, " — disk tier skipped for this chunk");
    }
    return c;
}

void
ChunkStore::evictOverBudgetLocked()
{
    // Never evict below one resident chunk: the entry just inserted
    // must survive long enough to be returned to its requester.
    while (residentBytes_ > cfg_.memBudgetBytes && lru_.size() > 1) {
        const Entry &victim = lru_.back();
        residentBytes_ -= victim.bytes;
        map_.erase(victim.mapKey);
        lru_.pop_back();
        ++stats_.evictions;
    }
}

Expected<void>
ChunkStore::writeDisk(const ChunkKey &key, const Chunk &chunk)
{
    const std::string path = diskPath(key);
    {
        // Already persisted (by an earlier run or another worker racing
        // on the same identity): the bytes are canonical, keep them.
        FilePtr probe(std::fopen(path.c_str(), "rb"));
        if (probe)
            return {};
    }
    const uint64_t total = chunkRecordBytes(key);
    std::vector<uint8_t> out(total);
    size_t at = 0;
    putBytes(out, at, kChunkMagic, sizeof(kChunkMagic));
    at += sizeof(kChunkMagic);
    const uint32_t version = kTraceFormatVersion;
    putBytes(out, at, &version, 4);
    at += 4;
    putBytes(out, at, &key.seed, 8);
    at += 8;
    putBytes(out, at, &key.index, 8);
    at += 8;
    putBytes(out, at, &key.chunkOps, 4);
    at += 4;
    const uint32_t name_len = static_cast<uint32_t>(key.kernel.size());
    putBytes(out, at, &name_len, 4);
    at += 4;
    putBytes(out, at, key.kernel.data(), key.kernel.size());
    at += key.kernel.size();
    for (const MicroOp &op : chunk) {
        encodeOpRecord(op, out.data() + at);
        at += kTraceOpRecordBytes;
    }
    const uint64_t sum = fnv1a(out.data(), at);
    putBytes(out, at, &sum, 8);
    at += 8;
    CATCHSIM_ASSERT(at == total, "chunk record layout mismatch");

    // Write to a unique temp name, then rename: readers only ever see
    // complete, checksummed records, even across concurrent writers.
    const std::string tmp =
        path + ".tmp" +
        std::to_string(tmpSerial_.fetch_add(1, std::memory_order_relaxed));
    FilePtr f(std::fopen(tmp.c_str(), "wb"));
    if (!f)
        return simError(ErrorCategory::IoTransient,
                        "chunk store: cannot open '", tmp,
                        "' for writing");
    if (std::fwrite(out.data(), 1, out.size(), f.get()) != out.size() ||
        std::fflush(f.get()) != 0) {
        f.reset();
        std::remove(tmp.c_str());
        return simError(ErrorCategory::IoTransient,
                        "chunk store: write to '", tmp, "' failed");
    }
    f.reset();
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return simError(ErrorCategory::IoTransient,
                        "chunk store: cannot rename '", tmp, "' to '",
                        path, "'");
    }
    return {};
}

Expected<ChunkStore::ChunkPtr>
ChunkStore::loadDiskChecked(const ChunkKey &key)
{
    const std::string path = diskPath(key);
    auto corrupt = [&path](auto &&...what) {
        return simError(ErrorCategory::TraceCorrupt, "chunk file '",
                        path, "': ", what...);
    };
    // Deterministic fault injection: the reserved "chunk-store" target
    // corrupts every disk read so CI can drive the containment path
    // (drop + regenerate) without manufacturing real bit flips.
    if (cfg_.plan &&
        cfg_.plan->shouldInject(FaultKind::TraceCorrupt, "chunk-store"))
        return corrupt("injected chunk-store corruption");

    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        return simError(ErrorCategory::Config, "no chunk file '", path,
                        "'");
    // The expected size is a pure function of the key, so it bounds the
    // read buffer before anything in the file is trusted.
    const uint64_t expected = chunkRecordBytes(key);
    if (std::fseek(f.get(), 0, SEEK_END) != 0)
        return simError(ErrorCategory::IoTransient, "cannot seek in '",
                        path, "'");
    const long told = std::ftell(f.get());
    if (told < 0)
        return simError(ErrorCategory::IoTransient, "cannot size '",
                        path, "'");
    if (static_cast<uint64_t>(told) != expected)
        return corrupt(told, " bytes on disk, expected ", expected,
                       " (truncated or foreign record)");
    std::rewind(f.get());
    std::vector<uint8_t> buf(expected);
    if (std::fread(buf.data(), 1, buf.size(), f.get()) != buf.size())
        return corrupt("short read of ", expected, " bytes");

    uint64_t sum = 0;
    std::memcpy(&sum, buf.data() + buf.size() - 8, 8);
    if (fnv1a(buf.data(), buf.size() - 8) != sum)
        return corrupt("FNV-1a checksum mismatch (bit flip?)");

    size_t at = 0;
    if (std::memcmp(buf.data(), kChunkMagic, sizeof(kChunkMagic)) != 0)
        return corrupt("bad magic");
    at += sizeof(kChunkMagic);
    uint32_t version = 0;
    std::memcpy(&version, buf.data() + at, 4);
    at += 4;
    if (version != kTraceFormatVersion)
        return corrupt("unsupported version ", version, ", expected ",
                       kTraceFormatVersion);
    uint64_t seed = 0;
    std::memcpy(&seed, buf.data() + at, 8);
    at += 8;
    uint64_t index = 0;
    std::memcpy(&index, buf.data() + at, 8);
    at += 8;
    uint32_t chunk_ops = 0;
    std::memcpy(&chunk_ops, buf.data() + at, 4);
    at += 4;
    uint32_t name_len = 0;
    std::memcpy(&name_len, buf.data() + at, 4);
    at += 4;
    if (seed != key.seed || index != key.index ||
        chunk_ops != key.chunkOps || name_len != key.kernel.size() ||
        std::memcmp(buf.data() + at, key.kernel.data(), name_len) != 0)
        return corrupt("header does not match the requested key");
    at += name_len;

    auto chunk = std::make_shared<Chunk>(size_t(chunk_ops)); // catch-lint: allow(step-alloc) once per 64K-op chunk, not per cycle
    for (uint32_t i = 0; i < chunk_ops; ++i) {
        if (const char *defect =
                decodeOpRecord(buf.data() + at, &(*chunk)[i]))
            return corrupt("op ", i, ": ", defect);
        at += kTraceOpRecordBytes;
    }
    return ChunkPtr(std::move(chunk));
}

ChunkStore::Stats
ChunkStore::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

size_t
ChunkStore::residentBytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return residentBytes_;
}

// --- producer stage ----------------------------------------------------

void
ChunkStore::setProducerPool(ThreadPool *pool)
{
    pool_.store(pool, std::memory_order_release);
}

void
ChunkStore::kickProducer(const ChunkKey &key, uint64_t max_chunks)
{
    ThreadPool *pool = pool_.load(std::memory_order_acquire);
    if (!pool)
        return;
    Producer *st = nullptr;
    {
        const std::string pk = key.kernel + '|' +
                               std::to_string(key.seed) + '|' +
                               std::to_string(key.chunkOps);
        std::lock_guard<std::mutex> lock(producerMu_);
        auto &slot = producers_[pk];
        if (!slot) {
            slot = std::make_unique<Producer>(); // catch-lint: allow(step-alloc) once per (kernel, seed) identity
            slot->kernel = key.kernel;
            slot->seed = key.seed;
            slot->chunkOps = key.chunkOps;
        }
        st = slot.get();
    }
    // Advance the published consumer frontier monotonically: several
    // streams of the same identity may progress at different rates and
    // the producer chases the furthest one.
    uint64_t cur = st->consumerIndex.load(std::memory_order_relaxed);
    while (cur < key.index &&
           !st->consumerIndex.compare_exchange_weak(cur, key.index)) {
    }
    cur = st->maxChunks.load(std::memory_order_relaxed);
    while (cur < max_chunks &&
           !st->maxChunks.compare_exchange_weak(cur, max_chunks)) {
    }
    if (st->active.exchange(true))
        return; // a task already owns the engine
    if (!pool->trySubmitDetached([this, st] { produceSome(*st); }))
        st->active.store(false); // no idle capacity; retry on next kick
}

void
ChunkStore::produceSome(Producer &st)
{
    bool more = false;
    {
        std::lock_guard<std::mutex> lock(st.engineMu);
        if (st.broken) {
            st.active.store(false);
            return;
        }
        if (!st.wl) {
            auto wl = findWorkload(st.kernel);
            if (!wl.ok() || wl.value()->seed() != st.seed) {
                // Not a suite kernel (custom test workload) or a seed
                // the suite would not produce: the producer cannot
                // regenerate this identity, so it stays off and the
                // consumer generates inline as before.
                st.broken = true;
                st.active.store(false);
                return;
            }
            st.wl = std::move(wl).value();
        }
        uint64_t produced = 0;
        while (produced < kProducerBatchChunks) {
            const uint64_t goal =
                std::min(st.consumerIndex.load(std::memory_order_relaxed) +
                             kProducerAheadChunks,
                         st.maxChunks.load(std::memory_order_relaxed));
            const uint64_t idx = st.gen.nextIndex();
            if (idx >= goal)
                break;
            put(ChunkKey{st.kernel, st.seed, st.chunkOps, idx},
                st.gen.next(*st.wl, st.chunkOps));
            ++produced;
        }
        more = st.gen.nextIndex() <
               std::min(st.consumerIndex.load(std::memory_order_relaxed) +
                            kProducerAheadChunks,
                        st.maxChunks.load(std::memory_order_relaxed));
    }
    if (more) {
        // Chain a fresh task instead of looping: between batches the
        // pool re-decides whether simulation work needs the worker.
        ThreadPool *pool = pool_.load(std::memory_order_acquire);
        if (pool && pool->trySubmitDetached([this, &st] { produceSome(st); }))
            return; // ownership passes to the chained task
    }
    st.active.store(false);
}

// --- process-wide store ------------------------------------------------

ChunkStore *
ChunkStore::global()
{
    // Leaked singleton (never destructed): detached producer tasks may
    // still publish chunks while static destructors would run.
    static ChunkStore *const store = []() -> ChunkStore * {
        const std::string dir = envString("CATCH_TRACE_CACHE");
        if (!envFlag("CATCH_TRACE_STORE") && dir.empty())
            return nullptr;
        Config cfg;
        cfg.memBudgetBytes = envU64("CATCH_TRACE_STORE_MB", 256) << 20;
        cfg.diskDir = dir;
        cfg.plan = &FaultPlan::global();
        return new ChunkStore(std::move(cfg)); // catch-lint: allow(raw-new-delete) intentionally leaked process singleton
    }();
    return store;
}

} // namespace catchsim
