/**
 * @file
 * TraceView: the consumer-side window onto an instruction trace.
 *
 * Both trace representations — a fully materialized std::vector and the
 * chunked TraceStream ring — expose their ops through this one POD, so
 * the core/front-end hot paths have a single, branch-free access form:
 * ops[i & mask]. A materialized trace uses mask == ~0 (identity), a
 * stream uses its power-of-two ring mask. count is always the total
 * length of the trace, not the resident window; the stream guarantees
 * every index the consumer may touch (the current position plus the
 * bounded code-runahead horizon) is resident.
 */

#ifndef CATCHSIM_TRACE_TRACE_VIEW_HH_
#define CATCHSIM_TRACE_TRACE_VIEW_HH_

#include <cstddef>
#include <vector>

#include "trace/micro_op.hh"

namespace catchsim
{

/**
 * How far past a stall the TACT-Code runahead walker may scan, in ops.
 * The cap exists so a streamed trace never has to materialize more than
 * its resident window: TraceStream guarantees at least one chunk of
 * lookahead from the consumer's position, so the horizon must stay at
 * or below TraceStream's chunk size (static_assert'd there). Applied
 * identically to materialized traces to keep both modes bitwise equal.
 * In practice the walk ends orders of magnitude earlier, at the first
 * would-mispredict branch or the runahead line budget.
 */
constexpr size_t kCodeRunaheadHorizonOps = 32768;

/** A masked-index window over a trace; see file comment. */
struct TraceView
{
    const MicroOp *ops = nullptr;
    size_t mask = ~size_t(0); ///< index mask; ~0 = plain array
    size_t count = 0;         ///< total ops in the trace

    const MicroOp &
    at(size_t i) const
    {
        return ops[i & mask];
    }

    bool bound() const { return ops != nullptr; }
};

/** View over a fully materialized op vector. */
inline TraceView
makeView(const std::vector<MicroOp> &ops)
{
    return TraceView{ops.data(), ~size_t(0), ops.size()};
}

} // namespace catchsim

#endif // CATCHSIM_TRACE_TRACE_VIEW_HH_
