#include "trace/workload.hh"

namespace catchsim
{

const char *
categoryName(Category c)
{
    switch (c) {
      case Category::Client: return "client";
      case Category::Fspec: return "FSPEC";
      case Category::Hpc: return "HPC";
      case Category::Ispec: return "ISPEC";
      case Category::Server: return "server";
    }
    return "?";
}

} // namespace catchsim
