/**
 * @file
 * Figure 1: performance impact of removing the L2 from the Skylake-like
 * baseline (1 MB L2 + 5.5 MB exclusive LLC), for the same-capacity
 * (NoL2 + 6.5 MB LLC) and iso-area (NoL2 + 9.5 MB LLC) configurations.
 * Paper: -7.79% and -5.12% geomean respectively.
 */

#include "bench/bench_common.hh"

using namespace catchsim;

int
main()
{
    banner("Figure 1", "performance impact of removing the L2");
    ExperimentEnv env = ExperimentEnv::fromEnvironment();

    SimConfig base = baselineSkx();
    auto rb = runSuite(base, env);
    auto r65 = runSuite(noL2(base, 6656), env);
    auto r95 = runSuite(noL2(base, 9728), env);

    printCategoryTable(rb, {r65, r95},
                       {"NoL2+6.5MB LLC", "NoL2+9.5MB LLC"},
                       {-0.0779, -0.0512});
    return 0;
}
