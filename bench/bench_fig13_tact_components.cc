/**
 * @file
 * Figure 13: contribution of each TACT component, added cumulatively on
 * the NoL2 + 6.5 MB LLC configuration.
 * Paper deltas: Code +0.75%, +Cross +3.67%, +Deep +5.89%, +Feeder +2.70%
 * (about +13% total over the no-L2 baseline).
 */

#include "bench/bench_common.hh"

using namespace catchsim;

int
main()
{
    banner("Figure 13", "per-component TACT gains over the NoL2 config");
    ExperimentEnv env = ExperimentEnv::fromEnvironment();

    SimConfig no_l2 = noL2(baselineSkx(), 6656);
    auto rb = runSuite(no_l2, env);

    struct Step
    {
        const char *name;
        bool code, cross, deep, feeder;
        double paper_delta;
    };
    const Step steps[] = {
        {"Code", true, false, false, false, 0.0075},
        {"+CROSS", true, true, false, false, 0.0367},
        {"+Deep", true, true, true, false, 0.0589},
        {"+Feeder", true, true, true, true, 0.0270},
    };

    TablePrinter table({"cumulative config", "total gain",
                        "delta vs prev", "paper delta"});
    double prev = 1.0;
    for (const Step &s : steps) {
        SimConfig cfg = no_l2;
        cfg.name = s.name;
        cfg.criticality.enabled = true;
        cfg.tact.code = s.code;
        cfg.tact.cross = s.cross;
        cfg.tact.deepSelf = s.deep;
        cfg.tact.feeder = s.feeder;
        auto rs = runSuite(cfg, env);
        double total = overallGeomean(rb, rs);
        table.addRow({s.name, formatPercent(total - 1.0),
                      formatPercent(total - prev),
                      formatPercent(s.paper_delta)});
        prev = total;
    }
    table.print();
    return 0;
}
