/**
 * @file
 * Figure 5: the criticality-aware oracle prefetcher. Critical loads that
 * miss the L1 but would hit the L2/LLC are served at L1 latency (a
 * zero-time prefetch), sweeping the number of tracked critical PCs.
 * Hardware prefetchers are off and code is assumed L1-resident, as in
 * the paper. Paper: +5.49% at 32 PCs rising to +6.58% for all PCs, with
 * only 14-17% of L1 misses converted; NoL2+2048PCs lands at +6.21%,
 * demonstrating that the L2 is redundant under the oracle.
 */

#include "bench/bench_common.hh"

using namespace catchsim;

namespace
{

SimConfig
oracleCfg(const SimConfig &base, uint32_t pc_limit, const char *name)
{
    SimConfig cfg = base;
    cfg.name = name;
    cfg.l1StridePrefetcher = false;
    cfg.l2StreamPrefetcher = false;
    cfg.oracle.oraclePrefetch = true;
    cfg.oracle.oraclePrefetchPcLimit = pc_limit;
    cfg.oracle.oracleCodeInL1 = true;
    if (pc_limit)
        cfg.criticality.enabled = true;
    return cfg;
}

} // namespace

int
main()
{
    banner("Figure 5", "criticality-aware oracle prefetch vs tracked PCs");
    ExperimentEnv env = ExperimentEnv::fromEnvironment();

    // The baseline for this study also has prefetchers off + ideal code.
    SimConfig base = baselineSkx();
    base.l1StridePrefetcher = false;
    base.l2StreamPrefetcher = false;
    base.oracle.oracleCodeInL1 = true;
    auto rb = runSuite(base, env);

    struct Case
    {
        const char *name;
        uint32_t pcs; ///< 0 = all PCs
        bool no_l2;
        double paper;
    };
    const Case cases[] = {
        {"32 PC", 32, false, 0.0549},    {"64 PC", 64, false, 0.0561},
        {"128 PC", 128, false, 0.0576},  {"1024 PC", 1024, false, 0.0606},
        {"2048 PC", 2048, false, 0.0611}, {"All PC", 0, false, 0.0658},
        {"NoL2+2048 PC", 2048, true, 0.0621},
    };

    TablePrinter table({"tracked PCs", "perf impact",
                        "%L1-misses converted", "paper"});
    for (const Case &c : cases) {
        SimConfig cfg = c.no_l2 ? noL2(base, 6656) : base;
        cfg = oracleCfg(cfg, c.pcs, c.name);
        auto rs = runSuite(cfg, env);
        double converted =
            sumOver(rs, [](const SimResult &r) {
                return r.hier.oracleConverted;
            }) /
            sumOver(rs, [](const SimResult &r) {
                return r.hier.oracleConverted + r.hier.loads -
                       r.hier.loadHits[0];
            });
        table.addRow({c.name,
                      formatPercent(overallGeomean(rb, rs) - 1.0),
                      formatPercent(converted),
                      formatPercent(c.paper)});
    }
    table.print();
    return 0;
}
