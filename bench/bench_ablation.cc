/**
 * @file
 * Ablations of the design choices DESIGN.md calls out (and the paper's
 * Section VI-D2 critical-table sensitivity):
 *   - critical-load table capacity (8 / 16 / 32 / 64 / 128)
 *   - DDG walk depth (1x / 2x / 3x ROB)
 *   - TACT deep-self maximum distance (4 / 8 / 16 / 32)
 *   - feeder runahead depth (4 / 8 / 16)
 */

#include "bench/bench_common.hh"

using namespace catchsim;

namespace
{

double
gain(const std::vector<SimResult> &base, const SimConfig &cfg,
     const ExperimentEnv &env)
{
    auto rs = runSuite(cfg, env);
    return overallGeomean(base, rs) - 1.0;
}

} // namespace

int
main()
{
    banner("Ablation", "CATCH design-parameter sensitivity");
    ExperimentEnv env = ExperimentEnv::fromEnvironment();
    // Ablate on the two-level CATCH configuration, reported as gain over
    // the three-level baseline.
    auto rb = runSuite(baselineSkx(), env);
    SimConfig catch2 = withCatch(noL2(baselineSkx(), 9728));

    TablePrinter table({"knob", "value", "gain vs baseline"});

    for (uint32_t entries : {8u, 16u, 32u, 64u, 128u}) {
        SimConfig cfg = catch2;
        cfg.name = "table" + std::to_string(entries);
        cfg.criticality.tableEntries = entries;
        cfg.criticality.tableWays = entries >= 8 ? 8 : entries;
        table.addRow({"critical-table entries", std::to_string(entries),
                      formatPercent(gain(rb, cfg, env))});
    }

    for (double walk : {1.0, 2.0, 3.0}) {
        SimConfig cfg = catch2;
        cfg.name = "walk" + formatDouble(walk, 1);
        cfg.criticality.walkFactor = walk;
        cfg.criticality.graphFactor = walk + 0.5;
        table.addRow({"DDG walk depth (x ROB)", formatDouble(walk, 1),
                      formatPercent(gain(rb, cfg, env))});
    }

    for (uint32_t dist : {4u, 8u, 16u, 32u}) {
        SimConfig cfg = catch2;
        cfg.name = "deep" + std::to_string(dist);
        cfg.tact.deepMaxDistance = dist;
        table.addRow({"deep-self max distance", std::to_string(dist),
                      formatPercent(gain(rb, cfg, env))});
    }

    for (uint32_t depth : {4u, 8u, 16u}) {
        SimConfig cfg = catch2;
        cfg.name = "feeder" + std::to_string(depth);
        cfg.tact.feederDepth = depth;
        table.addRow({"feeder runahead depth", std::to_string(depth),
                      formatPercent(gain(rb, cfg, env))});
    }

    table.print();
    return 0;
}
