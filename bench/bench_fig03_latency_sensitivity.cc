/**
 * @file
 * Figure 3: sensitivity to +1/+2/+3 cycles of latency at the L1, L2 and
 * LLC of the three-level baseline. Paper geomeans:
 *   L1: -2.40% / -4.78% / -7.16%
 *   L2: -0.49% / -0.91% / -1.35%
 *   LLC: -0.24% / -0.41% / -0.58%
 * The shape to reproduce: steep L1 sensitivity, an order of magnitude
 * flatter at the L2, flatter still at the LLC.
 */

#include "bench/bench_common.hh"

using namespace catchsim;

int
main()
{
    banner("Figure 3", "impact of +1/+2/+3 cycle latency at L1/L2/LLC");
    ExperimentEnv env = ExperimentEnv::fromEnvironment();

    SimConfig base = baselineSkx();
    auto rb = runSuite(base, env);

    const double paper[3][3] = {
        {-0.0240, -0.0478, -0.0716},
        {-0.0049, -0.0091, -0.0135},
        {-0.0024, -0.0041, -0.0058},
    };
    const char *levels[3] = {"L1", "L2", "LLC"};

    TablePrinter table({"level", "+1 cyc", "+2 cyc", "+3 cyc",
                        "paper(+1/+2/+3)"});
    for (int lvl = 0; lvl < 3; ++lvl) {
        std::vector<std::string> row = {levels[lvl]};
        for (uint32_t add = 1; add <= 3; ++add) {
            SimConfig cfg = base;
            cfg.name = std::string(levels[lvl]) + "+" +
                       std::to_string(add);
            if (lvl == 0)
                cfg.oracle.latAddL1 = add;
            else if (lvl == 1)
                cfg.oracle.latAddL2 = add;
            else
                cfg.oracle.latAddLlc = add;
            auto rs = runSuite(cfg, env);
            row.push_back(formatPercent(overallGeomean(rb, rs) - 1.0));
        }
        row.push_back(formatPercent(paper[lvl][0]) + " / " +
                      formatPercent(paper[lvl][1]) + " / " +
                      formatPercent(paper[lvl][2]));
        table.addRow(row);
    }
    table.print();
    return 0;
}
