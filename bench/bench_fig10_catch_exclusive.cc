/**
 * @file
 * Figure 10: CATCH on the large-L2 exclusive-LLC baseline.
 * Configurations (speedup vs baseline, paper geomeans in parentheses):
 *   NoL2 + 6.5 MB LLC            (-7.79%)
 *   NoL2 + 9.5 MB LLC            (-5.12%)
 *   NoL2 + 6.5 MB LLC + CATCH    (+4.55%)
 *   NoL2 + 9.5 MB LLC + CATCH    (+7.23%)
 *   CATCH on the 3-level baseline (+8.41%)
 */

#include "bench/bench_common.hh"

using namespace catchsim;

int
main()
{
    banner("Figure 10", "CATCH on the 1MB-L2 / 5.5MB-exclusive baseline");
    ExperimentEnv env = ExperimentEnv::fromEnvironment();

    SimConfig base = baselineSkx();
    auto rb = runSuite(base, env);
    auto r65 = runSuite(noL2(base, 6656), env);
    auto r95 = runSuite(noL2(base, 9728), env);
    auto r65c = runSuite(withCatch(noL2(base, 6656)), env);
    auto r95c = runSuite(withCatch(noL2(base, 9728)), env);
    auto rc = runSuite(withCatch(base), env);

    printCategoryTable(
        rb, {r65, r95, r65c, r95c, rc},
        {"NoL2+6.5", "NoL2+9.5", "NoL2+6.5+CATCH", "NoL2+9.5+CATCH",
         "CATCH"},
        {-0.0779, -0.0512, 0.0455, 0.0723, 0.0841});
    return 0;
}
