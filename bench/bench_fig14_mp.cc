/**
 * @file
 * Figure 14: four-way multi-programmed workloads (weighted speedup).
 * Paper: NoL2 -4.05%, NoL2+CATCH +8.45%, CATCH +8.95% vs the baseline.
 *
 * Environment knobs: CATCH_MP_MIXES bounds how many of the 60 mixes run
 * (default 10 for the quick mode; set 60 for the full set).
 */

#include <cstdlib>
#include <map>

#include "bench/bench_common.hh"
#include "sim/mp_simulator.hh"

using namespace catchsim;

namespace
{

/** Memoised solo IPCs per (config, workload). */
class SoloCache
{
  public:
    SoloCache(const SimConfig &cfg, uint64_t instrs, uint64_t warmup)
        : cfg_(cfg), instrs_(instrs), warmup_(warmup)
    {
    }

    double
    ipc(const std::string &wl)
    {
        auto it = cache_.find(wl);
        if (it != cache_.end())
            return it->second;
        double v = runWorkload(cfg_, wl, instrs_, warmup_).ipc;
        cache_[wl] = v;
        std::fprintf(stderr, ".");
        std::fflush(stderr);
        return v;
    }

  private:
    SimConfig cfg_;
    uint64_t instrs_;
    uint64_t warmup_;
    std::map<std::string, double> cache_;
};

/**
 * Weighted speedup with a COMMON denominator: every configuration's MP
 * IPCs are normalised by the baseline configuration's solo IPCs, so the
 * metric is comparable across configurations (as in the paper's Fig 14).
 */
double
meanWeightedSpeedup(const SimConfig &cfg, const std::vector<MpMix> &mixes,
                    uint64_t instrs, uint64_t warmup, SoloCache &solo)
{
    MpSimulator sim(cfg);
    double total = 0;
    std::fprintf(stderr, "[%s] ", cfg.name.c_str());
    for (const auto &mix : mixes) {
        std::array<double, 4> alone{};
        for (int i = 0; i < 4; ++i)
            alone[i] = solo.ipc(mix.workloads[i]);
        MpResult r = sim.run(mix, instrs, warmup, alone);
        total += r.weightedSpeedup;
        std::fprintf(stderr, "*");
        std::fflush(stderr);
    }
    std::fprintf(stderr, "\n");
    return total / static_cast<double>(mixes.size());
}

} // namespace

int
main()
{
    banner("Figure 14", "4-way multi-programmed weighted speedup");
    ExperimentEnv env = ExperimentEnv::fromEnvironment();
    const char *mix_env = std::getenv("CATCH_MP_MIXES");
    size_t num_mixes = mix_env ? std::strtoull(mix_env, nullptr, 10) : 10;

    auto all_mixes = mpMixes();
    if (num_mixes < all_mixes.size())
        all_mixes.resize(num_mixes);
    // MP runs cost 4x; use a shorter per-core window.
    uint64_t instrs = env.instrs / 2;
    uint64_t warmup = env.warmup / 2;

    SoloCache solo(baselineSkx(), instrs, warmup);
    double base = meanWeightedSpeedup(baselineSkx(), all_mixes, instrs,
                                      warmup, solo);
    double no_l2 = meanWeightedSpeedup(noL2(baselineSkx(), 9728),
                                       all_mixes, instrs, warmup, solo);
    double no_l2_catch =
        meanWeightedSpeedup(withCatch(noL2(baselineSkx(), 9728)),
                            all_mixes, instrs, warmup, solo);
    double catch3 = meanWeightedSpeedup(withCatch(baselineSkx()),
                                        all_mixes, instrs, warmup, solo);

    TablePrinter table({"config", "weighted speedup", "vs baseline",
                        "paper"});
    table.addRow({"baseline", formatDouble(base, 3), "-", "-"});
    table.addRow({"NoL2", formatDouble(no_l2, 3),
                  formatPercent(no_l2 / base - 1.0), "-4.05%"});
    table.addRow({"NoL2+CATCH", formatDouble(no_l2_catch, 3),
                  formatPercent(no_l2_catch / base - 1.0), "+8.45%"});
    table.addRow({"CATCH", formatDouble(catch3, 3),
                  formatPercent(catch3 / base - 1.0), "+8.95%"});
    table.print();
    return 0;
}
