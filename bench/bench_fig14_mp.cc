/**
 * @file
 * Figure 14: four-way multi-programmed workloads (weighted speedup).
 * Paper: NoL2 -4.05%, NoL2+CATCH +8.45%, CATCH +8.95% vs the baseline.
 *
 * Environment knobs: CATCH_MP_MIXES bounds how many of the 60 mixes run
 * (default 10 for the quick mode; set 60 for the full set).
 */

#include <map>

#include "bench/bench_common.hh"
#include "common/env.hh"
#include "sim/mp_simulator.hh"
#include "sim/parallel_runner.hh"

using namespace catchsim;

namespace
{

/**
 * Weighted speedup with a COMMON denominator: every configuration's MP
 * IPCs are normalised by the baseline configuration's solo IPCs, so the
 * metric is comparable across configurations (as in the paper's Fig 14).
 * Mixes run in parallel (CATCH_JOBS); results are mix-order stable.
 */
double
meanWeightedSpeedup(const SimConfig &cfg, const std::vector<MpMix> &mixes,
                    uint64_t instrs, uint64_t warmup,
                    const std::map<std::string, double> &solo,
                    unsigned jobs)
{
    std::fprintf(stderr, "[%s] ", cfg.name.c_str());
    auto results =
        runMixesParallel(cfg, mixes, instrs, warmup, solo, jobs);
    std::fprintf(stderr, "%zu mixes\n", results.size());
    double total = 0;
    for (const MpResult &r : results)
        total += r.weightedSpeedup;
    return total / static_cast<double>(mixes.size());
}

} // namespace

int
main()
{
    banner("Figure 14", "4-way multi-programmed weighted speedup");
    ExperimentEnv env = ExperimentEnv::fromEnvironment();
    size_t num_mixes = envU64("CATCH_MP_MIXES", 10);

    auto all_mixes = mpMixes();
    if (num_mixes < all_mixes.size())
        all_mixes.resize(num_mixes);
    // MP runs cost 4x; use a shorter per-core window.
    uint64_t instrs = env.instrs / 2;
    uint64_t warmup = env.warmup / 2;

    std::fprintf(stderr, "[solo IPCs] ");
    auto solo = soloIpcsParallel(baselineSkx(), all_mixes, instrs, warmup,
                                 env.jobs);
    std::fprintf(stderr, "%zu workloads\n", solo.size());
    double base = meanWeightedSpeedup(baselineSkx(), all_mixes, instrs,
                                      warmup, solo, env.jobs);
    double no_l2 =
        meanWeightedSpeedup(noL2(baselineSkx(), 9728), all_mixes, instrs,
                            warmup, solo, env.jobs);
    double no_l2_catch =
        meanWeightedSpeedup(withCatch(noL2(baselineSkx(), 9728)),
                            all_mixes, instrs, warmup, solo, env.jobs);
    double catch3 =
        meanWeightedSpeedup(withCatch(baselineSkx()), all_mixes, instrs,
                            warmup, solo, env.jobs);

    TablePrinter table({"config", "weighted speedup", "vs baseline",
                        "paper"});
    table.addRow({"baseline", formatDouble(base, 3), "-", "-"});
    table.addRow({"NoL2", formatDouble(no_l2, 3),
                  formatPercent(no_l2 / base - 1.0), "-4.05%"});
    table.addRow({"NoL2+CATCH", formatDouble(no_l2_catch, 3),
                  formatPercent(no_l2_catch / base - 1.0), "+8.45%"});
    table.addRow({"CATCH", formatDouble(catch3, 3),
                  formatPercent(catch3 / base - 1.0), "+8.95%"});
    table.print();
    return 0;
}
