/**
 * @file
 * Figure 17: CATCH on the client-style inclusive baseline (256 KB L2 +
 * 8 MB inclusive LLC). Paper geomeans vs that baseline:
 *   NoL2 (8 MB)            -5.74%
 *   NoL2 + CATCH           +6.43%
 *   NoL2 + CATCH + 9MB LLC +7.22%   (L2 area folded into the LLC)
 *   CATCH on the 3-level   +10.29%
 */

#include "bench/bench_common.hh"

using namespace catchsim;

int
main()
{
    banner("Figure 17", "CATCH on the 256KB-L2 / 8MB-inclusive baseline");
    ExperimentEnv env = ExperimentEnv::fromEnvironment();

    SimConfig base = baselineClient();
    auto rb = runSuite(base, env);
    auto rn = runSuite(noL2(base, 8192), env);
    auto rnc = runSuite(withCatch(noL2(base, 8192)), env);
    auto rnc9 = runSuite(withCatch(noL2(base, 9216)), env);
    auto rc = runSuite(withCatch(base), env);

    printCategoryTable(rb, {rn, rnc, rnc9, rc},
                       {"noL2", "noL2+CATCH", "noL2+CATCH+9MB", "CATCH"},
                       {-0.0574, 0.0643, 0.0722, 0.1029});
    return 0;
}
