/**
 * @file
 * Figure 12: per-workload performance ratios over the exclusive-LLC
 * baseline for NoL2+6.5MB, NoL2+9.5MB+CATCH and CATCH-on-baseline.
 *
 * The paper's named observations to check:
 *   - hmmer loses ~40% without the L2; CATCH brings the loss under 5%
 *   - TACT-Feeder lifts mcf from a ~30% loss to a large gain
 *   - namd/gromacs (unprefetchable chases) are not fully recovered
 *   - povray (more critical PCs than the 32-entry table) is limited
 */

#include "bench/bench_common.hh"

using namespace catchsim;

int
main()
{
    banner("Figure 12", "per-workload performance ratios vs baseline");
    ExperimentEnv env = ExperimentEnv::fromEnvironment();

    SimConfig base = baselineSkx();
    auto rb = runSuite(base, env);
    auto r65 = runSuite(noL2(base, 6656), env);
    auto r95c = runSuite(withCatch(noL2(base, 9728)), env);
    auto rc = runSuite(withCatch(base), env);

    TablePrinter table({"workload", "cat", "baseIPC", "NoL2+6.5",
                        "NoL2+9.5+CATCH", "CATCH", "critPCs", "tactPf"});
    for (size_t i = 0; i < rb.size(); ++i) {
        table.addRow({rb[i].workload,
                      categoryName(rb[i].category),
                      formatDouble(rb[i].ipc, 3),
                      formatDouble(r65[i].ipc / rb[i].ipc, 3),
                      formatDouble(r95c[i].ipc / rb[i].ipc, 3),
                      formatDouble(rc[i].ipc / rb[i].ipc, 3),
                      std::to_string(rc[i].activeCriticalPcs),
                      std::to_string(rc[i].hier.tactPrefetches)});
    }
    table.print();
    return 0;
}
