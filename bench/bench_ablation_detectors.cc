/**
 * @file
 * Detector ablation: the paper's DDG-based criticality detection vs a
 * Tune/Subramaniam-style heuristic detector feeding the same
 * critical-load table and the same TACT prefetchers. The paper's
 * Section IV-A claim to check: heuristics "flag many more PCs than are
 * truly critical", which shows up as table churn and lower gains.
 */

#include "bench/bench_common.hh"

using namespace catchsim;

int
main()
{
    banner("Detector ablation", "DDG vs heuristic criticality detection");
    ExperimentEnv env = ExperimentEnv::fromEnvironment();

    auto rb = runSuite(baselineSkx(), env);

    TablePrinter table({"detector", "gain vs baseline", "table insertions",
                        "table evictions (churn)"});
    for (DetectorKind kind : {DetectorKind::Ddg, DetectorKind::Heuristic}) {
        SimConfig cfg = withCatch(baselineSkx());
        cfg.criticality.kind = kind;
        cfg.name = kind == DetectorKind::Ddg ? "catch-ddg"
                                             : "catch-heuristic";
        auto rs = runSuite(cfg, env);
        double ins = sumOver(rs, [](const SimResult &r) {
            return r.criticalTable.insertions;
        });
        double ev = sumOver(rs, [](const SimResult &r) {
            return r.criticalTable.evictions;
        });
        table.addRow({cfg.name,
                      formatPercent(overallGeomean(rb, rs) - 1.0),
                      formatDouble(ins, 0), formatDouble(ev, 0)});
    }
    table.print();
    std::printf("\npaper (Section IV-A): heuristics flag many more PCs "
                "than are truly critical;\nthe DDG detector needs only "
                "~3 KB and feeds a stable 32-entry table.\n");
    return 0;
}
