/**
 * @file
 * Figure 15: sensitivity of the no-L2 configurations to LLC latency
 * (+6 and +12 cycles, as in longer-interconnect server parts).
 * Paper: NoL2+6.5MB degrades -7.79% -> -9.71% -> -11.50%;
 *        NoL2+9.5MB+CATCH degrades +7.23% -> +5.42% -> +3.71%.
 * Shape: each 6 LLC cycles costs the no-L2 configs about 2%.
 */

#include "bench/bench_common.hh"

using namespace catchsim;

int
main()
{
    banner("Figure 15", "sensitivity to LLC hit latency");
    ExperimentEnv env = ExperimentEnv::fromEnvironment();

    auto rb = runSuite(baselineSkx(), env);

    const double paper_no_l2[3] = {-0.0779, -0.0971, -0.1150};
    const double paper_catch[3] = {0.0723, 0.0542, 0.0371};

    TablePrinter table({"config", "LLC+0", "LLC+6", "LLC+12",
                        "paper(+0/+6/+12)"});
    for (int variant = 0; variant < 2; ++variant) {
        bool with_catch = variant == 1;
        std::vector<std::string> row = {
            with_catch ? "NoL2+9.5MB+CATCH" : "NoL2+6.5MB"};
        for (uint32_t add : {0u, 6u, 12u}) {
            SimConfig cfg = with_catch
                                ? withCatch(noL2(baselineSkx(), 9728))
                                : noL2(baselineSkx(), 6656);
            cfg.name += "+llc" + std::to_string(add);
            cfg.oracle.latAddLlc = add;
            auto rs = runSuite(cfg, env);
            row.push_back(formatPercent(overallGeomean(rb, rs) - 1.0));
        }
        const double *paper = with_catch ? paper_catch : paper_no_l2;
        row.push_back(formatPercent(paper[0]) + " / " +
                      formatPercent(paper[1]) + " / " +
                      formatPercent(paper[2]));
        table.addRow(row);
    }
    table.print();
    return 0;
}
