/**
 * @file
 * Figure 11: timeliness of the inter-cache TACT prefetches, measured on
 * the two-level CATCH configuration (NoL2 + 9.5 MB LLC + CATCH).
 * Paper: ~88% of TACT prefetches are served by the LLC, and >85% of
 * those save more than 80% of the LLC hit latency for the subsequent
 * critical load. Prefetch fills into the L1 rise by only ~9%.
 */

#include "bench/bench_common.hh"

using namespace catchsim;

int
main()
{
    banner("Figure 11", "timeliness of inter-cache TACT prefetching");
    ExperimentEnv env = ExperimentEnv::fromEnvironment();

    auto rs = runSuite(withCatch(noL2(baselineSkx(), 9728)), env);

    // Per-category aggregates, as the paper plots.
    std::map<Category, std::array<double, 5>> agg; // sums per category
    std::array<double, 5> total{};
    for (const auto &r : rs) {
        uint64_t located = r.hier.tactPfFromL2 + r.hier.tactPfFromLlc +
                           r.hier.tactPfFromMem;
        auto &a = agg[r.category];
        a[0] += static_cast<double>(r.hier.tactPfFromLlc);
        a[1] += static_cast<double>(located);
        a[2] += r.timelinessAtLeast80 *
                static_cast<double>(r.hier.tactUsefulHits);
        a[3] += r.timelinessAtLeast10 *
                static_cast<double>(r.hier.tactUsefulHits);
        a[4] += static_cast<double>(r.hier.tactUsefulHits);
        for (int k = 0; k < 5; ++k)
            total[k] += a[k] - (agg[r.category][k] - a[k]) * 0;
    }
    total = {};
    for (auto &[cat, a] : agg)
        for (int k = 0; k < 5; ++k)
            total[k] += a[k];

    TablePrinter table({"category", "%TACT pf from LLC",
                        "%saving >=80% LLC lat", "%saving >=10%"});
    auto row = [&](const std::string &name,
                   const std::array<double, 5> &a) {
        table.addRow({name,
                      a[1] ? formatPercent(a[0] / a[1]) : "n/a",
                      a[4] ? formatPercent(a[2] / a[4]) : "n/a",
                      a[4] ? formatPercent(a[3] / a[4]) : "n/a"});
    };
    for (auto &[cat, a] : agg)
        row(categoryName(cat), a);
    row("ALL", total);
    table.addRow({"paper (ALL)", "~88%", ">85%", "~95%"});
    table.print();
    return 0;
}
