/**
 * @file
 * Shared helpers for the figure-reproduction benches: each bench prints
 * its table with the paper's published number next to ours so the shape
 * comparison is immediate.
 */

#ifndef CATCHSIM_BENCH_BENCH_COMMON_HH_
#define CATCHSIM_BENCH_BENCH_COMMON_HH_

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "sim/configs.hh"
#include "sim/experiment.hh"
#include "sim/simulator.hh"

namespace catchsim
{

/** Prints the standard bench banner. */
inline void
banner(const char *fig, const char *what)
{
    std::printf("==============================================================\n");
    std::printf("%s: %s\n", fig, what);
    std::printf("==============================================================\n");
}

/**
 * Prints per-category + overall geomean speedups of each test suite over
 * the base suite, one column per config, with a paper row underneath.
 */
inline void
printCategoryTable(const std::vector<SimResult> &base,
                   const std::vector<std::vector<SimResult>> &tests,
                   const std::vector<std::string> &test_names,
                   const std::vector<double> &paper_geomeans)
{
    std::vector<std::string> header = {"category"};
    for (const auto &n : test_names)
        header.push_back(n);
    TablePrinter table(header);

    // Rows: one per category + GeoMean.
    auto first = categoryGeomeans(base, tests[0]);
    for (size_t row = 0; row < first.size(); ++row) {
        std::vector<std::string> cells = {first[row].first};
        for (const auto &t : tests) {
            auto g = categoryGeomeans(base, t);
            cells.push_back(formatPercent(g[row].second - 1.0));
        }
        table.addRow(cells);
    }
    if (!paper_geomeans.empty()) {
        std::vector<std::string> cells = {"paper GeoMean"};
        for (double p : paper_geomeans)
            cells.push_back(formatPercent(p));
        table.addRow(cells);
    }
    table.print();
}

} // namespace catchsim

#endif // CATCHSIM_BENCH_BENCH_COMMON_HH_
