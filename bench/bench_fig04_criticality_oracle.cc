/**
 * @file
 * Figure 4: the criticality demotion oracles. For each boundary, serve
 * either ALL hits or only NON-CRITICAL hits (per the hardware detector)
 * at the next level's latency, and report the perf impact plus the
 * fraction of loads converted. Paper:
 *   L1 hits at L2 latency:   ALL -16.07%, non-critical -4.86% (49.15%)
 *   L2 hits at LLC latency:  ALL -7.79%,  non-critical -0.76% (39.63%)
 *   LLC hits at mem latency: ALL -7.01%,  non-critical -1.17% (33.02%)
 * Shape: demoting non-critical L2 hits is nearly free; the L1 is not.
 */

#include "bench/bench_common.hh"

using namespace catchsim;

int
main()
{
    banner("Figure 4", "impact of increasing non-critical load latency");
    ExperimentEnv env = ExperimentEnv::fromEnvironment();

    SimConfig base = baselineSkx();
    auto rb = runSuite(base, env);

    struct Case
    {
        const char *name;
        DemoteMode mode;
        bool needs_detector;
        double paper;
    };
    const Case cases[] = {
        {"L1->L2 ALL", DemoteMode::L1ToL2All, false, -0.1607},
        {"L1->L2 NonCritical", DemoteMode::L1ToL2NonCrit, true, -0.0486},
        {"L2->LLC ALL", DemoteMode::L2ToLlcAll, false, -0.0779},
        {"L2->LLC NonCritical", DemoteMode::L2ToLlcNonCrit, true,
         -0.0076},
        {"LLC->Mem ALL", DemoteMode::LlcToMemAll, false, -0.0701},
        {"LLC->Mem NonCritical", DemoteMode::LlcToMemNonCrit, true,
         -0.0117},
    };

    TablePrinter table({"oracle", "perf impact", "% loads converted",
                        "paper impact"});
    for (const Case &c : cases) {
        SimConfig cfg = base;
        cfg.name = c.name;
        cfg.oracle.demote = c.mode;
        if (c.needs_detector)
            cfg.criticality.enabled = true;
        auto rs = runSuite(cfg, env);
        double converted =
            sumOver(rs, [](const SimResult &r) {
                return r.hier.demotedLoads;
            }) /
            sumOver(rs, [](const SimResult &r) { return r.hier.loads; });
        table.addRow({c.name,
                      formatPercent(overallGeomean(rb, rs) - 1.0),
                      formatPercent(converted),
                      formatPercent(c.paper)});
    }
    table.print();
    return 0;
}
