/**
 * @file
 * google-benchmark microbenchmarks for the hot simulator structures:
 * cache lookup/fill, DDG retirement, critical-table queries, branch
 * prediction, DRAM access, issue-calendar scheduling and end-to-end
 * simulation throughput.
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "common/issue_calendar.hh"
#include "common/rng.hh"
#include "core/branch_predictor.hh"
#include "criticality/ddg.hh"
#include "dram/dram.hh"
#include "sim/configs.hh"
#include "sim/simulator.hh"

using namespace catchsim;

static void
BM_CacheLookupHit(benchmark::State &state)
{
    Cache c("bm", CacheGeometry{32 * 1024, 8, 5}, ReplKind::Lru, 1);
    for (Addr a = 0; a < 32 * 1024; a += 64)
        c.fill(a, false, 0, FillSource::Demand);
    Rng rng(1);
    for (auto _ : state) {
        Addr a = (rng.next() % 512) * 64;
        benchmark::DoNotOptimize(c.lookup(a, true));
    }
}
BENCHMARK(BM_CacheLookupHit);

static void
BM_CacheFillEvict(benchmark::State &state)
{
    Cache c("bm", CacheGeometry{32 * 1024, 8, 5}, ReplKind::Lru, 1);
    Rng rng(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            c.fill((rng.next() % 65536) * 64, false, 0,
                   FillSource::Demand));
}
BENCHMARK(BM_CacheFillEvict);

static void
BM_DdgRetire(benchmark::State &state)
{
    CriticalityConfig cfg;
    cfg.enabled = true;
    DdgCriticalityDetector det(cfg, 224, 2, 14, 4);
    Rng rng(3);
    SeqNum seq = 0;
    Cycle t = 0;
    for (auto _ : state) {
        RetireInfo ri;
        ri.seq = ++seq;
        ri.pc = 0x400000 + (rng.next() % 64) * 4;
        ri.cls = (seq % 3) ? OpClass::Alu : OpClass::Load;
        ri.servedBy = (seq % 9) ? Level::L1 : Level::L2;
        ri.allocCycle = t;
        ri.execStart = t + 2;
        ri.execDone = t + 2 + (seq % 5 ? 1 : 16);
        ri.retireCycle = ri.execDone + 1;
        ri.srcSeq[0] = seq > 4 ? seq - 3 : 0;
        det.onRetire(ri);
        ++t;
    }
}
BENCHMARK(BM_DdgRetire);

static void
BM_CriticalTableQuery(benchmark::State &state)
{
    CriticalityConfig cfg;
    CriticalTable table(cfg);
    for (Addr pc = 0; pc < 32; ++pc)
        for (int i = 0; i < 4; ++i)
            table.record(0x400000 + pc * 4);
    Rng rng(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            table.isCritical(0x400000 + (rng.next() % 64) * 4));
}
BENCHMARK(BM_CriticalTableQuery);

static void
BM_BranchPredict(benchmark::State &state)
{
    BranchPredictor bp;
    Rng rng(5);
    MicroOp op;
    op.cls = OpClass::Branch;
    for (auto _ : state) {
        op.pc = 0x400000 + (rng.next() % 256) * 4;
        op.taken = rng.percent(70);
        op.target = 0x500000;
        benchmark::DoNotOptimize(bp.predictAndTrain(op));
    }
}
BENCHMARK(BM_BranchPredict);

static void
BM_DramRead(benchmark::State &state)
{
    Dram dram(DramConfig{});
    Rng rng(6);
    Cycle t = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(dram.read(rng.next() % (1 << 28), t));
        t += 20;
    }
}
BENCHMARK(BM_DramRead);

static void
BM_IssueCalendar(benchmark::State &state)
{
    IssueCalendar cal(3);
    Cycle t = 0;
    Rng rng(7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(cal.schedule(t + rng.next() % 64));
        ++t;
    }
}
BENCHMARK(BM_IssueCalendar);

/** End-to-end simulated instructions per second (hmmer, baseline). */
static void
BM_SimulatorThroughput(benchmark::State &state)
{
    for (auto _ : state) {
        SimResult r = runWorkload(baselineSkx(), "hmmer", 50000, 10000);
        benchmark::DoNotOptimize(r.ipc);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                            60000);
}
BENCHMARK(BM_SimulatorThroughput)->Unit(benchmark::kMillisecond);

