/**
 * @file
 * Table I and Figure 9: area of the criticality-detection hardware
 * (~3 KB) and of the TACT structures (~1.2 KB), plus the chip-level
 * area model used by the iso-area configurations.
 */

#include "bench/bench_common.hh"
#include "criticality/area_model.hh"
#include "power/power_model.hh"

using namespace catchsim;

int
main()
{
    banner("Table I / Fig 9", "hardware area budgets");

    CriticalityConfig ccfg;
    TablePrinter ddg({"DDG component", "bytes"});
    double ddg_total = 0;
    for (const auto &item : ddgAreaBudget(ccfg, 224)) {
        ddg.addRow({item.name, formatDouble(item.bytes, 0)});
        ddg_total += item.bytes;
    }
    ddg.addRow({"TOTAL (paper: ~3 KB)", formatDouble(ddg_total, 0)});
    ddg.print();
    std::printf("  bits per graph row: %u (E-C 5b, E-E 36b, E-D 1b)\n\n",
                ddgBitsPerRow(ccfg));

    TactConfig tcfg;
    TablePrinter tact({"TACT structure", "bytes"});
    double tact_total = 0;
    for (const auto &item : tactAreaBudget(tcfg, 32, 16)) {
        tact.addRow({item.name, formatDouble(item.bytes, 0)});
        tact_total += item.bytes;
    }
    tact.addRow({"TOTAL (paper: ~1.2 KB)", formatDouble(tact_total, 0)});
    tact.print();

    std::printf("\nchip area model (4 cores):\n");
    AreaParams ap;
    TablePrinter chip({"configuration", "tile mm^2", "cache mm^2",
                       "cache vs baseline"});
    SimConfig base = baselineSkx();
    double cache_base = cacheAreaMm2(ap, base, 4);
    for (const auto &cfg :
         {base, noL2(base, 6656), noL2(base, 9728)}) {
        chip.addRow({cfg.name,
                     formatDouble(chipAreaMm2(ap, cfg, 4), 1),
                     formatDouble(cacheAreaMm2(ap, cfg, 4), 1),
                     formatPercent(cacheAreaMm2(ap, cfg, 4) / cache_base -
                                   1.0)});
    }
    chip.print();
    std::printf("  (paper: the NoL2+6.5MB configuration is ~30%% lower"
                " area)\n");
    return 0;
}
