/**
 * @file
 * Host-throughput harness for the simulator itself: how many simulated
 * kilo-instructions per wall-clock second does each (workload, config)
 * pair sustain, and how much memory does the process need?
 *
 * This is NOT a paper figure — it measures the simulator as a program,
 * so the streamed-trace pipeline's speedup/footprint claims in
 * docs/PERFORMANCE.md are reproducible numbers, and CI can catch a
 * throughput regression (tools/ci/check_perf.py).
 *
 * Method: for every workload x config cell, one untimed warm rep
 * (faults in page tables, branch-predictor arrays, the allocator), then
 * N timed reps; the reported figure is the median kilo-instrs/sec over
 * the timed reps. In both modes the numerator is the instructions the
 * run *advances through the trace* (instrs + warmup): a sampled run
 * consumes the same trace span as a detailed one, it just spends most
 * of it in functional warming, so the two modes' kinstr/s figures are
 * directly comparable host-throughput numbers.
 *
 * Peak RSS (ru_maxrss) is process-wide and monotone, so the absolute
 * value sampled after a cell is the campaign-cumulative peak, NOT that
 * cell's footprint. Cells are sampled in declaration order; the final
 * cell's peak_rss_bytes is the campaign peak, and each cell also
 * reports peak_rss_delta_bytes — how much the process peak grew while
 * that cell ran (0 for cells that fit inside an earlier high-water
 * mark).
 *
 * Usage:
 *   bench_perf [--out=FILE] [--reps=N] [--instr=N] [--warmup=N]
 *              [--mode=detailed|sampled] [--store=off|cold|warm]
 *              [--warm-state=off|cold|warm] [--warm-windows=on|off]
 *              [--sample-interval=N] [--quick]
 *
 * --store measures the memoized-generation pipeline (trace/chunk_store):
 * "cold" gives every timed rep a fresh empty store (pays generation plus
 * store bookkeeping), "warm" shares one store across the untimed warm
 * rep and the timed reps so every refill is a memory-tier hit. The
 * simulated results are bitwise-identical in all three settings (pinned
 * by tests/chunk_store_test.cc); only host throughput moves. The cold
 * and warm documents together bound the memoization ceiling in
 * docs/PERFORMANCE.md.
 *
 * --warm-state measures the warmed-state snapshot store on top
 * (sim/warm_state.hh; requires --store != off, since stream restore
 * re-fetches its ring window through the chunk store): "cold" hands
 * every timed rep a fresh empty store, so it pays functional warming
 * plus snapshot serialization and publication — the memoization
 * overhead bound; "warm" shares one store across the untimed warm rep
 * and the timed reps, so every timed rep restores the global-warmup
 * state instead of re-deriving it. Only --mode=sampled runs have a
 * functional-warming phase to skip; under --mode=detailed the knob is
 * accepted but changes nothing. Results stay bitwise-identical in all
 * settings (pinned by tests/warm_state_test.cc).
 *
 * --warm-windows toggles the store's per-window mode (default on):
 * "on" consults and publishes at every sampling-window boundary — the
 * phase-2 store — so a warm rep fast-forwards snapshot to snapshot and
 * executes only detailed windows; "off" reproduces the phase-1 store
 * (global-warmup boundary only) for A/B measurement. The store's
 * profitability gates stay at their defaults, so cells whose schedule
 * slack sits under CATCH_WARM_STATE_MIN_GAP (the 20k-instr default
 * schedule) or whose page map exceeds CATCH_WARM_STATE_MAX_PAGES
 * (hpc.stream) report zero window traffic by design — the bench
 * measures the shipped policy, not an ungated one. --sample-interval
 * overrides SamplingConfig::intervalInstrs for every sampled cell, and
 * warm-state runs add a "-longwarm" config variant (interval 100000)
 * whose cells spend nearly all their trace span in warming — the regime
 * the window-boundary snapshots target. Warm-state cells also report a
 * per-cell "warm_state" object (hits/misses/bytes, global and window,
 * summed over the timed reps) so check_perf.py --warm-state can report
 * per-window hit rates alongside the speedups.
 *
 * Writes a JSON document (default BENCH_PERF.json) of the shape
 * check_perf.py consumes:
 *   {"instrs":..., "warmup":..., "reps":..., "mode":"detailed",
 *    "results":[{"workload","config","kips_median","kips":[...],
 *                "peak_rss_bytes","peak_rss_delta_bytes"}, ...],
 *    "median_kips_overall":...}
 *
 * --mode=sampled runs the same cells under SampleMode::Sampled (the
 * SamplingConfig defaults) and stamps "mode":"sampled"; check_perf.py
 * --sampled pairs the two documents up to report the sampled-over-
 * detailed speedup per cell.
 *
 * Historical note: through the streamed-pipeline baseline capture
 * (BENCH_PERF_BASELINE.json) this file was restricted to APIs that
 * predate that pipeline so it compiled against the old tree. The
 * baseline is captured; --mode=sampled now uses SamplingConfig, which
 * only exists in the current tree.
 */

#include <sys/resource.h>
#include <time.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "sim/configs.hh"
#include "sim/simulator.hh"
#include "sim/warm_state.hh"
#include "trace/chunk_store.hh"
#include "trace/suite.hh"

using namespace catchsim;

namespace
{

double
wallSeconds()
{
    timespec ts{};
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
}

uint64_t
processPeakRssBytes()
{
    rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    return static_cast<uint64_t>(ru.ru_maxrss) * 1024;
}

struct Cell
{
    std::string workload;
    std::string config;
    std::vector<double> kips;
    double kipsMedian = 0;
    uint64_t peakRssBytes = 0;      ///< campaign-cumulative process peak
    uint64_t peakRssDeltaBytes = 0; ///< peak growth while this cell ran
    /** Warm-state traffic summed over the timed reps (only filled —
     *  and only exported — when --warm-state != off). */
    RunProfile warm;
};

double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    size_t n = v.size();
    return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/** One timed rep: a fresh Simulator + workload, full warmup+measure.
 *  When @p prof is non-null the run is guarded (unlimited budget — the
 *  watchdog only observes, results stay bitwise-identical) so the
 *  warm-state counters are attributable to this rep. */
double
timedRep(const SimConfig &cfg, const std::string &name, uint64_t instrs,
         uint64_t warmup, ChunkStore *store = nullptr,
         WarmStateStore *warm_state = nullptr, RunProfile *prof = nullptr)
{
    auto wl = makeWorkload(name);
    Simulator sim(cfg, TraceMode::Streamed, store, warm_state);
    double t0 = wallSeconds();
    SimResult r;
    if (prof) {
        auto guarded = sim.runGuarded(*wl, instrs, warmup,
                                      RunBudget::unlimited(), prof);
        if (!guarded.ok()) {
            std::fprintf(stderr, "bench_perf: %s failed: %s\n",
                         name.c_str(),
                         guarded.error().message.c_str());
            std::exit(1);
        }
        r = std::move(guarded).value();
    } else {
        r = sim.run(*wl, instrs, warmup);
    }
    double sec = wallSeconds() - t0;
    if (cfg.sampling.sampled()) {
        // A sampled run reports only the measured-window instructions
        // in core.instrs; what it must have done is produce windows and
        // carry the sampled marker.
        if (!r.sampled || r.sample.windows == 0) {
            std::fprintf(stderr,
                         "bench_perf: %s sampled run produced no "
                         "windows\n",
                         name.c_str());
            std::exit(1);
        }
    } else if (r.core.instrs != instrs) {
        std::fprintf(stderr, "bench_perf: %s ran %llu instrs, wanted "
                             "%llu\n",
                     name.c_str(),
                     static_cast<unsigned long long>(r.core.instrs),
                     static_cast<unsigned long long>(instrs));
        std::exit(1);
    }
    double simulated = static_cast<double>(instrs + warmup);
    return simulated / sec / 1000.0;
}

void
appendJsonDouble(std::string &out, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += buf;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_PERF.json";
    unsigned reps = 5;
    uint64_t instrs = 300000, warmup = 100000;
    bool quick = false;
    bool sampled = false;
    std::string store_mode = "off";
    std::string warm_state_mode = "off";
    bool warm_windows = true;
    uint64_t sample_interval = 0; // 0 = SamplingConfig default

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&arg]() {
            return arg.substr(arg.find('=') + 1);
        };
        if (arg.rfind("--out=", 0) == 0) {
            out_path = value();
        } else if (arg.rfind("--reps=", 0) == 0) {
            long v = std::strtol(value().c_str(), nullptr, 10);
            reps = v >= 1 ? static_cast<unsigned>(v) : 1;
        } else if (arg.rfind("--instr=", 0) == 0) {
            instrs = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg.rfind("--warmup=", 0) == 0) {
            warmup = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg.rfind("--mode=", 0) == 0) {
            std::string v = value();
            if (v == "sampled") {
                sampled = true;
            } else if (v != "detailed") {
                std::fprintf(stderr,
                             "bench_perf: --mode must be detailed or "
                             "sampled\n");
                return 2;
            }
        } else if (arg.rfind("--store=", 0) == 0) {
            store_mode = value();
            if (store_mode != "off" && store_mode != "cold" &&
                store_mode != "warm") {
                std::fprintf(stderr, "bench_perf: --store must be off, "
                                     "cold, or warm\n");
                return 2;
            }
        } else if (arg.rfind("--warm-state=", 0) == 0) {
            warm_state_mode = value();
            if (warm_state_mode != "off" && warm_state_mode != "cold" &&
                warm_state_mode != "warm") {
                std::fprintf(stderr, "bench_perf: --warm-state must be "
                                     "off, cold, or warm\n");
                return 2;
            }
        } else if (arg.rfind("--warm-windows=", 0) == 0) {
            std::string v = value();
            if (v == "on") {
                warm_windows = true;
            } else if (v == "off") {
                warm_windows = false;
            } else {
                std::fprintf(stderr, "bench_perf: --warm-windows must "
                                     "be on or off\n");
                return 2;
            }
        } else if (arg.rfind("--sample-interval=", 0) == 0) {
            sample_interval = std::strtoull(value().c_str(), nullptr, 10);
            if (sample_interval == 0) {
                std::fprintf(stderr, "bench_perf: --sample-interval "
                                     "must be positive\n");
                return 2;
            }
        } else if (arg == "--quick") {
            quick = true;
        } else {
            std::fprintf(stderr,
                         "usage: bench_perf [--out=FILE] [--reps=N] "
                         "[--instr=N] [--warmup=N] "
                         "[--mode=detailed|sampled] "
                         "[--store=off|cold|warm] "
                         "[--warm-state=off|cold|warm] "
                         "[--warm-windows=on|off] "
                         "[--sample-interval=N] [--quick]\n");
            return 2;
        }
    }
    if (warm_state_mode != "off" && store_mode == "off") {
        std::fprintf(stderr, "bench_perf: --warm-state requires "
                             "--store=cold or --store=warm (the stream "
                             "restore path re-fetches chunks through "
                             "the chunk store)\n");
        return 2;
    }
    if (quick) {
        instrs = std::min<uint64_t>(instrs, 60000);
        warmup = std::min<uint64_t>(warmup, 20000);
        reps = std::min(reps, 3u);
    }

    // One kernel per family the paper's suite stresses differently:
    // pointer-chasing, discrete-event, streaming HPC, branchy, compute.
    const std::vector<std::string> workloads = {
        "mcf", "omnetpp", "hpc.stream", "gobmk", "hmmer",
    };
    std::vector<SimConfig> configs = {
        baselineSkx(),
        withCatch(baselineSkx()),
    };
    if (sampled) {
        for (SimConfig &cfg : configs) {
            cfg.sampling.mode = SampleMode::Sampled;
            if (sample_interval)
                cfg.sampling.intervalInstrs = sample_interval;
        }
        // Long-warming regime: with a 100k interval nearly the whole
        // trace span is functional warming, which is exactly what the
        // window-boundary snapshots memoize — the cell that separates
        // phase 2 from phase 1.
        if (warm_state_mode != "off") {
            SimConfig lw = withCatch(baselineSkx());
            lw.sampling.mode = SampleMode::Sampled;
            lw.sampling.intervalInstrs = 100000;
            lw.name += "-longwarm";
            configs.push_back(lw);
        }
    }

    std::vector<Cell> cells;
    uint64_t rss_before = processPeakRssBytes();
    for (const SimConfig &cfg : configs) {
        for (const std::string &name : workloads) {
            Cell cell;
            cell.workload = name;
            cell.config = cfg.name;
            // Memory-tier-only stores: "warm" shares one store across
            // the cell so the untimed warm rep populates it and every
            // timed rep is served from it; "cold" hands each timed rep
            // a fresh empty store, so it pays generation plus store
            // bookkeeping — the honest memoization overhead bound.
            std::unique_ptr<ChunkStore> warm_store;
            if (store_mode == "warm")
                warm_store = std::make_unique<ChunkStore>();
            // Same sharing discipline for the warmed-state store: the
            // untimed warm rep publishes the snapshots a "warm" cell's
            // timed reps restore. --warm-windows picks between the
            // phase-2 (per-window) and phase-1 (global-only) store.
            WarmStateStore::Config wcfg;
            wcfg.perWindow = warm_windows;
            std::unique_ptr<WarmStateStore> warm_state_store;
            if (warm_state_mode == "warm")
                warm_state_store = std::make_unique<WarmStateStore>(wcfg);
            timedRep(cfg, name, instrs, warmup, warm_store.get(),
                     warm_state_store.get()); // warm, untimed
            for (unsigned r = 0; r < reps; ++r) {
                std::unique_ptr<ChunkStore> cold_store;
                if (store_mode == "cold")
                    cold_store = std::make_unique<ChunkStore>();
                ChunkStore *store = store_mode == "warm"
                                        ? warm_store.get()
                                        : cold_store.get();
                std::unique_ptr<WarmStateStore> cold_state_store;
                if (warm_state_mode == "cold")
                    cold_state_store =
                        std::make_unique<WarmStateStore>(wcfg);
                WarmStateStore *wstate =
                    warm_state_mode == "warm" ? warm_state_store.get()
                                              : cold_state_store.get();
                RunProfile rep_prof;
                RunProfile *prof =
                    warm_state_mode != "off" ? &rep_prof : nullptr;
                cell.kips.push_back(timedRep(cfg, name, instrs, warmup,
                                             store, wstate, prof));
                if (prof) {
                    cell.warm.warmStateHits += prof->warmStateHits;
                    cell.warm.warmStateMisses += prof->warmStateMisses;
                    cell.warm.warmStateBytes += prof->warmStateBytes;
                    cell.warm.warmStateWindowHits +=
                        prof->warmStateWindowHits;
                    cell.warm.warmStateWindowMisses +=
                        prof->warmStateWindowMisses;
                    cell.warm.warmStateWindowBytes +=
                        prof->warmStateWindowBytes;
                }
            }
            cell.kipsMedian = median(cell.kips);
            cell.peakRssBytes = processPeakRssBytes();
            cell.peakRssDeltaBytes = cell.peakRssBytes - rss_before;
            rss_before = cell.peakRssBytes;
            std::printf("%-12s %-28s %10.1f kinstr/s  "
                        "(rss %.1f MB, +%.1f MB)\n",
                        cell.workload.c_str(), cell.config.c_str(),
                        cell.kipsMedian,
                        static_cast<double>(cell.peakRssBytes) /
                            (1024.0 * 1024.0),
                        static_cast<double>(cell.peakRssDeltaBytes) /
                            (1024.0 * 1024.0));
            std::fflush(stdout);
            cells.push_back(std::move(cell));
        }
    }

    std::vector<double> medians;
    for (const Cell &c : cells)
        medians.push_back(c.kipsMedian);
    double overall = median(medians);
    std::printf("%-12s %-28s %10.1f kinstr/s\n", "overall", "median",
                overall);

    std::string doc = "{\"instrs\": " + std::to_string(instrs) +
                      ", \"warmup\": " + std::to_string(warmup) +
                      ", \"reps\": " + std::to_string(reps) +
                      ", \"mode\": \"" +
                      (sampled ? "sampled" : "detailed") +
                      "\", \"store\": \"" + store_mode +
                      "\", \"warm_state\": \"" + warm_state_mode +
                      "\", \"warm_windows\": \"" +
                      (warm_windows ? "on" : "off") +
                      "\", \"sample_interval\": " +
                      std::to_string(sample_interval) +
                      ", \"results\": [\n";
    for (size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        doc += "{\"workload\": \"" + c.workload + "\", \"config\": \"" +
               c.config + "\", \"kips_median\": ";
        appendJsonDouble(doc, c.kipsMedian);
        doc += ", \"kips\": [";
        for (size_t k = 0; k < c.kips.size(); ++k) {
            if (k)
                doc += ", ";
            appendJsonDouble(doc, c.kips[k]);
        }
        doc += "], \"peak_rss_bytes\": " + std::to_string(c.peakRssBytes)
               + ", \"peak_rss_delta_bytes\": " +
               std::to_string(c.peakRssDeltaBytes);
        if (warm_state_mode != "off") {
            doc += ", \"warm_state\": {\"hits\": " +
                   std::to_string(c.warm.warmStateHits) +
                   ", \"misses\": " +
                   std::to_string(c.warm.warmStateMisses) +
                   ", \"bytes\": " +
                   std::to_string(c.warm.warmStateBytes) +
                   ", \"window_hits\": " +
                   std::to_string(c.warm.warmStateWindowHits) +
                   ", \"window_misses\": " +
                   std::to_string(c.warm.warmStateWindowMisses) +
                   ", \"window_bytes\": " +
                   std::to_string(c.warm.warmStateWindowBytes) + "}";
        }
        doc += "}";
        doc += i + 1 < cells.size() ? ",\n" : "\n";
    }
    doc += "], \"median_kips_overall\": ";
    appendJsonDouble(doc, overall);
    doc += "}\n";

    std::FILE *f = std::fopen(out_path.c_str(), "wb");
    if (!f || std::fwrite(doc.data(), 1, doc.size(), f) != doc.size() ||
        std::fclose(f) != 0) {
        std::fprintf(stderr, "bench_perf: cannot write %s\n",
                     out_path.c_str());
        return 1;
    }
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
    return 0;
}
