/**
 * @file
 * Figure 16 (and the Section VI-E analysis): energy of the two-level
 * CATCH hierarchy (NoL2 + 9.5 MB LLC) vs the three-level baseline.
 * Paper: ~11% average energy savings, with ~37% lower cache traffic,
 * ~22% lower memory traffic, and several-fold more interconnect traffic.
 */

#include "bench/bench_common.hh"

using namespace catchsim;

int
main()
{
    banner("Figure 16", "energy of two-level CATCH vs 3-level baseline");
    ExperimentEnv env = ExperimentEnv::fromEnvironment();

    auto rb = runSuite(baselineSkx(), env);
    auto rc = runSuite(withCatch(noL2(baselineSkx(), 9728)), env);

    auto cache_ops = [](const SimResult &r) {
        uint64_t ops = r.l1d.readOps + r.l1d.writeOps + r.l1i.readOps +
                       r.l1i.writeOps + r.llc.readOps + r.llc.writeOps;
        if (r.hasL2)
            ops += r.l2.readOps + r.l2.writeOps;
        return ops;
    };

    TablePrinter table({"metric", "3-level base", "2-level CATCH",
                        "delta", "paper"});
    double eb = sumOver(rb, [](const SimResult &r) {
        return r.energy.total();
    });
    double ec = sumOver(rc, [](const SimResult &r) {
        return r.energy.total();
    });
    table.addRow({"energy (mJ, suite total)", formatDouble(eb, 1),
                  formatDouble(ec, 1), formatPercent(ec / eb - 1.0),
                  "-10.87%"});
    double cb = sumOver(rb, cache_ops), cc = sumOver(rc, cache_ops);
    table.addRow({"cache traffic (ops)", formatDouble(cb, 0),
                  formatDouble(cc, 0), formatPercent(cc / cb - 1.0),
                  "-37%"});
    double mb = sumOver(rb, [](const SimResult &r) {
        return r.hier.memTransfers;
    });
    double mc = sumOver(rc, [](const SimResult &r) {
        return r.hier.memTransfers;
    });
    table.addRow({"memory traffic (64B)", formatDouble(mb, 0),
                  formatDouble(mc, 0), formatPercent(mc / mb - 1.0),
                  "-22%"});
    double ib = sumOver(rb, [](const SimResult &r) {
        return r.hier.ringTransfers;
    });
    double ic = sumOver(rc, [](const SimResult &r) {
        return r.hier.ringTransfers;
    });
    table.addRow({"interconnect traffic (64B)", formatDouble(ib, 0),
                  formatDouble(ic, 0),
                  "x" + formatDouble(ic / ib, 2), "~x5"});
    table.print();

    std::printf("\nper-category energy savings of two-level CATCH:\n");
    TablePrinter cats({"category", "energy delta", "paper"});
    std::map<Category, std::pair<double, double>> acc;
    for (size_t i = 0; i < rb.size(); ++i) {
        acc[rb[i].category].first += rb[i].energy.total();
        acc[rb[i].category].second += rc[i].energy.total();
    }
    const std::map<Category, const char *> paper = {
        {Category::Client, "-19.01%"}, {Category::Fspec, "-14.36%"},
        {Category::Hpc, "-5.88%"},     {Category::Ispec, "-10.15%"},
        {Category::Server, "-10.62%"},
    };
    for (auto &[cat, totals] : acc)
        cats.addRow({categoryName(cat),
                     formatPercent(totals.second / totals.first - 1.0),
                     paper.at(cat)});
    cats.print();
    return 0;
}
