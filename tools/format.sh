#!/usr/bin/env bash
# clang-format driver for the catchsim analysis gate.
#
# The formatted scope is tools/format_scope.txt — files are added as
# other work (tidy sweeps, refactors) touches them, so the tree
# converges on .clang-format without a single whole-repo churn commit.
#
# Usage:
#   tools/format.sh            rewrite the scoped files in place
#   tools/format.sh --check    exit 1 if any scoped file needs changes
#   tools/format.sh [--check] FILES...   operate on FILES instead
#
# Exits 0 with a notice when clang-format is unavailable: the gate is
# enforced by the CI format-check job, which always installs it.
set -u

MODE=fix
FILES=()
while [ $# -gt 0 ]; do
    case "$1" in
        --check) MODE=check; shift ;;
        -h|--help) sed -n '2,13p' "$0"; exit 0 ;;
        *) FILES+=("$1"); shift ;;
    esac
done

cd "$(dirname "$0")/.." || exit 2

CF=${CLANG_FORMAT:-}
if [ -z "$CF" ]; then
    for cand in clang-format clang-format-19 clang-format-18 \
                clang-format-17 clang-format-16 clang-format-15 \
                clang-format-14; do
        if command -v "$cand" > /dev/null 2>&1; then
            CF=$cand
            break
        fi
    done
fi
if [ -z "$CF" ]; then
    echo "format.sh: clang-format not found; skipping (CI enforces the" \
         "format gate — install clang-format to run it locally)" >&2
    exit 0
fi

if [ ${#FILES[@]} -eq 0 ]; then
    while IFS= read -r line; do
        line=${line%%#*}
        line=$(echo "$line" | xargs)
        [ -z "$line" ] && continue
        if [ ! -f "$line" ]; then
            echo "format.sh: scoped file missing: $line" >&2
            exit 2
        fi
        FILES+=("$line")
    done < tools/format_scope.txt
fi
if [ ${#FILES[@]} -eq 0 ]; then
    echo "format.sh: nothing in scope" >&2
    exit 0
fi

if [ "$MODE" = check ]; then
    "$CF" --dry-run --Werror "${FILES[@]}"
    rc=$?
    if [ $rc -ne 0 ]; then
        echo "format.sh: files above need \`tools/format.sh\`" >&2
    fi
    exit $rc
fi
"$CF" -i "${FILES[@]}"
