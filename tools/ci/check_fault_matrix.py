#!/usr/bin/env python3
"""Asserts the fault-containment contract over catchsim JSON exports.

Used by tools/ci/fault_matrix.sh. Four modes:

  --clean clean.json --faulty faulty.json
      The faulty campaign (CATCH_FAULT_INJECT on mcf/tpcc/milc) must
      contain exactly those three failures with the right categories,
      and every other slot's result must be *identical* to the clean
      campaign's (the exporter writes exact u64 and %.17g doubles, so
      JSON equality here is bitwise equality of every counter).

  --clean clean.json --resumed resumed.json [--injected a,b,c]
      The journaled rerun must have re-executed only the failed runs
      (the rest resumed), succeeded everywhere, and produced results
      identical to the clean campaign.

  --clean clean.json --crashed crashed.json
      A process-isolated campaign with crash injection: every crashed
      slot must be typed (status "crashed", category crashed /
      heartbeat-timeout / exec-fail, no result payload), at least one
      slot must have crashed, the summary must tally them, and every
      surviving slot must be identical to the clean campaign.

  --store suite.json --hits N --misses M [--clean clean.json]
      Result-store accounting: the summary's store_hits/store_misses
      must match exactly and nothing may have failed; with --clean,
      every result must also be identical to the clean campaign
      (store replays are bitwise).
"""

import argparse
import json
import sys

# workload -> (status, error category, required message substring).
# The injected hang is driven through the *real* watchdog, so its error
# is the genuine stall-window message, not an "injected" marker.
INJECTED = {
    "mcf": ("failed", "trace-corrupt", "injected"),
    "tpcc": ("failed", "internal", "injected"),
    "milc": ("timed-out", "budget-exceeded", "stall window"),
}


def die(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    by_name = {r["workload"]: r for r in doc["results"]}
    if len(by_name) != len(doc["results"]):
        die(f"{path}: duplicate workload entries")
    return doc, by_name


def check_faulty(clean, faulty):
    cdoc, cruns = load(clean)
    fdoc, fruns = load(faulty)
    if set(cruns) != set(fruns):
        die("clean and faulty campaigns cover different workloads")

    s = fdoc["summary"]
    expect = {
        "total": len(cruns),
        "ok": len(cruns) - len(INJECTED),
        "retried": 0,
        "failed": 2,
        "timed_out": 1,
        "resumed": 0,
    }
    for key, want in expect.items():
        if s[key] != want:
            die(f"faulty summary {key}={s[key]}, want {want}")

    for name, run in fruns.items():
        if name in INJECTED:
            status, category, needle = INJECTED[name]
            if run["status"] != status:
                die(f"{name}: status {run['status']}, want {status}")
            if "result" in run:
                die(f"{name}: failed run must not carry a result")
            got = run["error"]["category"]
            if got != category:
                die(f"{name}: error category {got}, want {category}")
            if needle not in run["error"]["message"]:
                die(f"{name}: error message lacks '{needle}': "
                    f"{run['error']['message']}")
        else:
            if run["status"] != "ok":
                die(f"{name}: unaffected run has status {run['status']}")
            if run["result"] != cruns[name]["result"]:
                die(f"{name}: unaffected result differs from the "
                    "clean campaign (determinism broken)")
    print(f"faulty campaign OK: {len(INJECTED)} contained failures, "
          f"{expect['ok']} slots bitwise-identical to clean")


def check_resumed(clean, resumed, injected):
    cdoc, cruns = load(clean)
    rdoc, rruns = load(resumed)
    if set(cruns) != set(rruns):
        die("clean and resumed campaigns cover different workloads")

    s = rdoc["summary"]
    want_resumed = len(cruns) - len(injected)
    if s["failed"] or s["timed_out"] or s.get("crashed"):
        die(f"resumed campaign still has failures: {s}")
    if s["resumed"] != want_resumed:
        die(f"resumed={s['resumed']}, want {want_resumed} (only the "
            "failed runs may re-execute)")

    for name, run in rruns.items():
        want_replay = name not in injected
        if bool(run["resumed"]) != want_replay:
            die(f"{name}: resumed={run['resumed']}, want {want_replay}")
        if run["result"] != cruns[name]["result"]:
            die(f"{name}: resumed result differs from the clean "
                "campaign")
    print(f"resumed campaign OK: {want_resumed} replayed, "
          f"{len(injected)} re-executed, all bitwise-identical")


# Error categories a lost worker process may legitimately carry.
CRASH_CATEGORIES = {"crashed", "heartbeat-timeout", "exec-fail"}


def check_crashed(clean, crashed):
    cdoc, cruns = load(clean)
    kdoc, kruns = load(crashed)
    if set(cruns) != set(kruns):
        die("clean and crashed campaigns cover different workloads")

    dead = sorted(n for n, r in kruns.items()
                  if r["status"] == "crashed")
    if not dead:
        die("no crashed slots: the injection selected nobody, so the "
            "matrix cell proves nothing")
    s = kdoc["summary"]
    if s["crashed"] != len(dead):
        die(f"summary crashed={s['crashed']}, want {len(dead)}")
    if s["failed"] or s["timed_out"]:
        die(f"crash campaign has non-crash failures: {s}")

    for name, run in kruns.items():
        if run["status"] == "crashed":
            if "result" in run:
                die(f"{name}: crashed run must not carry a result")
            got = run["error"]["category"]
            if got not in CRASH_CATEGORIES:
                die(f"{name}: crashed run has category '{got}', want "
                    f"one of {sorted(CRASH_CATEGORIES)}")
        elif run["status"] in ("ok", "retried"):
            if run["result"] != cruns[name]["result"]:
                die(f"{name}: surviving slot differs from the clean "
                    "campaign (crash containment broke determinism)")
        else:
            die(f"{name}: unexpected status {run['status']}")
    print(f"crashed campaign OK: {len(dead)} typed crash(es) "
          f"({','.join(dead)}), {len(kruns) - len(dead)} survivors "
          "bitwise-identical to clean")


def check_store(path, hits, misses, clean):
    doc, runs = load(path)
    s = doc["summary"]
    if s["store_hits"] != hits:
        die(f"store_hits={s['store_hits']}, want {hits}")
    if s["store_misses"] != misses:
        die(f"store_misses={s['store_misses']}, want {misses}")
    if s["failed"] or s["timed_out"] or s.get("crashed"):
        die(f"store campaign has failures: {s}")
    served = sum(1 for r in runs.values() if r.get("from_store"))
    if served != hits:
        die(f"{served} runs marked from_store, summary says {hits}")
    if clean:
        cdoc, cruns = load(clean)
        if set(cruns) != set(runs):
            die("store and clean campaigns cover different workloads")
        for name, run in runs.items():
            if run["result"] != cruns[name]["result"]:
                die(f"{name}: store-backed result differs from the "
                    "clean campaign")
    print(f"store campaign OK: {hits} hit(s), {misses} miss(es)")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--clean")
    ap.add_argument("--faulty")
    ap.add_argument("--resumed")
    ap.add_argument("--crashed")
    ap.add_argument("--injected", default=",".join(INJECTED),
                    help="comma-separated workloads the --resumed "
                         "campaign had to re-execute")
    ap.add_argument("--store")
    ap.add_argument("--hits", type=int)
    ap.add_argument("--misses", type=int)
    args = ap.parse_args()
    modes = [m for m in (args.faulty, args.resumed, args.crashed,
                         args.store) if m]
    if len(modes) != 1:
        ap.error("pass exactly one of --faulty / --resumed / "
                 "--crashed / --store")
    if args.store:
        if args.hits is None or args.misses is None:
            ap.error("--store needs --hits and --misses")
        check_store(args.store, args.hits, args.misses, args.clean)
        return
    if not args.clean:
        ap.error("this mode needs --clean")
    if args.faulty:
        check_faulty(args.clean, args.faulty)
    elif args.crashed:
        check_crashed(args.clean, args.crashed)
    else:
        check_resumed(args.clean, args.resumed,
                      [n for n in args.injected.split(",") if n])


if __name__ == "__main__":
    main()
