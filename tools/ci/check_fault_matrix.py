#!/usr/bin/env python3
"""Asserts the fault-containment contract over catchsim JSON exports.

Used by tools/ci/fault_matrix.sh. Two modes:

  --clean clean.json --faulty faulty.json
      The faulty campaign (CATCH_FAULT_INJECT on mcf/tpcc/milc) must
      contain exactly those three failures with the right categories,
      and every other slot's result must be *identical* to the clean
      campaign's (the exporter writes exact u64 and %.17g doubles, so
      JSON equality here is bitwise equality of every counter).

  --clean clean.json --resumed resumed.json
      The journaled rerun must have re-executed only the failed runs
      (4 of 7 resumed), succeeded everywhere, and produced results
      identical to the clean campaign.
"""

import argparse
import json
import sys

# workload -> (status, error category, required message substring).
# The injected hang is driven through the *real* watchdog, so its error
# is the genuine stall-window message, not an "injected" marker.
INJECTED = {
    "mcf": ("failed", "trace-corrupt", "injected"),
    "tpcc": ("failed", "internal", "injected"),
    "milc": ("timed-out", "budget-exceeded", "stall window"),
}


def die(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    by_name = {r["workload"]: r for r in doc["results"]}
    if len(by_name) != len(doc["results"]):
        die(f"{path}: duplicate workload entries")
    return doc, by_name


def check_faulty(clean, faulty):
    cdoc, cruns = load(clean)
    fdoc, fruns = load(faulty)
    if set(cruns) != set(fruns):
        die("clean and faulty campaigns cover different workloads")

    s = fdoc["summary"]
    expect = {
        "total": len(cruns),
        "ok": len(cruns) - len(INJECTED),
        "retried": 0,
        "failed": 2,
        "timed_out": 1,
        "resumed": 0,
    }
    for key, want in expect.items():
        if s[key] != want:
            die(f"faulty summary {key}={s[key]}, want {want}")

    for name, run in fruns.items():
        if name in INJECTED:
            status, category, needle = INJECTED[name]
            if run["status"] != status:
                die(f"{name}: status {run['status']}, want {status}")
            if "result" in run:
                die(f"{name}: failed run must not carry a result")
            got = run["error"]["category"]
            if got != category:
                die(f"{name}: error category {got}, want {category}")
            if needle not in run["error"]["message"]:
                die(f"{name}: error message lacks '{needle}': "
                    f"{run['error']['message']}")
        else:
            if run["status"] != "ok":
                die(f"{name}: unaffected run has status {run['status']}")
            if run["result"] != cruns[name]["result"]:
                die(f"{name}: unaffected result differs from the "
                    "clean campaign (determinism broken)")
    print(f"faulty campaign OK: {len(INJECTED)} contained failures, "
          f"{expect['ok']} slots bitwise-identical to clean")


def check_resumed(clean, resumed):
    cdoc, cruns = load(clean)
    rdoc, rruns = load(resumed)
    if set(cruns) != set(rruns):
        die("clean and resumed campaigns cover different workloads")

    s = rdoc["summary"]
    want_resumed = len(cruns) - len(INJECTED)
    if s["failed"] or s["timed_out"]:
        die(f"resumed campaign still has failures: {s}")
    if s["resumed"] != want_resumed:
        die(f"resumed={s['resumed']}, want {want_resumed} (only the "
            "failed runs may re-execute)")

    for name, run in rruns.items():
        want_replay = name not in INJECTED
        if bool(run["resumed"]) != want_replay:
            die(f"{name}: resumed={run['resumed']}, want {want_replay}")
        if run["result"] != cruns[name]["result"]:
            die(f"{name}: resumed result differs from the clean "
                "campaign")
    print(f"resumed campaign OK: {want_resumed} replayed, "
          f"{len(INJECTED)} re-executed, all bitwise-identical")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--clean", required=True)
    ap.add_argument("--faulty")
    ap.add_argument("--resumed")
    args = ap.parse_args()
    if bool(args.faulty) == bool(args.resumed):
        ap.error("pass exactly one of --faulty / --resumed")
    if args.faulty:
        check_faulty(args.clean, args.faulty)
    else:
        check_resumed(args.clean, args.resumed)


if __name__ == "__main__":
    main()
