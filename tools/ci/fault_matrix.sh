#!/usr/bin/env bash
# End-to-end fault-injection acceptance matrix for the suite executor.
#
# Drives the catchsim CLI the way CI does: a clean campaign, then the
# same campaign with CATCH_FAULT_INJECT forcing one fault of each kind
# into 3 of 7 workloads at two job counts, then a journaled rerun.
# Asserts the containment contract end to end:
#
#   1. the faulty campaign completes with exit code 1 (contained), not
#      a crash or a hang;
#   2. the faulty JSON export is byte-identical at jobs=8 and jobs=16;
#   3. exactly the 3 injected runs fail, with the right categories, and
#      every unaffected slot is bitwise-identical to the clean campaign
#      (tools/ci/check_fault_matrix.py);
#   4. a journaled rerun without injection re-executes only the 3
#      failed runs, resumes the other 4, exits 0, and its results are
#      bitwise-identical to the clean campaign.
#
# Then the process-isolation matrix (--isolate, sim/supervisor.hh):
#
#   5. a clean isolated campaign at jobs=8/16 exits 0 and its export is
#      byte-identical to the in-process clean campaign — cross-mode,
#      cross-worker-count bitwise identity;
#   6. crash-segv injected into ~25% of workers: exit 2, crashed slots
#      typed, survivors bitwise-identical to clean, identical at both
#      job counts;
#   7. exec-fail and heartbeat-stall cells exit 2 (typed at the unit
#      level; here the exit-code contract is what is pinned);
#   8. an OOM-killed campaign with --journal + --result-store exits 2,
#      and the resumed rerun re-executes only the dead cell, exits 0,
#      bitwise-identical to clean;
#   9. a result-store resweep: cold run misses every cell, the rerun
#      (in-process mode, same store — the store is mode-agnostic) hits
#      every cell, and a one-knob change (--llc-add) misses every cell
#      again; hit/miss counters asserted from the suite JSON.
#
# Usage: fault_matrix.sh <path-to-catchsim-cli> [workdir]

set -euo pipefail

CLI=${1:?usage: fault_matrix.sh <path-to-catchsim-cli> [workdir]}
WORK=${2:-$(mktemp -d)}
KEEP_WORK=${2:+1}
cleanup() { [ -n "${KEEP_WORK:-}" ] || rm -rf "$WORK"; }
trap cleanup EXIT
mkdir -p "$WORK"

HERE=$(cd "$(dirname "$0")" && pwd)

NAMES=(mcf hmmer omnetpp tpcc milc gobmk hpc.stream)
SPEC='trace-corrupt:mcf;exception:tpcc;hang:milc'
ARGS=(--catch --instr=30000 --warmup=8000)

run_expect() {
    local want=$1
    shift
    local rc=0
    "$@" || rc=$?
    if [ "$rc" -ne "$want" ]; then
        echo "FAIL: expected exit $want, got $rc: $*" >&2
        exit 1
    fi
}

echo "== clean campaign (jobs=8) =="
run_expect 0 "$CLI" "${ARGS[@]}" --jobs=8 --json="$WORK/clean.json" \
    "${NAMES[@]}"

echo "== faulty campaigns (jobs=8 and jobs=16) =="
for j in 8 16; do
    run_expect 1 env CATCH_FAULT_INJECT="$SPEC" \
        "$CLI" "${ARGS[@]}" --jobs="$j" --json="$WORK/faulty$j.json" \
        "${NAMES[@]}"
done

echo "== job count must not change a byte of the export =="
cmp "$WORK/faulty8.json" "$WORK/faulty16.json"

echo "== containment + bitwise-identical unaffected slots =="
python3 "$HERE/check_fault_matrix.py" \
    --clean "$WORK/clean.json" --faulty "$WORK/faulty8.json"

echo "== journaled run with faults, then resume without =="
run_expect 1 env CATCH_FAULT_INJECT="$SPEC" \
    "$CLI" "${ARGS[@]}" --jobs=8 --journal="$WORK/journal" \
    "${NAMES[@]}"
run_expect 0 "$CLI" "${ARGS[@]}" --jobs=8 --journal="$WORK/journal" \
    --json="$WORK/resumed.json" "${NAMES[@]}"
python3 "$HERE/check_fault_matrix.py" \
    --clean "$WORK/clean.json" --resumed "$WORK/resumed.json"

echo "== warm-state snapshot corruption is contained, results identical =="
# Sampled baseline without any store, then a cold sampled campaign that
# populates the on-disk chunk + snapshot tiers, then a rerun (fresh
# process, so every snapshot comes off disk) with state-corrupt injected
# into every warm-state read. Contract: corruption is warn + delete +
# re-warm — exit 0, and all three exports are byte-identical. The store
# trades only time, never results.
# The default eligibility gates would skip window memoization at this
# short schedule (the floor exists for profitability, not correctness);
# lift them so the matrix exercises window-boundary records end to end.
WS_ENV=(CATCH_WARM_STATE_MIN_GAP=0 CATCH_WARM_STATE_MAX_PAGES=0)
run_expect 0 "$CLI" "${ARGS[@]}" --sample --jobs=8 \
    --json="$WORK/ws_clean.json" "${NAMES[@]}"
run_expect 0 env "${WS_ENV[@]}" \
    "$CLI" "${ARGS[@]}" --sample --jobs=8 \
    --trace-cache-dir="$WORK/ws_chunks" \
    --warm-state-cache-dir="$WORK/ws_snaps" \
    --json="$WORK/ws_cold.json" "${NAMES[@]}"
run_expect 0 env "${WS_ENV[@]}" \
    CATCH_FAULT_INJECT='state-corrupt:warm-state-store' \
    "$CLI" "${ARGS[@]}" --sample --jobs=8 \
    --trace-cache-dir="$WORK/ws_chunks" \
    --warm-state-cache-dir="$WORK/ws_snaps" \
    --json="$WORK/ws_faulty.json" "${NAMES[@]}"
# Same contract for corruption that strikes only the window-boundary
# (windowIndex >= 1) records: the global-warmup restore still hits, the
# corrupt window is warned about, deleted and re-warmed functionally
# from the restored state — mid-campaign, not from scratch — and the
# export stays byte-identical.
run_expect 0 env "${WS_ENV[@]}" \
    CATCH_FAULT_INJECT='state-corrupt:warm-state-window' \
    "$CLI" "${ARGS[@]}" --sample --jobs=8 \
    --trace-cache-dir="$WORK/ws_chunks" \
    --warm-state-cache-dir="$WORK/ws_snaps" \
    --json="$WORK/ws_window_faulty.json" "${NAMES[@]}"
cmp "$WORK/ws_clean.json" "$WORK/ws_cold.json"
cmp "$WORK/ws_clean.json" "$WORK/ws_faulty.json"
cmp "$WORK/ws_clean.json" "$WORK/ws_window_faulty.json"

echo "== config errors exit 2 before any simulation =="
run_expect 2 "$CLI" "${ARGS[@]}" no-such-workload mcf
run_expect 2 "$CLI" "${ARGS[@]}" --journal=/dev/null/nested mcf
run_expect 2 "$CLI" "${ARGS[@]}" --result-store=/dev/null/nested mcf

# ---------------- process-isolated execution matrix ----------------
# Workers re-exec the CLI binary itself (--worker); restarts are
# bounded and unpaced so the crash cells finish quickly.
ISO_ENV=(CATCH_MAX_ATTEMPTS=2 CATCH_BACKOFF_MS=0)

echo "== isolated clean campaigns match in-process byte-for-byte =="
for j in 8 16; do
    run_expect 0 env "${ISO_ENV[@]}" \
        "$CLI" "${ARGS[@]}" --isolate --jobs="$j" \
        --json="$WORK/iso$j.json" "${NAMES[@]}"
done
cmp "$WORK/clean.json" "$WORK/iso8.json"
cmp "$WORK/iso8.json" "$WORK/iso16.json"

echo "== crashed workers are contained and typed (jobs=8 and 16) =="
for j in 8 16; do
    run_expect 2 env "${ISO_ENV[@]}" \
        CATCH_FAULT_INJECT='crash-segv:%25@7' \
        "$CLI" "${ARGS[@]}" --isolate --jobs="$j" \
        --json="$WORK/crash$j.json" "${NAMES[@]}"
done
cmp "$WORK/crash8.json" "$WORK/crash16.json"
python3 "$HERE/check_fault_matrix.py" \
    --clean "$WORK/clean.json" --crashed "$WORK/crash8.json"

echo "== exec failures and heartbeat stalls exit 2 =="
run_expect 2 env "${ISO_ENV[@]}" CATCH_FAULT_INJECT='exec-fail:mcf' \
    "$CLI" "${ARGS[@]}" --isolate --jobs=8 "${NAMES[@]}"
run_expect 2 env "${ISO_ENV[@]}" \
    CATCH_FAULT_INJECT='heartbeat-stall:mcf' \
    CATCH_HEARTBEAT_TIMEOUT_MS=2000 \
    "$CLI" "${ARGS[@]}" --isolate --jobs=8 "${NAMES[@]}"

echo "== OOM-killed campaign resumes through journal + store =="
run_expect 2 env "${ISO_ENV[@]}" CATCH_FAULT_INJECT='oom:mcf' \
    "$CLI" "${ARGS[@]}" --isolate --jobs=8 \
    --journal="$WORK/iso_journal" --result-store="$WORK/iso_store" \
    "${NAMES[@]}"
run_expect 0 env "${ISO_ENV[@]}" \
    "$CLI" "${ARGS[@]}" --isolate --jobs=8 \
    --journal="$WORK/iso_journal" --result-store="$WORK/iso_store" \
    --json="$WORK/iso_resumed.json" "${NAMES[@]}"
python3 "$HERE/check_fault_matrix.py" \
    --clean "$WORK/clean.json" --resumed "$WORK/iso_resumed.json" \
    --injected mcf

echo "== result-store resweep re-executes only changed cells =="
N=${#NAMES[@]}
run_expect 0 env "${ISO_ENV[@]}" \
    "$CLI" "${ARGS[@]}" --isolate --jobs=8 \
    --result-store="$WORK/sweep_store" --json="$WORK/sweep1.json" \
    "${NAMES[@]}"
python3 "$HERE/check_fault_matrix.py" --store "$WORK/sweep1.json" \
    --hits 0 --misses "$N" --clean "$WORK/clean.json"
# The store is mode-agnostic: the in-process executor hits the cells an
# isolated campaign persisted.
run_expect 0 "$CLI" "${ARGS[@]}" --jobs=8 \
    --result-store="$WORK/sweep_store" --json="$WORK/sweep2.json" \
    "${NAMES[@]}"
python3 "$HERE/check_fault_matrix.py" --store "$WORK/sweep2.json" \
    --hits "$N" --misses 0 --clean "$WORK/clean.json"
# One knob moves the config digest: every cell is invalidated.
run_expect 0 env "${ISO_ENV[@]}" \
    "$CLI" "${ARGS[@]}" --llc-add=1 --isolate --jobs=8 \
    --result-store="$WORK/sweep_store" --json="$WORK/sweep3.json" \
    "${NAMES[@]}"
python3 "$HERE/check_fault_matrix.py" --store "$WORK/sweep3.json" \
    --hits 0 --misses "$N"

echo "fault matrix: all checks passed"
