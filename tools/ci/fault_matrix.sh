#!/usr/bin/env bash
# End-to-end fault-injection acceptance matrix for the suite executor.
#
# Drives the catchsim CLI the way CI does: a clean campaign, then the
# same campaign with CATCH_FAULT_INJECT forcing one fault of each kind
# into 3 of 7 workloads at two job counts, then a journaled rerun.
# Asserts the containment contract end to end:
#
#   1. the faulty campaign completes with exit code 1 (contained), not
#      a crash or a hang;
#   2. the faulty JSON export is byte-identical at jobs=8 and jobs=16;
#   3. exactly the 3 injected runs fail, with the right categories, and
#      every unaffected slot is bitwise-identical to the clean campaign
#      (tools/ci/check_fault_matrix.py);
#   4. a journaled rerun without injection re-executes only the 3
#      failed runs, resumes the other 4, exits 0, and its results are
#      bitwise-identical to the clean campaign.
#
# Usage: fault_matrix.sh <path-to-catchsim-cli> [workdir]

set -euo pipefail

CLI=${1:?usage: fault_matrix.sh <path-to-catchsim-cli> [workdir]}
WORK=${2:-$(mktemp -d)}
KEEP_WORK=${2:+1}
cleanup() { [ -n "${KEEP_WORK:-}" ] || rm -rf "$WORK"; }
trap cleanup EXIT
mkdir -p "$WORK"

HERE=$(cd "$(dirname "$0")" && pwd)

NAMES=(mcf hmmer omnetpp tpcc milc gobmk hpc.stream)
SPEC='trace-corrupt:mcf;exception:tpcc;hang:milc'
ARGS=(--catch --instr=30000 --warmup=8000)

run_expect() {
    local want=$1
    shift
    local rc=0
    "$@" || rc=$?
    if [ "$rc" -ne "$want" ]; then
        echo "FAIL: expected exit $want, got $rc: $*" >&2
        exit 1
    fi
}

echo "== clean campaign (jobs=8) =="
run_expect 0 "$CLI" "${ARGS[@]}" --jobs=8 --json="$WORK/clean.json" \
    "${NAMES[@]}"

echo "== faulty campaigns (jobs=8 and jobs=16) =="
for j in 8 16; do
    run_expect 1 env CATCH_FAULT_INJECT="$SPEC" \
        "$CLI" "${ARGS[@]}" --jobs="$j" --json="$WORK/faulty$j.json" \
        "${NAMES[@]}"
done

echo "== job count must not change a byte of the export =="
cmp "$WORK/faulty8.json" "$WORK/faulty16.json"

echo "== containment + bitwise-identical unaffected slots =="
python3 "$HERE/check_fault_matrix.py" \
    --clean "$WORK/clean.json" --faulty "$WORK/faulty8.json"

echo "== journaled run with faults, then resume without =="
run_expect 1 env CATCH_FAULT_INJECT="$SPEC" \
    "$CLI" "${ARGS[@]}" --jobs=8 --journal="$WORK/journal" \
    "${NAMES[@]}"
run_expect 0 "$CLI" "${ARGS[@]}" --jobs=8 --journal="$WORK/journal" \
    --json="$WORK/resumed.json" "${NAMES[@]}"
python3 "$HERE/check_fault_matrix.py" \
    --clean "$WORK/clean.json" --resumed "$WORK/resumed.json"

echo "== config errors exit 2 before any simulation =="
run_expect 2 "$CLI" "${ARGS[@]}" no-such-workload mcf
run_expect 2 "$CLI" "${ARGS[@]}" --journal=/dev/null/nested mcf

echo "fault matrix: all checks passed"
