#!/usr/bin/env python3
"""Throughput-regression gate for the non-gating CI perf job.

Compares a fresh bench_perf run (BENCH_PERF.json) against the
checked-in reference (bench/perf/BENCH_PERF.json) and fails only when
the overall median simulated-kilo-instrs/sec regressed by more than
--tolerance (default 25%). Per-cell regressions are reported but do not
fail the check on their own — single cells are noisy on shared CI
hosts; the overall median is the stable signal.

Absolute throughput differs across machines, so the reference is only a
tripwire against large regressions, not a benchmark target; refresh it
(on the CI host class) when the simulator legitimately gets faster or
slower.

With --sampled, also pairs a sampled-mode document (bench_perf
--mode=sampled) against the current detailed one and reports the
sampled-over-detailed host-throughput speedup per cell plus the median.
The speedup report is informational only — it never fails the check;
docs/PERFORMANCE.md explains why the ceiling on this codebase is modest
(the detailed model is already fast).

--sampled-warm takes a warm-store sampled document (bench_perf
--mode=sampled --store=warm) and reports it the same way: against the
detailed run (the end-to-end memoized speedup) and, when --sampled is
also given, against the cold/plain sampled run (the isolated
memoization win). Informational only, like --sampled.

--warm-state takes a warmed-state sampled document (bench_perf
--mode=sampled --store=warm --warm-state=warm) and reports it against
the detailed run (the end-to-end checkpointed speedup) and, when
--sampled-warm is also given, against the chunk-store-only sampled run
(the isolated warmed-state win on top of chunk memoization).
Informational only, like --sampled. When the document carries per-cell
"warm_state" counters (bench_perf emits them for --warm-state runs),
the per-window hit rates — global-warmup and window-boundary consults
attributed separately — are reported alongside the speedups; cells
without a detailed counterpart (the "-longwarm" variant bench_perf adds
for warm-state runs) still get their hit rates even though the speedup
pairing skips them.

Usage: check_perf.py --current BENCH_PERF.json \
                     [--baseline bench/perf/BENCH_PERF.json] \
                     [--sampled BENCH_PERF_SAMPLED.json] \
                     [--sampled-warm BENCH_PERF_SAMPLED_WARM.json] \
                     [--warm-state BENCH_PERF_WARM_STATE.json] \
                     [--tolerance 0.25]

Exit status: 0 within tolerance, 1 regression, 2 bad input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load(path: Path) -> dict:
    try:
        doc = json.loads(path.read_text())
    except (OSError, ValueError) as e:
        print(f"check_perf: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if "median_kips_overall" not in doc or "results" not in doc:
        print(f"check_perf: {path} is not a bench_perf document",
              file=sys.stderr)
        sys.exit(2)
    return doc


def cells(doc: dict) -> dict[tuple[str, str], dict]:
    return {(r["workload"], r["config"]): r for r in doc["results"]}


def report_sampled(detailed: dict, sampled: dict,
                   label: str = "sampled vs detailed") -> None:
    """Informational paired-document speedup report; never fails."""
    det_cells = cells(detailed)
    speedups = []
    print(f"{label} (host kinstr/s, informational):")
    for key, s in sorted(cells(sampled).items()):
        d = det_cells.get(key)
        if d is None:
            print(f"  unpaired {key[0]:<12} {key[1]:<30} "
                  f"{s['kips_median']:10.1f} kinstr/s (no paired cell)")
            continue
        speedup = s["kips_median"] / d["kips_median"]
        speedups.append(speedup)
        print(f"  speedup  {key[0]:<12} {key[1]:<30} "
              f"{d['kips_median']:10.1f} -> {s['kips_median']:10.1f} "
              f"({speedup:.2f}x)")
    if speedups:
        speedups.sort()
        n = len(speedups)
        med = (speedups[n // 2] if n % 2
               else 0.5 * (speedups[n // 2 - 1] + speedups[n // 2]))
        print(f"{label} speedup median: {med:.2f}x over {n} cells")


def rate(hits: int, misses: int) -> str:
    total = hits + misses
    if total == 0:
        return "  n/a"
    return f"{100.0 * hits / total:4.0f}%"


def report_warm_state(doc: dict) -> None:
    """Per-cell warm-state hit rates, global vs window-boundary.

    Informational; tolerates cells without the "warm_state" object
    (documents from a bench_perf predating the counters, or runs with
    --warm-state=off)."""
    rows = [(k, r["warm_state"]) for k, r in sorted(cells(doc).items())
            if "warm_state" in r]
    if not rows:
        return
    print("warm-state hit rates (global | window-boundary, "
          "informational):")
    for (workload, config), w in rows:
        g = rate(w["hits"], w["misses"])
        win = rate(w["window_hits"], w["window_misses"])
        print(f"  {workload:<12} {config:<30} global {g} "
              f"({w['hits']}/{w['hits'] + w['misses']})  "
              f"window {win} "
              f"({w['window_hits']}/"
              f"{w['window_hits'] + w['window_misses']})")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    repo = Path(__file__).resolve().parents[2]
    ap.add_argument("--current", type=Path, required=True,
                    help="BENCH_PERF.json from this run")
    ap.add_argument("--baseline", type=Path,
                    default=repo / "bench" / "perf" / "BENCH_PERF.json",
                    help="checked-in reference document")
    ap.add_argument("--sampled", type=Path, default=None,
                    help="bench_perf --mode=sampled document to compare "
                         "against --current (informational)")
    ap.add_argument("--sampled-warm", type=Path, default=None,
                    help="bench_perf --mode=sampled --store=warm "
                         "document; reported against --current and, if "
                         "given, --sampled (informational)")
    ap.add_argument("--warm-state", type=Path, default=None,
                    help="bench_perf --mode=sampled --store=warm "
                         "--warm-state=warm document; reported against "
                         "--current and, if given, --sampled-warm "
                         "(informational)")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional drop in the overall median")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    base_cells = cells(base)
    for key, c in sorted(cells(cur).items()):
        b = base_cells.get(key)
        if b is None:
            print(f"  NEW      {key[0]:<12} {key[1]:<30} "
                  f"{c['kips_median']:10.1f} kinstr/s")
            continue
        ratio = c["kips_median"] / b["kips_median"]
        flag = "SLOWER" if ratio < 1 - args.tolerance else "ok"
        print(f"  {flag:<8} {key[0]:<12} {key[1]:<30} "
              f"{b['kips_median']:10.1f} -> {c['kips_median']:10.1f} "
              f"({ratio:.2f}x)")

    sampled = load(args.sampled) if args.sampled is not None else None
    if sampled is not None:
        report_sampled(cur, sampled)
    warm = None
    if args.sampled_warm is not None:
        warm = load(args.sampled_warm)
        report_sampled(cur, warm, label="warm-store sampled vs detailed")
        if sampled is not None:
            report_sampled(sampled, warm,
                           label="warm-store vs cold-store sampled")
    if args.warm_state is not None:
        wstate = load(args.warm_state)
        report_sampled(cur, wstate,
                       label="warm-state sampled vs detailed")
        if warm is not None:
            report_sampled(warm, wstate,
                           label="warm-state vs chunk-store-only sampled")
        report_warm_state(wstate)

    b = base["median_kips_overall"]
    c = cur["median_kips_overall"]
    ratio = c / b
    print(f"overall median: {b:.1f} -> {c:.1f} kinstr/s ({ratio:.2f}x, "
          f"tolerance {args.tolerance:.0%})")
    if ratio < 1 - args.tolerance:
        print("check_perf: overall median regressed beyond tolerance",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
