#!/usr/bin/env bash
# clang-tidy driver for the catchsim analysis gate.
#
# Runs the checked-in .clang-tidy baseline (warnings-as-errors) over the
# compile database, in parallel, and exits non-zero on any finding.
# Results are cached per (tool version, .clang-tidy content, file
# content): a file whose key matches a previous clean run is skipped, so
# re-runs on an unchanged tree are near-instant — CI persists the cache
# directory across commits.
#
# Usage:
#   tools/run_tidy.sh [-p BUILD_DIR] [--cache-dir DIR] [-j N] [FILES...]
#
#   BUILD_DIR    directory holding compile_commands.json (default: build)
#   FILES        restrict the run to specific sources (default: every
#                first-party .cc in the compile database)
#
# Exit codes: 0 clean, 1 findings, 2 usage/setup error. When clang-tidy
# is not installed the script prints a notice and exits 0: the gate is
# enforced by CI (which always has the tool); a local machine without it
# must not fail the build.
set -u

BUILD_DIR=build
CACHE_DIR="${CATCH_TIDY_CACHE:-}"
JOBS=$(nproc 2> /dev/null || echo 4)
FILES=()

while [ $# -gt 0 ]; do
    case "$1" in
        -p) BUILD_DIR="$2"; shift 2 ;;
        --cache-dir) CACHE_DIR="$2"; shift 2 ;;
        -j) JOBS="$2"; shift 2 ;;
        -h|--help) sed -n '2,21p' "$0"; exit 0 ;;
        *) FILES+=("$1"); shift ;;
    esac
done

cd "$(dirname "$0")/.." || exit 2

TIDY=${CLANG_TIDY:-}
if [ -z "$TIDY" ]; then
    for cand in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                clang-tidy-16 clang-tidy-15 clang-tidy-14; do
        if command -v "$cand" > /dev/null 2>&1; then
            TIDY=$cand
            break
        fi
    done
fi
if [ -z "$TIDY" ]; then
    echo "run_tidy.sh: clang-tidy not found; skipping (CI enforces the" \
         "tidy gate — install clang-tidy to run it locally)" >&2
    exit 0
fi

DB="$BUILD_DIR/compile_commands.json"
if [ ! -f "$DB" ]; then
    echo "run_tidy.sh: $DB not found; configure first:" >&2
    echo "  cmake -B $BUILD_DIR -S ." >&2
    exit 2
fi

# Default scope: every first-party source in the compile database.
if [ ${#FILES[@]} -eq 0 ]; then
    while IFS= read -r f; do
        FILES+=("$f")
    done < <(python3 - "$DB" <<'EOF'
import json, sys
seen = set()
for entry in json.load(open(sys.argv[1])):
    f = entry["file"]
    if f in seen:
        continue
    seen.add(f)
    for top in ("/src/", "/tests/", "/tools/", "/bench/", "/examples/"):
        if top in f:
            print(f)
            break
EOF
)
fi
if [ ${#FILES[@]} -eq 0 ]; then
    echo "run_tidy.sh: no sources found in $DB" >&2
    exit 2
fi

tidy_version=$("$TIDY" --version 2> /dev/null | tr -d '\n')
config_hash=$(cksum < .clang-tidy | cut -d' ' -f1)

# Partition into cached-clean and to-check.
TO_CHECK=()
SKIPPED=0
for f in "${FILES[@]}"; do
    if [ -n "$CACHE_DIR" ]; then
        mkdir -p "$CACHE_DIR"
        key=$( (echo "$tidy_version $config_hash"; cat "$f") | cksum \
              | cut -d' ' -f1)
        marker="$CACHE_DIR/$(basename "$f").$key.ok"
        if [ -f "$marker" ]; then
            SKIPPED=$((SKIPPED + 1))
            continue
        fi
        TO_CHECK+=("$marker|$f")
    else
        TO_CHECK+=("|$f")
    fi
done

check_one() {
    local marker=${1%%|*}
    local f=${1#*|}
    if "$TIDY" -p "$BUILD_DIR" --quiet "$f"; then
        [ -n "$marker" ] && touch "$marker"
        return 0
    fi
    return 1
}

FAIL=0
if [ ${#TO_CHECK[@]} -gt 0 ]; then
    running=0
    pids=()
    for item in "${TO_CHECK[@]}"; do
        check_one "$item" &
        pids+=($!)
        running=$((running + 1))
        if [ "$running" -ge "$JOBS" ]; then
            wait "${pids[0]}" || FAIL=1
            pids=("${pids[@]:1}")
            running=$((running - 1))
        fi
    done
    for pid in "${pids[@]}"; do
        wait "$pid" || FAIL=1
    done
fi

echo "run_tidy.sh: checked ${#TO_CHECK[@]} file(s), $SKIPPED cached-clean" >&2
if [ $FAIL -ne 0 ]; then
    echo "run_tidy.sh: clang-tidy findings above — the tree must stay" \
         "at zero warnings (see docs/ANALYSIS.md)" >&2
    exit 1
fi
exit 0
