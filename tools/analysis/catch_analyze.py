#!/usr/bin/env python3
"""catch_analyze — whole-program call-graph contract checker.

The regex rules in tools/lint/catch_lint.py see one line of one file at
a time, so a helper in another translation unit that allocates or
touches Stats from the hot loop compiles, passes lint, and silently
erodes the throughput and determinism contracts. This analyzer builds a
qualified-name call graph across every TU and checks *reachability*
contracts:

  step-alloc-transitive
      No allocation (operator new, container growth, make_unique /
      make_shared) is reachable from the per-cycle entry points
      (OooCore::step, Frontend::fetchCycle, Cache::lookup/fill,
      Dram::read/write, FastForward::warm, ...) through any call
      chain. Setup-time functions (bind*/rewind/reset*, constructors,
      destructors) are not traversed: they may size structures.
  warming-purity
      Nothing reachable from the functional-warming entry points
      (FastForward::warm, CacheHierarchy::warmAccess) mutates a stats
      object or calls into the timing model (Dram::*,
      IssueCalendar::*, OooCore::*). This turns the PR 5 "stats-free
      contract" test into a static guarantee.
  snapshot-hot-path
      No warmed-state serialization (any saveWarmState/loadWarmState,
      or the page-image half: snapshotPages/restorePages/savePages/
      loadPages) is reachable from the per-cycle entry points.
      Snapshots are a run-boundary operation; a serializer that creeps
      onto the hot loop would re-serialize megabytes per step.
  warm-digest
      Every config field read on the warming-reachable call graph
      (`cfg.x` / `cfg_.x` member reads; text frontend only) must
      appear in warmConfigDigest() (src/sim/warm_state.cc) — or in
      sampleScheduleDigest(), which re-keys the window-boundary
      snapshots on the schedule knobs — so a knob that can shape
      warmed state is never silently excluded from the snapshot key.
      Provably timing-only reads on flag-guarded dual-mode code are
      waiverable; repos without a digest skip the rule.
  determinism-ast
      Entropy/clock calls that reach through type aliases the line
      regexes cannot see (`using Clk = std::chrono::steady_clock;`
      in one header, `Clk::now()` in another file).
  unordered-iter
      Range-for iteration over std::unordered_* containers in src/ —
      iteration order is unspecified, so any result or stat produced
      from it is not bitwise-reproducible across libraries.
  global-state
      Non-const namespace-scope variables in src/ — shared mutable
      state that TSan only catches on executed interleavings and that
      breaks the any-job-count determinism contract.

Two frontends produce the same intermediate representation:

  clang  parses `clang++ -Xclang -ast-dump=json` for every src/ TU in
         compile_commands.json. Extracted per-TU IR is cached keyed on
         (clang version, command, TU content, src-header digest), so
         re-runs on an unchanged tree are near-instant; CI persists
         the cache per-SHA next to the clang-tidy cache and shares the
         same compile database build.
  text   a pure-python scanner over the repo house style (return type
         on its own line, qualified function names at column 0,
         members declared in headers). No toolchain needed; this is
         what ctest runs everywhere, and the fallback when clang is
         absent.

Known limits (both frontends, documented in docs/ANALYSIS.md): virtual
dispatch and function pointers are not resolved (the repo has no hot
virtual calls by design); the text frontend drops member-call edges
whose receiver type it cannot infer and does not model operator
overloads; allocation detection covers explicit growth calls and
new/make_*, not std::string temporaries.

Waivers (both require a reason a reviewer can check):
  inline      `// catch-analyze: allow(<rule>)` on the offending line
              or on its own comment line directly above (so waivers
              never fight the 79-column limit).
              For step-alloc-transitive, an existing
              `// catch-lint: allow(step-alloc)` is honoured too, so
              a line is never annotated twice for the same contract.
  file-level  `<rule> <repo-relative-path>  # reason` in
              tools/analysis/waivers.txt
  boundary    `<rule> boundary:<Qualified::Name>  # reason` in
              tools/analysis/waivers.txt — the rule's traversal stops
              at that function (for amortized-cost boundaries like the
              O(chunk) trace refill, or flag-guarded dual-mode code
              whose purity a dynamic contract test pins).

`--check-waivers` fails when any waiver no longer suppresses anything.

Exit status: 0 clean, 1 findings, 2 setup error.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import re
import shlex
import subprocess
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "lint"))
from catch_lint import DETERMINISM_BANNED  # noqa: E402
from catch_lint import strip_comments_and_strings  # noqa: E402

EXTRACTOR_VERSION = "1"  # bump to invalidate cached clang IR

INLINE_WAIVER_RE = re.compile(
    r"catch-analyze:\s*allow\(([a-z\-]+(?:\s*,\s*[a-z\-]+)*)\)")
LINT_STEP_ALLOC_WAIVER_RE = re.compile(
    r"catch-lint:\s*allow\([^)]*\bstep-alloc\b[^)]*\)")

SETUP_FUNC_RE = re.compile(r"^(bind\w*|rewind|reset\w*)$")

# Per-cycle entry points: one detailed step, one warm step, and the
# module-level operations those invoke per instruction. Names missing
# from the graph are ignored (the list survives refactors gracefully;
# --list-entries shows what resolved).
STEP_ENTRY_POINTS = (
    "OooCore::step",
    "Frontend::fetchCycle",
    "Frontend::redirect",
    "Cache::lookup",
    "Cache::fill",
    "Cache::warmFill",
    "CacheHierarchy::load",
    "CacheHierarchy::storeCommit",
    "CacheHierarchy::codeFetch",
    "CacheHierarchy::warmAccess",
    "Dram::read",
    "Dram::write",
    "FastForward::warm",
)
WARM_ENTRY_POINTS = (
    "FastForward::warm",
    "CacheHierarchy::warmAccess",
)
# The timing model, off-limits from the warming path.
TIMING_MODEL_RE = re.compile(r"^(Dram|IssueCalendar|OooCore)::")

# Warmed-state serialization, off-limits from the per-cycle path. The
# page-image half of a snapshot travels through snapshotPages/
# restorePages (copy-on-write handles) and savePages/loadPages (disk
# records); all four are run-boundary operations like the blob
# serializers.
SNAPSHOT_FUNC_RE = re.compile(
    r"::(saveWarmState|loadWarmState|snapshotPages|restorePages|"
    r"savePages|loadPages)$")

# A config-member read (`cfg.a.b` / `cfg_.x`); group 2 is the leaf
# field, group 3 nonempty when it is a method call (derived value, not
# a stored knob — its inputs are fields tracked at their own reads).
CFG_READ_RE = re.compile(r"\bcfg_?\s*\.\s*((?:\w+\s*\.\s*)*)(\w+)\s*(\()?")

# Where the snapshot-key digest lives; repos without it skip warm-digest.
DIGEST_FILE = "src/sim/warm_state.cc"

ALLOC_MEMBER_RE = re.compile(
    r"[.\->]\s*(push_back|emplace_back|emplace|emplace_front|"
    r"emplace_hint|insert|insert_or_assign|try_emplace|resize|reserve|"
    r"assign|push_front|append)\s*\(")
ALLOC_MAKE_RE = re.compile(r"\bmake_(unique|shared)\s*[<(]")
ALLOC_NEW_RE = re.compile(r"[^_\w]new\s+[A-Za-z_:<(]")
ALLOC_NAMES = frozenset((
    "push_back", "emplace_back", "emplace", "emplace_front",
    "emplace_hint", "insert", "insert_or_assign", "try_emplace",
    "resize", "reserve", "assign", "push_front", "append",
))

STATS_WRITE_RE = re.compile(
    r"\b(?:this->)?stats_?\b\s*(?:\[[^\]]*\])?\s*(?:\.|->)\s*"
    r"[A-Za-z_][\w.\[\]]*\s*(?:\+\+|--|[-+*/|&^]?=(?!=))"
    r"|(?:\+\+|--)\s*(?:this->)?stats_?\b")

CLOCK_TYPE_RE = re.compile(
    r"\b(system_clock|steady_clock|high_resolution_clock|file_clock|"
    r"utc_clock|tai_clock|gps_clock|random_device)\b")

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>\s+"
    r"([A-Za-z_]\w*)\s*[;{=]")
RANGE_FOR_RE = re.compile(
    r"\bfor\s*\(\s*[^;()]*?:\s*\(?\s*([A-Za-z_][\w.\->\[\]]*)\s*\)")

USING_ALIAS_RE = re.compile(r"\busing\s+([A-Za-z_]\w*)\s*=\s*([^;]+);")
TYPEDEF_RE = re.compile(r"\btypedef\s+([^;]+?)\s+([A-Za-z_]\w*)\s*;")

KW_NOT_FUNCS = frozenset((
    "if", "for", "while", "switch", "catch", "do", "else", "try",
    "return", "sizeof", "alignof", "decltype", "noexcept",
    "static_assert", "defined", "new", "delete", "throw", "case",
    "assert",
))
CAST_NAMES = frozenset((
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
))
# Method names so common on std types (atomics, streams, containers)
# that linking an unknown-receiver call to a same-named repo method
# would fabricate edges (e.g. `flag.load()` -> CacheHierarchy::load).
AMBIGUOUS_METHODS = frozenset((
    "load", "store", "read", "write", "get", "reset", "size", "empty",
    "begin", "end", "push", "pop", "front", "back", "at", "clear",
    "data", "swap", "count", "find", "erase", "open", "close", "str",
    "c_str", "lock", "unlock", "wait", "join", "detach", "test",
    "value", "min", "max", "fill", "good", "fail", "eof", "tellg",
    "seekg", "exchange", "notify_one", "notify_all",
))

GLOBAL_SKIP_HEADS = (
    "using", "typedef", "template", "extern", "friend",
    "static_assert", "struct", "class", "enum", "union", "namespace",
    "public", "private", "protected", "case", "goto", "return",
)
GLOBAL_VAR_RE = re.compile(
    r"^(?:(?:static|inline|thread_local)\s+)*"
    r"[A-Za-z_][\w:<>,\s*&]*[\s*&]"
    r"([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?$")


class Func:
    """One function definition (overloads of one qualified name are
    merged: calls and events are unioned, which over-approximates
    safely for reachability)."""

    __slots__ = ("qname", "cls", "name", "file", "line", "calls",
                 "events", "is_setup", "is_ctor")

    def __init__(self, qname, cls, name, file, line):
        self.qname = qname
        self.cls = cls
        self.name = name
        self.file = file
        self.line = line
        # calls: ('free'|'qual', text, line) | ('member', base, m, line)
        #        | ('typed', TypeName, method, line)
        self.calls = []
        # events: (kind, line, detail); kind in
        #   alloc | clock | stats | uiter
        self.events = []
        self.is_setup = bool(SETUP_FUNC_RE.match(name))
        self.is_ctor = (cls is not None and (name == cls
                                             or name == "~" + cls))


class Program:
    """The whole-program IR both frontends produce."""

    def __init__(self):
        self.funcs: dict[str, Func] = {}
        # (file, line, name, detail) for namespace-scope mutable state
        self.globals: list[tuple[str, int, str, str]] = []
        self.aliases: dict[str, str] = {}
        self.unordered_vars: set[str] = set()
        self.member_types: dict[str, dict[str, str]] = {}

    def func(self, qname, cls, name, file, line) -> Func:
        f = self.funcs.get(qname)
        if f is None:
            f = Func(qname, cls, name, file, line)
            self.funcs[qname] = f
        return f

    def banned_aliases(self) -> set[str]:
        """Alias names that (transitively) denote a banned clock or
        entropy type."""
        banned = set()
        for _ in range(4):  # bounded transitive closure
            for name, rhs in self.aliases.items():
                if name in banned:
                    continue
                if CLOCK_TYPE_RE.search(rhs):
                    banned.add(name)
                    continue
                for tok in re.findall(r"[A-Za-z_]\w*", rhs):
                    if tok in banned:
                        banned.add(name)
                        break
        return banned


# ---------------------------------------------------------------------
# Text frontend
# ---------------------------------------------------------------------

def _blank_preprocessor(code: str) -> str:
    out = []
    cont = False
    for line in code.split("\n"):
        if cont or line.lstrip().startswith("#"):
            cont = line.rstrip().endswith("\\")
            out.append("")
        else:
            cont = False
            out.append(line)
    return "\n".join(out)


FUNC_NAME_RE = re.compile(
    r"((?:[A-Za-z_]\w*\s*::\s*)*(?:operator\s*[^\s(]+|~?[A-Za-z_]\w*))"
    r"\s*\(")
CLASS_RE = re.compile(
    r"\b(class|struct|union)\s+([A-Za-z_]\w*)\s*(?:final\s*)?"
    r"(?::[^{]*)?$")
MEMBER_VAR_RE = re.compile(
    r"^(?:(?:static|mutable|const|constexpr|inline)\s+)*"
    r"([A-Za-z_][\w:]*(?:\s*<[^;]*>)?)\s*((?:[&*]\s*)*)"
    r"([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*(?:=[^;]*|\{[^;]*\})?$")
LOCAL_VAR_RE = re.compile(
    r"^\s*(?:const\s+)?([A-Za-z_][\w:]*(?:<[^;()=]*>)?)"
    r"\s*[&*]*\s*([A-Za-z_]\w*)\s*[=;({]")
FREE_CALL_RE = re.compile(
    r"(?<![\w.>:])([A-Za-z_]\w*(?:\s*::\s*[A-Za-z_]\w*)*)\s*\(")
MEMBER_CALL_RE = re.compile(
    r"([A-Za-z_]\w*(?:\[[^\]]*\])?)\s*(?:\.|->)\s*([A-Za-z_]\w*)\s*\(")


def _clean_type(t: str) -> str:
    """Reduce a declared type to the class name that owns the methods
    a member call on it would hit."""
    t = re.sub(r"\b(const|volatile|struct|class|typename|mutable)\b",
               " ", t)
    m = re.search(
        r"\b(?:unique_ptr|shared_ptr|vector|array|deque|optional|"
        r"reference_wrapper)\s*<\s*([A-Za-z_][\w:]*)", t)
    if m:
        t = m.group(1)
    t = re.sub(r"<.*", "", t).strip().rstrip("&* ")
    return t.split("::")[-1].strip()


PARAM_RE = re.compile(
    r"(?:const\s+)?([A-Za-z_][\w:]*(?:\s*<[^<>]*>)?)\s*[&*]*\s*"
    r"([A-Za-z_]\w*)\s*(?:=[^,]*)?$")


def _param_types(sig: str) -> dict[str, str]:
    """Receiver types for function parameters, from the signature text
    accumulated in pass 1 (`Victim fill(Addr addr, bool dirty, ...)`)."""
    o = sig.find("(")
    if o < 0:
        return {}
    depth, close = 0, -1
    for i in range(o, len(sig)):
        if sig[i] == "(":
            depth += 1
        elif sig[i] == ")":
            depth -= 1
            if depth == 0:
                close = i
                break
    if close < 0:
        return {}
    out: dict[str, str] = {}
    part, depth2 = [], 0
    for ch in sig[o + 1:close] + ",":
        if ch in "<([":
            depth2 += 1
        elif ch in ">)]":
            depth2 -= 1
        if ch == "," and depth2 == 0:
            m = PARAM_RE.match(" ".join("".join(part).split()))
            if m and m.group(1) not in ("void",):
                out[m.group(2)] = _clean_type(m.group(1))
            part = []
        else:
            part.append(ch)
    return out


def _classify_block(stmt: str, in_func: bool):
    """Decide what an opening `{` introduces, from the statement text
    accumulated since the previous `;`/`{`/`}`."""
    s = " ".join(stmt.split())
    if in_func or not s:
        return ("block", None)
    if s[-1] in "=,(" or s.endswith("return"):
        return ("block", None)  # brace initializer / lambda-ish
    if re.match(r"^(inline\s+)?namespace\b", s) and "(" not in s:
        m = re.match(r"^(?:inline\s+)?namespace\s*([A-Za-z_]\w*)?", s)
        return ("namespace", m.group(1) if m else None)
    if re.match(r'^extern\s*"', s):
        return ("namespace", None)
    if s.startswith("enum") or re.search(r"\benum\s+(class\s+)?\w*$", s):
        return ("enum", None)
    cm = CLASS_RE.search(s)
    if cm and not s.startswith("enum"):
        return ("class", cm.group(2))
    # The first call-shaped identifier is the function name: the house
    # style puts the return type before it and a constructor
    # initializer list after it, so taking the first match is exact
    # for both.
    for m in FUNC_NAME_RE.finditer(s):
        name = re.sub(r"\s", "", m.group(1))
        last = name.rsplit("::", 1)[-1]
        if last in KW_NOT_FUNCS or last in CAST_NAMES:
            continue
        return ("func", name)
    if "(" in s and s.rstrip().endswith(")"):
        return ("func", None)  # operator or otherwise unnamed
    return ("block", None)


def parse_text_file(prog: Program, rel: str, text: str) -> None:
    """Scanner for the repo house style: tracks namespace/class/function
    nesting by brace depth, records function extents, then extracts
    calls and rule events from each body."""
    code = _blank_preprocessor(strip_comments_and_strings(text))
    lines = code.split("\n")

    for m in USING_ALIAS_RE.finditer(code):
        prog.aliases[m.group(1)] = m.group(2)
    for m in TYPEDEF_RE.finditer(code):
        prog.aliases[m.group(2)] = m.group(1)
    for m in UNORDERED_DECL_RE.finditer(code):
        prog.unordered_vars.add(m.group(1))

    # -- pass 1: block structure ---------------------------------------
    stack = [{"kind": "top", "name": None, "func": None}]
    stmt: list[str] = []
    stmt_line = 1
    line_no = 1
    # entries: (func, start_line, [end_line], signature_text)
    func_spans: list[tuple] = []
    anon = [0]

    def innermost(kind):
        for ctx in reversed(stack):
            if ctx["kind"] == kind:
                return ctx
        return None

    def in_function():
        return any(c["kind"] == "func" for c in stack)

    def handle_statement(s_text, s_line):
        top = stack[-1]["kind"]
        s = " ".join(s_text.split())
        if not s:
            return
        if top == "class":
            mv = MEMBER_VAR_RE.match(s)
            if mv and "(" not in mv.group(1):
                cls = stack[-1]["name"]
                if cls:
                    prog.member_types.setdefault(cls, {})[
                        mv.group(3)] = _clean_type(mv.group(1))
            return
        if top not in ("top", "namespace"):
            return
        head = s.split(None, 1)[0] if s.split() else ""
        head = head.split("<")[0]
        if head in GLOBAL_SKIP_HEADS or head.startswith("#"):
            return
        lhs = s.split("=", 1)[0].strip() if "=" in s else s
        if "(" in lhs or re.search(r"\b(const|constexpr|concept)\b", lhs):
            return
        gv = GLOBAL_VAR_RE.match(lhs)
        if gv:
            prog.globals.append((rel, s_line, gv.group(1), s[:60]))

    i, n = 0, len(code)
    has_content = False
    while i < n:
        c = code[i]
        if c == "\n":
            line_no += 1
            stmt.append(" ")
        elif c == "{":
            kind, name = _classify_block("".join(stmt), in_function())
            ctx = {"kind": kind, "name": name, "func": None}
            if kind == "func":
                if name is None:
                    anon[0] += 1
                    name = f"@anon{anon[0]}"
                cls = None
                fname = name
                if "::" in name:
                    cls, fname = name.rsplit("::", 1)
                    cls = cls.split("::")[-1]
                else:
                    encl = innermost("class")
                    if encl is not None:
                        cls = encl["name"]
                qname = f"{cls}::{fname}" if cls else fname
                f = prog.func(qname, cls, fname, rel, stmt_line)
                ctx["func"] = f
                func_spans.append(
                    (f, line_no, [line_no], "".join(stmt)))
                ctx["span"] = func_spans[-1]
            stack.append(ctx)
            stmt = []
            has_content = False
            stmt_line = line_no
        elif c == "}":
            if len(stack) > 1:
                popped = stack.pop()
                if popped["kind"] == "func" and "span" in popped:
                    popped["span"][2][0] = line_no
            stmt = []
            has_content = False
            stmt_line = line_no
        elif c == ";":
            handle_statement("".join(stmt), stmt_line)
            stmt = []
            has_content = False
            stmt_line = line_no
        else:
            if not has_content and not c.isspace():
                stmt_line = line_no
                has_content = True
            stmt.append(c)
        i += 1

    # -- pass 2: per-function body extraction --------------------------
    banned_aliases = prog.banned_aliases()
    for f, start, end_box, sig in func_spans:
        end = end_box[0]
        local_types = _param_types(sig)
        for ln in range(start, min(end, len(lines)) + 1):
            line = lines[ln - 1]
            lv = LOCAL_VAR_RE.match(line)
            if lv and lv.group(1) not in ("return", "delete", "throw",
                                          "auto", "else", "new"):
                local_types[lv.group(2)] = _clean_type(lv.group(1))
            for m in MEMBER_CALL_RE.finditer(line):
                base = re.sub(r"\[[^\]]*\]", "", m.group(1))
                method = m.group(2)
                t = local_types.get(base)
                if t is None and base == "this":
                    t = f.cls
                if t is None:
                    t = prog.member_types.get(f.cls or "", {}).get(base)
                if t is not None:
                    f.calls.append(("typed", t, method, ln))
                else:
                    f.calls.append(("member", base, method, ln))
            for m in FREE_CALL_RE.finditer(line):
                name = re.sub(r"\s", "", m.group(1))
                last = name.rsplit("::", 1)[-1]
                if last in KW_NOT_FUNCS or last in CAST_NAMES:
                    continue
                f.calls.append(
                    ("qual" if "::" in name else "free", name, ln))
            if ALLOC_MEMBER_RE.search(line):
                f.events.append(
                    ("alloc", ln,
                     ALLOC_MEMBER_RE.search(line).group(1)))
            if ALLOC_MAKE_RE.search(line):
                f.events.append(("alloc", ln, "make_unique/make_shared"))
            if ALLOC_NEW_RE.search(f" {line}"):
                if "= delete" not in line:
                    f.events.append(("alloc", ln, "operator new"))
            if STATS_WRITE_RE.search(line):
                f.events.append(("stats", ln, "stats write"))
            for pat, what in DETERMINISM_BANNED:
                if pat.search(line):
                    f.events.append(("clock", ln, what))
            for alias in banned_aliases:
                if re.search(rf"\b{alias}\s*::\s*\w+\s*\(", line) or \
                        re.search(rf"\b{alias}\s+\w+\s*[;({{=]", line):
                    f.events.append(
                        ("clock", ln,
                         f"banned clock/entropy via alias '{alias}' = "
                         f"{prog.aliases.get(alias, '?').strip()}"))
            rf = RANGE_FOR_RE.search(line)
            if rf:
                var = re.sub(r"\[[^\]]*\]", "", rf.group(1))
                var = re.split(r"\.|->", var)[-1]
                if var in prog.unordered_vars:
                    f.events.append(("uiter", ln, var))
            for m in CFG_READ_RE.finditer(line):
                if not m.group(3):
                    f.events.append(("cfgread", ln, m.group(2)))


# ---------------------------------------------------------------------
# Clang AST frontend
# ---------------------------------------------------------------------

def find_clangxx() -> str | None:
    cand = os.environ.get("CATCH_CLANGXX")
    if cand:
        return cand
    for name in ("clang++", "clang++-19", "clang++-18", "clang++-17",
                 "clang++-16", "clang++-15", "clang++-14"):
        for d in os.environ.get("PATH", "").split(os.pathsep):
            p = Path(d) / name
            if p.is_file() and os.access(p, os.X_OK):
                return str(p)
    return None


def load_compdb(compdb: Path, root: Path) -> list[dict]:
    entries = json.loads(compdb.read_text())
    src = (root / "src").resolve()
    out, seen = [], set()
    for e in entries:
        f = Path(e["file"])
        if not f.is_absolute():
            f = Path(e.get("directory", ".")) / f
        f = f.resolve()
        if src not in f.parents:
            continue
        if f in seen:
            continue
        seen.add(f)
        out.append({"file": f, "directory": e.get("directory", "."),
                    "command": e.get("command")
                    or shlex.join(e.get("arguments", []))})
    return out


def clang_astdump_cmd(clangxx: str, entry: dict) -> list[str]:
    args = shlex.split(entry["command"])
    out = [clangxx]
    skip = False
    for a in args[1:]:
        if skip:
            skip = False
            continue
        if a in ("-o", "-c"):
            skip = a == "-o"
            continue
        if a == str(entry["file"]):
            continue
        out.append(a)
    out += ["-w", "-fsyntax-only", "-Xclang", "-ast-dump=json",
            str(entry["file"])]
    return out


def _qt(node) -> str:
    t = node.get("type") or {}
    return (t.get("desugaredQualType") or t.get("qualType") or "")


class ClangExtractor:
    """Walks one TU's JSON AST into the shared IR. Location tracking is
    stateful: clang omits repeated file/line fields."""

    def __init__(self, prog: Program, root: Path):
        self.prog = prog
        self.root = root.resolve()
        self.cur_file = ""
        self.cur_line = 0
        self.record_by_id: dict[str, str] = {}
        self.record_stack: list[str] = []
        self.func: Func | None = None
        self.out_funcs: list[dict] = []
        self.out_globals: list[tuple] = []

    def _update_loc(self, node) -> None:
        loc = node.get("loc") or {}
        for part in (loc.get("spellingLoc"), loc.get("expansionLoc"),
                     loc):
            if not part:
                continue
            if "file" in part:
                self.cur_file = part["file"]
            if "line" in part:
                self.cur_line = part["line"]

    def _rel(self) -> str | None:
        try:
            p = Path(self.cur_file).resolve()
        except OSError:
            return None
        try:
            return p.relative_to(self.root).as_posix()
        except ValueError:
            return None

    def walk_tu(self, tu: dict) -> None:
        self._collect_record_ids(tu)
        for child in tu.get("inner", []) or []:
            self.visit(child)

    def _collect_record_ids(self, node) -> None:
        """Map AST node ids of class/struct decls to their names, so
        out-of-line method definitions (whose parent record is not on
        the visit stack) resolve via parentDeclContextId."""
        if not isinstance(node, dict):
            return
        if node.get("kind") in ("CXXRecordDecl", "ClassTemplateDecl") \
                and node.get("name") and node.get("id"):
            self.record_by_id.setdefault(node["id"], node["name"])
        for ch in node.get("inner", []) or []:
            self._collect_record_ids(ch)

    def visit(self, node) -> None:
        if not isinstance(node, dict):
            return
        kind = node.get("kind", "")
        self._update_loc(node)

        if kind in ("NamespaceDecl", "LinkageSpecDecl",
                    "ExternCContextDecl"):
            for ch in node.get("inner", []) or []:
                self.visit(ch)
            return
        if kind == "CXXRecordDecl":
            name = node.get("name")
            self.record_stack.append(name or "")
            for ch in node.get("inner", []) or []:
                self.visit(ch)
            self.record_stack.pop()
            return
        if kind in ("FunctionDecl", "CXXMethodDecl",
                    "CXXConstructorDecl", "CXXDestructorDecl",
                    "CXXConversionDecl"):
            self.visit_function(node)
            return
        if kind == "VarDecl" and self.func is None \
                and not self.record_stack:
            self.visit_global(node)
            return
        if kind in ("TypeAliasDecl", "TypedefDecl"):
            name = node.get("name")
            under = ((node.get("type") or {}).get("qualType")) or ""
            if name:
                self.prog.aliases.setdefault(name, under)
        for ch in node.get("inner", []) or []:
            self.visit(ch)

    def visit_global(self, node) -> None:
        rel = self._rel()
        if rel is None or not rel.startswith("src/"):
            return
        if node.get("constexpr"):
            return
        qt = ((node.get("type") or {}).get("qualType")) or ""
        if qt.startswith("const ") or " const" in qt.split("[")[0]:
            return
        if node.get("storageClass") == "extern":
            return
        name = node.get("name") or "?"
        self.out_globals.append((rel, self.cur_line, name, qt[:60]))

    def visit_function(self, node) -> None:
        body = None
        for ch in node.get("inner", []) or []:
            if isinstance(ch, dict) and ch.get("kind") == "CompoundStmt":
                body = ch
        rel = self._rel()
        if body is None or rel is None or not rel.startswith("src/"):
            for ch in node.get("inner", []) or []:
                self.visit(ch)
            return
        name = node.get("name") or "@anon"
        cls = None
        kind = node.get("kind")
        if kind in ("CXXMethodDecl", "CXXConstructorDecl",
                    "CXXDestructorDecl", "CXXConversionDecl"):
            # In-class definitions find the record on the visit stack;
            # out-of-line ones resolve via parentDeclContextId.
            cls = (self.record_stack[-1] if self.record_stack else None)
            if cls is None:
                cls = self.record_by_id.get(
                    node.get("parentDeclContextId") or "")
        fdesc = {
            "name": name, "cls": cls, "file": rel,
            "line": self.cur_line, "calls": [], "events": [],
        }
        prev = self.func
        self.func = fdesc  # duck-typed container during walk
        self.scan_body(body)
        self.func = prev
        self.out_funcs.append(fdesc)

    # -- body scanning -------------------------------------------------

    def scan_body(self, node) -> None:
        if not isinstance(node, dict):
            return
        kind = node.get("kind", "")
        self._update_loc(node)
        line = self.cur_line
        f = self.func

        if kind == "CXXNewExpr":
            f["events"].append(("alloc", line, "operator new"))
        elif kind == "CXXForRangeStmt":
            if "unordered_" in json.dumps(
                    [_qt(ch) for ch in (node.get("inner") or [])
                     if isinstance(ch, dict)]):
                f["events"].append(("uiter", line, "range-for"))
        elif kind in ("UnaryOperator", "CompoundAssignOperator",
                      "BinaryOperator"):
            op = node.get("opcode", "")
            writes = (kind == "CompoundAssignOperator"
                      or op in ("++", "--", "="))
            if writes and self._lhs_is_stats(node):
                f["events"].append(("stats", line, f"'{op}' on stats"))
        elif kind == "CXXMemberCallExpr":
            me = None
            inner = node.get("inner") or []
            if inner and isinstance(inner[0], dict) \
                    and inner[0].get("kind") == "MemberExpr":
                me = inner[0]
            if me is not None:
                method = (me.get("name") or "").lstrip("->.")
                base_t = ""
                for ch in me.get("inner") or []:
                    if isinstance(ch, dict):
                        base_t = _qt(ch) or base_t
                t = _clean_type(base_t) if base_t else ""
                if method in ALLOC_NAMES and (
                        "std::" in base_t or "basic_string" in base_t
                        or not t or t[0].islower()):
                    f["events"].append(("alloc", line, method))
                if t:
                    f["calls"].append(("typed", t, method, line))
                else:
                    f["calls"].append(("member", "?", method, line))
        elif kind == "CallExpr":
            callee = self._callee_name(node)
            if callee:
                if callee in ("make_unique", "make_shared"):
                    f["events"].append(
                        ("alloc", line, "make_unique/make_shared"))
                elif callee in ("rand", "srand", "random",
                                "gettimeofday", "clock_gettime",
                                "timespec_get", "time"):
                    f["events"].append(
                        ("clock", line, f"libc {callee}()"))
                else:
                    f["calls"].append(("free", callee, line))
        elif kind in ("DeclRefExpr", "CXXConstructExpr",
                      "CXXTemporaryObjectExpr"):
            qt = _qt(node)
            if CLOCK_TYPE_RE.search(qt) and "time_point" not in qt:
                f["events"].append(
                    ("clock", line, f"clock/entropy type {qt[:40]}"))

        for ch in node.get("inner", []) or []:
            self.scan_body(ch)

    def _lhs_is_stats(self, node) -> bool:
        inner = node.get("inner") or []
        if not inner:
            return False
        return self._subtree_has_stats_base(inner[0], depth=0)

    def _subtree_has_stats_base(self, node, depth) -> bool:
        if not isinstance(node, dict) or depth > 8:
            return False
        if node.get("kind") in ("MemberExpr", "DeclRefExpr"):
            nm = node.get("name") or \
                ((node.get("referencedDecl") or {}).get("name")) or ""
            if nm.lstrip("->.") in ("stats_", "stats"):
                return True
        return any(self._subtree_has_stats_base(ch, depth + 1)
                   for ch in (node.get("inner") or []))

    @staticmethod
    def _callee_name(node) -> str | None:
        inner = node.get("inner") or []
        if not inner:
            return None
        cur = inner[0]
        for _ in range(4):
            if not isinstance(cur, dict):
                return None
            if cur.get("kind") == "DeclRefExpr":
                rd = cur.get("referencedDecl") or {}
                return rd.get("name")
            nxt = cur.get("inner") or []
            if not nxt:
                return None
            cur = nxt[0]
        return None


def _headers_digest(root: Path) -> str:
    h = hashlib.sha256()
    for p in sorted((root / "src").rglob("*.hh")):
        h.update(p.relative_to(root).as_posix().encode())
        h.update(p.read_bytes())
    return h.hexdigest()


def run_clang_frontend(prog: Program, root: Path, compdb: Path,
                       cache_dir: Path | None, clangxx: str,
                       verbose: bool) -> list[str]:
    """Returns a list of TU files that fell back to the text frontend
    (clang failed or produced unparseable output)."""
    entries = load_compdb(compdb, root)
    if not entries:
        raise RuntimeError(f"no src/ TUs in {compdb}")
    ver = subprocess.run([clangxx, "--version"], capture_output=True,
                         text=True).stdout.splitlines()[:1]
    hdr_digest = _headers_digest(root)
    fallbacks = []
    if cache_dir:
        cache_dir.mkdir(parents=True, exist_ok=True)
    for e in entries:
        tu = e["file"]
        rel = tu.resolve().relative_to(root.resolve()).as_posix()
        key = hashlib.sha256()
        key.update(EXTRACTOR_VERSION.encode())
        key.update((ver[0] if ver else "?").encode())
        key.update(e["command"].encode())
        key.update(tu.read_bytes())
        key.update(hdr_digest.encode())
        marker = (cache_dir / f"{tu.name}.{key.hexdigest()[:24]}.json"
                  ) if cache_dir else None
        ir = None
        if marker is not None and marker.is_file():
            try:
                ir = json.loads(marker.read_text())
            except (OSError, json.JSONDecodeError):
                ir = None
        if ir is None:
            cmd = clang_astdump_cmd(clangxx, e)
            if verbose:
                print(f"catch_analyze: clang {rel}", file=sys.stderr)
            try:
                proc = subprocess.run(
                    cmd, cwd=e["directory"], capture_output=True,
                    text=True, timeout=300)
                ast = json.loads(proc.stdout)
                ex = ClangExtractor(prog, root)
                ex.walk_tu(ast)
                ir = {"funcs": ex.out_funcs,
                      "globals": [list(g) for g in ex.out_globals],
                      "aliases": dict(prog.aliases)}
            except (subprocess.SubprocessError, OSError,
                    json.JSONDecodeError, RecursionError) as err:
                if verbose:
                    print(f"catch_analyze: clang failed on {rel}: "
                          f"{err}; using text frontend", file=sys.stderr)
                fallbacks.append(rel)
                parse_text_file(prog, rel,
                                tu.read_text(errors="replace"))
                continue
            if marker is not None:
                tmp = marker.with_suffix(".tmp")
                tmp.write_text(json.dumps(ir))
                tmp.replace(marker)
        merge_ir(prog, ir)
    # Headers still need the text scan for member types, aliases and
    # inline definitions in TUs clang skipped.
    return fallbacks


def merge_ir(prog: Program, ir: dict) -> None:
    for fd in ir.get("funcs", []):
        cls = fd.get("cls")
        name = fd["name"]
        qname = f"{cls}::{name}" if cls else name
        f = prog.func(qname, cls, name, fd["file"], fd["line"])
        f.calls.extend(tuple(c) for c in fd.get("calls", []))
        existing = set(f.events)
        for ev in fd.get("events", []):
            t = tuple(ev)
            if t not in existing:
                existing.add(t)
                f.events.append(t)
    for g in ir.get("globals", []):
        t = tuple(g)
        if t not in prog.globals:
            prog.globals.append(t)
    for k, v in (ir.get("aliases") or {}).items():
        prog.aliases.setdefault(k, v)


# ---------------------------------------------------------------------
# Rules engine
# ---------------------------------------------------------------------

class Analyzer:
    def __init__(self, root: Path, prog: Program):
        self.root = root
        self.prog = prog
        self.findings: list[tuple[str, int, str, str]] = []
        self.file_waivers: dict[tuple[str, str], int] = {}
        self.boundaries: dict[tuple[str, str], int] = {}
        self.used_file_waivers: set[tuple[str, str]] = set()
        self.used_boundaries: set[tuple[str, str]] = set()
        self.declared_inline: set[tuple[str, int, str]] = set()
        self.used_inline: set[tuple[str, int, str]] = set()
        # file -> line -> rule -> line the waiver comment is on (a
        # waiver applies to its own line and the next, so it can sit
        # NOLINTNEXTLINE-style above a guarded statement).
        self.inline: dict[str, dict[int, dict[str, int]]] = {}
        self._load_waivers()
        self._load_inline()
        self._link()

    # -- waivers -------------------------------------------------------

    def _load_waivers(self) -> None:
        wf = self.root / "tools" / "analysis" / "waivers.txt"
        if not wf.is_file():
            return
        for lineno, raw in enumerate(wf.read_text().splitlines(), 1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2:
                print(f"catch_analyze: malformed waiver: {raw!r}",
                      file=sys.stderr)
                sys.exit(2)
            rule, target = parts
            if target.startswith("boundary:"):
                self.boundaries[(rule, target[len("boundary:"):])] = \
                    lineno
            else:
                self.file_waivers[(rule, target)] = lineno

    def _load_inline(self) -> None:
        files = {f.file for f in self.prog.funcs.values()}
        files |= {g[0] for g in self.prog.globals}
        for rel in sorted(files):
            p = self.root / rel
            if not p.is_file():
                continue
            per: dict[int, dict[str, int]] = {}
            for lineno, line in enumerate(
                    p.read_text(errors="replace").splitlines(), 1):
                m = INLINE_WAIVER_RE.search(line)
                if m:
                    rules = {r.strip() for r in m.group(1).split(",")}
                    for r in rules:
                        # A waiver on the line itself beats one
                        # spilling down from the previous line.
                        per.setdefault(lineno, {})[r] = lineno
                        per.setdefault(lineno + 1, {}).setdefault(
                            r, lineno)
                        self.declared_inline.add((rel, lineno, r))
                if LINT_STEP_ALLOC_WAIVER_RE.search(line):
                    # A line already waived for the regex step-alloc
                    # rule is waived for the transitive rule too.
                    per.setdefault(lineno, {}).setdefault(
                        "step-alloc-transitive", lineno)
            self.inline[rel] = per

    def waived(self, rule: str, rel: str, lineno: int) -> bool:
        if (rule, rel) in self.file_waivers:
            self.used_file_waivers.add((rule, rel))
            return True
        decl = self.inline.get(rel, {}).get(lineno, {}).get(rule)
        if decl is not None:
            if (rel, decl, rule) in self.declared_inline:
                self.used_inline.add((rel, decl, rule))
            return True
        return False

    def boundary(self, rule: str, qname: str) -> bool:
        if (rule, qname) in self.boundaries:
            self.used_boundaries.add((rule, qname))
            return True
        return False

    # -- call graph ----------------------------------------------------

    def _link(self) -> None:
        by_name: dict[str, list[Func]] = {}
        for f in self.prog.funcs.values():
            by_name.setdefault(f.name, []).append(f)
        self.edges: dict[str, list[tuple[str, int]]] = {}
        for f in self.prog.funcs.values():
            out = []
            for call in f.calls:
                if call[0] == "typed":
                    _, t, method, ln = call
                    target = self.prog.funcs.get(f"{t}::{method}")
                    if target is not None:
                        out.append((target.qname, ln))
                    continue
                if call[0] == "member":
                    _, _base, method, ln = call
                    if method in AMBIGUOUS_METHODS:
                        # std types share this name; an edge guessed
                        # here is more likely wrong than right.
                        continue
                    cands = by_name.get(method, [])
                    if len(cands) == 1:
                        out.append((cands[0].qname, ln))
                    elif 1 < len(cands) <= 6:
                        # Unknown receiver: over-approximate.
                        out.extend((c.qname, ln) for c in cands)
                    continue
                kind, name, ln = call
                if kind == "qual":
                    cls, fname = name.rsplit("::", 1)
                    cls = cls.split("::")[-1]
                    target = self.prog.funcs.get(f"{cls}::{fname}")
                    if target is not None:
                        out.append((target.qname, ln))
                    continue
                # free call: prefer a method of the same class, then
                # free functions of that name.
                if f.cls and f"{f.cls}::{name}" in self.prog.funcs:
                    out.append((f"{f.cls}::{name}", ln))
                    continue
                if name in self.prog.funcs:
                    out.append((name, ln))
            self.edges[f.qname] = out

    def _reach(self, rule: str, entries: list[str], cut=None):
        """BFS honouring setup/ctor/boundary cuts; returns {qname:
        chain} where chain is the qname path from the entry."""
        parent: dict[str, str | None] = {}
        queue = []
        for e in entries:
            if e in self.prog.funcs and not self.boundary(rule, e):
                parent[e] = None
                queue.append(e)
        head = 0
        while head < len(queue):
            cur = queue[head]
            head += 1
            for callee, _ln in self.edges.get(cur, ()):
                if callee in parent:
                    continue
                f = self.prog.funcs[callee]
                if f.is_setup or f.is_ctor:
                    continue
                if cut is not None and cut(callee):
                    continue
                if self.boundary(rule, callee):
                    continue
                parent[callee] = cur
                queue.append(callee)
        chains = {}
        for q in parent:
            path = [q]
            while parent[path[-1]] is not None:
                path.append(parent[path[-1]])
            chains[q] = list(reversed(path))
        return chains

    def report(self, rel, lineno, rule, msg) -> None:
        if not self.waived(rule, rel, lineno):
            self.findings.append((rel, lineno, rule, msg))

    # -- rules ---------------------------------------------------------

    def check_step_alloc_transitive(self) -> None:
        rule = "step-alloc-transitive"
        chains = self._reach(rule, list(STEP_ENTRY_POINTS))
        for qname, chain in sorted(chains.items()):
            f = self.prog.funcs[qname]
            for kind, ln, detail in f.events:
                if kind != "alloc":
                    continue
                path = " -> ".join(chain)
                self.report(
                    f.file, ln, rule,
                    f"{detail} in {qname}() is reachable from "
                    f"per-cycle entry {chain[0]}() (path: {path}) — "
                    "the hot loop must not allocate; hoist the "
                    "allocation to construction/bind time or add a "
                    "boundary waiver with a reason")

    def check_warming_purity(self) -> None:
        rule = "warming-purity"
        # The timing-model *edge* is the finding; don't traverse into
        # the timing model looking for stats (they're legitimate
        # there — that's the detailed path).
        chains = self._reach(rule, list(WARM_ENTRY_POINTS),
                             cut=lambda q: TIMING_MODEL_RE.match(q))
        for qname, chain in sorted(chains.items()):
            f = self.prog.funcs[qname]
            for kind, ln, detail in f.events:
                if kind != "stats":
                    continue
                path = " -> ".join(chain)
                self.report(
                    f.file, ln, rule,
                    f"stats mutation ({detail}) in {qname}() is "
                    f"reachable from warming entry {chain[0]}() "
                    f"(path: {path}) — functional warming must be "
                    "stats-free (the FastForward contract)")
            for callee, ln in self.edges.get(qname, ()):
                if TIMING_MODEL_RE.match(callee):
                    path = " -> ".join(chain)
                    self.report(
                        f.file, ln, rule,
                        f"call into the timing model ({callee}) from "
                        f"{qname}() on the warming path (path: {path} "
                        f"-> {callee}) — warming consumes no simulated "
                        "time")

    def check_snapshot_hot_path(self) -> None:
        rule = "snapshot-hot-path"
        chains = self._reach(rule, list(STEP_ENTRY_POINTS))
        for qname, chain in sorted(chains.items()):
            if not SNAPSHOT_FUNC_RE.search(qname):
                continue
            f = self.prog.funcs[qname]
            path = " -> ".join(chain)
            self.report(
                f.file, f.line, rule,
                f"{qname}() is reachable from per-cycle entry "
                f"{chain[0]}() (path: {path}) — warmed-state "
                "serialization is a run-boundary operation and must "
                "stay off the hot loop")

    def _digest_fields(self):
        """Identifier tokens in warmConfigDigest()'s body — unioned
        with sampleScheduleDigest()'s when present, since the schedule
        knobs re-key the window-boundary snapshots through that second
        digest — or None when this tree carries no digest (rule
        skipped)."""
        path = self.root / DIGEST_FILE
        if not path.is_file():
            return None
        text = strip_comments_and_strings(
            path.read_text(encoding="utf-8", errors="replace"))
        fields: set[str] = set()
        found = False
        for func in ("warmConfigDigest", "sampleScheduleDigest"):
            m = re.search(rf"^{func}\s*\(", text, re.M)
            if not m:
                continue
            found = True
            end = text.find("\n}", m.end())
            body = text[m.end():end if end >= 0 else len(text)]
            fields.update(re.findall(r"\w+", body))
        return frozenset(fields) if found else None

    def check_warm_digest(self) -> None:
        rule = "warm-digest"
        fields = self._digest_fields()
        if fields is None:
            return
        chains = self._reach(rule, list(WARM_ENTRY_POINTS),
                             cut=lambda q: TIMING_MODEL_RE.match(q))
        for qname, chain in sorted(chains.items()):
            f = self.prog.funcs[qname]
            for kind, ln, leaf in f.events:
                if kind != "cfgread" or leaf in fields:
                    continue
                path = " -> ".join(chain)
                self.report(
                    f.file, ln, rule,
                    f"config field '{leaf}' is read in {qname}() on "
                    f"the warming path (path: {path}) but does not "
                    "appear in warmConfigDigest() — a knob that can "
                    "shape warmed state must re-key the snapshot; "
                    "extend the digest, or waive a provably "
                    "timing-only read")

    def check_determinism_ast(self) -> None:
        for f in self.prog.funcs.values():
            if not f.file.startswith("src/"):
                continue
            for kind, ln, detail in f.events:
                if kind == "clock":
                    self.report(
                        f.file, ln, "determinism-ast",
                        f"{detail} in {f.qname}() — breaks bitwise "
                        "reproducibility; use the seeded catchsim::Rng "
                        "/ simulated time")

    def check_unordered_iter(self) -> None:
        for f in self.prog.funcs.values():
            if not f.file.startswith("src/"):
                continue
            for kind, ln, detail in f.events:
                if kind == "uiter":
                    self.report(
                        f.file, ln, "unordered-iter",
                        f"iteration over unordered container "
                        f"'{detail}' in {f.qname}() — visit order is "
                        "unspecified and varies across standard "
                        "libraries; iterate an ordered mirror or sort "
                        "the keys first")

    def check_global_state(self) -> None:
        for rel, ln, name, detail in self.prog.globals:
            if not rel.startswith("src/"):
                continue
            self.report(
                rel, ln, "global-state",
                f"non-const namespace-scope state '{name}' "
                f"({detail.strip()}) — mutable globals are a "
                "shared-state hazard at any job count; scope the "
                "state into a class or make it constexpr")

    def check_waivers(self) -> None:
        wf = "tools/analysis/waivers.txt"
        for (rule, target), lineno in sorted(
                self.file_waivers.items(), key=lambda kv: kv[1]):
            if (rule, target) not in self.used_file_waivers:
                self.findings.append(
                    (wf, lineno, "unused-waiver",
                     f"file waiver '{rule} {target}' no longer "
                     "suppresses any finding; remove it"))
        for (rule, qname), lineno in sorted(
                self.boundaries.items(), key=lambda kv: kv[1]):
            if (rule, qname) not in self.used_boundaries:
                self.findings.append(
                    (wf, lineno, "unused-waiver",
                     f"boundary waiver '{rule} boundary:{qname}' cuts "
                     "no reachable path; remove it"))
        for rel, lineno, rule in sorted(self.declared_inline):
            if (rel, lineno, rule) not in self.used_inline:
                self.findings.append(
                    (rel, lineno, "unused-waiver",
                     f"inline waiver allow({rule}) suppresses nothing "
                     "on this line; remove it"))

    def run(self, check_waivers: bool = False) -> int:
        self.check_step_alloc_transitive()
        self.check_warming_purity()
        self.check_snapshot_hot_path()
        self.check_warm_digest()
        self.check_determinism_ast()
        self.check_unordered_iter()
        self.check_global_state()
        if check_waivers:
            self.check_waivers()
        seen = set()
        for rel, lineno, rule, msg in sorted(self.findings):
            k = (rel, lineno, rule)
            if k in seen:
                continue
            seen.add(k)
            print(f"{rel}:{lineno}: [{rule}] {msg}")
        if seen:
            print(f"catch_analyze: {len(seen)} finding(s)",
                  file=sys.stderr)
            return 1
        return 0


# ---------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------

def build_program(root: Path, frontend: str, compdb: Path,
                  cache_dir: Path | None, verbose: bool) -> Program:
    prog = Program()
    clangxx = find_clangxx() if frontend in ("auto", "clang") else None
    use_clang = (frontend == "clang"
                 or (frontend == "auto" and clangxx
                     and compdb.is_file()))
    src = root / "src"
    headers = sorted(src.rglob("*.hh")) + sorted(src.rglob("*.h"))
    if use_clang:
        if clangxx is None:
            raise RuntimeError("clang++ not found (set CATCH_CLANGXX)")
        if not compdb.is_file():
            raise RuntimeError(
                f"{compdb} not found; configure first "
                "(cmake -B build -S .)")
        # Headers first: member types and aliases feed call linking
        # for any TUs that fall back to the text parser.
        for p in headers:
            parse_text_file(prog, p.relative_to(root).as_posix(),
                            p.read_text(errors="replace"))
        run_clang_frontend(prog, root, compdb, cache_dir, clangxx,
                           verbose)
    else:
        for p in headers + sorted(src.rglob("*.cc")) \
                + sorted(src.rglob("*.cpp")):
            parse_text_file(prog, p.relative_to(root).as_posix(),
                            p.read_text(errors="replace"))
    return prog


def main() -> int:
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parents[2])
    ap.add_argument("--compdb", type=Path, default=None,
                    help="compile_commands.json (default: "
                         "ROOT/build/compile_commands.json)")
    ap.add_argument("--frontend", choices=("auto", "clang", "text"),
                    default="auto")
    ap.add_argument("--cache-dir", type=Path,
                    default=os.environ.get("CATCH_ANALYZE_CACHE"),
                    help="cache extracted per-TU IR (clang frontend)")
    ap.add_argument("--check-waivers", action="store_true",
                    help="also fail on waivers that no longer "
                         "suppress any finding")
    ap.add_argument("--list-entries", action="store_true",
                    help="print which entry points resolved and exit")
    ap.add_argument("--dump-graph", action="store_true",
                    help="print the call graph edges and exit")
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args()
    sys.setrecursionlimit(30000)  # deep clang JSON expression trees

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"catch_analyze: {root} has no src/ directory",
              file=sys.stderr)
        return 2
    compdb = args.compdb or (root / "build" / "compile_commands.json")
    try:
        prog = build_program(root, args.frontend, compdb,
                             args.cache_dir, args.verbose)
    except RuntimeError as err:
        print(f"catch_analyze: {err}", file=sys.stderr)
        return 2

    analyzer = Analyzer(root, prog)
    if args.list_entries:
        for e in sorted(set(STEP_ENTRY_POINTS + WARM_ENTRY_POINTS)):
            mark = "ok " if e in prog.funcs else "MISSING"
            print(f"{mark} {e}")
        return 0
    if args.dump_graph:
        for q in sorted(analyzer.edges):
            for callee, ln in analyzer.edges[q]:
                print(f"{q} -> {callee}  "
                      f"({prog.funcs[q].file}:{ln})")
        return 0
    return analyzer.run(check_waivers=args.check_waivers)


if __name__ == "__main__":
    sys.exit(main())
