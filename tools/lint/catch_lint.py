#!/usr/bin/env python3
"""catchsim-specific lint rules that generic tools cannot express.

The simulator's headline guarantees are bitwise determinism (any job
count, any machine) and paper-faithful bookkeeping. Both are easy to
break with one careless line — an unseeded RNG, a wall-clock read, a
stat emitted twice — that compiles fine and passes a lucky test run.
This linter enforces the repo contracts statically:

  determinism   no std::rand/srand/random_device, and no wall-clock or
                steady-clock reads, anywhere in src/. All randomness
                must flow through the seeded catchsim::Rng; simulated
                time is the only time.
  env-gateway   no direct std::getenv outside src/common/env.hh. The
                environment is not synchronised; reads funnel through
                the audited single-threaded-startup gateway.
  raw-new-delete no `new`/`delete` expressions in src/ outside the
                allow-list (`= delete` declarations are fine). Owning
                allocations use std::make_unique / containers.
  test-coverage every *.cc under src/ is referenced by the test suite:
                some file in tests/ includes the header it implements
                (same-stem .hh, else a same-directory .hh it includes).
                Untestable files need a waiver with a reason.
  stats-once    JSON stat keys are registered exactly once per object
                scope (tracks JsonWriter open/close/field/object call
                sequences), so exports never silently shadow a counter.
  include-cc    no `#include "*.cc"` anywhere; translation units are
                composed by the build system, not textual inclusion.
  fatal-boundary library code in src/ never terminates the process on a
                recoverable error: no CATCHSIM_FATAL/CATCHSIM_PANIC,
                fatalAt/panicAt, or std::exit/abort outside the waived
                logging implementation. Recoverable failures return
                SimError/Expected (common/error.hh); CATCHSIM_ASSERT
                stays allowed for genuine invariant violations, and
                fatal() remains available at the CLI boundary (tools/,
                bench/), which this rule does not cover.
  step-alloc    the per-cycle hot loop never allocates: in the scoped
                files (src/core/ooo_core.cc, src/core/frontend.cc,
                src/cache/cache.cc) no container-growth or smart-pointer
                allocation call (push_back/emplace/insert/resize/
                reserve/assign, make_unique/make_shared) may appear
                outside constructors and the setup-time functions
                (bind*/rewind/reset*). Hot structures are sized once at
                construction; steady-state work reuses them. Waiverable
                for genuinely setup-only helpers.

Waivers:
  inline        append `// catch-lint: allow(<rule>)` to the line
  file-level    add `<rule> <repo-relative-path>  # reason` to
                tools/lint/waivers.txt

Exit status: 0 clean, 1 findings, 2 setup error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SRC_EXTS = {".cc", ".hh", ".cpp", ".hpp", ".h"}
LINT_TOPS = ("src", "tests", "bench", "tools", "examples")

INLINE_WAIVER_RE = re.compile(r"catch-lint:\s*allow\(([a-z\-]+(?:\s*,\s*[a-z\-]+)*)\)")

DETERMINISM_BANNED = [
    (re.compile(r"\bstd::rand\b|[^_\w]s?rand\s*\("), "libc rand/srand"),
    (re.compile(r"\brandom_device\b"), "std::random_device (unseeded entropy)"),
    (re.compile(r"\b(system_clock|steady_clock|high_resolution_clock)\b"),
     "wall-clock/monotonic clock read"),
    (re.compile(r"\b(gettimeofday|clock_gettime|timespec_get)\s*\("),
     "libc time read"),
    (re.compile(r"[^_\w]time\s*\(\s*(NULL|nullptr|0)\s*\)"), "time()"),
]

FATAL_BOUNDARY_BANNED = [
    (re.compile(r"\bCATCHSIM_(FATAL|PANIC)\b"),
     "CATCHSIM_FATAL/CATCHSIM_PANIC"),
    (re.compile(r"\b(fatalAt|panicAt|fatalImpl|panicImpl)\s*\("),
     "fatal/panic helper call"),
    (re.compile(r"\b(?:std::)?(exit|abort|_Exit|quick_exit)\s*\("),
     "process-terminating call"),
]

GETENV_RE = re.compile(r"\b(?:std::)?getenv\s*\(")
NEW_RE = re.compile(r"[^_\w]new\s+[A-Za-z_:<(]")
DELETE_RE = re.compile(r"[^_\w]delete(\s*\[\s*\])?\s+[A-Za-z_:(*]")
INCLUDE_CC_RE = re.compile(r'#\s*include\s*["<][^">]*\.cc[">]')
INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')

WRITER_CALL_RE = re.compile(
    r"""[.\->]\s*(open|close|object|field|key)\s*\(\s*(?:"([^"]*)")?"""
)

# step-alloc: files whose steady-state member functions must not
# allocate. Constructors and the named setup-time functions may.
STEP_ALLOC_SCOPE = (
    "src/core/ooo_core.cc",
    "src/core/frontend.cc",
    "src/cache/cache.cc",
    "src/sim/fast_forward.cc",
    "src/trace/chunk_store.cc",
    "src/sim/warm_state.cc",
)
STEP_ALLOC_SETUP_RE = re.compile(r"^(bind\w*|rewind|reset\w*)$")
STEP_ALLOC_RE = re.compile(
    r"[.\->]\s*(push_back|emplace_back|emplace|emplace_front|insert|"
    r"resize|reserve|assign|push_front)\s*\(|"
    r"\bmake_(?:unique|shared)\b")
# Function definitions in repo style: `Type` on its own line, then the
# qualified name at column 0 (`OooCore::step(...)` / free `helper(...)`).
FUNC_DEF_RE = re.compile(r"^(?:(\w+)::)?(~?\w+)\s*\(")


def _raw_string_end(text: str, i: int):
    """If text[i] is the opening quote of a raw string literal (the
    caller has already verified the R prefix), return (stop,
    terminated): stop is the index one past the closing quote (or
    len(text) when unterminated). Returns None when this is not a
    raw-string opener after all."""
    om = re.match(r'"([^()\\\s]{0,16})\(', text[i:i + 20])
    if not om:
        return None
    end = text.find(")" + om.group(1) + '"', i + len(om.group(0)))
    if end < 0:
        return len(text), False
    return end + len(om.group(1)) + 2, True


def strip_comments_and_strings(text: str) -> str:
    """Blank out comment and string-literal contents, preserving line
    structure, column offsets and the quotes themselves, so regexes
    never match inside either. Handles C++ raw string literals
    (`R"delim(...)delim"`, with optional u8/u/U/L prefixes): their
    contents — which may hold unbalanced quotes, `//`, or banned
    tokens — are blanked without desyncing the scanner. Inline lint
    waivers are extracted before this runs."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw string literal?  The quote must be directly
                # preceded by an R prefix (R, LR, uR, UR, u8R) that is
                # itself not the tail of a longer identifier, and
                # followed by `delim(`.
                pm = re.search(r"(?:u8|[uUL])?R\Z", text[max(0, i - 3):i])
                pstart = (max(0, i - 3) + pm.start()) if pm else -1
                plain_prefix = pm and (
                    pstart == 0
                    or not re.match(r"\w", text[pstart - 1]))
                raw = _raw_string_end(text, i) if plain_prefix else None
                if raw is not None:
                    stop, terminated = raw
                    out.append('"')
                    body = text[i + 1:stop - 1] if terminated \
                        else text[i + 1:stop]
                    for ch in body:
                        out.append(ch if ch == "\n" else " ")
                    if terminated:
                        out.append('"')
                    i = stop
                    continue
                state = "str"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state == "str":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
                out.append(c)
            elif c == "\n":  # unterminated; bail to code
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "chr":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
                out.append(c)
            elif c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


class Linter:
    def __init__(self, root: Path):
        self.root = root
        self.findings: list[tuple[Path, int, str, str]] = []
        self.file_waivers: dict[tuple[str, str], int] = {}
        self.new_delete_allow: dict[str, int] = {}
        # Usage tracking for --check-waivers: a waiver that no longer
        # suppresses any finding is stale and must be removed.
        self.used_file_waivers: set[tuple[str, str]] = set()
        self.used_allow: set[str] = set()
        self.declared_inline: set[tuple[str, int, str]] = set()
        self.used_inline: set[tuple[str, int, str]] = set()
        self._cur_rel = ""
        self._load_waivers()

    # -- waiver loading ------------------------------------------------

    def _load_waivers(self) -> None:
        wf = self.root / "tools" / "lint" / "waivers.txt"
        if wf.is_file():
            for lineno, raw in enumerate(wf.read_text().splitlines(), 1):
                line = raw.split("#", 1)[0].strip()
                if not line:
                    continue
                parts = line.split()
                if len(parts) != 2:
                    print(f"catch_lint: malformed waiver line: {raw!r}",
                          file=sys.stderr)
                    sys.exit(2)
                self.file_waivers[(parts[0], parts[1])] = lineno
        af = self.root / "tools" / "lint" / "allow_raw_new.txt"
        if af.is_file():
            for lineno, raw in enumerate(af.read_text().splitlines(), 1):
                line = raw.split("#", 1)[0].strip()
                if line:
                    self.new_delete_allow[line] = lineno

    def waived(self, rule: str, rel: str, inline: dict[int, set[str]],
               lineno: int) -> bool:
        if (rule, rel) in self.file_waivers:
            self.used_file_waivers.add((rule, rel))
            return True
        if rule in inline.get(lineno, set()):
            self.used_inline.add((rel, lineno, rule))
            return True
        return False

    def report(self, path: Path, lineno: int, rule: str, msg: str) -> None:
        self.findings.append((path, lineno, rule, msg))

    # -- helpers -------------------------------------------------------

    def rel(self, path: Path) -> str:
        return path.relative_to(self.root).as_posix()

    def iter_sources(self, *tops: str):
        fixture_dirs = (self.root / "tests" / "lint" / "fixtures",
                        self.root / "tests" / "analysis" / "fixtures")
        for top in tops:
            base = self.root / top
            if not base.is_dir():
                continue
            for p in sorted(base.rglob("*")):
                if p.suffix not in SRC_EXTS or not p.is_file():
                    continue
                # The lint/analysis test fixtures contain deliberate
                # violations; they are checked by their own --root runs.
                if any(d in p.parents for d in fixture_dirs):
                    continue
                yield p

    def inline_waivers(self, rel: str,
                       text: str) -> dict[int, set[str]]:
        waivers: dict[int, set[str]] = {}
        for lineno, line in enumerate(text.splitlines(), 1):
            m = INLINE_WAIVER_RE.search(line)
            if m:
                rules = {r.strip() for r in m.group(1).split(",")}
                waivers.setdefault(lineno, set()).update(rules)
                for r in rules:
                    self.declared_inline.add((rel, lineno, r))
        return waivers

    # -- rules ---------------------------------------------------------

    def check_line_rules(self) -> None:
        for path in self.iter_sources(*LINT_TOPS):
            rel = self.rel(path)
            text = path.read_text(errors="replace")
            inline = self.inline_waivers(rel, text)
            code = strip_comments_and_strings(text)
            in_src = rel.startswith("src/")
            orig_lines = text.splitlines()
            for lineno, line in enumerate(code.splitlines(), 1):
                # Stripping blanks string contents; read the include
                # path from the original once the stripped line proves
                # the directive is real code (not inside a comment).
                if (re.match(r'\s*#\s*include', line)
                        and INCLUDE_CC_RE.search(orig_lines[lineno - 1])
                        and not self.waived("include-cc", rel, inline,
                                            lineno)):
                    self.report(path, lineno, "include-cc",
                                "never #include a .cc file")
                if not in_src:
                    continue
                for pat, what in DETERMINISM_BANNED:
                    if pat.search(line) and not self.waived(
                            "determinism", rel, inline, lineno):
                        self.report(
                            path, lineno, "determinism",
                            f"{what} breaks bitwise reproducibility; "
                            "use the seeded catchsim::Rng / simulated "
                            "time")
                for pat, what in FATAL_BOUNDARY_BANNED:
                    if (pat.search(line)
                            and "CATCHSIM_ASSERT" not in line
                            and not self.waived("fatal-boundary", rel,
                                                inline, lineno)):
                        self.report(
                            path, lineno, "fatal-boundary",
                            f"{what} in library code; return a "
                            "SimError/Expected (common/error.hh) and "
                            "let the isolation layer or the CLI "
                            "boundary decide")
                if (GETENV_RE.search(line)
                        and rel != "src/common/env.hh"
                        and not self.waived("env-gateway", rel, inline,
                                            lineno)):
                    self.report(path, lineno, "env-gateway",
                                "read CATCH_* knobs via common/env.hh, "
                                "not raw std::getenv")
                stripped = line
                no_deleted_fn = re.sub(r"=\s*delete", "", stripped)
                hit_new = (NEW_RE.search(f" {stripped}")
                           and "= delete" not in stripped)
                hit_delete = DELETE_RE.search(f" {no_deleted_fn}")
                if (hit_new or hit_delete) \
                        and rel in self.new_delete_allow:
                    self.used_allow.add(rel)
                elif hit_new and not self.waived("raw-new-delete", rel,
                                                 inline, lineno):
                    self.report(path, lineno, "raw-new-delete",
                                "raw new expression; use "
                                "std::make_unique or a container")
                elif hit_delete and not self.waived("raw-new-delete",
                                                    rel, inline, lineno):
                    self.report(path, lineno, "raw-new-delete",
                                "raw delete expression; owning "
                                "pointers must be smart pointers")

    def check_step_alloc(self) -> None:
        """Hot-loop allocation freedom for the scoped per-cycle files.
        Tracks the enclosing function using the repo's definition style
        (qualified name at column 0); allocation-capable calls are
        banned outside constructors/destructors and setup functions."""
        for rel in STEP_ALLOC_SCOPE:
            path = self.root / rel
            if not path.is_file():
                continue
            text = path.read_text(errors="replace")
            inline = self.inline_waivers(rel, text)
            code = strip_comments_and_strings(text)
            func = None
            klass = None
            for lineno, line in enumerate(code.splitlines(), 1):
                m = FUNC_DEF_RE.match(line)
                if m and line[:1] not in (" ", "\t"):
                    klass, func = m.group(1), m.group(2)
                am = STEP_ALLOC_RE.search(line)
                if not am or func is None:
                    continue
                if func == klass or func.startswith("~"):
                    continue  # construction/teardown may size containers
                if STEP_ALLOC_SETUP_RE.match(func):
                    continue
                if self.waived("step-alloc", rel, inline, lineno):
                    continue
                what = am.group(1) or "make_unique/make_shared"
                self.report(
                    path, lineno, "step-alloc",
                    f"{what} in {func}() — the per-cycle path must not "
                    "allocate; size hot structures in the constructor "
                    "and reuse them (waiverable for setup-only "
                    "helpers)")

    def check_stats_once(self) -> None:
        """JSON stat registration: within one writer object scope a key
        may appear only once. Tracks `.open()`, `.close()`,
        `.object("k")`, `.field("k", ...)` call sequences per file."""
        for path in self.iter_sources("src"):
            rel = self.rel(path)
            text = path.read_text(errors="replace")
            inline = self.inline_waivers(rel, text)
            code = strip_comments_and_strings(text)
            # Call sites only: require an object expression before the
            # dot so the JsonWriter class definition itself is ignored.
            stack: list[set[str]] = []
            orig_lines = text.splitlines()
            for lineno, line in enumerate(code.splitlines(), 1):
                for m in WRITER_CALL_RE.finditer(line):
                    call = m.group(1)
                    # Stripping blanks string contents but preserves
                    # offsets; recover the real key from the original.
                    om = WRITER_CALL_RE.match(
                        orig_lines[lineno - 1], m.start())
                    key = om.group(2) if om else m.group(2)
                    if call == "open":
                        stack.append(set())
                    elif call == "close":
                        if stack:
                            stack.pop()
                    elif call in ("object", "field", "key"):
                        if key is None:
                            continue
                        if not stack:
                            stack.append(set())
                        if key in stack[-1]:
                            if not self.waived("stats-once", rel, inline,
                                               lineno):
                                self.report(
                                    path, lineno, "stats-once",
                                    f'stat "{key}" registered twice in '
                                    "the same JSON object scope")
                        else:
                            stack[-1].add(key)
                        if call == "object":
                            stack.append(set())

    def check_test_coverage(self) -> None:
        src = self.root / "src"
        tests = self.root / "tests"
        if not src.is_dir() or not tests.is_dir():
            return
        test_includes: set[str] = set()
        for t in self.iter_sources("tests"):
            for m in INCLUDE_RE.finditer(t.read_text(errors="replace")):
                test_includes.add(m.group(1))
        for cc in sorted(src.rglob("*.cc")):
            rel = self.rel(cc)
            candidates = set()
            hh = cc.with_suffix(".hh")
            if hh.is_file():
                candidates.add(hh.relative_to(src).as_posix())
            else:
                # Implementation-only TU: any same-directory header it
                # includes counts as its public surface.
                for m in INCLUDE_RE.finditer(
                        cc.read_text(errors="replace")):
                    inc = m.group(1)
                    if (src / inc).is_file() and Path(inc).parent == \
                            cc.parent.relative_to(src):
                        candidates.add(inc)
            # Consult the waiver only for genuinely uncovered files, so
            # a waiver on a file that gained a test reads as stale.
            if not candidates & test_includes and \
                    not self.waived("test-coverage", rel, {}, 0):
                self.report(
                    cc, 1, "test-coverage",
                    "no test includes "
                    + (", ".join(sorted(candidates)) or "any header")
                    + " — add a test or a waiver with a reason in "
                    "tools/lint/waivers.txt")

    def check_waivers(self) -> None:
        """Stale-waiver detection (--check-waivers): every file-level
        waiver, allow_raw_new entry and inline `catch-lint: allow(...)`
        must still suppress at least one finding; otherwise it hides
        nothing and must be removed before it masks a future
        regression."""
        wf = "tools/lint/waivers.txt"
        for (rule, rel), lineno in sorted(self.file_waivers.items(),
                                          key=lambda kv: kv[1]):
            if (rule, rel) not in self.used_file_waivers:
                self.report(self.root / wf, lineno, "unused-waiver",
                            f"file waiver '{rule} {rel}' no longer "
                            "suppresses any finding; remove it")
        for rel, lineno in sorted(self.new_delete_allow.items(),
                                  key=lambda kv: kv[1]):
            if rel not in self.used_allow:
                self.report(self.root / "tools/lint/allow_raw_new.txt",
                            lineno, "unused-waiver",
                            f"allow_raw_new entry '{rel}' matches no "
                            "new/delete expression; remove it")
        for rel, lineno, rule in sorted(self.declared_inline):
            if (rel, lineno, rule) not in self.used_inline:
                self.report(self.root / rel, lineno, "unused-waiver",
                            f"inline waiver allow({rule}) suppresses "
                            "nothing on this line; remove it")

    # -- driver --------------------------------------------------------

    def run(self, check_waivers: bool = False) -> int:
        self.check_line_rules()
        self.check_step_alloc()
        self.check_stats_once()
        self.check_test_coverage()
        if check_waivers:
            self.check_waivers()
        for path, lineno, rule, msg in sorted(
                self.findings, key=lambda f: (str(f[0]), f[1])):
            print(f"{self.rel(path)}:{lineno}: [{rule}] {msg}")
        if self.findings:
            print(f"catch_lint: {len(self.findings)} finding(s)",
                  file=sys.stderr)
            return 1
        return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parents[2],
                    help="repo root to lint (default: this checkout)")
    ap.add_argument("--check-waivers", action="store_true",
                    help="also fail on waivers that no longer suppress "
                         "any finding")
    args = ap.parse_args()
    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"catch_lint: {root} has no src/ directory", file=sys.stderr)
        return 2
    return Linter(root).run(check_waivers=args.check_waivers)


if __name__ == "__main__":
    sys.exit(main())
