/**
 * @file
 * catchsim command-line driver: run any suite workload on any named or
 * hand-tuned configuration and print a full report. This is the tool a
 * downstream user reaches for before writing code against the library.
 *
 * Usage:
 *   catchsim [options] <workload> [workload...]
 *
 * Options:
 *   --config=skx|client         base configuration (default skx)
 *   --no-l2=<llc_kb>            remove the L2, set the LLC size in KB
 *   --catch                     enable criticality detection + all TACT
 *   --criticality               enable only the detector
 *   --detector=heuristic        heuristic detection instead of the DDG
 *   --tact=cross,deep,feeder,code   enable specific TACT components
 *   --instr=<n>                 measured instructions   (default 300000)
 *   --warmup=<n>                warmup instructions     (default 100000)
 *   --sample                    sampled simulation: functional warming
 *                               with periodic detailed windows
 *                               (Env: CATCH_SAMPLE=1)
 *   --sample-interval=<n>       instrs per sampling period (default
 *                               20000; env CATCH_SAMPLE_INTERVAL)
 *   --sample-window=<n>         measured instrs per window (default
 *                               2000; env CATCH_SAMPLE_WINDOW)
 *   --sample-warmup=<n>         detailed-warmup instrs before each
 *                               window (default 2000; env
 *                               CATCH_SAMPLE_WARMUP)
 *   --llc-add=<cycles>          LLC latency adder
 *   --no-prefetchers            disable the baseline prefetchers
 *   --jobs=<n>                  parallel simulations (default CATCH_JOBS
 *                               or hardware concurrency; 1 = serial)
 *   --profile                   collect host phase timings (trace-gen,
 *                               warmup, measured) and peak RSS per run;
 *                               printed per report and exported as the
 *                               hostPerf object in --json documents.
 *                               Profiling never changes simulated
 *                               results. (Env: CATCH_PROFILE=1)
 *   --json=<file>               also write results as a JSON document
 *   --journal=<dir>             checkpoint finished runs to
 *                               <dir>/journal.jsonl; a rerun with the
 *                               same journal re-executes only runs that
 *                               did not finish successfully
 *   --isolate                   run every simulation in its own worker
 *                               process under the wall-clock supervisor
 *                               (sim/supervisor.hh): a crash or hang in
 *                               one run becomes a typed failure in its
 *                               slot instead of killing the campaign.
 *                               (Env: CATCH_ISOLATE=1; the supervisor
 *                               re-execs this binary in its hidden
 *                               --worker mode, or CATCH_WORKER_BIN)
 *   --result-store=<dir>        incremental content-hashed result store
 *                               (sim/result_store.hh): runs whose
 *                               (workload, seed, config, lengths) key
 *                               is already stored are served from disk;
 *                               fresh successes persist back. A resweep
 *                               after a one-knob change re-executes
 *                               only invalidated cells.
 *                               (Env: CATCH_RESULT_STORE)
 *   --list                      list all suite workloads and exit
 *
 * Reports print in command-line order regardless of --jobs; results are
 * bitwise-identical for any job count — including between in-process
 * and --isolate execution at any worker count. Runs that fail (corrupt
 * trace, worker exception, watchdog timeout, crashed worker process)
 * are contained to their own slot and reported structurally; the
 * campaign continues.
 *
 * Exit codes: 0 every run succeeded; 1 at least one run failed or
 * timed out (or the JSON export failed); 2 usage/configuration error
 * (unknown option, unknown workload, invalid geometry, locked journal
 * or result store) or at least one run crashed at the process level
 * (worker died, hung past the heartbeat timeout, or failed to exec).
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "sim/configs.hh"
#include "sim/experiment.hh"
#include "sim/journal.hh"
#include "sim/parallel_runner.hh"
#include "sim/result_store.hh"
#include "sim/simulator.hh"
#include "sim/supervisor.hh"
#include "sim/worker_proto.hh"
#include "trace/suite.hh"

using namespace catchsim;

namespace
{

void
printReport(const SimResult &r)
{
    std::printf("\n=== %s on %s ===\n", r.workload.c_str(),
                r.config.c_str());
    std::printf("IPC                : %.3f  (%llu instrs, %llu cycles)\n",
                r.ipc, static_cast<unsigned long long>(r.core.instrs),
                static_cast<unsigned long long>(r.core.cycles));
    if (r.sampled) {
        std::printf("sampling           : %llu windows, %llu warmed "
                    "instrs, IPC sd %.3f [%.3f, %.3f]\n",
                    static_cast<unsigned long long>(r.sample.windows),
                    static_cast<unsigned long long>(
                        r.sample.warmedInstrs),
                    std::sqrt(r.sample.ipcVariance), r.sample.ipcMin,
                    r.sample.ipcMax);
    }
    std::printf("loads served       : L1 %.1f%%  L2 %.1f%%  LLC %.1f%%  "
                "Mem %.1f%%  (fwd %llu)\n",
                100 * r.hier.loadHitFraction(Level::L1),
                100 * r.hier.loadHitFraction(Level::L2),
                100 * r.hier.loadHitFraction(Level::LLC),
                100 * r.hier.loadHitFraction(Level::Mem),
                static_cast<unsigned long long>(r.core.forwardedLoads));
    std::printf("avg load latency   : %.1f cycles\n",
                r.hier.loads ? static_cast<double>(
                                   r.hier.totalLoadLatency) /
                                   r.hier.loads
                             : 0.0);
    std::printf("branches           : %.2f%% mispredicted\n",
                100 * r.core.branch.mispredictRate());
    std::printf("front-end          : %llu code-stall cycles\n",
                static_cast<unsigned long long>(
                    r.frontend.codeStallCycles));
    std::printf("DRAM               : %llu reads (avg %.0f cyc), "
                "%llu writes, %.0f%% row hits\n",
                static_cast<unsigned long long>(r.dram.reads),
                r.dram.avgReadLatency(),
                static_cast<unsigned long long>(r.dram.writes),
                100 * r.dram.rowHitRate());
    if (r.ddg.walks) {
        std::printf("criticality        : %llu walks, %llu critical "
                    "loads, %u active PCs\n",
                    static_cast<unsigned long long>(r.ddg.walks),
                    static_cast<unsigned long long>(
                        r.ddg.criticalLoadsFound),
                    r.activeCriticalPcs);
    }
    if (r.hier.tactPrefetches) {
        std::printf("TACT               : %llu prefetches (cross %llu, "
                    "deep %llu, feeder %llu, code-lines %llu)\n",
                    static_cast<unsigned long long>(
                        r.hier.tactPrefetches),
                    static_cast<unsigned long long>(r.tact.crossIssued),
                    static_cast<unsigned long long>(r.tact.deepIssued),
                    static_cast<unsigned long long>(r.tact.feederIssued),
                    static_cast<unsigned long long>(r.tact.codeLines));
        std::printf("TACT timeliness    : %.0f%% save >=80%% of LLC "
                    "latency\n",
                    100 * r.timelinessAtLeast80);
    }
    std::printf("energy             : %.3f mJ (core %.2f, cache %.2f, "
                "ring %.2f, DRAM %.2f, static %.2f)\n",
                r.energy.total(), r.energy.coreDynamic,
                r.energy.cacheDynamic, r.energy.interconnect,
                r.energy.dramDynamic, r.energy.staticLeakage);
}

void
printProfile(const RunProfile &p)
{
    std::printf("host perf          : trace-gen %.3fs, warmup %.3fs, "
                "measured %.3fs, peak RSS %.1f MB\n",
                p.traceGenSec, p.warmupSec, p.measuredSec,
                static_cast<double>(p.peakRssBytes) / (1024.0 * 1024.0));
}

void
printFailure(const RunOutcome &o)
{
    std::printf("\n=== %s on %s ===\n", o.workload.c_str(),
                o.config.c_str());
    std::printf("status             : %s after %u attempt(s)\n",
                runStatusName(o.status), o.attempts);
    std::printf("error              : [%s] %s\n",
                errorCategoryName(o.failure->error.category),
                o.failure->error.message.c_str());
}

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: catchsim [--config=skx|client] [--no-l2=KB] "
                 "[--catch] [--criticality]\n"
                 "                [--detector=heuristic]\n"
                 "                [--tact=cross,deep,feeder,code] "
                 "[--instr=N] [--warmup=N]\n"
                 "                [--sample] [--sample-interval=N] "
                 "[--sample-window=N] [--sample-warmup=N]\n"
                 "                [--llc-add=N] [--no-prefetchers] "
                 "[--jobs=N] [--profile] [--json=FILE]\n"
                 "                [--journal=DIR] [--isolate] "
                 "[--result-store=DIR] [--trace-store]\n"
                 "                [--trace-cache-dir=DIR] [--warm-state] "
                 "[--warm-state-cache-dir=DIR]\n"
                 "                [--list] <workload>...\n");
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    // Hidden worker mode: the process-isolation supervisor re-execs
    // this binary with --worker as its only argument and speaks the
    // frame protocol over stdin/stdout (sim/worker_proto.hh).
    if (argc > 1 && std::strcmp(argv[1], "--worker") == 0)
        return workerMain();

    SimConfig cfg = baselineSkx();
    bool client = false;
    int64_t no_l2_kb = -1;
    uint64_t instrs = 300000, warmup = 100000;
    SamplingConfig sampling = SamplingConfig::fromEnvironment();
    unsigned jobs = suiteJobs();
    bool profile = false;
    std::string json_path;
    std::string journal_dir;
    std::string store_dir;
    bool isolate = false;
    std::vector<std::string> workloads;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&arg]() {
            return arg.substr(arg.find('=') + 1);
        };
        if (arg == "--list") {
            for (const auto &n : stSuiteNames())
                std::printf("%s\n", n.c_str());
            return 0;
        } else if (arg.rfind("--config=", 0) == 0) {
            client = value() == "client";
        } else if (arg.rfind("--no-l2=", 0) == 0) {
            no_l2_kb = std::strtoll(value().c_str(), nullptr, 10);
        } else if (arg == "--catch") {
            cfg.enableCatch();
        } else if (arg == "--criticality") {
            cfg.criticality.enabled = true;
        } else if (arg == "--detector=heuristic") {
            cfg.criticality.kind = DetectorKind::Heuristic;
        } else if (arg.rfind("--tact=", 0) == 0) {
            cfg.criticality.enabled = true;
            std::string list = value();
            cfg.tact.cross = list.find("cross") != std::string::npos;
            cfg.tact.deepSelf = list.find("deep") != std::string::npos;
            cfg.tact.feeder = list.find("feeder") != std::string::npos;
            cfg.tact.code = list.find("code") != std::string::npos;
        } else if (arg.rfind("--instr=", 0) == 0) {
            instrs = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg.rfind("--warmup=", 0) == 0) {
            warmup = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--sample") {
            sampling.mode = SampleMode::Sampled;
        } else if (arg.rfind("--sample-interval=", 0) == 0) {
            sampling.mode = SampleMode::Sampled;
            sampling.intervalInstrs =
                std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg.rfind("--sample-window=", 0) == 0) {
            sampling.mode = SampleMode::Sampled;
            sampling.windowInstrs =
                std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg.rfind("--sample-warmup=", 0) == 0) {
            sampling.mode = SampleMode::Sampled;
            sampling.warmupInstrs =
                std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg.rfind("--llc-add=", 0) == 0) {
            cfg.oracle.latAddLlc = static_cast<uint32_t>(
                std::strtoul(value().c_str(), nullptr, 10));
        } else if (arg == "--no-prefetchers") {
            cfg.l1StridePrefetcher = false;
            cfg.l2StreamPrefetcher = false;
        } else if (arg.rfind("--jobs=", 0) == 0) {
            long v = std::strtol(value().c_str(), nullptr, 10);
            jobs = v >= 1 ? static_cast<unsigned>(v) : 1;
        } else if (arg == "--profile") {
            profile = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            json_path = value();
        } else if (arg.rfind("--journal=", 0) == 0) {
            journal_dir = value();
        } else if (arg == "--isolate") {
            isolate = true;
        } else if (arg.rfind("--result-store=", 0) == 0) {
            store_dir = value();
        } else if (arg == "--trace-store") {
            // Memoize trace generation in memory for this process
            // (CATCH_TRACE_STORE). Safe here: we are single-threaded
            // until the first ThreadPool, and ChunkStore::global()
            // reads the environment lazily on first use after parsing.
            ::setenv("CATCH_TRACE_STORE", "1", 1);
        } else if (arg.rfind("--trace-cache-dir=", 0) == 0) {
            // Same, plus a persistent on-disk tier shared across runs
            // and processes (CATCH_TRACE_CACHE).
            ::setenv("CATCH_TRACE_CACHE", value().c_str(), 1);
        } else if (arg == "--warm-state") {
            // Memoize warmed-state snapshots in memory for this process
            // (CATCH_WARM_STATE); sampled runs with a chunk store skip
            // the global functional warmup on repeat keys. Same lazy
            // environment-read discipline as --trace-store.
            ::setenv("CATCH_WARM_STATE", "1", 1);
        } else if (arg.rfind("--warm-state-cache-dir=", 0) == 0) {
            // Same, plus a persistent on-disk snapshot tier shared
            // across runs and processes (CATCH_WARM_STATE_CACHE).
            ::setenv("CATCH_WARM_STATE_CACHE", value().c_str(), 1);
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage();
        } else {
            workloads.push_back(arg);
        }
    }
    if (workloads.empty())
        usage();

    // Assemble base + overlays in the right order.
    DetectorKind detector = cfg.criticality.kind;
    bool want_catch = cfg.criticality.enabled;
    TactConfig tact = cfg.tact;
    OracleConfig oracle = cfg.oracle;
    bool no_pf = !cfg.l1StridePrefetcher;
    cfg = client ? baselineClient() : baselineSkx();
    if (no_l2_kb > 0)
        cfg = noL2(cfg, static_cast<uint64_t>(no_l2_kb));
    cfg.criticality.enabled = want_catch;
    cfg.criticality.kind = detector;
    cfg.tact = tact;
    cfg.oracle = oracle;
    if (no_pf) {
        cfg.l1StridePrefetcher = false;
        cfg.l2StreamPrefetcher = false;
    }
    cfg.sampling = sampling;
    if (cfg.tact.any())
        cfg.name += "+tact";
    else if (cfg.criticality.enabled)
        cfg.name += "+crit";

    // Config mistakes are surfaced once, before any simulation starts:
    // unknown workload names (the error lists every valid name) and
    // invalid geometry both exit with code 2.
    bool names_ok = true;
    for (const auto &w : workloads) {
        auto wl = findWorkload(w);
        if (!wl.ok()) {
            std::fprintf(stderr, "catchsim: %s\n",
                         names_ok ? wl.error().message.c_str()
                                  : ("unknown workload '" + w + "'")
                                        .c_str());
            names_ok = false;
        }
    }
    if (!names_ok)
        return 2;
    if (auto valid = cfg.validate(); !valid.ok()) {
        std::fprintf(stderr, "catchsim: invalid configuration: %s\n",
                     valid.error().message.c_str());
        return 2;
    }

    IsolationOptions opts = IsolationOptions::fromEnvironment();
    opts.profile |= profile;
    std::unique_ptr<SuiteJournal> journal;
    if (!journal_dir.empty()) {
        auto j = SuiteJournal::open(journal_dir);
        if (!j.ok()) {
            std::fprintf(stderr, "catchsim: %s\n",
                         j.error().message.c_str());
            return 2;
        }
        journal = std::move(j).value();
        opts.journal = journal.get();
    }
    std::unique_ptr<ResultStore> store;
    if (!store_dir.empty()) {
        auto s = ResultStore::open(store_dir);
        if (!s.ok()) {
            std::fprintf(stderr, "catchsim: %s\n",
                         s.error().message.c_str());
            return 2;
        }
        store = std::move(s).value();
        opts.resultStore = store.get();
    }

    auto outcomes =
        isolate ? runWorkloadsSupervised(cfg, workloads, instrs, warmup,
                                         jobs, opts)
                : runWorkloadsIsolated(cfg, workloads, instrs, warmup,
                                       jobs, opts);
    for (const auto &o : outcomes) {
        if (o.ok()) {
            printReport(o.result);
            if (o.profile)
                printProfile(*o.profile);
        } else {
            printFailure(o);
        }
    }

    CampaignSummary sum = summarizeOutcomes(outcomes);
    if (sum.retried || sum.failed || sum.timedOut || sum.crashed ||
        sum.resumed || sum.storeHits) {
        std::printf("\ncampaign: %llu ok, %llu retried, %llu failed, "
                    "%llu timed out, %llu crashed, %llu resumed, "
                    "%llu store hit(s), %llu store miss(es)\n",
                    static_cast<unsigned long long>(sum.ok),
                    static_cast<unsigned long long>(sum.retried),
                    static_cast<unsigned long long>(sum.failed),
                    static_cast<unsigned long long>(sum.timedOut),
                    static_cast<unsigned long long>(sum.crashed),
                    static_cast<unsigned long long>(sum.resumed),
                    static_cast<unsigned long long>(sum.storeHits),
                    static_cast<unsigned long long>(sum.storeMisses));
    }

    // Crashed workers mean the campaign lost process-level integrity:
    // distinguish that (2) from contained in-simulation failures (1).
    int rc = sum.crashed ? 2 : (sum.allOk() ? 0 : 1);
    if (!json_path.empty()) {
        ExperimentEnv env;
        env.names = workloads;
        env.instrs = instrs;
        env.warmup = warmup;
        auto written = writeSuiteJson(json_path, cfg, env, outcomes);
        if (!written.ok()) {
            std::fprintf(stderr, "catchsim: %s\n",
                         written.error().message.c_str());
            rc = rc ? rc : 1;
        } else {
            std::fprintf(stderr, "wrote %s\n", json_path.c_str());
        }
    }
    return rc;
}
