# Analysis-gate build options for catchsim.
#
# CATCH_SANITIZE selects compiler sanitizers for the whole tree. It is a
# comma- or semicolon-separated list drawn from:
#
#   address    AddressSanitizer (heap/stack/global overflows, UAF, leaks)
#   undefined  UndefinedBehaviorSanitizer (recover disabled: any UB aborts)
#   thread     ThreadSanitizer (data races; incompatible with address)
#   leak       standalone LeakSanitizer (implied by address on Linux)
#
# Typical invocations:
#   cmake -B build-asan  -S . -DCATCH_SANITIZE=address,undefined
#   cmake -B build-tsan  -S . -DCATCH_SANITIZE=thread
#
# Runtime suppression files live under tools/sanitizers/ and are wired up
# via the usual *SAN_OPTIONS environment variables (see docs/ANALYSIS.md).
#
# CATCH_WERROR promotes -Wall -Wextra diagnostics to errors. CI builds
# with it ON; it defaults OFF so exploratory local builds are not blocked
# by a new compiler's warnings.

set(CATCH_SANITIZE "" CACHE STRING
    "Sanitizers to enable: comma-separated subset of address;undefined;thread;leak")
option(CATCH_WERROR "Treat compiler warnings as errors" OFF)

# Normalise the user-facing comma syntax into a CMake list.
string(REPLACE "," ";" _catch_sanitizers "${CATCH_SANITIZE}")

set(_catch_san_flags "")
set(_catch_has_address FALSE)
set(_catch_has_thread FALSE)

foreach(_san IN LISTS _catch_sanitizers)
    string(STRIP "${_san}" _san)
    string(TOLOWER "${_san}" _san)
    if(_san STREQUAL "")
        continue()
    elseif(_san STREQUAL "address")
        list(APPEND _catch_san_flags -fsanitize=address
             -fno-omit-frame-pointer)
        set(_catch_has_address TRUE)
    elseif(_san STREQUAL "undefined")
        # -fno-sanitize-recover turns every UB report into a hard failure
        # so ctest notices; float-divide-by-zero is defined behaviour we
        # rely on nowhere, so keep the default check set.
        list(APPEND _catch_san_flags -fsanitize=undefined
             -fno-sanitize-recover=all)
    elseif(_san STREQUAL "thread")
        list(APPEND _catch_san_flags -fsanitize=thread
             -fno-omit-frame-pointer)
        set(_catch_has_thread TRUE)
    elseif(_san STREQUAL "leak")
        list(APPEND _catch_san_flags -fsanitize=leak)
    else()
        message(FATAL_ERROR
            "CATCH_SANITIZE: unknown sanitizer '${_san}' "
            "(expected address, undefined, thread, or leak)")
    endif()
endforeach()

if(_catch_has_address AND _catch_has_thread)
    message(FATAL_ERROR
        "CATCH_SANITIZE: address and thread sanitizers are mutually "
        "exclusive; build them in separate trees")
endif()

if(_catch_san_flags)
    list(REMOVE_DUPLICATES _catch_san_flags)
    add_compile_options(${_catch_san_flags})
    add_link_options(${_catch_san_flags})
    message(STATUS "catchsim sanitizers: ${CATCH_SANITIZE}")
endif()

if(CATCH_WERROR)
    add_compile_options(-Werror)
endif()
