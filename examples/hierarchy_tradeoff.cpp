/**
 * @file
 * Hierarchy trade-off explorer: sweeps cache-hierarchy organisations at
 * similar silicon budgets and prints performance, area and energy side
 * by side - the "CATCH as a framework for chip-level trade-offs" use
 * case from the paper's Sections VI-A/VI-E.
 *
 *   ./hierarchy_tradeoff [workload] [instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "power/power_model.hh"
#include "sim/configs.hh"
#include "sim/simulator.hh"

using namespace catchsim;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "hmmer";
    uint64_t instrs = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                               : 300000;

    struct Point
    {
        const char *label;
        SimConfig cfg;
    };
    std::vector<Point> points = {
        {"3-level (1MB L2 + 5.5MB excl LLC)", baselineSkx()},
        {"2-level, same capacity (6.5MB)", noL2(baselineSkx(), 6656)},
        {"2-level, iso-area (9.5MB)", noL2(baselineSkx(), 9728)},
        {"2-level iso-area + CATCH",
         withCatch(noL2(baselineSkx(), 9728))},
        {"3-level + CATCH", withCatch(baselineSkx())},
    };

    AreaParams area;
    std::printf("workload: %s, %llu instructions\n\n", name.c_str(),
                static_cast<unsigned long long>(instrs));
    std::printf("%-36s %8s %8s %10s %11s\n", "configuration", "IPC",
                "speedup", "area mm^2", "energy mJ");

    double base_ipc = 0;
    for (const Point &p : points) {
        SimResult r = runWorkload(p.cfg, name, instrs, instrs / 3);
        if (base_ipc == 0)
            base_ipc = r.ipc;
        std::printf("%-36s %8.3f %+7.2f%% %10.1f %11.3f\n", p.label,
                    r.ipc, 100.0 * (r.ipc / base_ipc - 1.0),
                    chipAreaMm2(area, p.cfg, 4), r.energy.total());
    }
    std::printf("\nThe iso-area two-level CATCH point is the paper's "
                "headline: same silicon,\nno L2, criticality-aware "
                "prefetching into the L1.\n");
    return 0;
}
