/**
 * @file
 * Defining a custom workload against the public API: a B-tree
 * range-scan kernel written from scratch, run on the baseline and on
 * two-level CATCH. Shows the three things a workload author controls:
 * functional data structures (setup), the emitted instruction stream
 * with stable PCs (run), and the register dataflow TACT learns from.
 */

#include <cstdio>

#include "sim/configs.hh"
#include "sim/simulator.hh"
#include "trace/workload.hh"

using namespace catchsim;

namespace
{

/**
 * Range scan over a linked leaf level: a strided key-array walk picks a
 * leaf (feeder-learnable: the leaf pointer is the key entry's data),
 * then the scan walks a few leaf-chain hops (pure chase, unlearnable).
 */
class BtreeScan : public Workload
{
  public:
    explicit BtreeScan(uint64_t seed)
        : Workload("btree-scan", Category::Server, seed)
    {
    }

  protected:
    static constexpr Addr kKeys = 0x10000000;
    static constexpr Addr kLeaves = 0x40000000;
    static constexpr size_t kNumKeys = 1 << 16;
    static constexpr size_t kNumLeaves = 1 << 14; // 4 MB of 256 B leaves

    void
    setup(FunctionalMemory &mem, Rng &rng) override
    {
        for (size_t i = 0; i < kNumKeys; ++i)
            mem.write(kKeys + i * 8,
                      kLeaves + rng.below(kNumLeaves) * 256);
        for (size_t i = 0; i < kNumLeaves; ++i) {
            Addr leaf = kLeaves + i * 256;
            mem.write(leaf, kLeaves + rng.below(kNumLeaves) * 256);
            mem.write(leaf + 8, rng.below(1 << 16)); // aggregate field
        }
    }

    void
    run(Emitter &em, Rng &rng) override
    {
        const Addr body = codeBlock(0);
        const Addr chain = codeBlock(1);
        for (int n = 0; n < 1024 && !em.done(); ++n, ++pos_) {
            em.setPc(body);
            em.alu(r0, {r0}); // cursor++
            Addr key = kKeys + (pos_ % kNumKeys) * 8;
            uint64_t leaf = em.load(r1, {r0}, key); // leaf ptr (feeder)
            for (int hop = 0; hop < 3; ++hop) {
                em.setPc(chain);
                em.load(r2, {r1}, leaf + 8);          // aggregate
                em.alu(r3, {r3, r2});                 // running sum
                uint64_t next = em.load(r1, {r1}, leaf); // next leaf
                em.branch(hop < 2, chain, {r1});
                leaf = next;
            }
            em.setPc(body + 0x100);
            em.branch((rng.next() & 7) == 0, body + 0x180, {r3});
            em.branch(true, body, {r0});
        }
    }

  private:
    size_t pos_ = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    uint64_t instrs = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                               : 300000;

    struct Run
    {
        const char *label;
        SimConfig cfg;
    };
    const Run runs[] = {
        {"baseline", baselineSkx()},
        {"two-level CATCH", withCatch(noL2(baselineSkx(), 9728))},
    };

    std::printf("custom workload: btree-scan, %llu instructions\n\n",
                static_cast<unsigned long long>(instrs));
    for (const Run &run : runs) {
        BtreeScan wl(7);
        Simulator sim(run.cfg);
        SimResult r = sim.run(wl, instrs, instrs / 3);
        std::printf("%-16s IPC %.3f | L1 %4.1f%% L2 %4.1f%% LLC %4.1f%% "
                    "Mem %4.1f%% | TACT pf %llu, critical PCs %u\n",
                    run.label, r.ipc,
                    100 * r.hier.loadHitFraction(Level::L1),
                    100 * r.hier.loadHitFraction(Level::L2),
                    100 * r.hier.loadHitFraction(Level::LLC),
                    100 * r.hier.loadHitFraction(Level::Mem),
                    static_cast<unsigned long long>(
                        r.hier.tactPrefetches),
                    r.activeCriticalPcs);
    }
    std::printf("\nThe leaf-pointer load is feeder-covered; the leaf "
                "chain hops are a pure chase\nand stay at LLC latency - "
                "exactly the paper's coverable/uncoverable split.\n");
    return 0;
}
