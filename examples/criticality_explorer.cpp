/**
 * @file
 * Criticality explorer: runs a workload with the hardware criticality
 * detector attached and reports what it found - how often the critical
 * path was walked, how many loads sat on it, which fraction were
 * L2/LLC hits (the recordable ones), and how the critical-load table
 * settled. This is the Section IV-A machinery made observable.
 *
 *   ./criticality_explorer [workload] [instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/configs.hh"
#include "sim/simulator.hh"
#include "trace/suite.hh"

using namespace catchsim;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "hmmer";
    uint64_t instrs = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                               : 300000;

    SimConfig cfg = baselineSkx();
    cfg.criticality.enabled = true; // detector on, prefetchers off
    SimResult r = runWorkload(cfg, name, instrs, instrs / 3);

    std::printf("workload: %s (%s)   IPC %.3f\n\n", name.c_str(),
                categoryName(r.category), r.ipc);

    std::printf("-- data-dependency-graph walks --\n");
    std::printf("retired instructions buffered : %llu\n",
                static_cast<unsigned long long>(r.ddg.retired));
    std::printf("critical-path walks           : %llu\n",
                static_cast<unsigned long long>(r.ddg.walks));
    std::printf("loads found on critical paths : %llu (%.1f per walk)\n",
                static_cast<unsigned long long>(r.ddg.criticalLoadsFound),
                r.ddg.walks ? static_cast<double>(
                                  r.ddg.criticalLoadsFound) /
                                  r.ddg.walks
                            : 0.0);
    std::printf("recordable (L2/LLC hits)      : %llu (%.1f%%)\n\n",
                static_cast<unsigned long long>(r.ddg.recorded),
                r.ddg.criticalLoadsFound
                    ? 100.0 * r.ddg.recorded / r.ddg.criticalLoadsFound
                    : 0.0);

    std::printf("-- critical-load table (32 entries, 2-bit confidence) --\n");
    std::printf("recordings                    : %llu\n",
                static_cast<unsigned long long>(
                    r.criticalTable.recordings));
    std::printf("distinct PC insertions        : %llu\n",
                static_cast<unsigned long long>(
                    r.criticalTable.insertions));
    std::printf("LRU evictions (table pressure): %llu\n",
                static_cast<unsigned long long>(
                    r.criticalTable.evictions));
    std::printf("saturated (active) PCs        : %u\n",
                r.activeCriticalPcs);

    std::printf("\n-- where loads were served --\n");
    for (int l = 0; l < 4; ++l)
        std::printf("%-4s : %5.1f%%\n",
                    levelName(static_cast<Level>(l)),
                    100.0 * r.hier.loadHitFraction(static_cast<Level>(l)));

    if (r.criticalTable.evictions > 4 * r.criticalTable.insertions)
        std::printf("\nnote: heavy table churn - this workload has more "
                    "critical PCs than the table holds (the paper's "
                    "povray case).\n");
    return 0;
}
