/**
 * @file
 * Capture-and-replay: generate a workload trace once, save it to disk,
 * and replay the same trace across a configuration sweep. Useful when a
 * sweep is wide (trace generation is paid once) and to ship exact
 * instruction streams between machines.
 *
 *   ./trace_replay [workload] [instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "cache/hierarchy.hh"
#include "core/ooo_core.hh"
#include "sim/configs.hh"
#include "trace/suite.hh"
#include "trace/trace_io.hh"

using namespace catchsim;

namespace
{

/** Runs an already-materialised trace on @p cfg and returns the IPC. */
double
replay(const SimConfig &cfg, const Trace &trace)
{
    CacheHierarchy hierarchy(cfg);
    OooCore core(cfg, 0, hierarchy, nullptr, nullptr);
    core.bind(trace);
    while (core.step()) {
    }
    return core.stats().ipc();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "hmmer";
    uint64_t instrs = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                               : 200000;
    const std::string path = "/tmp/" + name + ".trace";

    // Capture once...
    Trace trace = makeWorkload(name)->generate(instrs);
    if (!saveTrace(trace, path)) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    std::printf("captured %zu ops of %s to %s\n", trace.ops.size(),
                name.c_str(), path.c_str());

    // ...replay many times.
    Trace replayed = loadTrace(path);
    if (replayed.ops.empty()) {
        std::fprintf(stderr, "reload failed\n");
        return 1;
    }

    std::printf("\n%-28s %8s\n", "configuration", "IPC");
    for (uint64_t l2_kb : {256ULL, 512ULL, 1024ULL, 2048ULL}) {
        SimConfig cfg = baselineSkx();
        cfg.l2.sizeBytes = l2_kb * 1024;
        while (!isPowerOfTwo(cfg.l2.numSets()))
            ++cfg.l2.ways;
        cfg.name = "L2=" + std::to_string(l2_kb) + "KB";
        std::printf("%-28s %8.3f\n", cfg.name.c_str(),
                    replay(cfg, replayed));
    }
    SimConfig two = noL2(baselineSkx(), 9728);
    std::printf("%-28s %8.3f\n", two.name.c_str(), replay(two, replayed));

    std::remove(path.c_str());
    return 0;
}
