/**
 * @file
 * Quickstart: run one workload on the baseline three-level hierarchy and
 * on a two-level CATCH hierarchy, and compare.
 *
 *   ./quickstart [workload] [instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/configs.hh"
#include "sim/simulator.hh"
#include "trace/suite.hh"

using namespace catchsim;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "mcf";
    uint64_t instrs = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                               : 300000;
    uint64_t warmup = instrs / 3;

    // Baseline: Skylake-server-like, 1 MB L2 + 5.5 MB exclusive LLC.
    SimConfig base = baselineSkx();
    SimResult rb = runWorkload(base, name, instrs, warmup);

    // CATCH on a two-level hierarchy: no L2, LLC grown to 9.5 MB
    // (iso-area), criticality detection + TACT prefetchers on.
    SimConfig catch2 = withCatch(noL2(baselineSkx(), 9728));
    SimResult rc = runWorkload(catch2, name, instrs, warmup);

    std::printf("workload: %s (%s), %llu measured instructions\n",
                name.c_str(), categoryName(rb.category),
                static_cast<unsigned long long>(rb.core.instrs));
    std::printf("\n%-34s %24s %24s\n", "", base.name.c_str(),
                catch2.name.c_str());
    std::printf("%-34s %24.3f %24.3f\n", "IPC", rb.ipc, rc.ipc);
    std::printf("%-34s %23.1f%% %23.1f%%\n", "loads served by L1",
                100 * rb.hier.loadHitFraction(Level::L1),
                100 * rc.hier.loadHitFraction(Level::L1));
    std::printf("%-34s %23.1f%% %23.1f%%\n", "loads served by L2",
                100 * rb.hier.loadHitFraction(Level::L2),
                100 * rc.hier.loadHitFraction(Level::L2));
    std::printf("%-34s %23.1f%% %23.1f%%\n", "loads served by LLC",
                100 * rb.hier.loadHitFraction(Level::LLC),
                100 * rc.hier.loadHitFraction(Level::LLC));
    std::printf("%-34s %23.1f%% %23.1f%%\n", "loads served by memory",
                100 * rb.hier.loadHitFraction(Level::Mem),
                100 * rc.hier.loadHitFraction(Level::Mem));
    std::printf("%-34s %24llu %24llu\n", "TACT prefetches",
                static_cast<unsigned long long>(rb.hier.tactPrefetches),
                static_cast<unsigned long long>(rc.hier.tactPrefetches));
    std::printf("%-34s %24u %24u\n", "active critical PCs",
                rb.activeCriticalPcs, rc.activeCriticalPcs);
    std::printf("%-34s %24.3f %24.3f\n", "energy (mJ)",
                rb.energy.total(), rc.energy.total());
    std::printf("\nspeedup of two-level CATCH over baseline: %+.2f%%\n",
                100.0 * (rc.ipc / rb.ipc - 1.0));
    return 0;
}
