/**
 * @file
 * Tests for the decoupled front end: fetch-width pacing, line-change
 * fetches, miss stalls and mispredict redirects.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "core/frontend.hh"
#include "sim/configs.hh"

namespace catchsim
{
namespace
{

SimConfig
quietConfig()
{
    SimConfig cfg = baselineSkx();
    cfg.l1StridePrefetcher = false;
    cfg.l2StreamPrefetcher = false;
    return cfg;
}

std::vector<MicroOp>
sequentialOps(size_t n, Addr base)
{
    std::vector<MicroOp> ops(n);
    for (size_t i = 0; i < n; ++i) {
        ops[i].pc = base + i * 4;
        ops[i].cls = OpClass::Alu;
    }
    return ops;
}

TEST(Frontend, FourWidePacing)
{
    SimConfig cfg = quietConfig();
    CacheHierarchy h(cfg);
    Frontend fe(cfg, 0, h, nullptr);
    auto ops = sequentialOps(64, 0x400000);
    fe.bindTrace(makeView(ops));

    // Warm the line first so pacing is the only constraint.
    h.codeFetch(0, 0x400000, 0);
    std::vector<Cycle> cycles;
    for (size_t i = 0; i < 16; ++i)
        cycles.push_back(fe.fetchCycle(i, ops[i]));
    // Within one line: exactly width ops per cycle.
    for (size_t i = 4; i < 16; ++i)
        EXPECT_EQ(cycles[i], cycles[i - 4] + 1);
}

TEST(Frontend, ColdLineStallsFetch)
{
    SimConfig cfg = quietConfig();
    CacheHierarchy h(cfg);
    Frontend fe(cfg, 0, h, nullptr);
    auto ops = sequentialOps(64, 0x400000);
    fe.bindTrace(makeView(ops));
    Cycle first = fe.fetchCycle(0, ops[0]);
    // The first instruction of a cold line pays the miss (minus the
    // pipelined L1I latency).
    EXPECT_GT(first, 50u);
    EXPECT_GT(fe.stats().codeStallCycles, 50u);
}

TEST(Frontend, RedirectDelaysLaterFetches)
{
    SimConfig cfg = quietConfig();
    CacheHierarchy h(cfg);
    Frontend fe(cfg, 0, h, nullptr);
    auto ops = sequentialOps(64, 0x400000);
    fe.bindTrace(makeView(ops));
    h.codeFetch(0, 0x400000, 0);
    fe.fetchCycle(0, ops[0]);
    fe.redirect(5000);
    Cycle after = fe.fetchCycle(1, ops[1]);
    EXPECT_GE(after, 5000u);
    EXPECT_EQ(fe.stats().redirects, 1u);
}

TEST(Frontend, NoRefetchWithinALine)
{
    SimConfig cfg = quietConfig();
    CacheHierarchy h(cfg);
    Frontend fe(cfg, 0, h, nullptr);
    auto ops = sequentialOps(16, 0x400000); // all in one line
    fe.bindTrace(makeView(ops));
    for (size_t i = 0; i < 16; ++i)
        fe.fetchCycle(i, ops[i]);
    EXPECT_EQ(fe.stats().lineFetches, 1u);
}

TEST(Frontend, ResetStatsKeepsPacingState)
{
    SimConfig cfg = quietConfig();
    CacheHierarchy h(cfg);
    Frontend fe(cfg, 0, h, nullptr);
    auto ops = sequentialOps(16, 0x400000);
    fe.bindTrace(makeView(ops));
    fe.fetchCycle(0, ops[0]);
    fe.resetStats();
    EXPECT_EQ(fe.stats().lineFetches, 0u);
    // Subsequent fetches continue from the same cycle state.
    Cycle c = fe.fetchCycle(1, ops[1]);
    EXPECT_GT(c, 0u);
}

} // namespace
} // namespace catchsim
