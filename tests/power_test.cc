/**
 * @file
 * Tests for the energy and area models.
 */

#include <gtest/gtest.h>

#include "power/power_model.hh"
#include "sim/configs.hh"

namespace catchsim
{
namespace
{

TEST(Power, CacheEnergyGrowsWithCapacity)
{
    EnergyParams p;
    CacheGeometry small{256 * 1024, 8, 12};
    CacheGeometry big{8 * 1024 * 1024, 16, 40};
    EXPECT_LT(cacheAccessEnergyNj(p, small, Level::LLC),
              cacheAccessEnergyNj(p, big, Level::LLC));
}

TEST(Power, ReferencePointsMatch)
{
    EnergyParams p;
    EXPECT_NEAR(cacheAccessEnergyNj(p, CacheGeometry{32 * 1024, 8, 5},
                                    Level::L1),
                p.l1AccessNj, 1e-9);
    EXPECT_NEAR(cacheAccessEnergyNj(p, CacheGeometry{1024 * 1024, 16, 15},
                                    Level::L2),
                p.l2AccessNj, 1e-9);
}

TEST(Power, EnergyComponentsAllPositive)
{
    EnergyParams p;
    SimConfig cfg = baselineSkx();
    DramStats dram;
    dram.reads = 1000;
    dram.writes = 100;
    dram.activates = 600;
    EnergyBreakdown e = computeEnergy(p, cfg, 1000000, 500000, 2000000,
                                      300000, 50000, 8000, dram);
    EXPECT_GT(e.coreDynamic, 0);
    EXPECT_GT(e.cacheDynamic, 0);
    EXPECT_GT(e.interconnect, 0);
    EXPECT_GT(e.dramDynamic, 0);
    EXPECT_GT(e.staticLeakage, 0);
    EXPECT_GT(e.total(), e.coreDynamic);
}

TEST(Power, MoreTrafficMoreEnergy)
{
    EnergyParams p;
    SimConfig cfg = baselineSkx();
    DramStats dram;
    EnergyBreakdown lo = computeEnergy(p, cfg, 1000, 1000, 100, 10, 10,
                                       10, dram);
    EnergyBreakdown hi = computeEnergy(p, cfg, 1000, 1000, 100000, 10000,
                                       10000, 10000, dram);
    EXPECT_GT(hi.total(), lo.total());
}

TEST(Area, RemovingL2ShrinksCacheArea)
{
    AreaParams p;
    SimConfig base = baselineSkx();
    SimConfig two = noL2(base, 6656);
    double a3 = cacheAreaMm2(p, base, 4);
    double a2 = cacheAreaMm2(p, two, 4);
    // The paper: the no-L2 + 6.5 MB configuration is ~30% smaller in
    // cache area than 4x1MB L2 + 5.5 MB LLC.
    double shrink = 1.0 - a2 / a3;
    EXPECT_GT(shrink, 0.20);
    EXPECT_LT(shrink, 0.45);
}

TEST(Area, IsoAreaConfigurationsMatch)
{
    AreaParams p;
    SimConfig base = baselineSkx();
    SimConfig iso = noL2(base, 9728); // 9.5 MB
    double a3 = chipAreaMm2(p, base, 4);
    double a2 = chipAreaMm2(p, iso, 4);
    EXPECT_NEAR(a2 / a3, 1.0, 0.05);
}

} // namespace
} // namespace catchsim
