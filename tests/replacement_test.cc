/**
 * @file
 * Tests for the replacement policies, including cross-policy properties
 * (parameterised over all four kinds).
 */

#include <gtest/gtest.h>

#include "cache/replacement.hh"
#include "common/rng.hh"

namespace catchsim
{
namespace
{

TEST(Lru, EvictsLeastRecentlyUsed)
{
    auto p = makeReplacement(ReplKind::Lru, 1);
    p->reset(1, 4);
    for (uint32_t w = 0; w < 4; ++w)
        p->onFill(0, w);
    p->onHit(0, 0);
    p->onHit(0, 2);
    EXPECT_EQ(p->victim(0), 1u);
}

TEST(Srrip, HitPromotes)
{
    auto p = makeReplacement(ReplKind::Srrip, 1);
    p->reset(1, 4);
    for (uint32_t w = 0; w < 4; ++w)
        p->onFill(0, w);
    p->onHit(0, 3);
    // Way 3 has RRPV 0; some other way must be evicted.
    EXPECT_NE(p->victim(0), 3u);
}

TEST(TreePlru, RecentIsProtected)
{
    auto p = makeReplacement(ReplKind::TreePlru, 1);
    p->reset(1, 8);
    for (uint32_t w = 0; w < 8; ++w)
        p->onFill(0, w);
    p->onHit(0, 5);
    EXPECT_NE(p->victim(0), 5u);
}

TEST(Random, IsDeterministicPerSeed)
{
    auto p1 = makeReplacement(ReplKind::Random, 99);
    auto p2 = makeReplacement(ReplKind::Random, 99);
    p1->reset(1, 8);
    p2->reset(1, 8);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(p1->victim(0), p2->victim(0));
}

TEST(ReplKind, Names)
{
    EXPECT_STREQ(replKindName(ReplKind::Lru), "lru");
    EXPECT_STREQ(replKindName(ReplKind::Srrip), "srrip");
}

class AllPolicies : public ::testing::TestWithParam<ReplKind>
{
};

TEST_P(AllPolicies, VictimAlwaysInRange)
{
    auto p = makeReplacement(GetParam(), 3);
    const uint32_t sets = 16, ways = 11; // non-power-of-two ways
    p->reset(sets, ways);
    Rng rng(17);
    for (int i = 0; i < 5000; ++i) {
        uint32_t set = static_cast<uint32_t>(rng.below(sets));
        switch (rng.below(3)) {
          case 0:
            p->onHit(set, static_cast<uint32_t>(rng.below(ways)));
            break;
          case 1:
            p->onFill(set, static_cast<uint32_t>(rng.below(ways)));
            break;
          default:
            EXPECT_LT(p->victim(set), ways);
        }
    }
}

TEST_P(AllPolicies, MruNeverImmediateVictimIn2Way)
{
    if (GetParam() == ReplKind::Random)
        GTEST_SKIP() << "random has no recency guarantee";
    auto p = makeReplacement(GetParam(), 3);
    p->reset(1, 2);
    p->onFill(0, 0);
    p->onFill(0, 1);
    for (int i = 0; i < 100; ++i) {
        uint32_t touched = static_cast<uint32_t>(i % 2);
        p->onHit(0, touched);
        EXPECT_NE(p->victim(0), touched);
    }
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllPolicies,
                         ::testing::Values(ReplKind::Lru, ReplKind::Srrip,
                                           ReplKind::TreePlru,
                                           ReplKind::Random));

} // namespace
} // namespace catchsim
