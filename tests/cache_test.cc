/**
 * @file
 * Unit tests for the set-associative cache array: lookup/fill/invalidate
 * semantics, victim selection, in-flight (readyAt) tracking and the
 * fill-merge rule.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "common/rng.hh"

namespace catchsim
{
namespace
{

CacheGeometry
tinyGeom()
{
    // 2 sets x 2 ways x 64 B lines = 256 B.
    return CacheGeometry{256, 2, 5};
}

TEST(Cache, MissThenHit)
{
    Cache c("t", tinyGeom(), ReplKind::Lru, 1);
    EXPECT_EQ(c.lookup(0x1000, true), nullptr);
    c.fill(0x1000, false, 0, FillSource::Demand);
    EXPECT_NE(c.lookup(0x1000, true), nullptr);
    EXPECT_EQ(c.stats().demandAccesses, 2u);
    EXPECT_EQ(c.stats().demandHits, 1u);
}

TEST(Cache, PeekDoesNotTouchStats)
{
    Cache c("t", tinyGeom(), ReplKind::Lru, 1);
    c.fill(0x1000, false, 0, FillSource::Demand);
    c.peek(0x1000);
    c.peek(0x2000);
    EXPECT_EQ(c.stats().demandAccesses, 0u);
}

TEST(Cache, LruVictimIsOldest)
{
    Cache c("t", tinyGeom(), ReplKind::Lru, 1);
    // Set index = (addr>>6) & 1; use set 0 addresses: 0x000, 0x080...
    c.fill(0x000, false, 0, FillSource::Demand);
    c.fill(0x080, false, 0, FillSource::Demand);
    c.lookup(0x000, true); // make 0x000 the MRU
    Cache::Victim v = c.fill(0x100, false, 0, FillSource::Demand);
    ASSERT_TRUE(v.valid);
    EXPECT_EQ(v.addr, 0x080u);
}

TEST(Cache, DirtyVictimReported)
{
    Cache c("t", tinyGeom(), ReplKind::Lru, 1);
    c.fill(0x000, true, 0, FillSource::Demand);
    c.fill(0x080, false, 0, FillSource::Demand);
    Cache::Victim v = c.fill(0x100, false, 0, FillSource::Demand);
    ASSERT_TRUE(v.valid);
    EXPECT_TRUE(v.dirty);
    EXPECT_EQ(c.stats().dirtyEvictions, 1u);
}

TEST(Cache, FillMergeKeepsEarliestReadyAt)
{
    Cache c("t", tinyGeom(), ReplKind::Lru, 1);
    c.fill(0x1000, false, 500, FillSource::StridePf);
    c.fill(0x1000, false, 200, FillSource::TactPf); // earlier data wins
    const CacheLine *line = c.peek(0x1000);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->readyAt, 200u);
    // A merge is not an eviction.
    EXPECT_EQ(c.stats().evictions, 0u);
}

TEST(Cache, FillMergePreservesDirty)
{
    Cache c("t", tinyGeom(), ReplKind::Lru, 1);
    c.fill(0x1000, true, 0, FillSource::Demand);
    c.fill(0x1000, false, 0, FillSource::Demand);
    EXPECT_TRUE(c.peek(0x1000)->dirty);
}

TEST(Cache, WritebackMergeAdoptsPrefetchedCopy)
{
    // Regression: a writeback landing on a prefetched copy proves the
    // line was wanted. The merge must take over source/fillLevel so the
    // line's eventual eviction is not misattributed to a useless
    // prefetch.
    Cache c("t", tinyGeom(), ReplKind::Lru, 1);
    c.fill(0x000, false, 0, FillSource::TactPf, Level::Mem);
    c.fill(0x000, true, 0, FillSource::Writeback, Level::L1); // merges
    const CacheLine *line = c.peek(0x000);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->source, FillSource::Writeback);
    EXPECT_EQ(line->fillLevel, Level::L1);
    EXPECT_TRUE(line->dirty);
    // Force its eviction (fill the 2-way set with two more lines).
    c.fill(0x080, false, 0, FillSource::Demand);
    c.fill(0x100, false, 0, FillSource::Demand);
    EXPECT_EQ(c.stats().evictions, 1u);
    EXPECT_EQ(c.stats().uselessPrefetchEvictions, 0u);
}

TEST(Cache, DemandMergeAdoptsPrefetchedCopy)
{
    Cache c("t", tinyGeom(), ReplKind::Lru, 1);
    c.fill(0x000, false, 0, FillSource::StreamPf, Level::Mem);
    c.fill(0x000, false, 0, FillSource::Demand, Level::LLC);
    EXPECT_EQ(c.peek(0x000)->source, FillSource::Demand);
    EXPECT_EQ(c.peek(0x000)->fillLevel, Level::LLC);
}

TEST(Cache, PrefetchMergeDoesNotLaunderProvenance)
{
    // The reverse direction must not upgrade: one prefetch landing on
    // another keeps the resident provenance, and an unused prefetched
    // line still counts as a useless-prefetch eviction.
    Cache c("t", tinyGeom(), ReplKind::Lru, 1);
    c.fill(0x000, false, 0, FillSource::StridePf);
    c.fill(0x000, false, 0, FillSource::TactPf); // merge: still a pf
    EXPECT_EQ(c.peek(0x000)->source, FillSource::StridePf);
    c.fill(0x080, false, 0, FillSource::Demand);
    c.fill(0x100, false, 0, FillSource::Demand); // evicts 0x000
    EXPECT_EQ(c.stats().evictions, 1u);
    EXPECT_EQ(c.stats().uselessPrefetchEvictions, 1u);
}

TEST(Cache, InvalidateReportsDirty)
{
    Cache c("t", tinyGeom(), ReplKind::Lru, 1);
    c.fill(0x1000, true, 0, FillSource::Demand);
    bool present = false;
    EXPECT_TRUE(c.invalidate(0x1000, &present));
    EXPECT_TRUE(present);
    EXPECT_EQ(c.peek(0x1000), nullptr);
    EXPECT_FALSE(c.invalidate(0x1000, &present));
    EXPECT_FALSE(present);
}

TEST(Cache, SetDirtyOnlyOnHit)
{
    Cache c("t", tinyGeom(), ReplKind::Lru, 1);
    EXPECT_FALSE(c.setDirty(0x1000));
    c.fill(0x1000, false, 0, FillSource::Demand);
    EXPECT_TRUE(c.setDirty(0x1000));
    EXPECT_TRUE(c.peek(0x1000)->dirty);
}

TEST(Cache, FillLevelStored)
{
    Cache c("t", tinyGeom(), ReplKind::Lru, 1);
    c.fill(0x1000, false, 100, FillSource::Demand, Level::LLC);
    EXPECT_EQ(c.peek(0x1000)->fillLevel, Level::LLC);
}

TEST(Cache, UselessPrefetchEvictionCounted)
{
    Cache c("t", tinyGeom(), ReplKind::Lru, 1);
    c.fill(0x000, false, 0, FillSource::TactPf);
    c.fill(0x080, false, 0, FillSource::Demand);
    c.fill(0x100, false, 0, FillSource::Demand); // evicts unused prefetch
    EXPECT_EQ(c.stats().uselessPrefetchEvictions, 1u);
}

/** Property: a cache never holds two copies of one line. */
TEST(CacheProperty, NoDuplicateLines)
{
    Cache c("t", CacheGeometry{4096, 4, 5}, ReplKind::Lru, 1);
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        Addr a = (rng.next() % 64) * 64;
        if (rng.percent(50))
            c.fill(a, rng.percent(30), 0, FillSource::Demand);
        else
            c.lookup(a, true);
    }
    // Re-fill every line and count how many distinct victims appear:
    // duplicates would surface as a line evicting itself.
    for (int i = 0; i < 64; ++i) {
        Addr a = static_cast<Addr>(i) * 64;
        Cache::Victim v = c.fill(a, false, 0, FillSource::Demand);
        if (v.valid) {
            EXPECT_NE(v.addr, a);
        }
    }
}

/** Property sweep: hit rate of a cyclic scan vs capacity. */
class CacheCapacity : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(CacheCapacity, CyclicScanHitRate)
{
    uint32_t lines_footprint = GetParam();
    Cache c("t", CacheGeometry{64 * 1024, 8, 5}, ReplKind::Lru, 1); // 1024 lines
    auto pass = [&]() {
        for (uint32_t i = 0; i < lines_footprint; ++i) {
            Addr a = static_cast<Addr>(i) * 64;
            if (!c.lookup(a, true))
                c.fill(a, false, 0, FillSource::Demand);
        }
    };
    for (int p = 0; p < 4; ++p)
        pass();
    double hit = c.stats().hitRate();
    if (lines_footprint <= 1024) {
        EXPECT_GT(hit, 0.70); // fits: hits after the cold pass
    } else if (lines_footprint >= 2048) {
        EXPECT_LT(hit, 0.05); // full LRU cyclic cliff
    } else {
        // Marginal overflow: only the sets that drew 9+ lines thrash.
        EXPECT_LT(hit, 0.70);
    }
}

INSTANTIATE_TEST_SUITE_P(Footprints, CacheCapacity,
                         ::testing::Values(256u, 512u, 1024u, 1100u,
                                           2048u));

} // namespace
} // namespace catchsim
