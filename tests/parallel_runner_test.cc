/**
 * @file
 * Tests for the parallel suite-execution engine: the work-stealing
 * thread pool itself, order-stability and bitwise determinism of
 * parallel suite runs versus the serial path (proving the simulations
 * share no hidden mutable state), the MP-mix runner, the JSON export,
 * and — on machines with enough cores — the wall-clock speedup the
 * engine exists to deliver.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/thread_pool.hh"
#include "sim/configs.hh"
#include "sim/experiment.hh"
#include "sim/parallel_runner.hh"
#include "sim_result_compare.hh"
#include "trace/suite.hh"

namespace catchsim
{
namespace
{

constexpr uint64_t kInstr = 30000;
constexpr uint64_t kWarm = 8000;

// ------------------------- ThreadPool ----------------------------

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    ThreadPool pool(4);
    constexpr int kTasks = 200;
    std::vector<std::atomic<int>> hits(kTasks);
    std::vector<ThreadPool::Task> tasks;
    for (int i = 0; i < kTasks; ++i)
        tasks.push_back([&hits, i] { ++hits[i]; });
    pool.runAll(std::move(tasks));
    for (int i = 0; i < kTasks; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(ThreadPool, SerialPoolRunsInline)
{
    ThreadPool pool(1);
    std::thread::id caller = std::this_thread::get_id();
    std::vector<std::thread::id> ran;
    pool.runAll({[&] { ran.push_back(std::this_thread::get_id()); },
                 [&] { ran.push_back(std::this_thread::get_id()); }});
    ASSERT_EQ(ran.size(), 2u);
    EXPECT_EQ(ran[0], caller);
    EXPECT_EQ(ran[1], caller);
}

TEST(ThreadPool, StealingDrainsImbalancedBatches)
{
    // Tasks are dealt round-robin, so with two workers the sleeper
    // (index 0) and every even-index task land in the same deque. The
    // sleeper pins that worker long enough that the sibling must steal
    // the evens after draining its own odds.
    ThreadPool pool(2);
    constexpr int kTasks = 9; // sleeper + 4 evens + 4 odds
    std::vector<std::thread::id> ran(kTasks);
    std::vector<ThreadPool::Task> tasks;
    tasks.push_back([&ran] {
        ran[0] = std::this_thread::get_id();
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
    });
    for (int i = 1; i < kTasks; ++i)
        tasks.push_back([&ran, i] {
            ran[i] = std::this_thread::get_id();
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        });
    pool.runAll(std::move(tasks));
    int stolen = 0;
    for (int i = 2; i < kTasks; i += 2)
        stolen += ran[i] != ran[0];
    EXPECT_GT(stolen, 0) << "no task behind the sleeper was stolen";
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    ThreadPool pool(3);
    for (int round = 0; round < 5; ++round) {
        std::atomic<int> n{0};
        std::vector<ThreadPool::Task> tasks;
        for (int i = 0; i < 16; ++i)
            tasks.push_back([&n] { ++n; });
        pool.runAll(std::move(tasks));
        EXPECT_EQ(n.load(), 16);
    }
}

TEST(ThreadPool, SixteenWorkerStressIsRaceFree)
{
    // Companion to the TSan CI job (which runs this binary with 16
    // workers instrumented): oversubscribed pool, repeated imbalanced
    // batches, every task writing its own pre-assigned slot. Any
    // lost-wakeup or double-execution bug shows up as a hit count != 1.
    ThreadPool pool(16);
    for (int round = 0; round < 20; ++round) {
        constexpr int kTasks = 256;
        std::vector<std::atomic<int>> hits(kTasks);
        std::vector<ThreadPool::Task> tasks;
        tasks.reserve(kTasks);
        for (int i = 0; i < kTasks; ++i)
            tasks.push_back([&hits, i] {
                for (volatile int spin = (i % 7) * 50; spin > 0;)
                    spin = spin - 1; // uneven weights force stealing
                ++hits[i];
            });
        pool.runAll(std::move(tasks));
        for (int i = 0; i < kTasks; ++i)
            ASSERT_EQ(hits[i].load(), 1)
                << "round " << round << " task " << i;
    }
}

// --------------------- Determinism under jobs --------------------

/** The core guarantee: job count never changes any result bit. */
TEST(ParallelRunner, JobCountDoesNotChangeResults)
{
    const std::vector<std::string> names = {
        "mcf",  "hmmer", "omnetpp", "milc",
        "tpcc", "gobmk", "hpc.stream"};
    SimConfig cfg = withCatch(baselineSkx());
    auto serial =
        runWorkloadsParallel(cfg, names, kInstr, kWarm, /*jobs=*/1);
    auto parallel =
        runWorkloadsParallel(cfg, names, kInstr, kWarm, /*jobs=*/8);
    ASSERT_EQ(serial.size(), names.size());
    ASSERT_EQ(parallel.size(), names.size());
    for (size_t i = 0; i < names.size(); ++i) {
        EXPECT_EQ(serial[i].workload, names[i]) << "order not stable";
        expectBitwiseEqual(serial[i], parallel[i]);
    }
}

/** jobs=16 (beyond any CI core count) must still be bit-identical. */
TEST(ParallelRunner, SixteenJobsBitwiseEqualsSerial)
{
    const std::vector<std::string> names = {"mcf", "omnetpp", "tpcc"};
    SimConfig cfg = withCatch(baselineSkx());
    auto serial =
        runWorkloadsParallel(cfg, names, kInstr, kWarm, /*jobs=*/1);
    auto wide =
        runWorkloadsParallel(cfg, names, kInstr, kWarm, /*jobs=*/16);
    ASSERT_EQ(serial.size(), names.size());
    ASSERT_EQ(wide.size(), names.size());
    for (size_t i = 0; i < names.size(); ++i) {
        EXPECT_EQ(wide[i].workload, names[i]) << "order not stable";
        expectBitwiseEqual(serial[i], wide[i]);
    }
}

TEST(ParallelRunner, RunSuiteMatchesSerialSuite)
{
    ExperimentEnv env;
    env.names = {"mcf", "soplex", "specjbb", "facedetection"};
    env.instrs = kInstr;
    env.warmup = kWarm;
    env.jobs = 1;
    auto serial = runSuite(baselineSkx(), env);
    env.jobs = 8;
    auto parallel = runSuite(baselineSkx(), env);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i)
        expectBitwiseEqual(serial[i], parallel[i]);
}

TEST(ParallelRunner, MpMixesAreJobCountInvariant)
{
    auto mixes = mpMixes();
    mixes.resize(4);
    SimConfig cfg = baselineSkx();
    auto solo = soloIpcsParallel(cfg, mixes, kInstr, kWarm, 4);
    auto serial = runMixesParallel(cfg, mixes, kInstr, kWarm, solo, 1);
    auto parallel = runMixesParallel(cfg, mixes, kInstr, kWarm, solo, 8);
    ASSERT_EQ(serial.size(), mixes.size());
    for (size_t i = 0; i < mixes.size(); ++i) {
        EXPECT_EQ(serial[i].mix, mixes[i].name);
        EXPECT_EQ(parallel[i].mix, mixes[i].name);
        EXPECT_EQ(serial[i].weightedSpeedup, parallel[i].weightedSpeedup);
        for (int c = 0; c < 4; ++c) {
            EXPECT_EQ(serial[i].ipc[c], parallel[i].ipc[c]);
            EXPECT_EQ(serial[i].ipcAlone[c], parallel[i].ipcAlone[c]);
        }
    }
}

// --------------------------- Plumbing ----------------------------

TEST(ParallelRunner, CostEstimateOrdersServerAboveIspec)
{
    // LPT dispatch only needs the relative order to be sane.
    EXPECT_GT(workloadCostEstimate("tpcc"),
              workloadCostEstimate("hpc.stream"));
    EXPECT_GT(workloadCostEstimate("hpc.stream"),
              workloadCostEstimate("mcf"));
}

TEST(ParallelRunner, SuiteJobsEnvKnob)
{
    ASSERT_EQ(setenv("CATCH_JOBS", "3", 1), 0);
    EXPECT_EQ(suiteJobs(), 3u);
    ASSERT_EQ(setenv("CATCH_JOBS", "1", 1), 0);
    EXPECT_EQ(suiteJobs(), 1u);
    ASSERT_EQ(unsetenv("CATCH_JOBS"), 0);
    EXPECT_GE(suiteJobs(), 1u);
}

TEST(ParallelRunner, SuiteJsonExportRoundTrips)
{
    ExperimentEnv env;
    env.names = {"hmmer", "mcf"};
    env.instrs = kInstr;
    env.warmup = kWarm;
    auto results = runWorkloadsParallel(baselineSkx(), env.names,
                                        env.instrs, env.warmup, 2);
    std::string path = ::testing::TempDir() + "suite_export.json";
    ASSERT_TRUE(writeSuiteJson(path, baselineSkx(), env, results).ok());

    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::string text(1 << 16, '\0');
    text.resize(std::fread(text.data(), 1, text.size(), f));
    std::fclose(f);

    EXPECT_NE(text.find("\"workload\":\"hmmer\""), std::string::npos);
    EXPECT_NE(text.find("\"workload\":\"mcf\""), std::string::npos);
    EXPECT_NE(text.find("\"config\":"), std::string::npos);
    // Braces and brackets must balance (cheap well-formedness check).
    long depth = 0;
    for (char c : text) {
        if (c == '{' || c == '[')
            ++depth;
        if (c == '}' || c == ']')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    // Per-workload documents embed every counter group.
    for (const char *key :
         {"\"core\"", "\"hierarchy\"", "\"dram\"", "\"tact\"",
          "\"energy_mj\""})
        EXPECT_NE(text.find(key), std::string::npos) << key;
    std::remove(path.c_str());
}

// ---------------------------- Speedup ----------------------------

/**
 * The acceptance criterion: the quick suite with 4 jobs must beat the
 * serial run by >= 2.5x on a machine with >= 4 hardware threads. On
 * smaller machines (e.g. single-core CI containers) the wall-clock
 * claim is meaningless, so the test reduces to the determinism check
 * and skips the timing assertion.
 */
TEST(ParallelRunner, QuickSuiteSpeedupWithFourJobs)
{
    ExperimentEnv env;
    env.names = stQuickNames();
    env.instrs = 60000;
    env.warmup = 15000;

    using clock = std::chrono::steady_clock;
    auto t0 = clock::now();
    env.jobs = 1;
    auto serial = runSuite(baselineSkx(), env);
    auto t1 = clock::now();
    env.jobs = 4;
    auto parallel = runSuite(baselineSkx(), env);
    auto t2 = clock::now();

    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i)
        expectBitwiseEqual(serial[i], parallel[i]);

    double serial_s = std::chrono::duration<double>(t1 - t0).count();
    double parallel_s = std::chrono::duration<double>(t2 - t1).count();
    std::printf("quick suite: serial %.2fs, 4 jobs %.2fs (%.2fx)\n",
                serial_s, parallel_s, serial_s / parallel_s);
    if (std::thread::hardware_concurrency() < 4)
        GTEST_SKIP() << "needs >= 4 hardware threads for the timing "
                        "assertion; determinism already verified";
    EXPECT_GE(serial_s / parallel_s, 2.5);
}

} // namespace
} // namespace catchsim
