/**
 * @file
 * Tests for the DDG criticality detector: incremental node costs, the
 * prev-load walk, recordability filtering, the E-D mispredict edge and
 * the C-D ROB edge.
 */

#include <gtest/gtest.h>

#include "criticality/ddg.hh"
#include "criticality/heuristic_detector.hh"

namespace catchsim
{
namespace
{

CriticalityConfig
smallCfg()
{
    CriticalityConfig cfg;
    cfg.enabled = true;
    cfg.confResetInterval = 1000000; // keep resets out of the way
    return cfg;
}

/** Builds a detector for a small 8-entry ROB so walks happen quickly. */
DdgCriticalityDetector
smallDetector()
{
    return DdgCriticalityDetector(smallCfg(), 8, 2, 14, 4);
}

RetireInfo
mkOp(SeqNum seq, OpClass cls, Addr pc, Cycle alloc, Cycle start,
     Cycle done)
{
    RetireInfo ri;
    ri.seq = seq;
    ri.cls = cls;
    ri.pc = pc;
    ri.allocCycle = alloc;
    ri.execStart = start;
    ri.execDone = done;
    ri.retireCycle = done + 1;
    return ri;
}

TEST(Ddg, WalkTriggersAtTwiceRob)
{
    auto det = smallDetector();
    EXPECT_EQ(det.walkRows(), 16u);
    for (SeqNum i = 1; i <= 15; ++i)
        det.onRetire(mkOp(i, OpClass::Alu, 0x400000, i, i + 2, i + 3));
    EXPECT_EQ(det.stats().walks, 0u);
    det.onRetire(mkOp(16, OpClass::Alu, 0x400000, 16, 18, 19));
    EXPECT_EQ(det.stats().walks, 1u);
}

TEST(Ddg, ChainOfDependentLoadsIsCritical)
{
    // A serial chain: load feeds load feeds load... all L2 hits. The
    // walk must record the chain's PCs.
    auto det = smallDetector();
    Cycle t = 0;
    for (SeqNum i = 1; i <= 16; ++i) {
        RetireInfo ri = mkOp(i, OpClass::Load, 0x400100 + (i % 4) * 4,
                             i, t + 2, t + 2 + 16);
        ri.servedBy = Level::L2;
        ri.srcSeq[0] = i - 1; // depend on the previous load
        det.onRetire(ri);
        t += 16;
    }
    EXPECT_GT(det.stats().criticalLoadsFound, 8u);
    EXPECT_GT(det.stats().recorded, 8u);
    EXPECT_GT(det.table().stats().recordings, 0u);
}

TEST(Ddg, L1HitsAreNeverRecorded)
{
    auto det = smallDetector();
    for (SeqNum i = 1; i <= 32; ++i) {
        RetireInfo ri = mkOp(i, OpClass::Load, 0x400100, i, i + 2,
                             i + 2 + 5);
        ri.servedBy = Level::L1;
        ri.srcSeq[0] = i - 1;
        det.onRetire(ri);
    }
    EXPECT_EQ(det.stats().recorded, 0u);
}

TEST(Ddg, MemMissesNotRecorded)
{
    // The paper records only L2/LLC hits (Section IV-A); memory misses
    // are the LLC policies' problem.
    auto det = smallDetector();
    for (SeqNum i = 1; i <= 32; ++i) {
        RetireInfo ri = mkOp(i, OpClass::Load, 0x400100, i, i + 2,
                             i + 200);
        ri.servedBy = Level::Mem;
        ri.srcSeq[0] = i - 1;
        det.onRetire(ri);
    }
    EXPECT_EQ(det.stats().recorded, 0u);
    EXPECT_GT(det.stats().criticalLoadsFound, 0u);
}

TEST(Ddg, TactCoveredLoadsStayRecordable)
{
    auto det = smallDetector();
    for (SeqNum i = 1; i <= 32; ++i) {
        RetireInfo ri = mkOp(i, OpClass::Load, 0x400100, i, i + 2,
                             i + 2 + 5);
        ri.servedBy = Level::L1;
        ri.tactCovered = true;
        ri.srcSeq[0] = i - 1;
        det.onRetire(ri);
    }
    EXPECT_GT(det.stats().recorded, 0u);
}

TEST(Ddg, NonDependentLoadsAreNotCritical)
{
    // Independent short-latency loads between long ALU chains: the ALU
    // chain is the critical path, the loads are not on it.
    auto det = smallDetector();
    Cycle t = 0;
    for (SeqNum i = 1; i <= 32; ++i) {
        bool is_load = i % 2 == 0;
        RetireInfo ri;
        if (is_load) {
            ri = mkOp(i, OpClass::Load, 0x400200, i, i + 2, i + 2 + 16);
            ri.servedBy = Level::L2;
            // no dependence on the chain
        } else {
            ri = mkOp(i, OpClass::Alu, 0x400000, i, t + 2, t + 2 + 30);
            ri.srcSeq[0] = i - 2; // previous ALU
            t += 30;
        }
        det.onRetire(ri);
    }
    EXPECT_EQ(det.stats().recorded, 0u);
}

TEST(Ddg, MispredictedBranchPullsItsFeederOntoThePath)
{
    // Load (L2 hit) -> dependent branch that mispredicts: the E-D edge
    // makes everything after the redirect depend on the branch, whose
    // source is the load -> the load is critical.
    auto det = smallDetector();
    Cycle t = 0;
    SeqNum seq = 0;
    for (int grp = 0; grp < 8; ++grp) {
        RetireInfo ld = mkOp(++seq, OpClass::Load, 0x400300, t + 1,
                             t + 2, t + 2 + 16);
        ld.servedBy = Level::L2;
        det.onRetire(ld);
        RetireInfo br = mkOp(++seq, OpClass::Branch, 0x400304, t + 2,
                             t + 18, t + 19);
        br.srcSeq[0] = seq - 1;
        br.mispredictedBranch = true;
        det.onRetire(br);
        // Redirect bubble then two cheap ops.
        RetireInfo a1 = mkOp(++seq, OpClass::Alu, 0x400308, t + 33,
                             t + 35, t + 36);
        det.onRetire(a1);
        RetireInfo a2 = mkOp(++seq, OpClass::Alu, 0x40030c, t + 33,
                             t + 35, t + 36);
        det.onRetire(a2);
        t += 35;
    }
    EXPECT_GT(det.stats().recorded, 0u);
    EXPECT_TRUE(det.table().stats().recordings > 0);
}

TEST(Ddg, ProducerOutsideWindowIsIgnored)
{
    auto det = smallDetector();
    RetireInfo ri = mkOp(100, OpClass::Load, 0x400100, 1, 3, 20);
    ri.servedBy = Level::L2;
    ri.srcSeq[0] = 5; // long-retired producer
    det.onRetire(ri); // must not crash or mis-index
    SUCCEED();
}

TEST(Ddg, LatencyQuantisation)
{
    // Stored E-C weights are (latency >> 3) capped at 31: a 300-cycle
    // latency and a 248-cycle latency quantise identically at the cap.
    CriticalityConfig cfg = smallCfg();
    DdgCriticalityDetector det(cfg, 8, 2, 14, 4);
    // Nothing externally visible to assert beyond not crashing with
    // extreme latencies; the cap is covered via the walk still working.
    for (SeqNum i = 1; i <= 16; ++i) {
        RetireInfo ri = mkOp(i, OpClass::Load, 0x400100, i, i + 2,
                             i + 2 + 5000);
        ri.servedBy = Level::L2;
        ri.srcSeq[0] = i - 1;
        det.onRetire(ri);
    }
    EXPECT_GT(det.stats().recorded, 0u);
}

TEST(HeuristicDetector, FlagsLoadFeedingMispredict)
{
    CriticalityConfig cfg = smallCfg();
    HeuristicCriticalityDetector det(cfg);
    for (SeqNum i = 1; i <= 40; i += 2) {
        RetireInfo ld = mkOp(i, OpClass::Load, 0x400500, i, i + 2,
                             i + 18);
        ld.servedBy = Level::L2;
        det.onRetire(ld);
        RetireInfo br = mkOp(i + 1, OpClass::Branch, 0x400504, i + 1,
                             i + 19, i + 20);
        br.srcSeq[0] = i;
        br.mispredictedBranch = true;
        det.onRetire(br);
    }
    EXPECT_GT(det.stats().flaggedFeedsMispredict, 10u);
    EXPECT_TRUE(det.isCritical(0x400500));
}

TEST(HeuristicDetector, IgnoresL1Feeders)
{
    CriticalityConfig cfg = smallCfg();
    HeuristicCriticalityDetector det(cfg);
    for (SeqNum i = 1; i <= 40; i += 2) {
        RetireInfo ld = mkOp(i, OpClass::Load, 0x400500, i, i + 2, i + 7);
        ld.servedBy = Level::L1;
        det.onRetire(ld);
        RetireInfo br = mkOp(i + 1, OpClass::Branch, 0x400504, i + 1,
                             i + 8, i + 9);
        br.srcSeq[0] = i;
        br.mispredictedBranch = true;
        det.onRetire(br);
    }
    EXPECT_FALSE(det.isCritical(0x400500));
}

TEST(HeuristicDetector, FlagsRetireGatingLoads)
{
    CriticalityConfig cfg = smallCfg();
    HeuristicCriticalityDetector det(cfg);
    for (SeqNum i = 1; i <= 10; ++i) {
        // A long-latency L2 load whose completion gates retirement.
        RetireInfo ld = mkOp(i, OpClass::Load, 0x400600, i, i + 2,
                             i + 2 + 16);
        ld.servedBy = Level::L2;
        ld.retireCycle = ld.execDone + 1;
        det.onRetire(ld);
    }
    EXPECT_GT(det.stats().flaggedRobStall, 0u);
    EXPECT_TRUE(det.isCritical(0x400600));
}

TEST(HeuristicDetector, FlagsMorePcsThanDdg)
{
    // The paper's complaint about heuristics, reproduced synthetically:
    // loads in the shadow of an unrelated mispredicting branch still
    // get flagged when they happen to feed it transitively... here we
    // simply check that independent non-critical L2 loads gated only by
    // retirement bandwidth are flagged by the heuristic and not by the
    // DDG walk.
    CriticalityConfig cfg = smallCfg();
    HeuristicCriticalityDetector heur(cfg);
    DdgCriticalityDetector ddg(cfg, 8, 2, 14, 4);
    Cycle t = 0;
    for (SeqNum i = 1; i <= 64; ++i) {
        // Alternating: a serial ALU chain (the true critical path) and
        // independent L2 loads that complete just at retirement.
        RetireInfo ri;
        if (i % 2 == 0) {
            ri = mkOp(i, OpClass::Alu, 0x400000, i, t + 2, t + 2 + 18);
            ri.srcSeq[0] = i - 2;
            t += 18;
        } else {
            ri = mkOp(i, OpClass::Load, 0x400700 + (i % 4) * 4, i, t + 2,
                      t + 2 + 16);
            ri.servedBy = Level::L2;
            ri.retireCycle = ri.execDone + 1;
        }
        heur.onRetire(ri);
        ddg.onRetire(ri);
    }
    EXPECT_GT(heur.table().stats().recordings,
              ddg.table().stats().recordings);
}

} // namespace
} // namespace catchsim
