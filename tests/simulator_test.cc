/**
 * @file
 * Tests for the single-thread simulator driver and the MP simulator:
 * determinism, warmup accounting, config plumbing, weighted speedup.
 */

#include <gtest/gtest.h>

#include "sim/configs.hh"
#include "sim/experiment.hh"
#include "sim/mp_simulator.hh"
#include "sim/simulator.hh"

namespace catchsim
{
namespace
{

constexpr uint64_t kInstr = 40000;
constexpr uint64_t kWarm = 10000;

TEST(Simulator, RunsAndCounts)
{
    SimResult r = runWorkload(baselineSkx(), "hmmer", kInstr, kWarm);
    EXPECT_EQ(r.core.instrs, kInstr);
    EXPECT_GT(r.ipc, 0.05);
    EXPECT_LT(r.ipc, 4.0);
    EXPECT_GT(r.hier.loads, 1000u);
    EXPECT_EQ(r.workload, "hmmer");
    EXPECT_GT(r.energy.total(), 0.0);
}

TEST(Simulator, Deterministic)
{
    SimResult a = runWorkload(baselineSkx(), "mcf", kInstr, kWarm);
    SimResult b = runWorkload(baselineSkx(), "mcf", kInstr, kWarm);
    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_EQ(a.hier.loadHits[0], b.hier.loadHits[0]);
    EXPECT_EQ(a.dram.reads, b.dram.reads);
}

TEST(Simulator, WarmupExcludedFromStats)
{
    SimResult r = runWorkload(baselineSkx(), "hmmer", kInstr, kWarm);
    // Measured loads must correspond to the measured window only.
    EXPECT_LT(r.hier.loads, kInstr);
    EXPECT_GT(r.core.cycles, 0u);
}

TEST(Simulator, CatchConfigActivatesMachinery)
{
    SimConfig cfg = withCatch(baselineSkx());
    SimResult r = runWorkload(cfg, "hmmer", kInstr, kWarm);
    EXPECT_GT(r.ddg.walks, 0u);
    EXPECT_GT(r.criticalTable.recordings, 0u);
    EXPECT_GT(r.hier.tactPrefetches, 0u);
}

TEST(Simulator, BaselineHasNoTactActivity)
{
    SimResult r = runWorkload(baselineSkx(), "hmmer", kInstr, kWarm);
    EXPECT_EQ(r.hier.tactPrefetches, 0u);
    EXPECT_EQ(r.ddg.walks, 0u);
}

TEST(Simulator, NoL2ConfigHasNoL2Stats)
{
    SimResult r = runWorkload(noL2(baselineSkx(), 6656), "hmmer", kInstr,
                              kWarm);
    EXPECT_FALSE(r.hasL2);
    EXPECT_EQ(r.hier.loadHits[static_cast<int>(Level::L2)], 0u);
}

TEST(Simulator, CriticalityAloneDoesNotChangeTiming)
{
    // The detector observes retirement; it must never perturb the run.
    SimConfig plain = baselineSkx();
    SimConfig watch = baselineSkx();
    watch.criticality.enabled = true;
    SimResult a = runWorkload(plain, "mcf", kInstr, kWarm);
    SimResult b = runWorkload(watch, "mcf", kInstr, kWarm);
    EXPECT_EQ(a.core.cycles, b.core.cycles);
}

TEST(Simulator, HitFractionsSumToOne)
{
    SimResult r = runWorkload(baselineSkx(), "omnetpp", kInstr, kWarm);
    double total = 0;
    for (int l = 0; l < 4; ++l)
        total += r.hier.loadHitFraction(static_cast<Level>(l));
    // Forwarded loads never reach the hierarchy, so <= 1.
    EXPECT_NEAR(total, 1.0, 0.02);
}

TEST(Experiment, CategoryGeomeans)
{
    ExperimentEnv env;
    env.names = {"hmmer", "milc"};
    env.instrs = 20000;
    env.warmup = 5000;
    auto base = runSuite(baselineSkx(), env);
    auto test = runSuite(noL2(baselineSkx(), 6656), env);
    auto rows = categoryGeomeans(base, test);
    ASSERT_GE(rows.size(), 3u); // FSPEC, ISPEC, GeoMean
    EXPECT_EQ(rows.back().first, "GeoMean");
    EXPECT_GT(rows.back().second, 0.3);
    EXPECT_LT(rows.back().second, 1.2);
}

TEST(MpSimulator, WeightedSpeedupNearCoreCount)
{
    // Four copies of a compute-bound workload barely contend: weighted
    // speedup must be close to 4 (the number of cores).
    SimConfig cfg = baselineSkx();
    MpMix mix{"rate4.hplinpack",
              {"hplinpack", "hplinpack", "hplinpack", "hplinpack"}};
    SimResult solo = runWorkload(cfg, "hplinpack", 20000, 5000);
    MpSimulator mp(cfg);
    MpResult r = mp.run(mix, 20000, 5000,
                        {solo.ipc, solo.ipc, solo.ipc, solo.ipc});
    EXPECT_GT(r.weightedSpeedup, 3.2);
    EXPECT_LT(r.weightedSpeedup, 4.2);
}

TEST(MpSimulator, MemoryBoundMixesContend)
{
    // Four memory-bound copies share DRAM: weighted speedup < solo x4.
    SimConfig cfg = baselineSkx();
    MpMix mix{"rate4.mcf", {"mcf", "mcf", "mcf", "mcf"}};
    SimResult solo = runWorkload(cfg, "mcf", 20000, 5000);
    MpSimulator mp(cfg);
    MpResult r = mp.run(mix, 20000, 5000,
                        {solo.ipc, solo.ipc, solo.ipc, solo.ipc});
    EXPECT_LT(r.weightedSpeedup, 4.0);
    EXPECT_GT(r.weightedSpeedup, 1.0);
}

} // namespace
} // namespace catchsim
